/**
 * @file
 * Randomized sparse-vs-dense sweep differential: the sparse
 * subscriber-list sweeps (SweepKind::Sparse) must be bit-identical to
 * the legacy dense window scans (SweepKind::Dense) on every stat, the
 * exit code and the program output, across a large randomized space of
 * latency models, verification/invalidation/selection schemes,
 * confidence modes, predictors, update timings and machine shapes.
 * The sparse run is additionally driven tick-by-tick with the
 * subscriber-index invariant checker (bijection + no-missed-consumer,
 * see subscriber_index.hh) asserted at a fixed cadence.
 *
 * Programs are deliberately tiny (a few hundred dynamic instructions):
 * the suite is part of the ThreadSanitizer gate in scripts/check.sh,
 * where each run costs ~20x its native time.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>

#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/assembler.hh"
#include "vsim/base/random.hh"
#include "vsim/core/ooo_core.hh"

namespace
{

using namespace vsim;

const char *kPool[] = {"t0", "t1", "t2", "t3", "a0", "a1", "a2", "s2"};
constexpr int kPoolSize = static_cast<int>(std::size(kPool));

std::string
reg(Xoshiro256 &rng)
{
    return kPool[rng.nextBounded(kPoolSize)];
}

/**
 * Tiny terminating program: a short counted loop mixing ALU ops,
 * long-latency ops, bounded loads/stores and forward branches —
 * enough dependence structure to exercise every sweep scheme while
 * staying cheap under sanitizers.
 */
std::string
generateProgram(std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::string src;
    src += "        .data\nbuf:    .space 512\n        .text\n";
    src += "        la s0, buf\n";
    src += "        li s1, " + std::to_string(4 + rng.nextBounded(6))
           + "\n";
    for (const char *r : kPool) {
        src += std::string("        li ") + r + ", "
               + std::to_string(rng.nextRange(-500, 500)) + "\n";
    }
    src += "loop:\n";
    const int body_len = 8 + static_cast<int>(rng.nextBounded(12));
    int pending_skip = 0;
    for (int i = 0; i < body_len; ++i) {
        const int kind = static_cast<int>(rng.nextBounded(12));
        if (kind < 5) {
            const char *ops[] = {"add", "sub", "xor", "and", "mul"};
            src += "        " + std::string(ops[rng.nextBounded(5)])
                   + " " + reg(rng) + ", " + reg(rng) + ", " + reg(rng)
                   + "\n";
        } else if (kind < 7) {
            src += "        addi " + reg(rng) + ", " + reg(rng) + ", "
                   + std::to_string(rng.nextRange(-50, 50)) + "\n";
        } else if (kind == 7) {
            const char *ops[] = {"div", "rem"};
            src += "        " + std::string(ops[rng.nextBounded(2)])
                   + " " + reg(rng) + ", " + reg(rng) + ", " + reg(rng)
                   + "\n";
        } else if (kind < 9) {
            src += "        ld " + reg(rng) + ", "
                   + std::to_string(8 * rng.nextBounded(60)) + "(s0)\n";
        } else if (kind == 9) {
            src += "        sd " + reg(rng) + ", "
                   + std::to_string(8 * rng.nextBounded(60)) + "(s0)\n";
        } else if (pending_skip == 0 && i + 3 < body_len) {
            const char *ops[] = {"beq", "bne", "blt"};
            const int skip = 1 + static_cast<int>(rng.nextBounded(2));
            src += "        " + std::string(ops[rng.nextBounded(3)])
                   + " " + reg(rng) + ", " + reg(rng) + ", "
                   + std::to_string(skip + 1) + "\n";
            pending_skip = skip;
            continue;
        } else {
            src += "        addi " + reg(rng) + ", " + reg(rng)
                   + ", 1\n";
        }
        if (pending_skip > 0)
            --pending_skip;
    }
    src += "        addi s1, s1, -1\n";
    src += "        bnez s1, loop\n";
    src += "        li a0, 0\n";
    for (const char *r : kPool)
        src += std::string("        xor a0, a0, ") + r + "\n";
    src += "        puti a0\n";
    src += "        halt a0\n";
    return src;
}

/** Full-stat digest: any divergence shows up as a string diff. */
std::string
digest(const core::SimOutcome &o)
{
    const core::CoreStats &s = o.stats;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "cycles=%llu retired=%llu fetched=%llu dispatched=%llu "
        "issued=%llu squashes=%llu nullif=%llu reissues=%llu "
        "verify=%llu inval=%llu vp=%llu/%llu/%llu/%llu "
        "mispred=%llu fwd=%llu exit=%llu out=%zu halted=%d",
        (unsigned long long)s.cycles, (unsigned long long)s.retired,
        (unsigned long long)s.fetched, (unsigned long long)s.dispatched,
        (unsigned long long)s.issued, (unsigned long long)s.squashes,
        (unsigned long long)s.nullifications,
        (unsigned long long)s.reissues,
        (unsigned long long)s.verifyEvents,
        (unsigned long long)s.invalidateEvents,
        (unsigned long long)s.vpCH, (unsigned long long)s.vpCL,
        (unsigned long long)s.vpIH, (unsigned long long)s.vpIL,
        (unsigned long long)s.condMispredicts,
        (unsigned long long)s.loadsForwarded,
        (unsigned long long)o.exitCode, o.output.size(), o.halted);
    return buf;
}

/** Random core configuration over the whole speculation model space. */
core::CoreConfig
randomConfig(Xoshiro256 &rng)
{
    core::CoreConfig cfg;
    const int shapes[][2] = {{4, 16}, {4, 24}, {8, 32}, {8, 48}};
    const auto &shape = shapes[rng.nextBounded(4)];
    cfg.issueWidth = shape[0];
    cfg.windowSize = shape[1];
    cfg.useValuePrediction = true;
    cfg.maxCycles = 200'000; // tiny programs: far beyond termination

    const char *models[] = {"super", "great", "good"};
    cfg.model = core::SpecModel::byName(models[rng.nextBounded(3)]);
    if (rng.nextBool(0.3)) {
        // Perturb the latency variables beyond the named points.
        cfg.model.execToEquality =
            static_cast<int>(rng.nextBounded(4));
        cfg.model.equalityToInvalidate =
            static_cast<int>(rng.nextBounded(4));
        cfg.model.equalityToVerify =
            static_cast<int>(rng.nextBounded(4));
        cfg.model.invalidateToReissue =
            1 + static_cast<int>(rng.nextBounded(4));
    }
    cfg.model.verifyScheme =
        static_cast<core::VerifyScheme>(rng.nextBounded(4));
    cfg.model.invalScheme =
        static_cast<core::InvalScheme>(rng.nextBounded(3));
    cfg.model.selectPolicy =
        static_cast<core::SelectPolicy>(rng.nextBounded(4));
    cfg.model.branchNeedsValidOps = rng.nextBool(0.7);
    cfg.model.memNeedsValidOps = rng.nextBool(0.5);

    const char *preds[] = {"fcm", "last-value", "stride", "hybrid"};
    cfg.valuePredictor = preds[rng.nextBounded(4)];
    const core::ConfidenceKind confs[] = {core::ConfidenceKind::Real,
                                          core::ConfidenceKind::Oracle,
                                          core::ConfidenceKind::Always};
    cfg.confidence = confs[rng.nextBounded(3)];
    cfg.updateTiming = rng.nextBool() ? core::UpdateTiming::Delayed
                                      : core::UpdateTiming::Immediate;
    return cfg;
}

/**
 * Run the sparse variant tick-by-tick, asserting the subscriber-index
 * invariants every 32 cycles, then collect the outcome.
 */
core::SimOutcome
runSparseChecked(const assembler::Program &prog,
                 const core::CoreConfig &cfg)
{
    core::CoreConfig sparse_cfg = cfg;
    sparse_cfg.sweepKind = core::SweepKind::Sparse;
    core::OooCore c(prog, sparse_cfg);
    std::string why;
    std::uint64_t checks = 0;
    while (c.now() < sparse_cfg.maxCycles && c.tick()) {
        if ((c.now() & 31) == 0) {
            ++checks;
            EXPECT_TRUE(c.checkSweepInvariants(&why))
                << "cycle " << c.now() << ": " << why;
        }
    }
    EXPECT_GT(checks, 0u);
    return c.run(); // already halted: assembles the outcome
}

TEST(SweepDiff, RandomConfigsBitIdentical)
{
    // >= 200 random configurations over ~40 distinct programs; the
    // master seed pins the whole suite.
    constexpr int kConfigs = 208;
    Xoshiro256 rng(0x5eed5eed5eedULL);
    for (int i = 0; i < kConfigs; ++i) {
        const std::uint64_t prog_seed = 1 + rng.nextBounded(40);
        const core::CoreConfig cfg = randomConfig(rng);
        SCOPED_TRACE("config " + std::to_string(i) + " prog_seed "
                     + std::to_string(prog_seed));
        const assembler::Program prog =
            assembler::assemble(generateProgram(prog_seed));

        core::CoreConfig dense_cfg = cfg;
        dense_cfg.sweepKind = core::SweepKind::Dense;
        core::OooCore dense(prog, dense_cfg);
        const core::SimOutcome dense_out = dense.run();
        ASSERT_TRUE(dense_out.halted);

        const core::SimOutcome sparse_out = runSparseChecked(prog, cfg);
        ASSERT_EQ(digest(dense_out), digest(sparse_out));
    }
}

TEST(SweepDiff, BaseProcessorUnaffected)
{
    // With value prediction off no sweeps ever run; both kinds must
    // still agree (and the invariant checker must hold trivially).
    const assembler::Program prog =
        assembler::assemble(generateProgram(3));
    core::CoreConfig cfg;
    cfg.useValuePrediction = false;
    cfg.maxCycles = 200'000;

    cfg.sweepKind = core::SweepKind::Dense;
    core::OooCore dense(prog, cfg);
    const core::SimOutcome dense_out = dense.run();

    const core::SimOutcome sparse_out = runSparseChecked(prog, cfg);
    EXPECT_EQ(digest(dense_out), digest(sparse_out));
}

} // namespace
