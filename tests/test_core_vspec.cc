/**
 * @file
 * Tests for the value-speculation machinery: the speculative-execution
 * model's latency variables (super/great/good, §4.1), the flattened
 * verification network (§3.1/§3.2), selective invalidation and
 * nullification (§3.4), confidence gating, and the base-equivalence
 * property ("when computation does not include predicted values, all
 * models have behaviour identical to the base processor").
 *
 * Every run is also checked instruction-by-instruction against the
 * functional pre-execution inside the core, so each timing test
 * doubles as an end-to-end correctness test of speculation recovery.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/ooo_core.hh"

namespace
{

using namespace vsim;
using assembler::Program;
using core::ConfidenceKind;
using core::CoreConfig;
using core::OooCore;
using core::SimOutcome;
using core::SpecModel;

/** Forced predictions keyed by symbol-resolved PC. */
using Forced = std::map<std::uint64_t, std::uint64_t>;

SimOutcome
runForced(const Program &prog, const SpecModel &model,
          const Forced &forced, CoreConfig cfg = CoreConfig{})
{
    cfg.useValuePrediction = true;
    cfg.model = model;
    OooCore core(prog, cfg);
    core.setPredictionOverride(
        [forced](std::uint64_t pc,
                 std::uint64_t) -> std::optional<std::uint64_t> {
            auto it = forced.find(pc);
            if (it == forced.end())
                return std::nullopt;
            return it->second;
        });
    return core.run();
}

SimOutcome
runPlain(const Program &prog, CoreConfig cfg = CoreConfig{})
{
    cfg.useValuePrediction = false;
    OooCore core(prog, cfg);
    return core.run();
}

/**
 * The Figure 1 micro-program: a three-instruction dependence chain
 * (2 depends on 1, 3 depends on 2) preceded by a long-latency
 * producer so the chain is resident in the window before input a0
 * arrives — mirroring the figure's initial condition.
 */
Program
fig1Program()
{
    return assembler::assemble(R"(
        li t0, 700
        li t1, 70
        div a0, t0, t1      # slow producer: a0 = 10
    c1: addi a1, a0, 1      # 11
    c2: addi a2, a1, 1      # 12
    c3: addi a3, a2, 1      # 13
        halt a3
    )");
}

Forced
fig1Correct(const Program &p)
{
    return {{p.symbols.at("c1"), 11}, {p.symbols.at("c2"), 12}};
}

Forced
fig1Wrong(const Program &p)
{
    return {{p.symbols.at("c1"), 99}, {p.symbols.at("c2"), 999}};
}

TEST(SpecModels, NamedModelsMatchPaperTable)
{
    const SpecModel super = SpecModel::superModel();
    EXPECT_EQ(super.execToEquality + super.equalityToInvalidate, 0);
    EXPECT_EQ(super.verifyToFreeResource, 1);
    EXPECT_EQ(super.invalidateToReissue, 0);
    EXPECT_EQ(super.verifyToBranch, 0);
    EXPECT_EQ(super.verifyAddrToMem, 0);

    const SpecModel great = SpecModel::greatModel();
    EXPECT_EQ(great.execToEquality + great.equalityToVerify, 0);
    EXPECT_EQ(great.invalidateToReissue, 1);
    EXPECT_EQ(great.verifyToBranch, 1);

    const SpecModel good = SpecModel::goodModel();
    EXPECT_EQ(good.execToEquality + good.equalityToVerify, 1);
    EXPECT_EQ(good.execToEquality + good.equalityToInvalidate, 1);

    EXPECT_EQ(SpecModel::byName("super").name, "super");
    EXPECT_EQ(SpecModel::byName("great").name, "great");
    EXPECT_EQ(SpecModel::byName("good").name, "good");
    EXPECT_THROW(SpecModel::byName("bogus"), FatalError);
}

TEST(Fig1, CorrectPredictionCollapsesChain)
{
    const Program prog = fig1Program();
    const SimOutcome base = runPlain(prog);
    const SimOutcome super =
        runForced(prog, SpecModel::superModel(), fig1Correct(prog));
    const SimOutcome great =
        runForced(prog, SpecModel::greatModel(), fig1Correct(prog));
    const SimOutcome good =
        runForced(prog, SpecModel::goodModel(), fig1Correct(prog));

    for (const SimOutcome *o : {&base, &super, &great, &good})
        EXPECT_EQ(o->exitCode, 13u);

    // Correct value prediction breaks the chain: super/great beat base.
    EXPECT_LT(super.stats.cycles, base.stats.cycles);
    EXPECT_LT(great.stats.cycles, base.stats.cycles);
    // Optimism ordering; super's edge over great here is the 0-cycle
    // operand-valid notification of the final (valid-resolving) HALT.
    EXPECT_LE(super.stats.cycles, great.stats.cycles);
    // The good model pays the extra equality/verification cycle per
    // dependence level — and, exactly as §6 observes, can end up
    // *slower than base*.
    EXPECT_GT(good.stats.cycles, great.stats.cycles);
    EXPECT_GE(good.stats.cycles + 2, base.stats.cycles);

    EXPECT_EQ(super.stats.verifyEvents, 2u);
    EXPECT_EQ(super.stats.invalidateEvents, 0u);
    EXPECT_EQ(super.stats.nullifications, 0u);
}

TEST(Fig1, MispredictionOrderingAcrossModels)
{
    const Program prog = fig1Program();
    const SimOutcome base = runPlain(prog);
    const SimOutcome super =
        runForced(prog, SpecModel::superModel(), fig1Wrong(prog));
    const SimOutcome great =
        runForced(prog, SpecModel::greatModel(), fig1Wrong(prog));
    const SimOutcome good =
        runForced(prog, SpecModel::goodModel(), fig1Wrong(prog));

    // Recovery must still produce the correct result.
    for (const SimOutcome *o : {&super, &great, &good})
        EXPECT_EQ(o->exitCode, 13u);

    // More optimistic models recover no slower.
    EXPECT_LE(super.stats.cycles, great.stats.cycles);
    EXPECT_LE(great.stats.cycles, good.stats.cycles);
    // With everything mispredicted the super model packs equality,
    // invalidation and reissue into the producer's completion cycle,
    // matching base timing exactly (Fig. 1's super-mispredict case).
    EXPECT_EQ(super.stats.cycles, base.stats.cycles);
    EXPECT_GT(good.stats.cycles, base.stats.cycles);

    // Both predictions were wrong and resolved via invalidation.
    EXPECT_EQ(super.stats.invalidateEvents, 2u);
    EXPECT_EQ(super.stats.verifyEvents, 0u);
}

TEST(Fig1, SelectiveInvalidationIsolatesPredictions)
{
    // c1 mispredicted, c2 predicted *correctly*: the invalidation of
    // c1 must nullify only c2 (its direct dependent); c3 depends on
    // c2's prediction, which later verifies, so c3 never re-executes.
    const Program prog = fig1Program();
    Forced forced = {{prog.symbols.at("c1"), 99},
                     {prog.symbols.at("c2"), 12}};
    const SimOutcome out =
        runForced(prog, SpecModel::greatModel(), forced);
    EXPECT_EQ(out.exitCode, 13u);
    EXPECT_EQ(out.stats.invalidateEvents, 1u);
    EXPECT_EQ(out.stats.verifyEvents, 1u);
    EXPECT_EQ(out.stats.nullifications, 1u); // only c2
}

TEST(Fig1, FlattenedInvalidationNullifiesAllDependentsAtOnce)
{
    // Only c1 predicted (wrongly). c2 computes speculatively from the
    // prediction, c3 from c2 — both are transitive dependents of c1
    // and must be nullified by the single flattened event.
    const Program prog = fig1Program();
    Forced forced = {{prog.symbols.at("c1"), 99}};
    const SimOutcome out =
        runForced(prog, SpecModel::greatModel(), forced);
    EXPECT_EQ(out.exitCode, 13u);
    EXPECT_EQ(out.stats.invalidateEvents, 1u);
    EXPECT_EQ(out.stats.nullifications, 2u); // c2 and c3 together
}

TEST(Spec, NoConfidentPredictionsMatchesBaseExactly)
{
    // Real confidence with 3-bit resetting counters never saturates in
    // 6 loop iterations, so no speculation happens and every model
    // must reproduce base cycles exactly.
    const Program prog = assembler::assemble(R"(
        li a0, 0
        li a1, 6
    loop:
        addi a0, a0, 7
        mul t0, a0, a0
        addi a1, a1, -1
        bnez a1, loop
        halt a0
    )");
    const SimOutcome base = runPlain(prog);
    for (const char *name : {"super", "great", "good"}) {
        CoreConfig cfg;
        cfg.useValuePrediction = true;
        cfg.model = SpecModel::byName(name);
        cfg.confidence = ConfidenceKind::Real;
        OooCore core(prog, cfg);
        const SimOutcome out = core.run();
        EXPECT_EQ(out.stats.cycles, base.stats.cycles) << name;
        EXPECT_EQ(out.exitCode, base.exitCode) << name;
        EXPECT_EQ(out.stats.nullifications, 0u) << name;
    }
}

/** A loop-carried chain whose values repeat exactly per iteration. */
Program
chainLoop(int iters)
{
    // t0 runs 5 -> 6 -> 9 -> ... -> 42 and is folded back to 5 at the
    // bottom, so iterations form one long serial dependence chain and
    // every instruction produces the same value each iteration: ideal
    // for the context predictor, fully serialised on the base machine.
    std::string src = "li a0, 5\nli s1, " + std::to_string(iters) + "\n";
    src += "loop:\n";
    src += "  addi t0, a0, 1\n";
    for (int i = 0; i < 12; ++i)
        src += "  addi t0, t0, 3\n";
    src += "  addi a0, t0, -37\n"; // back to 5: loop-carried
    src += "  addi s1, s1, -1\n  bnez s1, loop\n  halt t0\n";
    return assembler::assemble(src);
}

TEST(Spec, OraclePredictionSpeedsUpDependentLoop)
{
    const Program prog = chainLoop(400);
    const SimOutcome base = runPlain(prog);

    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.confidence = ConfidenceKind::Oracle;
    OooCore core(prog, cfg);
    const SimOutcome vp = core.run();

    EXPECT_EQ(vp.exitCode, base.exitCode);
    EXPECT_LT(vp.stats.cycles, base.stats.cycles);
    const double speedup = static_cast<double>(base.stats.cycles)
                           / static_cast<double>(vp.stats.cycles);
    EXPECT_GT(speedup, 1.3);
    EXPECT_GT(vp.stats.verifyEvents, 100u);
}

TEST(Spec, GoodModelCanLoseToBase)
{
    // The paper's key observation: with 1-cycle verification the good
    // model serialises verification down dependence chains and can be
    // slower than great/super.
    const Program prog = chainLoop(400);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.confidence = ConfidenceKind::Oracle;

    cfg.model = SpecModel::greatModel();
    const SimOutcome great = OooCore(prog, cfg).run();
    cfg.model = SpecModel::goodModel();
    const SimOutcome good = OooCore(prog, cfg).run();

    EXPECT_GT(good.stats.cycles, great.stats.cycles);
}

TEST(Spec, AlwaysConfidenceStillCorrectUnderHeavyMisspeculation)
{
    // Unpredictable (PRNG) values with Always confidence: massive
    // misspeculation, but results must stay architecturally exact.
    const Program prog = assembler::assemble(R"(
        li s0, 88172645463325252
        li s1, 200
        li s2, 0
    loop:
        slli t0, s0, 13
        xor s0, s0, t0
        srli t0, s0, 7
        xor s0, s0, t0
        slli t0, s0, 17
        xor s0, s0, t0
        andi t1, s0, 255
        add s2, s2, t1
        addi s1, s1, -1
        bnez s1, loop
        halt s2
    )");
    const SimOutcome base = runPlain(prog);

    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.confidence = ConfidenceKind::Always;
    const SimOutcome vp = OooCore(prog, cfg).run();

    EXPECT_EQ(vp.exitCode, base.exitCode);
    EXPECT_GT(vp.stats.invalidateEvents, 100u);
    EXPECT_GT(vp.stats.nullifications, 100u);
    EXPECT_GT(vp.stats.reissues, 100u);
}

TEST(Spec, SuperNoSlowerThanGreatUnderMisspeculation)
{
    const Program prog = assembler::assemble(R"(
        li s0, 88172645463325252
        li s1, 300
        li s2, 0
    loop:
        slli t0, s0, 13
        xor s0, s0, t0
        srli t0, s0, 7
        xor s0, s0, t0
        andi t1, s0, 63
        add s2, s2, t1
        add s2, s2, t1
        addi s1, s1, -1
        bnez s1, loop
        halt s2
    )");
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.confidence = ConfidenceKind::Always;

    cfg.model = SpecModel::superModel();
    const SimOutcome super = OooCore(prog, cfg).run();
    cfg.model = SpecModel::greatModel();
    const SimOutcome great = OooCore(prog, cfg).run();

    EXPECT_EQ(super.exitCode, great.exitCode);
    EXPECT_LE(super.stats.cycles, great.stats.cycles);
}

TEST(Spec, SlowResourceReleaseHurtsTightWindow)
{
    const Program prog = chainLoop(300);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.confidence = ConfidenceKind::Oracle;
    cfg.issueWidth = 4;
    cfg.windowSize = 8; // very tight: release latency matters

    cfg.model = SpecModel::greatModel();
    const SimOutcome fast = OooCore(prog, cfg).run();

    cfg.model = SpecModel::greatModel();
    cfg.model.verifyToFreeResource = 4;
    const SimOutcome slow = OooCore(prog, cfg).run();

    EXPECT_EQ(fast.exitCode, slow.exitCode);
    EXPECT_GT(slow.stats.cycles, fast.stats.cycles);
}

TEST(Spec, VerifyToBranchLatencyDelaysDependentBranches)
{
    // The loop-carried counter is force-predicted (always correctly),
    // so the loop branch's operand becomes valid only through the
    // verification network; verifyToBranch then delays the branch's
    // issue, and under a tight window the retirement lag throttles
    // the whole loop.
    const Program prog = assembler::assemble(R"(
        li a0, 0
        li a1, 500
    p1: addi a0, a0, 1
        bne a0, a1, p1
        halt a0
    )");
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.issueWidth = 4;
    cfg.windowSize = 12;

    auto run_with = [&](int lat) {
        cfg.model = SpecModel::greatModel();
        cfg.model.verifyToBranch = lat;
        OooCore core(prog, cfg);
        core.setPredictionOverride(
            [&](std::uint64_t pc, std::uint64_t correct)
                -> std::optional<std::uint64_t> {
                if (pc == prog.symbols.at("p1"))
                    return correct; // always-correct forced prediction
                return std::nullopt;
            });
        return core.run();
    };

    const SimOutcome fast = run_with(0);
    const SimOutcome slow = run_with(6);
    EXPECT_EQ(fast.exitCode, slow.exitCode);
    EXPECT_GT(slow.stats.cycles, fast.stats.cycles);
}

TEST(Spec, VerifyAddrToMemLatencyDelaysDependentLoads)
{
    const Program prog = assembler::assemble(R"(
        .data
    tab: .dword 3, 1, 4, 1, 5, 9, 2, 6
        .text
        la s0, tab
        li s1, 400
        li s2, 0
        li t0, 0
    loop:
        andi t1, s2, 7
        slli t1, t1, 3
        add t2, s0, t1     # address depends on predicted chain
        ld t3, 0(t2)
        add t0, t0, t3
        addi s2, s2, 1
        bne s2, s1, loop
        halt t0
    )");
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.confidence = ConfidenceKind::Oracle;

    cfg.model = SpecModel::greatModel();
    cfg.model.verifyAddrToMem = 0;
    const SimOutcome fast = OooCore(prog, cfg).run();

    cfg.model.verifyAddrToMem = 8;
    const SimOutcome slow = OooCore(prog, cfg).run();

    EXPECT_EQ(fast.exitCode, slow.exitCode);
    EXPECT_GT(slow.stats.cycles, fast.stats.cycles);
}

// ---- speculative memory resolution (§3.2, memNeedsValidOps=false) -----

/**
 * A store whose data is (wrongly) predicted, immediately followed by a
 * load of the same address: with speculative memory resolution the
 * load forwards the wrong value long before the slow producer
 * resolves, and must be caught by the invalidation network.
 */
Program
memViolationProgram()
{
    return assembler::assemble(R"(
        .data
    buf: .dword 0
        .text
        la s0, buf
        li t0, 700
        li t1, 70
        div t2, t0, t1      # slow producer: t2 = 10
    p:  addi t3, t2, 1      # 11, force-predicted wrong
        sd t3, 0(s0)        # store of the predicted value
        ld a0, 0(s0)        # forwards the speculative data
        addi a1, a0, 1      # 12
        halt a1
    )");
}

TEST(SpecMem, MisforwardedLoadInvalidatesAndReissues)
{
    const Program prog = memViolationProgram();
    SpecModel model = SpecModel::greatModel();
    model.memNeedsValidOps = false;
    model.invalidateToReissue = 5; // make the latency observable
    const SimOutcome out =
        runForced(prog, model, {{prog.symbols.at("p"), 99}});

    // Architectural honesty: the wrong forwarded value must never
    // retire (the in-core golden check would panic; the exit code
    // seals it from the outside).
    EXPECT_TRUE(out.halted);
    EXPECT_EQ(out.exitCode, 12u);

    // The load forwarded speculatively (at least once before the
    // violation, once after the reissue).
    EXPECT_GE(out.stats.loadsForwarded, 2u);

    // Exactly one prediction resolved wrong, and the invalidation
    // nullified (at least) the store and the forwarded load.
    EXPECT_EQ(out.stats.invalidateEvents, 1u);
    EXPECT_EQ(out.stats.verifyEvents, 0u);
    EXPECT_GE(out.stats.nullifications, 2u);
    EXPECT_GE(out.stats.reissues, 2u);

    // Every reissue waited out the configured Invalidation-Reissue
    // latency.
    EXPECT_GE(out.stats.invalToReissue.count(), 2u);
    EXPECT_GE(out.stats.invalToReissue.min(), 5u);
}

TEST(SpecMem, ViolationCaughtUnderEveryInvalidationScheme)
{
    const Program prog = memViolationProgram();
    for (core::InvalScheme is :
         {core::InvalScheme::Flattened, core::InvalScheme::Hierarchical,
          core::InvalScheme::Complete}) {
        SpecModel model = SpecModel::greatModel();
        model.memNeedsValidOps = false;
        model.invalScheme = is;
        const SimOutcome out =
            runForced(prog, model, {{prog.symbols.at("p"), 99}});
        EXPECT_TRUE(out.halted) << static_cast<int>(is);
        EXPECT_EQ(out.exitCode, 12u) << static_cast<int>(is);
        EXPECT_EQ(out.stats.invalidateEvents, 1u)
            << static_cast<int>(is);
        // Recovery ran: either selective nullification or a complete
        // squash — the misforwarded load never retired silently.
        EXPECT_GT(out.stats.nullifications + out.stats.squashes, 0u)
            << static_cast<int>(is);
    }
}

TEST(SpecMem, CorrectForwardedSpeculationVerifiesInPlace)
{
    // Same program, prediction forced *correct*: the speculatively
    // forwarded load must survive verification without a reissue.
    const Program prog = memViolationProgram();
    SpecModel model = SpecModel::greatModel();
    model.memNeedsValidOps = false;
    const SimOutcome out =
        runForced(prog, model, {{prog.symbols.at("p"), 11}});
    EXPECT_TRUE(out.halted);
    EXPECT_EQ(out.exitCode, 12u);
    EXPECT_GE(out.stats.loadsForwarded, 1u);
    EXPECT_EQ(out.stats.verifyEvents, 1u);
    EXPECT_EQ(out.stats.invalidateEvents, 0u);
    EXPECT_EQ(out.stats.nullifications, 0u);
    EXPECT_EQ(out.stats.reissues, 0u);
}

TEST(SpecMem, SpecAndValidBitIdenticalWithoutPredictions)
{
    // A store/load-heavy loop run with the predictor permanently
    // silent: with no predictions there are no speculative operands,
    // so valid-ops and speculative memory resolution must make
    // identical decisions cycle for cycle.
    const Program prog = assembler::assemble(R"(
        .data
    tab: .dword 3, 1, 4, 1, 5, 9, 2, 6
        .text
        la s0, tab
        li s1, 300
        li s2, 0
        li t0, 0
    loop:
        andi t1, s2, 7
        slli t1, t1, 3
        add t2, s0, t1
        add t3, t0, s2
        sd t3, 0(t2)
        ld t4, 0(t2)     # forwards from the store just above
        add t0, t0, t4
        addi s2, s2, 1
        bne s2, s1, loop
        halt t0
    )");

    SpecModel valid_model = SpecModel::greatModel();
    SpecModel spec_model = SpecModel::greatModel();
    spec_model.memNeedsValidOps = false;
    const SimOutcome valid = runForced(prog, valid_model, {});
    const SimOutcome spec = runForced(prog, spec_model, {});

    EXPECT_TRUE(valid.halted);
    EXPECT_TRUE(spec.halted);
    EXPECT_EQ(spec.exitCode, valid.exitCode);
    EXPECT_EQ(spec.stats.cycles, valid.stats.cycles);
    EXPECT_EQ(spec.stats.issued, valid.stats.issued);
    EXPECT_EQ(spec.stats.retired, valid.stats.retired);
    EXPECT_EQ(spec.stats.fetched, valid.stats.fetched);
    EXPECT_EQ(spec.stats.loadsForwarded, valid.stats.loadsForwarded);
    EXPECT_EQ(spec.stats.dcacheMisses, valid.stats.dcacheMisses);
    EXPECT_EQ(spec.stats.nullifications, 0u);
    EXPECT_GT(valid.stats.loadsForwarded, 0u); // forwarding exercised
}

TEST(SpecMem, SpecResolutionNoSlowerThanValidOnForwardedChain)
{
    // With an always-correct forced prediction feeding a store -> load
    // -> use chain, speculative memory resolution forwards early while
    // valid-ops waits for verification + verifyAddrToMem: spec must
    // not lose.
    const Program prog = memViolationProgram();
    SpecModel valid_model = SpecModel::greatModel();
    SpecModel spec_model = SpecModel::greatModel();
    spec_model.memNeedsValidOps = false;
    const Forced correct = {{prog.symbols.at("p"), 11}};
    const SimOutcome valid = runForced(prog, valid_model, correct);
    const SimOutcome spec = runForced(prog, spec_model, correct);
    EXPECT_EQ(valid.exitCode, 12u);
    EXPECT_EQ(spec.exitCode, 12u);
    EXPECT_LE(spec.stats.cycles, valid.stats.cycles);
}

TEST(SpecMem, HeavyMisspeculationWithMemoryStaysExact)
{
    // PRNG-driven store/load traffic under Always confidence and
    // speculative memory resolution: maximum stress on the
    // kill-and-reissue path; architectural results must stay exact.
    const Program prog = assembler::assemble(R"(
        .data
    tab: .dword 0, 0, 0, 0, 0, 0, 0, 0
        .text
        la s0, tab
        li s1, 88172645463325252
        li s2, 150
        li s3, 0
    loop:
        slli t0, s1, 13
        xor s1, s1, t0
        srli t0, s1, 7
        xor s1, s1, t0
        andi t1, s1, 7
        slli t1, t1, 3
        add t2, s0, t1
        sd s1, 0(t2)
        ld t3, 0(t2)
        add s3, s3, t3
        addi s2, s2, -1
        bnez s2, loop
        halt s3
    )");
    const SimOutcome base = runPlain(prog);

    for (const char *name : {"super", "great", "good"}) {
        CoreConfig cfg;
        cfg.useValuePrediction = true;
        cfg.model = SpecModel::byName(name);
        cfg.model.memNeedsValidOps = false;
        cfg.confidence = ConfidenceKind::Always;
        const SimOutcome out = OooCore(prog, cfg).run();
        EXPECT_TRUE(out.halted) << name;
        EXPECT_EQ(out.exitCode, base.exitCode) << name;
    }
}

TEST(Spec, PipelineTracerRecordsSpecEvents)
{
    const Program prog = fig1Program();
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.tracePipeline = true;
    OooCore core(prog, cfg);
    core.setPredictionOverride(
        [&](std::uint64_t pc,
            std::uint64_t) -> std::optional<std::uint64_t> {
            if (pc == prog.symbols.at("c1"))
                return 99; // wrong
            return std::nullopt;
        });
    core.run();
    const std::string diagram = core.tracer().render();
    EXPECT_NE(diagram.find("EX"), std::string::npos);
    EXPECT_NE(diagram.find("RT"), std::string::npos);
    EXPECT_NE(diagram.find("I"), std::string::npos); // invalidation
}

// ---- alternative verification / invalidation schemes (§3.1/§3.2) -----

class SchemeCorrectness
    : public ::testing::TestWithParam<std::pair<core::VerifyScheme,
                                                core::InvalScheme>>
{
};

TEST_P(SchemeCorrectness, HeavyMisspeculationStaysExact)
{
    const auto [vs, is] = GetParam();
    const Program prog = assembler::assemble(R"(
        li s0, 1234567
        li s1, 150
        li s2, 0
    loop:
        slli t0, s0, 13
        xor s0, s0, t0
        srli t0, s0, 7
        xor s0, s0, t0
        andi t1, s0, 31
        addi t2, t1, 5
        add t3, t2, t1
        add s2, s2, t3
        addi s1, s1, -1
        bnez s1, loop
        halt s2
    )");
    const SimOutcome base = runPlain(prog);

    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.model.verifyScheme = vs;
    cfg.model.invalScheme = is;
    cfg.confidence = ConfidenceKind::Always;
    const SimOutcome out = OooCore(prog, cfg).run();
    EXPECT_EQ(out.exitCode, base.exitCode);
    EXPECT_TRUE(out.halted);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeCorrectness,
    ::testing::Values(
        std::pair{core::VerifyScheme::Flattened,
                  core::InvalScheme::Flattened},
        std::pair{core::VerifyScheme::Hierarchical,
                  core::InvalScheme::Hierarchical},
        std::pair{core::VerifyScheme::RetirementBased,
                  core::InvalScheme::Flattened},
        std::pair{core::VerifyScheme::Hybrid,
                  core::InvalScheme::Flattened},
        std::pair{core::VerifyScheme::Flattened,
                  core::InvalScheme::Complete}));

/**
 * Run chainLoop with every eligible instruction force-predicted
 * correctly — deterministic speculation with no predictor-table noise,
 * so verification-scheme timing is the only difference between runs.
 */
SimOutcome
runChainForcedCorrect(const Program &prog, core::VerifyScheme vs)
{
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.model.verifyScheme = vs;
    OooCore core(prog, cfg);
    core.setPredictionOverride(
        [](std::uint64_t, std::uint64_t correct)
            -> std::optional<std::uint64_t> { return correct; });
    return core.run();
}

TEST(Schemes, HierarchicalVerifyNoFasterThanFlattened)
{
    const Program prog = chainLoop(300);
    const SimOutcome flat =
        runChainForcedCorrect(prog, core::VerifyScheme::Flattened);
    const SimOutcome hier =
        runChainForcedCorrect(prog, core::VerifyScheme::Hierarchical);
    EXPECT_EQ(flat.exitCode, hier.exitCode);
    EXPECT_GE(hier.stats.cycles, flat.stats.cycles);
}

TEST(Schemes, RetirementBasedVerifyNoFasterThanFlattened)
{
    const Program prog = chainLoop(300);
    const SimOutcome flat =
        runChainForcedCorrect(prog, core::VerifyScheme::Flattened);
    const SimOutcome retire =
        runChainForcedCorrect(prog, core::VerifyScheme::RetirementBased);
    EXPECT_EQ(flat.exitCode, retire.exitCode);
    EXPECT_GE(retire.stats.cycles, flat.stats.cycles);
}

TEST(Schemes, CompleteInvalidationNoFasterThanSelective)
{
    const Program prog = assembler::assemble(R"(
        li s0, 987654321
        li s1, 200
        li s2, 0
    loop:
        slli t0, s0, 13
        xor s0, s0, t0
        srli t0, s0, 7
        xor s0, s0, t0
        andi t1, s0, 15
        add s2, s2, t1
        addi s1, s1, -1
        bnez s1, loop
        halt s2
    )");
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.confidence = ConfidenceKind::Always;

    cfg.model = SpecModel::greatModel();
    const SimOutcome sel = OooCore(prog, cfg).run();

    cfg.model.invalScheme = core::InvalScheme::Complete;
    const SimOutcome comp = OooCore(prog, cfg).run();

    EXPECT_EQ(sel.exitCode, comp.exitCode);
    EXPECT_GE(comp.stats.cycles, sel.stats.cycles);
    EXPECT_GT(comp.stats.squashes, sel.stats.squashes);
}

// ---- selection policies (§3.5) ----------------------------------------

class SelectionPolicies
    : public ::testing::TestWithParam<core::SelectPolicy>
{
};

TEST_P(SelectionPolicies, CorrectUnderHeavyMisspeculation)
{
    const Program prog = assembler::assemble(R"(
        li s0, 424242
        li s1, 120
        li s2, 0
    loop:
        slli t0, s0, 13
        xor s0, s0, t0
        srli t0, s0, 7
        xor s0, s0, t0
        andi t1, s0, 31
        addi t2, t1, 3
        add s2, s2, t2
        addi s1, s1, -1
        bnez s1, loop
        halt s2
    )");
    const SimOutcome base = runPlain(prog);

    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.model.selectPolicy = GetParam();
    cfg.confidence = ConfidenceKind::Always;
    const SimOutcome out = OooCore(prog, cfg).run();
    EXPECT_TRUE(out.halted);
    EXPECT_EQ(out.exitCode, base.exitCode);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SelectionPolicies,
    ::testing::Values(core::SelectPolicy::TypedSpecLast,
                      core::SelectPolicy::TypedOnly,
                      core::SelectPolicy::OldestFirst,
                      core::SelectPolicy::TypedSpecFirst));

TEST(SelectionPolicies2, PoliciesActuallyChangeSchedule)
{
    // Under issue-bandwidth pressure the policies must produce
    // different cycle counts for at least one pair.
    const Program prog = chainLoop(150);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.issueWidth = 2;
    cfg.windowSize = 16;
    cfg.confidence = ConfidenceKind::Oracle;

    std::set<std::uint64_t> cycles;
    for (core::SelectPolicy p :
         {core::SelectPolicy::TypedSpecLast,
          core::SelectPolicy::OldestFirst,
          core::SelectPolicy::TypedSpecFirst}) {
        cfg.model = SpecModel::greatModel();
        cfg.model.selectPolicy = p;
        cycles.insert(OooCore(prog, cfg).run().stats.cycles);
    }
    EXPECT_GT(cycles.size(), 1u);
}

// ---- Fig. 4 style accuracy accounting ---------------------------------

TEST(Accounting, BreakdownSumsToEligible)
{
    const Program prog = chainLoop(200);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.confidence = ConfidenceKind::Real;
    const SimOutcome out = OooCore(prog, cfg).run();
    EXPECT_EQ(out.stats.vpCH + out.stats.vpCL + out.stats.vpIH
                  + out.stats.vpIL,
              out.stats.vpEligible);
    EXPECT_GT(out.stats.vpEligible, 0u);
}

TEST(Accounting, OracleConfidencePutsCorrectnessInCH)
{
    const Program prog = chainLoop(200);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.confidence = ConfidenceKind::Oracle;
    const SimOutcome out = OooCore(prog, cfg).run();
    // With oracle confidence, every confident prediction is correct
    // and every unconfident one incorrect.
    EXPECT_EQ(out.stats.vpCL, 0u);
    EXPECT_EQ(out.stats.vpIH, 0u);
    EXPECT_GT(out.stats.vpCH, 0u);
}

} // namespace
