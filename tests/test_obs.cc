/**
 * @file
 * Tests for the observability layer: counter/histogram registry (and
 * the CoreStats bridge), histogram bucketing edge cases, interval
 * metrics sampling (determinism across worker counts, conservation
 * against end-of-run totals), the Chrome trace_event writer, the
 * pipeline-tracer retained window and export, and sweep job spans.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <vector>

#include "vsim/core/core_stats.hh"
#include "vsim/core/pipeline_trace.hh"
#include "vsim/obs/interval.hh"
#include "vsim/obs/registry.hh"
#include "vsim/obs/trace_export.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"

namespace
{

using namespace vsim;

// ---- tiny JSON validator ----------------------------------------------
// Like test_sweep's, plus string escapes and true/false literals (the
// observability writers escape and emit booleans).

class MiniJson
{
  public:
    explicit MiniJson(const std::string &text) : s(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

    int objects = 0;
    std::vector<std::string> keys;

    int
    count(const std::string &key) const
    {
        int n = 0;
        for (const auto &k : keys)
            n += k == key;
        return n;
    }

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        const char c = s[pos];
        if (c == '[')
            return array();
        if (c == '{')
            return object();
        if (c == '"')
            return string(nullptr);
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        return number();
    }

    bool
    literal(const std::string &word)
    {
        if (s.compare(pos, word.size(), word) != 0)
            return false;
        pos += word.size();
        return true;
    }

    bool
    array()
    {
        ++pos; // [
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    object()
    {
        ++pos; // {
        ++objects;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            keys.push_back(key);
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string *out)
    {
        if (peek() != '"')
            return false;
        ++pos;
        std::string v;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
            }
            v += s[pos++];
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        if (out)
            *out = v;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == '+'
                   || s[pos] == '-'))
            ++pos;
        return pos > start;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    void
    skipWs()
    {
        while (pos < s.size()
               && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    std::string s;
    std::size_t pos = 0;
};

// ---- registry ---------------------------------------------------------

TEST(Registry, CounterFindOrCreate)
{
    obs::Registry reg;
    obs::Counter &c = reg.counter("foo", "a foo", "events");
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);

    // Same name returns the same counter; description is not
    // overwritten.
    obs::Counter &again = reg.counter("foo", "ignored", "ignored");
    EXPECT_EQ(&again, &c);
    EXPECT_EQ(reg.counterCount(), 1u);
    EXPECT_EQ(again.description(), "a foo");

    EXPECT_NE(reg.findCounter("foo"), nullptr);
    EXPECT_EQ(reg.findCounter("foo")->value(), 5u);
    EXPECT_EQ(reg.findCounter("bar"), nullptr);
}

TEST(Registry, ReferencesSurviveGrowth)
{
    obs::Registry reg;
    obs::Counter &first = reg.counter("first", "d", "u");
    for (int i = 0; i < 200; ++i)
        reg.counter("c" + std::to_string(i), "d", "u");
    first.set(7);
    EXPECT_EQ(reg.findCounter("first")->value(), 7u);
}

TEST(Registry, HistogramReplaceByName)
{
    obs::Registry reg;
    obs::Histogram h{"lat", "latency", "cycles", 2, 4};
    h.sample(1);
    reg.histogram(h);
    EXPECT_EQ(reg.findHistogram("lat")->count(), 1u);

    h.sample(3);
    reg.histogram(h);
    EXPECT_EQ(reg.histogramCount(), 1u);
    EXPECT_EQ(reg.findHistogram("lat")->count(), 2u);
}

TEST(Registry, JsonParsesAndEscapes)
{
    obs::Registry reg;
    reg.counter("weird \"name\"", "desc with \\ and \n", "u").set(3);
    obs::Histogram h{"h", "d", "u", 1, 2};
    h.sample(0);
    reg.histogram(h);

    MiniJson parser(reg.toJson());
    ASSERT_TRUE(parser.parse()) << reg.toJson();
    EXPECT_EQ(parser.count("counters"), 1);
    EXPECT_EQ(parser.count("histograms"), 1);
}

TEST(RegistryBridge, EveryStatHasACounter)
{
    core::CoreStats s;
    s.cycles = 100;
    s.retired = 80;
    s.vpCH = 7;
    s.dcacheMisses = 3;
    s.verifyLatency.sample(12);

    obs::Registry reg;
    core::registerStats(reg, s);

    // Spot-check values and JSON-schema name parity with sim/report.
    for (const char *name :
         {"cycles", "retired", "fetched", "dispatched", "issued",
          "loads", "stores", "branches", "cond_branches",
          "cond_mispredicts", "squashes", "vp_eligible", "vp_ch",
          "vp_cl", "vp_ih", "vp_il", "vp_speculated", "verify_events",
          "invalidate_events", "nullifications", "reissues",
          "loads_forwarded", "icache_misses", "dcache_misses"}) {
        EXPECT_NE(reg.findCounter(name), nullptr) << name;
    }
    EXPECT_EQ(reg.findCounter("cycles")->value(), 100u);
    EXPECT_EQ(reg.findCounter("vp_ch")->value(), 7u);

    ASSERT_NE(reg.findHistogram("verify_latency"), nullptr);
    EXPECT_EQ(reg.findHistogram("verify_latency")->count(), 1u);
    EXPECT_NE(reg.findHistogram("invalidate_to_reissue"), nullptr);
    EXPECT_NE(reg.findHistogram("spec_in_flight"), nullptr);

    MiniJson parser(reg.toJson());
    ASSERT_TRUE(parser.parse());
}

// ---- histogram bucketing ---------------------------------------------

TEST(Histogram, EmptyIsWellDefined)
{
    obs::Histogram h{"h", "d", "u", 4, 8};
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    MiniJson parser(h.toJson());
    EXPECT_TRUE(parser.parse()) << h.toJson();
}

TEST(Histogram, SingleSample)
{
    obs::Histogram h{"h", "d", "u", 4, 8};
    h.sample(5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 5u);
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_EQ(h.mean(), 5.0);
    EXPECT_EQ(h.bucket(1), 1u); // [4,8)
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, BucketBoundaries)
{
    obs::Histogram h{"h", "d", "u", 4, 2}; // [0,4) [4,8) overflow
    h.sample(0);
    h.sample(3);
    h.sample(4);
    h.sample(7);
    h.sample(8);  // first overflow value
    h.sample(1000);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 2u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1000u);
}

TEST(Histogram, EqualityFollowsContent)
{
    obs::Histogram a{"h", "d", "u", 1, 4};
    obs::Histogram b{"h", "d", "u", 1, 4};
    EXPECT_EQ(a, b);
    a.sample(2);
    EXPECT_NE(a, b);
    b.sample(2);
    EXPECT_EQ(a, b);
}

// ---- interval metrics -------------------------------------------------

TEST(Interval, DerivedRates)
{
    obs::IntervalSample s;
    s.cycles = 100;
    s.retired = 250;
    s.occupancySum = 4800;
    s.condBranches = 10;
    s.condMispredicts = 4;
    s.invalidateEvents = 5;
    EXPECT_DOUBLE_EQ(s.ipc(), 2.5);
    EXPECT_DOUBLE_EQ(s.occupancyAvg(), 48.0);
    EXPECT_DOUBLE_EQ(s.mispredictRate(), 0.4);
    EXPECT_DOUBLE_EQ(s.invalidationRate(), 0.05);

    obs::IntervalSample zero;
    EXPECT_EQ(zero.ipc(), 0.0);
    EXPECT_EQ(zero.mispredictRate(), 0.0);
}

sim::SweepJob
metricsJob(const std::string &workload, std::uint64_t interval,
           bool vp = true)
{
    sim::SweepJob job;
    job.label = workload;
    job.workload = workload;
    job.scale = 1;
    job.cfg = vp ? sim::vpConfig({8, 48}, core::SpecModel::greatModel(),
                                 core::ConfidenceKind::Real,
                                 core::UpdateTiming::Delayed)
                 : sim::baseConfig({8, 48});
    job.cfg.metricsInterval = interval;
    return job;
}

TEST(Interval, SeriesConservesRunTotals)
{
    const sim::RunResult r =
        sim::runWorkload("queens", 1, metricsJob("queens", 256).cfg);
    ASSERT_FALSE(r.intervals.empty());
    EXPECT_EQ(r.intervals.period, 256u);

    std::uint64_t cycles = 0, retired = 0, invals = 0, verifies = 0;
    std::uint64_t prev_end = 0;
    for (const obs::IntervalSample &s : r.intervals.samples) {
        EXPECT_EQ(s.cycleStart, prev_end); // contiguous, gap-free
        prev_end = s.cycleStart + s.cycles;
        cycles += s.cycles;
        retired += s.retired;
        invals += s.invalidateEvents;
        verifies += s.verifyEvents;
    }
    EXPECT_EQ(cycles, r.stats.cycles);
    EXPECT_EQ(retired, r.stats.retired);
    EXPECT_EQ(invals, r.stats.invalidateEvents);
    EXPECT_EQ(verifies, r.stats.verifyEvents);
}

TEST(Interval, SeriesIdenticalAcrossWorkerCounts)
{
    const std::vector<sim::SweepJob> jobs = {
        metricsJob("queens", 200), metricsJob("compress", 200),
        metricsJob("m88k", 200, false)};

    sim::RunCache serial_cache, parallel_cache;
    sim::SweepRunner serial(1, &serial_cache);
    sim::SweepRunner parallel(8, &parallel_cache);
    const auto a = serial.run(jobs);
    const auto b = parallel.run(jobs);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_FALSE(a[i].intervals.empty()) << jobs[i].workload;
        EXPECT_EQ(a[i].intervals, b[i].intervals) << jobs[i].workload;
        EXPECT_EQ(a[i].stats.verifyLatency, b[i].stats.verifyLatency);
        EXPECT_EQ(a[i].stats.specInFlight, b[i].stats.specInFlight);
    }
}

TEST(Interval, DisabledProducesNoSamples)
{
    const sim::RunResult r =
        sim::runWorkload("queens", 1, metricsJob("queens", 0).cfg);
    EXPECT_TRUE(r.intervals.empty());
    EXPECT_EQ(r.intervals.period, 0u);
}

TEST(Interval, JobKeyIncludesMetricsInterval)
{
    const sim::SweepJob a = metricsJob("queens", 0);
    const sim::SweepJob b = metricsJob("queens", 100);
    EXPECT_NE(sim::jobKey(a), sim::jobKey(b));
}

TEST(Interval, CsvShapeMatchesSamples)
{
    const sim::RunResult r =
        sim::runWorkload("queens", 1, metricsJob("queens", 512).cfg);
    std::ostringstream os;
    os << obs::IntervalSeries::csvHeader("");
    r.intervals.appendCsv(os, "");
    const std::string csv = os.str();

    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, r.intervals.samples.size() + 1);

    // Header and rows agree on the column count.
    const std::size_t header_cols =
        static_cast<std::size_t>(
            std::count(csv.begin(), csv.begin() + csv.find('\n'), ','))
        + 1;
    const std::string first_row = csv.substr(
        csv.find('\n') + 1,
        csv.find('\n', csv.find('\n') + 1) - csv.find('\n') - 1);
    const std::size_t row_cols =
        static_cast<std::size_t>(
            std::count(first_row.begin(), first_row.end(), ','))
        + 1;
    EXPECT_EQ(header_cols, row_cols);

    MiniJson parser(r.intervals.toJson());
    EXPECT_TRUE(parser.parse());
}

// ---- trace_event writer ----------------------------------------------

TEST(TraceWriter, RoundTripsThroughParser)
{
    obs::TraceWriter w;
    w.processName(1, "pipeline");
    w.threadName(1, 7, "#7 addi \"x\"\\y");
    w.complete("EX", "pipeline", 10, 3, 1, 7,
               {{"note", obs::TraceWriter::str("a \"quoted\" value")},
                {"n", obs::TraceWriter::num(std::uint64_t{42})},
                {"hit", obs::TraceWriter::boolean(true)}});
    w.instant("squash", "events", 12, 1, 7);
    w.counter("ipc", 20, 1, {{"ipc", obs::TraceWriter::num(1.25)}});
    EXPECT_EQ(w.size(), 5u);

    const std::string js = w.toJson();
    MiniJson parser(js);
    ASSERT_TRUE(parser.parse()) << js;
    EXPECT_EQ(parser.count("traceEvents"), 1);
    // 5 events, each an object with ph/ts/pid.
    EXPECT_EQ(parser.count("ph"), 5);
    EXPECT_EQ(parser.count("dur"), 1);  // only the complete event
}

TEST(TraceWriter, EmptyTraceIsValid)
{
    obs::TraceWriter w;
    EXPECT_TRUE(w.empty());
    MiniJson parser(w.toJson());
    EXPECT_TRUE(parser.parse()) << w.toJson();
}

// ---- pipeline tracer: retained window + export -----------------------

TEST(TracerCap, DropsOldestRows)
{
    core::PipelineTracer t;
    t.setCapacity(3);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
        t.label(seq, "i" + std::to_string(seq));
        t.note(seq, seq, "EX");
    }
    EXPECT_EQ(t.dropped(), 2u);
    const std::string out = t.render();
    EXPECT_EQ(out.find("i1"), std::string::npos);
    EXPECT_EQ(out.find("i2"), std::string::npos);
    EXPECT_NE(out.find("i3"), std::string::npos);
    EXPECT_NE(out.find("i5"), std::string::npos);
    EXPECT_NE(out.find("2 oldest"), std::string::npos);
}

TEST(TracerCap, UnboundedByDefault)
{
    core::PipelineTracer t;
    EXPECT_EQ(t.capacity(), 0u);
    for (std::uint64_t seq = 1; seq <= 100; ++seq)
        t.note(seq, seq, "D");
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerCap, ClearResetsDropCount)
{
    core::PipelineTracer t;
    t.setCapacity(1);
    t.note(1, 1, "D");
    t.note(2, 1, "D");
    EXPECT_EQ(t.dropped(), 1u);
    t.clear();
    EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerExport, CoalescesRunsIntoSpans)
{
    core::PipelineTracer t;
    t.label(1, "mul t0, t1, t2");
    t.note(1, 0, "D");
    t.note(1, 1, "EX");
    t.note(1, 2, "EX");
    t.note(1, 3, "EX");
    t.note(1, 4, "RT");

    obs::TraceWriter w;
    t.exportTo(w);
    // process name + thread name + 3 spans (D, EX x3 coalesced, RT).
    EXPECT_EQ(w.size(), 5u);

    const std::string js = w.toJson();
    MiniJson parser(js);
    ASSERT_TRUE(parser.parse()) << js;
    EXPECT_NE(js.find("\"dur\": 3"), std::string::npos) << js;
    EXPECT_NE(js.find("mul t0, t1, t2"), std::string::npos);
}

// ---- sweep job spans --------------------------------------------------

TEST(SweepSpans, RecordedForEveryJobAndExported)
{
    std::vector<sim::SweepJob> jobs = {metricsJob("queens", 0),
                                       metricsJob("compress", 0),
                                       metricsJob("queens", 0)};
    jobs[2].label = "dup of job 0";

    sim::RunCache cache;
    sim::SweepRunner runner(4, &cache);
    std::vector<sim::JobSpan> spans;
    runner.setSpanSink(&spans);
    const auto results = runner.run(jobs);

    ASSERT_EQ(spans.size(), jobs.size());
    int hits = 0;
    for (const sim::JobSpan &sp : spans) {
        EXPECT_EQ(sp.label, jobs[sp.index].label);
        EXPECT_EQ(sp.workload, jobs[sp.index].workload);
        EXPECT_GE(sp.startNs, sp.submitNs);
        EXPECT_GE(sp.endNs, sp.startNs);
        EXPECT_GE(sp.worker, 0); // pool path
        hits += sp.cacheHit;
    }
    // Jobs 0 and 2 share a key: exactly one of them simulated.
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(results[0].stats.cycles, results[2].stats.cycles);

    const std::string js = sim::sweepTraceJson(spans);
    MiniJson parser(js);
    ASSERT_TRUE(parser.parse()) << js;
    EXPECT_NE(js.find("queue_wait_us"), std::string::npos);
    EXPECT_NE(js.find("cache_hit"), std::string::npos);
    EXPECT_NE(js.find("dup of job 0"), std::string::npos);
}

TEST(SweepSpans, SerialPathUsesCallerTrack)
{
    sim::RunCache cache;
    sim::SweepRunner runner(1, &cache);
    std::vector<sim::JobSpan> spans;
    runner.setSpanSink(&spans);
    runner.run({metricsJob("queens", 0)});
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_EQ(spans[0].worker, -1);
    EXPECT_FALSE(spans[0].cacheHit);

    MiniJson parser(sim::sweepTraceJson(spans));
    EXPECT_TRUE(parser.parse());
}

TEST(Counters, RunResultRegistryJson)
{
    const sim::RunResult r =
        sim::runWorkload("queens", 1, metricsJob("queens", 0).cfg);
    const std::string js = sim::countersJson(r);
    MiniJson parser(js);
    ASSERT_TRUE(parser.parse()) << js;
    EXPECT_NE(js.find("\"verify_latency\""), std::string::npos);
    EXPECT_NE(js.find("\"spec_in_flight\""), std::string::npos);
}

} // namespace
