/**
 * @file
 * Tests of the event-driven wakeup/select path: IssueScheduler state
 * transitions in isolation, then the load-bearing system property —
 * full simulations through the ready-list scheduler are bit-identical
 * to the legacy per-cycle window scan.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vsim/core/issue_scheduler.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;
using core::IssueScheduler;
using core::WakeClass;

// =====================================================================
// IssueScheduler unit
// =====================================================================

std::vector<int>
sorted(std::vector<int> v)
{
    std::sort(v.begin(), v.end());
    return v;
}

TEST(IssueScheduler, UntouchedSlotsAreIdle)
{
    IssueScheduler s;
    s.reset(8);
    const auto &ready = s.collectReady(0, [](int) {
        ADD_FAILURE() << "classifier called without a touch";
        return WakeClass::idle();
    });
    EXPECT_TRUE(ready.empty());
}

TEST(IssueScheduler, TouchClassifiesOnceNextCollect)
{
    IssueScheduler s;
    s.reset(8);
    s.touch(3);
    s.touch(3); // duplicate touches collapse
    int calls = 0;
    const auto &ready = s.collectReady(0, [&](int slot) {
        EXPECT_EQ(slot, 3);
        ++calls;
        return WakeClass::ready();
    });
    EXPECT_EQ(calls, 1);
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 3);
}

TEST(IssueScheduler, ReadyPersistsUntilRemoved)
{
    IssueScheduler s;
    s.reset(8);
    s.touch(2);
    auto classify = [](int) { return WakeClass::ready(); };
    EXPECT_EQ(s.collectReady(0, classify).size(), 1u);
    // Still ready next cycle with no further touches, no reclassify.
    const auto &again = s.collectReady(1, [](int) {
        ADD_FAILURE() << "ready slot must not reclassify";
        return WakeClass::idle();
    });
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0], 2);

    s.remove(2); // issued
    EXPECT_TRUE(s.collectReady(2, classify).empty());
    EXPECT_EQ(s.readyCount(), 0u);
}

TEST(IssueScheduler, TimedSlotWakesAtItsCycle)
{
    IssueScheduler s;
    s.reset(8);
    s.touch(5);
    auto classifyAt = [&](std::uint64_t now) {
        return [now](int) {
            // Conditions hold from cycle 4 on.
            return now >= 4 ? WakeClass::ready() : WakeClass::timed(4);
        };
    };
    EXPECT_TRUE(s.collectReady(1, classifyAt(1)).empty());
    // No touches needed: the timer alone re-presents the slot.
    EXPECT_TRUE(s.collectReady(2, classifyAt(2)).empty());
    EXPECT_TRUE(s.collectReady(3, classifyAt(3)).empty());
    const auto &ready = s.collectReady(4, classifyAt(4));
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 5);
}

TEST(IssueScheduler, TimedReclassifiesWhenConditionsShift)
{
    IssueScheduler s;
    s.reset(8);
    s.touch(1);
    // Armed for cycle 3...
    EXPECT_TRUE(
        s.collectReady(1, [](int) { return WakeClass::timed(3); })
            .empty());
    // ...but by cycle 3 an event pushed the wake further out.
    EXPECT_TRUE(
        s.collectReady(3, [](int) { return WakeClass::timed(6); })
            .empty());
    EXPECT_TRUE(s.collectReady(5, [](int) {
                     ADD_FAILURE() << "not due yet";
                     return WakeClass::idle();
                 }).empty());
    const auto &ready =
        s.collectReady(6, [](int) { return WakeClass::ready(); });
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 1);
}

TEST(IssueScheduler, ParkedWaitsForTouch)
{
    IssueScheduler s;
    s.reset(8);
    s.touch(4);
    EXPECT_TRUE(
        s.collectReady(0, [](int) { return WakeClass::parked(); })
            .empty());
    // No timer: without a touch the slot is never re-examined.
    EXPECT_TRUE(s.collectReady(50, [](int) {
                     ADD_FAILURE() << "parked slot reclassified";
                     return WakeClass::idle();
                 }).empty());
    s.touch(4); // the operand broadcast arrived
    const auto &ready =
        s.collectReady(51, [](int) { return WakeClass::ready(); });
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 4);
}

TEST(IssueScheduler, TouchDemotesQueuedReadySlot)
{
    IssueScheduler s;
    s.reset(8);
    s.touch(0);
    s.touch(6);
    auto ready2 =
        sorted(s.collectReady(0, [](int) { return WakeClass::ready(); }));
    EXPECT_EQ(ready2, (std::vector<int>{0, 6}));

    // An invalidation disturbs slot 6's operands: parked again.
    s.touch(6);
    const auto &ready = s.collectReady(1, [](int slot) {
        EXPECT_EQ(slot, 6);
        return WakeClass::parked();
    });
    ASSERT_EQ(ready.size(), 1u);
    EXPECT_EQ(ready[0], 0);
    EXPECT_EQ(s.readyCount(), 1u);
}

TEST(IssueScheduler, ResetDropsAllState)
{
    IssueScheduler s;
    s.reset(4);
    s.touch(1);
    s.collectReady(0, [](int) { return WakeClass::timed(9); });
    s.reset(4);
    EXPECT_TRUE(s.collectReady(9, [](int) {
                     ADD_FAILURE() << "stale timer survived reset";
                     return WakeClass::idle();
                 }).empty());
}

// =====================================================================
// system property: scan and ready-list runs are bit-identical
// =====================================================================

core::SimOutcome
runWith(const assembler::Program &prog, core::CoreConfig cfg,
        core::SchedulerKind kind)
{
    cfg.scheduler = kind;
    core::OooCore c(prog, cfg);
    return c.run();
}

void
expectIdentical(const core::SimOutcome &a, const core::SimOutcome &b)
{
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.retired, b.stats.retired);
    EXPECT_EQ(a.stats.fetched, b.stats.fetched);
    EXPECT_EQ(a.stats.dispatched, b.stats.dispatched);
    EXPECT_EQ(a.stats.issued, b.stats.issued);
    EXPECT_EQ(a.stats.squashes, b.stats.squashes);
    EXPECT_EQ(a.stats.nullifications, b.stats.nullifications);
    EXPECT_EQ(a.stats.reissues, b.stats.reissues);
    EXPECT_EQ(a.stats.verifyEvents, b.stats.verifyEvents);
    EXPECT_EQ(a.stats.invalidateEvents, b.stats.invalidateEvents);
    EXPECT_EQ(a.stats.vpCH, b.stats.vpCH);
    EXPECT_EQ(a.stats.vpCL, b.stats.vpCL);
    EXPECT_EQ(a.stats.vpIH, b.stats.vpIH);
    EXPECT_EQ(a.stats.vpIL, b.stats.vpIL);
    EXPECT_EQ(a.stats.condMispredicts, b.stats.condMispredicts);
    EXPECT_EQ(a.stats.loadsForwarded, b.stats.loadsForwarded);
    EXPECT_EQ(a.exitCode, b.exitCode);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.halted, b.halted);
}

TEST(SchedulerIdentity, BaseCore)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    const core::CoreConfig cfg = sim::baseConfig({8, 48});
    expectIdentical(
        runWith(prog, cfg, core::SchedulerKind::Scan),
        runWith(prog, cfg, core::SchedulerKind::ReadyList));
}

TEST(SchedulerIdentity, NamedModels)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    for (const char *model : {"super", "great", "good"}) {
        SCOPED_TRACE(model);
        const core::CoreConfig cfg = sim::vpConfig(
            {8, 48}, core::SpecModel::byName(model),
            core::ConfidenceKind::Real, core::UpdateTiming::Delayed);
        expectIdentical(
            runWith(prog, cfg, core::SchedulerKind::Scan),
            runWith(prog, cfg, core::SchedulerKind::ReadyList));
    }
}

TEST(SchedulerIdentity, AcrossSchemesAndSelection)
{
    // The combinations with the thorniest wakeup interactions: waves
    // that reset operands mid-flight, retirement-only validation, and
    // the speculation-first selection order.
    struct Combo
    {
        core::VerifyScheme v;
        core::InvalScheme i;
        core::SelectPolicy s;
    };
    const Combo combos[] = {
        {core::VerifyScheme::Hierarchical, core::InvalScheme::Flattened,
         core::SelectPolicy::TypedSpecLast},
        {core::VerifyScheme::Flattened, core::InvalScheme::Hierarchical,
         core::SelectPolicy::TypedSpecFirst},
        {core::VerifyScheme::RetirementBased,
         core::InvalScheme::Complete, core::SelectPolicy::OldestFirst},
        {core::VerifyScheme::Hybrid, core::InvalScheme::Hierarchical,
         core::SelectPolicy::TypedOnly},
    };
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    for (const Combo &c : combos) {
        SCOPED_TRACE(core::verifySchemeName(c.v)
                     + std::string("/")
                     + core::invalSchemeName(c.i) + "/"
                     + core::selectPolicyName(c.s));
        core::SpecModel model = core::SpecModel::greatModel();
        model.verifyScheme = c.v;
        model.invalScheme = c.i;
        model.selectPolicy = c.s;
        const core::CoreConfig cfg = sim::vpConfig(
            {8, 48}, model, core::ConfidenceKind::Real,
            core::UpdateTiming::Delayed);
        expectIdentical(
            runWith(prog, cfg, core::SchedulerKind::Scan),
            runWith(prog, cfg, core::SchedulerKind::ReadyList));
    }
}

TEST(SchedulerIdentity, LargeWindow)
{
    // The --window 256 configuration the perf benchmark compares.
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const core::CoreConfig cfg = sim::vpConfig(
        {8, 256}, core::SpecModel::greatModel(),
        core::ConfidenceKind::Real, core::UpdateTiming::Delayed);
    expectIdentical(
        runWith(prog, cfg, core::SchedulerKind::Scan),
        runWith(prog, cfg, core::SchedulerKind::ReadyList));
}

} // namespace
