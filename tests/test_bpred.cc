/**
 * @file
 * Unit tests for branch direction predictors: saturating-counter
 * behaviour, learning of biased and patterned branches, gshare
 * history disambiguation, and the factory.
 */

#include <gtest/gtest.h>

#include "vsim/base/logging.hh"
#include "vsim/bpred/bpred.hh"

namespace
{

using namespace vsim::bpred;

TEST(SatCounterTest, SaturatesBothEnds)
{
    SatCounter c(2, 0);
    EXPECT_FALSE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.raw(), 3);
    EXPECT_TRUE(c.taken());
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.raw(), 0);
}

TEST(SatCounterTest, HysteresisAroundMidpoint)
{
    SatCounter c(2, 1); // weakly not-taken
    EXPECT_FALSE(c.taken());
    c.increment(); // 2: weakly taken
    EXPECT_TRUE(c.taken());
    c.decrement(); // back to 1
    EXPECT_FALSE(c.taken());
}

/** All predictor kinds must learn an always-taken branch. */
class LearnsBias : public ::testing::TestWithParam<const char *>
{
};

TEST_P(LearnsBias, AlwaysTakenBranch)
{
    auto bp = makeBranchPredictor(GetParam());
    const std::uint64_t pc = 0x1000;
    // History-based predictors rotate through different counters until
    // the global history saturates, so train well past that point.
    for (int i = 0; i < 64; ++i)
        bp->update(pc, true);
    EXPECT_TRUE(bp->predict(pc)) << bp->name();
}

TEST_P(LearnsBias, AlwaysNotTakenBranch)
{
    auto bp = makeBranchPredictor(GetParam());
    const std::uint64_t pc = 0x2000;
    for (int i = 0; i < 64; ++i)
        bp->update(pc, false);
    EXPECT_FALSE(bp->predict(pc)) << bp->name();
}

INSTANTIATE_TEST_SUITE_P(Kinds, LearnsBias,
                         ::testing::Values("gshare", "bimodal", "gag"));

TEST(GshareTest, LearnsAlternatingPatternViaHistory)
{
    Gshare bp;
    const std::uint64_t pc = 0x4004;
    // Train on a strict T/NT alternation; with history in the index
    // the two phases use different counters and become predictable.
    bool dir = false;
    for (int i = 0; i < 64; ++i) {
        bp.update(pc, dir);
        dir = !dir;
    }
    int correct = 0;
    for (int i = 0; i < 32; ++i) {
        correct += bp.predict(pc) == dir;
        bp.update(pc, dir);
        dir = !dir;
    }
    EXPECT_EQ(correct, 32);
}

TEST(BimodalTest, CannotLearnAlternatingPattern)
{
    Bimodal bp;
    const std::uint64_t pc = 0x4004;
    bool dir = false;
    for (int i = 0; i < 64; ++i) {
        bp.update(pc, dir);
        dir = !dir;
    }
    int correct = 0;
    for (int i = 0; i < 32; ++i) {
        correct += bp.predict(pc) == dir;
        bp.update(pc, dir);
        dir = !dir;
    }
    // A per-PC 2-bit counter oscillates; it cannot track alternation.
    EXPECT_LT(correct, 32);
}

TEST(GshareTest, FreshPredictorDefaultsWeaklyNotTaken)
{
    Gshare bp;
    EXPECT_FALSE(bp.predict(0x5000));
}

TEST(StatsTest, OutcomeRecording)
{
    Gshare bp;
    bp.recordOutcome(true);
    bp.recordOutcome(true);
    bp.recordOutcome(false);
    EXPECT_NEAR(bp.stats().ratio(), 2.0 / 3.0, 1e-12);
}

TEST(FactoryTest, RejectsUnknownKind)
{
    EXPECT_THROW(makeBranchPredictor("perceptron"), vsim::FatalError);
}

} // namespace
