/**
 * @file
 * Tests for the cycle-attribution layer: CPI-stack conservation (the
 * per-category sums equal total cycles), bit-identity of the stacks
 * across worker counts, sweep domains and trace replay, speculation-
 * ledger lifecycle conservation, histogram percentiles, and the JSON
 * shape of the new exports.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <vector>

#include "vsim/arch/exec.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/obs/cpi.hh"
#include "vsim/obs/ledger.hh"
#include "vsim/obs/registry.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

// ---- tiny JSON validator (same shape as test_obs's) -------------------

class MiniJson
{
  public:
    explicit MiniJson(const std::string &text) : s(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

    int objects = 0;
    std::vector<std::string> keys;

    int
    count(const std::string &key) const
    {
        int n = 0;
        for (const auto &k : keys)
            n += k == key;
        return n;
    }

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        const char c = s[pos];
        if (c == '[')
            return array();
        if (c == '{')
            return object();
        if (c == '"')
            return string(nullptr);
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        return number();
    }

    bool
    literal(const std::string &word)
    {
        if (s.compare(pos, word.size(), word) != 0)
            return false;
        pos += word.size();
        return true;
    }

    bool
    array()
    {
        ++pos; // [
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    object()
    {
        ++pos; // {
        ++objects;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            keys.push_back(key);
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string *out)
    {
        if (peek() != '"')
            return false;
        ++pos;
        std::string v;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\') {
                ++pos;
                if (pos >= s.size())
                    return false;
            }
            v += s[pos++];
        }
        if (pos >= s.size())
            return false;
        ++pos;
        if (out)
            *out = v;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == '+'
                   || s[pos] == '-'))
            ++pos;
        return pos > start;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    void
    skipWs()
    {
        while (pos < s.size()
               && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    std::string s;
    std::size_t pos = 0;
};

// ---- helpers ----------------------------------------------------------

core::CoreConfig
vpQueensConfig()
{
    return sim::vpConfig({8, 48}, core::SpecModel::greatModel(),
                         core::ConfidenceKind::Real,
                         core::UpdateTiming::Delayed);
}

core::SimOutcome
runQueens(core::CoreConfig cfg)
{
    const assembler::Program prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    core::OooCore c(prog, cfg);
    return c.run();
}

// ---- histogram percentiles --------------------------------------------

TEST(HistogramPercentile, NearestRank)
{
    obs::Histogram h("lat", "latency", "cycles", 10, 10);
    // 100 samples: 50 in bucket 0, 40 in bucket 2, 10 in bucket 9.
    for (int i = 0; i < 50; ++i)
        h.sample(5);
    for (int i = 0; i < 40; ++i)
        h.sample(25);
    for (int i = 0; i < 10; ++i)
        h.sample(95);
    EXPECT_EQ(h.percentile(50), 0u);  // rank 50 falls in bucket 0
    EXPECT_EQ(h.percentile(51), 20u); // rank 51 is in bucket 2
    EXPECT_EQ(h.percentile(90), 20u);
    EXPECT_EQ(h.percentile(91), 90u);
    EXPECT_EQ(h.percentile(99), 90u);
    EXPECT_EQ(h.percentile(100), 90u);
    EXPECT_EQ(h.percentile(0), 0u); // clamped to rank 1
}

TEST(HistogramPercentile, EmptyAndOverflow)
{
    obs::Histogram h("lat", "latency", "cycles", 10, 4);
    EXPECT_EQ(h.percentile(50), 0u);
    for (int i = 0; i < 10; ++i)
        h.sample(1000); // all overflow
    // Overflow reports its inclusive lower bound.
    EXPECT_EQ(h.percentile(50), 40u);
    EXPECT_EQ(h.percentile(99), 40u);
}

TEST(HistogramPercentile, InJsonAndSummary)
{
    obs::Histogram h("lat", "latency", "cycles", 4, 8);
    for (std::uint64_t v = 0; v < 20; ++v)
        h.sample(v);
    MiniJson parser(h.toJson());
    ASSERT_TRUE(parser.parse());
    EXPECT_EQ(parser.count("p50"), 1);
    EXPECT_EQ(parser.count("p90"), 1);
    EXPECT_EQ(parser.count("p99"), 1);
    const std::string sum = h.summary();
    EXPECT_NE(sum.find("p50="), std::string::npos);
    EXPECT_NE(sum.find("p99="), std::string::npos);
}

// ---- CPI stack conservation -------------------------------------------

TEST(CpiStack, SumsToTotalCyclesBase)
{
    const sim::RunResult r =
        sim::runWorkload("queens", 1, sim::baseConfig({8, 48}));
    EXPECT_EQ(r.stats.cpi.total(), r.stats.cycles);
    // A base run never pays for speculation machinery.
    EXPECT_EQ(r.stats.cpi[obs::CpiCat::Verify], 0u);
    EXPECT_EQ(r.stats.cpi[obs::CpiCat::Reissue], 0u);
    EXPECT_EQ(r.stats.cpi[obs::CpiCat::VmispSquash], 0u);
    EXPECT_GT(r.stats.cpi[obs::CpiCat::Base], 0u);
}

TEST(CpiStack, SumsToTotalCyclesVp)
{
    const sim::RunResult r =
        sim::runWorkload("queens", 1, vpQueensConfig());
    EXPECT_EQ(r.stats.cpi.total(), r.stats.cycles);
    EXPECT_GT(r.stats.cpi[obs::CpiCat::Base], 0u);
}

TEST(CpiStack, IdenticalAcrossWorkerCounts)
{
    std::vector<sim::SweepJob> jobs;
    for (const char *wl : {"queens", "m88k", "compress"}) {
        sim::SweepJob base;
        base.label = std::string(wl) + " base";
        base.workload = wl;
        base.scale = 1;
        base.cfg = sim::baseConfig({8, 48});
        jobs.push_back(base);
        sim::SweepJob vp = base;
        vp.label = std::string(wl) + " vp";
        vp.cfg = vpQueensConfig();
        jobs.push_back(vp);
    }
    // Private caches so the second pass actually re-simulates.
    sim::RunCache cache1, cache8;
    sim::SweepRunner serial(1, &cache1);
    sim::SweepRunner pool(8, &cache8);
    const std::vector<sim::RunResult> a = serial.run(jobs);
    const std::vector<sim::RunResult> b = pool.run(jobs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        SCOPED_TRACE(jobs[i].label);
        EXPECT_EQ(a[i].stats.cpi, b[i].stats.cpi);
        EXPECT_EQ(a[i].stats.cycles, b[i].stats.cycles);
        EXPECT_EQ(a[i].stats.predMade, b[i].stats.predMade);
        EXPECT_EQ(a[i].stats.predConsumed, b[i].stats.predConsumed);
        EXPECT_EQ(a[i].stats.verifyTouches, b[i].stats.verifyTouches);
        EXPECT_EQ(a[i].stats.invalTouches, b[i].stats.invalTouches);
    }
}

TEST(CpiStack, IdenticalAcrossSweepDomains)
{
    core::CoreConfig dense = vpQueensConfig();
    dense.specLedger = true;
    dense.sweepKind = core::SweepKind::Dense;
    core::CoreConfig sparse = dense;
    sparse.sweepKind = core::SweepKind::Sparse;
    const core::SimOutcome a = runQueens(dense);
    const core::SimOutcome b = runQueens(sparse);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.cpi, b.stats.cpi);
    EXPECT_EQ(a.stats.verifyTouches, b.stats.verifyTouches);
    EXPECT_EQ(a.stats.invalTouches, b.stats.invalTouches);
    EXPECT_EQ(a.stats.predConsumed, b.stats.predConsumed);
    // The whole per-prediction ledger must agree record for record.
    EXPECT_EQ(a.ledger, b.ledger);
}

TEST(CpiStack, IdenticalAcrossTraceReplay)
{
    const std::string path =
        testing::TempDir() + "vsim_cpi_replay.vst";
    const assembler::Program prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    trace::recordTrace(prog, path);

    core::CoreConfig cfg = vpQueensConfig();
    cfg.specLedger = true;
    const core::SimOutcome direct = runQueens(cfg);
    const sim::RunResult replay =
        sim::runWorkload(sim::traceWorkloadName(path), -1, cfg);
    EXPECT_EQ(direct.stats.cycles, replay.stats.cycles);
    EXPECT_EQ(direct.stats.cpi, replay.stats.cpi);
    EXPECT_EQ(direct.ledger, replay.ledger);
}

// ---- speculation ledger -----------------------------------------------

TEST(Ledger, LifecycleConservation)
{
    core::CoreConfig cfg = vpQueensConfig();
    cfg.specLedger = true;
    const core::SimOutcome out = runQueens(cfg);
    ASSERT_TRUE(out.halted);
    const core::CoreStats &s = out.stats;

    // Aggregate conservation: every prediction reaches exactly one
    // terminal state.
    EXPECT_EQ(s.predMade,
              s.verifyEvents + s.invalidateEvents + s.predSquashed);
    EXPECT_GT(s.predMade, 0u);

    // Detailed records mirror the aggregates one to one.
    ASSERT_TRUE(out.ledger.enabled);
    ASSERT_EQ(out.ledger.records.size(), s.predMade);
    std::uint64_t verified = 0, invalidated = 0, squashed = 0;
    std::uint64_t unresolved = 0, committed = 0, consumers = 0;
    for (const obs::LedgerRecord &rec : out.ledger.records) {
        switch (rec.outcome) {
          case obs::LedgerOutcome::Verified:
            ++verified;
            break;
          case obs::LedgerOutcome::Invalidated:
            ++invalidated;
            break;
          case obs::LedgerOutcome::Squashed:
            ++squashed;
            break;
          case obs::LedgerOutcome::Unresolved:
            ++unresolved;
            break;
        }
        if (rec.committed)
            ++committed;
        consumers += rec.consumers;
        if (rec.outcome != obs::LedgerOutcome::Unresolved) {
            EXPECT_GE(rec.resolvedAt, rec.madeAt);
        }
        // A squashed or still-unresolved prediction can never have
        // retired.
        if (rec.outcome == obs::LedgerOutcome::Squashed
            || rec.outcome == obs::LedgerOutcome::Unresolved) {
            EXPECT_FALSE(rec.committed);
        }
    }
    EXPECT_EQ(unresolved, 0u) << "halted run left open predictions";
    EXPECT_EQ(verified, s.verifyEvents);
    EXPECT_EQ(invalidated, s.invalidateEvents);
    EXPECT_EQ(squashed, s.predSquashed);
    EXPECT_EQ(consumers, s.predConsumed);
    EXPECT_EQ(committed, s.vpSpeculated);
}

TEST(Ledger, DisabledByDefaultButCountersLive)
{
    const core::SimOutcome out = runQueens(vpQueensConfig());
    EXPECT_FALSE(out.ledger.enabled);
    EXPECT_TRUE(out.ledger.records.empty());
    // The aggregate lifecycle counters are collected regardless.
    EXPECT_GT(out.stats.predMade, 0u);
    EXPECT_EQ(out.stats.predMade, out.stats.verifyEvents
                                      + out.stats.invalidateEvents
                                      + out.stats.predSquashed);
}

TEST(Ledger, SpecLedgerIsPartOfTheJobKey)
{
    sim::SweepJob job;
    job.label = "x";
    job.workload = "queens";
    job.scale = 1;
    job.cfg = vpQueensConfig();
    const std::string off = sim::jobKey(job);
    job.cfg.specLedger = true;
    const std::string on = sim::jobKey(job);
    EXPECT_NE(off, on);
}

// ---- JSON exports ------------------------------------------------------

TEST(CpiReport, StacksJsonShape)
{
    const sim::RunResult r =
        sim::runWorkload("queens", 1, vpQueensConfig());
    MiniJson parser(sim::stacksJson(r));
    ASSERT_TRUE(parser.parse());
    for (std::size_t c = 0; c < obs::kCpiCatCount; ++c) {
        const std::string key =
            std::string("cpi_")
            + obs::cpiCatName(static_cast<obs::CpiCat>(c));
        EXPECT_EQ(parser.count(key), 1) << key;
    }
    EXPECT_EQ(parser.count("cycles"), 1);

    // Run JSON and counters JSON carry the same fields.
    MiniJson run_parser(sim::toJson(r));
    ASSERT_TRUE(run_parser.parse());
    EXPECT_EQ(run_parser.count("cpi_base"), 1);
    EXPECT_EQ(run_parser.count("pred_made"), 1);
    MiniJson counters(sim::countersJson(r));
    ASSERT_TRUE(counters.parse());

    // The text table renders every category and the total line.
    const std::string text = sim::stacksText(r);
    for (std::size_t c = 0; c < obs::kCpiCatCount; ++c) {
        EXPECT_NE(text.find(obs::cpiCatName(
                      static_cast<obs::CpiCat>(c))),
                  std::string::npos);
    }
    EXPECT_NE(text.find("total"), std::string::npos);
}

TEST(CpiReport, LedgerJsonShapeAndTruncation)
{
    core::CoreConfig cfg = vpQueensConfig();
    cfg.specLedger = true;
    const sim::RunResult r = sim::runWorkload("queens", 1, cfg);
    ASSERT_GT(r.ledger.records.size(), 2u);

    MiniJson full(sim::ledgerJson(r, 0));
    ASSERT_TRUE(full.parse());
    EXPECT_EQ(full.count("pred_made"), 1);
    EXPECT_EQ(full.count("truncated"), 1);
    EXPECT_EQ(static_cast<std::size_t>(full.count("outcome")),
              r.ledger.records.size());

    MiniJson capped(sim::ledgerJson(r, 2));
    ASSERT_TRUE(capped.parse());
    EXPECT_EQ(capped.count("outcome"), 2);
}

TEST(CpiReport, SweepJsonCsvAndTimingShape)
{
    std::vector<sim::SweepJob> jobs;
    sim::SweepJob job;
    job.label = "vp,great \"D/R\""; // exercises CSV/JSON escaping
    job.workload = "queens";
    job.scale = 1;
    job.cfg = vpQueensConfig();
    jobs.push_back(job);

    sim::RunCache cache;
    sim::SweepRunner runner(2, &cache);
    std::vector<sim::JobSpan> spans;
    runner.setSpanSink(&spans);
    const std::vector<sim::RunResult> results = runner.run(jobs);

    MiniJson stacks(sim::stacksJson(jobs, results));
    ASSERT_TRUE(stacks.parse());
    EXPECT_EQ(stacks.count("cpi_base"), 1);
    EXPECT_EQ(stacks.count("label"), 1);

    MiniJson ledger(sim::ledgerJson(jobs, results, 5));
    ASSERT_TRUE(ledger.parse());
    EXPECT_EQ(ledger.count("records"), 1);

    MiniJson timed(sim::toJson(jobs, results, spans));
    ASSERT_TRUE(timed.parse());
    EXPECT_EQ(timed.count("wall_ms"), 1);
    EXPECT_EQ(timed.count("inst_per_s"), 1);
    EXPECT_EQ(timed.count("cache_hit"), 1);

    // CSV: header gains one column per category, rows follow suit.
    const std::string csv = sim::toCsv(jobs, results);
    const std::string header = csv.substr(0, csv.find('\n'));
    EXPECT_NE(header.find(",cpi_base"), std::string::npos);
    EXPECT_NE(header.find(",cpi_vmisp_squash"), std::string::npos);
    const std::size_t header_cols =
        static_cast<std::size_t>(
            std::count(header.begin(), header.end(), ',')) + 1;
    // The quoted label field hides its embedded commas from a naive
    // count; strip quoted sections before counting the data row.
    std::string row = csv.substr(csv.find('\n') + 1);
    row = row.substr(0, row.find('\n'));
    std::string unquoted;
    bool in_quotes = false;
    for (char c : row) {
        if (c == '"')
            in_quotes = !in_quotes;
        else if (!in_quotes)
            unquoted += c;
    }
    const std::size_t row_cols =
        static_cast<std::size_t>(
            std::count(unquoted.begin(), unquoted.end(), ',')) + 1;
    EXPECT_EQ(row_cols, header_cols);
}

TEST(CpiReport, IntervalSeriesCarriesStacks)
{
    core::CoreConfig cfg = vpQueensConfig();
    cfg.metricsInterval = 500;
    const sim::RunResult r = sim::runWorkload("queens", 1, cfg);
    ASSERT_FALSE(r.intervals.empty());

    // Per-interval stacks are themselves conservative: deltas sum to
    // the interval's cycle count, and the series telescopes to the
    // end-of-run stack.
    obs::CpiStack acc;
    for (const obs::IntervalSample &iv : r.intervals.samples) {
        std::uint64_t sum = 0;
        for (std::size_t c = 0; c < obs::kCpiCatCount; ++c) {
            sum += iv.cpi.cycles[c];
            acc.cycles[c] += iv.cpi.cycles[c];
        }
        EXPECT_EQ(sum, iv.cycles);
    }
    EXPECT_EQ(acc, r.stats.cpi);

    const std::string header = obs::IntervalSeries::csvHeader("");
    EXPECT_NE(header.find(",cpi_base"), std::string::npos);
    MiniJson parser(r.intervals.toJson());
    ASSERT_TRUE(parser.parse());
    EXPECT_GE(parser.count("cpi_base"), 1);
}

} // namespace
