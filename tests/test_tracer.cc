/**
 * @file
 * Unit tests for the pipeline tracer used by the Figure 1
 * reproduction: event recording, labelling, multi-tag cells, cycle
 * windowing and rendering.
 */

#include <gtest/gtest.h>

#include "vsim/core/pipeline_trace.hh"

namespace
{

using vsim::core::PipelineTracer;

TEST(Tracer, EmptyRendersPlaceholder)
{
    PipelineTracer t;
    EXPECT_TRUE(t.empty());
    EXPECT_NE(t.render().find("no pipeline events"), std::string::npos);
}

TEST(Tracer, RecordsAndRendersEvents)
{
    PipelineTracer t;
    t.label(1, "add a0, a1, a2");
    t.note(1, 10, "D");
    t.note(1, 11, "EX");
    t.note(1, 12, "W");
    t.note(1, 13, "RT");
    const std::string out = t.render();
    EXPECT_NE(out.find("add a0, a1, a2"), std::string::npos);
    EXPECT_NE(out.find("EX"), std::string::npos);
    EXPECT_NE(out.find("RT"), std::string::npos);
    EXPECT_NE(out.find("10"), std::string::npos);
}

TEST(Tracer, MultipleTagsShareACell)
{
    PipelineTracer t;
    t.note(1, 5, "W");
    t.note(1, 5, "EQ!");
    EXPECT_NE(t.render().find("W/EQ!"), std::string::npos);
}

TEST(Tracer, WindowRestrictsCycles)
{
    PipelineTracer t;
    t.note(1, 5, "A");
    t.note(1, 50, "B");
    const std::string windowed = t.render(0, 10);
    EXPECT_NE(windowed.find("A"), std::string::npos);
    EXPECT_EQ(windowed.find("B"), std::string::npos);
    const std::string empty_window = t.render(60, 70);
    EXPECT_NE(empty_window.find("no pipeline events in range"),
              std::string::npos);
}

TEST(Tracer, RowsOrderedBySequence)
{
    PipelineTracer t;
    t.label(2, "second");
    t.label(1, "first");
    t.note(2, 1, "X");
    t.note(1, 1, "X");
    const std::string out = t.render();
    EXPECT_LT(out.find("first"), out.find("second"));
}

TEST(Tracer, ClearResets)
{
    PipelineTracer t;
    t.note(1, 1, "X");
    EXPECT_FALSE(t.empty());
    t.clear();
    EXPECT_TRUE(t.empty());
}

} // namespace
