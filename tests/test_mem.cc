/**
 * @file
 * Unit tests for the memory subsystem: sparse memory image semantics
 * and the set-associative cache timing model (hits, LRU eviction,
 * dirty write-back counting, hierarchy latencies).
 */

#include <gtest/gtest.h>

#include "vsim/mem/cache.hh"
#include "vsim/mem/mem_image.hh"

namespace
{

using namespace vsim::mem;

TEST(MemImage, UnmappedReadsZero)
{
    MemImage m;
    EXPECT_EQ(m.read(0xdeadbeef, 8), 0u);
    EXPECT_EQ(m.mappedPages(), 0u);
}

TEST(MemImage, ReadBackWritten)
{
    MemImage m;
    m.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x1000, 8), 0x1122334455667788ull);
    // Little-endian byte order.
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.read(0x1007, 1), 0x11u);
    EXPECT_EQ(m.read(0x1002, 2), 0x5566u);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344u);
}

TEST(MemImage, CrossPageAccess)
{
    MemImage m;
    const std::uint64_t addr = MemImage::kPageSize - 4;
    m.write(addr, 0xa1b2c3d4e5f60718ull, 8);
    EXPECT_EQ(m.read(addr, 8), 0xa1b2c3d4e5f60718ull);
    EXPECT_EQ(m.mappedPages(), 2u);
}

TEST(MemImage, DeepCopyIsIndependent)
{
    MemImage a;
    a.write(0x2000, 42, 8);
    MemImage b = a;
    b.write(0x2000, 43, 8);
    EXPECT_EQ(a.read(0x2000, 8), 42u);
    EXPECT_EQ(b.read(0x2000, 8), 43u);
}

TEST(MemImage, WriteBlock)
{
    MemImage m;
    const std::uint8_t bytes[] = {1, 2, 3, 4, 5};
    m.writeBlock(0x3000, bytes, sizeof(bytes));
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(m.readByte(0x3000 + i), bytes[i]);
}

CacheConfig
smallCache()
{
    CacheConfig cfg;
    cfg.name = "test";
    cfg.sizeBytes = 256; // 8 blocks
    cfg.assoc = 2;       // 4 sets
    cfg.blockBytes = 32;
    return cfg;
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    EXPECT_FALSE(c.access(0x0, false));
    EXPECT_TRUE(c.access(0x0, false));
    EXPECT_TRUE(c.access(0x1f, false)); // same block
    EXPECT_FALSE(c.access(0x20, false)); // next block
    EXPECT_EQ(c.stats().total(), 4u);
    EXPECT_EQ(c.stats().hits(), 2u);
}

TEST(Cache, LruEvictsLeastRecent)
{
    Cache c(smallCache());
    // Three blocks mapping to set 0 (4 sets * 32B = 128B stride).
    c.access(0 * 128, false);
    c.access(1 * 128, false);
    // Touch block 0 so block 1 becomes LRU.
    c.access(0 * 128, false);
    // Block 2 evicts block 1.
    c.access(2 * 128, false);
    EXPECT_TRUE(c.probe(0 * 128));
    EXPECT_FALSE(c.probe(1 * 128));
    EXPECT_TRUE(c.probe(2 * 128));
}

TEST(Cache, DirtyEvictionCountsWriteback)
{
    Cache c(smallCache());
    c.access(0 * 128, true); // dirty
    c.access(1 * 128, false);
    c.access(2 * 128, false); // evicts dirty block 0
    EXPECT_EQ(c.writebacks(), 1u);
    // Clean eviction adds nothing.
    c.access(3 * 128, false);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, ProbeDoesNotDisturbState)
{
    Cache c(smallCache());
    c.access(0, false);
    const auto hits_before = c.stats().hits();
    EXPECT_TRUE(c.probe(0));
    EXPECT_FALSE(c.probe(0x20));
    EXPECT_EQ(c.stats().hits(), hits_before);
}

TEST(Cache, FlushDropsEverything)
{
    Cache c(smallCache());
    c.access(0, true);
    c.flush();
    EXPECT_FALSE(c.probe(0));
}

TEST(Cache, FlushCountsDirtyWritebacks)
{
    Cache c(smallCache());
    c.access(0, true);    // dirty
    c.access(32, false);  // clean
    c.access(64, true);   // dirty
    EXPECT_EQ(c.writebacks(), 0u);
    c.flush();
    EXPECT_EQ(c.writebacks(), 2u); // both dirty lines drained
    // A second flush finds an empty cache: no double counting.
    c.flush();
    EXPECT_EQ(c.writebacks(), 2u);
    // A write hit followed by a flush counts exactly once.
    c.access(0, false);
    c.access(0, true);
    c.flush();
    EXPECT_EQ(c.writebacks(), 3u);
}

TEST(Cache, AccessReportsEvictedBlock)
{
    Cache c(smallCache());
    Eviction ev;
    c.access(0 * 128, true, &ev); // set 0, filled empty way
    EXPECT_FALSE(ev.valid);
    c.access(1 * 128, false, &ev);
    EXPECT_FALSE(ev.valid);
    c.access(2 * 128, false, &ev); // evicts dirty block 0
    EXPECT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(ev.addr, 0u);
    c.access(2 * 128, true, &ev); // hit: nothing displaced
    EXPECT_FALSE(ev.valid);
    c.access(3 * 128, false, &ev); // evicts block 1*128, clean
    EXPECT_TRUE(ev.valid);
    EXPECT_FALSE(ev.dirty);
    EXPECT_EQ(ev.addr, 1u * 128u);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(smallCache());
    for (int i = 0; i < 4; ++i)
        c.access(static_cast<std::uint64_t>(i) * 32, false);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(c.probe(static_cast<std::uint64_t>(i) * 32)) << i;
}

TEST(Hierarchy, PaperLatencies)
{
    CacheConfig l2_cfg;
    l2_cfg.name = "l2";
    l2_cfg.sizeBytes = 1 << 20;
    l2_cfg.assoc = 4;
    l2_cfg.blockBytes = 64;
    Cache l2(l2_cfg);

    CacheConfig l1_cfg;
    l1_cfg.name = "l1d";
    l1_cfg.sizeBytes = 64 << 10;
    l1_cfg.assoc = 4;
    l1_cfg.blockBytes = 32;

    HierarchyLatencies lat; // 2 / 12 / 36
    CacheHierarchy h(l1_cfg, l2, lat);

    // Cold: L1 miss, L2 miss -> 36.
    EXPECT_EQ(h.access(0x4000, false), 36);
    // Now resident in both -> L1 hit -> 2.
    EXPECT_EQ(h.access(0x4000, false), 2);
    // Evict nothing; a different block in the same L2 line: L1 miss,
    // L2 hit (64B L2 blocks cover two 32B L1 blocks) -> 12.
    EXPECT_EQ(h.access(0x4020, false), 12);
}

TEST(Hierarchy, L1DirtyEvictionInstallsInL2)
{
    CacheConfig l2_cfg;
    l2_cfg.name = "l2";
    l2_cfg.sizeBytes = 1 << 20;
    l2_cfg.assoc = 4;
    l2_cfg.blockBytes = 64;
    Cache l2(l2_cfg);

    HierarchyLatencies lat;
    CacheHierarchy h(smallCache(), l2, lat); // tiny 2-way L1

    h.access(0 * 128, true);  // write: L1 block 0 dirty, L2 installs
    h.access(1 * 128, false); // fills the set's other way
    h.access(2 * 128, false); // evicts dirty block 0 -> L2 write

    // Three demand fills (cold L2 misses) plus the writeback of the
    // L1 victim, which hits the block the first demand fill installed.
    EXPECT_EQ(l2.stats().total(), 4u);
    EXPECT_EQ(l2.stats().hits(), 1u);
    // The writeback dirtied the L2 copy: flushing the L2 must drain
    // exactly that one dirty line.
    EXPECT_EQ(l2.writebacks(), 0u);
    l2.flush();
    EXPECT_EQ(l2.writebacks(), 1u);
}

TEST(Hierarchy, CleanL1EvictionDoesNotTouchL2)
{
    CacheConfig l2_cfg;
    l2_cfg.name = "l2";
    l2_cfg.sizeBytes = 1 << 20;
    l2_cfg.assoc = 4;
    l2_cfg.blockBytes = 64;
    Cache l2(l2_cfg);

    HierarchyLatencies lat;
    CacheHierarchy h(smallCache(), l2, lat);

    h.access(0 * 128, false); // clean
    h.access(1 * 128, false);
    h.access(2 * 128, false); // evicts clean block 0: no L2 write
    EXPECT_EQ(l2.stats().total(), 3u); // demand fills only
    l2.flush();
    EXPECT_EQ(l2.writebacks(), 0u);
}

TEST(Hierarchy, L2SharedBetweenL1s)
{
    CacheConfig l2_cfg;
    l2_cfg.name = "l2";
    l2_cfg.sizeBytes = 1 << 20;
    l2_cfg.assoc = 4;
    l2_cfg.blockBytes = 64;
    Cache l2(l2_cfg);

    CacheConfig l1_cfg = smallCache();
    HierarchyLatencies lat;
    CacheHierarchy hi(l1_cfg, l2, lat);
    CacheHierarchy hd(l1_cfg, l2, lat);

    EXPECT_EQ(hi.access(0x8000, false), 36); // fills shared L2
    EXPECT_EQ(hd.access(0x8000, false), 12); // other L1 misses, L2 hits
}

} // namespace
