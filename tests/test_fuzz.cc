/**
 * @file
 * Differential fuzzing of the out-of-order core: randomly generated,
 * terminating VRISC programs are executed functionally and then on
 * the cycle-level core under aggressive value-speculation
 * configurations (always-confident prediction maximises
 * misspeculation and recovery traffic). The core's retire stage
 * compares every committed instruction against the functional trace
 * and panics on divergence, so merely finishing a run is a strong
 * architectural-equivalence statement; the test additionally checks
 * exit codes and program output.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/assembler.hh"
#include "vsim/base/random.hh"
#include "vsim/core/ooo_core.hh"

namespace
{

using namespace vsim;

/** Registers the generator is allowed to clobber. */
const char *kPool[] = {"t0", "t1", "t2", "t3", "t4", "t5",
                       "a0", "a1", "a2", "a3", "a4", "a5",
                       "s2", "s3", "s4", "s5"};
constexpr int kPoolSize = static_cast<int>(std::size(kPool));

std::string
reg(Xoshiro256 &rng)
{
    return kPool[rng.nextBounded(kPoolSize)];
}

/**
 * Generate a terminating random program: register initialisation, a
 * counted loop whose body mixes ALU ops, long-latency ops, bounded
 * memory traffic and data-dependent forward branches, then a fold of
 * all pool registers into the exit code.
 */
std::string
generateProgram(std::uint64_t seed)
{
    Xoshiro256 rng(seed);
    std::string src;
    src += "        .data\nbuf:    .space 4096\n        .text\n";
    src += "        la s0, buf\n";
    src += "        li s1, " + std::to_string(20 + rng.nextBounded(60))
           + "\n";
    for (const char *r : kPool) {
        src += std::string("        li ") + r + ", "
               + std::to_string(rng.nextRange(-5000, 5000)) + "\n";
    }
    src += "loop:\n";

    const int body_len = 16 + static_cast<int>(rng.nextBounded(40));
    int pending_skip = 0; // instructions a forward branch still covers
    for (int i = 0; i < body_len; ++i) {
        const int kind = static_cast<int>(rng.nextBounded(16));
        if (kind < 6) {
            // R-type ALU
            const char *ops[] = {"add", "sub", "and", "or", "xor",
                                 "slt", "sltu", "mul"};
            src += "        " + std::string(ops[rng.nextBounded(8)])
                   + " " + reg(rng) + ", " + reg(rng) + ", " + reg(rng)
                   + "\n";
        } else if (kind < 9) {
            // I-type ALU
            const char *ops[] = {"addi", "andi", "ori", "xori", "slti"};
            src += "        " + std::string(ops[rng.nextBounded(5)])
                   + " " + reg(rng) + ", " + reg(rng) + ", "
                   + std::to_string(rng.nextRange(-100, 100)) + "\n";
        } else if (kind == 9) {
            // shift with a bounded immediate
            const char *ops[] = {"slli", "srli", "srai"};
            src += "        " + std::string(ops[rng.nextBounded(3)])
                   + " " + reg(rng) + ", " + reg(rng) + ", "
                   + std::to_string(rng.nextBounded(12)) + "\n";
        } else if (kind == 10) {
            // long-latency op
            const char *ops[] = {"div", "divu", "rem", "remu"};
            src += "        " + std::string(ops[rng.nextBounded(4)])
                   + " " + reg(rng) + ", " + reg(rng) + ", " + reg(rng)
                   + "\n";
        } else if (kind < 13) {
            // bounded load
            const char *ops[] = {"ld", "lw", "lbu", "lhu"};
            src += "        " + std::string(ops[rng.nextBounded(4)])
                   + " " + reg(rng) + ", "
                   + std::to_string(8 * rng.nextBounded(500)) + "(s0)\n";
        } else if (kind < 15) {
            // bounded store
            const char *ops[] = {"sd", "sw", "sb"};
            src += "        " + std::string(ops[rng.nextBounded(3)])
                   + " " + reg(rng) + ", "
                   + std::to_string(8 * rng.nextBounded(500)) + "(s0)\n";
        } else if (pending_skip == 0 && i + 3 < body_len) {
            // data-dependent forward branch over 1-3 instructions
            const char *ops[] = {"beq", "bne", "blt", "bltu"};
            const int skip = 1 + static_cast<int>(rng.nextBounded(3));
            src += "        " + std::string(ops[rng.nextBounded(4)])
                   + " " + reg(rng) + ", " + reg(rng) + ", "
                   + std::to_string(skip + 1) + "\n";
            pending_skip = skip;
            continue;
        } else {
            src += "        addi " + reg(rng) + ", " + reg(rng)
                   + ", 1\n";
        }
        if (pending_skip > 0)
            --pending_skip;
    }

    src += "        addi s1, s1, -1\n";
    src += "        bnez s1, loop\n";
    src += "        li a0, 0\n";
    for (const char *r : kPool)
        src += std::string("        xor a0, a0, ") + r + "\n";
    src += "        puti a0\n";
    src += "        halt a0\n";
    return src;
}

struct FuzzCase
{
    std::uint64_t seed;
    bool useVp;
    const char *model;
    core::VerifyScheme verifyScheme;
    core::InvalScheme invalScheme;
    int issueWidth;
    int windowSize;
    bool specBranches = false; //!< resolve branches speculatively
};

class FuzzDifferential : public ::testing::TestWithParam<FuzzCase>
{
};

TEST_P(FuzzDifferential, OooMatchesFunctional)
{
    const FuzzCase &fc = GetParam();
    const std::string source = generateProgram(fc.seed);
    const assembler::Program prog = assembler::assemble(source);

    const arch::ExecTrace ref = arch::preExecute(prog, 5'000'000);

    core::CoreConfig cfg;
    cfg.issueWidth = fc.issueWidth;
    cfg.windowSize = fc.windowSize;
    cfg.useValuePrediction = fc.useVp;
    if (fc.useVp) {
        cfg.model = core::SpecModel::byName(fc.model);
        cfg.model.verifyScheme = fc.verifyScheme;
        cfg.model.invalScheme = fc.invalScheme;
        cfg.model.branchNeedsValidOps = !fc.specBranches;
        // Always-confident: speculate on everything, maximising the
        // misspeculation recovery machinery under test.
        cfg.confidence = core::ConfidenceKind::Always;
    }
    core::OooCore core(prog, cfg);
    const core::SimOutcome out = core.run();

    ASSERT_TRUE(out.halted) << "seed " << fc.seed;
    EXPECT_EQ(out.exitCode, ref.exitCode) << "seed " << fc.seed;
    EXPECT_EQ(out.output, ref.output) << "seed " << fc.seed;
}

std::vector<FuzzCase>
makeCases()
{
    using core::InvalScheme;
    using core::VerifyScheme;
    std::vector<FuzzCase> cases;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        cases.push_back({seed, false, "great", VerifyScheme::Flattened,
                         InvalScheme::Flattened, 4, 24});
        cases.push_back({seed, true, "super", VerifyScheme::Flattened,
                         InvalScheme::Flattened, 8, 48});
        cases.push_back({seed, true, "great", VerifyScheme::Flattened,
                         InvalScheme::Flattened, 16, 96});
        cases.push_back({seed, true, "good", VerifyScheme::Flattened,
                         InvalScheme::Flattened, 4, 24});
    }
    // Alternative verification/invalidation schemes on a seed subset.
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        cases.push_back({seed, true, "great",
                         VerifyScheme::Hierarchical,
                         InvalScheme::Hierarchical, 8, 48});
        cases.push_back({seed, true, "great",
                         VerifyScheme::RetirementBased,
                         InvalScheme::Flattened, 8, 48});
        cases.push_back({seed, true, "great", VerifyScheme::Hybrid,
                         InvalScheme::Flattened, 8, 48});
        cases.push_back({seed, true, "great", VerifyScheme::Flattened,
                         InvalScheme::Complete, 8, 48});
        // Speculative branch resolution (§3.2 model variable):
        // branches issue with predicted/speculative operands and may
        // redirect fetch onto value-mispredicted paths that must later
        // be corrected by the branch's own reissue.
        cases.push_back({seed, true, "great", VerifyScheme::Flattened,
                         InvalScheme::Flattened, 8, 48, true});
        cases.push_back({seed, true, "super", VerifyScheme::Flattened,
                         InvalScheme::Flattened, 4, 24, true});
    }
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FuzzDifferential, ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<FuzzCase> &info) {
        const FuzzCase &fc = info.param;
        std::string name = "seed" + std::to_string(fc.seed);
        name += fc.useVp ? std::string("_") + fc.model : "_base";
        switch (fc.verifyScheme) {
          case core::VerifyScheme::Flattened: break;
          case core::VerifyScheme::Hierarchical: name += "_hier"; break;
          case core::VerifyScheme::RetirementBased:
            name += "_retire";
            break;
          case core::VerifyScheme::Hybrid: name += "_hybrid"; break;
        }
        if (fc.invalScheme == core::InvalScheme::Complete)
            name += "_complete";
        if (fc.specBranches)
            name += "_specbr";
        name += "_w" + std::to_string(fc.issueWidth);
        return name;
    });

TEST(FuzzGenerator, ProgramsAreDeterministic)
{
    EXPECT_EQ(generateProgram(7), generateProgram(7));
    EXPECT_NE(generateProgram(7), generateProgram(8));
}

TEST(FuzzGenerator, ProgramsTerminate)
{
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        const auto prog = assembler::assemble(generateProgram(seed));
        const auto ref = arch::preExecute(prog, 5'000'000);
        EXPECT_GT(ref.entries.size(), 100u) << seed;
    }
}

} // namespace
