/**
 * @file
 * Core odds and ends: configuration validation, full-stack determinism
 * with value prediction enabled, retired-count/trace-length
 * invariants, and stats consistency.
 */

#include <gtest/gtest.h>

#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;
using core::CoreConfig;
using core::OooCore;
using core::SimOutcome;
using core::SpecModel;

const char *kSmallLoop = R"(
    li a0, 0
    li a1, 400
loop:
    addi a0, a0, 3
    andi t0, a0, 255
    add a0, a0, t0
    addi a1, a1, -1
    bnez a1, loop
    halt a0
)";

// memNeedsValidOps=false used to hard-fatal with value prediction;
// speculative memory resolution is now a supported configuration and
// must construct and run to architectural completion.
TEST(CoreConfigGuards, SpeculativeMemoryResolutionRuns)
{
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.model.memNeedsValidOps = false;
    OooCore core(assembler::assemble(kSmallLoop), cfg);
    const SimOutcome out = core.run();
    EXPECT_TRUE(out.halted);
}

TEST(CoreConfigGuards, OversizedWindowPanics)
{
    CoreConfig cfg;
    cfg.windowSize = core::kMaxWindow + 1;
    EXPECT_DEATH(OooCore(assembler::assemble(kSmallLoop), cfg),
                 "window size");
}

TEST(Determinism, ValuePredictionRunsAreReproducible)
{
    const auto prog = assembler::assemble(kSmallLoop);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    cfg.confidence = core::ConfidenceKind::Real;
    cfg.updateTiming = core::UpdateTiming::Delayed;

    const SimOutcome a = OooCore(prog, cfg).run();
    const SimOutcome b = OooCore(prog, cfg).run();
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.vpCH, b.stats.vpCH);
    EXPECT_EQ(a.stats.nullifications, b.stats.nullifications);
    EXPECT_EQ(a.exitCode, b.exitCode);
}

TEST(Invariants, RetiredEqualsProgramLength)
{
    const auto prog = assembler::assemble(kSmallLoop);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::superModel();
    cfg.confidence = core::ConfidenceKind::Always;
    OooCore core(prog, cfg);
    const SimOutcome out = core.run();
    EXPECT_EQ(out.stats.retired, core.programLength());
}

TEST(Invariants, IpcNeverExceedsIssueWidth)
{
    for (int width : {2, 4, 8}) {
        CoreConfig cfg;
        cfg.issueWidth = width;
        cfg.windowSize = 6 * width;
        OooCore core(assembler::assemble(kSmallLoop), cfg);
        const SimOutcome out = core.run();
        EXPECT_LE(out.stats.ipc(), static_cast<double>(width) + 1e-9)
            << width;
    }
}

TEST(Invariants, StatsMixSumsToRetired)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("vortex"), 1);
    CoreConfig cfg;
    OooCore core(prog, cfg);
    const SimOutcome out = core.run();
    const auto &s = out.stats;
    EXPECT_LE(s.retiredLoads + s.retiredStores + s.retiredBranches,
              s.retired);
    EXPECT_GT(s.retiredLoads, 0u);
    EXPECT_GT(s.retiredStores, 0u);
    EXPECT_GT(s.retiredBranches, 0u);
}

TEST(Invariants, PerPcStatsSumToEligible)
{
    const auto prog = assembler::assemble(kSmallLoop);
    CoreConfig cfg;
    cfg.useValuePrediction = true;
    cfg.model = SpecModel::greatModel();
    OooCore core(prog, cfg);
    const SimOutcome out = core.run();
    std::uint64_t total = 0, correct = 0;
    for (const auto &[pc, counts] : core.perPcVpStats()) {
        total += counts.first;
        correct += counts.second;
    }
    EXPECT_EQ(total, out.stats.vpEligible);
    EXPECT_EQ(correct, out.stats.vpCH + out.stats.vpCL);
}

TEST(Invariants, TickStopsAfterHalt)
{
    OooCore core(assembler::assemble("halt\n"), CoreConfig{});
    while (core.tick()) {
    }
    EXPECT_FALSE(core.tick());
    const std::uint64_t at_halt = core.now();
    EXPECT_FALSE(core.tick());
    EXPECT_EQ(core.now(), at_halt);
}

} // namespace
