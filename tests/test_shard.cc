/**
 * @file
 * Tests for checkpointable core state and sharded interval
 * simulation: SimSnapshot serialization round trips, the
 * functional-warmup pass's determinism, the shard planner's
 * partition arithmetic, bit-identity of full-warmup shard merges
 * against the monolithic run (stats, interval series and the
 * speculation ledger, across every kernel, both sweep kinds and
 * trace replay), the finite-warmup error bound, and the RunCache
 * jobKey salting of the new partition knobs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "vsim/arch/functional_core.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/core/snapshot.hh"
#include "vsim/sim/shard.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

core::CoreConfig
vpShardConfig()
{
    core::CoreConfig cfg =
        sim::vpConfig({8, 48}, core::SpecModel::greatModel(),
                      core::ConfidenceKind::Real,
                      core::UpdateTiming::Delayed);
    cfg.specLedger = true;
    cfg.metricsInterval = 5000;
    return cfg;
}

/** Full comparison of two runs: every aggregate, sample and record. */
void
expectIdenticalRuns(const sim::RunResult &got, const sim::RunResult &want)
{
    EXPECT_EQ(got.stats, want.stats);
    EXPECT_EQ(got.instructions, want.instructions);
    EXPECT_EQ(got.ipc, want.ipc);
    EXPECT_EQ(got.exitCode, want.exitCode);
    EXPECT_EQ(got.output, want.output);
    EXPECT_EQ(got.intervals, want.intervals);
    EXPECT_EQ(got.ledger, want.ledger);
}

std::string
tmpPath(const std::string &stem)
{
    return testing::TempDir() + "vsim_shard_" + stem + ".vst";
}

// ---- snapshot serialization -------------------------------------------

TEST(Snapshot, BytesRoundTripIsIdentity)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    const arch::ExecTrace trace = arch::preExecute(prog);
    ASSERT_GT(trace.entries.size(), 6000u);

    const std::vector<std::uint64_t> points = {1000, 6000};
    const std::vector<core::SimSnapshot> snaps =
        core::functionalWarmup(prog, trace, vpShardConfig(), points);
    ASSERT_EQ(snaps.size(), points.size());
    for (std::size_t i = 0; i < snaps.size(); ++i) {
        SCOPED_TRACE("point " + std::to_string(points[i]));
        EXPECT_EQ(snaps[i].instIndex, points[i]);
        EXPECT_EQ(snaps[i].pc, trace.entries[points[i]].pc);
        const std::vector<std::uint8_t> bytes = snaps[i].toBytes();
        EXPECT_FALSE(bytes.empty());
        EXPECT_EQ(core::SimSnapshot::fromBytes(bytes), snaps[i]);
        // Serialization is deterministic byte for byte.
        EXPECT_EQ(core::SimSnapshot::fromBytes(bytes).toBytes(), bytes);
    }
}

TEST(Snapshot, WarmupPassIsDeterministic)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const arch::ExecTrace trace = arch::preExecute(prog);
    const std::vector<std::uint64_t> points = {2500};
    const core::CoreConfig cfg = vpShardConfig();
    const auto a = core::functionalWarmup(prog, trace, cfg, points);
    const auto b = core::functionalWarmup(prog, trace, cfg, points);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a[0], b[0]);
}

// ---- shard planner -----------------------------------------------------

TEST(PlanShards, NearEqualPartitionCoversTrace)
{
    core::CoreConfig cfg;
    cfg.shards = 4;
    const auto plan = sim::planShards(10, cfg);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan.front().start, 0u);
    EXPECT_EQ(plan.back().stop, 10u);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_LT(plan[i].start, plan[i].stop);
        if (i > 0) {
            EXPECT_EQ(plan[i].start, plan[i - 1].stop);
        }
        // Default warmup is full replay: every shard starts at 0.
        EXPECT_EQ(plan[i].warmStart, 0u);
    }
}

TEST(PlanShards, ShardCountClampsToTraceLength)
{
    core::CoreConfig cfg;
    cfg.shards = 20;
    const auto plan = sim::planShards(5, cfg);
    ASSERT_EQ(plan.size(), 5u);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].start, i);
        EXPECT_EQ(plan[i].stop, i + 1);
    }
}

TEST(PlanShards, IntervalModeWithRaggedTail)
{
    core::CoreConfig cfg;
    cfg.intervalInsts = 3;
    const auto plan = sim::planShards(10, cfg);
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[3].start, 9u);
    EXPECT_EQ(plan[3].stop, 10u);
    for (std::size_t i = 0; i + 1 < plan.size(); ++i)
        EXPECT_EQ(plan[i].stop - plan[i].start, 3u);
}

TEST(PlanShards, FiniteWarmupClampsAtTraceStart)
{
    core::CoreConfig cfg;
    cfg.shards = 4;
    cfg.warmupInsts = 3;
    const auto plan = sim::planShards(12, cfg);
    ASSERT_EQ(plan.size(), 4u);
    // starts 0,3,6,9 with W=3: warmStart = max(0, start - 3).
    EXPECT_EQ(plan[0].warmStart, 0u);
    EXPECT_EQ(plan[1].warmStart, 0u);
    EXPECT_EQ(plan[2].warmStart, 3u);
    EXPECT_EQ(plan[3].warmStart, 6u);
}

TEST(PlanShards, BothPartitionKnobsAreFatal)
{
    core::CoreConfig cfg;
    cfg.shards = 2;
    cfg.intervalInsts = 100;
    EXPECT_TRUE(sim::shardingRequested(cfg));
    EXPECT_THROW(sim::planShards(1000, cfg), FatalError);
}

TEST(PlanShards, ShardingRequestedMatchesKnobs)
{
    core::CoreConfig cfg;
    EXPECT_FALSE(sim::shardingRequested(cfg));
    cfg.shards = 2;
    EXPECT_TRUE(sim::shardingRequested(cfg));
    cfg.shards = 0;
    cfg.intervalInsts = 5000;
    EXPECT_TRUE(sim::shardingRequested(cfg));
}

// ---- full-warmup bit-identity ------------------------------------------

TEST(ShardMerge, FullWarmupIdenticalAcrossShardCounts)
{
    const core::CoreConfig mono = vpShardConfig();
    const sim::RunResult want = sim::runWorkload("queens", 1, mono);
    for (const std::uint64_t n : {1u, 2u, 5u, 8u}) {
        SCOPED_TRACE("shards=" + std::to_string(n));
        core::CoreConfig cfg = mono;
        cfg.shards = n;
        expectIdenticalRuns(sim::runWorkload("queens", 1, cfg), want);
    }
}

TEST(ShardMerge, FullWarmupIdenticalOnEveryKernel)
{
    for (const workloads::Workload &w : workloads::all()) {
        SCOPED_TRACE(w.name);
        const core::CoreConfig mono = vpShardConfig();
        const sim::RunResult want = sim::runWorkload(w.name, 1, mono);
        core::CoreConfig cfg = mono;
        cfg.shards = 3;
        expectIdenticalRuns(sim::runWorkload(w.name, 1, cfg), want);
    }
}

TEST(ShardMerge, FullWarmupIdenticalUnderBothSweepKinds)
{
    for (const core::SweepKind kind :
         {core::SweepKind::Sparse, core::SweepKind::Dense}) {
        SCOPED_TRACE(kind == core::SweepKind::Sparse ? "sparse"
                                                     : "dense");
        core::CoreConfig mono = vpShardConfig();
        mono.sweepKind = kind;
        const sim::RunResult want = sim::runWorkload("m88k", 1, mono);
        core::CoreConfig cfg = mono;
        cfg.shards = 4;
        expectIdenticalRuns(sim::runWorkload("m88k", 1, cfg), want);
    }
}

TEST(ShardMerge, IntervalModePartitionIsIdenticalToo)
{
    const core::CoreConfig mono = vpShardConfig();
    const sim::RunResult want = sim::runWorkload("compress", 1, mono);
    core::CoreConfig cfg = mono;
    cfg.intervalInsts = 7000; // ragged tail interval included
    expectIdenticalRuns(sim::runWorkload("compress", 1, cfg), want);
}

TEST(ShardMerge, FullWarmupIdenticalOnTraceReplay)
{
    const std::string path = tmpPath("replay");
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    ASSERT_GT(trace::recordTrace(prog, path), 0u);

    const std::string name = sim::traceWorkloadName(path);
    const core::CoreConfig mono = vpShardConfig();
    const sim::RunResult want = sim::runWorkload(name, -1, mono);
    core::CoreConfig cfg = mono;
    cfg.shards = 4;
    expectIdenticalRuns(sim::runWorkload(name, -1, cfg), want);
    std::remove(path.c_str());
}

TEST(ShardMerge, ParallelWorkersMatchInline)
{
    core::CoreConfig inline_cfg = vpShardConfig();
    inline_cfg.shards = 5;
    inline_cfg.shardJobs = 1;
    const sim::RunResult a = sim::runWorkload("go", 1, inline_cfg);
    core::CoreConfig pool_cfg = inline_cfg;
    pool_cfg.shardJobs = 4;
    expectIdenticalRuns(sim::runWorkload("go", 1, pool_cfg), a);
}

// ---- finite warmup ------------------------------------------------------

TEST(ShardMerge, FiniteWarmupStaysWithinErrorBound)
{
    const core::CoreConfig mono = vpShardConfig();
    const sim::RunResult want = sim::runWorkload("queens", 1, mono);
    core::CoreConfig cfg = mono;
    cfg.shards = 4;
    cfg.warmupInsts = 20000;
    const sim::RunResult got = sim::runWorkload("queens", 1, cfg);
    // The architectural outcome is exact regardless of warmup.
    EXPECT_EQ(got.exitCode, want.exitCode);
    EXPECT_EQ(got.output, want.output);
    // Timing is approximate: the documented bound for this kernel at
    // W=20k is well under 1%; gate at 1% so regressions surface.
    const double ratio = static_cast<double>(got.stats.cycles)
                         / static_cast<double>(want.stats.cycles);
    EXPECT_NEAR(ratio, 1.0, 0.01);
    // Retired counts may differ only by boundary overshoot (a few
    // instructions per seam at most).
    const std::int64_t drift =
        static_cast<std::int64_t>(got.stats.retired)
        - static_cast<std::int64_t>(want.stats.retired);
    EXPECT_LT(std::abs(drift), 64);
}

// ---- RunCache jobKey ----------------------------------------------------

TEST(ShardJobKey, PartitionAndWarmupAreSalted)
{
    sim::SweepJob job;
    job.label = "x";
    job.workload = "queens";
    job.scale = 1;
    job.cfg = vpShardConfig();
    const std::string base = sim::jobKey(job);

    sim::SweepJob sharded = job;
    sharded.cfg.shards = 4;
    EXPECT_NE(sim::jobKey(sharded), base);

    sim::SweepJob interval = job;
    interval.cfg.intervalInsts = 50000;
    EXPECT_NE(sim::jobKey(interval), base);
    EXPECT_NE(sim::jobKey(interval), sim::jobKey(sharded));

    sim::SweepJob warm = sharded;
    warm.cfg.warmupInsts = 10000;
    EXPECT_NE(sim::jobKey(warm), sim::jobKey(sharded));

    // The worker count is an execution resource, not a result shape:
    // it must NOT invalidate cached results.
    sim::SweepJob jobs8 = sharded;
    jobs8.cfg.shardJobs = 8;
    EXPECT_EQ(sim::jobKey(jobs8), sim::jobKey(sharded));
}

} // namespace
