/**
 * @file
 * Tests for the persistent on-disk run cache (vsim/sim/disk_cache.hh)
 * and the sweep daemon (vsim/sim/server.hh): RunResult codec
 * round-trips, cold/warm disk bit-identity, build-fingerprint
 * invalidation, corrupt/truncated-entry eviction, two-process access
 * to one store, the length-prefixed-JSON wire protocol (including
 * malformed-request rejection and a client vanishing mid-stream), and
 * daemon restart over a warm cache.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include "vsim/base/logging.hh"
#include "vsim/base/state_io.hh"
#include "vsim/sim/disk_cache.hh"
#include "vsim/sim/server.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"

namespace
{

using namespace vsim;
using core::ConfidenceKind;
using core::SpecModel;
using core::UpdateTiming;

namespace fs = std::filesystem;

/** Self-deleting scratch directory (cache dirs, socket paths). */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/vsim_test_XXXXXX";
        VSIM_ASSERT(::mkdtemp(buf) != nullptr, "mkdtemp failed");
        path = buf;
    }

    ~TempDir() { fs::remove_all(path); }
};

/** A cheap cell whose RunResult exercises every codec section. */
sim::SweepJob
richJob(const std::string &workload = "queens")
{
    sim::SweepJob job;
    job.label = "rich";
    job.workload = workload;
    job.scale = 1;
    job.cfg = sim::vpConfig({8, 48}, SpecModel::greatModel(),
                            ConfidenceKind::Real, UpdateTiming::Delayed);
    job.cfg.metricsInterval = 500; // interval series in the result
    job.cfg.specLedger = true;     // ledger records in the result
    return job;
}

sim::SweepJob
baseJob(const std::string &workload = "queens")
{
    sim::SweepJob job;
    job.label = "base";
    job.workload = workload;
    job.scale = 1;
    job.cfg = sim::baseConfig({8, 48});
    return job;
}

std::vector<std::uint8_t>
bytesOf(const sim::RunResult &r)
{
    StateWriter w;
    sim::saveRunResult(w, r);
    return w.data();
}

// ---- RunResult / SweepJob codecs --------------------------------------

TEST(RunResultCodec, RoundTripIsBitIdentical)
{
    sim::RunCache cache;
    const sim::RunResult a = cache.getOrRun(richJob());
    ASSERT_GT(a.intervals.samples.size(), 0u);
    ASSERT_TRUE(a.ledger.enabled);

    const std::vector<std::uint8_t> encoded = bytesOf(a);
    StateReader r(encoded.data(), encoded.size());
    const sim::RunResult b = sim::loadRunResult(r);
    EXPECT_TRUE(r.done());

    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.intervals.samples.size(), b.intervals.samples.size());
    EXPECT_EQ(a.ledger.records.size(), b.ledger.records.size());
    // Re-encoding the decoded result must reproduce the exact bytes.
    EXPECT_EQ(encoded, bytesOf(b));
}

TEST(RunResultCodec, TruncatedStreamThrowsNotCrashes)
{
    sim::RunCache cache;
    const std::vector<std::uint8_t> encoded =
        bytesOf(cache.getOrRun(richJob()));
    for (std::size_t len : {std::size_t(0), std::size_t(3),
                            encoded.size() / 2, encoded.size() - 1}) {
        StateReader r(encoded.data(), len);
        EXPECT_THROW(sim::loadRunResult(r), FatalError) << len;
    }
}

TEST(SweepJobCodec, RoundTripPreservesEveryField)
{
    sim::SweepJob a = richJob("m88k");
    a.label = "a label with spaces";
    a.cfg.icache.sizeBytes = 32 * 1024;
    a.cfg.l2MissLat = 77;
    a.cfg.shards = 4;
    a.cfg.warmupInsts = 10'000;
    a.cfg.traceRetain = 123;

    StateWriter w;
    sim::saveSweepJob(w, a);
    StateReader r(w.data().data(), w.data().size());
    const sim::SweepJob b = sim::loadSweepJob(r);
    EXPECT_TRUE(r.done());

    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(sim::jobKey(a), sim::jobKey(b));
    // Cosmetic fields must survive too: the daemon reproduces the
    // exact configuration, not just the cache identity.
    EXPECT_EQ(a.cfg.model.name, b.cfg.model.name);
    EXPECT_EQ(a.cfg.icache.name, b.cfg.icache.name);
    EXPECT_EQ(a.cfg.traceRetain, b.cfg.traceRetain);
    // Re-encode: bit-identical.
    StateWriter w2;
    sim::saveSweepJob(w2, b);
    EXPECT_EQ(w.data(), w2.data());
}

TEST(SweepJobCodec, OutOfRangeEnumIsRejected)
{
    sim::SweepJob bad = baseJob();
    bad.cfg.model.verifyScheme = static_cast<core::VerifyScheme>(9);
    StateWriter w;
    sim::saveSweepJob(w, bad);
    StateReader r(w.data().data(), w.data().size());
    EXPECT_THROW(sim::loadSweepJob(r), FatalError);
}

TEST(Hex, RoundTripAndRejection)
{
    const std::vector<std::uint8_t> bytes{0x00, 0x7f, 0xab, 0xff};
    const std::string hex = sim::hexEncode(bytes);
    EXPECT_EQ(hex, "007fabff");
    EXPECT_EQ(sim::hexDecode(hex), bytes);
    EXPECT_EQ(sim::hexDecode("ABcd"), (std::vector<std::uint8_t>{
                                          0xab, 0xcd}));
    EXPECT_THROW(sim::hexDecode("abc"), FatalError);  // odd length
    EXPECT_THROW(sim::hexDecode("zz"), FatalError);   // non-hex
}

// ---- disk store -------------------------------------------------------

TEST(DiskRunCache, ColdThenWarmIsBitIdentical)
{
    TempDir dir;
    const sim::SweepJob job = richJob();

    // Cold: simulate, store.
    sim::RunCache cold;
    cold.attachDisk(std::make_shared<sim::DiskRunCache>(dir.path));
    bool hit = true;
    const sim::RunResult first = cold.getOrRun(job, &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cold.misses(), 1u);
    EXPECT_EQ(cold.diskHits(), 0u);

    // Warm: a fresh process-equivalent (empty memory cache, new
    // DiskRunCache over the same directory) must serve from disk.
    sim::RunCache warm;
    warm.attachDisk(std::make_shared<sim::DiskRunCache>(dir.path));
    const sim::RunResult second = warm.getOrRun(job, &hit);
    EXPECT_TRUE(hit);
    EXPECT_EQ(warm.diskHits(), 1u);
    EXPECT_EQ(warm.misses(), 0u);
    EXPECT_EQ(bytesOf(first), bytesOf(second));
}

TEST(DiskRunCache, DifferentFingerprintNeverServesOldEntries)
{
    TempDir dir;
    sim::RunCache cache;
    const sim::SweepJob job = baseJob();
    const std::string key = sim::jobKey(job);
    const sim::RunResult result = cache.getOrRun(job);

    sim::DiskRunCache current(dir.path);
    current.store(key, result);
    ASSERT_TRUE(fs::exists(current.entryPath(key)));

    // A different build fingerprint (new sources, new flags) must
    // miss — and must NOT evict the other build's entry.
    sim::DiskRunCache other(dir.path, current.fingerprint() ^ 1);
    sim::RunResult out;
    EXPECT_FALSE(other.load(key, out));
    EXPECT_TRUE(fs::exists(current.entryPath(key)));
    EXPECT_TRUE(current.load(key, out));
    EXPECT_EQ(bytesOf(result), bytesOf(out));
}

TEST(DiskRunCache, CorruptEntryIsEvictedNotServed)
{
    TempDir dir;
    sim::RunCache cache;
    const sim::SweepJob job = baseJob();
    const std::string key = sim::jobKey(job);
    sim::DiskRunCache disk(dir.path);
    disk.store(key, cache.getOrRun(job));

    const std::string path = disk.entryPath(key);
    // Flip one byte in the middle: the checksum must catch it and the
    // entry must be evicted, never served.
    std::vector<char> bytes;
    {
        std::ifstream in(path, std::ios::binary);
        bytes.assign(std::istreambuf_iterator<char>(in), {});
    }
    ASSERT_GT(bytes.size(), 64u);
    bytes[bytes.size() / 2] ^= 0x5a;
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }
    sim::RunResult out;
    EXPECT_FALSE(disk.load(key, out));
    EXPECT_FALSE(fs::exists(path));
}

TEST(DiskRunCache, TruncatedEntryIsEvicted)
{
    TempDir dir;
    sim::RunCache cache;
    const sim::SweepJob job = baseJob();
    const std::string key = sim::jobKey(job);
    sim::DiskRunCache disk(dir.path);

    for (std::uintmax_t keep : {std::uintmax_t(3),
                                std::uintmax_t(100)}) {
        disk.store(key, cache.getOrRun(job));
        const std::string path = disk.entryPath(key);
        ASSERT_TRUE(fs::exists(path));
        fs::resize_file(path, keep);
        sim::RunResult out;
        EXPECT_FALSE(disk.load(key, out)) << keep;
        EXPECT_FALSE(fs::exists(path)) << keep;
    }
}

TEST(DiskRunCache, KeyMismatchInSlotIsAPlainMiss)
{
    // Simulate an FNV slot collision: a well-formed entry for key A
    // sitting at key B's path. The stored-key guard must miss without
    // evicting A's (valid) bytes.
    TempDir dir;
    sim::RunCache cache;
    const sim::SweepJob a = baseJob("queens");
    const sim::SweepJob b = baseJob("m88k");
    sim::DiskRunCache disk(dir.path);
    disk.store(sim::jobKey(a), cache.getOrRun(a));
    fs::copy_file(disk.entryPath(sim::jobKey(a)),
                  disk.entryPath(sim::jobKey(b)));

    sim::RunResult out;
    EXPECT_FALSE(disk.load(sim::jobKey(b), out));
    EXPECT_TRUE(fs::exists(disk.entryPath(sim::jobKey(b))));
}

TEST(DiskRunCache, UnwritableDirectoryIsFatalAtConstruction)
{
    EXPECT_THROW(sim::DiskRunCache("/proc/no-such-cache-dir"),
                 FatalError);
}

TEST(DiskCacheProcess, TwoProcessesShareOneStore)
{
    TempDir dir;
    const sim::SweepJob job = baseJob();
    const std::string key = sim::jobKey(job);

    // Two child processes race to populate the same directory with
    // the same cell; atomic temp-file + rename writes mean both must
    // succeed and leave one valid entry.
    pid_t pids[2];
    for (pid_t &pid : pids) {
        pid = ::fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            int status = 1;
            try {
                sim::RunCache mine;
                mine.attachDisk(
                    std::make_shared<sim::DiskRunCache>(dir.path));
                const sim::RunResult r = mine.getOrRun(job);
                status = r.stats.cycles > 0 ? 0 : 1;
            } catch (...) {
                status = 1;
            }
            ::_exit(status);
        }
    }
    for (pid_t pid : pids) {
        int status = -1;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    }

    // The parent — a third process — reads what the children left.
    sim::DiskRunCache disk(dir.path);
    sim::RunResult from_disk;
    ASSERT_TRUE(disk.load(key, from_disk));
    sim::RunCache cache;
    EXPECT_EQ(bytesOf(cache.getOrRun(job)), bytesOf(from_disk));
}

// ---- daemon wire protocol ---------------------------------------------

/** Raw-socket client for protocol-abuse tests. */
int
rawConnect(const std::string &path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    VSIM_ASSERT(path.size() < sizeof(addr.sun_path), "path too long");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    VSIM_ASSERT(fd >= 0, "socket failed");
    VSIM_ASSERT(::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                          sizeof(addr))
                    == 0,
                "connect failed");
    return fd;
}

void
rawSendFrame(int fd, const std::string &json)
{
    const std::uint32_t len = static_cast<std::uint32_t>(json.size());
    std::uint8_t hdr[4];
    for (int i = 0; i < 4; ++i)
        hdr[i] = static_cast<std::uint8_t>(len >> (8 * i));
    ASSERT_EQ(::send(fd, hdr, 4, 0), 4);
    ASSERT_EQ(::send(fd, json.data(), json.size(), 0),
              static_cast<ssize_t>(json.size()));
}

std::string
rawRecvFrame(int fd)
{
    std::uint8_t hdr[4];
    std::size_t got = 0;
    while (got < 4) {
        const ssize_t n = ::recv(fd, hdr + got, 4 - got, 0);
        if (n <= 0)
            return "";
        got += static_cast<std::size_t>(n);
    }
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
    std::string json(len, '\0');
    got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, json.data() + got, len - got, 0);
        if (n <= 0)
            return "";
        got += static_cast<std::size_t>(n);
    }
    return json;
}

std::string
encodeJob(const sim::SweepJob &job)
{
    StateWriter w;
    sim::saveSweepJob(w, job);
    return sim::hexEncode(w.data());
}

/** A SweepServer on its own thread, stopped and joined on scope exit. */
struct ServerGuard
{
    sim::SweepServer server;
    std::thread thread;

    ServerGuard(const std::string &sock, int workers,
                sim::RunCache *cache)
        : server(sock, workers, cache),
          thread([this] { server.serve(); })
    {
    }

    ~ServerGuard()
    {
        server.stop();
        thread.join();
    }
};

TEST(SweepServer, BatchMatchesDirectRunBitForBit)
{
    TempDir dir;
    const std::string sock = dir.path + "/d.sock";
    const std::vector<sim::SweepJob> jobs{baseJob("queens"),
                                          richJob("queens"),
                                          baseJob("m88k")};
    sim::RunCache server_cache;
    ServerGuard guard(sock, 2, &server_cache);

    const auto cells = sim::runSweepOverSocket(sock, jobs);
    ASSERT_EQ(cells.size(), jobs.size());
    sim::RunCache direct;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_FALSE(cells[i].cached) << i;
        EXPECT_EQ(bytesOf(direct.getOrRun(jobs[i])),
                  bytesOf(cells[i].result))
            << i;
    }
    EXPECT_EQ(guard.server.cellsServed(), jobs.size());

    // Same batch again: every cell must be served from memory.
    const auto again = sim::runSweepOverSocket(sock, jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(again[i].cached) << i;
        EXPECT_EQ(bytesOf(cells[i].result), bytesOf(again[i].result))
            << i;
    }
    EXPECT_EQ(server_cache.misses(), jobs.size());
}

TEST(SweepServer, ConcurrentClientsDedupeInFlight)
{
    TempDir dir;
    const std::string sock = dir.path + "/d.sock";
    const std::vector<sim::SweepJob> jobs{richJob("queens")};
    sim::RunCache server_cache;
    ServerGuard guard(sock, 4, &server_cache);

    std::vector<std::vector<sim::ServerCell>> got(4);
    std::vector<std::thread> clients;
    for (auto &out : got)
        clients.emplace_back([&, p = &out] {
            *p = sim::runSweepOverSocket(sock, jobs);
        });
    for (std::thread &t : clients)
        t.join();

    // Four clients, one cell: exactly one simulation ran.
    EXPECT_EQ(server_cache.misses(), 1u);
    for (const auto &cells : got) {
        ASSERT_EQ(cells.size(), 1u);
        EXPECT_EQ(bytesOf(got[0][0].result), bytesOf(cells[0].result));
    }
}

TEST(SweepServer, MalformedRequestsGetErrorFrames)
{
    TempDir dir;
    const std::string sock = dir.path + "/d.sock";
    sim::RunCache server_cache;
    ServerGuard guard(sock, 1, &server_cache);

    const struct
    {
        const char *request;
        const char *expect;
    } cases[] = {
        {"{\"type\": \"bogus\"}", "malformed request"},
        {"not json at all", "malformed request"},
        // The reply is JSON, so the quotes around "jobs" arrive
        // backslash-escaped.
        {"{\"type\": \"sweep\", \"jobs\": \"nope\"}",
         "bad \\\"jobs\\\" array"},
        {"{\"type\": \"sweep\", \"jobs\": [\"zz\"]}",
         "malformed job encoding"},
    };
    for (const auto &c : cases) {
        const int fd = rawConnect(sock);
        rawSendFrame(fd, c.request);
        const std::string reply = rawRecvFrame(fd);
        EXPECT_NE(reply.find("\"type\": \"error\""), std::string::npos)
            << c.request << " -> " << reply;
        EXPECT_NE(reply.find(c.expect), std::string::npos)
            << c.request << " -> " << reply;
        ::close(fd);
    }
}

TEST(SweepServer, ClientVanishingMidBatchStillPopulatesCache)
{
    TempDir dir;
    const std::string sock = dir.path + "/d.sock";
    const sim::SweepJob job = baseJob();
    sim::RunCache server_cache;
    ServerGuard guard(sock, 2, &server_cache);

    // Send a valid batch, then hang up without reading a single
    // result: the daemon must finish the work into its cache and keep
    // serving other clients.
    const int fd = rawConnect(sock);
    rawSendFrame(fd, "{\"type\": \"sweep\", \"jobs\": [\""
                         + encodeJob(job) + "\"]}");
    ::close(fd);

    for (int waited = 0; server_cache.size() < 1 && waited < 30000;
         waited += 10)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server_cache.size(), 1u);

    const auto cells =
        sim::runSweepOverSocket(sock, {job});
    ASSERT_EQ(cells.size(), 1u);
    EXPECT_TRUE(cells[0].cached); // the abandoned run served this one
    // The owner bumps the miss counter just after publishing the
    // result, so a waiter can observe the result first; poll briefly.
    for (int waited = 0; server_cache.misses() < 1 && waited < 5000;
         waited += 10)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    EXPECT_EQ(server_cache.misses(), 1u);
}

TEST(SweepServer, RestartedDaemonServesWarmCacheFromDisk)
{
    TempDir dir;
    const std::string sock = dir.path + "/d.sock";
    const std::string cache_dir = dir.path + "/cache";
    const std::vector<sim::SweepJob> jobs{baseJob("queens"),
                                          richJob("queens")};

    std::vector<std::vector<std::uint8_t>> first;
    {
        sim::RunCache c1;
        c1.attachDisk(std::make_shared<sim::DiskRunCache>(cache_dir));
        ServerGuard guard(sock, 2, &c1);
        for (const auto &cell : sim::runSweepOverSocket(sock, jobs))
            first.push_back(bytesOf(cell.result));
    } // daemon gone; only the disk store survives

    sim::RunCache c2;
    c2.attachDisk(std::make_shared<sim::DiskRunCache>(cache_dir));
    ServerGuard guard(sock, 2, &c2);
    const auto cells = sim::runSweepOverSocket(sock, jobs);
    ASSERT_EQ(cells.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_TRUE(cells[i].cached) << i;
        EXPECT_EQ(first[i], bytesOf(cells[i].result)) << i;
    }
    EXPECT_EQ(c2.diskHits(), jobs.size());
    EXPECT_EQ(c2.misses(), 0u);
}

TEST(SweepClient, UnreachableSocketIsAClearError)
{
    TempDir dir;
    try {
        sim::runSweepOverSocket(dir.path + "/nobody.sock",
                                {baseJob()}, 1000);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("vspec_sweepd"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
