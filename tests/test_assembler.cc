/**
 * @file
 * Unit tests for the two-pass VRISC assembler: encoding of real and
 * pseudo instructions, label resolution, data directives, li/la
 * expansion, and error diagnostics.
 */

#include <gtest/gtest.h>

#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"
#include "vsim/isa/isa.hh"

namespace
{

using namespace vsim;
using assembler::Program;
using assembler::assemble;
using isa::Inst;
using isa::Op;

Inst
instAt(const Program &prog, std::size_t i)
{
    EXPECT_LT(i, prog.text.size());
    auto inst = isa::decode(prog.text[i]);
    EXPECT_TRUE(inst.has_value());
    return *inst;
}

TEST(Asm, BasicInstructionForms)
{
    Program p = assemble(R"(
        add a0, a1, a2
        addi t0, t1, -42
        lw a3, 8(sp)
        sd a4, -16(s0)
        lui a5, 0x12
        halt
    )");
    ASSERT_EQ(p.text.size(), 6u);
    EXPECT_EQ(instAt(p, 0).op, Op::ADD);
    EXPECT_EQ(instAt(p, 1).imm, -42);
    EXPECT_EQ(instAt(p, 2).op, Op::LW);
    EXPECT_EQ(instAt(p, 2).imm, 8);
    EXPECT_EQ(instAt(p, 3).op, Op::SD);
    EXPECT_EQ(instAt(p, 3).imm, -16);
    EXPECT_EQ(instAt(p, 4).op, Op::LUI);
    EXPECT_EQ(instAt(p, 4).imm, 0x12);
    EXPECT_EQ(instAt(p, 5).op, Op::HALT);
    EXPECT_EQ(instAt(p, 5).ra, 0);
}

TEST(Asm, CommentsAndBlankLines)
{
    Program p = assemble(R"(
        # full-line comment
        nop        ; trailing comment
        ; another
    )");
    ASSERT_EQ(p.text.size(), 1u);
    EXPECT_EQ(instAt(p, 0).op, Op::ADDI);
}

TEST(Asm, BackwardAndForwardBranchLabels)
{
    Program p = assemble(R"(
    loop:
        addi a0, a0, 1
        bne a0, a1, loop
        beq a0, a1, done
        nop
    done:
        halt
    )");
    // bne at index 1 targets index 0: offset -1.
    EXPECT_EQ(instAt(p, 1).imm, -1);
    // beq at index 2 targets index 4: offset +2.
    EXPECT_EQ(instAt(p, 2).imm, 2);
}

TEST(Asm, LabelOnSameLine)
{
    Program p = assemble("top: nop\n j top\n");
    EXPECT_EQ(instAt(p, 1).op, Op::JAL);
    EXPECT_EQ(instAt(p, 1).ra, 0);
    EXPECT_EQ(instAt(p, 1).imm, -1);
}

TEST(Asm, CallAndRet)
{
    Program p = assemble(R"(
        call fn
        halt
    fn:
        ret
    )");
    EXPECT_EQ(instAt(p, 0).op, Op::JAL);
    EXPECT_EQ(instAt(p, 0).ra, 1);
    EXPECT_EQ(instAt(p, 0).imm, 2);
    EXPECT_EQ(instAt(p, 2).op, Op::JALR);
    EXPECT_EQ(instAt(p, 2).rb, 1);
}

TEST(Asm, LiSmallExpandsToAddi)
{
    Program p = assemble("li a0, 100\nhalt\n");
    ASSERT_EQ(p.text.size(), 2u);
    EXPECT_EQ(instAt(p, 0).op, Op::ADDI);
    EXPECT_EQ(instAt(p, 0).imm, 100);
}

TEST(Asm, Li32BitExpandsToLuiAddi)
{
    Program p = assemble("li a0, 0x12345678\nhalt\n");
    ASSERT_EQ(p.text.size(), 3u);
    EXPECT_EQ(instAt(p, 0).op, Op::LUI);
    EXPECT_EQ(instAt(p, 1).op, Op::ADDI);
    // Reconstruct: (hi << 12) + lo == value.
    const std::int64_t hi = instAt(p, 0).imm;
    const std::int64_t lo = instAt(p, 1).imm;
    EXPECT_EQ((hi << 12) + lo, 0x12345678);
}

TEST(Asm, LiNegative32Bit)
{
    Program p = assemble("li a0, -559038737\nhalt\n"); // 0xDEADBEEF as neg
    const std::int64_t hi = instAt(p, 0).imm;
    std::int64_t value = hi << 12;
    if (instAt(p, 1).op == Op::ADDI)
        value += instAt(p, 1).imm;
    EXPECT_EQ(value, -559038737);
}

TEST(Asm, DataDirectivesAndSymbols)
{
    Program p = assemble(R"(
        .data
    vals:
        .word 1, 2, 3
    msg:
        .asciiz "hi\n"
        .align 8
    buf:
        .space 16
        .text
        la a0, vals
        ld a1, 0(a0)
        halt
    )");
    ASSERT_GE(p.data.size(), 12u + 4u);
    EXPECT_EQ(p.data[0], 1);
    EXPECT_EQ(p.data[4], 2);
    EXPECT_EQ(p.data[8], 3);
    EXPECT_EQ(p.data[12], 'h');
    EXPECT_EQ(p.data[13], 'i');
    EXPECT_EQ(p.data[14], '\n');
    EXPECT_EQ(p.data[15], 0);
    ASSERT_TRUE(p.symbols.count("vals"));
    ASSERT_TRUE(p.symbols.count("buf"));
    EXPECT_EQ(p.symbols.at("vals"), p.dataBase);
    EXPECT_EQ(p.symbols.at("buf") % 8, 0u);
    // la expands to lui+addi pointing at vals.
    const std::int64_t hi = instAt(p, 0).imm;
    const std::int64_t lo = instAt(p, 1).imm;
    EXPECT_EQ(static_cast<std::uint64_t>((hi << 12) + lo), p.dataBase);
}

TEST(Asm, EquConstants)
{
    Program p = assemble(R"(
        .equ SIZE, 64
        li a0, SIZE
        addi a1, zero, SIZE
        halt
    )");
    EXPECT_EQ(instAt(p, 0).imm, 64);
    EXPECT_EQ(instAt(p, 1).imm, 64);
}

TEST(Asm, CharLiterals)
{
    Program p = assemble("li a0, 'A'\nli a1, '\\n'\nhalt\n");
    EXPECT_EQ(instAt(p, 0).imm, 'A');
    EXPECT_EQ(instAt(p, 1).imm, '\n');
}

TEST(Asm, PseudoBranches)
{
    Program p = assemble(R"(
    top:
        beqz a0, top
        bnez a1, top
        bgt a2, a3, top
        ble a4, a5, top
        bgtz a6, top
        blez a7, top
        halt
    )");
    EXPECT_EQ(instAt(p, 0).op, Op::BEQ);
    EXPECT_EQ(instAt(p, 0).rb, 0);
    EXPECT_EQ(instAt(p, 1).op, Op::BNE);
    // bgt a2,a3 -> blt a3,a2
    EXPECT_EQ(instAt(p, 2).op, Op::BLT);
    EXPECT_EQ(instAt(p, 2).ra, isa::parseRegName("a3"));
    EXPECT_EQ(instAt(p, 2).rb, isa::parseRegName("a2"));
    EXPECT_EQ(instAt(p, 3).op, Op::BGE);
    // bgtz a6 -> blt zero, a6
    EXPECT_EQ(instAt(p, 4).op, Op::BLT);
    EXPECT_EQ(instAt(p, 4).ra, 0);
    // blez a7 -> bge zero, a7
    EXPECT_EQ(instAt(p, 5).op, Op::BGE);
    EXPECT_EQ(instAt(p, 5).ra, 0);
}

TEST(Asm, MvNotNegSeqzSnez)
{
    Program p = assemble(R"(
        mv a0, a1
        not a2, a3
        neg a4, a5
        seqz a6, a7
        snez t0, t1
        halt
    )");
    EXPECT_EQ(instAt(p, 0).op, Op::ADDI);
    EXPECT_EQ(instAt(p, 1).op, Op::XORI);
    EXPECT_EQ(instAt(p, 1).imm, -1);
    EXPECT_EQ(instAt(p, 2).op, Op::SUB);
    EXPECT_EQ(instAt(p, 2).rb, 0);
    EXPECT_EQ(instAt(p, 3).op, Op::SLTIU);
    EXPECT_EQ(instAt(p, 3).imm, 1);
    EXPECT_EQ(instAt(p, 4).op, Op::SLTU);
}

TEST(Asm, StartLabelSetsEntry)
{
    Program p = assemble(R"(
        nop
    _start:
        halt
    )");
    EXPECT_EQ(p.entry, p.textBase + 4);
}

TEST(AsmErrors, UndefinedLabel)
{
    EXPECT_THROW(assemble("beq a0, a1, nowhere\n"), FatalError);
}

TEST(AsmErrors, DuplicateLabel)
{
    EXPECT_THROW(assemble("x: nop\nx: nop\n"), FatalError);
}

TEST(AsmErrors, UnknownMnemonic)
{
    EXPECT_THROW(assemble("frobnicate a0, a1\n"), FatalError);
}

TEST(AsmErrors, BadRegister)
{
    EXPECT_THROW(assemble("add a0, a1, q9\n"), FatalError);
}

TEST(AsmErrors, WrongOperandCount)
{
    EXPECT_THROW(assemble("add a0, a1\n"), FatalError);
}

TEST(AsmErrors, DataDirectiveInText)
{
    EXPECT_THROW(assemble(".text\n.word 5\n"), FatalError);
}

TEST(AsmErrors, ImmediateOutOfRangeDiagnosed)
{
    // Too big for imm15: must be a clean assembly error, not a crash.
    EXPECT_THROW(assemble("addi a0, a0, 999999\n"), FatalError);
    EXPECT_THROW(assemble("lw a0, 20000(sp)\n"), FatalError);
    EXPECT_THROW(assemble("lui a0, 600000\n"), FatalError);
    // Boundary values still assemble.
    EXPECT_EQ(assemble("addi a0, a0, 16383\nhalt\n").text.size(), 2u);
    EXPECT_EQ(assemble("addi a0, a0, -16384\nhalt\n").text.size(), 2u);
}

TEST(AsmErrors, MixedErrorsAllReported)
{
    // Both parse-stage errors are reported together (label resolution
    // is skipped once earlier errors exist).
    try {
        assemble("bogus a0\naddi a0, a0, 999999\nbeq a0, a1, gone\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("2 error(s)"), std::string::npos) << what;
        EXPECT_NE(what.find("bogus"), std::string::npos);
        EXPECT_NE(what.find("999999"), std::string::npos);
    }
}

TEST(AsmErrors, MessageCarriesLineNumber)
{
    try {
        assemble("nop\nnop\nbogus_op a0\n", "unit.s");
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("unit.s:3"),
                  std::string::npos)
            << err.what();
    }
}

TEST(Asm, RoundTripThroughDisassembler)
{
    // Every encoded instruction must disassemble to text that
    // re-assembles to the identical encoding.
    Program p = assemble(R"(
        add a0, a1, a2
        addi a0, a1, -7
        lw a0, 12(sp)
        sb t0, -1(t1)
        beq a0, a1, 2
        jal ra, -4
        jalr zero, ra, 0
        lui s3, 99
        halt a0
    )");
    for (std::uint32_t word : p.text) {
        auto inst = isa::decode(word);
        ASSERT_TRUE(inst.has_value());
        Program p2 = assemble(isa::disassemble(*inst) + "\n");
        ASSERT_EQ(p2.text.size(), 1u) << isa::disassemble(*inst);
        EXPECT_EQ(p2.text[0], word) << isa::disassemble(*inst);
    }
}

} // namespace
