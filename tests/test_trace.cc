/**
 * @file
 * The trace frontend's golden/differential harness. Three pillars:
 *
 *  1. Round-trip identity: for every built-in kernel, record a .vst
 *     trace from the functional core, replay it through the timing
 *     core, and require the stats digest to be byte-identical to a
 *     direct (assemble + pre-execute) simulation — at window 256 AND
 *     512, under both sweep kinds (sparse subscriber lists and the
 *     legacy dense scans).
 *
 *  2. Strict-reader rejection: truncated, corrupted, unfinalized or
 *     garbage-extended trace files must raise vsim::FatalError, never
 *     replay junk.
 *
 *  3. Report-writer regressions riding in the same PR: RFC-4180 CSV
 *     quoting, JSON string escaping, and writeFile failure paths.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "vsim/arch/functional_core.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "vsim_" + name + ".vst";
}

/** Full stats digest: any drift between two runs must show up here. */
std::string
digest(const core::SimOutcome &out)
{
    const core::CoreStats &s = out.stats;
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "cycles=%llu retired=%llu fetched=%llu dispatched=%llu "
        "issued=%llu squashes=%llu nullif=%llu reissues=%llu "
        "verify=%llu inval=%llu vp=%llu/%llu/%llu/%llu "
        "mispred=%llu fwd=%llu ic=%llu dc=%llu exit=%llu outlen=%zu",
        (unsigned long long)s.cycles, (unsigned long long)s.retired,
        (unsigned long long)s.fetched, (unsigned long long)s.dispatched,
        (unsigned long long)s.issued, (unsigned long long)s.squashes,
        (unsigned long long)s.nullifications,
        (unsigned long long)s.reissues,
        (unsigned long long)s.verifyEvents,
        (unsigned long long)s.invalidateEvents,
        (unsigned long long)s.vpCH, (unsigned long long)s.vpCL,
        (unsigned long long)s.vpIH, (unsigned long long)s.vpIL,
        (unsigned long long)s.condMispredicts,
        (unsigned long long)s.loadsForwarded,
        (unsigned long long)s.icacheMisses,
        (unsigned long long)s.dcacheMisses,
        (unsigned long long)out.exitCode, out.output.size());
    return buf;
}

/**
 * Record kernel @p name at scale 1, then require replay == direct at
 * the given window under both sweep kinds. The direct run uses the
 * default (sparse) kind; comparing the dense replay against it also
 * pins the sparse/dense identity on the replay path.
 */
void
roundTrip(const std::string &name, int window, int fetch_width)
{
    SCOPED_TRACE(name + " window=" + std::to_string(window));
    const auto prog =
        workloads::buildProgram(workloads::byName(name), 1);
    const std::string path =
        tmpPath(name + "_w" + std::to_string(window));
    const std::uint64_t written = trace::recordTrace(prog, path);
    ASSERT_GT(written, 0u);

    const trace::LoadedTrace loaded = trace::loadTrace(path);
    ASSERT_EQ(loaded.trace.entries.size(), written);

    core::CoreConfig cfg =
        sim::vpConfig({8, window}, core::SpecModel::greatModel(),
                      core::ConfidenceKind::Real,
                      core::UpdateTiming::Delayed);
    cfg.fetchWidth = fetch_width;

    core::OooCore direct(prog, cfg);
    const core::SimOutcome want = direct.run();
    ASSERT_TRUE(want.halted);

    for (const core::SweepKind kind :
         {core::SweepKind::Sparse, core::SweepKind::Dense}) {
        SCOPED_TRACE(kind == core::SweepKind::Sparse ? "sparse"
                                                     : "dense");
        core::CoreConfig replay_cfg = cfg;
        replay_cfg.sweepKind = kind;
        // Alternate the issue scheduler across the sweep kinds so the
        // replay identity also holds over SchedulerKind (both are
        // bit-identical to the direct run's default ready lists).
        replay_cfg.scheduler = kind == core::SweepKind::Dense
                                   ? core::SchedulerKind::Scan
                                   : core::SchedulerKind::ReadyList;
        core::OooCore replay(loaded.program, loaded.trace, replay_cfg);
        const core::SimOutcome got = replay.run();
        EXPECT_TRUE(got.halted);
        EXPECT_EQ(digest(got), digest(want));
        EXPECT_EQ(got.output, want.output);
    }
    std::remove(path.c_str());
}

void
roundTripBothWindows(const std::string &name)
{
    roundTrip(name, 256, 8);
    // The CVP-style point: a 512-entry window with a wide front end.
    roundTrip(name, 512, 16);
}

TEST(TraceRoundTrip, Compress) { roundTripBothWindows("compress"); }
TEST(TraceRoundTrip, Cc) { roundTripBothWindows("cc"); }
TEST(TraceRoundTrip, Go) { roundTripBothWindows("go"); }
TEST(TraceRoundTrip, Jpeg) { roundTripBothWindows("jpeg"); }
TEST(TraceRoundTrip, M88k) { roundTripBothWindows("m88k"); }
TEST(TraceRoundTrip, Perl) { roundTripBothWindows("perl"); }
TEST(TraceRoundTrip, Vortex) { roundTripBothWindows("vortex"); }
TEST(TraceRoundTrip, Queens) { roundTripBothWindows("queens"); }

/**
 * Cursor repositioning: seek() is an O(1) record-offset jump (the v1
 * layout is fixed-size), tell() reports the next record's index, a
 * seek to recordCount() leaves the reader exhausted, and anything
 * past the footer raises FatalError instead of short iteration.
 */
TEST(TraceSeek, SeekTellAndPastFooterRejection)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    const std::string path = tmpPath("seek");
    const std::uint64_t count = trace::recordTrace(prog, path);
    ASSERT_GT(count, 10u);

    trace::TraceReader r(path);
    ASSERT_EQ(r.recordCount(), count);
    EXPECT_EQ(r.tell(), 0u);

    trace::TraceRecord first;
    ASSERT_TRUE(r.next(first));
    EXPECT_EQ(r.tell(), 1u);

    // Jump forward, read, and confirm the cursor tracks the seek.
    r.seek(count / 2);
    EXPECT_EQ(r.tell(), count / 2);
    trace::TraceRecord mid;
    ASSERT_TRUE(r.next(mid));
    EXPECT_EQ(r.tell(), count / 2 + 1);

    // Rewind to the start: the same first record comes back.
    r.seek(0);
    trace::TraceRecord again;
    ASSERT_TRUE(r.next(again));
    EXPECT_EQ(again.pc, first.pc);
    EXPECT_EQ(again.value, first.value);

    // Seeking to recordCount() is allowed and leaves it exhausted.
    r.seek(count);
    trace::TraceRecord none;
    EXPECT_FALSE(r.next(none));
    EXPECT_EQ(r.tell(), count);

    // One past the footer is a user error, not a silent empty read.
    EXPECT_THROW(r.seek(count + 1), FatalError);

    std::remove(path.c_str());
}

/**
 * The "trace:<path>" workload-name plumbing: runWorkload on a trace
 * name must reproduce the direct run of the kernel it was recorded
 * from, and the name helpers must round-trip paths.
 */
TEST(TraceWorkload, RunWorkloadReplayMatchesDirect)
{
    EXPECT_FALSE(sim::isTraceWorkload("queens"));
    EXPECT_TRUE(sim::isTraceWorkload("trace:/tmp/x.vst"));
    EXPECT_EQ(sim::traceWorkloadName("/tmp/x.vst"), "trace:/tmp/x.vst");
    EXPECT_EQ(sim::traceWorkloadPath("trace:/tmp/x.vst"), "/tmp/x.vst");

    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    const std::string path = tmpPath("runworkload");
    trace::recordTrace(prog, path);

    const core::CoreConfig cfg =
        sim::vpConfig({8, 48}, core::SpecModel::greatModel(),
                      core::ConfidenceKind::Real,
                      core::UpdateTiming::Delayed);
    const sim::RunResult direct = sim::runWorkload("queens", 1, cfg);
    const sim::RunResult replay =
        sim::runWorkload(sim::traceWorkloadName(path), -1, cfg);

    EXPECT_EQ(replay.workload, sim::traceWorkloadName(path));
    EXPECT_EQ(replay.stats.cycles, direct.stats.cycles);
    EXPECT_EQ(replay.stats.retired, direct.stats.retired);
    EXPECT_EQ(replay.exitCode, direct.exitCode);
    EXPECT_EQ(replay.output, direct.output);
    std::remove(path.c_str());
}

/**
 * The RunCache jobKey must incorporate the trace file's *content*
 * hash: two different traces behind otherwise-identical jobs must not
 * alias, and the same file must key identically across job objects.
 */
TEST(TraceWorkload, JobKeyHashesTraceContent)
{
    const std::string path_a = tmpPath("jobkey_a");
    const std::string path_b = tmpPath("jobkey_b");
    trace::recordTrace(
        workloads::buildProgram(workloads::byName("queens"), 1), path_a);
    trace::recordTrace(
        workloads::buildProgram(workloads::byName("compress"), 1),
        path_b);

    sim::SweepJob a;
    a.workload = sim::traceWorkloadName(path_a);
    a.cfg = sim::baseConfig({8, 48});
    sim::SweepJob b = a;
    b.workload = sim::traceWorkloadName(path_b);
    sim::SweepJob a2 = a;

    EXPECT_NE(sim::jobKey(a), sim::jobKey(b));
    EXPECT_EQ(sim::jobKey(a), sim::jobKey(a2));
    EXPECT_EQ(trace::traceFileHash(path_a),
              trace::traceFileHash(path_a));
    EXPECT_NE(trace::traceFileHash(path_a),
              trace::traceFileHash(path_b));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

// ---------------------------------------------------------------------
// Strict-reader rejection.
// ---------------------------------------------------------------------

class TraceReject : public ::testing::Test
{
  protected:
    /** One valid queens trace shared by all rejection cases. */
    static const std::string &
    validTrace()
    {
        static const std::string path = [] {
            const std::string p = tmpPath("reject_seed");
            trace::recordTrace(
                workloads::buildProgram(workloads::byName("queens"), 1),
                p);
            return p;
        }();
        return path;
    }

    static std::vector<char>
    readAll(const std::string &path)
    {
        std::ifstream in(path, std::ios::binary);
        EXPECT_TRUE(in);
        return std::vector<char>(std::istreambuf_iterator<char>(in),
                                 std::istreambuf_iterator<char>());
    }

    static std::string
    writeVariant(const std::string &name, const std::vector<char> &bytes)
    {
        const std::string path = tmpPath("reject_" + name);
        std::ofstream out(path, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        EXPECT_TRUE(out);
        return path;
    }

    static void
    expectRejected(const std::string &name, std::vector<char> bytes)
    {
        SCOPED_TRACE(name);
        const std::string path = writeVariant(name, std::move(bytes));
        EXPECT_THROW(trace::TraceReader r(path), FatalError);
        std::remove(path.c_str());
    }
};

TEST_F(TraceReject, ValidFileLoads)
{
    trace::TraceReader r(validTrace());
    EXPECT_GT(r.recordCount(), 0u);
    trace::TraceRecord rec;
    std::uint64_t n = 0;
    while (r.next(rec))
        ++n;
    EXPECT_EQ(n, r.recordCount());
}

TEST_F(TraceReject, MissingFile)
{
    EXPECT_THROW(trace::TraceReader r(tmpPath("no_such")), FatalError);
}

TEST_F(TraceReject, EmptyFile)
{
    expectRejected("empty", {});
}

TEST_F(TraceReject, BadMagic)
{
    auto bytes = readAll(validTrace());
    bytes[0] ^= 0x5a;
    expectRejected("magic", std::move(bytes));
}

TEST_F(TraceReject, BadVersion)
{
    auto bytes = readAll(validTrace());
    bytes[4] = 99; // TraceHeader::version
    expectRejected("version", std::move(bytes));
}

TEST_F(TraceReject, UnfinalizedRecordCount)
{
    auto bytes = readAll(validTrace());
    for (std::uint64_t i = 0; i < 8; ++i)
        bytes[trace::kRecordCountOffset + i] = '\xff';
    expectRejected("unfinalized", std::move(bytes));
}

TEST_F(TraceReject, TruncatedFooter)
{
    auto bytes = readAll(validTrace());
    bytes.resize(bytes.size() - sizeof(trace::TraceFooter));
    expectRejected("trunc_footer", std::move(bytes));
}

TEST_F(TraceReject, TruncatedMidRecords)
{
    auto bytes = readAll(validTrace());
    bytes.resize(bytes.size() / 2);
    expectRejected("trunc_half", std::move(bytes));
}

TEST_F(TraceReject, TrailingGarbage)
{
    auto bytes = readAll(validTrace());
    bytes.push_back('x');
    expectRejected("trailing", std::move(bytes));
}

TEST_F(TraceReject, CorruptRecordPayload)
{
    // Flip one byte in the value field of the first record: the
    // payload digest in the footer must catch it.
    auto bytes = readAll(validTrace());
    trace::TraceHeader hdr;
    std::memcpy(&hdr, bytes.data(), sizeof hdr);
    const std::uint64_t rec0 = sizeof(trace::TraceHeader)
                               + std::uint64_t(hdr.textWords) * 4
                               + hdr.dataBytes;
    bytes[rec0 + 8] ^= 0x01; // TraceRecord::value
    expectRejected("payload", std::move(bytes));
}

TEST_F(TraceReject, CorruptFooterDigest)
{
    auto bytes = readAll(validTrace());
    bytes[bytes.size() - 1] ^= 0x01;
    expectRejected("digest", std::move(bytes));
}

TEST_F(TraceReject, WriterRefusesUnwritablePath)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    EXPECT_THROW(
        trace::recordTrace(prog, "/nonexistent-dir/queens.vst"),
        FatalError);
}

// ---------------------------------------------------------------------
// Report-writer regressions.
// ---------------------------------------------------------------------

/**
 * RFC-4180: labels/workloads containing the delimiter, quotes or line
 * breaks must be quoted (embedded quotes doubled); plain fields stay
 * unquoted so existing consumers see byte-identical output.
 */
TEST(Report, CsvQuoting)
{
    sim::SweepJob job;
    job.label = "great, window=48 \"tuned\"";
    job.workload = "line\nbreak";
    job.scale = 1;
    job.cfg = sim::baseConfig({8, 48});
    sim::RunResult r;
    r.workload = job.workload;

    const std::string csv = sim::toCsv({job}, {r});
    EXPECT_NE(csv.find("\"great, window=48 \"\"tuned\"\"\","),
              std::string::npos)
        << csv;
    EXPECT_NE(csv.find("\"line\nbreak\","), std::string::npos) << csv;

    // Plain fields keep the historical unquoted form.
    job.label = "plain";
    job.workload = "queens";
    r.workload = "queens";
    const std::string plain = sim::toCsv({job}, {r});
    EXPECT_NE(plain.find("\nplain,queens,1,8/48,"), std::string::npos)
        << plain;
    EXPECT_EQ(plain.find('"'), std::string::npos) << plain;
}

TEST(Report, JsonEscaping)
{
    sim::SweepJob job;
    job.label = "say \"hi\"\\";
    job.workload = "queens";
    job.cfg = sim::baseConfig({8, 48});
    sim::RunResult r;
    r.workload = "tab\there";

    const std::string json = sim::toJson(job, r);
    EXPECT_NE(json.find("\"label\": \"say \\\"hi\\\"\\\\\""),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"workload\": \"tab\\there\""),
              std::string::npos)
        << json;
}

TEST(Report, WriteFileFailsLoudly)
{
    EXPECT_THROW(sim::writeFile("/nonexistent-dir/out.json", "x"),
                 FatalError);
}

} // namespace
