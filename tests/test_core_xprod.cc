/**
 * @file
 * Cross-product test over every VerifyScheme x InvalScheme x
 * SelectPolicy combination (4 x 3 x 4 = 48) plus the three named §4.1
 * latency models: each configuration must terminate, match the
 * functional (golden) core architecturally, and reproduce the stats
 * digest captured from the pre-refactor monolithic core bit for bit
 * (tests/golden/xprod_seed.txt).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "vsim/arch/functional_core.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

// Short labels used by the golden capture (enum order).
const char *const kVerifyNames[] = {"flat", "hier", "retire", "hybrid"};
const char *const kInvalNames[] = {"flat", "hier", "complete"};
const char *const kSelectNames[] = {"spec-last", "typed-only", "oldest",
                                    "spec-first"};

/** Stats digest in exactly the golden capture's format. */
std::string
digest(const core::CoreStats &s, std::uint64_t exit_code,
       const std::string &out)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "cycles=%llu retired=%llu fetched=%llu dispatched=%llu "
        "issued=%llu squashes=%llu nullif=%llu reissues=%llu "
        "verify=%llu inval=%llu vp=%llu/%llu/%llu/%llu "
        "mispred=%llu fwd=%llu ic=%llu dc=%llu exit=%llu outlen=%zu",
        (unsigned long long)s.cycles, (unsigned long long)s.retired,
        (unsigned long long)s.fetched, (unsigned long long)s.dispatched,
        (unsigned long long)s.issued, (unsigned long long)s.squashes,
        (unsigned long long)s.nullifications,
        (unsigned long long)s.reissues,
        (unsigned long long)s.verifyEvents,
        (unsigned long long)s.invalidateEvents,
        (unsigned long long)s.vpCH, (unsigned long long)s.vpCL,
        (unsigned long long)s.vpIH, (unsigned long long)s.vpIL,
        (unsigned long long)s.condMispredicts,
        (unsigned long long)s.loadsForwarded,
        (unsigned long long)s.icacheMisses,
        (unsigned long long)s.dcacheMisses,
        (unsigned long long)exit_code, out.size());
    return buf;
}

/**
 * Regold mode: with VSIM_XPROD_REGOLD set, checkCombo prints
 * "label :: digest" lines instead of comparing against the capture —
 * run the binary with the env var and redirect stdout to regenerate
 * tests/golden/xprod_seed.txt (existing lines must stay byte-equal).
 */
bool
regoldMode()
{
    static const bool r = std::getenv("VSIM_XPROD_REGOLD") != nullptr;
    return r;
}

/**
 * Sweep-kind override: with VSIM_XPROD_SWEEP=dense, every combo runs
 * on the legacy dense window scans instead of the default sparse
 * subscriber-list sweeps — against the *same* golden digests, since
 * the two sweep kinds are bit-identical by construction. check.sh
 * runs the suite both ways.
 */
core::SweepKind
sweepKindUnderTest()
{
    static const core::SweepKind k = [] {
        const char *env = std::getenv("VSIM_XPROD_SWEEP");
        return env && std::string(env) == "dense"
                   ? core::SweepKind::Dense
                   : core::SweepKind::Sparse;
    }();
    return k;
}

/** label -> digest from tests/golden/xprod_seed.txt. */
const std::map<std::string, std::string> &
goldenDigests()
{
    static const std::map<std::string, std::string> digests = [] {
        std::map<std::string, std::string> m;
        std::ifstream in(VSIM_GOLDEN_DIR "/xprod_seed.txt");
        EXPECT_TRUE(in) << "missing golden capture";
        std::string line;
        while (std::getline(in, line)) {
            const auto sep = line.find(" :: ");
            if (sep == std::string::npos) {
                ADD_FAILURE() << "malformed golden line: " << line;
                continue;
            }
            m[line.substr(0, sep)] = line.substr(sep + 4);
        }
        // 48 combos + 3 workloads x 3 models, plus the speculative
        // memory-resolution slices: 4 verify x 3 inval on queens and
        // 3 workloads x 3 models, all with mem=spec.
        EXPECT_EQ(m.size(), 78u);
        return m;
    }();
    return digests;
}

const assembler::Program &
queensProgram()
{
    static const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    return prog;
}

/** Functional reference result for architectural comparison. */
const arch::ExecTrace &
reference(const std::string &workload)
{
    static std::map<std::string, arch::ExecTrace> cache;
    auto it = cache.find(workload);
    if (it == cache.end()) {
        it = cache
                 .emplace(workload,
                          arch::preExecute(workloads::buildProgram(
                              workloads::byName(workload), 1)))
                 .first;
    }
    return it->second;
}

/**
 * Run one configuration and check all three properties. Termination
 * is implied by halted (run() stops at cfg.maxCycles otherwise).
 */
void
checkCombo(const std::string &label, const assembler::Program &prog,
           const core::CoreConfig &cfg, const arch::ExecTrace &ref)
{
    SCOPED_TRACE(label);
    core::CoreConfig run_cfg = cfg;
    run_cfg.sweepKind = sweepKindUnderTest();
    core::OooCore c(prog, run_cfg);
    const core::SimOutcome out = c.run();

    EXPECT_TRUE(out.halted) << "did not terminate";
    EXPECT_EQ(out.exitCode, ref.exitCode);
    EXPECT_EQ(out.output, ref.output);

    // Cycle accounting: every cycle lands in exactly one CPI
    // category, and every prediction reaches exactly one terminal
    // state — on every combination of the cross-product.
    EXPECT_EQ(out.stats.cpi.total(), out.stats.cycles);
    EXPECT_EQ(out.stats.predMade, out.stats.verifyEvents
                                      + out.stats.invalidateEvents
                                      + out.stats.predSquashed);

    if (regoldMode()) {
        std::printf("%s :: %s\n", label.c_str(),
                    digest(out.stats, out.exitCode, out.output).c_str());
        return;
    }

    const auto &golden = goldenDigests();
    const auto it = golden.find(label);
    ASSERT_NE(it, golden.end()) << "no golden digest for " << label;
    EXPECT_EQ(digest(out.stats, out.exitCode, out.output), it->second);
}

/** All 12 inval x select combinations of one verification scheme. */
void
runVerifySchemeSlice(core::VerifyScheme v)
{
    const auto &ref = reference("queens");
    for (int in = 0; in < 3; ++in) {
        for (int sp = 0; sp < 4; ++sp) {
            core::SpecModel model = core::SpecModel::greatModel();
            model.verifyScheme = v;
            model.invalScheme = static_cast<core::InvalScheme>(in);
            model.selectPolicy = static_cast<core::SelectPolicy>(sp);
            const core::CoreConfig cfg = sim::vpConfig(
                {8, 48}, model, core::ConfidenceKind::Real,
                core::UpdateTiming::Delayed);
            std::ostringstream label;
            label << "queens "
                  << kVerifyNames[static_cast<int>(v)] << " "
                  << kInvalNames[in] << " " << kSelectNames[sp];
            checkCombo(label.str(), queensProgram(), cfg, ref);
        }
    }
}

TEST(CoreXprod, FlattenedVerify)
{
    runVerifySchemeSlice(core::VerifyScheme::Flattened);
}

TEST(CoreXprod, HierarchicalVerify)
{
    runVerifySchemeSlice(core::VerifyScheme::Hierarchical);
}

TEST(CoreXprod, RetirementVerify)
{
    runVerifySchemeSlice(core::VerifyScheme::RetirementBased);
}

TEST(CoreXprod, HybridVerify)
{
    runVerifySchemeSlice(core::VerifyScheme::Hybrid);
}

TEST(CoreXprod, NamedModelsAcrossWorkloads)
{
    for (const char *wl : {"queens", "compress", "m88k"}) {
        const auto prog =
            workloads::buildProgram(workloads::byName(wl), 1);
        for (const char *mn : {"super", "great", "good"}) {
            const core::CoreConfig cfg = sim::vpConfig(
                {8, 48}, core::SpecModel::byName(mn),
                core::ConfidenceKind::Real,
                core::UpdateTiming::Delayed);
            checkCombo(std::string(wl) + " model=" + mn, prog, cfg,
                       reference(wl));
        }
    }
}

/**
 * Speculative memory resolution (§3.2, memNeedsValidOps=false) across
 * the verification/invalidation cross-product: loads issue with
 * speculative addresses and forward speculative store data, so every
 * scheme must now also clear/kill memory-carried dependences
 * (RsEntry::memDeps). Same three properties as above, pinned by their
 * own golden digests.
 */
TEST(CoreXprod, SpecMemResolutionAcrossSchemes)
{
    const auto &ref = reference("queens");
    for (int v = 0; v < 4; ++v) {
        for (int in = 0; in < 3; ++in) {
            core::SpecModel model = core::SpecModel::greatModel();
            model.memNeedsValidOps = false;
            model.verifyScheme = static_cast<core::VerifyScheme>(v);
            model.invalScheme = static_cast<core::InvalScheme>(in);
            const core::CoreConfig cfg = sim::vpConfig(
                {8, 48}, model, core::ConfidenceKind::Real,
                core::UpdateTiming::Delayed);
            std::ostringstream label;
            label << "queens " << kVerifyNames[v] << " "
                  << kInvalNames[in] << " spec-last mem=spec";
            checkCombo(label.str(), queensProgram(), cfg, ref);
        }
    }
}

TEST(CoreXprod, SpecMemNamedModelsAcrossWorkloads)
{
    for (const char *wl : {"queens", "compress", "m88k"}) {
        const auto prog =
            workloads::buildProgram(workloads::byName(wl), 1);
        for (const char *mn : {"super", "great", "good"}) {
            core::SpecModel model = core::SpecModel::byName(mn);
            model.memNeedsValidOps = false;
            const core::CoreConfig cfg = sim::vpConfig(
                {8, 48}, model, core::ConfidenceKind::Real,
                core::UpdateTiming::Delayed);
            checkCombo(std::string(wl) + " model=" + mn + " mem=spec",
                       prog, cfg, reference(wl));
        }
    }
}

/**
 * The sparse subscriber-list sweeps (SweepKind::Sparse, the default)
 * must reproduce the legacy dense window scans bit for bit on a real
 * workload across the verification x invalidation cross-product. The
 * golden digests above were captured from the dense core, so the
 * regular tests already pin sparse == golden; this pins sparse ==
 * dense directly (including on a mem=spec configuration, where loads
 * carry memDeps through the LSQ) and exercises the subscriber-index
 * invariant checker mid-run on full-size windows.
 */
TEST(CoreXprod, SparseDenseIdentityAcrossSchemes)
{
    const auto &ref = reference("queens");
    for (int v = 0; v < 4; ++v) {
        for (int in = 0; in < 3; ++in) {
            core::SpecModel model = core::SpecModel::greatModel();
            model.verifyScheme = static_cast<core::VerifyScheme>(v);
            model.invalScheme = static_cast<core::InvalScheme>(in);
            // Alternate memory resolution across combos to cover the
            // memDeps subscription path without doubling the matrix.
            model.memNeedsValidOps = (v + in) % 2 == 0;
            core::CoreConfig cfg = sim::vpConfig(
                {8, 48}, model, core::ConfidenceKind::Real,
                core::UpdateTiming::Delayed);
            SCOPED_TRACE("verify " + std::string(kVerifyNames[v])
                         + " inval " + kInvalNames[in] + " mem="
                         + (model.memNeedsValidOps ? "valid" : "spec"));

            cfg.sweepKind = core::SweepKind::Dense;
            core::OooCore dense(queensProgram(), cfg);
            const core::SimOutcome dense_out = dense.run();
            ASSERT_TRUE(dense_out.halted);

            cfg.sweepKind = core::SweepKind::Sparse;
            core::OooCore sparse(queensProgram(), cfg);
            std::string why;
            while (sparse.tick()) {
                if ((sparse.now() & 1023) == 0) {
                    ASSERT_TRUE(sparse.checkSweepInvariants(&why))
                        << "cycle " << sparse.now() << ": " << why;
                }
            }
            const core::SimOutcome sparse_out = sparse.run();

            EXPECT_EQ(sparse_out.exitCode, ref.exitCode);
            EXPECT_EQ(
                digest(dense_out.stats, dense_out.exitCode,
                       dense_out.output),
                digest(sparse_out.stats, sparse_out.exitCode,
                       sparse_out.output));
        }
    }
}

/**
 * Regression for the unified hierarchical-wave depth handling in
 * EventQueue: a *mixed* configuration (hierarchical verification,
 * flattened invalidation) keeps wave events (depth >= 0) and
 * single-shot events (depth -1) in the same queue. Before the
 * EventQueue extraction the two paths kept separate, duplicated depth
 * bookkeeping; this pins the behaviour of the merged one.
 */
TEST(CoreXprod, MixedHierVerifyFlatInvalRegression)
{
    core::SpecModel model = core::SpecModel::greatModel();
    model.verifyScheme = core::VerifyScheme::Hierarchical;
    model.invalScheme = core::InvalScheme::Flattened;
    model.selectPolicy = core::SelectPolicy::TypedSpecLast;
    const core::CoreConfig cfg =
        sim::vpConfig({8, 48}, model, core::ConfidenceKind::Real,
                      core::UpdateTiming::Delayed);

    core::OooCore c(queensProgram(), cfg);
    const core::SimOutcome out = c.run();
    const auto &ref = reference("queens");
    EXPECT_TRUE(out.halted);
    EXPECT_EQ(out.exitCode, ref.exitCode);
    EXPECT_EQ(out.output, ref.output);

    // The totals must sit exactly where the seed put them, and the
    // one-level-per-cycle verification wave must actually cost cycles
    // relative to the all-at-once flattened network.
    const auto &golden = goldenDigests();
    EXPECT_EQ(digest(out.stats, out.exitCode, out.output),
              golden.at("queens hier flat spec-last"));
    const std::string &flat = golden.at("queens flat flat spec-last");
    const std::uint64_t flat_cycles =
        std::stoull(flat.substr(flat.find("cycles=") + 7));
    EXPECT_GT(out.stats.cycles, flat_cycles);
}

} // namespace
