/**
 * @file
 * Tests for SimPoint-style sampled simulation: BBV profiling
 * determinism and arithmetic invariants, seeded k-means determinism
 * and degenerate fallbacks, weighted statistic merges against
 * hand-computed values, the sampled-vs-full speedup error bound on
 * every kernel, RunCache jobKey salting of the sampling flags, and
 * the word-scan helpers in mask_ops.hh. (End-to-end bit-identity of
 * the branchless scans is proven separately by test_core_xprod's
 * golden digests, which cover the full policy cross product.)
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "vsim/arch/bbv.hh"
#include "vsim/arch/functional_core.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/core_stats.hh"
#include "vsim/core/mask_ops.hh"
#include "vsim/obs/registry.hh"
#include "vsim/sim/sample.hh"
#include "vsim/sim/shard.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

core::CoreConfig
vpSampleConfig()
{
    core::CoreConfig cfg =
        sim::vpConfig({8, 48}, core::SpecModel::goodModel(),
                      core::ConfidenceKind::Real,
                      core::UpdateTiming::Delayed);
    return cfg;
}

arch::ExecTrace
kernelTrace(const std::string &name, int scale = 1)
{
    const auto prog =
        workloads::buildProgram(workloads::byName(name), scale);
    return arch::preExecute(prog);
}

/** Every structural invariant a SamplePlan must satisfy. */
void
expectValidPlan(const sim::SamplePlan &plan, std::size_t n)
{
    ASSERT_EQ(plan.assignment.size(), n);
    const std::size_t k = plan.clusters();
    ASSERT_EQ(plan.weights.size(), k);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, n);
    std::vector<std::uint64_t> population(k, 0);
    for (const std::uint32_t c : plan.assignment) {
        ASSERT_LT(c, k);
        ++population[c];
    }
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < k; ++c) {
        // Weight is the cluster population; no cluster is empty and
        // the representative belongs to the cluster it represents.
        EXPECT_EQ(plan.weights[c], population[c]);
        EXPECT_GT(plan.weights[c], 0u);
        ASSERT_LT(plan.representatives[c], n);
        EXPECT_EQ(plan.assignment[plan.representatives[c]], c);
        total += plan.weights[c];
    }
    EXPECT_EQ(total, n);
}

// ---- BBV profiling ------------------------------------------------------

TEST(Bbv, BucketIsDeterministicAndInRange)
{
    for (const std::uint64_t pc : {0ull, 4ull, 0x1000ull, ~0ull}) {
        const std::size_t b = arch::bbvBucket(pc);
        EXPECT_LT(b, arch::kBbvDim);
        EXPECT_EQ(arch::bbvBucket(pc), b);
    }
    // The projection actually spreads: distinct nearby PCs must not
    // all collapse into one bucket.
    std::vector<bool> hit(arch::kBbvDim, false);
    for (std::uint64_t pc = 0; pc < 64 * 4; pc += 4)
        hit[arch::bbvBucket(pc)] = true;
    EXPECT_GT(std::count(hit.begin(), hit.end(), true), 8);
}

TEST(Bbv, ComponentsSumToIntervalLength)
{
    const arch::ExecTrace trace = kernelTrace("queens");
    const std::uint64_t len = trace.entries.size();
    const std::uint64_t K = 5000;
    const auto bbvs = arch::profileBbv(trace, K);
    ASSERT_EQ(bbvs.size(), (len + K - 1) / K);
    for (std::size_t i = 0; i < bbvs.size(); ++i) {
        const std::uint64_t want =
            i + 1 < bbvs.size() ? K : len - K * (bbvs.size() - 1);
        const std::uint64_t got = std::accumulate(
            bbvs[i].begin(), bbvs[i].end(), std::uint64_t{0});
        EXPECT_EQ(got, want) << "interval " << i;
    }
}

TEST(Bbv, AccumulatorMatchesWholeTraceProfile)
{
    const arch::ExecTrace trace = kernelTrace("compress");
    const std::uint64_t K = 3000;
    arch::BbvAccumulator acc(K);
    for (const arch::TraceEntry &e : trace.entries)
        acc.step(e);
    acc.finish();
    EXPECT_EQ(acc.intervals(), arch::profileBbv(trace, K));
}

TEST(Bbv, ProfileIsDeterministic)
{
    const arch::ExecTrace trace = kernelTrace("go");
    EXPECT_EQ(arch::profileBbv(trace, 4000),
              arch::profileBbv(trace, 4000));
}

// ---- clustering ---------------------------------------------------------

TEST(Cluster, SameSeedSamePlan)
{
    const auto bbvs = arch::profileBbv(kernelTrace("m88k"), 2000);
    ASSERT_GT(bbvs.size(), 4u);
    const sim::SamplePlan a = sim::clusterIntervals(bbvs, 4);
    const sim::SamplePlan b = sim::clusterIntervals(bbvs, 4);
    EXPECT_EQ(a, b);
    expectValidPlan(a, bbvs.size());
    EXPECT_LE(a.clusters(), 4u);
}

TEST(Cluster, ExplicitSeedsAreDeterministicToo)
{
    const auto bbvs = arch::profileBbv(kernelTrace("perl"), 2000);
    ASSERT_GT(bbvs.size(), 2u);
    for (const std::uint64_t seed :
         {std::uint64_t(1), std::uint64_t(42), sim::kSampleSeed}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const sim::SamplePlan a = sim::clusterIntervals(bbvs, 3, seed);
        EXPECT_EQ(a, sim::clusterIntervals(bbvs, 3, seed));
        expectValidPlan(a, bbvs.size());
    }
}

TEST(Cluster, MaxKAtOrAboveIntervalCountIsFullDetail)
{
    const auto bbvs = arch::profileBbv(kernelTrace("queens"), 2000);
    const std::size_t n = bbvs.size();
    ASSERT_GT(n, 1u);
    for (const std::uint64_t maxK : {std::uint64_t(0), std::uint64_t(n),
                                     std::uint64_t(n + 7)}) {
        SCOPED_TRACE("maxK " + std::to_string(maxK));
        const sim::SamplePlan plan = sim::clusterIntervals(bbvs, maxK);
        ASSERT_EQ(plan.clusters(), n);
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(plan.assignment[i], i);
            EXPECT_EQ(plan.representatives[i], i);
            EXPECT_EQ(plan.weights[i], 1u);
        }
    }
}

TEST(Cluster, SingleIntervalAndSinglePhasePrograms)
{
    // One interval: one singleton cluster whatever maxK says.
    const std::vector<arch::Bbv> one(1);
    const sim::SamplePlan p1 = sim::clusterIntervals(one, 8);
    ASSERT_EQ(p1.clusters(), 1u);
    EXPECT_EQ(p1.weights[0], 1u);
    EXPECT_EQ(p1.representatives[0], 0u);

    // A perfectly homogeneous program: every interval has the same
    // shape, so any maxK collapses to one phase carrying all weight.
    arch::Bbv uniform{};
    uniform[3] = 900;
    uniform[17] = 100;
    const std::vector<arch::Bbv> same(12, uniform);
    const sim::SamplePlan p = sim::clusterIntervals(same, 6);
    expectValidPlan(p, same.size());
    ASSERT_EQ(p.clusters(), 1u);
    EXPECT_EQ(p.weights[0], 12u);
}

TEST(Cluster, SeparatesObviousPhases)
{
    // Two far-apart shapes must land in two clusters with the right
    // populations (8 + 4), regardless of which cluster gets which id.
    arch::Bbv a{}, b{};
    a[0] = 1000;
    b[31] = 1000;
    std::vector<arch::Bbv> bbvs(8, a);
    bbvs.insert(bbvs.end(), 4, b);
    const sim::SamplePlan plan = sim::clusterIntervals(bbvs, 4);
    expectValidPlan(plan, bbvs.size());
    ASSERT_EQ(plan.clusters(), 2u);
    const std::uint64_t w0 = plan.weights[0], w1 = plan.weights[1];
    EXPECT_EQ(std::max(w0, w1), 8u);
    EXPECT_EQ(std::min(w0, w1), 4u);
    // All of phase a maps to one cluster, all of phase b to the other.
    for (std::size_t i = 1; i < 8; ++i)
        EXPECT_EQ(plan.assignment[i], plan.assignment[0]);
    for (std::size_t i = 9; i < 12; ++i)
        EXPECT_EQ(plan.assignment[i], plan.assignment[8]);
    EXPECT_NE(plan.assignment[0], plan.assignment[8]);
}

// ---- weighted merges ----------------------------------------------------

TEST(WeightedMerge, CoreStatsScalarsAreScaledSums)
{
    core::CoreStats a;
    a.cycles = 100;
    a.retired = 70;
    a.fetched = 90;
    a.condBranches = 11;
    a.vpSpeculated = 5;
    core::CoreStats b;
    b.cycles = 7;
    b.retired = 6;
    b.fetched = 8;
    b.condBranches = 2;
    b.vpSpeculated = 1;
    b.cpi.cycles[0] = 4;

    core::CoreStats m = a;
    m.mergeWeighted(b, 3);
    EXPECT_EQ(m.cycles, 100u + 3 * 7u);
    EXPECT_EQ(m.retired, 70u + 3 * 6u);
    EXPECT_EQ(m.fetched, 90u + 3 * 8u);
    EXPECT_EQ(m.condBranches, 11u + 3 * 2u);
    EXPECT_EQ(m.vpSpeculated, 5u + 3 * 1u);
    EXPECT_EQ(m.cpi.cycles[0], 3 * 4u);

    // Weight 1 degenerates to the plain merge; weight 0 is a no-op.
    core::CoreStats w1 = a;
    w1.mergeWeighted(b, 1);
    core::CoreStats plain = a;
    plain.merge(b);
    EXPECT_EQ(w1, plain);
    core::CoreStats w0 = a;
    w0.mergeWeighted(b, 0);
    EXPECT_EQ(w0, a);
}

TEST(WeightedMerge, EqualsRepeatedMerge)
{
    // The defining property: mergeWeighted(x, w) == w plain merges.
    core::CoreStats b;
    b.cycles = 13;
    b.retired = 9;
    b.squashes = 2;
    b.verifyLatency.sample(5);
    b.verifyLatency.sample(300);
    b.cpi.cycles[1] = 6;

    core::CoreStats weighted;
    weighted.mergeWeighted(b, 5);
    core::CoreStats repeated;
    for (int i = 0; i < 5; ++i)
        repeated.merge(b);
    EXPECT_EQ(weighted, repeated);
}

TEST(WeightedMerge, HistogramArithmeticHandComputed)
{
    obs::Histogram h("h", "", "u", 10, 4), o("h", "", "u", 10, 4);
    h.sample(1);
    h.sample(5);
    o.sample(25);
    o.sample(999); // overflow bucket

    h.mergeWeighted(o, 4);
    EXPECT_EQ(h.count(), 2u + 4 * 2u);
    EXPECT_EQ(h.sum(), 6u + 4 * (25u + 999u));
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(2), 4u);
    EXPECT_EQ(h.overflow(), 4u);
    // min/max combine unscaled: repetition does not move the range.
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 999u);

    // Weight 0 and empty-other are no-ops.
    obs::Histogram before = h;
    h.mergeWeighted(o, 0);
    EXPECT_EQ(h, before);
    obs::Histogram empty("h", "", "u", 10, 4);
    h.mergeWeighted(empty, 100);
    EXPECT_EQ(h, before);
}

// ---- sampled replay -----------------------------------------------------

TEST(SampledRun, DeterministicAcrossJobsAndSweepKinds)
{
    for (const core::SweepKind kind :
         {core::SweepKind::Sparse, core::SweepKind::Dense}) {
        SCOPED_TRACE(kind == core::SweepKind::Sparse ? "sparse"
                                                     : "dense");
        core::CoreConfig cfg = vpSampleConfig();
        cfg.sweepKind = kind;
        cfg.sampleK = 4;
        cfg.sampleIntervalInsts = 20000;
        cfg.metricsInterval = 5000;
        cfg.shardJobs = 1;
        const sim::RunResult a = sim::runWorkload("queens", -1, cfg);
        cfg.shardJobs = 4;
        const sim::RunResult b = sim::runWorkload("queens", -1, cfg);
        EXPECT_EQ(a.stats, b.stats);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.exitCode, b.exitCode);
        EXPECT_EQ(a.output, b.output);
        EXPECT_EQ(a.intervals, b.intervals);
        EXPECT_FALSE(a.intervals.samples.empty());
    }
}

TEST(SampledRun, ArchitecturalOutcomeIsExact)
{
    core::CoreConfig cfg = vpSampleConfig();
    const sim::RunResult full = sim::runWorkload("cc", -1, cfg);
    cfg.sampleK = 4;
    cfg.sampleIntervalInsts = 20000;
    cfg.shardJobs = 4;
    const sim::RunResult sampled = sim::runWorkload("cc", -1, cfg);
    // Sampling approximates timing, never architecture: the final
    // representative runs the trace to its HALT, so exit code and
    // program output are exact, and the weighted retired count matches
    // the trace to within one retire group per interval boundary.
    EXPECT_EQ(sampled.exitCode, full.exitCode);
    EXPECT_EQ(sampled.output, full.output);
    const double rel =
        std::abs(static_cast<double>(sampled.stats.retired)
                 - static_cast<double>(full.stats.retired))
        / static_cast<double>(full.stats.retired);
    EXPECT_LT(rel, 1e-3);
}

TEST(SampledRun, SpeedupErrorWithinBoundOnEveryKernel)
{
    // The headline accuracy contract (also gated in check.sh): the
    // base-vs-VP speedup measured on sampled runs stays within 2% of
    // the full-detail speedup, on every kernel of the suite.
    for (const workloads::Workload &w : workloads::all()) {
        SCOPED_TRACE(w.name);
        core::CoreConfig vp = vpSampleConfig();
        core::CoreConfig base = vp;
        base.useValuePrediction = false;

        const double full_speedup =
            static_cast<double>(
                sim::runWorkload(w.name, -1, base).stats.cycles)
            / static_cast<double>(
                sim::runWorkload(w.name, -1, vp).stats.cycles);

        for (core::CoreConfig *cfg : {&vp, &base}) {
            cfg->sampleK = 4;
            cfg->sampleIntervalInsts = 20000;
            cfg->shardJobs = 4;
        }
        const double sampled_speedup =
            static_cast<double>(
                sim::runWorkload(w.name, -1, base).stats.cycles)
            / static_cast<double>(
                sim::runWorkload(w.name, -1, vp).stats.cycles);

        EXPECT_NEAR(sampled_speedup / full_speedup, 1.0, 0.02)
            << "full " << full_speedup << " sampled "
            << sampled_speedup;
    }
}

// ---- validation + jobKey ------------------------------------------------

TEST(SampleConfig, InconsistentPartitionsAreFatal)
{
    core::CoreConfig cfg = vpSampleConfig();
    cfg.sampleK = 4;
    cfg.shards = 2;
    EXPECT_THROW(sim::validatePartition(cfg), FatalError);
    cfg.shards = 0;
    cfg.intervalInsts = 1000;
    EXPECT_THROW(sim::validatePartition(cfg), FatalError);
    cfg.intervalInsts = 0;
    EXPECT_NO_THROW(sim::validatePartition(cfg));

    // The interval length alone asks for nothing.
    core::CoreConfig lone = vpSampleConfig();
    lone.sampleIntervalInsts = 1000;
    EXPECT_THROW(sim::validatePartition(lone), FatalError);

    // A finite warmup without any partition would be silently ignored.
    core::CoreConfig warm = vpSampleConfig();
    warm.warmupInsts = 1000;
    EXPECT_THROW(sim::validatePartition(warm), FatalError);
    warm.sampleK = 4;
    EXPECT_NO_THROW(sim::validatePartition(warm));
}

TEST(SampleJobKey, EverySamplingFlagIsSalted)
{
    sim::SweepJob job;
    job.label = "x";
    job.workload = "queens";
    job.scale = 1;
    job.cfg = vpSampleConfig();
    const std::string base = sim::jobKey(job);

    sim::SweepJob sampled = job;
    sampled.cfg.sampleK = 8;
    EXPECT_NE(sim::jobKey(sampled), base);

    sim::SweepJob interval = sampled;
    interval.cfg.sampleIntervalInsts = 50000;
    EXPECT_NE(sim::jobKey(interval), base);
    EXPECT_NE(sim::jobKey(interval), sim::jobKey(sampled));

    // Reinterpreted warmup must not alias: the key carries the raw
    // warmupInsts, so sampled full-warmup != sampled W=K.
    sim::SweepJob warm = sampled;
    warm.cfg.warmupInsts = 20000;
    EXPECT_NE(sim::jobKey(warm), sim::jobKey(sampled));

    // The worker count is an execution resource, never result shape.
    sim::SweepJob jobs8 = sampled;
    jobs8.cfg.shardJobs = 8;
    EXPECT_EQ(sim::jobKey(jobs8), sim::jobKey(sampled));
}

// ---- mask_ops word scans ------------------------------------------------

/** Deterministic pattern generator (SplitMix64). */
std::uint64_t
nextRand(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

TEST(MaskOps, ToWordsMatchesBitsetOnEveryBit)
{
    std::uint64_t state = 1;
    for (int trial = 0; trial < 32; ++trial) {
        core::SpecMask m;
        for (int b = 0; b < core::kMaxWindow; ++b)
            if (nextRand(state) & 1)
                m.set(b);
        const core::mask::MaskWords words = core::mask::toWords(m);
        for (int b = 0; b < core::kMaxWindow; ++b) {
            const bool w = (words[b / 64] >> (b % 64)) & 1;
            ASSERT_EQ(w, m.test(b)) << "bit " << b;
        }
    }
}

TEST(MaskOps, ForEachSetBitVisitsExactlyTheSetBitsAscending)
{
    std::uint64_t state = 99;
    for (int trial = 0; trial < 32; ++trial) {
        core::SpecMask m;
        std::vector<int> want;
        // Mix densities: sparse, half, dense patterns all occur.
        const int keep = 1 + trial % 7;
        for (int b = 0; b < core::kMaxWindow; ++b) {
            if (nextRand(state) % 7 < static_cast<std::uint64_t>(keep)) {
                m.set(b);
                want.push_back(b);
            }
        }
        std::vector<int> got;
        core::mask::forEachSetBit(m, [&](int b) { got.push_back(b); });
        EXPECT_EQ(got, want);
    }
}

TEST(MaskOps, EdgeBitsAndEmptyMask)
{
    core::SpecMask m;
    EXPECT_EQ(core::mask::findFirst(m), -1);
    std::vector<int> got;
    core::mask::forEachSetBit(m, [&](int b) { got.push_back(b); });
    EXPECT_TRUE(got.empty());

    // Word boundaries: first/last bit of first/middle/last word.
    for (const int b : {0, 63, 64, 127, 128, core::kMaxWindow - 1}) {
        core::SpecMask single;
        single.set(b);
        EXPECT_EQ(core::mask::findFirst(single), b);
        got.clear();
        core::mask::forEachSetBit(single,
                                  [&](int x) { got.push_back(x); });
        EXPECT_EQ(got, std::vector<int>{b});
    }

    core::SpecMask full;
    full.set();
    EXPECT_EQ(core::mask::findFirst(full), 0);
    got.clear();
    core::mask::forEachSetBit(full, [&](int x) { got.push_back(x); });
    ASSERT_EQ(got.size(), static_cast<std::size_t>(core::kMaxWindow));
    for (int b = 0; b < core::kMaxWindow; ++b)
        EXPECT_EQ(got[b], b);
}

TEST(MaskOps, FindFirstMatchesScan)
{
    std::uint64_t state = 7;
    for (int trial = 0; trial < 64; ++trial) {
        core::SpecMask m;
        for (int b = 0; b < core::kMaxWindow; ++b)
            if (nextRand(state) % 97 == 0)
                m.set(b);
        int want = -1;
        for (int b = 0; b < core::kMaxWindow; ++b)
            if (m.test(b)) {
                want = b;
                break;
            }
        EXPECT_EQ(core::mask::findFirst(m), want);
    }
}

TEST(MaskOps, TestAndClearAndIntersect)
{
    core::SpecMask m;
    m.set(5);
    m.set(100);
    EXPECT_TRUE(core::mask::testAndClear(m, 5));
    EXPECT_FALSE(m.test(5));
    EXPECT_FALSE(core::mask::testAndClear(m, 5));
    EXPECT_TRUE(m.test(100));

    core::SpecMask a, b;
    a.set(64);
    b.set(65);
    EXPECT_FALSE(core::mask::anyIntersect(a, b));
    b.set(64);
    EXPECT_TRUE(core::mask::anyIntersect(a, b));
}

} // namespace
