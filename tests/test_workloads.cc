/**
 * @file
 * Tests for the workload suite: registry integrity, assembly and
 * functional execution of every kernel, characterisation checksums
 * (guarding against silent behavioural drift), scaling behaviour, and
 * a smoke run of each kernel through the out-of-order core.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "vsim/arch/functional_core.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;
using workloads::Workload;

TEST(Registry, HasTheEightTableOneBenchmarks)
{
    const auto &suite = workloads::all();
    ASSERT_EQ(suite.size(), 8u);
    std::set<std::string> names;
    for (const Workload &w : suite) {
        names.insert(w.name);
        EXPECT_FALSE(w.specAnalog.empty()) << w.name;
        EXPECT_FALSE(w.description.empty()) << w.name;
    }
    EXPECT_EQ(names.size(), 8u) << "duplicate workload names";
    for (const char *expect : {"compress", "cc", "go", "jpeg", "m88k",
                               "perl", "vortex", "queens"}) {
        EXPECT_TRUE(names.count(expect)) << expect;
    }
}

TEST(Registry, ByNameFindsAndThrows)
{
    EXPECT_EQ(workloads::byName("queens").name, "queens");
    EXPECT_THROW(workloads::byName("spec2017"), FatalError);
}

TEST(Registry, BadScaleRejected)
{
    EXPECT_THROW(workloads::buildProgram(workloads::byName("queens"), 0),
                 FatalError);
}

/**
 * Characterisation checksums from the reference functional run. A
 * change here means the kernel's architectural behaviour changed —
 * deliberate kernel edits must update these constants.
 */
const std::map<std::string, std::uint64_t> kExpectedChecksum = {
    {"compress", 1997120ull},
    {"cc", 18446261176261210054ull},
    {"go", 21804ull},
    {"jpeg", 312430ull},
    {"m88k", 603000ull},
    {"perl", 8840703386629482194ull},
    {"vortex", 3638545ull},
    {"queens", 320ull},
};

class EveryWorkload : public ::testing::TestWithParam<int>
{
  protected:
    const Workload &w() const { return workloads::all()[GetParam()]; }
};

TEST_P(EveryWorkload, AssemblesAndHaltsWithKnownChecksum)
{
    const arch::ExecTrace trace =
        arch::preExecute(workloads::buildProgram(w()), 50'000'000);
    EXPECT_EQ(trace.exitCode, kExpectedChecksum.at(w().name)) << w().name;
    // All kernels sit in the intended dynamic-length band.
    EXPECT_GT(trace.entries.size(), 200'000u) << w().name;
    EXPECT_LT(trace.entries.size(), 3'000'000u) << w().name;
}

TEST_P(EveryWorkload, ScaleMultipliesWork)
{
    const auto t1 =
        arch::preExecute(workloads::buildProgram(w(), 1), 50'000'000);
    const auto t2 =
        arch::preExecute(workloads::buildProgram(w(), 2), 100'000'000);
    const double ratio = static_cast<double>(t2.entries.size())
                         / static_cast<double>(t1.entries.size());
    EXPECT_GT(ratio, 1.8) << w().name;
    EXPECT_LT(ratio, 2.2) << w().name;
}

TEST_P(EveryWorkload, DeterministicAcrossRuns)
{
    const auto t1 = arch::preExecute(workloads::buildProgram(w()));
    const auto t2 = arch::preExecute(workloads::buildProgram(w()));
    EXPECT_EQ(t1.exitCode, t2.exitCode);
    EXPECT_EQ(t1.entries.size(), t2.entries.size());
}

INSTANTIATE_TEST_SUITE_P(
    Suite, EveryWorkload, ::testing::Range(0, 8),
    [](const ::testing::TestParamInfo<int> &info) {
        return workloads::all()[static_cast<std::size_t>(info.param)]
            .name;
    });

/**
 * Smoke-test each kernel through the out-of-order core (base machine):
 * the core's built-in retire-time trace check turns this into a full
 * architectural equivalence test on real programs.
 */
class OooWorkload : public ::testing::TestWithParam<int>
{
};

TEST_P(OooWorkload, BaseCoreMatchesFunctional)
{
    const Workload &w =
        workloads::all()[static_cast<std::size_t>(GetParam())];
    core::CoreConfig cfg;
    cfg.issueWidth = 8;
    cfg.windowSize = 48;
    core::OooCore core(workloads::buildProgram(w), cfg);
    const core::SimOutcome out = core.run();
    EXPECT_TRUE(out.halted) << w.name;
    EXPECT_EQ(out.exitCode, kExpectedChecksum.at(w.name)) << w.name;
    EXPECT_GT(out.stats.ipc(), 0.3) << w.name;
}

INSTANTIATE_TEST_SUITE_P(
    Suite, OooWorkload, ::testing::Range(0, 8),
    [](const ::testing::TestParamInfo<int> &info) {
        return workloads::all()[static_cast<std::size_t>(info.param)]
            .name;
    });

} // namespace
