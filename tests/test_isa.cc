/**
 * @file
 * Unit tests for the VRISC ISA definition: encode/decode round trips
 * over every opcode, field extraction (sources/destinations), and the
 * disassembler.
 */

#include <gtest/gtest.h>

#include "vsim/isa/isa.hh"

namespace
{

using namespace vsim::isa;

Inst
makeInst(Op op, int ra, int rb, int rc, int imm)
{
    Inst inst;
    inst.op = op;
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.rc = static_cast<std::uint8_t>(rc);
    inst.imm = imm;
    return inst;
}

/** Parameterised round-trip over every opcode. */
class EncodeRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(EncodeRoundTrip, EncodeDecodeIdentity)
{
    const Op op = static_cast<Op>(GetParam());
    const OpInfo &oi = opInfo(op);

    Inst inst;
    inst.op = op;
    inst.ra = 17;
    switch (oi.fmt) {
      case Format::F_RRR:
        inst.rb = 3;
        inst.rc = 31;
        break;
      case Format::F_RRI:
        inst.rb = 9;
        inst.imm = -1234;
        break;
      case Format::F_RI20:
        inst.imm = -123456;
        break;
    }

    const auto decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.has_value()) << oi.name;
    EXPECT_EQ(*decoded, inst) << oi.name;
}

INSTANTIATE_TEST_SUITE_P(AllOps, EncodeRoundTrip,
                         ::testing::Range(0, kNumOps));

/** Immediate boundary values per format. */
class ImmBoundary : public ::testing::TestWithParam<int>
{
};

TEST_P(ImmBoundary, Rri15BitExtremes)
{
    const int imm = GetParam();
    const Inst inst = makeInst(Op::ADDI, 1, 2, 0, imm);
    const auto decoded = decode(encode(inst));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->imm, imm);
}

INSTANTIATE_TEST_SUITE_P(Extremes, ImmBoundary,
                         ::testing::Values(-16384, -1, 0, 1, 16383));

TEST(Decode, RejectsIllegalOpcode)
{
    // Opcode field beyond NUM_OPS.
    const std::uint32_t word = 0x7fu << 25;
    EXPECT_FALSE(decode(word).has_value());
}

TEST(Fields, AluDestAndSources)
{
    const Inst add = makeInst(Op::ADD, 5, 6, 7, 0);
    EXPECT_EQ(add.destReg(), 5);
    EXPECT_EQ(add.srcReg1(), 6);
    EXPECT_EQ(add.srcReg2(), 7);
    EXPECT_FALSE(add.isMem());
    EXPECT_FALSE(add.isBranch());
}

TEST(Fields, X0DestIsNone)
{
    const Inst add = makeInst(Op::ADD, 0, 6, 7, 0);
    EXPECT_EQ(add.destReg(), -1);
}

TEST(Fields, StoreReadsDataAndBase)
{
    const Inst sd = makeInst(Op::SD, 10, 2, 0, 24);
    EXPECT_EQ(sd.destReg(), -1);
    EXPECT_EQ(sd.srcReg1(), 10); // data
    EXPECT_EQ(sd.srcReg2(), 2);  // base
    EXPECT_TRUE(sd.isStore());
    EXPECT_EQ(sd.memSize(), 8);
}

TEST(Fields, LoadReadsBaseOnly)
{
    const Inst lw = makeInst(Op::LW, 10, 2, 0, -8);
    EXPECT_EQ(lw.destReg(), 10);
    EXPECT_EQ(lw.srcReg1(), 2);
    EXPECT_EQ(lw.srcReg2(), -1);
    EXPECT_TRUE(lw.isLoad());
    EXPECT_EQ(lw.memSize(), 4);
}

TEST(Fields, BranchReadsBothNoDest)
{
    const Inst beq = makeInst(Op::BEQ, 4, 5, 0, 12);
    EXPECT_EQ(beq.destReg(), -1);
    EXPECT_EQ(beq.srcReg1(), 4);
    EXPECT_EQ(beq.srcReg2(), 5);
    EXPECT_TRUE(beq.isCondBranch());
    EXPECT_TRUE(beq.isDirectControl());
}

TEST(Fields, JalrIsIndirectControl)
{
    const Inst jalr = makeInst(Op::JALR, 1, 5, 0, 0);
    EXPECT_TRUE(jalr.isBranch());
    EXPECT_FALSE(jalr.isCondBranch());
    EXPECT_FALSE(jalr.isDirectControl());
    EXPECT_EQ(jalr.destReg(), 1);
    EXPECT_EQ(jalr.srcReg1(), 5);
}

TEST(Fields, JalWritesLink)
{
    const Inst jal = makeInst(Op::JAL, 1, 0, 0, 100);
    EXPECT_EQ(jal.destReg(), 1);
    EXPECT_EQ(jal.srcReg1(), -1);
    EXPECT_TRUE(jal.isDirectControl());
    EXPECT_FALSE(jal.isCondBranch());
}

TEST(Fields, HaltReadsExitCode)
{
    const Inst halt = makeInst(Op::HALT, 10, 0, 0, 0);
    EXPECT_TRUE(halt.isSystem());
    EXPECT_EQ(halt.srcReg1(), 10);
    EXPECT_EQ(halt.destReg(), -1);
}

TEST(ExecClasses, LatencyClassesAssigned)
{
    EXPECT_EQ(opInfo(Op::ADD).cls, ExecClass::IntAlu);
    EXPECT_EQ(opInfo(Op::MUL).cls, ExecClass::IntMul);
    EXPECT_EQ(opInfo(Op::DIV).cls, ExecClass::IntDiv);
    EXPECT_EQ(opInfo(Op::REMU).cls, ExecClass::IntDiv);
    EXPECT_EQ(opInfo(Op::LD).cls, ExecClass::Load);
    EXPECT_EQ(opInfo(Op::SW).cls, ExecClass::Store);
    EXPECT_EQ(opInfo(Op::BNE).cls, ExecClass::Branch);
    EXPECT_EQ(opInfo(Op::PUTI).cls, ExecClass::System);
}

TEST(RegNames, RoundTrip)
{
    for (int r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(parseRegName(regName(r)), r) << regName(r);
}

TEST(RegNames, NumericAndAliases)
{
    EXPECT_EQ(parseRegName("x0"), 0);
    EXPECT_EQ(parseRegName("x31"), 31);
    EXPECT_EQ(parseRegName("x32"), -1);
    EXPECT_EQ(parseRegName("fp"), 8);
    EXPECT_EQ(parseRegName("sp"), 2);
    EXPECT_EQ(parseRegName("bogus"), -1);
    EXPECT_EQ(parseRegName("xzr"), -1);
}

TEST(Disasm, RendersRepresentativeForms)
{
    EXPECT_EQ(disassemble(makeInst(Op::ADD, 10, 11, 12, 0)),
              "add a0, a1, a2");
    EXPECT_EQ(disassemble(makeInst(Op::ADDI, 10, 11, 0, -3)),
              "addi a0, a1, -3");
    EXPECT_EQ(disassemble(makeInst(Op::LW, 10, 2, 0, 16)),
              "lw a0, 16(sp)");
    EXPECT_EQ(disassemble(makeInst(Op::SD, 10, 2, 0, -8)),
              "sd a0, -8(sp)");
    EXPECT_EQ(disassemble(makeInst(Op::BEQ, 4, 5, 0, 3)),
              "beq tp, t0, 3");
    EXPECT_EQ(disassemble(makeInst(Op::JAL, 1, 0, 0, -7)),
              "jal ra, -7");
    EXPECT_EQ(disassemble(makeInst(Op::HALT, 10, 0, 0, 0)), "halt a0");
}

} // namespace
