/**
 * @file
 * Tests for the out-of-order core with value prediction disabled —
 * the paper's base processor (§2.1). Every run is implicitly checked
 * instruction-by-instruction against the functional pre-execution
 * trace inside the core, so these tests focus on timing behaviour:
 * superscalar issue, dependence serialisation, functional-unit
 * latencies, branch misprediction penalties, memory ordering and
 * store-to-load forwarding, and window-size effects.
 */

#include <gtest/gtest.h>

#include <string>

#include "vsim/assembler/assembler.hh"
#include "vsim/core/ooo_core.hh"

namespace
{

using namespace vsim;
using core::CoreConfig;
using core::OooCore;
using core::SimOutcome;

SimOutcome
runBase(const std::string &src, CoreConfig cfg = CoreConfig{})
{
    cfg.useValuePrediction = false;
    OooCore core(assembler::assemble(src), cfg);
    return core.run();
}

std::string
repeatLine(const std::string &line, int n)
{
    std::string out;
    for (int i = 0; i < n; ++i)
        out += line + "\n";
    return out;
}

TEST(Base, RunsAndChecksAgainstFunctional)
{
    const SimOutcome out = runBase(R"(
        li a0, 0
        li a1, 1
        li a2, 1001
    loop:
        add a0, a0, a1
        addi a1, a1, 1
        bne a1, a2, loop
        halt a0
    )");
    EXPECT_TRUE(out.halted);
    EXPECT_EQ(out.exitCode, 500500u);
    EXPECT_GT(out.stats.cycles, 0u);
    EXPECT_EQ(out.stats.retired, 3u + 3u * 1000u + 1u);
}

TEST(Base, OutputMatchesFunctional)
{
    const SimOutcome out = runBase(R"(
        li t0, 5
    loop:
        puti t0
        li a0, ' '
        putc a0
        addi t0, t0, -1
        bnez t0, loop
        halt
    )");
    EXPECT_EQ(out.output, "5 4 3 2 1 ");
}

/** A counted loop around @p body, iterated @p iters times. */
std::string
loopAround(const std::string &body, int iters)
{
    return "li s11, " + std::to_string(iters) + "\nbody:\n" + body
           + "addi s11, s11, -1\nbnez s11, body\nhalt\n";
}

TEST(Base, IndependentOpsExploitWidth)
{
    // 64 independent adds per iteration, looped so the i-cache warms
    // up: an 8-wide machine must sustain an IPC well above 4.
    std::string body;
    for (int i = 0; i < 8; ++i) {
        body += "addi t0, zero, 1\naddi t1, zero, 2\n"
                "addi t2, zero, 3\naddi t3, zero, 4\n"
                "addi t4, zero, 5\naddi t5, zero, 6\n"
                "addi t6, zero, 7\naddi s0, zero, 8\n";
    }
    const SimOutcome out = runBase(loopAround(body, 50));
    EXPECT_GT(out.stats.ipc(), 4.0);
}

TEST(Base, DependenceChainSerialises)
{
    // Chained adds: IPC must collapse to about 1 once warm.
    const std::string src =
        "li a0, 0\n" + loopAround(repeatLine("addi a0, a0, 1", 32), 32);
    const SimOutcome out = runBase(src);
    EXPECT_LT(out.stats.ipc(), 1.3);
    EXPECT_GT(out.stats.ipc(), 0.8);
}

TEST(Base, DivChainRespectsLatency)
{
    // Chained divides serialise at the divide latency: >= 20 cycles
    // per instruction in the chain.
    const std::string src =
        "li a0, 1000000\nli a1, 1\n"
        + loopAround(repeatLine("div a0, a0, a1", 8), 16);
    const SimOutcome out = runBase(src);
    EXPECT_GT(out.stats.cycles, 16u * 8u * 20u);
}

TEST(Base, MulLatencyBetweenAluAndDiv)
{
    const auto mul_out = runBase(
        "li a0, 3\nli a1, 1\n"
        + loopAround(repeatLine("mul a0, a0, a1", 16), 16));
    const auto alu_out = runBase(
        "li a0, 3\nli a1, 0\n"
        + loopAround(repeatLine("add a0, a0, a1", 16), 16));
    // Each chained multiply costs ~2 extra cycles over an add.
    EXPECT_GT(mul_out.stats.cycles,
              alu_out.stats.cycles + 16 * 16 * 2 - 64);
}

TEST(Base, PredictableBranchesCostLittle)
{
    // A counted loop is perfectly predictable after warmup.
    const SimOutcome out = runBase(R"(
        li a0, 0
        li a1, 2000
    loop:
        addi a0, a0, 1
        bne a0, a1, loop
        halt a0
    )");
    const double mr = out.stats.condBranches == 0
                          ? 1.0
                          : static_cast<double>(out.stats.condMispredicts)
                                / static_cast<double>(
                                      out.stats.condBranches);
    EXPECT_LT(mr, 0.02);
}

TEST(Base, UnpredictableBranchesCostCycles)
{
    // Direction depends on a xorshift PRNG bit: near-random.
    const std::string src = R"(
        li s0, 88172645463325252
        li s1, 0
        li s2, 3000
        li s3, 0
    loop:
        # xorshift step
        slli t0, s0, 13
        xor s0, s0, t0
        srli t0, s0, 7
        xor s0, s0, t0
        slli t0, s0, 17
        xor s0, s0, t0
        andi t1, s0, 1
        beqz t1, skip
        addi s3, s3, 1
    skip:
        addi s1, s1, 1
        bne s1, s2, loop
        halt s3
    )";
    const SimOutcome out = runBase(src);
    const double mr = static_cast<double>(out.stats.condMispredicts)
                      / static_cast<double>(out.stats.condBranches);
    // Half the branches are random; overall misprediction rate must be
    // substantial, and squashes observed.
    EXPECT_GT(mr, 0.15);
    EXPECT_GT(out.stats.squashes, 100u);
}

TEST(Base, StoreLoadForwardingWorks)
{
    const SimOutcome out = runBase(R"(
        .data
    buf: .space 8
        .text
        la t0, buf
        li t1, 77
        sd t1, 0(t0)
        ld a0, 0(t0)     # must forward from the store
        halt a0
    )");
    EXPECT_EQ(out.exitCode, 77u);
    EXPECT_GE(out.stats.loadsForwarded, 1u);
}

TEST(Base, PartialStoreOverlapComposedCorrectly)
{
    const SimOutcome out = runBase(R"(
        .data
    buf: .dword 0x1111111111111111
        .text
        la t0, buf
        li t1, 0xff
        sb t1, 2(t0)       # overwrite byte 2
        ld a0, 0(t0)       # bytes from memory + store
        srli a0, a0, 16
        andi a0, a0, 0xff
        halt a0
    )");
    EXPECT_EQ(out.exitCode, 0xffu);
}

TEST(Base, LoadsWaitForStoreAddresses)
{
    // The store's address depends on a long-latency divide; the
    // following load (to a different location!) must still wait until
    // the store address resolves (conservative ordering, §2.1).
    const SimOutcome with_store = runBase(R"(
        .data
    a:  .dword 1
    b:  .dword 2
        .text
        la s0, a
        la s1, b
        li t0, 800
        li t1, 100
        div t2, t0, t1     # 8, slow
        slli t2, t2, 3     # 64: offset of nothing, but address dep
        add t3, s0, t2
        sd zero, 0(t3)     # store addr waits on divide
        ld a0, 0(s1)       # younger load must wait
        halt a0
    )");
    const SimOutcome without_store = runBase(R"(
        .data
    a:  .dword 1
    b:  .dword 2
        .text
        la s0, a
        la s1, b
        li t0, 800
        li t1, 100
        div t2, t0, t1
        slli t2, t2, 3
        add t3, s0, t2
        ld a0, 0(s1)
        halt a0
    )");
    EXPECT_EQ(with_store.exitCode, 2u);
    EXPECT_GE(with_store.stats.cycles, without_store.stats.cycles);
}

TEST(Base, DeterministicAcrossRuns)
{
    const std::string src = R"(
        li a0, 0
        li a1, 300
    loop:
        addi a0, a0, 3
        addi a1, a1, -1
        bnez a1, loop
        halt a0
    )";
    const SimOutcome a = runBase(src);
    const SimOutcome b = runBase(src);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.exitCode, b.exitCode);
}

/** Wider machines must not run slower on parallel code. */
class WidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(WidthSweep, ParallelKernelScales)
{
    CoreConfig cfg;
    cfg.issueWidth = GetParam();
    cfg.windowSize = 6 * GetParam();
    std::string src;
    for (int i = 0; i < 128; ++i)
        src += "addi t" + std::to_string(i % 7) + ", zero, 1\n";
    src += "halt\n";
    const SimOutcome out = runBase(src, cfg);
    EXPECT_TRUE(out.halted);
    // Issue width bounds IPC.
    EXPECT_LE(out.stats.ipc(), static_cast<double>(GetParam()) + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Widths, WidthSweep,
                         ::testing::Values(4, 8, 16));

TEST(Base, TinyWindowStillCorrect)
{
    CoreConfig cfg;
    cfg.issueWidth = 2;
    cfg.windowSize = 4;
    const SimOutcome out = runBase(R"(
        li a0, 0
        li a1, 50
    loop:
        addi a0, a0, 2
        addi a1, a1, -1
        bnez a1, loop
        halt a0
    )", cfg);
    EXPECT_EQ(out.exitCode, 100u);
}

TEST(Base, RecursionWithStackCorrect)
{
    const SimOutcome out = runBase(R"(
        li a0, 12
        call fib
        halt a0
    fib:
        li t0, 2
        blt a0, t0, done
        addi sp, sp, -24
        sd ra, 0(sp)
        sd a0, 8(sp)
        addi a0, a0, -1
        call fib
        sd a0, 16(sp)
        ld a0, 8(sp)
        addi a0, a0, -2
        call fib
        ld t1, 16(sp)
        add a0, a0, t1
        ld ra, 0(sp)
        addi sp, sp, 24
        ret
    done:
        ret
    )");
    EXPECT_EQ(out.exitCode, 144u);
}

TEST(Base, WrongPathLoadsAreHarmless)
{
    // A mispredicted branch sends fetch into code that loads from a
    // pointer that is garbage on the wrong path. The machine must
    // squash it without failing.
    const SimOutcome out = runBase(R"(
        .data
    ptr: .dword 0
        .text
        li s0, 88172645463325252
        li s1, 0
        li s2, 500
        li s3, 0
        la s4, ptr
    loop:
        slli t0, s0, 13
        xor s0, s0, t0
        srli t0, s0, 7
        xor s0, s0, t0
        andi t1, s0, 1
        beqz t1, skip
        ld t2, 0(s4)      # on the wrong path t2 garbage-chases
        ld t3, 0(t2)
        add s3, s3, t3
    skip:
        addi s1, s1, 1
        bne s1, s2, loop
        halt s1
    )");
    EXPECT_EQ(out.exitCode, 500u);
}

TEST(Base, IcacheColdMissesCounted)
{
    std::string src;
    // Enough straight-line code to span several 32B i-cache blocks.
    for (int i = 0; i < 256; ++i)
        src += "addi t0, t0, 1\n";
    src += "halt t0\n";
    const SimOutcome out = runBase(src);
    EXPECT_GT(out.stats.icacheMisses, 10u);
}

TEST(Base, MaxCyclesGuardStopsRunawaySim)
{
    CoreConfig cfg;
    cfg.maxCycles = 500;
    // A long-running (but terminating) program hits the cycle guard.
    const std::string src = R"(
        li a1, 1000000
    loop:
        addi a1, a1, -1
        bnez a1, loop
        halt
    )";
    OooCore core(assembler::assemble(src), cfg);
    const SimOutcome out = core.run();
    EXPECT_FALSE(out.halted);
    EXPECT_EQ(out.stats.cycles, 500u);
}

} // namespace
