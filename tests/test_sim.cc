/**
 * @file
 * Tests for the experiment-driver layer (vsim/sim): the paper's
 * machine grid, configuration builders, labels, workload runs and
 * speedup computation.
 */

#include <gtest/gtest.h>

#include "vsim/base/logging.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/simulator.hh"

namespace
{

using namespace vsim;
using core::ConfidenceKind;
using core::SpecModel;
using core::UpdateTiming;

TEST(Machines, PaperGrid)
{
    const auto ms = sim::paperMachines();
    ASSERT_EQ(ms.size(), 3u);
    EXPECT_EQ(ms[0].issueWidth, 4);
    EXPECT_EQ(ms[0].windowSize, 24);
    EXPECT_EQ(ms[1].label(), "8/48");
    EXPECT_EQ(ms[2].issueWidth, 16);
    EXPECT_EQ(ms[2].windowSize, 96);
}

TEST(Configs, BaseDisablesPrediction)
{
    const auto cfg = sim::baseConfig({8, 48});
    EXPECT_FALSE(cfg.useValuePrediction);
    EXPECT_EQ(cfg.issueWidth, 8);
    EXPECT_EQ(cfg.windowSize, 48);
    EXPECT_EQ(cfg.effDcachePorts(), 4); // half the issue width
    EXPECT_EQ(cfg.effRetireWidth(), 8);
}

TEST(Configs, VpCarriesModelAndTiming)
{
    const auto cfg =
        sim::vpConfig({4, 24}, SpecModel::goodModel(),
                      ConfidenceKind::Oracle, UpdateTiming::Immediate);
    EXPECT_TRUE(cfg.useValuePrediction);
    EXPECT_EQ(cfg.model.name, "good");
    EXPECT_EQ(cfg.confidence, ConfidenceKind::Oracle);
    EXPECT_EQ(cfg.updateTiming, UpdateTiming::Immediate);
}

TEST(Labels, PaperNotation)
{
    EXPECT_EQ(sim::timingConfLabel(UpdateTiming::Delayed,
                                   ConfidenceKind::Real),
              "D/R");
    EXPECT_EQ(sim::timingConfLabel(UpdateTiming::Immediate,
                                   ConfidenceKind::Oracle),
              "I/O");
    EXPECT_EQ(sim::timingConfLabel(UpdateTiming::Delayed,
                                   ConfidenceKind::Always),
              "D/A");
}

TEST(Runs, WorkloadRunProducesStats)
{
    // Scale 1 of `queens` is small enough for a unit test.
    const auto r =
        sim::runWorkload("queens", 1, sim::baseConfig({4, 24}));
    EXPECT_EQ(r.workload, "queens");
    EXPECT_GT(r.instructions, 100'000u);
    EXPECT_GT(r.ipc, 0.5);
    EXPECT_EQ(r.exitCode, 320u);
}

TEST(Runs, UnknownWorkloadThrows)
{
    EXPECT_THROW(
        sim::runWorkload("nonesuch", 1, sim::baseConfig({4, 24})),
        FatalError);
}

TEST(Runs, SpeedupDefinition)
{
    sim::RunResult base, vp;
    base.workload = vp.workload = "x";
    base.stats.cycles = 1000;
    vp.stats.cycles = 800;
    EXPECT_DOUBLE_EQ(sim::speedup(base, vp), 1.25);
}

TEST(Report, JsonCarriesKeyFields)
{
    sim::RunResult r;
    r.workload = "demo";
    r.ipc = 2.5;
    r.exitCode = 42;
    r.stats.cycles = 1000;
    r.stats.retired = 2500;
    r.stats.vpCH = 7;
    const std::string js = sim::toJson(r);
    EXPECT_NE(js.find("\"workload\": \"demo\""), std::string::npos);
    EXPECT_NE(js.find("\"cycles\": 1000"), std::string::npos);
    EXPECT_NE(js.find("\"vp_ch\": 7"), std::string::npos);
    EXPECT_NE(js.find("\"exit_code\": 42"), std::string::npos);
    EXPECT_EQ(js.front(), '{');
    EXPECT_EQ(js.back(), '}');
}

TEST(Report, JsonArrayOfRuns)
{
    sim::RunResult a, b;
    a.workload = "a";
    b.workload = "b";
    const std::string js = sim::toJson(std::vector<sim::RunResult>{a, b});
    EXPECT_EQ(js.front(), '[');
    EXPECT_EQ(js.back(), ']');
    EXPECT_NE(js.find("\"a\""), std::string::npos);
    EXPECT_NE(js.find("\"b\""), std::string::npos);
}

TEST(Runs, VpRunImprovesOrMatchesPredictableKernel)
{
    const auto base =
        sim::runWorkload("m88k", 1, sim::baseConfig({8, 48}));
    const auto vp = sim::runWorkload(
        "m88k", 1,
        sim::vpConfig({8, 48}, SpecModel::greatModel(),
                      ConfidenceKind::Oracle, UpdateTiming::Immediate));
    EXPECT_EQ(base.exitCode, vp.exitCode);
    EXPECT_GT(sim::speedup(base, vp), 1.0);
}

} // namespace
