/**
 * @file
 * Unit tests for value predictors and confidence estimators: FCM
 * context learning of repeating sequences, stride and last-value
 * behaviour, delayed-vs-immediate history updating, the 1-bit
 * replacement rule, and resetting-counter confidence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vsim/base/logging.hh"
#include "vsim/vpred/vpred.hh"

namespace
{

using namespace vsim::vpred;

/** Immediate-update convenience: predict then train with the truth. */
std::uint64_t
predictAndTrain(ValuePredictor &vp, std::uint64_t pc, std::uint64_t actual)
{
    const Prediction p = vp.predict(pc);
    vp.pushHistory(pc, actual);
    vp.updateTable(pc, p.token, actual);
    return p.value;
}

TEST(Fcm, LearnsRepeatingSequence)
{
    FcmPredictor vp(10, 10);
    const std::uint64_t pc = 0x1000;
    const std::vector<std::uint64_t> seq = {3, 1, 4, 1, 5, 9, 2, 6};

    // Warm up for several periods.
    for (int rep = 0; rep < 6; ++rep)
        for (std::uint64_t v : seq)
            predictAndTrain(vp, pc, v);

    // Now every prediction must be correct.
    for (int rep = 0; rep < 2; ++rep) {
        for (std::uint64_t v : seq)
            EXPECT_EQ(predictAndTrain(vp, pc, v), v);
    }
}

TEST(Fcm, SequenceLongerThanOrderStillLearned)
{
    // Period-8 sequence with repeated sub-patterns still resolves with
    // order-4 context as long as every 4-gram is unambiguous.
    FcmPredictor vp;
    const std::uint64_t pc = 0x40;
    const std::vector<std::uint64_t> seq = {7, 7, 1, 7, 7, 2, 7, 3};
    for (int rep = 0; rep < 8; ++rep)
        for (std::uint64_t v : seq)
            predictAndTrain(vp, pc, v);
    int correct = 0;
    for (std::uint64_t v : seq)
        correct += predictAndTrain(vp, pc, v) == v;
    EXPECT_EQ(correct, 8);
}

TEST(Fcm, CannotPredictFreshRandomStream)
{
    FcmPredictor vp;
    const std::uint64_t pc = 0x40;
    std::uint64_t x = 88172645463325252ull;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        correct += predictAndTrain(vp, pc, x) == x;
    }
    EXPECT_LT(correct, 10);
}

TEST(Fcm, OneBitReplacementGivesHysteresis)
{
    // Two interleaved instructions sharing one level-2 entry must not
    // thrash it immediately: the 1-bit counter lets the incumbent
    // survive a single conflicting update.
    FcmPredictor vp(4, 4); // tiny tables to force conflict
    const std::uint64_t pc = 0x8;

    // Saturate history on a constant so the context is stable.
    for (int i = 0; i < 8; ++i)
        predictAndTrain(vp, pc, 42);
    EXPECT_EQ(vp.predict(pc).value, 42u);

    // One conflicting update through the same context: value survives.
    const Prediction p = vp.predict(pc);
    vp.updateTable(pc, p.token, 999);
    EXPECT_EQ(vp.predict(pc).value, 42u);
    // A second conflicting update replaces it.
    vp.updateTable(pc, p.token, 999);
    EXPECT_EQ(vp.predict(pc).value, 999u);
}

TEST(Fcm, DelayedSpeculativeHistoryKeepsPredictingThroughLoop)
{
    // Delayed update (paper §5.2): at prediction time the history is
    // pushed with the *prediction*; the table trains later. For a
    // fully repeating value stream this must still predict correctly
    // once warmed up, because predictions equal actuals.
    FcmPredictor vp;
    const std::uint64_t pc = 0x100;
    const std::vector<std::uint64_t> seq = {10, 20, 30, 40};

    // Warm-up with immediate semantics.
    for (int rep = 0; rep < 6; ++rep)
        for (std::uint64_t v : seq)
            predictAndTrain(vp, pc, v);

    // Now simulate in-flight pipelining: push predictions speculatively,
    // train the table a full iteration later.
    struct Outstanding { std::uint64_t token, actual; };
    std::vector<Outstanding> inflight;
    int correct = 0;
    for (int rep = 0; rep < 4; ++rep) {
        for (std::uint64_t v : seq) {
            const Prediction p = vp.predict(pc);
            vp.pushHistory(pc, p.value); // speculative
            correct += p.value == v;
            inflight.push_back({p.token, v});
            if (inflight.size() > seq.size()) {
                vp.updateTable(pc, inflight.front().token,
                               inflight.front().actual);
                inflight.erase(inflight.begin());
            }
        }
    }
    EXPECT_EQ(correct, 16);
}

TEST(LastValue, PredictsConstantsOnly)
{
    LastValuePredictor vp;
    const std::uint64_t pc = 0x10;
    EXPECT_EQ(predictAndTrain(vp, pc, 5), 0u); // cold
    EXPECT_EQ(predictAndTrain(vp, pc, 5), 5u);
    EXPECT_EQ(predictAndTrain(vp, pc, 6), 5u); // wrong on change
    EXPECT_EQ(predictAndTrain(vp, pc, 6), 6u);
}

TEST(Stride, LearnsArithmeticSequence)
{
    StridePredictor vp;
    const std::uint64_t pc = 0x10;
    // 2-delta: needs two identical deltas before committing.
    predictAndTrain(vp, pc, 100);
    predictAndTrain(vp, pc, 104);
    predictAndTrain(vp, pc, 108);
    for (std::uint64_t v = 112; v < 160; v += 4)
        EXPECT_EQ(predictAndTrain(vp, pc, v), v);
}

TEST(Stride, TwoDeltaFiltersOneOffJumps)
{
    StridePredictor vp;
    const std::uint64_t pc = 0x10;
    for (std::uint64_t v = 0; v < 40; v += 4)
        predictAndTrain(vp, pc, v);
    // One-off jump: the committed stride (4) must survive.
    predictAndTrain(vp, pc, 1000);
    EXPECT_EQ(vp.predict(pc).value, 1004u);
}

TEST(Hybrid, TracksBetterComponentPerPc)
{
    HybridPredictor vp(12);
    const std::uint64_t stride_pc = 0x20;
    const std::uint64_t repeat_pc = 0x5000; // distinct chooser slot

    // Train a strided stream (stride component's home turf) and a
    // repeating stream (FCM's home turf) continuously, then measure
    // the tail of the same schedule.
    int stride_ok = 0, repeat_ok = 0;
    for (int rep = 0; rep < 48; ++rep) {
        const std::uint64_t sv = 1000 + 8 * static_cast<unsigned>(rep);
        const std::uint64_t rv =
            static_cast<std::uint64_t>((rep % 3) + 7);
        const bool s_hit = predictAndTrain(vp, stride_pc, sv) == sv;
        const bool r_hit = predictAndTrain(vp, repeat_pc, rv) == rv;
        if (rep >= 36) {
            stride_ok += s_hit;
            repeat_ok += r_hit;
        }
    }
    EXPECT_GE(stride_ok, 11);
    EXPECT_GE(repeat_ok, 11);
}

TEST(Factory, MakesAllKindsAndRejectsUnknown)
{
    for (const char *kind : {"fcm", "last-value", "stride", "hybrid"})
        EXPECT_EQ(makeValuePredictor(kind)->name(), kind);
    EXPECT_THROW(makeValuePredictor("psychic"), vsim::FatalError);
}

// ---- confidence -------------------------------------------------------

TEST(Resetting, ConfidentOnlyAtSaturation)
{
    ResettingConfidence conf(3, 10); // max 7
    const std::uint64_t pc = 0x30;
    for (int i = 0; i < 6; ++i) {
        EXPECT_FALSE(conf.confident(pc)) << i;
        conf.update(pc, true);
    }
    EXPECT_FALSE(conf.confident(pc)); // count = 6
    conf.update(pc, true);            // count = 7
    EXPECT_TRUE(conf.confident(pc));
    conf.update(pc, true);            // saturates at 7
    EXPECT_TRUE(conf.confident(pc));
}

TEST(Resetting, IncorrectResetsToZero)
{
    ResettingConfidence conf(3, 10);
    const std::uint64_t pc = 0x30;
    for (int i = 0; i < 7; ++i)
        conf.update(pc, true);
    EXPECT_TRUE(conf.confident(pc));
    conf.update(pc, false);
    EXPECT_FALSE(conf.confident(pc));
    // Needs the full 7 correct predictions again.
    for (int i = 0; i < 6; ++i)
        conf.update(pc, true);
    EXPECT_FALSE(conf.confident(pc));
}

TEST(Resetting, CustomThreshold)
{
    ResettingConfidence conf(3, 10, 2);
    const std::uint64_t pc = 0x44;
    conf.update(pc, true);
    EXPECT_FALSE(conf.confident(pc));
    conf.update(pc, true);
    EXPECT_TRUE(conf.confident(pc));
}

TEST(Resetting, PcsAreIndependent)
{
    ResettingConfidence conf(1, 10); // 1-bit counters
    conf.update(0x100, true);
    EXPECT_TRUE(conf.confident(0x100));
    EXPECT_FALSE(conf.confident(0x104));
}

TEST(Always, AlwaysConfident)
{
    AlwaysConfident conf;
    EXPECT_TRUE(conf.confident(0x1234));
    conf.update(0x1234, false);
    EXPECT_TRUE(conf.confident(0x1234));
}

} // namespace
