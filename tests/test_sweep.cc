/**
 * @file
 * Tests for the parallel sweep engine: thread-pool behaviour, job
 * fingerprinting, serial-vs-parallel bit-identical results,
 * deterministic ordering under many workers, run-cache memoization
 * (including in-flight dedupe), JSON/CSV emission, and the named
 * sweep registry.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <string>
#include <vector>

#include "vsim/base/logging.hh"
#include "vsim/base/thread_pool.hh"
#include "vsim/sim/report.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/sim/sweep.hh"

namespace
{

using namespace vsim;
using core::ConfidenceKind;
using core::SpecModel;
using core::UpdateTiming;

// ---- thread pool ------------------------------------------------------

TEST(ThreadPool, RunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&count] { ++count; });
    pool.submit([&count] { ++count; });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.submit([&count] { ++count; });
        // No wait(): the destructor must still run everything.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ClampsToOneWorker)
{
    ThreadPool pool(-3);
    EXPECT_EQ(pool.threadCount(), 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1);
}

// ---- job fingerprint --------------------------------------------------

sim::SweepJob
quickJob(const std::string &workload = "queens",
         bool vp = false, int scale = 1)
{
    sim::SweepJob job;
    job.label = "test";
    job.workload = workload;
    job.scale = scale;
    job.cfg = vp ? sim::vpConfig({8, 48}, SpecModel::greatModel(),
                                 ConfidenceKind::Real,
                                 UpdateTiming::Delayed)
                 : sim::baseConfig({8, 48});
    return job;
}

TEST(JobKey, IgnoresLabelButNotConfig)
{
    sim::SweepJob a = quickJob(), b = quickJob();
    b.label = "different label";
    EXPECT_EQ(sim::jobKey(a), sim::jobKey(b));

    sim::SweepJob c = quickJob();
    c.cfg.windowSize = 24;
    EXPECT_NE(sim::jobKey(a), sim::jobKey(c));

    sim::SweepJob d = quickJob();
    d.scale = 2;
    EXPECT_NE(sim::jobKey(a), sim::jobKey(d));

    sim::SweepJob e = quickJob("m88k");
    EXPECT_NE(sim::jobKey(a), sim::jobKey(e));

    sim::SweepJob f = quickJob();
    f.cfg.model.invalidateToReissue += 1;
    EXPECT_NE(sim::jobKey(a), sim::jobKey(f));
}

TEST(JobKey, MemResolutionAndConfidenceTableAreIdentity)
{
    // Speculative vs valid-ops memory resolution produce different
    // runs and must never collide in the RunCache.
    sim::SweepJob a = quickJob("queens", true);
    sim::SweepJob b = quickJob("queens", true);
    b.cfg.model.memNeedsValidOps = false;
    EXPECT_NE(sim::jobKey(a), sim::jobKey(b));

    // Ditto for the confidence table size.
    sim::SweepJob c = quickJob("queens", true);
    c.cfg.confidenceTableBits = 10;
    EXPECT_NE(sim::jobKey(a), sim::jobKey(c));

    // The table-bits segment must not be confusable with the
    // threshold's (both live in the confidence section).
    sim::SweepJob d = quickJob("queens", true);
    d.cfg.confidenceThreshold = d.cfg.confidenceTableBits;
    d.cfg.confidenceTableBits = a.cfg.confidenceThreshold;
    EXPECT_NE(sim::jobKey(a), sim::jobKey(d));
}

TEST(JobKey, ModelNameIsCosmetic)
{
    sim::SweepJob a = quickJob(), b = quickJob();
    b.cfg.model.name = "renamed";
    EXPECT_EQ(sim::jobKey(a), sim::jobKey(b));
}

// With results now persisted across processes (disk_cache.hh), a
// CoreConfig field that jobKey forgets silently serves wrong cached
// results forever. The static_asserts trip whenever CoreConfig or
// SpecModel grows/shrinks; on a size change, audit jobKey() in
// sweep.cc (and the sweep-job codec in server.cc), then update the
// sizes AND the mutation table below.
static_assert(sizeof(core::CoreConfig) == 464,
              "CoreConfig changed: audit jobKey() + saveSweepJob()");
static_assert(sizeof(SpecModel) == 80,
              "SpecModel changed: audit jobKey() + saveSweepJob()");

TEST(JobKey, EveryRelevantFieldChangesTheKey)
{
    using Mutator = void (*)(sim::SweepJob &);
    const struct
    {
        const char *name;
        bool identity; //!< true: key must CHANGE when mutated
        Mutator mutate;
    } fields[] = {
        // Machine.
        {"issueWidth", true, [](sim::SweepJob &j) { j.cfg.issueWidth = 4; }},
        {"fetchWidth", true, [](sim::SweepJob &j) { j.cfg.fetchWidth = 16; }},
        {"retireWidth", true, [](sim::SweepJob &j) { j.cfg.retireWidth = 4; }},
        {"dcachePorts", true, [](sim::SweepJob &j) { j.cfg.dcachePorts = 1; }},
        // Value speculation.
        {"valuePredictor", true,
         [](sim::SweepJob &j) { j.cfg.valuePredictor = "last"; }},
        {"confidence", true,
         [](sim::SweepJob &j) { j.cfg.confidence = ConfidenceKind::Always; }},
        {"confidenceBits", true,
         [](sim::SweepJob &j) { j.cfg.confidenceBits = 5; }},
        {"updateTiming", true,
         [](sim::SweepJob &j) { j.cfg.updateTiming = UpdateTiming::Immediate; }},
        {"model.verifyToBranch", true,
         [](sim::SweepJob &j) { j.cfg.model.verifyToBranch += 2; }},
        {"model.verifyAddrToMem", true,
         [](sim::SweepJob &j) { j.cfg.model.verifyAddrToMem += 2; }},
        {"model.branchNeedsValidOps", true,
         [](sim::SweepJob &j) {
             j.cfg.model.branchNeedsValidOps =
                 !j.cfg.model.branchNeedsValidOps;
         }},
        // Front end and memory hierarchy.
        {"branchPredictor", true,
         [](sim::SweepJob &j) { j.cfg.branchPredictor = "taken"; }},
        {"icache.sizeBytes", true,
         [](sim::SweepJob &j) { j.cfg.icache.sizeBytes /= 2; }},
        {"dcache.assoc", true,
         [](sim::SweepJob &j) { j.cfg.dcache.assoc *= 2; }},
        {"l2cache.blockBytes", true,
         [](sim::SweepJob &j) { j.cfg.l2cache.blockBytes *= 2; }},
        {"dcacheHitLat", true,
         [](sim::SweepJob &j) { j.cfg.dcacheHitLat += 1; }},
        {"l2MissLat", true, [](sim::SweepJob &j) { j.cfg.l2MissLat += 10; }},
        {"storeForwardLat", true,
         [](sim::SweepJob &j) { j.cfg.storeForwardLat += 1; }},
        // Functional units and run control.
        {"aluLat", true, [](sim::SweepJob &j) { j.cfg.aluLat += 1; }},
        {"mulLat", true, [](sim::SweepJob &j) { j.cfg.mulLat += 1; }},
        {"divLat", true, [](sim::SweepJob &j) { j.cfg.divLat += 1; }},
        {"maxCycles", true, [](sim::SweepJob &j) { j.cfg.maxCycles = 1000; }},
        // Observability that rides in the RunResult (PR 7).
        {"metricsInterval", true,
         [](sim::SweepJob &j) { j.cfg.metricsInterval = 500; }},
        {"specLedger", true,
         [](sim::SweepJob &j) { j.cfg.specLedger = true; }},
        // Sharded interval simulation (PR 8).
        {"shards", true, [](sim::SweepJob &j) { j.cfg.shards = 4; }},
        {"intervalInsts", true,
         [](sim::SweepJob &j) { j.cfg.intervalInsts = 100'000; }},
        {"warmupInsts", true,
         [](sim::SweepJob &j) { j.cfg.warmupInsts = 10'000; }},
        // Sampled replay (PR 10): the phase budget and interval
        // length define the clustering, and sampled statistics
        // approximate the monolithic run.
        {"sampleK", true, [](sim::SweepJob &j) { j.cfg.sampleK = 8; }},
        {"sampleIntervalInsts", true,
         [](sim::SweepJob &j) {
             j.cfg.sampleK = 8;
             j.cfg.sampleIntervalInsts = 50'000;
         }},
        // Execution resources and cosmetics: bit-identical results,
        // so they must NOT fracture the cache (PRs 6-8 audits).
        {"label", false, [](sim::SweepJob &j) { j.label = "renamed"; }},
        {"model.name", false,
         [](sim::SweepJob &j) { j.cfg.model.name = "renamed"; }},
        {"icache.name", false,
         [](sim::SweepJob &j) { j.cfg.icache.name = "renamed"; }},
        {"scheduler", false,
         [](sim::SweepJob &j) {
             j.cfg.scheduler = core::SchedulerKind::Scan;
         }},
        {"sweepKind", false,
         [](sim::SweepJob &j) { j.cfg.sweepKind = core::SweepKind::Dense; }},
        {"tracePipeline", false,
         [](sim::SweepJob &j) { j.cfg.tracePipeline = true; }},
        {"traceRetain", false,
         [](sim::SweepJob &j) { j.cfg.traceRetain = 64; }},
        {"shardJobs", false, [](sim::SweepJob &j) { j.cfg.shardJobs = 8; }},
    };

    const std::string base_key = sim::jobKey(quickJob("queens", true));
    for (const auto &f : fields) {
        sim::SweepJob mutated = quickJob("queens", true);
        f.mutate(mutated);
        if (f.identity)
            EXPECT_NE(sim::jobKey(mutated), base_key) << f.name;
        else
            EXPECT_EQ(sim::jobKey(mutated), base_key) << f.name;
    }
}

// ---- serial vs parallel determinism -----------------------------------

std::vector<sim::SweepJob>
smallGrid()
{
    std::vector<sim::SweepJob> jobs;
    const sim::MachineConfig m{8, 48};
    for (const std::string w : {"queens", "m88k", "compress"}) {
        sim::SweepJob base;
        base.label = "base " + w;
        base.workload = w;
        base.scale = 1;
        base.cfg = sim::baseConfig(m);
        jobs.push_back(base);

        sim::SweepJob vp;
        vp.label = "great " + w;
        vp.workload = w;
        vp.scale = 1;
        vp.cfg = sim::vpConfig(m, SpecModel::greatModel(),
                               ConfidenceKind::Real,
                               UpdateTiming::Delayed);
        jobs.push_back(vp);
    }
    return jobs;
}

TEST(SweepRunner, ParallelIsBitIdenticalToSerial)
{
    const auto jobs = smallGrid();

    sim::RunCache serial_cache, parallel_cache;
    sim::SweepRunner serial(1, &serial_cache);
    sim::SweepRunner parallel(8, &parallel_cache);

    const auto a = serial.run(jobs);
    const auto b = parallel.run(jobs);
    ASSERT_EQ(a.size(), jobs.size());
    ASSERT_EQ(b.size(), jobs.size());
    // Every counter of every run must match exactly; the serialized
    // form covers the full stats block including derived IPC.
    EXPECT_EQ(sim::toJson(jobs, a), sim::toJson(jobs, b));
}

TEST(SweepRunner, ResultsInJobOrderUnderManyWorkers)
{
    const auto jobs = smallGrid();
    sim::RunCache cache;
    sim::SweepRunner runner(8, &cache);
    const auto results = runner.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
        EXPECT_EQ(results[i].workload, jobs[i].workload) << "slot " << i;
    // Base and VP runs of the same workload landed in their own slots.
    for (std::size_t i = 0; i + 1 < jobs.size(); i += 2)
        EXPECT_GE(results[i + 1].stats.vpEligible, 1u)
            << "VP slot " << i + 1;
    for (std::size_t i = 0; i < jobs.size(); i += 2)
        EXPECT_EQ(results[i].stats.vpEligible, 0u) << "base slot " << i;
}

TEST(SweepRunner, ErrorsPropagateFromWorkers)
{
    std::vector<sim::SweepJob> jobs = smallGrid();
    jobs[1].workload = "nonesuch";
    sim::RunCache cache;
    sim::SweepRunner runner(4, &cache);
    EXPECT_THROW(runner.run(jobs), FatalError);
}

// ---- run cache --------------------------------------------------------

TEST(RunCache, SecondSweepIsAllHits)
{
    const auto jobs = smallGrid();
    sim::RunCache cache;
    sim::SweepRunner runner(4, &cache);

    const auto first = runner.run(jobs);
    EXPECT_EQ(cache.misses(), jobs.size());
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), jobs.size());

    const auto second = runner.run(jobs);
    EXPECT_EQ(cache.misses(), jobs.size());
    EXPECT_EQ(cache.hits(), jobs.size());
    EXPECT_EQ(sim::toJson(jobs, first), sim::toJson(jobs, second));

    cache.clear();
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.hits(), 0u);
}

TEST(RunCache, DuplicateJobsSimulateOnce)
{
    // Eight copies of the same cell, run concurrently: in-flight
    // dedupe must collapse them to a single simulation.
    std::vector<sim::SweepJob> jobs(8, quickJob());
    sim::RunCache cache;
    sim::SweepRunner runner(8, &cache);
    const auto results = runner.run(jobs);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_EQ(cache.hits(), 7u);
    for (const auto &r : results)
        EXPECT_EQ(r.stats.cycles, results[0].stats.cycles);
}

TEST(RunCache, OwnerExceptionReleasesWaitersAndKey)
{
    // Eight copies of a failing cell under eight workers: the owner's
    // exception must release every waiter (no deadlock), propagate
    // out of run(), and un-memoize the key so a retry executes again
    // instead of replaying a stale error.
    std::vector<sim::SweepJob> jobs(8, quickJob("nonesuch"));
    sim::RunCache cache;
    sim::SweepRunner runner(8, &cache);
    EXPECT_THROW(runner.run(jobs), FatalError);
    EXPECT_EQ(cache.size(), 0u);
    const std::uint64_t misses_after_first = cache.misses();
    EXPECT_GE(misses_after_first, 1u);

    // The failing key was dropped: a second attempt re-executes (the
    // miss counter advances) rather than replaying a cached error.
    EXPECT_THROW(runner.run(jobs), FatalError);
    EXPECT_GT(cache.misses(), misses_after_first);
    EXPECT_EQ(cache.size(), 0u);

    // The cache stays usable for good cells afterwards.
    bool hit = true;
    cache.getOrRun(quickJob(), &hit);
    EXPECT_FALSE(hit);
    EXPECT_EQ(cache.size(), 1u);
}

// ---- JSON round-trip --------------------------------------------------

/**
 * Minimal JSON reader covering exactly what the report writer emits:
 * arrays, flat objects, strings without escapes, and numbers. Returns
 * false on any syntax error; collects top-level-array object keys.
 */
class MiniJson
{
  public:
    explicit MiniJson(const std::string &text) : s(text) {}

    bool
    parse()
    {
        skipWs();
        if (!value())
            return false;
        skipWs();
        return pos == s.size();
    }

    int objects = 0;
    std::vector<std::string> keys;

  private:
    bool
    value()
    {
        if (pos >= s.size())
            return false;
        const char c = s[pos];
        if (c == '[')
            return array();
        if (c == '{')
            return object();
        if (c == '"')
            return string(nullptr);
        return number();
    }

    bool
    array()
    {
        ++pos; // [
        skipWs();
        if (peek() == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == ']') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    object()
    {
        ++pos; // {
        ++objects;
        skipWs();
        if (peek() == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            keys.push_back(key);
            skipWs();
            if (peek() != ':')
                return false;
            ++pos;
            skipWs();
            if (!value())
                return false;
            skipWs();
            if (peek() == ',') {
                ++pos;
                continue;
            }
            if (peek() == '}') {
                ++pos;
                return true;
            }
            return false;
        }
    }

    bool
    string(std::string *out)
    {
        if (peek() != '"')
            return false;
        ++pos;
        std::string v;
        while (pos < s.size() && s[pos] != '"') {
            if (s[pos] == '\\')
                return false; // writer never escapes
            v += s[pos++];
        }
        if (pos >= s.size())
            return false;
        ++pos; // closing quote
        if (out)
            *out = v;
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos;
        if (peek() == '-')
            ++pos;
        while (pos < s.size()
               && (std::isdigit(static_cast<unsigned char>(s[pos]))
                   || s[pos] == '.' || s[pos] == 'e' || s[pos] == '+'
                   || s[pos] == '-'))
            ++pos;
        return pos > start;
    }

    char peek() const { return pos < s.size() ? s[pos] : '\0'; }

    void
    skipWs()
    {
        while (pos < s.size()
               && std::isspace(static_cast<unsigned char>(s[pos])))
            ++pos;
    }

    std::string s;
    std::size_t pos = 0;
};

TEST(SweepReport, JsonRoundTripsThroughParser)
{
    const auto jobs = smallGrid();
    sim::RunCache cache;
    sim::SweepRunner runner(4, &cache);
    const auto results = runner.run(jobs);

    const std::string js = sim::toJson(jobs, results);
    MiniJson parser(js);
    ASSERT_TRUE(parser.parse()) << js;
    EXPECT_EQ(parser.objects, static_cast<int>(jobs.size()));
    // Every object carries the sweep fields and the stats block.
    for (const char *want : {"label", "workload", "scale", "machine",
                             "config", "cycles", "ipc", "vp_ch"}) {
        int seen = 0;
        for (const auto &k : parser.keys)
            seen += k == want;
        EXPECT_EQ(seen, static_cast<int>(jobs.size())) << want;
    }
}

TEST(SweepReport, CsvHasHeaderAndOneLinePerRun)
{
    const auto jobs = smallGrid();
    sim::RunCache cache;
    sim::SweepRunner runner(2, &cache);
    const auto results = runner.run(jobs);

    const std::string csv = sim::toCsv(jobs, results);
    std::size_t lines = 0;
    for (char c : csv)
        lines += c == '\n';
    EXPECT_EQ(lines, jobs.size() + 1);
    EXPECT_EQ(csv.rfind("label,workload,scale,machine,config", 0), 0u);
}

// ---- named sweeps -----------------------------------------------------

TEST(NamedSweeps, RegistryAndQuickSizes)
{
    EXPECT_GE(sim::namedSweeps().size(), 5u);

    const sim::SweepOptions quick{true, 1};
    // fig3 quick: 3 base runs + 3 models x 4 combos x 3 workloads.
    EXPECT_EQ(sim::sweepByName("fig3").build(quick).size(), 3u + 36u);
    // fig4 quick: 2 timings x 3 workloads.
    EXPECT_EQ(sim::sweepByName("fig4").build(quick).size(), 6u);
    // base quick: 1 machine x 3 workloads.
    EXPECT_EQ(sim::sweepByName("base").build(quick).size(), 3u);

    EXPECT_THROW(sim::sweepByName("nonesuch"), FatalError);
}

TEST(NamedSweeps, LabelsNameTheConfiguration)
{
    const sim::SweepOptions quick{true, 1};
    const auto jobs = sim::sweepByName("fig3").build(quick);
    bool saw_base = false, saw_great = false;
    for (const auto &j : jobs) {
        saw_base |= j.label.find("base") != std::string::npos;
        saw_great |= j.label.find("great D/R") != std::string::npos;
    }
    EXPECT_TRUE(saw_base);
    EXPECT_TRUE(saw_great);
}

TEST(ConfigLabel, BaseAndVp)
{
    EXPECT_EQ(sim::configLabel(sim::baseConfig({8, 48})), "base");
    EXPECT_EQ(sim::configLabel(sim::vpConfig(
                  {8, 48}, SpecModel::superModel(),
                  ConfidenceKind::Oracle, UpdateTiming::Immediate)),
              "super I/O");
}

} // namespace
