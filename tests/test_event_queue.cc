/**
 * @file
 * Unit tests of the speculation event network's scheduler: the
 * deterministic (cycle, seq, kind) ordering contract, the batch
 * semantics for zero-latency event chains, and the unified
 * hierarchical-wave depth bookkeeping.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vsim/core/event_queue.hh"

namespace
{

using namespace vsim::core;

Event
ev(EventKind kind, int slot, std::uint64_t seq, int depth = -1)
{
    return Event{kind, slot, seq, depth};
}

TEST(EventQueue, StartsEmpty)
{
    EventQueue q;
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pendingEvents(), 0u);
    EXPECT_FALSE(q.due(0));
    EXPECT_FALSE(q.due(1'000'000));
}

TEST(EventQueue, PopsStrictlyByCycle)
{
    EventQueue q;
    q.schedule(7, ev(EventKind::Verify, 0, 10));
    q.schedule(3, ev(EventKind::EqCheck, 1, 20));
    q.schedule(5, ev(EventKind::Invalidate, 2, 30));
    EXPECT_EQ(q.pendingEvents(), 3u);

    EXPECT_FALSE(q.due(2));
    ASSERT_TRUE(q.due(3));
    auto b = q.popBatch(3);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].seq, 20u);

    // Cycle 5 is due at any now >= 5, including a late drain.
    ASSERT_TRUE(q.due(6));
    b = q.popBatch(6);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].seq, 30u);

    ASSERT_TRUE(q.due(7));
    b = q.popBatch(7);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].seq, 10u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, BatchSortsBySeqThenKind)
{
    EventQueue q;
    // Scheduled in scrambled order; one slot has both its Verify and
    // a (stale) EqCheck pending at the same cycle.
    q.schedule(4, ev(EventKind::Verify, 3, 50));
    q.schedule(4, ev(EventKind::Invalidate, 1, 20));
    q.schedule(4, ev(EventKind::EqCheck, 2, 50));
    q.schedule(4, ev(EventKind::EqCheck, 0, 10));

    auto b = q.popBatch(4);
    ASSERT_EQ(b.size(), 4u);
    EXPECT_EQ(b[0].seq, 10u);
    EXPECT_EQ(b[1].seq, 20u);
    // seq tie: EqCheck (kind 0) before Verify (kind 1).
    EXPECT_EQ(b[2].seq, 50u);
    EXPECT_EQ(b[2].kind, EventKind::EqCheck);
    EXPECT_EQ(b[3].seq, 50u);
    EXPECT_EQ(b[3].kind, EventKind::Verify);
}

TEST(EventQueue, OrderIndependentOfSchedulingOrder)
{
    // The same event set must drain identically no matter which code
    // path enqueued first (bit-reproducibility contract).
    const std::vector<Event> events = {
        ev(EventKind::Verify, 0, 5), ev(EventKind::EqCheck, 1, 9),
        ev(EventKind::Invalidate, 2, 7), ev(EventKind::EqCheck, 3, 5)};

    EventQueue fwd, rev;
    for (const Event &e : events)
        fwd.schedule(2, e);
    for (auto it = events.rbegin(); it != events.rend(); ++it)
        rev.schedule(2, *it);

    const auto bf = fwd.popBatch(2);
    const auto br = rev.popBatch(2);
    ASSERT_EQ(bf.size(), br.size());
    for (std::size_t i = 0; i < bf.size(); ++i) {
        EXPECT_EQ(bf[i].seq, br[i].seq);
        EXPECT_EQ(bf[i].kind, br[i].kind);
        EXPECT_EQ(bf[i].slot, br[i].slot);
    }
}

TEST(EventQueue, MidDrainSchedulesFormNextBatch)
{
    // A zero-latency chain (EqCheck -> Verify under the super model)
    // schedules for the *same* cycle while that cycle is draining; the
    // new event must not join the batch in flight.
    EventQueue q;
    q.schedule(9, ev(EventKind::EqCheck, 0, 1));
    q.schedule(9, ev(EventKind::EqCheck, 1, 2));

    int drains = 0;
    std::vector<std::uint64_t> order;
    while (q.due(9)) {
        ++drains;
        for (const Event &e : q.popBatch(9)) {
            order.push_back(e.seq);
            if (e.kind == EventKind::EqCheck)
                q.schedule(9, ev(EventKind::Verify, e.slot, e.seq));
        }
    }
    EXPECT_EQ(drains, 2);
    ASSERT_EQ(order.size(), 4u);
    // First batch: both EqChecks; second batch: both Verifies.
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 2u);
    EXPECT_EQ(order[2], 1u);
    EXPECT_EQ(order[3], 2u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduleWaveDepth)
{
    EventQueue q;
    // Hierarchical transactions open at depth 0, single-event schemes
    // carry no depth; both kinds coexist in one queue (mixed
    // hierarchical-verify + flattened-invalidate configurations).
    q.scheduleWave(1, EventKind::Verify, 4, 100, /*hierarchical=*/true);
    q.scheduleWave(1, EventKind::Invalidate, 5, 200,
                   /*hierarchical=*/false);

    auto b = q.popBatch(1);
    ASSERT_EQ(b.size(), 2u);
    EXPECT_EQ(b[0].kind, EventKind::Verify);
    EXPECT_EQ(b[0].depth, 0);
    EXPECT_EQ(b[1].kind, EventKind::Invalidate);
    EXPECT_EQ(b[1].depth, -1);
}

TEST(EventQueue, AdvanceWaveOneCycleOneLevel)
{
    EventQueue q;
    q.scheduleWave(2, EventKind::Invalidate, 7, 300, true);
    auto b = q.popBatch(2);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].depth, 0);

    // The sweep left work behind: next level, one cycle out.
    q.advanceWave(2, b[0]);
    EXPECT_FALSE(q.due(2));
    ASSERT_TRUE(q.due(3));
    b = q.popBatch(3);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].kind, EventKind::Invalidate);
    EXPECT_EQ(b[0].slot, 7);
    EXPECT_EQ(b[0].seq, 300u);
    EXPECT_EQ(b[0].depth, 1);

    q.advanceWave(3, b[0]);
    b = q.popBatch(4);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(b[0].depth, 2);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueDeathTest, AdvanceWaveRequiresWaveEvent)
{
    // Advancing a depthless (single-event-scheme) event is a misuse of
    // the wave bookkeeping and trips the invariant check.
    EventQueue q;
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(q.advanceWave(0, ev(EventKind::Verify, 0, 1, -1)),
                 "non-wave");
}

} // namespace
