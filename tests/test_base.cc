/**
 * @file
 * Unit tests for vsim/base: statistics helpers, logging, RNG.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "vsim/base/logging.hh"
#include "vsim/base/random.hh"
#include "vsim/base/stats.hh"

namespace
{

using namespace vsim;

TEST(Means, ArithmeticBasic)
{
    EXPECT_DOUBLE_EQ(arithmeticMean({1.0, 2.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({}), 0.0);
    EXPECT_DOUBLE_EQ(arithmeticMean({5.0}), 5.0);
}

TEST(Means, HarmonicBasic)
{
    // Harmonic mean of {1, 2} is 2 / (1 + 1/2) = 4/3.
    EXPECT_NEAR(harmonicMean({1.0, 2.0}), 4.0 / 3.0, 1e-12);
    // An empty sample set is a caller bug; NaN is loud where a
    // silent 0 would look like a measured speedup.
    EXPECT_TRUE(std::isnan(harmonicMean({})));
}

TEST(Means, NonFiniteRendersAsNa)
{
    EXPECT_EQ(TextTable::fmt(harmonicMean({}), 3), "n/a");
    EXPECT_EQ(TextTable::fmt(
                  std::numeric_limits<double>::infinity(), 2),
              "n/a");
}

TEST(Means, HarmonicLeqArithmetic)
{
    // AM-HM inequality on a few sample sets.
    const std::vector<std::vector<double>> sets = {
        {1.0, 2.0, 3.0}, {0.5, 0.5, 4.0}, {10.0, 0.1}};
    for (const auto &xs : sets)
        EXPECT_LE(harmonicMean(xs), arithmeticMean(xs) + 1e-12);
}

TEST(Means, GeometricBetweenHarmonicAndArithmetic)
{
    const std::vector<double> xs = {1.3, 0.9, 2.4, 1.1};
    EXPECT_LE(harmonicMean(xs), geometricMean(xs) + 1e-12);
    EXPECT_LE(geometricMean(xs), arithmeticMean(xs) + 1e-12);
}

TEST(RatioStat, CountsAndRatio)
{
    RatioStat s;
    EXPECT_DOUBLE_EQ(s.ratio(), 0.0);
    s.record(true);
    s.record(true);
    s.record(false);
    EXPECT_EQ(s.total(), 3u);
    EXPECT_EQ(s.hits(), 2u);
    EXPECT_EQ(s.misses(), 1u);
    EXPECT_NEAR(s.ratio(), 2.0 / 3.0, 1e-12);
    s.reset();
    EXPECT_EQ(s.total(), 0u);
}

TEST(Logging, FatalThrowsWithMessage)
{
    try {
        VSIM_FATAL("bad input ", 42);
        FAIL() << "expected FatalError";
    } catch (const FatalError &err) {
        EXPECT_NE(std::string(err.what()).find("bad input 42"),
                  std::string::npos);
    }
}

TEST(Logging, AssertPassesOnTrue)
{
    VSIM_ASSERT(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(Logging, ParseLogLevelNamesAndNumbers)
{
    bool ok = false;
    EXPECT_EQ(parseLogLevel("quiet", &ok), LogLevel::Quiet);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("warn", &ok), LogLevel::Warn);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("info", &ok), LogLevel::Info);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("debug", &ok), LogLevel::Debug);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("0", &ok), LogLevel::Quiet);
    EXPECT_TRUE(ok);
    EXPECT_EQ(parseLogLevel("3", &ok), LogLevel::Debug);
    EXPECT_TRUE(ok);
}

TEST(Logging, ParseLogLevelRejectsGarbage)
{
    for (const char *bad : {"", "loud", "4", "-1", "warn "}) {
        bool ok = true;
        EXPECT_EQ(parseLogLevel(bad, &ok), LogLevel::Info) << bad;
        EXPECT_FALSE(ok) << bad;
    }
    // Null ok-pointer form must not crash.
    EXPECT_EQ(parseLogLevel("nonsense"), LogLevel::Info);
}

TEST(Logging, SetLogLevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Quiet);
    EXPECT_EQ(logLevel(), LogLevel::Quiet);
    setLogLevel(before);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t;
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "2.5"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(TextTable, FmtFixedDigits)
{
    EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::fmt(2.0, 3), "2.000");
}

TEST(Random, DeterministicForSeed)
{
    Xoshiro256 a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 4);
}

TEST(Random, BoundedStaysInRange)
{
    Xoshiro256 rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.nextBounded(17), 17u);
        const std::int64_t v = rng.nextRange(-5, 9);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 9);
    }
}

TEST(Random, BernoulliRoughlyFair)
{
    Xoshiro256 rng(99);
    int heads = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        heads += rng.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

} // namespace
