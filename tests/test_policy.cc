/**
 * @file
 * Unit tests of the policy strategy objects under core/policy/:
 * selection keys (§3.5), verification sweeps (§3.2) and invalidation
 * sweeps (§3.1), each run in isolation against a synthetic window and
 * a recording SpecHooks fake — no OooCore involved.
 */

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "vsim/core/policy/policies.hh"

namespace
{

using namespace vsim::core;

// =====================================================================
// selection (§3.5)
// =====================================================================

TEST(SelectPolicyTest, Names)
{
    EXPECT_STREQ(
        makeSelectionPolicy(SelectPolicy::TypedSpecLast)->name(),
        "typed-spec-last");
    EXPECT_STREQ(makeSelectionPolicy(SelectPolicy::TypedOnly)->name(),
                 "typed-only");
    EXPECT_STREQ(makeSelectionPolicy(SelectPolicy::OldestFirst)->name(),
                 "oldest-first");
    EXPECT_STREQ(
        makeSelectionPolicy(SelectPolicy::TypedSpecFirst)->name(),
        "typed-spec-first");
}

/** (prio, spec) compared lexicographically, as the issue sort does. */
bool
beats(const SelectKey &a, const SelectKey &b)
{
    return a.prio != b.prio ? a.prio < b.prio : a.spec < b.spec;
}

TEST(SelectPolicyTest, TypedSpecLastOrder)
{
    // Paper §3.5: branches/loads first; within a class,
    // non-speculative preferred; age (handled by the caller) last.
    const auto p = makeSelectionPolicy(SelectPolicy::TypedSpecLast);
    const SelectKey tn = p->key(true, false), ts = p->key(true, true);
    const SelectKey un = p->key(false, false), us = p->key(false, true);
    EXPECT_TRUE(beats(tn, ts));
    EXPECT_TRUE(beats(ts, un));
    EXPECT_TRUE(beats(un, us));
}

TEST(SelectPolicyTest, TypedOnlyIgnoresSpeculation)
{
    const auto p = makeSelectionPolicy(SelectPolicy::TypedOnly);
    EXPECT_EQ(p->key(true, false), p->key(true, true));
    EXPECT_EQ(p->key(false, false), p->key(false, true));
    EXPECT_TRUE(beats(p->key(true, true), p->key(false, false)));
}

TEST(SelectPolicyTest, OldestFirstIsPureAge)
{
    const auto p = makeSelectionPolicy(SelectPolicy::OldestFirst);
    EXPECT_EQ(p->key(true, false), p->key(false, true));
    EXPECT_EQ(p->key(true, true), p->key(false, false));
}

TEST(SelectPolicyTest, TypedSpecFirstPrefersSpeculative)
{
    const auto p = makeSelectionPolicy(SelectPolicy::TypedSpecFirst);
    EXPECT_TRUE(beats(p->key(true, true), p->key(true, false)));
    EXPECT_TRUE(beats(p->key(false, true), p->key(false, false)));
    EXPECT_TRUE(beats(p->key(true, false), p->key(false, true)));
}

// =====================================================================
// synthetic window + recording hooks
// =====================================================================

/** Records every hook the sweeps raise, mutating nothing. */
struct RecordingHooks final : SpecHooks
{
    std::vector<int> outputValid;  //!< slots via outputBecameValid
    std::vector<int> nullified;    //!< slots via nullifyEntry
    std::vector<int> squashed;     //!< producer slots, completeSquash
    std::vector<int> wakeups;      //!< slots via wakeupChanged
    std::vector<std::pair<int, int>> invalidated; //!< (slot, operand)

    void outputBecameValid(RsEntry &e) override
    {
        outputValid.push_back(e.slot);
    }
    void nullifyEntry(RsEntry &e) override
    {
        nullified.push_back(e.slot);
    }
    void completeSquash(RsEntry &p) override
    {
        squashed.push_back(p.slot);
    }
    void wakeupChanged(RsEntry &e) override
    {
        wakeups.push_back(e.slot);
    }
    void operandInvalidated(RsEntry &e, int idx) override
    {
        invalidated.push_back({e.slot, idx});
    }
};

/**
 * A three-deep dependence chain around a predicted producer:
 *
 *   slot 0  producer, predicted, executed
 *   slot 1  direct consumer   src[0]: tag 0, deps {0}, Predicted
 *   slot 2  indirect consumer src[0]: tag 1, deps {0}, Speculative
 *
 * Both consumers executed, so their outputs also carry bit 0.
 */
struct ChainFixture
{
    std::vector<RsEntry> window;
    std::deque<int> order{0, 1, 2};
    RecordingHooks hooks;

    ChainFixture()
    {
        window.resize(3);
        for (int s = 0; s < 3; ++s) {
            RsEntry &e = window[static_cast<std::size_t>(s)];
            e.busy = true;
            e.slot = s;
            e.seq = static_cast<std::uint64_t>(s + 1);
            e.executed = true;
            e.issued = true;
        }
        RsEntry &p = window[0];
        p.predicted = true;
        p.outValue = 111;
        p.outDeps.set(0);

        RsEntry &c1 = window[1];
        c1.src[0].state = OperandState::Predicted;
        c1.src[0].tag = 0;
        c1.src[0].value = 42; // stale predicted value
        c1.src[0].deps.set(0);
        c1.outDeps.set(0);

        RsEntry &c2 = window[2];
        c2.src[0].state = OperandState::Speculative;
        c2.src[0].tag = 1;
        c2.src[0].deps.set(0);
        c2.outDeps.set(0);
    }

    WindowRef ref() { return {window, order}; }
};

// =====================================================================
// verification (§3.2)
// =====================================================================

TEST(VerifyPolicyTest, PredicateTable)
{
    const auto flat = makeVerifyPolicy(VerifyScheme::Flattened);
    const auto hier = makeVerifyPolicy(VerifyScheme::Hierarchical);
    const auto ret = makeVerifyPolicy(VerifyScheme::RetirementBased);
    const auto hyb = makeVerifyPolicy(VerifyScheme::Hybrid);

    EXPECT_STREQ(flat->name(), "flattened");
    EXPECT_FALSE(flat->hierarchical());
    EXPECT_TRUE(flat->propagatesOnEvent());
    EXPECT_FALSE(flat->sweepsAtRetire());
    EXPECT_FALSE(flat->residueGuardAtRetire());

    EXPECT_STREQ(hier->name(), "hierarchical");
    EXPECT_TRUE(hier->hierarchical());
    EXPECT_TRUE(hier->propagatesOnEvent());
    EXPECT_FALSE(hier->sweepsAtRetire());
    EXPECT_TRUE(hier->residueGuardAtRetire());

    EXPECT_STREQ(ret->name(), "retirement");
    EXPECT_FALSE(ret->hierarchical());
    EXPECT_FALSE(ret->propagatesOnEvent());
    EXPECT_TRUE(ret->sweepsAtRetire());
    EXPECT_FALSE(ret->residueGuardAtRetire());

    EXPECT_STREQ(hyb->name(), "hybrid");
    EXPECT_TRUE(hyb->hierarchical());
    EXPECT_TRUE(hyb->propagatesOnEvent());
    EXPECT_TRUE(hyb->sweepsAtRetire());
    // Hybrid's retirement sweep clears residue; no guard needed.
    EXPECT_FALSE(hyb->residueGuardAtRetire());
}

TEST(VerifyPolicyTest, FlattenedValidatesAllInOneEvent)
{
    ChainFixture f;
    const auto policy = makeVerifyPolicy(VerifyScheme::Flattened);
    const bool more = policy->apply(f.ref(), f.window[0], 10, f.hooks);

    EXPECT_FALSE(more);
    // Both consumers' operands lose the bit and turn Valid at once.
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[1].src[0].validAt, 10u);
    EXPECT_TRUE(f.window[1].src[0].validViaEvent);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Valid);
    EXPECT_TRUE(f.window[1].outDeps.none());
    EXPECT_TRUE(f.window[2].outDeps.none());
    EXPECT_EQ(f.hooks.wakeups, (std::vector<int>{1, 2}));
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1, 2}));
    EXPECT_TRUE(f.hooks.nullified.empty());
    EXPECT_TRUE(f.hooks.invalidated.empty());
}

TEST(VerifyPolicyTest, HierarchicalAdvancesOneLevelPerEvent)
{
    ChainFixture f;
    const auto policy = makeVerifyPolicy(VerifyScheme::Hierarchical);

    // Step 1: only the direct consumer's input cleanses; its output
    // (and the indirect consumer) wait for the next wave step.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 10, f.hooks));
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_FALSE(f.window[1].outDeps.none());
    EXPECT_EQ(f.hooks.wakeups, (std::vector<int>{1}));

    // Step 2: the direct consumer's output cleanses; the indirect
    // consumer's input sees it only at step 3.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 11, f.hooks));
    EXPECT_TRUE(f.window[1].outDeps.none());
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1}));
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);

    // Step 3: the wave reaches the indirect consumer's input; its
    // output cleanses one step after its inputs, i.e. at step 4.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 12, f.hooks));
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[2].src[0].validAt, 12u);
    EXPECT_FALSE(f.window[2].outDeps.none());

    // Step 4: nothing remains.
    EXPECT_FALSE(policy->apply(f.ref(), f.window[0], 13, f.hooks));
    EXPECT_TRUE(f.window[2].outDeps.none());
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1, 2}));
}

TEST(VerifyPolicyTest, RetirementSweepValidatesEverything)
{
    ChainFixture f;
    const auto policy = makeVerifyPolicy(VerifyScheme::RetirementBased);
    policy->applyRetire(f.ref(), f.window[0], 20, f.hooks);

    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Valid);
    EXPECT_TRUE(f.window[1].outDeps.none());
    EXPECT_TRUE(f.window[2].outDeps.none());
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1, 2}));
}

TEST(VerifyPolicyTest, SweepLeavesUnrelatedBitsAlone)
{
    ChainFixture f;
    // The indirect consumer also depends on some other prediction.
    f.window[2].src[0].deps.set(5);
    f.window[2].outDeps.set(5);

    const auto policy = makeVerifyPolicy(VerifyScheme::Flattened);
    policy->apply(f.ref(), f.window[0], 10, f.hooks);

    // Bit 0 cleared, bit 5 kept: still speculative, no wakeup raised
    // beyond the direct consumer, output not yet valid.
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_TRUE(f.window[2].src[0].deps.test(5));
    EXPECT_FALSE(f.window[2].src[0].deps.test(0));
    EXPECT_TRUE(f.window[2].outDeps.test(5));
    EXPECT_EQ(f.hooks.wakeups, (std::vector<int>{1}));
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1}));
}

// =====================================================================
// invalidation (§3.1)
// =====================================================================

TEST(InvalPolicyTest, PredicateTable)
{
    const auto flat = makeInvalPolicy(InvalScheme::Flattened);
    const auto hier = makeInvalPolicy(InvalScheme::Hierarchical);
    const auto comp = makeInvalPolicy(InvalScheme::Complete);

    EXPECT_STREQ(flat->name(), "flattened");
    EXPECT_FALSE(flat->hierarchical());
    EXPECT_FALSE(flat->complete());
    EXPECT_FALSE(flat->residueGuardAtRetire());

    EXPECT_STREQ(hier->name(), "hierarchical");
    EXPECT_TRUE(hier->hierarchical());
    EXPECT_FALSE(hier->complete());
    EXPECT_TRUE(hier->residueGuardAtRetire());

    EXPECT_STREQ(comp->name(), "complete");
    EXPECT_FALSE(comp->hierarchical());
    EXPECT_TRUE(comp->complete());
    EXPECT_FALSE(comp->residueGuardAtRetire());
}

TEST(InvalPolicyTest, FlattenedCorrectsDirectResetsIndirect)
{
    ChainFixture f;
    const auto policy = makeInvalPolicy(InvalScheme::Flattened);
    const bool more = policy->apply(f.ref(), f.window[0], 10, f.hooks);

    EXPECT_FALSE(more);
    // Direct consumer rides the corrected value off the broadcast.
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[1].src[0].value, 111u);
    EXPECT_EQ(f.window[1].src[0].readyAt, 10u);
    // Indirect consumer re-captures from its producer's re-broadcast.
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Invalid);
    EXPECT_TRUE(f.window[2].src[0].deps.none());
    EXPECT_EQ(f.hooks.invalidated,
              (std::vector<std::pair<int, int>>{{2, 0}}));
    // Both consumed a wrong value while issued: wakeup nullification.
    EXPECT_EQ(f.hooks.nullified, (std::vector<int>{1, 2}));
    EXPECT_TRUE(f.hooks.squashed.empty());
}

TEST(InvalPolicyTest, HierarchicalWaveReactsLevelByLevel)
{
    ChainFixture f;
    const auto policy = makeInvalPolicy(InvalScheme::Hierarchical);

    // Step 1: direct consumer corrected; the indirect consumer's
    // producer still carried the bit at the start of the step, so it
    // must wait for a later level.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 10, f.hooks));
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[1].src[0].value, 111u);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_EQ(f.hooks.nullified, (std::vector<int>{1}));

    // The nullification resets the direct consumer's execution state,
    // as OooCore::nullify does.
    f.window[1].executed = false;
    f.window[1].issued = false;
    f.window[1].outDeps.reset();

    // Step 2: the indirect consumer sees its producer was nullified
    // and resets to wait on the re-broadcast.
    EXPECT_FALSE(policy->apply(f.ref(), f.window[0], 11, f.hooks));
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Invalid);
    EXPECT_EQ(f.hooks.invalidated,
              (std::vector<std::pair<int, int>>{{2, 0}}));
    EXPECT_EQ(f.hooks.nullified, (std::vector<int>{1, 2}));
}

TEST(InvalPolicyTest, CompleteRaisesSquashOnly)
{
    ChainFixture f;
    const auto policy = makeInvalPolicy(InvalScheme::Complete);
    EXPECT_FALSE(policy->apply(f.ref(), f.window[0], 10, f.hooks));

    // Complete invalidation delegates wholesale to the squash path;
    // the sweep itself must not touch any consumer state.
    EXPECT_EQ(f.hooks.squashed, (std::vector<int>{0}));
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Predicted);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_TRUE(f.hooks.nullified.empty());
    EXPECT_TRUE(f.hooks.wakeups.empty());
    EXPECT_TRUE(f.hooks.invalidated.empty());
}

// =====================================================================
// factory
// =====================================================================

TEST(PolicySetTest, FactoryBindsModelVariables)
{
    SpecModel m = SpecModel::greatModel();
    m.verifyScheme = VerifyScheme::Hybrid;
    m.invalScheme = InvalScheme::Complete;
    m.selectPolicy = SelectPolicy::OldestFirst;

    const PolicySet p = makePolicies(m);
    EXPECT_STREQ(p.verify->name(), "hybrid");
    EXPECT_STREQ(p.invalidate->name(), "complete");
    EXPECT_STREQ(p.select->name(), "oldest-first");
}

} // namespace
