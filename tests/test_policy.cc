/**
 * @file
 * Unit tests of the policy strategy objects under core/policy/:
 * selection keys (§3.5), verification sweeps (§3.2) and invalidation
 * sweeps (§3.1), each run in isolation against a synthetic window and
 * a recording SpecHooks fake — no OooCore involved.
 */

#include <gtest/gtest.h>

#include <vector>

#include "vsim/core/mask_ops.hh"
#include "vsim/core/policy/policies.hh"
#include "vsim/core/slot_ring.hh"
#include "vsim/core/subscriber_index.hh"

namespace
{

using namespace vsim::core;

// =====================================================================
// selection (§3.5)
// =====================================================================

TEST(SelectPolicyTest, Names)
{
    EXPECT_STREQ(
        makeSelectionPolicy(SelectPolicy::TypedSpecLast)->name(),
        "typed-spec-last");
    EXPECT_STREQ(makeSelectionPolicy(SelectPolicy::TypedOnly)->name(),
                 "typed-only");
    EXPECT_STREQ(makeSelectionPolicy(SelectPolicy::OldestFirst)->name(),
                 "oldest-first");
    EXPECT_STREQ(
        makeSelectionPolicy(SelectPolicy::TypedSpecFirst)->name(),
        "typed-spec-first");
}

/** (prio, spec) compared lexicographically, as the issue sort does. */
bool
beats(const SelectKey &a, const SelectKey &b)
{
    return a.prio != b.prio ? a.prio < b.prio : a.spec < b.spec;
}

TEST(SelectPolicyTest, TypedSpecLastOrder)
{
    // Paper §3.5: branches/loads first; within a class,
    // non-speculative preferred; age (handled by the caller) last.
    const auto p = makeSelectionPolicy(SelectPolicy::TypedSpecLast);
    const SelectKey tn = p->key(true, false), ts = p->key(true, true);
    const SelectKey un = p->key(false, false), us = p->key(false, true);
    EXPECT_TRUE(beats(tn, ts));
    EXPECT_TRUE(beats(ts, un));
    EXPECT_TRUE(beats(un, us));
}

TEST(SelectPolicyTest, TypedOnlyIgnoresSpeculation)
{
    const auto p = makeSelectionPolicy(SelectPolicy::TypedOnly);
    EXPECT_EQ(p->key(true, false), p->key(true, true));
    EXPECT_EQ(p->key(false, false), p->key(false, true));
    EXPECT_TRUE(beats(p->key(true, true), p->key(false, false)));
}

TEST(SelectPolicyTest, OldestFirstIsPureAge)
{
    const auto p = makeSelectionPolicy(SelectPolicy::OldestFirst);
    EXPECT_EQ(p->key(true, false), p->key(false, true));
    EXPECT_EQ(p->key(true, true), p->key(false, false));
}

TEST(SelectPolicyTest, TypedSpecFirstPrefersSpeculative)
{
    const auto p = makeSelectionPolicy(SelectPolicy::TypedSpecFirst);
    EXPECT_TRUE(beats(p->key(true, true), p->key(true, false)));
    EXPECT_TRUE(beats(p->key(false, true), p->key(false, false)));
    EXPECT_TRUE(beats(p->key(true, false), p->key(false, true)));
}

// =====================================================================
// synthetic window + recording hooks
// =====================================================================

/** Records every hook the sweeps raise, mutating nothing. */
struct RecordingHooks final : SpecHooks
{
    std::vector<int> outputValid;  //!< slots via outputBecameValid
    std::vector<int> nullified;    //!< slots via nullifyEntry
    std::vector<int> squashed;     //!< producer slots, completeSquash
    std::vector<int> wakeups;      //!< slots via wakeupChanged
    std::vector<std::pair<int, int>> invalidated; //!< (slot, operand)

    void outputBecameValid(RsEntry &e) override
    {
        outputValid.push_back(e.slot);
    }
    void nullifyEntry(RsEntry &e) override
    {
        nullified.push_back(e.slot);
    }
    void completeSquash(RsEntry &p) override
    {
        squashed.push_back(p.slot);
    }
    void wakeupChanged(RsEntry &e) override
    {
        wakeups.push_back(e.slot);
    }
    void operandInvalidated(RsEntry &e, int idx) override
    {
        invalidated.push_back({e.slot, idx});
    }
};

/**
 * A three-deep dependence chain around a predicted producer:
 *
 *   slot 0  producer, predicted, executed
 *   slot 1  direct consumer   src[0]: tag 0, deps {0}, Predicted
 *   slot 2  indirect consumer src[0]: tag 1, deps {0}, Speculative
 *
 * Both consumers executed, so their outputs also carry bit 0.
 */
struct ChainFixture
{
    /**
     * Physical window capacity: larger than the three live entries so
     * tests can park unrelated prediction bits (e.g. bit 5) without
     * stepping outside the subscriber index, as a real core's unused
     * slots do.
     */
    static constexpr int kSlots = 8;

    std::vector<RsEntry> window;
    SlotRing order;
    SubscriberIndex subs;
    RecordingHooks hooks;

    ChainFixture()
    {
        order.reset(kSlots);
        for (int s = 0; s < 3; ++s)
            order.push_back(s);
        subs.reset(kSlots);
        window.resize(kSlots);
        for (int s = 0; s < 3; ++s) {
            RsEntry &e = window[static_cast<std::size_t>(s)];
            e.busy = true;
            e.slot = s;
            e.seq = static_cast<std::uint64_t>(s + 1);
            e.executed = true;
            e.issued = true;
        }
        RsEntry &p = window[0];
        p.predicted = true;
        p.outValue = 111;
        p.outDeps.set(0);

        RsEntry &c1 = window[1];
        c1.src[0].state = OperandState::Predicted;
        c1.src[0].tag = 0;
        c1.src[0].value = 42; // stale predicted value
        c1.src[0].deps.set(0);
        c1.outDeps.set(0);

        RsEntry &c2 = window[2];
        c2.src[0].state = OperandState::Speculative;
        c2.src[0].tag = 1;
        c2.src[0].deps.set(0);
        c2.outDeps.set(0);
    }

    WindowRef ref() { return {window, order}; }

    /** Sparse view: subscribe every entry's current masks first. */
    WindowRef
    sparseRef()
    {
        for (const RsEntry &e : window)
            subs.noteEntry(e);
        return {window, order, &subs};
    }
};

// =====================================================================
// verification (§3.2)
// =====================================================================

TEST(VerifyPolicyTest, PredicateTable)
{
    const auto flat = makeVerifyPolicy(VerifyScheme::Flattened);
    const auto hier = makeVerifyPolicy(VerifyScheme::Hierarchical);
    const auto ret = makeVerifyPolicy(VerifyScheme::RetirementBased);
    const auto hyb = makeVerifyPolicy(VerifyScheme::Hybrid);

    EXPECT_STREQ(flat->name(), "flattened");
    EXPECT_FALSE(flat->hierarchical());
    EXPECT_TRUE(flat->propagatesOnEvent());
    EXPECT_FALSE(flat->sweepsAtRetire());
    EXPECT_FALSE(flat->residueGuardAtRetire());

    EXPECT_STREQ(hier->name(), "hierarchical");
    EXPECT_TRUE(hier->hierarchical());
    EXPECT_TRUE(hier->propagatesOnEvent());
    EXPECT_FALSE(hier->sweepsAtRetire());
    EXPECT_TRUE(hier->residueGuardAtRetire());

    EXPECT_STREQ(ret->name(), "retirement");
    EXPECT_FALSE(ret->hierarchical());
    EXPECT_FALSE(ret->propagatesOnEvent());
    EXPECT_TRUE(ret->sweepsAtRetire());
    EXPECT_FALSE(ret->residueGuardAtRetire());

    EXPECT_STREQ(hyb->name(), "hybrid");
    EXPECT_TRUE(hyb->hierarchical());
    EXPECT_TRUE(hyb->propagatesOnEvent());
    EXPECT_TRUE(hyb->sweepsAtRetire());
    // Hybrid's retirement sweep clears residue; no guard needed.
    EXPECT_FALSE(hyb->residueGuardAtRetire());
}

TEST(VerifyPolicyTest, FlattenedValidatesAllInOneEvent)
{
    ChainFixture f;
    const auto policy = makeVerifyPolicy(VerifyScheme::Flattened);
    const bool more = policy->apply(f.ref(), f.window[0], 10, f.hooks);

    EXPECT_FALSE(more);
    // Both consumers' operands lose the bit and turn Valid at once.
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[1].src[0].validAt, 10u);
    EXPECT_TRUE(f.window[1].src[0].validViaEvent);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Valid);
    EXPECT_TRUE(f.window[1].outDeps.none());
    EXPECT_TRUE(f.window[2].outDeps.none());
    EXPECT_EQ(f.hooks.wakeups, (std::vector<int>{1, 2}));
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1, 2}));
    EXPECT_TRUE(f.hooks.nullified.empty());
    EXPECT_TRUE(f.hooks.invalidated.empty());
}

TEST(VerifyPolicyTest, HierarchicalAdvancesOneLevelPerEvent)
{
    ChainFixture f;
    const auto policy = makeVerifyPolicy(VerifyScheme::Hierarchical);

    // Step 1: only the direct consumer's input cleanses; its output
    // (and the indirect consumer) wait for the next wave step.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 10, f.hooks));
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_FALSE(f.window[1].outDeps.none());
    EXPECT_EQ(f.hooks.wakeups, (std::vector<int>{1}));

    // Step 2: the direct consumer's output cleanses; the indirect
    // consumer's input sees it only at step 3.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 11, f.hooks));
    EXPECT_TRUE(f.window[1].outDeps.none());
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1}));
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);

    // Step 3: the wave reaches the indirect consumer's input; its
    // output cleanses one step after its inputs, i.e. at step 4.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 12, f.hooks));
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[2].src[0].validAt, 12u);
    EXPECT_FALSE(f.window[2].outDeps.none());

    // Step 4: nothing remains.
    EXPECT_FALSE(policy->apply(f.ref(), f.window[0], 13, f.hooks));
    EXPECT_TRUE(f.window[2].outDeps.none());
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1, 2}));
}

TEST(VerifyPolicyTest, RetirementSweepValidatesEverything)
{
    ChainFixture f;
    const auto policy = makeVerifyPolicy(VerifyScheme::RetirementBased);
    policy->applyRetire(f.ref(), f.window[0], 20, f.hooks);

    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Valid);
    EXPECT_TRUE(f.window[1].outDeps.none());
    EXPECT_TRUE(f.window[2].outDeps.none());
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1, 2}));
}

TEST(VerifyPolicyTest, SweepLeavesUnrelatedBitsAlone)
{
    ChainFixture f;
    // The indirect consumer also depends on some other prediction.
    f.window[2].src[0].deps.set(5);
    f.window[2].outDeps.set(5);

    const auto policy = makeVerifyPolicy(VerifyScheme::Flattened);
    policy->apply(f.ref(), f.window[0], 10, f.hooks);

    // Bit 0 cleared, bit 5 kept: still speculative, no wakeup raised
    // beyond the direct consumer, output not yet valid.
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_TRUE(f.window[2].src[0].deps.test(5));
    EXPECT_FALSE(f.window[2].src[0].deps.test(0));
    EXPECT_TRUE(f.window[2].outDeps.test(5));
    EXPECT_EQ(f.hooks.wakeups, (std::vector<int>{1}));
    EXPECT_EQ(f.hooks.outputValid, (std::vector<int>{1}));
}

// =====================================================================
// invalidation (§3.1)
// =====================================================================

TEST(InvalPolicyTest, PredicateTable)
{
    const auto flat = makeInvalPolicy(InvalScheme::Flattened);
    const auto hier = makeInvalPolicy(InvalScheme::Hierarchical);
    const auto comp = makeInvalPolicy(InvalScheme::Complete);

    EXPECT_STREQ(flat->name(), "flattened");
    EXPECT_FALSE(flat->hierarchical());
    EXPECT_FALSE(flat->complete());
    EXPECT_FALSE(flat->residueGuardAtRetire());

    EXPECT_STREQ(hier->name(), "hierarchical");
    EXPECT_TRUE(hier->hierarchical());
    EXPECT_FALSE(hier->complete());
    EXPECT_TRUE(hier->residueGuardAtRetire());

    EXPECT_STREQ(comp->name(), "complete");
    EXPECT_FALSE(comp->hierarchical());
    EXPECT_TRUE(comp->complete());
    EXPECT_FALSE(comp->residueGuardAtRetire());
}

TEST(InvalPolicyTest, FlattenedCorrectsDirectResetsIndirect)
{
    ChainFixture f;
    const auto policy = makeInvalPolicy(InvalScheme::Flattened);
    const bool more = policy->apply(f.ref(), f.window[0], 10, f.hooks);

    EXPECT_FALSE(more);
    // Direct consumer rides the corrected value off the broadcast.
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[1].src[0].value, 111u);
    EXPECT_EQ(f.window[1].src[0].readyAt, 10u);
    // Indirect consumer re-captures from its producer's re-broadcast.
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Invalid);
    EXPECT_TRUE(f.window[2].src[0].deps.none());
    EXPECT_EQ(f.hooks.invalidated,
              (std::vector<std::pair<int, int>>{{2, 0}}));
    // Both consumed a wrong value while issued: wakeup nullification.
    EXPECT_EQ(f.hooks.nullified, (std::vector<int>{1, 2}));
    EXPECT_TRUE(f.hooks.squashed.empty());
}

TEST(InvalPolicyTest, HierarchicalWaveReactsLevelByLevel)
{
    ChainFixture f;
    const auto policy = makeInvalPolicy(InvalScheme::Hierarchical);

    // Step 1: direct consumer corrected; the indirect consumer's
    // producer still carried the bit at the start of the step, so it
    // must wait for a later level.
    ASSERT_TRUE(policy->apply(f.ref(), f.window[0], 10, f.hooks));
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Valid);
    EXPECT_EQ(f.window[1].src[0].value, 111u);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_EQ(f.hooks.nullified, (std::vector<int>{1}));

    // The nullification resets the direct consumer's execution state,
    // as OooCore::nullify does.
    f.window[1].executed = false;
    f.window[1].issued = false;
    f.window[1].outDeps.reset();

    // Step 2: the indirect consumer sees its producer was nullified
    // and resets to wait on the re-broadcast.
    EXPECT_FALSE(policy->apply(f.ref(), f.window[0], 11, f.hooks));
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Invalid);
    EXPECT_EQ(f.hooks.invalidated,
              (std::vector<std::pair<int, int>>{{2, 0}}));
    EXPECT_EQ(f.hooks.nullified, (std::vector<int>{1, 2}));
}

TEST(InvalPolicyTest, CompleteRaisesSquashOnly)
{
    ChainFixture f;
    const auto policy = makeInvalPolicy(InvalScheme::Complete);
    EXPECT_FALSE(policy->apply(f.ref(), f.window[0], 10, f.hooks));

    // Complete invalidation delegates wholesale to the squash path;
    // the sweep itself must not touch any consumer state.
    EXPECT_EQ(f.hooks.squashed, (std::vector<int>{0}));
    EXPECT_EQ(f.window[1].src[0].state, OperandState::Predicted);
    EXPECT_EQ(f.window[2].src[0].state, OperandState::Speculative);
    EXPECT_TRUE(f.hooks.nullified.empty());
    EXPECT_TRUE(f.hooks.wakeups.empty());
    EXPECT_TRUE(f.hooks.invalidated.empty());
}

// =====================================================================
// word-parallel mask operations
// =====================================================================

TEST(MaskOpsTest, TestAndClear)
{
    SpecMask m;
    m.set(3);
    m.set(200);
    EXPECT_TRUE(mask::testAndClear(m, 3));
    EXPECT_FALSE(m.test(3));
    EXPECT_FALSE(mask::testAndClear(m, 3));
    EXPECT_TRUE(m.test(200)); // untouched
    EXPECT_FALSE(mask::testAndClear(m, 0));
}

TEST(MaskOpsTest, AnyIntersect)
{
    SpecMask a, b;
    a.set(7);
    a.set(130);
    b.set(8);
    EXPECT_FALSE(mask::anyIntersect(a, b));
    b.set(130);
    EXPECT_TRUE(mask::anyIntersect(a, b));
    EXPECT_FALSE(mask::anyIntersect(a, SpecMask{}));
}

TEST(MaskOpsTest, ForEachSetBitAscendingAcrossWords)
{
    SpecMask m;
    // Bits in four different 64-bit words, including both ends.
    for (int b : {0, 5, 63, 64, 127, 128, 255})
        m.set(static_cast<std::size_t>(b));
    std::vector<int> seen;
    mask::forEachSetBit(m, [&](int b) { seen.push_back(b); });
    EXPECT_EQ(seen, (std::vector<int>{0, 5, 63, 64, 127, 128, 255}));

    seen.clear();
    mask::forEachSetBit(SpecMask{}, [&](int b) { seen.push_back(b); });
    EXPECT_TRUE(seen.empty());
}

TEST(MaskOpsTest, FindFirst)
{
    EXPECT_EQ(mask::findFirst(SpecMask{}), -1);
    SpecMask m;
    m.set(255);
    EXPECT_EQ(mask::findFirst(m), 255);
    m.set(64);
    EXPECT_EQ(mask::findFirst(m), 64);
    m.set(0);
    EXPECT_EQ(mask::findFirst(m), 0);
}

// =====================================================================
// SlotRing (contiguous circular window/lsq order)
// =====================================================================

TEST(SlotRingTest, FifoOrder)
{
    SlotRing r;
    r.reset(4);
    EXPECT_TRUE(r.empty());
    for (int v : {10, 11, 12})
        r.push_back(v);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.front(), 10);
    EXPECT_EQ(r.back(), 12);
    EXPECT_EQ(r[1], 11);
    r.pop_front();
    EXPECT_EQ(r.front(), 11);
    EXPECT_EQ(r.size(), 2u);
}

TEST(SlotRingTest, WrapAroundKeepsIndexingConsistent)
{
    SlotRing r;
    r.reset(4); // power of two: storage wraps at 4
    for (int v = 0; v < 4; ++v)
        r.push_back(v);
    // Slide the ring far past its capacity; logical order must hold.
    for (int v = 4; v < 40; ++v) {
        r.pop_front();
        r.push_back(v);
        ASSERT_EQ(r.size(), 4u);
        for (std::size_t i = 0; i < 4; ++i)
            ASSERT_EQ(r[i], v - 3 + static_cast<int>(i))
                << "after pushing " << v;
    }
}

TEST(SlotRingTest, PopBackDropsYoungestSuffix)
{
    // The squash path pops the youngest entries one by one.
    SlotRing r;
    r.reset(8);
    for (int v = 0; v < 6; ++v)
        r.push_back(v);
    r.pop_back();
    r.pop_back();
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.back(), 3);
    r.push_back(99); // reuse the vacated storage
    EXPECT_EQ(r.back(), 99);
    EXPECT_EQ(r.front(), 0);
}

TEST(SlotRingTest, IterationMatchesIndexing)
{
    SlotRing r;
    r.reset(4);
    for (int v = 0; v < 4; ++v)
        r.push_back(v);
    r.pop_front();
    r.pop_front();
    r.push_back(4);
    r.push_back(5); // head is now wrapped
    std::vector<int> via_iter(r.begin(), r.end());
    std::vector<int> via_index;
    for (std::size_t i = 0; i < r.size(); ++i)
        via_index.push_back(r[i]);
    EXPECT_EQ(via_iter, (std::vector<int>{2, 3, 4, 5}));
    EXPECT_EQ(via_iter, via_index);
}

TEST(SlotRingTest, CapacityRoundsUpToPowerOfTwo)
{
    SlotRing r;
    r.reset(3); // rounds to 4
    for (int v = 0; v < 3; ++v)
        r.push_back(v);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.front(), 0);
    EXPECT_EQ(r.back(), 2);
}

// =====================================================================
// subscriber lists
// =====================================================================

TEST(SubscriberIndexTest, CollectReturnsSeqSortedCarriers)
{
    ChainFixture f;
    // Subscribe in reverse program order; collect must sort by seq.
    for (int s = 2; s >= 0; --s)
        f.subs.noteEntry(f.window[static_cast<std::size_t>(s)]);
    const std::vector<int> &domain = f.subs.collect(0, f.window);
    EXPECT_EQ(domain, (std::vector<int>{0, 1, 2}));
    EXPECT_TRUE(f.subs.checkInvariants(f.window));
}

TEST(SubscriberIndexTest, DuplicateNotesSubscribeOnce)
{
    ChainFixture f;
    for (int round = 0; round < 3; ++round)
        for (const RsEntry &e : f.window)
            f.subs.noteEntry(e);
    EXPECT_EQ(f.subs.collect(0, f.window).size(), 3u);
    EXPECT_TRUE(f.subs.checkInvariants(f.window));
}

TEST(SubscriberIndexTest, CollectPrunesStaleSubscriptions)
{
    ChainFixture f;
    for (const RsEntry &e : f.window)
        f.subs.noteEntry(e);
    // The indirect consumer loses the bit (as a verify sweep would
    // clear it) and the producer's slot is freed.
    f.window[2].src[0].deps.reset(0);
    f.window[2].outDeps.reset(0);
    f.window[0].busy = false;
    const std::vector<int> &domain = f.subs.collect(0, f.window);
    EXPECT_EQ(domain, (std::vector<int>{1}));
    // Pruning unsubscribed the dropped slots, keeping the bijection.
    EXPECT_FALSE(f.subs.isSubscribed(2, 0));
    EXPECT_FALSE(f.subs.isSubscribed(0, 0));
    EXPECT_TRUE(f.subs.isSubscribed(1, 0));
    EXPECT_TRUE(f.subs.checkInvariants(f.window));
}

TEST(SubscriberIndexTest, AnyOtherCarrierExcludesSelf)
{
    ChainFixture f;
    for (const RsEntry &e : f.window)
        f.subs.noteEntry(e);
    EXPECT_TRUE(f.subs.anyOtherCarrier(0, f.window, 0));
    // Only the producer itself still carries the bit: no residue.
    f.window[1].src[0].deps.reset(0);
    f.window[1].outDeps.reset(0);
    f.window[2].src[0].deps.reset(0);
    f.window[2].outDeps.reset(0);
    EXPECT_FALSE(f.subs.anyOtherCarrier(0, f.window, 0));
    EXPECT_TRUE(f.subs.checkInvariants(f.window));
}

TEST(SubscriberIndexTest, CarriesTestsAllFourMasks)
{
    RsEntry e;
    e.slot = 0;
    EXPECT_FALSE(SubscriberIndex::carries(e, 7));
    e.src[0].deps.set(7);
    EXPECT_TRUE(SubscriberIndex::carries(e, 7));
    e.src[0].deps.reset(7);
    e.src[1].deps.set(7);
    EXPECT_TRUE(SubscriberIndex::carries(e, 7));
    e.src[1].deps.reset(7);
    e.outDeps.set(7);
    EXPECT_TRUE(SubscriberIndex::carries(e, 7));
    e.outDeps.reset(7);
    e.memDeps.set(7);
    EXPECT_TRUE(SubscriberIndex::carries(e, 7));
}

TEST(SubscriberIndexTest, InvariantCheckerCatchesMissedNote)
{
    ChainFixture f;
    // Busy entries carry bit 0 but nothing was noted: invariant (B).
    std::string why;
    EXPECT_FALSE(f.subs.checkInvariants(f.window, &why));
    EXPECT_NE(why.find("without a subscription"), std::string::npos);
    for (const RsEntry &e : f.window)
        f.subs.noteEntry(e);
    EXPECT_TRUE(f.subs.checkInvariants(f.window, &why)) << why;
}

// =====================================================================
// sparse sweeps reproduce the dense sweeps exactly
// =====================================================================

/** Window state + hook trace must match field for field. */
void
expectSameOutcome(const ChainFixture &dense, const ChainFixture &sparse)
{
    for (std::size_t s = 0; s < dense.window.size(); ++s) {
        SCOPED_TRACE("slot " + std::to_string(s));
        const RsEntry &d = dense.window[s];
        const RsEntry &sp = sparse.window[s];
        EXPECT_EQ(d.executed, sp.executed);
        EXPECT_EQ(d.issued, sp.issued);
        EXPECT_EQ(d.outDeps, sp.outDeps);
        EXPECT_EQ(d.memDeps, sp.memDeps);
        EXPECT_EQ(d.verifiedAt, sp.verifiedAt);
        for (int i = 0; i < 2; ++i) {
            SCOPED_TRACE("operand " + std::to_string(i));
            EXPECT_EQ(d.src[i].state, sp.src[i].state);
            EXPECT_EQ(d.src[i].deps, sp.src[i].deps);
            EXPECT_EQ(d.src[i].value, sp.src[i].value);
            EXPECT_EQ(d.src[i].readyAt, sp.src[i].readyAt);
            EXPECT_EQ(d.src[i].validAt, sp.src[i].validAt);
            EXPECT_EQ(d.src[i].validViaEvent, sp.src[i].validViaEvent);
        }
    }
    EXPECT_EQ(dense.hooks.outputValid, sparse.hooks.outputValid);
    EXPECT_EQ(dense.hooks.nullified, sparse.hooks.nullified);
    EXPECT_EQ(dense.hooks.squashed, sparse.hooks.squashed);
    EXPECT_EQ(dense.hooks.wakeups, sparse.hooks.wakeups);
    EXPECT_EQ(dense.hooks.invalidated, sparse.hooks.invalidated);
}

TEST(SparseSweepTest, VerifySchemesMatchDense)
{
    for (int v = 0; v < 4; ++v) {
        SCOPED_TRACE("verify scheme " + std::to_string(v));
        const auto policy =
            makeVerifyPolicy(static_cast<VerifyScheme>(v));
        ChainFixture dense, sparse;
        // Extra cross-bit dependence to exercise partial clears.
        dense.window[2].src[0].deps.set(5);
        dense.window[2].outDeps.set(5);
        sparse.window[2].src[0].deps.set(5);
        sparse.window[2].outDeps.set(5);

        std::uint64_t cycle = 10;
        bool more_d = true, more_s = true;
        while (more_d || more_s) {
            more_d = policy->apply(dense.ref(), dense.window[0], cycle,
                                   dense.hooks);
            more_s = policy->apply(sparse.sparseRef(), sparse.window[0],
                                   cycle, sparse.hooks);
            ASSERT_EQ(more_d, more_s);
            ++cycle;
        }
        if (policy->sweepsAtRetire()) {
            policy->applyRetire(dense.ref(), dense.window[0], cycle,
                                dense.hooks);
            policy->applyRetire(sparse.sparseRef(), sparse.window[0],
                                cycle, sparse.hooks);
        }
        expectSameOutcome(dense, sparse);
        EXPECT_TRUE(sparse.subs.checkInvariants(sparse.window));
    }
}

TEST(SparseSweepTest, InvalSchemesMatchDense)
{
    for (int in = 0; in < 3; ++in) {
        SCOPED_TRACE("inval scheme " + std::to_string(in));
        const auto policy = makeInvalPolicy(static_cast<InvalScheme>(in));
        ChainFixture dense, sparse;

        std::uint64_t cycle = 10;
        bool more_d = true, more_s = true;
        while (more_d || more_s) {
            more_d = policy->apply(dense.ref(), dense.window[0], cycle,
                                   dense.hooks);
            more_s = policy->apply(sparse.sparseRef(), sparse.window[0],
                                   cycle, sparse.hooks);
            ASSERT_EQ(more_d, more_s);
            // Mirror the core's nullification side effects on both
            // fixtures between wave steps, as the hierarchical dense
            // test does.
            for (ChainFixture *f : {&dense, &sparse}) {
                for (int slot : f->hooks.nullified) {
                    RsEntry &e = f->window[static_cast<std::size_t>(slot)];
                    e.executed = false;
                    e.issued = false;
                    e.outDeps.reset();
                }
            }
            ++cycle;
        }
        expectSameOutcome(dense, sparse);
        EXPECT_TRUE(sparse.subs.checkInvariants(sparse.window));
    }
}

TEST(SparseSweepTest, MemDepsClearedForSubscribedLoads)
{
    // A load that carries the prediction only through the LSQ
    // (memDeps) must still be visited by the sparse verify sweep.
    ChainFixture dense, sparse;
    for (ChainFixture *f : {&dense, &sparse}) {
        f->window[2].src[0].state = OperandState::Valid;
        f->window[2].src[0].deps.reset();
        f->window[2].outDeps.reset();
        f->window[2].memDeps.set(0);
    }
    const auto policy = makeVerifyPolicy(VerifyScheme::Flattened);
    policy->apply(dense.ref(), dense.window[0], 10, dense.hooks);
    policy->apply(sparse.sparseRef(), sparse.window[0], 10,
                  sparse.hooks);
    EXPECT_TRUE(sparse.window[2].memDeps.none());
    expectSameOutcome(dense, sparse);
}

// =====================================================================
// factory
// =====================================================================

TEST(PolicySetTest, FactoryBindsModelVariables)
{
    SpecModel m = SpecModel::greatModel();
    m.verifyScheme = VerifyScheme::Hybrid;
    m.invalScheme = InvalScheme::Complete;
    m.selectPolicy = SelectPolicy::OldestFirst;

    const PolicySet p = makePolicies(m);
    EXPECT_STREQ(p.verify->name(), "hybrid");
    EXPECT_STREQ(p.invalidate->name(), "complete");
    EXPECT_STREQ(p.select->name(), "oldest-first");
}

} // namespace
