/**
 * @file
 * Unit tests for the architectural layer: per-instruction semantics of
 * evaluate(), the functional core on small programs, program loading,
 * and the pre-execution trace.
 */

#include <gtest/gtest.h>

#include "vsim/arch/exec.hh"
#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"

namespace
{

using namespace vsim;
using arch::ExecOut;
using arch::FunctionalCore;
using arch::evaluate;
using isa::Inst;
using isa::Op;

Inst
makeInst(Op op, int ra, int rb, int rc, int imm)
{
    Inst inst;
    inst.op = op;
    inst.ra = static_cast<std::uint8_t>(ra);
    inst.rb = static_cast<std::uint8_t>(rb);
    inst.rc = static_cast<std::uint8_t>(rc);
    inst.imm = imm;
    return inst;
}

// ---- evaluate(): ALU semantics ---------------------------------------

struct AluCase
{
    Op op;
    std::uint64_t a, b;
    std::uint64_t expect;
};

class AluSemantics : public ::testing::TestWithParam<AluCase>
{
};

TEST_P(AluSemantics, RTypeResult)
{
    const AluCase &c = GetParam();
    const Inst inst = makeInst(c.op, 1, 2, 3, 0);
    // ra_val unused for R-type ALU; rb_val = a, rc_val = b.
    const ExecOut out = evaluate(inst, 0x1000, 0, c.a, c.b);
    EXPECT_EQ(out.value, c.expect);
}

INSTANTIATE_TEST_SUITE_P(
    Ops, AluSemantics,
    ::testing::Values(
        AluCase{Op::ADD, 5, 7, 12},
        AluCase{Op::ADD, ~0ull, 1, 0}, // wraparound
        AluCase{Op::SUB, 5, 7, static_cast<std::uint64_t>(-2)},
        AluCase{Op::AND, 0xf0f0, 0xff00, 0xf000},
        AluCase{Op::OR, 0xf0f0, 0x0f0f, 0xffff},
        AluCase{Op::XOR, 0xff, 0x0f, 0xf0},
        AluCase{Op::SLL, 1, 63, 1ull << 63},
        AluCase{Op::SRL, 1ull << 63, 63, 1},
        AluCase{Op::SRA, static_cast<std::uint64_t>(-16), 2,
                static_cast<std::uint64_t>(-4)},
        AluCase{Op::SLT, static_cast<std::uint64_t>(-1), 0, 1},
        AluCase{Op::SLTU, static_cast<std::uint64_t>(-1), 0, 0},
        AluCase{Op::MUL, 7, 6, 42},
        AluCase{Op::MULH, 1ull << 62, 4, 1},
        AluCase{Op::DIV, static_cast<std::uint64_t>(-12), 4,
                static_cast<std::uint64_t>(-3)},
        AluCase{Op::DIV, 5, 0, ~0ull},                 // div by zero
        AluCase{Op::DIVU, ~0ull, 2, 0x7fffffffffffffff},
        AluCase{Op::REM, static_cast<std::uint64_t>(-13), 4,
                static_cast<std::uint64_t>(-1)},
        AluCase{Op::REM, 13, 0, 13},                   // rem by zero
        AluCase{Op::REMU, 13, 5, 3}));

TEST(Evaluate, ImmediateForms)
{
    EXPECT_EQ(evaluate(makeInst(Op::ADDI, 1, 2, 0, -5), 0, 0, 10, 0)
                  .value,
              5u);
    EXPECT_EQ(evaluate(makeInst(Op::ANDI, 1, 2, 0, 0xf), 0, 0, 0x1234, 0)
                  .value,
              4u);
    EXPECT_EQ(evaluate(makeInst(Op::SLLI, 1, 2, 0, 4), 0, 0, 3, 0).value,
              48u);
    EXPECT_EQ(
        evaluate(makeInst(Op::SRAI, 1, 2, 0, 1), 0, 0,
                 static_cast<std::uint64_t>(-2), 0)
            .value,
        static_cast<std::uint64_t>(-1));
    EXPECT_EQ(evaluate(makeInst(Op::SLTI, 1, 2, 0, 0), 0, 0,
                       static_cast<std::uint64_t>(-3), 0)
                  .value,
              1u);
}

TEST(Evaluate, LuiAuipc)
{
    EXPECT_EQ(evaluate(makeInst(Op::LUI, 1, 0, 0, 5), 0x40, 0, 0, 0)
                  .value,
              5u << 12);
    EXPECT_EQ(evaluate(makeInst(Op::LUI, 1, 0, 0, -1), 0x40, 0, 0, 0)
                  .value,
              static_cast<std::uint64_t>(-4096));
    EXPECT_EQ(evaluate(makeInst(Op::AUIPC, 1, 0, 0, 1), 0x40, 0, 0, 0)
                  .value,
              0x1040u);
}

TEST(Evaluate, BranchDirections)
{
    auto taken = [](Op op, std::uint64_t a, std::uint64_t b) {
        return evaluate(makeInst(op, 1, 2, 0, 4), 0x100, a, b, 0).taken;
    };
    EXPECT_TRUE(taken(Op::BEQ, 3, 3));
    EXPECT_FALSE(taken(Op::BEQ, 3, 4));
    EXPECT_TRUE(taken(Op::BNE, 3, 4));
    EXPECT_TRUE(taken(Op::BLT, static_cast<std::uint64_t>(-1), 0));
    EXPECT_FALSE(taken(Op::BLTU, static_cast<std::uint64_t>(-1), 0));
    EXPECT_TRUE(taken(Op::BGE, 5, 5));
    EXPECT_TRUE(taken(Op::BGEU, static_cast<std::uint64_t>(-1), 5));
}

TEST(Evaluate, BranchTargets)
{
    const ExecOut t =
        evaluate(makeInst(Op::BEQ, 1, 2, 0, -3), 0x100, 7, 7, 0);
    EXPECT_TRUE(t.taken);
    EXPECT_EQ(t.nextPc, 0x100u - 12u);
    const ExecOut nt =
        evaluate(makeInst(Op::BEQ, 1, 2, 0, -3), 0x100, 7, 8, 0);
    EXPECT_FALSE(nt.taken);
    EXPECT_EQ(nt.nextPc, 0x104u);
}

TEST(Evaluate, JalAndJalr)
{
    const ExecOut jal =
        evaluate(makeInst(Op::JAL, 1, 0, 0, 10), 0x200, 0, 0, 0);
    EXPECT_TRUE(jal.taken);
    EXPECT_EQ(jal.value, 0x204u);
    EXPECT_EQ(jal.nextPc, 0x228u);

    const ExecOut jalr =
        evaluate(makeInst(Op::JALR, 1, 5, 0, 4), 0x200, 0, 0x301, 0);
    EXPECT_EQ(jalr.value, 0x204u);
    EXPECT_EQ(jalr.nextPc, 0x304u); // (0x301 + 4) & ~1
}

TEST(Evaluate, MemAddressing)
{
    const ExecOut ld =
        evaluate(makeInst(Op::LD, 1, 5, 0, -8), 0, 0, 0x1008, 0);
    EXPECT_EQ(ld.memAddr, 0x1000u);
    const ExecOut sd =
        evaluate(makeInst(Op::SD, 7, 5, 0, 16), 0, 0xabcd, 0x1000, 0);
    EXPECT_EQ(sd.memAddr, 0x1010u);
    EXPECT_EQ(sd.storeData, 0xabcdu);
}

TEST(LoadExtend, SignAndZero)
{
    using arch::loadExtend;
    EXPECT_EQ(loadExtend(makeInst(Op::LB, 1, 2, 0, 0), 0x80),
              static_cast<std::uint64_t>(-128));
    EXPECT_EQ(loadExtend(makeInst(Op::LBU, 1, 2, 0, 0), 0x80), 0x80u);
    EXPECT_EQ(loadExtend(makeInst(Op::LH, 1, 2, 0, 0), 0x8000),
              static_cast<std::uint64_t>(-32768));
    EXPECT_EQ(loadExtend(makeInst(Op::LHU, 1, 2, 0, 0), 0x8000), 0x8000u);
    EXPECT_EQ(loadExtend(makeInst(Op::LW, 1, 2, 0, 0), 0x80000000u),
              0xffffffff80000000ull);
    EXPECT_EQ(loadExtend(makeInst(Op::LWU, 1, 2, 0, 0), 0x80000000u),
              0x80000000ull);
}

// ---- functional core on whole programs --------------------------------

FunctionalCore
runProgram(const std::string &src)
{
    FunctionalCore core(assembler::assemble(src));
    core.run(1'000'000);
    return core;
}

TEST(Functional, SumLoop)
{
    FunctionalCore core = runProgram(R"(
        li a0, 0
        li a1, 1
        li a2, 101
    loop:
        add a0, a0, a1
        addi a1, a1, 1
        bne a1, a2, loop
        halt a0
    )");
    EXPECT_EQ(core.state().exitCode, 5050u);
}

TEST(Functional, MemoryStoreLoadRoundTrip)
{
    FunctionalCore core = runProgram(R"(
        .data
    buf: .space 64
        .text
        la t0, buf
        li t1, 0x1234
        sd t1, 8(t0)
        ld a0, 8(t0)
        halt a0
    )");
    EXPECT_EQ(core.state().exitCode, 0x1234u);
}

TEST(Functional, ByteHalfWordAccess)
{
    FunctionalCore core = runProgram(R"(
        .data
    buf: .space 16
        .text
        la t0, buf
        li t1, -1
        sb t1, 0(t0)
        lbu a0, 0(t0)    # 255
        lb a1, 0(t0)     # -1
        add a0, a0, a1   # 254
        li t2, 0x7fff
        sh t2, 4(t0)
        lhu a2, 4(t0)
        add a0, a0, a2   # 254 + 32767
        halt a0
    )");
    EXPECT_EQ(core.state().exitCode, 254u + 32767u);
}

TEST(Functional, RecursiveFactorialViaStack)
{
    FunctionalCore core = runProgram(R"(
        li a0, 10
        call fact
        halt a0
    fact:
        li t0, 2
        blt a0, t0, base
        addi sp, sp, -16
        sd ra, 0(sp)
        sd a0, 8(sp)
        addi a0, a0, -1
        call fact
        ld t1, 8(sp)
        mul a0, a0, t1
        ld ra, 0(sp)
        addi sp, sp, 16
        ret
    base:
        li a0, 1
        ret
    )");
    EXPECT_EQ(core.state().exitCode, 3628800u);
}

TEST(Functional, OutputSyscalls)
{
    FunctionalCore core = runProgram(R"(
        li a0, 'o'
        putc a0
        li a0, 'k'
        putc a0
        li a0, 42
        puti a0
        li a0, '\n'
        putc a0
        halt
    )");
    EXPECT_EQ(core.state().output, "ok42\n");
    EXPECT_EQ(core.state().exitCode, 0u);
}

TEST(Functional, RunLimitThrows)
{
    FunctionalCore core(assembler::assemble("spin: j spin\n"));
    EXPECT_THROW(core.run(1000), FatalError);
}

TEST(Functional, X0StaysZero)
{
    FunctionalCore core = runProgram(R"(
        li t0, 99
        add zero, t0, t0
        add a0, zero, zero
        halt a0
    )");
    EXPECT_EQ(core.state().exitCode, 0u);
}

TEST(Loader, PlacesTextDataAndStack)
{
    auto prog = assembler::assemble(R"(
        .data
    x:  .dword 7
        .text
        nop
        halt
    )");
    arch::ArchState st = arch::loadProgram(prog);
    EXPECT_EQ(st.pc, prog.textBase);
    EXPECT_EQ(st.reg(2), prog.stackTop);
    EXPECT_EQ(st.mem.read(prog.textBase, 4), prog.text[0]);
    EXPECT_EQ(st.mem.read(prog.dataBase, 8), 7u);
}

TEST(Trace, RecordsEveryDynamicInstruction)
{
    auto prog = assembler::assemble(R"(
        li a0, 3      # addi
    loop:
        addi a0, a0, -1
        bnez a0, loop
        halt a0
    )");
    arch::ExecTrace trace = arch::preExecute(prog);
    // 1 li + 3*(addi+bnez) + halt = 8 dynamic instructions.
    ASSERT_EQ(trace.entries.size(), 8u);
    EXPECT_EQ(trace.exitCode, 0u);
    // First entry: li a0, 3 writing 3.
    EXPECT_EQ(trace.entries[0].value, 3u);
    // Taken bnez entries jump backwards.
    EXPECT_LT(trace.entries[2].nextPc, trace.entries[2].pc);
    // Final entry is the halt.
    EXPECT_EQ(trace.entries.back().inst.op, Op::HALT);
}

TEST(Trace, PreExecuteDoesNotDisturbProgramMemory)
{
    auto prog = assembler::assemble(R"(
        .data
    x:  .dword 5
        .text
        la t0, x
        ld a0, 0(t0)
        addi a0, a0, 1
        sd a0, 0(t0)
        halt a0
    )");
    arch::ExecTrace t1 = arch::preExecute(prog);
    arch::ExecTrace t2 = arch::preExecute(prog);
    EXPECT_EQ(t1.exitCode, 6u);
    EXPECT_EQ(t2.exitCode, 6u) << "second pre-execution saw dirty memory";
}

} // namespace
