#include "isa.hh"

#include <array>
#include <cctype>

#include "vsim/base/logging.hh"

namespace vsim::isa
{

namespace
{

using enum Format;
using enum ExecClass;

// name, fmt, cls, writesReg, readsRb, readsRc, readsRa
constexpr std::array<OpInfo, kNumOps> kOpTable = {{
    {"add",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"sub",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"and",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"or",    F_RRR,  IntAlu, true,  true,  true,  false},
    {"xor",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"sll",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"srl",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"sra",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"slt",   F_RRR,  IntAlu, true,  true,  true,  false},
    {"sltu",  F_RRR,  IntAlu, true,  true,  true,  false},
    {"mul",   F_RRR,  IntMul, true,  true,  true,  false},
    {"mulh",  F_RRR,  IntMul, true,  true,  true,  false},
    {"div",   F_RRR,  IntDiv, true,  true,  true,  false},
    {"divu",  F_RRR,  IntDiv, true,  true,  true,  false},
    {"rem",   F_RRR,  IntDiv, true,  true,  true,  false},
    {"remu",  F_RRR,  IntDiv, true,  true,  true,  false},
    {"addi",  F_RRI,  IntAlu, true,  true,  false, false},
    {"andi",  F_RRI,  IntAlu, true,  true,  false, false},
    {"ori",   F_RRI,  IntAlu, true,  true,  false, false},
    {"xori",  F_RRI,  IntAlu, true,  true,  false, false},
    {"slli",  F_RRI,  IntAlu, true,  true,  false, false},
    {"srli",  F_RRI,  IntAlu, true,  true,  false, false},
    {"srai",  F_RRI,  IntAlu, true,  true,  false, false},
    {"slti",  F_RRI,  IntAlu, true,  true,  false, false},
    {"sltiu", F_RRI,  IntAlu, true,  true,  false, false},
    {"lui",   F_RI20, IntAlu, true,  false, false, false},
    {"auipc", F_RI20, IntAlu, true,  false, false, false},
    {"beq",   F_RRI,  Branch, false, true,  false, true},
    {"bne",   F_RRI,  Branch, false, true,  false, true},
    {"blt",   F_RRI,  Branch, false, true,  false, true},
    {"bge",   F_RRI,  Branch, false, true,  false, true},
    {"bltu",  F_RRI,  Branch, false, true,  false, true},
    {"bgeu",  F_RRI,  Branch, false, true,  false, true},
    {"jal",   F_RI20, Branch, true,  false, false, false},
    {"jalr",  F_RRI,  Branch, true,  true,  false, false},
    {"lb",    F_RRI,  Load,   true,  true,  false, false},
    {"lbu",   F_RRI,  Load,   true,  true,  false, false},
    {"lh",    F_RRI,  Load,   true,  true,  false, false},
    {"lhu",   F_RRI,  Load,   true,  true,  false, false},
    {"lw",    F_RRI,  Load,   true,  true,  false, false},
    {"lwu",   F_RRI,  Load,   true,  true,  false, false},
    {"ld",    F_RRI,  Load,   true,  true,  false, false},
    {"sb",    F_RRI,  Store,  false, true,  false, true},
    {"sh",    F_RRI,  Store,  false, true,  false, true},
    {"sw",    F_RRI,  Store,  false, true,  false, true},
    {"sd",    F_RRI,  Store,  false, true,  false, true},
    {"halt",  F_RRI,  System, false, false, false, true},
    {"putc",  F_RRI,  System, false, false, false, true},
    {"puti",  F_RRI,  System, false, false, false, true},
}};

constexpr const char *kAbiNames[kNumRegs] = {
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6",
};

std::int32_t
signExtend(std::uint32_t value, int bits)
{
    const std::uint32_t m = 1u << (bits - 1);
    value &= (1u << bits) - 1;
    return static_cast<std::int32_t>((value ^ m) - m);
}

} // namespace

const OpInfo &
opInfo(Op op)
{
    const auto idx = static_cast<std::size_t>(op);
    VSIM_ASSERT(idx < kOpTable.size(), "bad opcode ", idx);
    return kOpTable[idx];
}

int
Inst::memSize() const
{
    switch (op) {
      case Op::LB: case Op::LBU: case Op::SB: return 1;
      case Op::LH: case Op::LHU: case Op::SH: return 2;
      case Op::LW: case Op::LWU: case Op::SW: return 4;
      case Op::LD: case Op::SD: return 8;
      default: return 0;
    }
}

std::uint32_t
encode(const Inst &inst)
{
    const OpInfo &oi = inst.info();
    std::uint32_t word = static_cast<std::uint32_t>(inst.op) << 25;
    word |= (static_cast<std::uint32_t>(inst.ra) & 0x1f) << 20;
    switch (oi.fmt) {
      case Format::F_RRR:
        word |= (static_cast<std::uint32_t>(inst.rb) & 0x1f) << 15;
        word |= (static_cast<std::uint32_t>(inst.rc) & 0x1f) << 10;
        break;
      case Format::F_RRI:
        VSIM_ASSERT(inst.imm >= -(1 << 14) && inst.imm < (1 << 14),
                    "imm15 out of range: ", inst.imm);
        word |= (static_cast<std::uint32_t>(inst.rb) & 0x1f) << 15;
        word |= static_cast<std::uint32_t>(inst.imm) & 0x7fff;
        break;
      case Format::F_RI20:
        VSIM_ASSERT(inst.imm >= -(1 << 19) && inst.imm < (1 << 19),
                    "imm20 out of range: ", inst.imm);
        word |= static_cast<std::uint32_t>(inst.imm) & 0xfffff;
        break;
    }
    return word;
}

std::optional<Inst>
decode(std::uint32_t word)
{
    const std::uint32_t opfield = word >> 25;
    if (opfield >= static_cast<std::uint32_t>(kNumOps))
        return std::nullopt;

    Inst inst;
    inst.op = static_cast<Op>(opfield);
    inst.ra = (word >> 20) & 0x1f;
    const OpInfo &oi = inst.info();
    switch (oi.fmt) {
      case Format::F_RRR:
        inst.rb = (word >> 15) & 0x1f;
        inst.rc = (word >> 10) & 0x1f;
        break;
      case Format::F_RRI:
        inst.rb = (word >> 15) & 0x1f;
        inst.imm = signExtend(word & 0x7fff, 15);
        break;
      case Format::F_RI20:
        inst.imm = signExtend(word & 0xfffff, 20);
        break;
    }
    return inst;
}

std::string
disassemble(const Inst &inst)
{
    const OpInfo &oi = inst.info();
    std::string s = oi.name;
    auto reg = [](int r) { return std::string(regName(r)); };

    switch (inst.op) {
      case Op::HALT:
      case Op::PUTC:
      case Op::PUTI:
        return s + " " + reg(inst.ra);
      case Op::JAL:
        return s + " " + reg(inst.ra) + ", " + std::to_string(inst.imm);
      case Op::JALR:
        return s + " " + reg(inst.ra) + ", " + reg(inst.rb) + ", "
               + std::to_string(inst.imm);
      default:
        break;
    }

    if (inst.isMem()) {
        return s + " " + reg(inst.ra) + ", " + std::to_string(inst.imm)
               + "(" + reg(inst.rb) + ")";
    }
    if (inst.isCondBranch()) {
        return s + " " + reg(inst.ra) + ", " + reg(inst.rb) + ", "
               + std::to_string(inst.imm);
    }
    switch (oi.fmt) {
      case Format::F_RRR:
        return s + " " + reg(inst.ra) + ", " + reg(inst.rb) + ", "
               + reg(inst.rc);
      case Format::F_RRI:
        return s + " " + reg(inst.ra) + ", " + reg(inst.rb) + ", "
               + std::to_string(inst.imm);
      case Format::F_RI20:
        return s + " " + reg(inst.ra) + ", " + std::to_string(inst.imm);
    }
    VSIM_PANIC("unreachable");
}

const char *
regName(int reg)
{
    VSIM_ASSERT(reg >= 0 && reg < kNumRegs, "bad register ", reg);
    return kAbiNames[reg];
}

int
parseRegName(const std::string &name)
{
    if (name.size() >= 2 && name[0] == 'x') {
        int value = 0;
        for (std::size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                return -1;
            value = value * 10 + (name[i] - '0');
        }
        return value < kNumRegs ? value : -1;
    }
    for (int r = 0; r < kNumRegs; ++r) {
        if (name == kAbiNames[r])
            return r;
    }
    if (name == "fp") // alternate name for s0
        return 8;
    return -1;
}

} // namespace vsim::isa
