/**
 * @file
 * VRISC instruction-set definition.
 *
 * VRISC is the 64-bit RISC ISA this project uses in place of
 * SimpleScalar's PISA (see DESIGN.md §2). It has 32 integer registers
 * (x0 hardwired to zero), fixed 32-bit instruction words and three
 * encoding formats:
 *
 *   F_RRR : op[31:25] ra[24:20] rb[19:15] rc[14:10] -[9:0]
 *   F_RRI : op[31:25] ra[24:20] rb[19:15] imm15[14:0]   (signed)
 *   F_RI20: op[31:25] ra[24:20] imm20[19:0]             (signed)
 *
 * Branch and jump offsets are in units of instruction words relative
 * to the branch's own PC. Loads/stores use ra as the data register and
 * rb as the base register with a signed byte offset.
 */

#ifndef VSIM_ISA_ISA_HH
#define VSIM_ISA_ISA_HH

#include <cstdint>
#include <optional>
#include <string>

namespace vsim::isa
{

/** Number of architected integer registers; x0 reads as zero. */
constexpr int kNumRegs = 32;

/** All VRISC opcodes. */
enum class Op : std::uint8_t
{
    // R-type ALU (F_RRR): ra <- rb OP rc
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,
    MUL, MULH, DIV, DIVU, REM, REMU,
    // I-type ALU (F_RRI): ra <- rb OP imm
    ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU,
    // Upper-immediate (F_RI20)
    LUI,    // ra <- sext(imm20 << 12)
    AUIPC,  // ra <- PC + sext(imm20 << 12)
    // Control transfer
    BEQ, BNE, BLT, BGE, BLTU, BGEU, // F_RRI, offset in words
    JAL,   // F_RI20: ra <- PC+4; PC += imm*4
    JALR,  // F_RRI : ra <- PC+4; PC = (rb + imm) & ~1
    // Loads (F_RRI): ra <- mem[rb + imm]
    LB, LBU, LH, LHU, LW, LWU, LD,
    // Stores (F_RRI): mem[rb + imm] <- ra
    SB, SH, SW, SD,
    // System (F_RRI, rb/imm unused unless noted)
    HALT,  // stop the program; exit code = ra
    PUTC,  // append low byte of ra to the program's output stream
    PUTI,  // append decimal rendering of ra to the output stream
    NUM_OPS
};

constexpr int kNumOps = static_cast<int>(Op::NUM_OPS);

/** Encoding format of an opcode. */
enum class Format : std::uint8_t { F_RRR, F_RRI, F_RI20 };

/**
 * Execution class: selects the functional-unit latency (paper §5.1:
 * "all simple integer instructions require one cycle ... complex
 * integer operations require from 2 to 24 cycles").
 */
enum class ExecClass : std::uint8_t
{
    IntAlu,   //!< 1 cycle
    IntMul,   //!< 3 cycles
    IntDiv,   //!< 20 cycles
    Load,     //!< 1 cycle addr-gen + cache access
    Store,    //!< 1 cycle addr-gen; data written at commit
    Branch,   //!< 1 cycle
    System    //!< 1 cycle; side effects applied at commit
};

/** Static properties of an opcode. */
struct OpInfo
{
    const char *name;
    Format fmt;
    ExecClass cls;
    bool writesReg;  //!< has a destination register (ra)
    bool readsRb;    //!< reads rb as a source
    bool readsRc;    //!< reads rc as a source (R-type only)
    bool readsRa;    //!< reads ra as a source (stores, branches, sys)
};

/** Look up the static properties of @p op. */
const OpInfo &opInfo(Op op);

/** Decoded instruction. */
struct Inst
{
    Op op = Op::ADDI;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::uint8_t rc = 0;
    std::int32_t imm = 0;

    const OpInfo &info() const { return opInfo(op); }

    bool isLoad() const { return info().cls == ExecClass::Load; }
    bool isStore() const { return info().cls == ExecClass::Store; }
    bool isMem() const { return isLoad() || isStore(); }
    bool isBranch() const { return info().cls == ExecClass::Branch; }
    bool isSystem() const { return info().cls == ExecClass::System; }

    /** Conditional branch (BEQ..BGEU), excluding JAL/JALR. */
    bool
    isCondBranch() const
    {
        return isBranch() && op != Op::JAL && op != Op::JALR;
    }

    /** Any control transfer, conditional or not. */
    bool isControl() const { return isBranch(); }

    /** Direct control transfer: target computable from PC + encoding. */
    bool isDirectControl() const { return isBranch() && op != Op::JALR; }

    /** Destination register, or -1 when none (x0 counts as none). */
    int
    destReg() const
    {
        return (info().writesReg && ra != 0) ? ra : -1;
    }

    /** First source register, or -1. Branches use ra as src1. */
    int
    srcReg1() const
    {
        const OpInfo &oi = info();
        if (oi.readsRa)
            return ra;
        if (oi.readsRb)
            return rb;
        return -1;
    }

    /** Second source register, or -1. */
    int
    srcReg2() const
    {
        const OpInfo &oi = info();
        if (oi.readsRa) // store/branch/sys: rb (if read) is src2
            return oi.readsRb ? rb : -1;
        return oi.readsRc ? rc : -1;
    }

    /** Access size in bytes for memory ops; 0 otherwise. */
    int memSize() const;

    bool operator==(const Inst &other) const = default;
};

/** Encode @p inst to a 32-bit instruction word. */
std::uint32_t encode(const Inst &inst);

/**
 * Decode a 32-bit instruction word.
 * @return std::nullopt for an illegal opcode field.
 */
std::optional<Inst> decode(std::uint32_t word);

/** Render @p inst as assembly text (round-trips through the assembler). */
std::string disassemble(const Inst &inst);

/** ABI register name (x0 -> "zero", x2 -> "sp", ...). */
const char *regName(int reg);

/**
 * Parse a register name: "x17", ABI names ("a3", "t0", "sp", ...).
 * @return register index or -1 when not a register.
 */
int parseRegName(const std::string &name);

} // namespace vsim::isa

#endif // VSIM_ISA_ISA_HH
