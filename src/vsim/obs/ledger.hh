/**
 * @file
 * Speculation ledger — per-prediction lifecycle records. Where the
 * CPI stack answers "where did the cycles go", the ledger answers
 * "what happened to each value prediction": made at dispatch,
 * consumed by N dependents, then resolved into exactly one terminal
 * state (verified, invalidated, or squashed before resolution), and
 * finally either committed or architecturally dead.
 *
 * Detailed records are gated by CoreConfig::specLedger (part of the
 * run's identity / jobKey) because they grow with the prediction
 * count; the aggregate conservation counters in CoreStats are always
 * collected.
 */

#ifndef VSIM_OBS_LEDGER_HH
#define VSIM_OBS_LEDGER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vsim::obs
{

/** Terminal state of one value prediction. */
enum class LedgerOutcome : std::uint8_t
{
    Unresolved = 0, //!< run ended before resolution (cycle limit)
    Verified,       //!< equality check confirmed the prediction
    Invalidated,    //!< equality check refuted it; consumers reissue
    Squashed,       //!< squashed (wrong path) before resolution
};

const char *ledgerOutcomeName(LedgerOutcome o);

/** Lifecycle of a single value prediction. */
struct LedgerRecord
{
    std::uint64_t seq = 0;        //!< dynamic sequence number
    std::uint64_t pc = 0;         //!< producer instruction address
    std::uint64_t madeAt = 0;     //!< dispatch cycle of the prediction
    std::uint64_t resolvedAt = 0; //!< cycle of the terminal event
    std::uint32_t consumers = 0;  //!< operand captures of the prediction
    std::uint32_t reissues = 0;   //!< consumers nullified on invalidation
    LedgerOutcome outcome = LedgerOutcome::Unresolved;
    bool committed = false; //!< producer retired (vs. architecturally dead)

    bool operator==(const LedgerRecord &) const = default;

    /** One flat JSON object. */
    std::string toJson() const;
};

/** All ledger records of one run, in prediction order. */
struct SpecLedger
{
    bool enabled = false; //!< were detailed records collected?
    std::vector<LedgerRecord> records;

    bool operator==(const SpecLedger &) const = default;

    /**
     * JSON array of records; at most @p limit entries are emitted
     * (0 = no limit). The caller reports truncation separately via
     * truncated().
     */
    std::string recordsJson(std::size_t limit) const;

    bool
    truncated(std::size_t limit) const
    {
        return limit != 0 && records.size() > limit;
    }
};

} // namespace vsim::obs

#endif // VSIM_OBS_LEDGER_HH
