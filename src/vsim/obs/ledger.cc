#include "ledger.hh"

#include <sstream>

namespace vsim::obs
{

const char *
ledgerOutcomeName(LedgerOutcome o)
{
    switch (o) {
      case LedgerOutcome::Unresolved: return "unresolved";
      case LedgerOutcome::Verified: return "verified";
      case LedgerOutcome::Invalidated: return "invalidated";
      case LedgerOutcome::Squashed: return "squashed";
    }
    return "unknown";
}

std::string
LedgerRecord::toJson() const
{
    std::ostringstream os;
    os << "{\"seq\": " << seq << ", \"pc\": " << pc
       << ", \"made_at\": " << madeAt
       << ", \"resolved_at\": " << resolvedAt
       << ", \"consumers\": " << consumers
       << ", \"reissues\": " << reissues << ", \"outcome\": \""
       << ledgerOutcomeName(outcome) << "\", \"committed\": "
       << (committed ? "true" : "false") << "}";
    return os.str();
}

std::string
SpecLedger::recordsJson(std::size_t limit) const
{
    const std::size_t n =
        (limit != 0 && records.size() > limit) ? limit : records.size();
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < n; ++i) {
        if (i)
            os << ",\n ";
        os << records[i].toJson();
    }
    os << "]";
    return os.str();
}

} // namespace vsim::obs
