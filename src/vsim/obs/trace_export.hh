/**
 * @file
 * Chrome/Perfetto trace_event exporter — the third pillar of the
 * observability layer. A TraceWriter accumulates events and renders
 * the standard JSON object format understood by chrome://tracing and
 * https://ui.perfetto.dev: {"traceEvents": [...]}.
 *
 * Two producers feed it: the pipeline tracer (one track per dynamic
 * instruction, one span per pipeline activity, timestamps in cycles)
 * and the sweep engine (one track per worker thread, one span per
 * SweepJob with queue-wait and cache-hit annotations, timestamps in
 * wall-clock time). Both map onto the same four phases used here:
 * complete ("X"), instant ("i"), counter ("C") and metadata ("M").
 */

#ifndef VSIM_OBS_TRACE_EXPORT_HH
#define VSIM_OBS_TRACE_EXPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace vsim::obs
{

class TraceWriter
{
  public:
    /**
     * Event arguments: (key, value) pairs where the value is a raw
     * JSON fragment — use the str()/num()/boolean() helpers.
     */
    using Args = std::vector<std::pair<std::string, std::string>>;

    /** Quote and escape @p v as a JSON string value. */
    static std::string str(const std::string &v);
    static std::string num(std::uint64_t v);
    static std::string num(double v);
    static std::string boolean(bool v);

    /** Complete event ("X"): a span [ts, ts+dur] on track (pid,tid). */
    void complete(const std::string &name, const std::string &cat,
                  std::uint64_t ts_us, std::uint64_t dur_us, int pid,
                  std::uint64_t tid, Args args = {});

    /** Instant event ("i"), thread-scoped. */
    void instant(const std::string &name, const std::string &cat,
                 std::uint64_t ts_us, int pid, std::uint64_t tid,
                 Args args = {});

    /** Counter event ("C"): one numeric series point per arg. */
    void counter(const std::string &name, std::uint64_t ts_us, int pid,
                 Args values);

    /** Metadata: name the thread (track) @p tid of process @p pid. */
    void threadName(int pid, std::uint64_t tid,
                    const std::string &name);

    /** Metadata: name the process @p pid. */
    void processName(int pid, const std::string &name);

    std::size_t size() const { return events.size(); }
    bool empty() const { return events.empty(); }

    /** The full trace as one JSON object. */
    std::string toJson() const;

    /**
     * Stream the trace as one JSON object to @p os without building
     * it in memory first. The caller owns error handling: check the
     * stream state (or use sim::writeFile) — a silently failed write
     * must not pass as a produced file.
     */
    void writeTo(std::ostream &os) const;

  private:
    struct Event
    {
        std::string name;
        std::string cat;
        char ph;
        std::uint64_t ts = 0;
        std::uint64_t dur = 0; //!< "X" only
        int pid = 0;
        std::uint64_t tid = 0;
        Args args;
    };

    std::vector<Event> events;
};

} // namespace vsim::obs

#endif // VSIM_OBS_TRACE_EXPORT_HH
