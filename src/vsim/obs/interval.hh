/**
 * @file
 * Interval metrics — the second pillar of the observability layer.
 * The core's cycle loop records one IntervalSample every N cycles
 * (configured by CoreConfig::metricsInterval), turning end-of-run
 * aggregates into a time series: where inside the run did the IPC
 * drop, when did invalidations cluster, how full was the window.
 *
 * Samples hold raw integer deltas (plus an integer occupancy sum),
 * never derived floats, so a series is bit-identical regardless of
 * worker count or host — the derived rates are computed on demand
 * from the same integers everywhere.
 */

#ifndef VSIM_OBS_INTERVAL_HH
#define VSIM_OBS_INTERVAL_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cpi.hh"

namespace vsim::obs
{

/** Deltas of one sampling interval of a simulation run. */
struct IntervalSample
{
    std::uint64_t cycleStart = 0; //!< first cycle of the interval
    std::uint64_t cycles = 0;     //!< interval length (last may be short)

    std::uint64_t retired = 0;
    std::uint64_t issued = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t occupancySum = 0; //!< sum of window occupancy per cycle

    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t squashes = 0;

    std::uint64_t verifyEvents = 0;
    std::uint64_t invalidateEvents = 0;
    std::uint64_t nullifications = 0;

    /** Per-category CPI-stack cycle deltas within the interval. */
    CpiStack cpi;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(retired)
                                 / static_cast<double>(cycles);
    }

    /** Average window (ROB) occupancy over the interval. */
    double
    occupancyAvg() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(occupancySum)
                                 / static_cast<double>(cycles);
    }

    /** Conditional-branch misprediction fraction in [0,1]. */
    double
    mispredictRate() const
    {
        return condBranches == 0
                   ? 0.0
                   : static_cast<double>(condMispredicts)
                         / static_cast<double>(condBranches);
    }

    /** Invalidation events per cycle. */
    double
    invalidationRate() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(invalidateEvents)
                                 / static_cast<double>(cycles);
    }

    bool operator==(const IntervalSample &) const = default;
};

/** The per-N-cycle time series of one run. */
struct IntervalSeries
{
    std::uint64_t period = 0; //!< configured interval; 0 = disabled
    std::vector<IntervalSample> samples;

    bool empty() const { return samples.empty(); }
    bool operator==(const IntervalSeries &) const = default;

    /**
     * CSV header line (with trailing newline). @p prefix names extra
     * leading columns, e.g. "label,workload," for sweep-wide files.
     */
    static std::string csvHeader(const std::string &prefix);

    /**
     * Append one CSV row per sample; @p prefix supplies the values of
     * the extra leading columns (must match csvHeader's prefix).
     */
    void appendCsv(std::ostream &os, const std::string &prefix) const;

    /** JSON array of flat per-interval objects. */
    std::string toJson() const;
};

} // namespace vsim::obs

#endif // VSIM_OBS_INTERVAL_HH
