#include "interval.hh"

#include <ostream>
#include <sstream>

namespace vsim::obs
{

std::string
IntervalSeries::csvHeader(const std::string &prefix)
{
    std::string h = prefix
                    + "cycle_start,cycles,retired,ipc,issued,dispatched,"
                      "occupancy_avg,cond_branches,cond_mispredicts,"
                      "mispredict_rate,squashes,verify_events,"
                      "invalidate_events,nullifications";
    for (std::size_t i = 0; i < kCpiCatCount; ++i) {
        h += ",cpi_";
        h += cpiCatName(static_cast<CpiCat>(i));
    }
    h += '\n';
    return h;
}

void
IntervalSeries::appendCsv(std::ostream &os,
                          const std::string &prefix) const
{
    for (const IntervalSample &s : samples) {
        os << prefix << s.cycleStart << ',' << s.cycles << ','
           << s.retired << ',' << s.ipc() << ',' << s.issued << ','
           << s.dispatched << ',' << s.occupancyAvg() << ','
           << s.condBranches << ',' << s.condMispredicts << ','
           << s.mispredictRate() << ',' << s.squashes << ','
           << s.verifyEvents << ',' << s.invalidateEvents << ','
           << s.nullifications;
        for (std::uint64_t v : s.cpi.cycles)
            os << ',' << v;
        os << '\n';
    }
}

std::string
IntervalSeries::toJson() const
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const IntervalSample &s = samples[i];
        if (i)
            os << ",\n ";
        os << "{\"cycle_start\": " << s.cycleStart
           << ", \"cycles\": " << s.cycles
           << ", \"retired\": " << s.retired
           << ", \"ipc\": " << s.ipc()
           << ", \"issued\": " << s.issued
           << ", \"dispatched\": " << s.dispatched
           << ", \"occupancy_avg\": " << s.occupancyAvg()
           << ", \"cond_branches\": " << s.condBranches
           << ", \"cond_mispredicts\": " << s.condMispredicts
           << ", \"squashes\": " << s.squashes
           << ", \"verify_events\": " << s.verifyEvents
           << ", \"invalidate_events\": " << s.invalidateEvents
           << ", \"nullifications\": " << s.nullifications << ", "
           << s.cpi.jsonFields() << "}";
    }
    os << "]";
    return os.str();
}

} // namespace vsim::obs
