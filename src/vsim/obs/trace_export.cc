#include "trace_export.hh"

#include <sstream>

#include "registry.hh"

namespace vsim::obs
{

std::string
TraceWriter::str(const std::string &v)
{
    return "\"" + jsonEscape(v) + "\"";
}

std::string
TraceWriter::num(std::uint64_t v)
{
    return std::to_string(v);
}

std::string
TraceWriter::num(double v)
{
    std::ostringstream os;
    os << v;
    return os.str();
}

std::string
TraceWriter::boolean(bool v)
{
    return v ? "true" : "false";
}

void
TraceWriter::complete(const std::string &name, const std::string &cat,
                      std::uint64_t ts_us, std::uint64_t dur_us,
                      int pid, std::uint64_t tid, Args args)
{
    events.push_back(
        {name, cat, 'X', ts_us, dur_us, pid, tid, std::move(args)});
}

void
TraceWriter::instant(const std::string &name, const std::string &cat,
                     std::uint64_t ts_us, int pid, std::uint64_t tid,
                     Args args)
{
    events.push_back(
        {name, cat, 'i', ts_us, 0, pid, tid, std::move(args)});
}

void
TraceWriter::counter(const std::string &name, std::uint64_t ts_us,
                     int pid, Args values)
{
    events.push_back(
        {name, "metrics", 'C', ts_us, 0, pid, 0, std::move(values)});
}

void
TraceWriter::threadName(int pid, std::uint64_t tid,
                        const std::string &name)
{
    events.push_back({"thread_name", "__metadata", 'M', 0, 0, pid, tid,
                      {{"name", str(name)}}});
}

void
TraceWriter::processName(int pid, const std::string &name)
{
    events.push_back({"process_name", "__metadata", 'M', 0, 0, pid, 0,
                      {{"name", str(name)}}});
}

std::string
TraceWriter::toJson() const
{
    std::ostringstream os;
    writeTo(os);
    return os.str();
}

void
TraceWriter::writeTo(std::ostream &os) const
{
    os << "{\"traceEvents\": [";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const Event &e = events[i];
        if (i)
            os << ",\n ";
        os << "{\"name\": \"" << jsonEscape(e.name) << "\", "
           << "\"cat\": \"" << jsonEscape(e.cat) << "\", "
           << "\"ph\": \"" << e.ph << "\", "
           << "\"ts\": " << e.ts << ", ";
        if (e.ph == 'X')
            os << "\"dur\": " << e.dur << ", ";
        if (e.ph == 'i')
            os << "\"s\": \"t\", ";
        os << "\"pid\": " << e.pid << ", \"tid\": " << e.tid;
        if (!e.args.empty()) {
            os << ", \"args\": {";
            for (std::size_t a = 0; a < e.args.size(); ++a) {
                if (a)
                    os << ", ";
                os << "\"" << jsonEscape(e.args[a].first)
                   << "\": " << e.args[a].second;
            }
            os << "}";
        }
        os << "}";
    }
    os << "],\n \"displayTimeUnit\": \"ms\"}";
}

} // namespace vsim::obs
