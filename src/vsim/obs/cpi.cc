#include "cpi.hh"

#include <cstdio>
#include <sstream>

namespace vsim::obs
{

namespace
{

struct CatInfo
{
    const char *name;
    const char *desc;
};

constexpr CatInfo kCats[kCpiCatCount] = {
    {"base", "useful work: retirement or plain execution latency"},
    {"icache_stall", "frontend waiting on an instruction-cache miss"},
    {"fetch_redirect", "frontend refill after a squash or at startup"},
    {"window_full", "instruction window has no free slot"},
    {"operand_wait", "window head waits for an operand in flight"},
    {"verify", "verification gates (EV, VF, VB, VA)"},
    {"inval_reissue", "invalidate propagation and reissue delay (EI, IR)"},
    {"memory", "dcache misses, load ordering, dcache ports"},
    {"branch_recovery", "empty window after a branch misprediction"},
    {"vmisp_squash", "empty window after a value-misprediction squash"},
};

} // namespace

const char *
cpiCatName(CpiCat c)
{
    return kCats[static_cast<std::size_t>(c)].name;
}

const char *
cpiCatDesc(CpiCat c)
{
    return kCats[static_cast<std::size_t>(c)].desc;
}

std::uint64_t
CpiStack::total() const
{
    std::uint64_t sum = 0;
    for (std::uint64_t v : cycles)
        sum += v;
    return sum;
}

std::string
CpiStack::jsonFields() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < kCpiCatCount; ++i) {
        if (i)
            os << ", ";
        os << "\"cpi_" << kCats[i].name << "\": " << cycles[i];
    }
    return os.str();
}

std::string
CpiStack::renderText(std::uint64_t total_cycles,
                     std::uint64_t instructions) const
{
    std::ostringstream os;
    os << "CPI stack (every cycle charged to one category):\n";
    for (std::size_t i = 0; i < kCpiCatCount; ++i) {
        const double pct =
            total_cycles == 0
                ? 0.0
                : 100.0 * static_cast<double>(cycles[i])
                      / static_cast<double>(total_cycles);
        char line[128];
        if (instructions > 0) {
            const double cpi = static_cast<double>(cycles[i])
                               / static_cast<double>(instructions);
            std::snprintf(line, sizeof(line),
                          "  %-16s %12llu  %6.2f%%  cpi %.4f\n",
                          kCats[i].name,
                          static_cast<unsigned long long>(cycles[i]),
                          pct, cpi);
        } else {
            std::snprintf(line, sizeof(line),
                          "  %-16s %12llu  %6.2f%%\n", kCats[i].name,
                          static_cast<unsigned long long>(cycles[i]),
                          pct);
        }
        os << line;
    }
    char tot[128];
    std::snprintf(tot, sizeof(tot), "  %-16s %12llu\n", "total",
                  static_cast<unsigned long long>(total()));
    os << tot;
    return os.str();
}

} // namespace vsim::obs
