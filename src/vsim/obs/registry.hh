/**
 * @file
 * Named counter/histogram registry — the first pillar of the
 * observability layer. Counters and histograms are self-describing
 * (name, description, unit), so any consumer (a CLI flag, a test, a
 * future metrics endpoint) can enumerate and serialize everything a
 * simulation produced without knowing the fields in advance.
 *
 * The registry is a passive container: the simulator keeps writing
 * its plain CoreStats fields on the hot path, and a bridge
 * (core::registerStats) snapshots them into a Registry after the run.
 * Histograms, in contrast, are aggregated live inside the core —
 * sampling is a single bucket increment, cheap enough for
 * event-driven and per-cycle use.
 */

#ifndef VSIM_OBS_REGISTRY_HH
#define VSIM_OBS_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace vsim
{
class StateWriter;
class StateReader;
} // namespace vsim

namespace vsim::obs
{

/** A named, self-describing monotonic counter. */
class Counter
{
  public:
    Counter(std::string name, std::string description, std::string unit,
            std::uint64_t value = 0)
        : name_(std::move(name)), desc_(std::move(description)),
          unit_(std::move(unit)), value_(value)
    {
    }

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }
    const std::string &unit() const { return unit_; }
    std::uint64_t value() const { return value_; }

    void inc(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }

    /** One flat JSON object: {"name": ..., "unit": ..., "value": N}. */
    std::string toJson() const;

  private:
    std::string name_, desc_, unit_;
    std::uint64_t value_ = 0;
};

/**
 * Linear-bucket histogram with an explicit overflow bucket. Bucket i
 * counts samples in [i*width, (i+1)*width); samples at or above
 * width*buckets land in the overflow bucket. Also tracks count, sum,
 * min and max so means and ranges survive serialization.
 */
class Histogram
{
  public:
    Histogram(std::string name, std::string description,
              std::string unit, std::uint64_t bucket_width,
              std::size_t bucket_count);

    const std::string &name() const { return name_; }
    const std::string &description() const { return desc_; }
    const std::string &unit() const { return unit_; }

    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t bucketWidth() const { return width_; }
    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucket(std::size_t i) const { return buckets_.at(i); }
    /** Inclusive lower bound of bucket @p i. */
    std::uint64_t bucketLo(std::size_t i) const { return i * width_; }

    /** Arithmetic mean of the samples; 0 when empty. */
    double mean() const;

    /**
     * Bucket-resolution nearest-rank percentile for @p p in [0,100]:
     * the inclusive lower bound of the bucket holding the rank-th
     * sample (the overflow bucket reports its lower bound,
     * bucket_width * bucket_count). Integer arithmetic only, so the
     * result is bit-identical on every host. 0 when empty.
     */
    std::uint64_t percentile(unsigned p) const;

    /** One-line text summary: count, mean, p50/p90/p99, min..max. */
    std::string summary() const;

    bool operator==(const Histogram &) const = default;

    /**
     * Fold @p other into this histogram: bucket-wise addition plus
     * exact count/sum/overflow/min/max combination. Both histograms
     * must share the same geometry (bucket width and bucket count) —
     * merging incompatible histograms panics. Merging is associative
     * and commutative, so the shard runner's merge order can never
     * change the combined distribution.
     */
    void merge(const Histogram &other);

    /**
     * Weighted fold for sampled simulation: add @p other's buckets,
     * count, sum and overflow scaled by the integer @p weight —
     * exactly as if other had been merged @p weight times. min/max
     * combine unscaled (repeating a sample does not move the range).
     * Same geometry requirement as merge(); weight 0 is a no-op.
     * Integer arithmetic only, so weighted merges stay bit-identical
     * across hosts and worker counts.
     */
    void mergeWeighted(const Histogram &other, std::uint64_t weight);

    /**
     * One flat JSON object. Trailing all-zero buckets are trimmed so
     * sparse histograms stay compact; "overflow" is always emitted.
     */
    std::string toJson() const;

    /**
     * Serialize the aggregated distribution (geometry + buckets +
     * count/sum/min/max) to a state stream; name/description/unit are
     * not serialized — the restoring host object supplies them.
     * restore() fatals (catchably) on tag or geometry mismatch.
     */
    void save(StateWriter &w) const;
    void restore(StateReader &r);

  private:
    std::string name_, desc_, unit_;
    std::uint64_t width_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * Enumerable collection of counters and histograms, keyed by name.
 * References returned by counter()/histogram() stay valid for the
 * registry's lifetime (deque storage, no reallocation moves).
 */
class Registry
{
  public:
    /**
     * Find-or-create: returns the existing counter of that name, or
     * registers a new one with the given description and unit.
     */
    Counter &counter(const std::string &name,
                     const std::string &description,
                     const std::string &unit);

    /** Copy @p h into the registry (replacing any same-named one). */
    Histogram &histogram(Histogram h);

    const Counter *findCounter(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;

    std::size_t counterCount() const { return counters_.size(); }
    std::size_t histogramCount() const { return histograms_.size(); }

    /** Counters, in registration order. */
    const std::deque<Counter> &counters() const { return counters_; }
    const std::deque<Histogram> &histograms() const
    {
        return histograms_;
    }

    /** {"counters": [...], "histograms": [...]} */
    std::string toJson() const;

  private:
    std::deque<Counter> counters_;
    std::deque<Histogram> histograms_;
    std::map<std::string, std::size_t> counterIndex_;
    std::map<std::string, std::size_t> histogramIndex_;
};

/** Escape a string for embedding in a JSON string literal. */
std::string jsonEscape(const std::string &s);

} // namespace vsim::obs

#endif // VSIM_OBS_REGISTRY_HH
