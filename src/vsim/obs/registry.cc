#include "registry.hh"

#include <algorithm>
#include <sstream>

#include "vsim/base/logging.hh"
#include "vsim/base/state_io.hh"

namespace vsim::obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
Counter::toJson() const
{
    std::ostringstream os;
    os << "{\"name\": \"" << jsonEscape(name_) << "\", "
       << "\"desc\": \"" << jsonEscape(desc_) << "\", "
       << "\"unit\": \"" << jsonEscape(unit_) << "\", "
       << "\"value\": " << value_ << "}";
    return os.str();
}

Histogram::Histogram(std::string name, std::string description,
                     std::string unit, std::uint64_t bucket_width,
                     std::size_t bucket_count)
    : name_(std::move(name)), desc_(std::move(description)),
      unit_(std::move(unit)), width_(bucket_width),
      buckets_(bucket_count, 0)
{
    VSIM_ASSERT(bucket_width > 0, "histogram bucket width must be > 0");
    VSIM_ASSERT(bucket_count > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(std::uint64_t v)
{
    if (count_ == 0 || v < min_)
        min_ = v;
    if (v > max_)
        max_ = v;
    ++count_;
    sum_ += v;
    const std::uint64_t idx = v / width_;
    if (idx >= buckets_.size())
        ++overflow_;
    else
        ++buckets_[static_cast<std::size_t>(idx)];
}

void
Histogram::merge(const Histogram &other)
{
    VSIM_ASSERT(width_ == other.width_
                    && buckets_.size() == other.buckets_.size(),
                "histogram merge needs identical geometry: ", name_);
    if (other.count_ == 0)
        return;
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
    overflow_ += other.overflow_;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
}

void
Histogram::mergeWeighted(const Histogram &other, std::uint64_t weight)
{
    VSIM_ASSERT(width_ == other.width_
                    && buckets_.size() == other.buckets_.size(),
                "histogram merge needs identical geometry: ", name_);
    if (other.count_ == 0 || weight == 0)
        return;
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_ * weight;
    sum_ += other.sum_ * weight;
    overflow_ += other.overflow_ * weight;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i] * weight;
}

void
Histogram::save(StateWriter &w) const
{
    w.tag("HGRM");
    w.u64(width_);
    w.u64(buckets_.size());
    w.u64(overflow_);
    w.u64(count_);
    w.u64(sum_);
    w.u64(min_);
    w.u64(max_);
    for (std::uint64_t b : buckets_)
        w.u64(b);
}

void
Histogram::restore(StateReader &r)
{
    r.tag("HGRM");
    const std::uint64_t width = r.u64();
    const std::uint64_t nbuckets = r.u64();
    if (width != width_ || nbuckets != buckets_.size())
        VSIM_FATAL("histogram geometry mismatch restoring ", name_,
                   ": stream has width ", width, " x ", nbuckets,
                   ", host has width ", width_, " x ",
                   buckets_.size());
    overflow_ = r.u64();
    count_ = r.u64();
    sum_ = r.u64();
    min_ = r.u64();
    max_ = r.u64();
    for (std::uint64_t &b : buckets_)
        b = r.u64();
}

double
Histogram::mean() const
{
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_)
                             / static_cast<double>(count_);
}

std::uint64_t
Histogram::percentile(unsigned p) const
{
    if (count_ == 0)
        return 0;
    // Nearest-rank: the smallest rank r with r >= p% of count.
    std::uint64_t rank = (count_ * p + 99) / 100;
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= rank)
            return bucketLo(i);
    }
    return width_ * buckets_.size(); // overflow bucket's lower bound
}

std::string
Histogram::summary() const
{
    std::ostringstream os;
    os << name_ << ": count=" << count_ << " mean=" << mean()
       << " p50=" << percentile(50) << " p90=" << percentile(90)
       << " p99=" << percentile(99) << " min=" << min()
       << " max=" << max_ << " (" << unit_ << ")";
    return os.str();
}

std::string
Histogram::toJson() const
{
    // Trim trailing all-zero buckets; the reader reconstructs them
    // from "bucket_count".
    std::size_t last = buckets_.size();
    while (last > 0 && buckets_[last - 1] == 0)
        --last;

    std::ostringstream os;
    os << "{\"name\": \"" << jsonEscape(name_) << "\", "
       << "\"desc\": \"" << jsonEscape(desc_) << "\", "
       << "\"unit\": \"" << jsonEscape(unit_) << "\", "
       << "\"count\": " << count_ << ", "
       << "\"sum\": " << sum_ << ", "
       << "\"min\": " << min() << ", "
       << "\"max\": " << max_ << ", "
       << "\"mean\": " << mean() << ", "
       << "\"p50\": " << percentile(50) << ", "
       << "\"p90\": " << percentile(90) << ", "
       << "\"p99\": " << percentile(99) << ", "
       << "\"bucket_width\": " << width_ << ", "
       << "\"bucket_count\": " << buckets_.size() << ", "
       << "\"buckets\": [";
    for (std::size_t i = 0; i < last; ++i) {
        if (i)
            os << ", ";
        os << buckets_[i];
    }
    os << "], \"overflow\": " << overflow_ << "}";
    return os.str();
}

Counter &
Registry::counter(const std::string &name,
                  const std::string &description,
                  const std::string &unit)
{
    auto it = counterIndex_.find(name);
    if (it != counterIndex_.end())
        return counters_[it->second];
    counterIndex_.emplace(name, counters_.size());
    counters_.emplace_back(name, description, unit);
    return counters_.back();
}

Histogram &
Registry::histogram(Histogram h)
{
    auto it = histogramIndex_.find(h.name());
    if (it != histogramIndex_.end()) {
        histograms_[it->second] = std::move(h);
        return histograms_[it->second];
    }
    histogramIndex_.emplace(h.name(), histograms_.size());
    histograms_.push_back(std::move(h));
    return histograms_.back();
}

const Counter *
Registry::findCounter(const std::string &name) const
{
    auto it = counterIndex_.find(name);
    return it == counterIndex_.end() ? nullptr : &counters_[it->second];
}

const Histogram *
Registry::findHistogram(const std::string &name) const
{
    auto it = histogramIndex_.find(name);
    return it == histogramIndex_.end() ? nullptr
                                       : &histograms_[it->second];
}

std::string
Registry::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\": [";
    for (std::size_t i = 0; i < counters_.size(); ++i) {
        if (i)
            os << ",\n ";
        os << counters_[i].toJson();
    }
    os << "],\n \"histograms\": [";
    for (std::size_t i = 0; i < histograms_.size(); ++i) {
        if (i)
            os << ",\n ";
        os << histograms_[i].toJson();
    }
    os << "]}";
    return os.str();
}

} // namespace vsim::obs
