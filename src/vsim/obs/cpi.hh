/**
 * @file
 * CPI-stack cycle accounting — the attribution pillar of the
 * observability layer. Every simulated cycle is charged to exactly
 * one category of a fixed taxonomy, so per-category sums always equal
 * total cycles and two runs can be compared category by category
 * ("the hierarchical scheme wins because it spends 40% fewer cycles
 * in invalidate→reissue, not because its base CPI differs").
 *
 * The taxonomy mirrors the paper's §3 latency variables: the verify
 * category absorbs EV/VF/VB/VA gates, invalidate→reissue absorbs
 * EI/IR, branch recovery and value-misprediction squash separate the
 * two redirect causes, and base compute is everything the machine
 * would spend with perfect speculation.
 *
 * Like IntervalSample, a CpiStack holds raw integer cycle counts and
 * never derived floats, so stacks are bit-identical across worker
 * counts, sweep domains (dense/sparse) and trace replay.
 */

#ifndef VSIM_OBS_CPI_HH
#define VSIM_OBS_CPI_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace vsim::obs
{

/** Where a cycle went. Exactly one category is charged per cycle. */
enum class CpiCat : int
{
    Base = 0,       //!< useful work: retirement or execution latency
    IcacheStall,    //!< frontend waiting on an instruction-cache miss
    FetchRedirect,  //!< frontend refill after a squash (startup ramp too)
    WindowFull,     //!< instruction window / RS has no free slot
    OperandWait,    //!< head waits for an operand value in flight
    Verify,         //!< verification gates: EV, VF, VB, VA residue
    Reissue,        //!< invalidate→reissue chains: EI propagation, IR
    Memory,         //!< dcache misses, load ordering, dcache ports
    BranchRecovery, //!< empty window after a branch misprediction
    VmispSquash,    //!< empty window after a value-misprediction squash
};

inline constexpr std::size_t kCpiCatCount = 10;

/** Short machine-readable name, e.g. "base", "vmisp_squash". */
const char *cpiCatName(CpiCat c);

/** One-line human description of the category. */
const char *cpiCatDesc(CpiCat c);

/**
 * Integer cycle counts per category. Collected unconditionally on
 * every run (like the core histograms), so a memoized RunResult is
 * identical no matter which CLI flags asked for it.
 */
struct CpiStack
{
    std::array<std::uint64_t, kCpiCatCount> cycles{};

    std::uint64_t &operator[](CpiCat c)
    {
        return cycles[static_cast<std::size_t>(c)];
    }
    std::uint64_t operator[](CpiCat c) const
    {
        return cycles[static_cast<std::size_t>(c)];
    }

    /** Sum over all categories; equals the run's total cycles. */
    std::uint64_t total() const;

    bool operator==(const CpiStack &) const = default;

    /** Element-wise addition; used by the shard merge. */
    void
    merge(const CpiStack &other)
    {
        for (std::size_t i = 0; i < kCpiCatCount; ++i)
            cycles[i] += other.cycles[i];
    }

    /** Element-wise @p weight-scaled addition (sampled-replay merge):
     *  equivalent to merging @p other @p weight times. */
    void
    mergeWeighted(const CpiStack &other, std::uint64_t weight)
    {
        for (std::size_t i = 0; i < kCpiCatCount; ++i)
            cycles[i] += other.cycles[i] * weight;
    }

    /**
     * Flat JSON fields "cpi_<name>": N, comma-separated, no braces —
     * meant for embedding into a larger per-run object.
     */
    std::string jsonFields() const;

    /**
     * Human-readable table: one line per category with cycles,
     * percentage of @p total_cycles and CPI contribution over
     * @p instructions (0 instructions suppresses the CPI column).
     */
    std::string renderText(std::uint64_t total_cycles,
                           std::uint64_t instructions) const;
};

} // namespace vsim::obs

#endif // VSIM_OBS_CPI_HH
