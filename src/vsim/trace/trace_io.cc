#include "trace_io.hh"

#include <cstring>
#include <map>
#include <mutex>

#include "vsim/base/logging.hh"

namespace vsim::trace
{

namespace
{

/** Records buffered per write/read burst (192 KiB of 48-byte records). */
constexpr std::size_t kBurstRecords = 4096;

/** Chunk size for whole-file hashing and image reads. */
constexpr std::size_t kChunkBytes = 256 * 1024;

} // namespace

TraceRecord
makeRecord(const arch::TraceEntry &entry)
{
    TraceRecord rec;
    rec.pc = entry.pc;
    rec.value = entry.value;
    rec.target = entry.nextPc;
    rec.memAddr = entry.memAddr;
    rec.imm = entry.inst.imm;
    rec.op = static_cast<std::uint8_t>(entry.inst.op);
    rec.ra = entry.inst.ra;
    rec.rb = entry.inst.rb;
    rec.rc = entry.inst.rc;
    rec.memSize = static_cast<std::uint8_t>(entry.inst.memSize());
    rec.taken = entry.nextPc != entry.pc + 4 ? 1 : 0;
    return rec;
}

arch::TraceEntry
makeEntry(const TraceRecord &rec)
{
    arch::TraceEntry entry;
    entry.pc = rec.pc;
    entry.value = rec.value;
    entry.nextPc = rec.target;
    entry.memAddr = rec.memAddr;
    entry.inst.op = static_cast<isa::Op>(rec.op);
    entry.inst.ra = rec.ra;
    entry.inst.rb = rec.rb;
    entry.inst.rc = rec.rc;
    entry.inst.imm = rec.imm;
    return entry;
}

// --------------------------------------------------------------------
// TraceWriter

TraceWriter::TraceWriter(const std::string &path_,
                         const assembler::Program &prog)
    : path(path_), out(path_, std::ios::binary | std::ios::trunc)
{
    if (!out)
        VSIM_FATAL("cannot open trace file for writing: ", path);
    if (prog.text.empty())
        VSIM_FATAL("refusing to trace a program with no text: ", path);

    hdr.textBase = prog.textBase;
    hdr.dataBase = prog.dataBase;
    hdr.stackTop = prog.stackTop;
    hdr.entry = prog.entry;
    hdr.textWords = static_cast<std::uint32_t>(prog.text.size());
    hdr.dataBytes = static_cast<std::uint32_t>(prog.data.size());

    // Header first (recordCount = kUnfinalized until finalize()),
    // then the static image; the payload digest starts at the image.
    put(&hdr, sizeof(hdr));
    if (!prog.text.empty()) {
        const std::uint64_t bytes = 4ull * prog.text.size();
        put(prog.text.data(), bytes);
        digest = fnv1a(prog.text.data(), bytes, digest);
    }
    if (!prog.data.empty()) {
        put(prog.data.data(), prog.data.size());
        digest = fnv1a(prog.data.data(), prog.data.size(), digest);
    }
    buffer.reserve(kBurstRecords);
}

TraceWriter::~TraceWriter()
{
    // Without finalize() the header still says kUnfinalized records,
    // so a half-written file is rejected on load rather than replayed.
}

void
TraceWriter::put(const void *bytes, std::uint64_t len)
{
    out.write(static_cast<const char *>(bytes),
              static_cast<std::streamsize>(len));
    if (!out)
        VSIM_FATAL("write failed on trace file: ", path);
}

void
TraceWriter::flushBuffer()
{
    if (buffer.empty())
        return;
    const std::uint64_t bytes = buffer.size() * sizeof(TraceRecord);
    put(buffer.data(), bytes);
    digest = fnv1a(buffer.data(), bytes, digest);
    buffer.clear();
}

void
TraceWriter::append(const TraceRecord &rec)
{
    VSIM_ASSERT(!finalized, "append after finalize");
    buffer.push_back(rec);
    ++count;
    if (buffer.size() >= kBurstRecords)
        flushBuffer();
}

void
TraceWriter::finalize(const std::string &output, std::uint64_t exit_code)
{
    VSIM_ASSERT(!finalized, "trace finalized twice");
    flushBuffer();

    if (!output.empty()) {
        put(output.data(), output.size());
        digest = fnv1a(output.data(), output.size(), digest);
    }

    TraceFooter footer;
    footer.digest = digest;
    put(&footer, sizeof(footer));

    hdr.outputBytes = static_cast<std::uint32_t>(output.size());
    hdr.exitCode = exit_code;
    hdr.recordCount = count;
    out.seekp(0);
    put(&hdr, sizeof(hdr));

    out.flush();
    if (!out)
        VSIM_FATAL("flush failed on trace file: ", path);
    out.close();
    if (out.fail())
        VSIM_FATAL("close failed on trace file: ", path);
    finalized = true;
}

// --------------------------------------------------------------------
// TraceReader

namespace
{

/**
 * Validate one record's static fields: a record must describe an
 * instruction the decoder could have produced, lie inside the text
 * image, and carry internally consistent memory/control metadata.
 */
void
validateRecord(const TraceRecord &rec, std::uint64_t index,
               const TraceHeader &hdr, const std::string &path)
{
    auto bad = [&](const char *what) {
        VSIM_FATAL("corrupt trace record #", index, " in ", path, ": ",
                   what);
    };

    if (rec.op >= static_cast<std::uint8_t>(isa::kNumOps))
        bad("opcode out of range");
    if (rec.ra >= isa::kNumRegs || rec.rb >= isa::kNumRegs
        || rec.rc >= isa::kNumRegs)
        bad("register field out of range");

    const isa::Inst inst{static_cast<isa::Op>(rec.op), rec.ra, rec.rb,
                         rec.rc, rec.imm};
    switch (inst.info().fmt) {
      case isa::Format::F_RRR:
        if (rec.imm != 0)
            bad("nonzero immediate on an R-type record");
        break;
      case isa::Format::F_RRI:
        if (rec.rc != 0)
            bad("nonzero rc on an I-type record");
        if (rec.imm < -(1 << 14) || rec.imm >= (1 << 14))
            bad("imm15 out of range");
        break;
      case isa::Format::F_RI20:
        if (rec.rb != 0 || rec.rc != 0)
            bad("nonzero rb/rc on a RI20-type record");
        if (rec.imm < -(1 << 19) || rec.imm >= (1 << 19))
            bad("imm20 out of range");
        break;
    }

    const std::uint64_t text_end = hdr.textBase + 4ull * hdr.textWords;
    if (rec.pc < hdr.textBase || rec.pc >= text_end || rec.pc % 4 != 0)
        bad("pc outside the text image");
    if (rec.memSize != static_cast<std::uint8_t>(inst.memSize()))
        bad("memSize does not match the opcode");
    if (!inst.isMem() && rec.memAddr != 0)
        bad("memory address on a non-memory record");
    if (rec.taken != (rec.target != rec.pc + 4 ? 1 : 0))
        bad("taken flag contradicts the target");
    for (std::uint8_t p : rec.pad) {
        if (p != 0)
            bad("nonzero pad bytes");
    }
}

} // namespace

TraceReader::TraceReader(const std::string &path_) : path(path_)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        VSIM_FATAL("cannot open trace file: ", path);

    in.seekg(0, std::ios::end);
    const std::uint64_t file_size =
        static_cast<std::uint64_t>(in.tellg());
    in.seekg(0);

    auto get = [&](void *bytes, std::uint64_t len) {
        in.read(static_cast<char *>(bytes),
                static_cast<std::streamsize>(len));
        if (!in || static_cast<std::uint64_t>(in.gcount()) != len)
            VSIM_FATAL("truncated trace file: ", path);
    };

    if (file_size < sizeof(TraceHeader) + sizeof(TraceFooter))
        VSIM_FATAL("trace file too small to be valid: ", path);
    get(&hdr, sizeof(hdr));

    if (hdr.magic != kTraceMagic)
        VSIM_FATAL("not a VSIM trace (bad magic): ", path);
    if (hdr.version != kTraceVersion) {
        VSIM_FATAL("unsupported trace version ", hdr.version,
                   " (expected ", kTraceVersion, "): ", path);
    }
    if (hdr.headerBytes != sizeof(TraceHeader)
        || hdr.recordBytes != sizeof(TraceRecord))
        VSIM_FATAL("trace structure sizes do not match v1: ", path);
    if (hdr.recordCount == kUnfinalized) {
        VSIM_FATAL("unfinalized trace (writer did not finish): ",
                   path);
    }
    if (hdr.textWords == 0)
        VSIM_FATAL("trace has an empty text image: ", path);
    if (hdr.recordCount == 0)
        VSIM_FATAL("trace has no dynamic records: ", path);
    if (hdr.entry < hdr.textBase
        || hdr.entry >= hdr.textBase + 4ull * hdr.textWords
        || hdr.entry % 4 != 0)
        VSIM_FATAL("trace entry point outside the text image: ", path);

    // Exact length check: catches truncation and trailing garbage
    // before we commit to reading the sections.
    const std::uint64_t payload = file_size - sizeof(TraceHeader)
                                  - sizeof(TraceFooter);
    if (hdr.recordCount > payload / sizeof(TraceRecord))
        VSIM_FATAL("truncated trace file: ", path);
    const std::uint64_t expected =
        sizeof(TraceHeader) + 4ull * hdr.textWords + hdr.dataBytes
        + hdr.recordCount * sizeof(TraceRecord) + hdr.outputBytes
        + sizeof(TraceFooter);
    if (file_size != expected) {
        VSIM_FATAL("trace file length ", file_size, " != expected ",
                   expected, " (truncated or corrupt): ", path);
    }

    std::uint64_t digest = kFnvOffset;

    prog.textBase = hdr.textBase;
    prog.dataBase = hdr.dataBase;
    prog.stackTop = hdr.stackTop;
    prog.entry = hdr.entry;
    prog.text.resize(hdr.textWords);
    get(prog.text.data(), 4ull * hdr.textWords);
    digest = fnv1a(prog.text.data(), 4ull * hdr.textWords, digest);
    if (hdr.dataBytes) {
        prog.data.resize(hdr.dataBytes);
        get(prog.data.data(), hdr.dataBytes);
        digest = fnv1a(prog.data.data(), hdr.dataBytes, digest);
    }

    records.resize(hdr.recordCount);
    for (std::uint64_t done = 0; done < hdr.recordCount;) {
        const std::uint64_t burst =
            std::min<std::uint64_t>(kBurstRecords, hdr.recordCount - done);
        get(&records[done], burst * sizeof(TraceRecord));
        digest = fnv1a(&records[done], burst * sizeof(TraceRecord),
                       digest);
        done += burst;
    }

    if (hdr.outputBytes) {
        output.resize(hdr.outputBytes);
        get(output.data(), hdr.outputBytes);
        digest = fnv1a(output.data(), hdr.outputBytes, digest);
    }

    TraceFooter footer;
    get(&footer, sizeof(footer));
    if (footer.endMagic != kTraceEndMagic)
        VSIM_FATAL("trace footer marker missing: ", path);
    if (footer.digest != digest) {
        VSIM_FATAL("trace payload digest mismatch (corrupt file): ",
                   path);
    }

    // Per-record and whole-trace structural checks: each record must
    // be a decodable instruction, the correct path must chain
    // (record i's target is record i+1's pc), and the trace must end
    // with exactly one HALT.
    for (std::uint64_t i = 0; i < records.size(); ++i) {
        validateRecord(records[i], i, hdr, path);
        const bool last = i + 1 == records.size();
        const bool halt =
            records[i].op == static_cast<std::uint8_t>(isa::Op::HALT);
        if (halt != last) {
            VSIM_FATAL("corrupt trace record #", i, " in ", path,
                       last ? ": trace does not end in HALT"
                            : ": HALT before the end of the trace");
        }
        if (!last && records[i].target != records[i + 1].pc) {
            VSIM_FATAL("corrupt trace record #", i, " in ", path,
                       ": correct path does not chain to the next "
                       "record");
        }
    }
    if (records[0].pc != hdr.entry)
        VSIM_FATAL("first trace record is not at the entry point: ",
                   path);
    if (records.back().target != records.back().pc)
        VSIM_FATAL("HALT record target is not its own pc: ", path);
}

bool
TraceReader::next(TraceRecord &out)
{
    if (cursor >= records.size())
        return false;
    out = records[cursor++];
    return true;
}

void
TraceReader::seek(std::uint64_t record_index)
{
    if (record_index > records.size()) {
        VSIM_FATAL("seek to record ", record_index, " of ",
                   records.size(), " points past the trace footer: ",
                   path);
    }
    cursor = record_index;
}

arch::ExecTrace
TraceReader::execTrace() const
{
    arch::ExecTrace trace;
    trace.entries.reserve(records.size());
    for (const TraceRecord &rec : records)
        trace.entries.push_back(makeEntry(rec));
    trace.output = output;
    trace.exitCode = hdr.exitCode;
    return trace;
}

// --------------------------------------------------------------------
// Convenience entry points

LoadedTrace
loadTrace(const std::string &path)
{
    TraceReader reader(path);
    return {reader.program(), reader.execTrace()};
}

std::uint64_t
recordTrace(const assembler::Program &prog, const std::string &path,
            std::uint64_t max_insts)
{
    TraceWriter writer(path, prog);
    arch::FunctionalCore core(prog);
    arch::TraceEntry entry;
    while (!core.state().halted) {
        if (core.instCount() >= max_insts) {
            VSIM_FATAL("traced program did not halt within ", max_insts,
                       " instructions");
        }
        core.step(&entry);
        writer.append(makeRecord(entry));
    }
    writer.finalize(core.state().output, core.state().exitCode);
    return writer.recordCount();
}

std::uint64_t
traceFileHash(const std::string &path)
{
    static std::mutex mutex;
    static std::map<std::string, std::uint64_t> cache;
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (auto it = cache.find(path); it != cache.end())
            return it->second;
    }

    std::ifstream in(path, std::ios::binary);
    if (!in)
        VSIM_FATAL("cannot open trace file: ", path);
    std::vector<char> chunk(kChunkBytes);
    std::uint64_t hash = kFnvOffset;
    while (in) {
        in.read(chunk.data(),
                static_cast<std::streamsize>(chunk.size()));
        hash = fnv1a(chunk.data(),
                     static_cast<std::uint64_t>(in.gcount()), hash);
    }
    if (!in.eof())
        VSIM_FATAL("read failed hashing trace file: ", path);

    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(path, hash);
    return hash;
}

} // namespace vsim::trace
