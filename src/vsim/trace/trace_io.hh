/**
 * @file
 * Reading and writing ".vst" dynamic instruction traces (see
 * trace_format.hh for the on-disk layout). The writer streams records
 * with buffered I/O and patches the header on finalize(); the reader
 * validates the whole file strictly — magic, version, structure
 * sizes, exact file length (truncation / trailing garbage), record
 * sanity and the footer digest — before handing anything to the
 * timing core. Every I/O or validation failure raises
 * vsim::FatalError so tools exit nonzero instead of replaying junk.
 */

#ifndef VSIM_TRACE_TRACE_IO_HH
#define VSIM_TRACE_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace_format.hh"
#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/program.hh"

namespace vsim::trace
{

/** Convert one recorded functional-trace entry to a file record. */
TraceRecord makeRecord(const arch::TraceEntry &entry);

/** Convert one validated file record back to a functional entry. */
arch::TraceEntry makeEntry(const TraceRecord &rec);

/**
 * Streaming trace generator. Construct with the program's static
 * image, append() each dynamic record as the functional core retires
 * it, then finalize() with the program's output and exit code. A
 * writer that is destroyed without finalize() leaves recordCount as
 * kUnfinalized on disk, which the reader rejects.
 */
class TraceWriter
{
  public:
    TraceWriter(const std::string &path, const assembler::Program &prog);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    void append(const TraceRecord &rec);

    /** Flush records, write output + footer, patch the header. */
    void finalize(const std::string &output, std::uint64_t exit_code);

    std::uint64_t recordCount() const { return count; }

  private:
    void put(const void *bytes, std::uint64_t len);
    void flushBuffer();

    std::string path;
    std::ofstream out;
    TraceHeader hdr;
    std::vector<TraceRecord> buffer; //!< pending records (buffered I/O)
    std::uint64_t count = 0;
    std::uint64_t digest = kFnvOffset; //!< running payload FNV-1a
    bool finalized = false;
};

/**
 * Validating trace loader. The constructor reads the entire file in
 * buffered chunks, verifying structure and the footer digest, and
 * rejecting malformed, truncated or unfinalized files with
 * vsim::FatalError. Afterwards program() and execTrace() expose the
 * reconstructed static image and dynamic trace, and next() iterates
 * the validated records in order.
 */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    const TraceHeader &header() const { return hdr; }
    const assembler::Program &program() const { return prog; }
    std::uint64_t recordCount() const { return records.size(); }

    /** Iterate validated records; returns false when exhausted. */
    bool next(TraceRecord &out);

    /**
     * Reposition the next() cursor to @p record_index. O(1) by
     * construction of the v1 layout: the header is fixed-size (80
     * bytes) and every record is a fixed 48 bytes, so a record's file
     * position is a pure offset computation — and this reader holds
     * the validated records in memory, making the seek a cursor
     * assignment. @p record_index == recordCount() is allowed and
     * leaves the reader exhausted; anything beyond that points past
     * the footer and raises vsim::FatalError instead of letting
     * next() silently come up short.
     */
    void seek(std::uint64_t record_index);

    /** Index of the record the next next() call returns. */
    std::uint64_t tell() const { return cursor; }

    /** Rebuild the functional-core trace (records + output + exit). */
    arch::ExecTrace execTrace() const;

  private:
    TraceHeader hdr;
    assembler::Program prog;
    std::vector<TraceRecord> records;
    std::string output;
    std::string path;
    std::uint64_t cursor = 0;
};

/** A trace materialised for replay through the timing core. */
struct LoadedTrace
{
    assembler::Program program;
    arch::ExecTrace trace;
};

/** Load and validate @p path (throws vsim::FatalError on any defect). */
LoadedTrace loadTrace(const std::string &path);

/**
 * Record a complete run of @p prog on the functional core to @p path.
 * @return the number of dynamic records written
 * @throws vsim::FatalError on I/O failure or a non-halting program
 */
std::uint64_t recordTrace(const assembler::Program &prog,
                          const std::string &path,
                          std::uint64_t max_insts = 500'000'000);

/**
 * FNV-1a content hash of the raw file bytes at @p path, memoised per
 * path (thread-safe). Used by the SweepRunner jobKey so the RunCache
 * distinguishes different trace files that share a path across runs.
 */
std::uint64_t traceFileHash(const std::string &path);

} // namespace vsim::trace

#endif // VSIM_TRACE_TRACE_IO_HH
