/**
 * @file
 * On-disk layout of VSIM dynamic instruction traces (".vst" files).
 *
 * A trace is a complete, self-contained recording of one program run
 * made by the functional core: enough to replay the run through the
 * out-of-order timing core with *no assembler and no re-execution of
 * the functional model*. Modeled on the Championship Value Prediction
 * harness (trace-driven replay at a 512-entry window), adapted to
 * VRISC: each dynamic record carries the PC, the opcode class and
 * register fields, the memory address and access size, the
 * taken/target outcome and the destination-register value.
 *
 * The timing core additionally models wrong-path fetch (paper §5.1:
 * wrong-path side effects are simulated), and a wrong path by
 * definition is not in the dynamic trace — so the file also embeds the
 * program's static text/data image. Correct-path replay is decode-free
 * (records are pre-decoded); wrong-path fetch decodes from the
 * embedded image exactly like direct simulation, which is what makes
 * replay digest-identical to simulating the original program.
 *
 * All integers are little-endian. File layout, version 1:
 *
 *   TraceHeader                  (80 bytes, fixed)
 *   text image                   (textWords x u32)
 *   data image                   (dataBytes x u8)
 *   dynamic records              (recordCount x TraceRecord, 48 bytes)
 *   program output               (outputBytes x u8, PUTC/PUTI stream)
 *   TraceFooter                  (16 bytes: end magic + FNV-1a digest)
 *
 * The footer digest covers every byte between the end of the header
 * and the start of the footer, so truncation, bit rot and a writer
 * that died mid-stream are all detected on load. The output section
 * follows the records so the generator can stream records while the
 * program runs; recordCount / outputBytes / exitCode are written into
 * the header by TraceWriter::finalize(), and a header whose
 * recordCount is still kUnfinalized marks an unfinished file and is
 * rejected by the reader.
 */

#ifndef VSIM_TRACE_TRACE_FORMAT_HH
#define VSIM_TRACE_TRACE_FORMAT_HH

#include <cstdint>

namespace vsim::trace
{

/** "VSTR" little-endian. */
constexpr std::uint32_t kTraceMagic = 0x52545356u;

/** "VSTE" little-endian (footer end marker). */
constexpr std::uint32_t kTraceEndMagic = 0x45545356u;

constexpr std::uint32_t kTraceVersion = 1;

/** recordCount placeholder while the writer is still appending. */
constexpr std::uint64_t kUnfinalized = ~0ull;

/** Fixed-size file header (80 bytes). */
struct TraceHeader
{
    std::uint32_t magic = kTraceMagic;
    std::uint32_t version = kTraceVersion;
    std::uint32_t headerBytes = 80;
    std::uint32_t recordBytes = 48;
    std::uint64_t textBase = 0;
    std::uint64_t dataBase = 0;
    std::uint64_t stackTop = 0;
    std::uint64_t entry = 0;
    std::uint32_t textWords = 0;  //!< static text image length
    std::uint32_t dataBytes = 0;  //!< static data image length
    std::uint32_t outputBytes = 0; //!< recorded PUTC/PUTI output length
    std::uint32_t pad = 0;
    std::uint64_t exitCode = 0;
    // recordCount lives at a fixed offset so finalize() can patch it.
    std::uint64_t recordCount = kUnfinalized;
};

static_assert(sizeof(TraceHeader) == 80, "trace header layout drifted");

/** Byte offset of TraceHeader::recordCount (patched by finalize()). */
constexpr std::uint64_t kRecordCountOffset = 72;

/**
 * One dynamic (correct-path) instruction, pre-decoded (48 bytes).
 * taken/target are the *architectural* control outcome: target is the
 * next correct-path PC, and taken is set when target != pc + 4.
 */
struct TraceRecord
{
    std::uint64_t pc = 0;
    std::uint64_t value = 0;   //!< destination-register result (if any)
    std::uint64_t target = 0;  //!< next correct-path PC
    std::uint64_t memAddr = 0; //!< effective address; 0 for non-memory
    std::int32_t imm = 0;      //!< decoded immediate field
    std::uint8_t op = 0;       //!< opcode class (isa::Op)
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::uint8_t rc = 0;
    std::uint8_t memSize = 0;  //!< access size in bytes; 0 for non-memory
    std::uint8_t taken = 0;    //!< control transfer taken (target != pc+4)
    std::uint8_t pad[6] = {};
};

static_assert(sizeof(TraceRecord) == 48, "trace record layout drifted");

/** Fixed-size file footer (16 bytes). */
struct TraceFooter
{
    std::uint32_t endMagic = kTraceEndMagic;
    std::uint32_t pad = 0;
    std::uint64_t digest = 0; //!< FNV-1a 64 of header-to-footer payload
};

static_assert(sizeof(TraceFooter) == 16, "trace footer layout drifted");

// ---- FNV-1a 64 (the payload digest and the RunCache content hash) -----

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

inline std::uint64_t
fnv1a(const void *bytes, std::uint64_t len,
      std::uint64_t seed = kFnvOffset)
{
    const unsigned char *p = static_cast<const unsigned char *>(bytes);
    std::uint64_t h = seed;
    for (std::uint64_t i = 0; i < len; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
    return h;
}

} // namespace vsim::trace

#endif // VSIM_TRACE_TRACE_FORMAT_HH
