#include "vpred.hh"

#include "vsim/base/logging.hh"

namespace vsim::vpred
{

// ---------------------------------------------------------------------
// FcmPredictor
// ---------------------------------------------------------------------

FcmPredictor::FcmPredictor(int l1_bits, int l2_bits)
    : l1Bits(l1_bits), l2Bits(l2_bits),
      history(1ull << l1_bits), committed(1ull << l1_bits),
      table(1ull << l2_bits)
{
    VSIM_ASSERT(l1_bits > 0 && l1_bits <= 24, "bad l1_bits");
    VSIM_ASSERT(l2_bits > 0 && l2_bits <= 24, "bad l2_bits");
}

std::size_t
FcmPredictor::l1Index(std::uint64_t pc) const
{
    return static_cast<std::size_t>((pc >> 2)
                                    & ((1ull << l1Bits) - 1));
}

std::uint16_t
FcmPredictor::valueHash(std::uint64_t value)
{
    // Fold the 64-bit value to 16 bits.
    value ^= value >> 32;
    value ^= value >> 16;
    return static_cast<std::uint16_t>(value);
}

std::size_t
FcmPredictor::context(const HistEntry &entry) const
{
    // Shift-and-xor combination of the 4 hashed values, oldest value
    // shifted the most (select-fold-shift-xor, Sazeides & Smith '97).
    // Each history position lands in a distinct quarter of the index
    // so small values (masks, flags, characters) do not alias the
    // whole history into a handful of low bits.
    std::uint64_t ctx = 0;
    ctx ^= static_cast<std::uint64_t>(entry.vhash[0]) << (3 * l2Bits / 4);
    ctx ^= static_cast<std::uint64_t>(entry.vhash[1]) << (2 * l2Bits / 4);
    ctx ^= static_cast<std::uint64_t>(entry.vhash[2]) << (l2Bits / 4);
    ctx ^= static_cast<std::uint64_t>(entry.vhash[3]);
    return static_cast<std::size_t>(ctx & ((1ull << l2Bits) - 1));
}

Prediction
FcmPredictor::predict(std::uint64_t pc)
{
    const std::size_t ctx = context(history[l1Index(pc)]);
    return {table[ctx].value, static_cast<std::uint64_t>(ctx)};
}

void
FcmPredictor::pushHistory(std::uint64_t pc, std::uint64_t value)
{
    history[l1Index(pc)].push(valueHash(value));
}

void
FcmPredictor::commitHistory(std::uint64_t pc, std::uint64_t actual,
                            bool correct)
{
    const std::size_t idx = l1Index(pc);
    committed[idx].push(valueHash(actual));
    // Misprediction: the speculative history diverged from the real
    // value stream; squash it back to the architectural history.
    if (!correct)
        history[idx] = committed[idx];
}

void
FcmPredictor::updateTable(std::uint64_t pc, std::uint64_t token,
                          std::uint64_t actual)
{
    (void)pc;
    PredEntry &entry = table[static_cast<std::size_t>(token)];
    if (entry.value == actual) {
        entry.counter = 1;
    } else if (entry.counter > 0) {
        // 1-bit hysteresis: survive one conflicting update.
        entry.counter = 0;
    } else {
        entry.value = actual;
        entry.counter = 1;
    }
}

void
FcmPredictor::save(StateWriter &w) const
{
    w.tag("VPFC");
    w.u64(history.size());
    for (const HistEntry &entry : history)
        for (std::uint16_t h : entry.vhash)
            w.u64(h);
    for (const HistEntry &entry : committed)
        for (std::uint16_t h : entry.vhash)
            w.u64(h);
    w.u64(table.size());
    for (const PredEntry &entry : table) {
        w.u64(entry.value);
        w.u8(entry.counter);
    }
}

void
FcmPredictor::restore(StateReader &r)
{
    r.tag("VPFC");
    VSIM_ASSERT(r.u64() == history.size(),
                "fcm snapshot geometry mismatch (l1)");
    for (HistEntry &entry : history)
        for (std::uint16_t &h : entry.vhash)
            h = static_cast<std::uint16_t>(r.u64());
    for (HistEntry &entry : committed)
        for (std::uint16_t &h : entry.vhash)
            h = static_cast<std::uint16_t>(r.u64());
    VSIM_ASSERT(r.u64() == table.size(),
                "fcm snapshot geometry mismatch (l2)");
    for (PredEntry &entry : table) {
        entry.value = r.u64();
        entry.counter = r.u8();
    }
}

// ---------------------------------------------------------------------
// LastValuePredictor
// ---------------------------------------------------------------------

LastValuePredictor::LastValuePredictor(int table_bits)
    : tableBits(table_bits), table(1ull << table_bits, 0)
{}

Prediction
LastValuePredictor::predict(std::uint64_t pc)
{
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    return {table[idx], 0};
}

void
LastValuePredictor::updateTable(std::uint64_t pc, std::uint64_t token,
                                std::uint64_t actual)
{
    (void)token;
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    table[idx] = actual;
}

void
LastValuePredictor::save(StateWriter &w) const
{
    w.tag("VPLV");
    w.u64(table.size());
    for (std::uint64_t v : table)
        w.u64(v);
}

void
LastValuePredictor::restore(StateReader &r)
{
    r.tag("VPLV");
    VSIM_ASSERT(r.u64() == table.size(),
                "last-value snapshot geometry mismatch");
    for (std::uint64_t &v : table)
        v = r.u64();
}

// ---------------------------------------------------------------------
// StridePredictor
// ---------------------------------------------------------------------

StridePredictor::StridePredictor(int table_bits)
    : tableBits(table_bits), table(1ull << table_bits)
{}

Prediction
StridePredictor::predict(std::uint64_t pc)
{
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    const Entry &entry = table[idx];
    return {entry.last + static_cast<std::uint64_t>(entry.stride), 0};
}

void
StridePredictor::updateTable(std::uint64_t pc, std::uint64_t token,
                             std::uint64_t actual)
{
    (void)token;
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    Entry &entry = table[idx];
    const std::int64_t delta = static_cast<std::int64_t>(actual)
                               - static_cast<std::int64_t>(entry.last);
    // 2-delta rule: commit a new stride only when seen twice in a row.
    if (delta == entry.lastDelta)
        entry.stride = delta;
    entry.lastDelta = delta;
    entry.last = actual;
}

void
StridePredictor::save(StateWriter &w) const
{
    w.tag("VPST");
    w.u64(table.size());
    for (const Entry &entry : table) {
        w.u64(entry.last);
        w.i64(entry.stride);
        w.i64(entry.lastDelta);
    }
}

void
StridePredictor::restore(StateReader &r)
{
    r.tag("VPST");
    VSIM_ASSERT(r.u64() == table.size(),
                "stride snapshot geometry mismatch");
    for (Entry &entry : table) {
        entry.last = r.u64();
        entry.stride = r.i64();
        entry.lastDelta = r.i64();
    }
}

// ---------------------------------------------------------------------
// HybridPredictor
// ---------------------------------------------------------------------

HybridPredictor::HybridPredictor(int table_bits)
    : fcm(table_bits, table_bits), stride(table_bits),
      tableBits(table_bits), chooser(1ull << table_bits, 2)
{}

Prediction
HybridPredictor::predict(std::uint64_t pc)
{
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    const Prediction f = fcm.predict(pc);
    const Prediction s = stride.predict(pc);

    const std::uint64_t slot = ringNext++ % kRingSize;
    ring[slot] = {f.token, f.value, s.value};

    const bool use_fcm = chooser[idx] >= 2;
    return {use_fcm ? f.value : s.value, slot};
}

void
HybridPredictor::pushHistory(std::uint64_t pc, std::uint64_t value)
{
    fcm.pushHistory(pc, value);
}

void
HybridPredictor::updateTable(std::uint64_t pc, std::uint64_t token,
                             std::uint64_t actual)
{
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    const Outstanding &o = ring[token % kRingSize];

    // Score both components with what they actually predicted.
    const bool fcm_right = o.fcmValue == actual;
    const bool stride_right = o.strideValue == actual;
    if (fcm_right && !stride_right && chooser[idx] < 3)
        ++chooser[idx];
    else if (!fcm_right && stride_right && chooser[idx] > 0)
        --chooser[idx];

    fcm.updateTable(pc, o.fcmToken, actual);
    stride.updateTable(pc, 0, actual);
}

void
HybridPredictor::save(StateWriter &w) const
{
    w.tag("VPHY");
    fcm.save(w);
    stride.save(w);
    w.u64(chooser.size());
    for (std::uint8_t c : chooser)
        w.u8(c);
    for (const Outstanding &o : ring) {
        w.u64(o.fcmToken);
        w.u64(o.fcmValue);
        w.u64(o.strideValue);
    }
    w.u64(ringNext);
}

void
HybridPredictor::restore(StateReader &r)
{
    r.tag("VPHY");
    fcm.restore(r);
    stride.restore(r);
    VSIM_ASSERT(r.u64() == chooser.size(),
                "hybrid snapshot geometry mismatch");
    for (std::uint8_t &c : chooser)
        c = r.u8();
    for (Outstanding &o : ring) {
        o.fcmToken = r.u64();
        o.fcmValue = r.u64();
        o.strideValue = r.u64();
    }
    ringNext = r.u64();
}

std::unique_ptr<ValuePredictor>
makeValuePredictor(const std::string &kind)
{
    if (kind == "fcm")
        return std::make_unique<FcmPredictor>();
    if (kind == "last-value")
        return std::make_unique<LastValuePredictor>();
    if (kind == "stride")
        return std::make_unique<StridePredictor>();
    if (kind == "hybrid")
        return std::make_unique<HybridPredictor>();
    VSIM_FATAL("unknown value predictor '", kind, "'");
}

// ---------------------------------------------------------------------
// Confidence
// ---------------------------------------------------------------------

ResettingConfidence::ResettingConfidence(int counter_bits, int table_bits,
                                         int threshold_in)
    : maxCount((1 << counter_bits) - 1),
      threshold(threshold_in < 0 ? maxCount : threshold_in),
      tableBits(table_bits), table(1ull << table_bits, 0)
{
    VSIM_ASSERT(counter_bits >= 1 && counter_bits <= 8,
                "bad confidence counter width");
    VSIM_ASSERT(table_bits >= 1 && table_bits <= 24,
                "bad confidence table size (log2 entries)");
}

bool
ResettingConfidence::confident(std::uint64_t pc) const
{
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    return table[idx] >= threshold;
}

void
ResettingConfidence::update(std::uint64_t pc, bool correct)
{
    const std::size_t idx = static_cast<std::size_t>(
        (pc >> 2) & ((1ull << tableBits) - 1));
    if (correct) {
        if (table[idx] < maxCount)
            ++table[idx];
    } else {
        table[idx] = 0;
    }
}

void
ResettingConfidence::save(StateWriter &w) const
{
    w.tag("CONF");
    w.u64(table.size());
    for (std::uint8_t c : table)
        w.u8(c);
}

void
ResettingConfidence::restore(StateReader &r)
{
    r.tag("CONF");
    VSIM_ASSERT(r.u64() == table.size(),
                "confidence snapshot geometry mismatch");
    for (std::uint8_t &c : table)
        c = r.u8();
}

} // namespace vsim::vpred
