/**
 * @file
 * Value predictors and confidence estimators.
 *
 * The paper's predictor (§5.2) is the two-level context-based (FCM)
 * predictor of Sazeides & Smith: a 64K-entry direct-mapped history
 * table indexed by PC holding a hashed context of the last 4 values,
 * and a 64K-entry prediction table indexed by that context whose
 * entries carry a 1-bit replacement counter.
 *
 * Update timing is driven by the caller to support the paper's two
 * schemes:
 *  - immediate (I): after predicting, call pushHistory(pc, actual) and
 *    updateTable(pc, token, actual) right away;
 *  - delayed (D): after predicting, call pushHistory(pc, predicted)
 *    (speculative history update, exactly as §5.2 prescribes), then at
 *    retirement call updateTable(pc, token, actual) and
 *    commitHistory(pc, actual, correct). commitHistory maintains the
 *    architectural (retired-values) history and, on a misprediction,
 *    repairs the speculative history from it — the value-prediction
 *    analogue of squashing speculative branch history; without the
 *    repair a polluted history never resynchronises with the real
 *    value stream.
 *
 * Last-value, stride and hybrid predictors are extensions used by the
 * ablation benches.
 */

#ifndef VSIM_VPRED_VPRED_HH
#define VSIM_VPRED_VPRED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vsim/base/state_io.hh"

namespace vsim::vpred
{

/** A value prediction plus the opaque state needed to update later. */
struct Prediction
{
    std::uint64_t value = 0;

    /**
     * Predictor-private cookie captured at prediction time (e.g. the
     * FCM level-2 index); must be passed back to updateTable().
     */
    std::uint64_t token = 0;
};

class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    /** Predict the result of the instruction at @p pc (read-only). */
    virtual Prediction predict(std::uint64_t pc) = 0;

    /** Advance the first-level history for @p pc with @p value. */
    virtual void pushHistory(std::uint64_t pc, std::uint64_t value) = 0;

    /** Train the prediction table with the resolved @p actual value. */
    virtual void updateTable(std::uint64_t pc, std::uint64_t token,
                             std::uint64_t actual) = 0;

    /**
     * Record the retired @p actual value in the architectural history
     * and repair the speculative history when the prediction for this
     * instance was incorrect. No-op for history-less predictors.
     */
    virtual void
    commitHistory(std::uint64_t pc, std::uint64_t actual, bool correct)
    {
        (void)pc;
        (void)actual;
        (void)correct;
    }

    virtual std::string name() const = 0;

    /**
     * Checkpoint the predictor's training state (history tables,
     * prediction tables, chooser/ring state) / rebuild it. The
     * restoring predictor must be the same kind with the same
     * geometry; section tags in the stream catch mismatches.
     */
    virtual void save(StateWriter &w) const = 0;
    virtual void restore(StateReader &r) = 0;
};

/** Sazeides/Smith order-4 finite-context-method predictor. */
class FcmPredictor : public ValuePredictor
{
  public:
    /**
     * @param l1_bits log2 of the history-table entry count (16 = 64K)
     * @param l2_bits log2 of the prediction-table entry count
     */
    explicit FcmPredictor(int l1_bits = 16, int l2_bits = 16);

    Prediction predict(std::uint64_t pc) override;
    void pushHistory(std::uint64_t pc, std::uint64_t value) override;
    void updateTable(std::uint64_t pc, std::uint64_t token,
                     std::uint64_t actual) override;
    void commitHistory(std::uint64_t pc, std::uint64_t actual,
                       bool correct) override;
    std::string name() const override { return "fcm"; }
    void save(StateWriter &w) const override;
    void restore(StateReader &r) override;

  private:
    struct HistEntry
    {
        /** Hashed values of the 4 most recent results, oldest first. */
        std::uint16_t vhash[4] = {0, 0, 0, 0};

        void
        push(std::uint16_t h)
        {
            vhash[0] = vhash[1];
            vhash[1] = vhash[2];
            vhash[2] = vhash[3];
            vhash[3] = h;
        }
    };

    struct PredEntry
    {
        std::uint64_t value = 0;
        std::uint8_t counter = 0; //!< 1-bit replacement counter
    };

    std::size_t l1Index(std::uint64_t pc) const;
    std::size_t context(const HistEntry &entry) const;
    static std::uint16_t valueHash(std::uint64_t value);

    int l1Bits;
    int l2Bits;
    std::vector<HistEntry> history;   //!< speculative history
    std::vector<HistEntry> committed; //!< retired-values history
    std::vector<PredEntry> table;
};

/** Predicts the previous value of the same static instruction. */
class LastValuePredictor : public ValuePredictor
{
  public:
    explicit LastValuePredictor(int table_bits = 16);

    Prediction predict(std::uint64_t pc) override;
    void pushHistory(std::uint64_t, std::uint64_t) override {}
    void updateTable(std::uint64_t pc, std::uint64_t token,
                     std::uint64_t actual) override;
    std::string name() const override { return "last-value"; }
    void save(StateWriter &w) const override;
    void restore(StateReader &r) override;

  private:
    int tableBits;
    std::vector<std::uint64_t> table;
};

/** Classic 2-delta stride predictor. */
class StridePredictor : public ValuePredictor
{
  public:
    explicit StridePredictor(int table_bits = 16);

    Prediction predict(std::uint64_t pc) override;
    void pushHistory(std::uint64_t, std::uint64_t) override {}
    void updateTable(std::uint64_t pc, std::uint64_t token,
                     std::uint64_t actual) override;
    std::string name() const override { return "stride"; }
    void save(StateWriter &w) const override;
    void restore(StateReader &r) override;

  private:
    struct Entry
    {
        std::uint64_t last = 0;
        std::int64_t stride = 0;
        std::int64_t lastDelta = 0;
    };

    int tableBits;
    std::vector<Entry> table;
};

/** FCM/stride hybrid with a per-PC 2-bit chooser. */
class HybridPredictor : public ValuePredictor
{
  public:
    explicit HybridPredictor(int table_bits = 16);

    Prediction predict(std::uint64_t pc) override;
    void pushHistory(std::uint64_t pc, std::uint64_t value) override;
    void updateTable(std::uint64_t pc, std::uint64_t token,
                     std::uint64_t actual) override;
    void
    commitHistory(std::uint64_t pc, std::uint64_t actual,
                  bool correct) override
    {
        fcm.commitHistory(pc, actual, correct);
    }
    std::string name() const override { return "hybrid"; }
    void save(StateWriter &w) const override;
    void restore(StateReader &r) override;

  private:
    /**
     * Both components' predictions captured at predict() time so the
     * chooser can be scored at updateTable() time even with many
     * predictions outstanding (tokens index this ring).
     */
    struct Outstanding
    {
        std::uint64_t fcmToken = 0;
        std::uint64_t fcmValue = 0;
        std::uint64_t strideValue = 0;
    };

    static constexpr std::size_t kRingSize = 4096;

    FcmPredictor fcm;
    StridePredictor stride;
    int tableBits;
    std::vector<std::uint8_t> chooser; //!< >=2 prefers FCM
    std::vector<Outstanding> ring{kRingSize};
    std::uint64_t ringNext = 0;
};

/** Factory: "fcm", "last-value", "stride", "hybrid". */
std::unique_ptr<ValuePredictor> makeValuePredictor(
    const std::string &kind);

// ---------------------------------------------------------------------
// Confidence estimation (paper §3.6 / §5.2)
// ---------------------------------------------------------------------

class ConfidenceEstimator
{
  public:
    virtual ~ConfidenceEstimator() = default;

    /** Should the prediction for @p pc drive speculation? */
    virtual bool confident(std::uint64_t pc) const = 0;

    /** Record the outcome of a completed prediction for @p pc. */
    virtual void update(std::uint64_t pc, bool correct) = 0;

    virtual std::string name() const = 0;
};

/**
 * PC-indexed table of resetting counters: +1 on a correct prediction
 * (saturating), reset to 0 on an incorrect one; confident only at the
 * maximum count. The paper uses 64K entries of 3-bit counters.
 */
class ResettingConfidence : public ConfidenceEstimator
{
  public:
    explicit ResettingConfidence(int counter_bits = 3,
                                 int table_bits = 16,
                                 int threshold = -1);

    bool confident(std::uint64_t pc) const override;
    void update(std::uint64_t pc, bool correct) override;
    std::string name() const override { return "resetting"; }

    /** Checkpoint the counter table (SimSnapshot round trips). */
    void save(StateWriter &w) const;
    void restore(StateReader &r);

  private:
    int maxCount;
    int threshold; //!< confident when counter >= threshold
    int tableBits;
    std::vector<std::uint8_t> table;
};

/** Always confident — maximal speculation (stress configurations). */
class AlwaysConfident : public ConfidenceEstimator
{
  public:
    bool confident(std::uint64_t) const override { return true; }
    void update(std::uint64_t, bool) override {}
    std::string name() const override { return "always"; }
};

} // namespace vsim::vpred

#endif // VSIM_VPRED_VPRED_HH
