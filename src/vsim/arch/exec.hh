/**
 * @file
 * Pure instruction semantics shared by the functional core and the
 * out-of-order core's execute stage, so both paths compute results
 * from exactly one definition.
 */

#ifndef VSIM_ARCH_EXEC_HH
#define VSIM_ARCH_EXEC_HH

#include <cstdint>

#include "vsim/isa/isa.hh"

namespace vsim::arch
{

/** Outcome of evaluating one instruction (memory not yet touched). */
struct ExecOut
{
    /** Register result for ALU/jump ops (undefined for loads). */
    std::uint64_t value = 0;

    /** Next PC; pc+4 unless a taken control transfer. */
    std::uint64_t nextPc = 0;

    /** Control transfer actually taken (always true for JAL/JALR). */
    bool taken = false;

    /** Effective address for loads/stores. */
    std::uint64_t memAddr = 0;

    /** Value to store (stores only). */
    std::uint64_t storeData = 0;
};

/**
 * Evaluate @p inst at @p pc given its register operand values.
 * Loads produce only memAddr; the caller reads memory and applies
 * sign/zero extension via loadExtend().
 */
ExecOut evaluate(const isa::Inst &inst, std::uint64_t pc,
                 std::uint64_t ra_val, std::uint64_t rb_val,
                 std::uint64_t rc_val);

/** Apply the load's sign/zero extension to raw little-endian bytes. */
std::uint64_t loadExtend(const isa::Inst &inst, std::uint64_t raw);

/** Encoded direct target for direct control transfers (BEQ.., JAL). */
std::uint64_t directTarget(const isa::Inst &inst, std::uint64_t pc);

} // namespace vsim::arch

#endif // VSIM_ARCH_EXEC_HH
