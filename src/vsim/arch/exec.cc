#include "exec.hh"

#include "vsim/base/logging.hh"

namespace vsim::arch
{

namespace
{

std::int64_t
sgn(std::uint64_t v)
{
    return static_cast<std::int64_t>(v);
}

} // namespace

std::uint64_t
directTarget(const isa::Inst &inst, std::uint64_t pc)
{
    return pc + 4 * static_cast<std::int64_t>(inst.imm);
}

std::uint64_t
loadExtend(const isa::Inst &inst, std::uint64_t raw)
{
    using isa::Op;
    switch (inst.op) {
      case Op::LB:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int8_t>(raw)));
      case Op::LH:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int16_t>(raw)));
      case Op::LW:
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(raw)));
      case Op::LBU:
        return raw & 0xffull;
      case Op::LHU:
        return raw & 0xffffull;
      case Op::LWU:
        return raw & 0xffffffffull;
      case Op::LD:
        return raw;
      default:
        VSIM_PANIC("loadExtend on non-load");
    }
}

ExecOut
evaluate(const isa::Inst &inst, std::uint64_t pc, std::uint64_t ra_val,
         std::uint64_t rb_val, std::uint64_t rc_val)
{
    using isa::Op;

    ExecOut out;
    out.nextPc = pc + 4;

    const std::uint64_t a = rb_val; // ALU src1
    const std::uint64_t b =
        inst.info().fmt == isa::Format::F_RRR
            ? rc_val
            : static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(inst.imm));

    auto shamt6 = [](std::uint64_t v) { return static_cast<int>(v & 63); };

    switch (inst.op) {
      case Op::ADD: case Op::ADDI: out.value = a + b; break;
      case Op::SUB: out.value = a - b; break;
      case Op::AND: case Op::ANDI: out.value = a & b; break;
      case Op::OR: case Op::ORI: out.value = a | b; break;
      case Op::XOR: case Op::XORI: out.value = a ^ b; break;
      case Op::SLL: case Op::SLLI: out.value = a << shamt6(b); break;
      case Op::SRL: case Op::SRLI: out.value = a >> shamt6(b); break;
      case Op::SRA: case Op::SRAI:
        out.value = static_cast<std::uint64_t>(sgn(a) >> shamt6(b));
        break;
      case Op::SLT: case Op::SLTI:
        out.value = sgn(a) < sgn(b) ? 1 : 0;
        break;
      case Op::SLTU: case Op::SLTIU:
        out.value = a < b ? 1 : 0;
        break;
      case Op::MUL: out.value = a * b; break;
      case Op::MULH:
        out.value = static_cast<std::uint64_t>(
            (static_cast<__int128>(sgn(a)) * static_cast<__int128>(sgn(b)))
            >> 64);
        break;
      case Op::DIV:
        if (b == 0)
            out.value = ~0ull;
        else if (sgn(a) == INT64_MIN && sgn(b) == -1)
            out.value = a; // overflow case, RISC-V semantics
        else
            out.value = static_cast<std::uint64_t>(sgn(a) / sgn(b));
        break;
      case Op::DIVU:
        out.value = b == 0 ? ~0ull : a / b;
        break;
      case Op::REM:
        if (b == 0)
            out.value = a;
        else if (sgn(a) == INT64_MIN && sgn(b) == -1)
            out.value = 0;
        else
            out.value = static_cast<std::uint64_t>(sgn(a) % sgn(b));
        break;
      case Op::REMU:
        out.value = b == 0 ? a : a % b;
        break;

      case Op::LUI:
        out.value = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(inst.imm) << 12);
        break;
      case Op::AUIPC:
        out.value = pc
                    + static_cast<std::uint64_t>(
                          static_cast<std::int64_t>(inst.imm) << 12);
        break;

      case Op::BEQ: out.taken = ra_val == rb_val; break;
      case Op::BNE: out.taken = ra_val != rb_val; break;
      case Op::BLT: out.taken = sgn(ra_val) < sgn(rb_val); break;
      case Op::BGE: out.taken = sgn(ra_val) >= sgn(rb_val); break;
      case Op::BLTU: out.taken = ra_val < rb_val; break;
      case Op::BGEU: out.taken = ra_val >= rb_val; break;

      case Op::JAL:
        out.value = pc + 4;
        out.taken = true;
        out.nextPc = directTarget(inst, pc);
        break;
      case Op::JALR:
        out.value = pc + 4;
        out.taken = true;
        out.nextPc =
            (rb_val
             + static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(inst.imm)))
            & ~1ull;
        break;

      case Op::LB: case Op::LBU: case Op::LH: case Op::LHU:
      case Op::LW: case Op::LWU: case Op::LD:
        out.memAddr =
            rb_val
            + static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(inst.imm));
        break;

      case Op::SB: case Op::SH: case Op::SW: case Op::SD:
        out.memAddr =
            rb_val
            + static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(inst.imm));
        out.storeData = ra_val;
        break;

      case Op::HALT: case Op::PUTC: case Op::PUTI:
        break; // side effects applied by the caller at commit

      case Op::NUM_OPS:
        VSIM_PANIC("evaluate on NUM_OPS");
    }

    if (inst.isCondBranch() && out.taken)
        out.nextPc = directTarget(inst, pc);
    return out;
}

} // namespace vsim::arch
