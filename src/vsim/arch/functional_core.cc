#include "functional_core.hh"

#include "exec.hh"
#include "vsim/base/logging.hh"

namespace vsim::arch
{

ArchState
loadProgram(const assembler::Program &prog)
{
    ArchState st;
    for (std::size_t i = 0; i < prog.text.size(); ++i)
        st.mem.write(prog.textBase + 4 * i, prog.text[i], 4);
    if (!prog.data.empty())
        st.mem.writeBlock(prog.dataBase, prog.data.data(),
                          prog.data.size());
    st.setReg(2, prog.stackTop); // sp
    st.pc = prog.entry;
    return st;
}

bool
FunctionalCore::step(TraceEntry *entry_out)
{
    if (st.halted)
        return false;

    const std::uint64_t word = st.mem.read(st.pc, 4);
    const auto decoded = isa::decode(static_cast<std::uint32_t>(word));
    if (!decoded) {
        VSIM_FATAL("illegal instruction at pc=0x", std::hex, st.pc,
                   " word=0x", word);
    }
    const isa::Inst inst = *decoded;

    ExecOut out = evaluate(inst, st.pc, st.reg(inst.ra), st.reg(inst.rb),
                           st.reg(inst.rc));

    if (inst.isLoad()) {
        const std::uint64_t raw = st.mem.read(out.memAddr, inst.memSize());
        out.value = loadExtend(inst, raw);
    } else if (inst.isStore()) {
        st.mem.write(out.memAddr, out.storeData, inst.memSize());
    } else if (inst.isSystem()) {
        switch (inst.op) {
          case isa::Op::HALT:
            st.halted = true;
            st.exitCode = st.reg(inst.ra);
            break;
          case isa::Op::PUTC:
            st.output.push_back(static_cast<char>(st.reg(inst.ra)));
            break;
          case isa::Op::PUTI:
            st.output += std::to_string(
                static_cast<std::int64_t>(st.reg(inst.ra)));
            break;
          default:
            VSIM_PANIC("unknown system op");
        }
    }

    if (entry_out) {
        entry_out->pc = st.pc;
        entry_out->value = out.value;
        entry_out->nextPc = st.halted ? st.pc : out.nextPc;
        entry_out->memAddr = inst.isMem() ? out.memAddr : 0;
        entry_out->inst = inst;
    }

    if (int dest = inst.destReg(); dest >= 0)
        st.setReg(dest, out.value);
    if (!st.halted)
        st.pc = out.nextPc;
    ++executed;
    return !st.halted;
}

std::uint64_t
FunctionalCore::run(std::uint64_t max_insts)
{
    while (!st.halted) {
        if (executed >= max_insts) {
            VSIM_FATAL("program did not halt within ", max_insts,
                       " instructions (pc=0x", std::hex, st.pc, ")");
        }
        step();
    }
    return executed;
}

ExecTrace
preExecute(const assembler::Program &prog, std::uint64_t max_insts)
{
    FunctionalCore core(prog);
    ExecTrace trace;
    while (!core.state().halted) {
        if (trace.entries.size() >= max_insts) {
            VSIM_FATAL("pre-execution did not halt within ", max_insts,
                       " instructions");
        }
        // Record in place: a second copy per entry is measurable over
        // a multi-gigabyte trace.
        trace.entries.emplace_back();
        core.step(&trace.entries.back());
    }
    trace.output = core.state().output;
    trace.exitCode = core.state().exitCode;
    return trace;
}

} // namespace vsim::arch
