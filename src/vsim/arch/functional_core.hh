/**
 * @file
 * Architectural state and in-order functional execution of VRISC
 * programs. Used three ways:
 *   1. standalone reference execution (tests, Table 1 counts),
 *   2. pre-execution pass that records the dynamic trace consumed by
 *      the timing simulator's oracle facilities (immediate predictor
 *      update and oracle confidence, paper §5.2),
 *   3. golden model the out-of-order core is checked against.
 */

#ifndef VSIM_ARCH_FUNCTIONAL_CORE_HH
#define VSIM_ARCH_FUNCTIONAL_CORE_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "vsim/assembler/program.hh"
#include "vsim/isa/isa.hh"
#include "vsim/mem/mem_image.hh"

namespace vsim::arch
{

/** Complete architected state of a VRISC machine. */
struct ArchState
{
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    std::uint64_t pc = 0;
    mem::MemImage mem;

    std::string output;   //!< bytes emitted by PUTC/PUTI
    bool halted = false;
    std::uint64_t exitCode = 0;

    std::uint64_t
    reg(int r) const
    {
        return r == 0 ? 0 : regs[static_cast<std::size_t>(r)];
    }

    void
    setReg(int r, std::uint64_t v)
    {
        if (r != 0)
            regs[static_cast<std::size_t>(r)] = v;
    }
};

/** Load @p prog into a fresh state (text+data+sp+entry). */
ArchState loadProgram(const assembler::Program &prog);

/** One dynamic instruction of the recorded correct-path trace. */
struct TraceEntry
{
    std::uint64_t pc = 0;
    std::uint64_t value = 0;   //!< destination-register result (if any)
    std::uint64_t nextPc = 0;
    std::uint64_t memAddr = 0; //!< effective address; 0 for non-memory
    isa::Inst inst;
};

/** Result of a complete functional pre-execution. */
struct ExecTrace
{
    std::vector<TraceEntry> entries;
    std::string output;
    std::uint64_t exitCode = 0;
};

class FunctionalCore
{
  public:
    explicit FunctionalCore(const assembler::Program &prog)
        : st(loadProgram(prog))
    {}

    explicit FunctionalCore(ArchState initial) : st(std::move(initial)) {}

    /**
     * Execute one instruction.
     * @param entry_out optional slot receiving the trace record
     * @return false once the machine has halted
     * @throws vsim::FatalError on an illegal instruction
     */
    bool step(TraceEntry *entry_out = nullptr);

    /**
     * Run until HALT or @p max_insts executed instructions.
     * @return number of instructions executed
     * @throws vsim::FatalError if the limit is hit before HALT
     */
    std::uint64_t run(std::uint64_t max_insts);

    const ArchState &state() const { return st; }
    ArchState &state() { return st; }
    std::uint64_t instCount() const { return executed; }

  private:
    ArchState st;
    std::uint64_t executed = 0;
};

/**
 * Full pre-execution: run @p prog to completion on a scratch copy of
 * its memory and record every dynamic instruction.
 * @throws vsim::FatalError if the program does not halt within
 *         @p max_insts instructions
 */
ExecTrace preExecute(const assembler::Program &prog,
                     std::uint64_t max_insts = 500'000'000);

} // namespace vsim::arch

#endif // VSIM_ARCH_FUNCTIONAL_CORE_HH
