#include "bbv.hh"

#include "vsim/base/logging.hh"

namespace vsim::arch
{

std::size_t
bbvBucket(std::uint64_t block_start_pc)
{
    // SplitMix64 finalizer: full-avalanche, fixed constants, no state.
    std::uint64_t z = block_start_pc + 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return static_cast<std::size_t>(z % kBbvDim);
}

BbvAccumulator::BbvAccumulator(std::uint64_t interval_insts)
    : period(interval_insts)
{
    VSIM_ASSERT(period > 0, "BBV interval length must be > 0");
}

void
BbvAccumulator::finish()
{
    if (fill > 0) {
        intervals_.push_back(current);
        current = Bbv{};
        fill = 0;
    }
}

std::vector<Bbv>
profileBbv(const ExecTrace &trace, std::uint64_t interval_insts)
{
    BbvAccumulator acc(interval_insts);
    for (const TraceEntry &e : trace.entries)
        acc.step(e);
    acc.finish();
    return acc.intervals();
}

} // namespace vsim::arch
