/**
 * @file
 * Basic-block-vector (BBV) profiling of the correct-path instruction
 * stream — the fingerprinting half of SimPoint-style sampled
 * simulation (Sherwood et al., ASPLOS'02; applied here to the value-
 * speculation model space of Sazeides, HPCA'02).
 *
 * The dynamic trace is cut into fixed-length intervals of K
 * instructions. Within an interval, every retired instruction is
 * charged to the basic block it belongs to — a block is the run of
 * instructions from one control-transfer target to the next control
 * transfer (any taken-or-not branch/jump ends a block) — and the
 * per-block execution counts form the interval's vector. Block
 * identity is the block's dynamic start PC, hashed into a fixed
 * kBbvDim-dimensional projection so the vector size is independent of
 * program size (the random-projection trick from the SimPoint line of
 * work; collisions only ever make two intervals look more similar,
 * which is conservative for clustering).
 *
 * The vectors hold raw integer instruction counts — each interval's
 * components sum to exactly its instruction count — and the hash is a
 * fixed-constant mix, so profiles are bit-identical across hosts,
 * worker counts and repeat runs. Normalization happens later, in the
 * clusterer (vsim/sim/sample.hh), which is the only consumer that
 * wants scale-free shapes.
 *
 * The profile is computed from the recorded ExecTrace — the output of
 * the cheap correct-path pass (preExecute / trace replay) that sharded
 * and sampled simulation already materialize — so profiling adds one
 * linear walk over entries, no second functional execution.
 */

#ifndef VSIM_ARCH_BBV_HH
#define VSIM_ARCH_BBV_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "functional_core.hh"

namespace vsim::arch
{

/** Projected BBV dimension. Big enough that the handful of hot blocks
 *  of a phase rarely collide; small enough that k-means over tens of
 *  thousands of intervals stays cheap. */
inline constexpr std::size_t kBbvDim = 32;

/** One interval's basic-block vector: instruction counts per hashed
 *  block-ID bucket. Components sum to the interval's length. */
using Bbv = std::array<std::uint64_t, kBbvDim>;

/** Deterministic block-ID projection: SplitMix64 finalizer of the
 *  block's start PC, reduced mod kBbvDim. */
std::size_t bbvBucket(std::uint64_t block_start_pc);

/**
 * Incremental BBV profiler: feed retired instructions in trace order
 * via step(), read the finished per-interval vectors back from
 * intervals(). The accumulator rolls over to a new interval every
 * @p interval_insts instructions; finish() flushes the trailing
 * partial interval (if any).
 */
class BbvAccumulator
{
  public:
    explicit BbvAccumulator(std::uint64_t interval_insts);

    /** Account one retired instruction (in trace order). */
    void
    step(const TraceEntry &e)
    {
        if (newBlock)
            bucket = bbvBucket(e.pc);
        ++current[bucket];
        newBlock = e.inst.isControl();
        if (++fill == period) {
            intervals_.push_back(current);
            current = Bbv{};
            fill = 0;
        }
    }

    /** Flush the trailing partial interval, if any instructions are
     *  pending. Idempotent; step() must not be called afterwards. */
    void finish();

    /** Finished per-interval vectors, in trace order. */
    const std::vector<Bbv> &intervals() const { return intervals_; }

  private:
    std::uint64_t period;
    std::uint64_t fill = 0;
    std::size_t bucket = 0;
    bool newBlock = true; //!< next instruction starts a basic block
    Bbv current{};
    std::vector<Bbv> intervals_;
};

/**
 * Profile a whole recorded trace: one Bbv per @p interval_insts
 * instructions of @p trace (the last interval may be short). The
 * number of vectors is ceil(entries / K); an empty trace yields none.
 */
std::vector<Bbv> profileBbv(const ExecTrace &trace,
                            std::uint64_t interval_insts);

} // namespace vsim::arch

#endif // VSIM_ARCH_BBV_HH
