#include "assembler.hh"

#include <cctype>
#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "vsim/base/logging.hh"
#include "vsim/isa/isa.hh"

namespace vsim::assembler
{

namespace
{

using isa::Inst;
using isa::Op;

/** How a pending instruction consumes a label in pass 2. */
enum class Fixup : std::uint8_t
{
    None,          //!< fully resolved already
    BranchOffset,  //!< imm <- (label - pc) / 4
    LaHi,          //!< imm <- hi20 of absolute label address
    LaLo,          //!< imm <- lo12 of absolute label address
};

struct PendingInst
{
    Inst inst;
    Fixup fixup = Fixup::None;
    std::string label;
    int line = 0;
};

struct DataItem
{
    std::uint64_t offset; //!< offset within the data section
    std::vector<std::uint8_t> bytes;
};

class Assembler
{
  public:
    Assembler(const std::string &source, const std::string &name)
        : source(source), unit(name)
    {}

    Program run();

  private:
    // ---- diagnostics -------------------------------------------------
    void
    error(int line, const std::string &msg)
    {
        std::ostringstream os;
        os << unit << ":" << line << ": " << msg;
        errors.push_back(os.str());
    }

    // ---- tokenizing --------------------------------------------------
    static std::string stripComment(const std::string &line);
    static std::vector<std::string> splitOperands(const std::string &s,
                                                  bool &bad_quote);

    // ---- operand parsing ---------------------------------------------
    std::optional<std::int64_t> parseImm(const std::string &tok, int line);
    int parseReg(const std::string &tok, int line);
    bool parseMemOperand(const std::string &tok, int line, int &base,
                         std::int64_t &offset);

    // ---- emission ----------------------------------------------------
    void emit(const Inst &inst, int line, Fixup fixup = Fixup::None,
              const std::string &label = {});
    void emitLi(int rd, std::int64_t value, int line);
    void emitLa(int rd, const std::string &label, int line);

    void processLine(const std::string &raw, int line);
    void processDirective(const std::string &mnem,
                          const std::vector<std::string> &ops, int line);
    void processInstruction(const std::string &mnem,
                            const std::vector<std::string> &ops, int line);

    void defineLabel(const std::string &name, int line);
    void resolveFixups(Program &prog);

    std::uint64_t
    textPc() const
    {
        return kTextBase + 4 * pending.size();
    }

    // ---- state ---------------------------------------------------------
    const std::string &source;
    std::string unit;
    std::vector<std::string> errors;

    bool inText = true;
    std::vector<PendingInst> pending;
    std::vector<std::uint8_t> data;
    std::map<std::string, std::uint64_t> symbols;
    std::map<std::string, std::int64_t> equates;
};

std::string
Assembler::stripComment(const std::string &line)
{
    bool in_str = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        char c = line[i];
        if (c == '"' && (i == 0 || line[i - 1] != '\\'))
            in_str = !in_str;
        if (!in_str && (c == '#' || c == ';'))
            return line.substr(0, i);
    }
    return line;
}

std::vector<std::string>
Assembler::splitOperands(const std::string &s, bool &bad_quote)
{
    std::vector<std::string> out;
    std::string cur;
    bool in_str = false, in_chr = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (c == '"' && !in_chr && (i == 0 || s[i - 1] != '\\'))
            in_str = !in_str;
        if (c == '\'' && !in_str && (i == 0 || s[i - 1] != '\\'))
            in_chr = !in_chr;
        if (c == ',' && !in_str && !in_chr) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    out.push_back(cur);
    bad_quote = in_str || in_chr;

    for (auto &tok : out) {
        std::size_t b = tok.find_first_not_of(" \t");
        std::size_t e = tok.find_last_not_of(" \t");
        tok = b == std::string::npos ? "" : tok.substr(b, e - b + 1);
    }
    while (!out.empty() && out.back().empty())
        out.pop_back();
    return out;
}

namespace
{

std::optional<char>
unescape(char c)
{
    switch (c) {
      case 'n': return '\n';
      case 't': return '\t';
      case 'r': return '\r';
      case '0': return '\0';
      case '\\': return '\\';
      case '\'': return '\'';
      case '"': return '"';
      default: return std::nullopt;
    }
}

} // namespace

std::optional<std::int64_t>
Assembler::parseImm(const std::string &tok, int line)
{
    if (tok.empty()) {
        error(line, "empty immediate");
        return std::nullopt;
    }
    // character literal
    if (tok.front() == '\'') {
        if (tok.size() == 3 && tok.back() == '\'')
            return static_cast<std::int64_t>(tok[1]);
        if (tok.size() == 4 && tok[1] == '\\' && tok.back() == '\'') {
            if (auto c = unescape(tok[2]))
                return static_cast<std::int64_t>(*c);
        }
        error(line, "bad character literal " + tok);
        return std::nullopt;
    }
    // .equ constant
    if (auto it = equates.find(tok); it != equates.end())
        return it->second;

    // integer literal (decimal or 0x hex, optional leading -)
    std::size_t pos = 0;
    bool neg = false;
    if (tok[pos] == '-') {
        neg = true;
        ++pos;
    }
    if (pos >= tok.size())
        return std::nullopt;
    int base = 10;
    if (tok.size() - pos > 2 && tok[pos] == '0'
        && (tok[pos + 1] == 'x' || tok[pos + 1] == 'X')) {
        base = 16;
        pos += 2;
    }
    std::uint64_t value = 0;
    for (; pos < tok.size(); ++pos) {
        char c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(tok[pos])));
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else
            return std::nullopt; // not an integer (may be a label)
        value = value * static_cast<unsigned>(base)
                + static_cast<unsigned>(digit);
    }
    auto sval = static_cast<std::int64_t>(value);
    return neg ? -sval : sval;
}

int
Assembler::parseReg(const std::string &tok, int line)
{
    int r = isa::parseRegName(tok);
    if (r < 0)
        error(line, "expected register, got '" + tok + "'");
    return r < 0 ? 0 : r;
}

bool
Assembler::parseMemOperand(const std::string &tok, int line, int &base,
                           std::int64_t &offset)
{
    std::size_t lp = tok.find('(');
    std::size_t rp = tok.rfind(')');
    if (lp == std::string::npos || rp == std::string::npos || rp < lp) {
        error(line, "expected mem operand 'imm(reg)', got '" + tok + "'");
        return false;
    }
    std::string imm_part = tok.substr(0, lp);
    std::string reg_part = tok.substr(lp + 1, rp - lp - 1);
    offset = 0;
    if (!imm_part.empty()) {
        auto v = parseImm(imm_part, line);
        if (!v) {
            error(line, "bad mem offset '" + imm_part + "'");
            return false;
        }
        offset = *v;
    }
    base = parseReg(reg_part, line);
    return true;
}

void
Assembler::emit(const Inst &inst, int line, Fixup fixup,
                const std::string &label)
{
    if (!inText) {
        error(line, "instruction outside .text section");
        return;
    }
    // Range-check immediates here so a bad user immediate is a
    // diagnosed assembly error, not an encoder panic. Label-dependent
    // immediates are checked after fixup resolution instead.
    if (fixup == Fixup::None) {
        const isa::OpInfo &oi = inst.info();
        if (oi.fmt == isa::Format::F_RRI
            && (inst.imm < -(1 << 14) || inst.imm >= (1 << 14))) {
            error(line, "immediate " + std::to_string(inst.imm)
                            + " does not fit in 15 bits (use li)");
            return;
        }
        if (oi.fmt == isa::Format::F_RI20
            && (inst.imm < -(1 << 19) || inst.imm >= (1 << 19))) {
            error(line, "immediate " + std::to_string(inst.imm)
                            + " does not fit in 20 bits");
            return;
        }
    }
    pending.push_back({inst, fixup, label, line});
}

void
Assembler::emitLi(int rd, std::int64_t value, int line)
{
    auto fits = [](std::int64_t v, int bits) {
        return v >= -(std::int64_t(1) << (bits - 1))
               && v < (std::int64_t(1) << (bits - 1));
    };

    if (fits(value, 15)) {
        emit({Op::ADDI, static_cast<std::uint8_t>(rd), 0, 0,
              static_cast<std::int32_t>(value)},
             line);
        return;
    }
    if (fits(value, 32)) {
        const std::int32_t lo = static_cast<std::int32_t>(value & 0xfff);
        const std::int32_t hi =
            static_cast<std::int32_t>((value - lo) >> 12);
        emit({Op::LUI, static_cast<std::uint8_t>(rd), 0, 0, hi}, line);
        if (lo != 0) {
            emit({Op::ADDI, static_cast<std::uint8_t>(rd),
                  static_cast<std::uint8_t>(rd), 0, lo},
                 line);
        }
        return;
    }

    // General 64-bit constant: build the upper 32 bits, then shift in
    // the lower 32 bits through zero-extended 11/11/10-bit chunks
    // (ORI sign-extends, so chunks stay below 2^14).
    emitLi(rd, value >> 32, line);
    const std::uint32_t low = static_cast<std::uint32_t>(value);
    const std::uint8_t rdb = static_cast<std::uint8_t>(rd);
    emit({Op::SLLI, rdb, rdb, 0, 11}, line);
    emit({Op::ORI, rdb, rdb, 0,
          static_cast<std::int32_t>((low >> 21) & 0x7ff)}, line);
    emit({Op::SLLI, rdb, rdb, 0, 11}, line);
    emit({Op::ORI, rdb, rdb, 0,
          static_cast<std::int32_t>((low >> 10) & 0x7ff)}, line);
    emit({Op::SLLI, rdb, rdb, 0, 10}, line);
    emit({Op::ORI, rdb, rdb, 0,
          static_cast<std::int32_t>(low & 0x3ff)}, line);
}

void
Assembler::emitLa(int rd, const std::string &label, int line)
{
    // Fixed two-instruction expansion so pass-1 sizing never depends
    // on the label's final address (addresses stay below 2^31).
    const std::uint8_t rdb = static_cast<std::uint8_t>(rd);
    emit({Op::LUI, rdb, 0, 0, 0}, line, Fixup::LaHi, label);
    emit({Op::ADDI, rdb, rdb, 0, 0}, line, Fixup::LaLo, label);
}

void
Assembler::defineLabel(const std::string &name, int line)
{
    if (symbols.count(name)) {
        error(line, "duplicate label '" + name + "'");
        return;
    }
    symbols[name] =
        inText ? textPc() : kDataBase + data.size();
}

void
Assembler::processDirective(const std::string &mnem,
                            const std::vector<std::string> &ops, int line)
{
    auto need_data = [&]() {
        if (inText) {
            error(line, mnem + " outside .data section");
            return false;
        }
        return true;
    };

    if (mnem == ".text") {
        inText = true;
    } else if (mnem == ".data") {
        inText = false;
    } else if (mnem == ".global" || mnem == ".globl") {
        // accepted for compatibility; has no effect
    } else if (mnem == ".equ") {
        if (ops.size() != 2) {
            error(line, ".equ needs NAME, value");
            return;
        }
        auto v = parseImm(ops[1], line);
        if (!v) {
            error(line, "bad .equ value '" + ops[1] + "'");
            return;
        }
        equates[ops[0]] = *v;
    } else if (mnem == ".align") {
        if (!need_data())
            return;
        auto v = ops.size() == 1 ? parseImm(ops[0], line) : std::nullopt;
        if (!v || *v <= 0 || (*v & (*v - 1)) != 0) {
            error(line, ".align needs a power-of-two byte count");
            return;
        }
        while (data.size() % static_cast<std::uint64_t>(*v) != 0)
            data.push_back(0);
    } else if (mnem == ".space") {
        if (!need_data())
            return;
        auto v = ops.size() == 1 ? parseImm(ops[0], line) : std::nullopt;
        if (!v || *v < 0) {
            error(line, ".space needs a non-negative size");
            return;
        }
        data.insert(data.end(), static_cast<std::size_t>(*v), 0);
    } else if (mnem == ".byte" || mnem == ".half" || mnem == ".word"
               || mnem == ".dword") {
        if (!need_data())
            return;
        int size = mnem == ".byte" ? 1
                   : mnem == ".half" ? 2
                   : mnem == ".word" ? 4 : 8;
        for (const auto &op : ops) {
            auto v = parseImm(op, line);
            std::int64_t value = 0;
            if (v) {
                value = *v;
            } else if (auto it = symbols.find(op); it != symbols.end()) {
                value = static_cast<std::int64_t>(it->second);
            } else {
                error(line, "bad " + mnem + " value '" + op + "'");
                continue;
            }
            for (int i = 0; i < size; ++i)
                data.push_back(
                    static_cast<std::uint8_t>(value >> (8 * i)));
        }
    } else if (mnem == ".ascii" || mnem == ".asciiz") {
        if (!need_data())
            return;
        if (ops.size() != 1 || ops[0].size() < 2 || ops[0].front() != '"'
            || ops[0].back() != '"') {
            error(line, mnem + " needs one quoted string");
            return;
        }
        const std::string &s = ops[0];
        for (std::size_t i = 1; i + 1 < s.size(); ++i) {
            char c = s[i];
            if (c == '\\' && i + 2 < s.size()) {
                if (auto e = unescape(s[i + 1])) {
                    c = *e;
                    ++i;
                }
            }
            data.push_back(static_cast<std::uint8_t>(c));
        }
        if (mnem == ".asciiz")
            data.push_back(0);
    } else {
        error(line, "unknown directive '" + mnem + "'");
    }
}

void
Assembler::processInstruction(const std::string &mnem,
                              const std::vector<std::string> &ops,
                              int line)
{
    auto nops = ops.size();
    auto expect = [&](std::size_t n) {
        if (nops != n) {
            std::ostringstream os;
            os << mnem << " expects " << n << " operand(s), got " << nops;
            error(line, os.str());
            return false;
        }
        return true;
    };
    auto reg = [&](std::size_t i) { return parseReg(ops[i], line); };
    auto imm_or_label = [&](std::size_t i, Inst inst, Fixup fixup) {
        if (auto v = parseImm(ops[i], line)) {
            inst.imm = static_cast<std::int32_t>(*v);
            emit(inst, line);
        } else {
            emit(inst, line, fixup, ops[i]);
        }
    };

    // Resolve the mnemonic against real opcodes first.
    Op op = Op::NUM_OPS;
    for (int i = 0; i < isa::kNumOps; ++i) {
        if (mnem == isa::opInfo(static_cast<Op>(i)).name) {
            op = static_cast<Op>(i);
            break;
        }
    }

    if (op != Op::NUM_OPS) {
        const isa::OpInfo &oi = isa::opInfo(op);
        Inst inst;
        inst.op = op;
        switch (oi.cls) {
          case isa::ExecClass::Load:
          case isa::ExecClass::Store: {
            if (!expect(2))
                return;
            inst.ra = static_cast<std::uint8_t>(reg(0));
            int base;
            std::int64_t off;
            if (!parseMemOperand(ops[1], line, base, off))
                return;
            inst.rb = static_cast<std::uint8_t>(base);
            inst.imm = static_cast<std::int32_t>(off);
            emit(inst, line);
            return;
          }
          case isa::ExecClass::System:
            if (op == Op::HALT && nops == 0) {
                emit(inst, line); // halt with exit code in x0 (= 0)
                return;
            }
            if (!expect(1))
                return;
            inst.ra = static_cast<std::uint8_t>(reg(0));
            emit(inst, line);
            return;
          default:
            break;
        }
        switch (oi.fmt) {
          case isa::Format::F_RRR:
            if (!expect(3))
                return;
            inst.ra = static_cast<std::uint8_t>(reg(0));
            inst.rb = static_cast<std::uint8_t>(reg(1));
            inst.rc = static_cast<std::uint8_t>(reg(2));
            emit(inst, line);
            return;
          case isa::Format::F_RRI:
            if (!expect(3))
                return;
            inst.ra = static_cast<std::uint8_t>(reg(0));
            inst.rb = static_cast<std::uint8_t>(reg(1));
            if (inst.isCondBranch()) {
                imm_or_label(2, inst, Fixup::BranchOffset);
            } else {
                auto v = parseImm(ops[2], line);
                if (!v) {
                    error(line, "bad immediate '" + ops[2] + "'");
                    return;
                }
                inst.imm = static_cast<std::int32_t>(*v);
                emit(inst, line);
            }
            return;
          case isa::Format::F_RI20:
            if (op == Op::JAL && nops == 1) {
                // `jal target` implies rd = ra
                inst.ra = 1;
                imm_or_label(0, inst, Fixup::BranchOffset);
                return;
            }
            if (!expect(2))
                return;
            inst.ra = static_cast<std::uint8_t>(reg(0));
            if (op == Op::JAL) {
                imm_or_label(1, inst, Fixup::BranchOffset);
            } else {
                auto v = parseImm(ops[1], line);
                if (!v) {
                    error(line, "bad immediate '" + ops[1] + "'");
                    return;
                }
                inst.imm = static_cast<std::int32_t>(*v);
                emit(inst, line);
            }
            return;
        }
    }

    // ---- pseudo-instructions ----------------------------------------
    auto cond_branch = [&](Op real, bool swap) {
        if (!expect(3))
            return;
        Inst inst;
        inst.op = real;
        inst.ra = static_cast<std::uint8_t>(reg(swap ? 1 : 0));
        inst.rb = static_cast<std::uint8_t>(reg(swap ? 0 : 1));
        imm_or_label(2, inst, Fixup::BranchOffset);
    };
    auto zero_branch = [&](Op real, bool rs_first) {
        if (!expect(2))
            return;
        Inst inst;
        inst.op = real;
        if (rs_first) {
            inst.ra = static_cast<std::uint8_t>(reg(0));
            inst.rb = 0;
        } else {
            inst.ra = 0;
            inst.rb = static_cast<std::uint8_t>(reg(0));
        }
        imm_or_label(1, inst, Fixup::BranchOffset);
    };

    if (mnem == "nop") {
        if (expect(0))
            emit({Op::ADDI, 0, 0, 0, 0}, line);
    } else if (mnem == "mv") {
        if (expect(2))
            emit({Op::ADDI, static_cast<std::uint8_t>(reg(0)),
                  static_cast<std::uint8_t>(reg(1)), 0, 0}, line);
    } else if (mnem == "not") {
        if (expect(2))
            emit({Op::XORI, static_cast<std::uint8_t>(reg(0)),
                  static_cast<std::uint8_t>(reg(1)), 0, -1}, line);
    } else if (mnem == "neg") {
        if (expect(2))
            emit({Op::SUB, static_cast<std::uint8_t>(reg(0)), 0,
                  static_cast<std::uint8_t>(reg(1)), 0}, line);
    } else if (mnem == "li") {
        if (!expect(2))
            return;
        auto v = parseImm(ops[1], line);
        if (!v) {
            error(line, "li needs a numeric immediate (use la for labels)");
            return;
        }
        emitLi(reg(0), *v, line);
    } else if (mnem == "la") {
        if (!expect(2))
            return;
        emitLa(reg(0), ops[1], line);
    } else if (mnem == "j") {
        if (!expect(1))
            return;
        Inst inst{Op::JAL, 0, 0, 0, 0};
        imm_or_label(0, inst, Fixup::BranchOffset);
    } else if (mnem == "jr") {
        if (expect(1))
            emit({Op::JALR, 0, static_cast<std::uint8_t>(reg(0)), 0, 0},
                 line);
    } else if (mnem == "ret") {
        if (expect(0))
            emit({Op::JALR, 0, 1, 0, 0}, line);
    } else if (mnem == "call") {
        if (!expect(1))
            return;
        Inst inst{Op::JAL, 1, 0, 0, 0};
        imm_or_label(0, inst, Fixup::BranchOffset);
    } else if (mnem == "seqz") {
        if (expect(2))
            emit({Op::SLTIU, static_cast<std::uint8_t>(reg(0)),
                  static_cast<std::uint8_t>(reg(1)), 0, 1}, line);
    } else if (mnem == "snez") {
        if (expect(2))
            emit({Op::SLTU, static_cast<std::uint8_t>(reg(0)), 0,
                  static_cast<std::uint8_t>(reg(1)), 0}, line);
    } else if (mnem == "beqz") {
        zero_branch(Op::BEQ, true);
    } else if (mnem == "bnez") {
        zero_branch(Op::BNE, true);
    } else if (mnem == "bltz") {
        zero_branch(Op::BLT, true);
    } else if (mnem == "bgez") {
        zero_branch(Op::BGE, true);
    } else if (mnem == "blez") { // rs <= 0  <=>  0 >= rs
        zero_branch(Op::BGE, false);
    } else if (mnem == "bgtz") { // rs > 0   <=>  0 < rs
        zero_branch(Op::BLT, false);
    } else if (mnem == "bgt") {
        cond_branch(Op::BLT, true);
    } else if (mnem == "ble") {
        cond_branch(Op::BGE, true);
    } else if (mnem == "bgtu") {
        cond_branch(Op::BLTU, true);
    } else if (mnem == "bleu") {
        cond_branch(Op::BGEU, true);
    } else {
        error(line, "unknown mnemonic '" + mnem + "'");
    }
}

void
Assembler::processLine(const std::string &raw, int line)
{
    std::string text = stripComment(raw);

    // Peel off any leading labels (outside quotes, ':' only appears in
    // labels in this grammar).
    for (;;) {
        std::size_t b = text.find_first_not_of(" \t");
        if (b == std::string::npos)
            return;
        std::size_t colon = text.find(':');
        std::size_t quote = text.find_first_of("\"'");
        if (colon == std::string::npos
            || (quote != std::string::npos && quote < colon)) {
            break;
        }
        std::string name = text.substr(b, colon - b);
        std::size_t ws = name.find_first_of(" \t");
        if (ws != std::string::npos) // e.g. "lw a0, 0(sp):" — not a label
            break;
        if (name.empty()) {
            error(line, "empty label");
            return;
        }
        defineLabel(name, line);
        text = text.substr(colon + 1);
    }

    std::size_t b = text.find_first_not_of(" \t");
    if (b == std::string::npos)
        return;
    std::size_t e = text.find_first_of(" \t", b);
    std::string mnem = text.substr(b, e == std::string::npos ? e : e - b);
    std::string rest = e == std::string::npos ? "" : text.substr(e);

    bool bad_quote = false;
    std::vector<std::string> ops = splitOperands(rest, bad_quote);
    if (bad_quote) {
        error(line, "unterminated string/char literal");
        return;
    }

    if (mnem[0] == '.')
        processDirective(mnem, ops, line);
    else
        processInstruction(mnem, ops, line);
}

void
Assembler::resolveFixups(Program &prog)
{
    for (std::size_t i = 0; i < pending.size(); ++i) {
        PendingInst &pi = pending[i];
        if (pi.fixup == Fixup::None)
            continue;
        auto it = symbols.find(pi.label);
        if (it == symbols.end()) {
            error(pi.line, "undefined label '" + pi.label + "'");
            continue;
        }
        const std::uint64_t addr = it->second;
        switch (pi.fixup) {
          case Fixup::BranchOffset: {
            const std::uint64_t pc = kTextBase + 4 * i;
            const std::int64_t delta =
                (static_cast<std::int64_t>(addr)
                 - static_cast<std::int64_t>(pc)) / 4;
            const bool is_jal = pi.inst.op == isa::Op::JAL;
            const std::int64_t bound = is_jal ? (1 << 19) : (1 << 14);
            if (delta < -bound || delta >= bound) {
                error(pi.line, "branch target '" + pi.label
                                   + "' out of range");
                continue;
            }
            pi.inst.imm = static_cast<std::int32_t>(delta);
            break;
          }
          case Fixup::LaHi: {
            const std::int64_t lo =
                static_cast<std::int64_t>(addr) & 0xfff;
            pi.inst.imm = static_cast<std::int32_t>(
                (static_cast<std::int64_t>(addr) - lo) >> 12);
            break;
          }
          case Fixup::LaLo:
            pi.inst.imm = static_cast<std::int32_t>(addr & 0xfff);
            break;
          case Fixup::None:
            break;
        }
    }
    for (const auto &pi : pending)
        prog.text.push_back(isa::encode(pi.inst));
}

Program
Assembler::run()
{
    std::istringstream is(source);
    std::string line_text;
    int line = 0;
    while (std::getline(is, line_text))
        processLine(line_text, ++line);

    Program prog;
    if (errors.empty())
        resolveFixups(prog);

    if (!errors.empty()) {
        std::ostringstream os;
        os << "assembly failed with " << errors.size() << " error(s):";
        for (const auto &err : errors)
            os << "\n  " << err;
        VSIM_FATAL(os.str());
    }

    prog.data = std::move(data);
    prog.symbols = symbols;
    if (auto it = symbols.find("_start"); it != symbols.end())
        prog.entry = it->second;
    return prog;
}

} // namespace

Program
assemble(const std::string &source, const std::string &name)
{
    Assembler as(source, name);
    return as.run();
}

} // namespace vsim::assembler
