/**
 * @file
 * Two-pass assembler for VRISC assembly text.
 *
 * Syntax summary:
 *   - comments: `#` or `;` to end of line
 *   - labels:   `name:` (may share a line with an instruction)
 *   - sections: `.text`, `.data`
 *   - data directives: `.byte`, `.half`, `.word`, `.dword`, `.space N`,
 *     `.ascii "s"`, `.asciiz "s"`, `.align N` (byte alignment, power
 *     of two)
 *   - constants: `.equ NAME, value` (must precede use)
 *   - immediates: decimal, 0x hex, negative, character 'c', or an
 *     .equ constant
 *   - pseudo-instructions: nop, mv, not, neg, li, la, j, jr, ret,
 *     call, seqz, snez, beqz, bnez, bltz, bgez, blez, bgtz, bgt, ble,
 *     bgtu, bleu
 *
 * Branch/jump operands may be labels (converted to word offsets) or
 * explicit numeric word offsets.
 */

#ifndef VSIM_ASSEMBLER_ASSEMBLER_HH
#define VSIM_ASSEMBLER_ASSEMBLER_HH

#include <string>

#include "program.hh"

namespace vsim::assembler
{

/**
 * Assemble VRISC source text into a Program.
 *
 * @param source   assembly text
 * @param name     name used in error messages (e.g. a file name)
 * @throws vsim::FatalError listing every diagnosed error with its
 *         line number
 */
Program assemble(const std::string &source,
                 const std::string &name = "<asm>");

} // namespace vsim::assembler

#endif // VSIM_ASSEMBLER_ASSEMBLER_HH
