/**
 * @file
 * Assembled-program image: text section, data section, entry point
 * and symbol table. Produced by the assembler, consumed by the
 * loader (vsim/arch) which materialises it into a MemImage.
 */

#ifndef VSIM_ASSEMBLER_PROGRAM_HH
#define VSIM_ASSEMBLER_PROGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vsim::assembler
{

/** Default placement of the three program regions (see DESIGN.md). */
constexpr std::uint64_t kTextBase = 0x1000;
constexpr std::uint64_t kDataBase = 0x100000;
constexpr std::uint64_t kStackTop = 0x800000;

/** A fully assembled VRISC program. */
struct Program
{
    /** Encoded instruction words, placed at textBase. */
    std::vector<std::uint32_t> text;

    /** Initialised data bytes, placed at dataBase. */
    std::vector<std::uint8_t> data;

    std::uint64_t textBase = kTextBase;
    std::uint64_t dataBase = kDataBase;
    std::uint64_t stackTop = kStackTop;

    /** Entry PC; label `_start` if present, else textBase. */
    std::uint64_t entry = kTextBase;

    /** Label -> absolute address (text labels) or data address. */
    std::map<std::string, std::uint64_t> symbols;

    /** Byte address one past the last text word. */
    std::uint64_t
    textEnd() const
    {
        return textBase + 4 * text.size();
    }
};

} // namespace vsim::assembler

#endif // VSIM_ASSEMBLER_PROGRAM_HH
