#include "stats.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "logging.hh"

namespace vsim
{

double
arithmeticMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
harmonicMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double sum = 0.0;
    for (double x : xs) {
        VSIM_ASSERT(x > 0.0, "harmonic mean needs positive samples");
        sum += 1.0 / x;
    }
    return static_cast<double>(xs.size()) / sum;
}

double
geometricMean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        VSIM_ASSERT(x > 0.0, "geometric mean needs positive samples");
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

void
TextTable::setHeader(std::vector<std::string> names)
{
    header = std::move(names);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::fmt(double value, int digits)
{
    if (!std::isfinite(value))
        return "n/a";
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(digits);
    os << value;
    return os.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c >= widths.size())
                widths.resize(c + 1, 0);
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit_row = [&](const std::vector<std::string> &row,
                        std::ostringstream &os) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            std::string cell = c < row.size() ? row[c] : "";
            os << cell;
            if (c + 1 < widths.size())
                os << std::string(widths[c] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    if (!header.empty()) {
        emit_row(header, os);
        std::size_t line = 0;
        for (std::size_t c = 0; c < widths.size(); ++c)
            line += widths[c] + (c + 1 < widths.size() ? 2 : 0);
        os << std::string(line, '-') << '\n';
    }
    for (const auto &row : rows)
        emit_row(row, os);
    return os.str();
}

} // namespace vsim
