#include "random.hh"

#include "logging.hh"

namespace vsim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

void
Xoshiro256::reseed(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : state)
        s = splitmix64(sm);
}

std::uint64_t
Xoshiro256::next()
{
    const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
    const std::uint64_t t = state[1] << 17;

    state[2] ^= state[0];
    state[3] ^= state[1];
    state[1] ^= state[2];
    state[0] ^= state[3];
    state[2] ^= t;
    state[3] = rotl(state[3], 45);

    return result;
}

std::uint64_t
Xoshiro256::nextBounded(std::uint64_t bound)
{
    VSIM_ASSERT(bound != 0, "nextBounded(0)");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Xoshiro256::nextRange(std::int64_t lo, std::int64_t hi)
{
    VSIM_ASSERT(lo <= hi, "nextRange with lo > hi");
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(nextBounded(span));
}

bool
Xoshiro256::nextBool(double p)
{
    return static_cast<double>(next() >> 11)
               * (1.0 / 9007199254740992.0)
           < p;
}

} // namespace vsim
