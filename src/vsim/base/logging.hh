/**
 * @file
 * Error reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() flags a simulator bug and
 * aborts; fatal() flags a user error (bad configuration, malformed
 * assembly input) and exits cleanly; warn()/inform() print status
 * without stopping the simulation.
 */

#ifndef VSIM_BASE_LOGGING_HH
#define VSIM_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace vsim
{

namespace detail
{

/** Stream-concatenate any set of arguments into a std::string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/**
 * Exception thrown by fatal() so that library users (and tests) can
 * trap user-level errors instead of terminating the process.
 */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : message(std::move(msg)) {}

    const char *what() const noexcept override { return message.c_str(); }

  private:
    std::string message;
};

} // namespace vsim

/** Simulator bug: print location and abort. */
#define VSIM_PANIC(...) \
    ::vsim::detail::panicImpl(__FILE__, __LINE__, \
                              ::vsim::detail::concat(__VA_ARGS__))

/** User error: throw vsim::FatalError with location info. */
#define VSIM_FATAL(...) \
    ::vsim::detail::fatalImpl(__FILE__, __LINE__, \
                              ::vsim::detail::concat(__VA_ARGS__))

/** Non-fatal warning to stderr. */
#define VSIM_WARN(...) \
    ::vsim::detail::warnImpl(::vsim::detail::concat(__VA_ARGS__))

/** Informational message to stderr. */
#define VSIM_INFORM(...) \
    ::vsim::detail::informImpl(::vsim::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds; panics on violation. */
#define VSIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            VSIM_PANIC("assertion failed: " #cond \
                       __VA_OPT__(, " -- ", __VA_ARGS__)); \
        } \
    } while (0)

#endif // VSIM_BASE_LOGGING_HH
