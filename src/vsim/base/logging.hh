/**
 * @file
 * Error reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() flags a simulator bug and
 * aborts; fatal() flags a user error (bad configuration, malformed
 * assembly input) and exits cleanly; warn()/inform()/debug() print
 * status without stopping the simulation.
 *
 * Status messages are gated by a log level (quiet < warn < info <
 * debug), initialised from the VSIM_LOG_LEVEL environment variable
 * (default: info, which preserves the historical behaviour), and
 * every message is written as one atomic line so multi-threaded sweep
 * workers never interleave stderr output mid-line.
 */

#ifndef VSIM_BASE_LOGGING_HH
#define VSIM_BASE_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace vsim
{

/** Severity gate for warn()/inform()/debug() messages. */
enum class LogLevel : int
{
    Quiet = 0, //!< suppress everything below panic/fatal
    Warn = 1,
    Info = 2, //!< default
    Debug = 3,
};

/** Current gate (env VSIM_LOG_LEVEL at startup, or setLogLevel). */
LogLevel logLevel();

/** Override the gate at runtime (tests, CLI flags). */
void setLogLevel(LogLevel level);

/**
 * Parse "quiet" / "warn" / "info" / "debug" (or "0".."3"). Returns
 * LogLevel::Info and sets *ok=false on anything else.
 */
LogLevel parseLogLevel(const std::string &text, bool *ok = nullptr);

/**
 * Write @p line (a full message, no trailing newline needed) to
 * stderr as one atomic line, regardless of the log level. Used for
 * explicitly requested output such as sweep --progress.
 */
void logLine(const std::string &line);

namespace detail
{

/** Stream-concatenate any set of arguments into a std::string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/**
 * Exception thrown by fatal() so that library users (and tests) can
 * trap user-level errors instead of terminating the process.
 */
class FatalError : public std::exception
{
  public:
    explicit FatalError(std::string msg) : message(std::move(msg)) {}

    const char *what() const noexcept override { return message.c_str(); }

  private:
    std::string message;
};

} // namespace vsim

/** Simulator bug: print location and abort. */
#define VSIM_PANIC(...) \
    ::vsim::detail::panicImpl(__FILE__, __LINE__, \
                              ::vsim::detail::concat(__VA_ARGS__))

/** User error: throw vsim::FatalError with location info. */
#define VSIM_FATAL(...) \
    ::vsim::detail::fatalImpl(__FILE__, __LINE__, \
                              ::vsim::detail::concat(__VA_ARGS__))

/** Non-fatal warning to stderr (suppressed below LogLevel::Warn). */
#define VSIM_WARN(...) \
    ::vsim::detail::warnImpl(::vsim::detail::concat(__VA_ARGS__))

/** Informational message to stderr (needs LogLevel::Info). */
#define VSIM_INFORM(...) \
    ::vsim::detail::informImpl(::vsim::detail::concat(__VA_ARGS__))

/** Debug chatter to stderr (needs LogLevel::Debug). */
#define VSIM_DEBUG(...) \
    ::vsim::detail::debugImpl(::vsim::detail::concat(__VA_ARGS__))

/** Invariant check that survives NDEBUG builds; panics on violation. */
#define VSIM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            VSIM_PANIC("assertion failed: " #cond \
                       __VA_OPT__(, " -- ", __VA_ARGS__)); \
        } \
    } while (0)

/**
 * Invariant check for hot paths: like VSIM_ASSERT in debug builds,
 * compiled out entirely under NDEBUG.
 */
#ifdef NDEBUG
#define VSIM_DEBUG_ASSERT(cond, ...) \
    do { \
    } while (0)
#else
#define VSIM_DEBUG_ASSERT(cond, ...) VSIM_ASSERT(cond, __VA_ARGS__)
#endif

#endif // VSIM_BASE_LOGGING_HH
