/**
 * @file
 * Deterministic pseudo-random number generator (xoshiro256**) used by
 * workload input generation and the differential fuzz tests. Kept
 * self-contained so experiment results are reproducible across
 * standard-library implementations (std::mt19937 streams are
 * standardised, but distributions are not).
 */

#ifndef VSIM_BASE_RANDOM_HH
#define VSIM_BASE_RANDOM_HH

#include <cstdint>

namespace vsim
{

/** xoshiro256** by Blackman & Vigna (public domain algorithm). */
class Xoshiro256
{
  public:
    explicit Xoshiro256(std::uint64_t seed) { reseed(seed); }

    /** Re-seed via splitmix64 so any 64-bit seed gives a good state. */
    void reseed(std::uint64_t seed);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Bernoulli draw with probability @p p of true. */
    bool nextBool(double p = 0.5);

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace vsim

#endif // VSIM_BASE_RANDOM_HH
