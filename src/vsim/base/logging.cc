#include "logging.hh"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace vsim
{

namespace
{

std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

LogLevel
initialLevel()
{
    const char *env = std::getenv("VSIM_LOG_LEVEL");
    if (!env)
        return LogLevel::Info;
    bool ok = false;
    const LogLevel level = parseLogLevel(env, &ok);
    if (!ok) {
        // Not gated: a bad gate value must be visible at any level.
        logLine(detail::concat("warn: unknown VSIM_LOG_LEVEL '", env,
                               "', using 'info'"));
        return LogLevel::Info;
    }
    return level;
}

std::atomic<int> &
levelStore()
{
    static std::atomic<int> level{static_cast<int>(initialLevel())};
    return level;
}

} // namespace

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        levelStore().load(std::memory_order_relaxed));
}

void
setLogLevel(LogLevel level)
{
    levelStore().store(static_cast<int>(level),
                       std::memory_order_relaxed);
}

LogLevel
parseLogLevel(const std::string &text, bool *ok)
{
    if (ok)
        *ok = true;
    if (text == "quiet" || text == "0")
        return LogLevel::Quiet;
    if (text == "warn" || text == "warning" || text == "1")
        return LogLevel::Warn;
    if (text == "info" || text == "2")
        return LogLevel::Info;
    if (text == "debug" || text == "3")
        return LogLevel::Debug;
    if (ok)
        *ok = false;
    return LogLevel::Info;
}

void
logLine(const std::string &line)
{
    // Compose first, then emit with one locked write: parallel sweep
    // workers must never interleave stderr mid-line.
    const std::string full = line + "\n";
    std::lock_guard<std::mutex> lock(logMutex());
    std::fwrite(full.data(), 1, full.size(), stderr);
    std::fflush(stderr);
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Never gated: panics report simulator bugs.
    logLine(concat("panic: ", msg, " (", file, ":", line, ")"));
    std::abort();
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::ostringstream os;
    os << msg << " (" << file << ":" << line << ")";
    throw FatalError(os.str());
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Warn)
        logLine("warn: " + msg);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        logLine("info: " + msg);
}

void
debugImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Debug)
        logLine("debug: " + msg);
}

} // namespace detail
} // namespace vsim
