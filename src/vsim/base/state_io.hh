/**
 * @file
 * Byte-buffer serialization used by the checkpointable simulator
 * state (SimSnapshot): a StateWriter appends fixed-width
 * little-endian primitives to a growable buffer, a StateReader
 * re-reads them with strict bounds checking. Every compound object
 * (memory image, predictor tables, cache tag state) writes a small
 * section tag first, so a reader that drifts out of sync fails loudly
 * at the next section instead of silently mis-restoring state.
 *
 * The format is an in-process exchange format, not a stable on-disk
 * one: producers and consumers are always the same build, so no
 * versioning is needed beyond the section tags.
 */

#ifndef VSIM_BASE_STATE_IO_HH
#define VSIM_BASE_STATE_IO_HH

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "logging.hh"

namespace vsim
{

class StateWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /** Four-character section tag guarding reader/writer sync. */
    void
    tag(const char (&t)[5])
    {
        buf.insert(buf.end(), t, t + 4);
    }

    void
    bytes(const std::uint8_t *data, std::size_t len)
    {
        buf.insert(buf.end(), data, data + len);
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    std::vector<std::uint8_t> buf;
};

class StateReader
{
  public:
    explicit StateReader(const std::vector<std::uint8_t> &data)
        : buf(data.data()), size(data.size())
    {
    }

    StateReader(const std::uint8_t *data, std::size_t len)
        : buf(data), size(len)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return buf[pos++];
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool boolean() { return u8() != 0; }

    /** Consume and check a section tag written by StateWriter::tag. */
    void
    tag(const char (&t)[5])
    {
        need(4);
        VSIM_ASSERT(std::memcmp(buf + pos, t, 4) == 0,
                    "snapshot section tag mismatch: expected ", t);
        pos += 4;
    }

    void
    bytes(std::uint8_t *out, std::size_t len)
    {
        need(len);
        std::memcpy(out, buf + pos, len);
        pos += len;
    }

    bool done() const { return pos == size; }
    std::size_t position() const { return pos; }

  private:
    void
    need(std::size_t n)
    {
        VSIM_ASSERT(pos + n <= size,
                    "snapshot buffer underrun at offset ", pos);
    }

    const std::uint8_t *buf;
    std::size_t size;
    std::size_t pos = 0;
};

} // namespace vsim

#endif // VSIM_BASE_STATE_IO_HH
