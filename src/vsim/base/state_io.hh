/**
 * @file
 * Byte-buffer serialization used by the checkpointable simulator
 * state (SimSnapshot): a StateWriter appends fixed-width
 * little-endian primitives to a growable buffer, a StateReader
 * re-reads them with strict bounds checking. Every compound object
 * (memory image, predictor tables, cache tag state) writes a small
 * section tag first, so a reader that drifts out of sync fails loudly
 * at the next section instead of silently mis-restoring state.
 *
 * The format is a same-build exchange format, not a stable cross-
 * version one: producers and consumers are always the same build
 * (the persistent run cache enforces this with a build fingerprint in
 * its entry header — see vsim/sim/disk_cache.hh), so no versioning is
 * needed beyond the section tags.
 *
 * Reader failures (underrun, tag mismatch) throw vsim::FatalError so
 * that consumers of *untrusted* bytes — a truncated or corrupted
 * on-disk cache entry, a malformed daemon request — can catch the
 * error and recover (evict the entry, reject the request) instead of
 * aborting the process.
 */

#ifndef VSIM_BASE_STATE_IO_HH
#define VSIM_BASE_STATE_IO_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "logging.hh"

namespace vsim
{

class StateWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf.push_back(v);
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

    /** Length-prefixed string (u64 length + raw bytes). */
    void
    str(const std::string &s)
    {
        u64(s.size());
        buf.insert(buf.end(), s.begin(), s.end());
    }

    /** Four-character section tag guarding reader/writer sync. */
    void
    tag(const char (&t)[5])
    {
        buf.insert(buf.end(), t, t + 4);
    }

    void
    bytes(const std::uint8_t *data, std::size_t len)
    {
        buf.insert(buf.end(), data, data + len);
    }

    const std::vector<std::uint8_t> &data() const { return buf; }
    std::vector<std::uint8_t> take() { return std::move(buf); }

  private:
    std::vector<std::uint8_t> buf;
};

class StateReader
{
  public:
    explicit StateReader(const std::vector<std::uint8_t> &data)
        : buf(data.data()), size(data.size())
    {
    }

    StateReader(const std::uint8_t *data, std::size_t len)
        : buf(data), size(len)
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return buf[pos++];
    }

    std::uint64_t
    u64()
    {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
        pos += 8;
        return v;
    }

    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool boolean() { return u8() != 0; }
    double f64() { return std::bit_cast<double>(u64()); }

    /** Length-prefixed string written by StateWriter::str. */
    std::string
    str()
    {
        std::uint64_t len = u64();
        if (len > size - pos)
            VSIM_FATAL("state buffer underrun: string of ", len,
                       " bytes at offset ", pos, " exceeds buffer");
        std::string s(reinterpret_cast<const char *>(buf + pos), len);
        pos += len;
        return s;
    }

    /** Consume and check a section tag written by StateWriter::tag. */
    void
    tag(const char (&t)[5])
    {
        need(4);
        if (std::memcmp(buf + pos, t, 4) != 0)
            VSIM_FATAL("state section tag mismatch: expected ", t,
                       " at offset ", pos);
        pos += 4;
    }

    void
    bytes(std::uint8_t *out, std::size_t len)
    {
        need(len);
        std::memcpy(out, buf + pos, len);
        pos += len;
    }

    bool done() const { return pos == size; }
    std::size_t position() const { return pos; }

  private:
    void
    need(std::size_t n)
    {
        if (n > size - pos)
            VSIM_FATAL("state buffer underrun at offset ", pos,
                       ": need ", n, " more bytes, have ", size - pos);
    }

    const std::uint8_t *buf;
    std::size_t size;
    std::size_t pos = 0;
};

} // namespace vsim

#endif // VSIM_BASE_STATE_IO_HH
