/**
 * @file
 * Small statistics helpers used across the simulator and the
 * experiment harnesses: counters with ratio helpers, running means
 * (arithmetic and harmonic, matching the paper's reporting rules),
 * and fixed-width table formatting.
 *
 * The paper (§5.1) computes *speedups* with the harmonic mean and
 * *prediction rates* with the arithmetic mean; both are provided here
 * so benches cannot silently pick the wrong one.
 */

#ifndef VSIM_BASE_STATS_HH
#define VSIM_BASE_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "state_io.hh"

namespace vsim
{

/** Arithmetic mean of a sample set; 0 for an empty set. */
double arithmeticMean(const std::vector<double> &xs);

/**
 * Harmonic mean of a sample set; NaN for an empty set (an empty
 * speedup table is a bug in the caller, and NaN is loud where a
 * silent 0 looked like a measurement). All samples must be strictly
 * positive — zero or negative samples panic.
 */
double harmonicMean(const std::vector<double> &xs);

/** Geometric mean of a sample set; 0 for an empty set. */
double geometricMean(const std::vector<double> &xs);

/**
 * Simple two-valued counter recording occurrences of an event and of
 * the subset that "hit" (predicted correctly, cache hit, ...).
 */
class RatioStat
{
  public:
    void
    record(bool hit)
    {
        ++total_;
        if (hit)
            ++hits_;
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return total_ - hits_; }

    /** Hit fraction in [0,1]; 0 when no events were recorded. */
    double
    ratio() const
    {
        return total_ == 0 ? 0.0
                           : static_cast<double>(hits_)
                                 / static_cast<double>(total_);
    }

    void
    reset()
    {
        total_ = 0;
        hits_ = 0;
    }

    /** Checkpoint both counters (SimSnapshot round trips). */
    void
    save(StateWriter &w) const
    {
        w.u64(total_);
        w.u64(hits_);
    }

    void
    restore(StateReader &r)
    {
        total_ = r.u64();
        hits_ = r.u64();
    }

  private:
    std::uint64_t total_ = 0;
    std::uint64_t hits_ = 0;
};

/**
 * Fixed-width text table builder used by every bench binary so the
 * reproduced tables and figures share one formatting style.
 */
class TextTable
{
  public:
    /** Define the column headers; call once before any addRow. */
    void setHeader(std::vector<std::string> names);

    void addRow(std::vector<std::string> cells);

    /** Render with column alignment and a header separator line. */
    std::string render() const;

    /**
     * Format helper: fixed-point double with @p digits decimals.
     * Non-finite values (NaN/inf from empty or zero-denominator
     * statistics) render as "n/a".
     */
    static std::string fmt(double value, int digits = 3);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace vsim

#endif // VSIM_BASE_STATS_HH
