#include "thread_pool.hh"

#include "logging.hh"

namespace vsim
{

namespace
{

thread_local int tlsWorkerIndex = -1;

} // namespace

ThreadPool::ThreadPool(int threads)
{
    const int n = threads < 1 ? 1 : threads;
    workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    workReady.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    VSIM_ASSERT(task, "submitting an empty task");
    {
        std::unique_lock<std::mutex> lock(mtx);
        VSIM_ASSERT(!stopping, "submit on a stopping pool");
        queue.push_back(std::move(task));
    }
    workReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    allIdle.wait(lock, [this] { return queue.empty() && running == 0; });
}

int
ThreadPool::defaultThreadCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

int
ThreadPool::currentWorkerIndex()
{
    return tlsWorkerIndex;
}

void
ThreadPool::workerLoop(int index)
{
    tlsWorkerIndex = index;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mtx);
            workReady.wait(
                lock, [this] { return stopping || !queue.empty(); });
            // Drain remaining work even when stopping so ~ThreadPool
            // leaves no submitted task unexecuted.
            if (queue.empty())
                return;
            task = std::move(queue.front());
            queue.pop_front();
            ++running;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mtx);
            --running;
            if (queue.empty() && running == 0)
                allIdle.notify_all();
        }
    }
}

} // namespace vsim
