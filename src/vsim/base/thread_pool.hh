/**
 * @file
 * Fixed-size worker pool with a FIFO work queue, used by the sweep
 * engine to run independent simulations in parallel. Deliberately
 * minimal: no futures, no work stealing — callers own their result
 * slots and synchronise via wait().
 */

#ifndef VSIM_BASE_THREAD_POOL_HH
#define VSIM_BASE_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vsim
{

class ThreadPool
{
  public:
    /** Spawn @p threads workers; values < 1 are clamped to 1. */
    explicit ThreadPool(int threads);

    /** Drains the queue, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue @p task for execution on some worker. Tasks must not
     * throw: exceptions have no thread to propagate to, so callers
     * capture errors into their own result slots.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished running. */
    void wait();

    int threadCount() const { return static_cast<int>(workers.size()); }

    /** Hardware concurrency, with a floor of 1 when unknown. */
    static int defaultThreadCount();

    /**
     * 0-based index of the pool worker executing the caller, or -1
     * when called from a thread that is not a pool worker. Used by
     * the sweep engine to attribute trace spans to worker tracks.
     */
    static int currentWorkerIndex();

  private:
    void workerLoop(int index);

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> queue;
    std::mutex mtx;
    std::condition_variable workReady; //!< queue non-empty or stopping
    std::condition_variable allIdle;   //!< queue empty and none running
    std::size_t running = 0;           //!< tasks currently executing
    bool stopping = false;
};

} // namespace vsim

#endif // VSIM_BASE_THREAD_POOL_HH
