/**
 * @file
 * Set-associative cache timing model with LRU replacement and
 * write-back dirty tracking.
 *
 * The cache models *timing only*: data always lives in the shared
 * MemImage, so a lookup answers "hit or miss" and maintains the tag
 * state; the caller combines hit/miss answers across the hierarchy to
 * derive access latency (paper §5.1 quotes end-to-end latencies:
 * L1I hit 1, L1D hit 2, L2 hit 12, L2 miss 36).
 */

#ifndef VSIM_MEM_CACHE_HH
#define VSIM_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vsim/base/stats.hh"

namespace vsim::mem
{

/** Static geometry of a cache. */
struct CacheConfig
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 64 * 1024;
    int assoc = 4;
    int blockBytes = 32;
};

/**
 * Block displaced by a miss allocation: reported so the next level can
 * absorb the writeback traffic of a dirty victim.
 */
struct Eviction
{
    bool valid = false; //!< a valid block was displaced
    bool dirty = false; //!< ... and it was dirty (writeback)
    std::uint64_t addr = 0; //!< base address of the displaced block
};

class Cache
{
  public:
    explicit Cache(const CacheConfig &config);

    /**
     * Look up @p addr, updating LRU and allocating on miss.
     * @param is_write marks the block dirty on a write hit/allocate.
     * @param evicted if non-null, receives the block displaced by a
     *        miss allocation (valid=false on a hit or when the
     *        allocation filled an empty way).
     * @return true on hit.
     */
    bool access(std::uint64_t addr, bool is_write,
                Eviction *evicted = nullptr);

    /** Probe without changing any state (used by tests/stats). */
    bool probe(std::uint64_t addr) const;

    /**
     * Drop all blocks (used between simulation phases). Valid dirty
     * lines count as writebacks — flushing is not free in a write-back
     * cache, and the traffic must not vanish from the stats.
     */
    void flush();

    const CacheConfig &config() const { return cfg; }
    const vsim::RatioStat &stats() const { return accesses; }
    std::uint64_t writebacks() const { return writebackCount; }

    /**
     * Checkpoint the full replacement state (valid/dirty/tag/LRU per
     * line, the LRU clock) plus the access/writeback counters, so a
     * restored cache continues bit-identically — same victims, same
     * hit/miss stream. The restoring cache must have been built with
     * the same geometry.
     */
    void save(StateWriter &w) const;
    void restore(StateReader &r);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lastUse = 0; //!< LRU timestamp
    };

    std::uint64_t blockAddr(std::uint64_t addr) const;
    std::uint64_t setIndex(std::uint64_t block) const;

    CacheConfig cfg;
    int numSets;
    int blockShift; //!< log2(blockBytes): block lookup is a shift,
                    //!< not a division, on the per-access hot path
    std::vector<Line> lines; //!< numSets * assoc, set-major
    std::uint64_t useCounter = 0;

    vsim::RatioStat accesses;
    std::uint64_t writebackCount = 0;
};

/**
 * Two-level hierarchy (L1 + unified L2) that converts hit/miss
 * outcomes into the paper's end-to-end access latencies.
 */
struct HierarchyLatencies
{
    int l1Hit = 2;    //!< L1D hit (L1I uses 1)
    int l2Hit = 12;
    int l2Miss = 36;
};

class CacheHierarchy
{
  public:
    CacheHierarchy(const CacheConfig &l1_cfg, Cache &l2,
                   const HierarchyLatencies &lat);

    /**
     * Access @p addr and return the end-to-end latency in cycles.
     * The L2 is only touched on an L1 miss.
     */
    int access(std::uint64_t addr, bool is_write);

    Cache &l1() { return l1Cache; }
    const Cache &l1() const { return l1Cache; }

  private:
    Cache l1Cache;
    Cache &l2Cache;
    HierarchyLatencies lat;
};

} // namespace vsim::mem

#endif // VSIM_MEM_CACHE_HH
