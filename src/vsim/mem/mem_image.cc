#include "mem_image.hh"

#include <algorithm>
#include <vector>

#include "vsim/base/logging.hh"

namespace vsim::mem
{

MemImage::MemImage(const MemImage &other)
{
    *this = other;
}

MemImage &
MemImage::operator=(const MemImage &other)
{
    if (this == &other)
        return *this;
    pages.clear();
    for (const auto &[key, page] : other.pages)
        pages.emplace(key, std::make_unique<Page>(*page));
    return *this;
}

const MemImage::Page *
MemImage::findPage(std::uint64_t addr) const
{
    auto it = pages.find(addr >> kPageBits);
    return it == pages.end() ? nullptr : it->second.get();
}

MemImage::Page &
MemImage::touchPage(std::uint64_t addr)
{
    auto &slot = pages[addr >> kPageBits];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    return *slot;
}

std::uint8_t
MemImage::readByte(std::uint64_t addr) const
{
    const Page *page = findPage(addr);
    return page ? (*page)[addr & (kPageSize - 1)] : 0;
}

void
MemImage::writeByte(std::uint64_t addr, std::uint8_t value)
{
    touchPage(addr)[addr & (kPageSize - 1)] = value;
}

std::uint64_t
MemImage::read(std::uint64_t addr, int size) const
{
    VSIM_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size ", size);
    std::uint64_t value = 0;
    for (int i = 0; i < size; ++i)
        value |= static_cast<std::uint64_t>(readByte(addr + i)) << (8 * i);
    return value;
}

void
MemImage::write(std::uint64_t addr, std::uint64_t value, int size)
{
    VSIM_ASSERT(size == 1 || size == 2 || size == 4 || size == 8,
                "bad access size ", size);
    for (int i = 0; i < size; ++i)
        writeByte(addr + i, static_cast<std::uint8_t>(value >> (8 * i)));
}

void
MemImage::writeBlock(std::uint64_t addr, const std::uint8_t *data,
                     std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        writeByte(addr + i, data[i]);
}

void
MemImage::save(StateWriter &w) const
{
    w.tag("MEMI");
    std::vector<std::uint64_t> keys;
    keys.reserve(pages.size());
    for (const auto &[key, page] : pages)
        keys.push_back(key);
    std::sort(keys.begin(), keys.end());
    w.u64(keys.size());
    for (std::uint64_t key : keys) {
        w.u64(key);
        w.bytes(pages.at(key)->data(), kPageSize);
    }
}

void
MemImage::restore(StateReader &r)
{
    r.tag("MEMI");
    pages.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t key = r.u64();
        auto page = std::make_unique<Page>();
        r.bytes(page->data(), kPageSize);
        pages.emplace(key, std::move(page));
    }
}

} // namespace vsim::mem
