/**
 * @file
 * Sparse, paged physical-memory image.
 *
 * Backs both the architectural memory of the functional core and the
 * committed memory seen by the out-of-order core's loads. Reads of
 * unmapped memory return zero (wrong-path accesses must never fault,
 * paper §5.1 models wrong-path side effects); writes allocate pages
 * on demand.
 */

#ifndef VSIM_MEM_MEM_IMAGE_HH
#define VSIM_MEM_MEM_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "vsim/base/state_io.hh"

namespace vsim::mem
{

class MemImage
{
  public:
    static constexpr std::uint64_t kPageBits = 12;
    static constexpr std::uint64_t kPageSize = 1ull << kPageBits;

    MemImage() = default;

    // Deep-copyable so pre-execution can run on a scratch copy.
    MemImage(const MemImage &other);
    MemImage &operator=(const MemImage &other);
    MemImage(MemImage &&) = default;
    MemImage &operator=(MemImage &&) = default;

    std::uint8_t readByte(std::uint64_t addr) const;
    void writeByte(std::uint64_t addr, std::uint8_t value);

    /** Little-endian read of @p size in {1,2,4,8} bytes. */
    std::uint64_t read(std::uint64_t addr, int size) const;

    /** Little-endian write of @p size in {1,2,4,8} bytes. */
    void write(std::uint64_t addr, std::uint64_t value, int size);

    /** Bulk copy-in used by the program loader. */
    void writeBlock(std::uint64_t addr, const std::uint8_t *data,
                    std::size_t len);

    /** Number of mapped pages (for tests/stats). */
    std::size_t mappedPages() const { return pages.size(); }

    /**
     * Serialize the full image (page numbers sorted, so the byte
     * stream is deterministic regardless of hash-map iteration
     * order) / rebuild it from a stream. Part of SimSnapshot.
     */
    void save(StateWriter &w) const;
    void restore(StateReader &r);

  private:
    using Page = std::array<std::uint8_t, kPageSize>;

    const Page *findPage(std::uint64_t addr) const;
    Page &touchPage(std::uint64_t addr);

    std::unordered_map<std::uint64_t, std::unique_ptr<Page>> pages;
};

} // namespace vsim::mem

#endif // VSIM_MEM_MEM_IMAGE_HH
