#include "cache.hh"

#include <bit>

#include "vsim/base/logging.hh"

namespace vsim::mem
{

namespace
{

bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

Cache::Cache(const CacheConfig &config) : cfg(config)
{
    VSIM_ASSERT(isPow2(cfg.sizeBytes), cfg.name, ": size not power of 2");
    VSIM_ASSERT(isPow2(static_cast<std::uint64_t>(cfg.blockBytes)),
                cfg.name, ": block size not power of 2");
    VSIM_ASSERT(cfg.assoc > 0, cfg.name, ": bad associativity");
    const std::uint64_t blocks =
        cfg.sizeBytes / static_cast<std::uint64_t>(cfg.blockBytes);
    VSIM_ASSERT(blocks % static_cast<std::uint64_t>(cfg.assoc) == 0,
                cfg.name, ": blocks not divisible by associativity");
    numSets = static_cast<int>(blocks / static_cast<std::uint64_t>(cfg.assoc));
    VSIM_ASSERT(isPow2(static_cast<std::uint64_t>(numSets)),
                cfg.name, ": set count not power of 2");
    blockShift = std::countr_zero(
        static_cast<std::uint64_t>(cfg.blockBytes));
    lines.resize(blocks);
}

std::uint64_t
Cache::blockAddr(std::uint64_t addr) const
{
    return addr >> blockShift;
}

std::uint64_t
Cache::setIndex(std::uint64_t block) const
{
    return block & static_cast<std::uint64_t>(numSets - 1);
}

bool
Cache::access(std::uint64_t addr, bool is_write, Eviction *evicted)
{
    if (evicted)
        *evicted = Eviction{};
    const std::uint64_t block = blockAddr(addr);
    const std::uint64_t set = setIndex(block);
    Line *base = &lines[set * static_cast<std::uint64_t>(cfg.assoc)];

    // Tags store the whole block number so they are always unambiguous.
    Line *victim = base;
    for (int w = 0; w < cfg.assoc; ++w) {
        Line &line = base[w];
        if (line.valid && line.tag == block) {
            line.lastUse = ++useCounter;
            line.dirty = line.dirty || is_write;
            accesses.record(true);
            return true;
        }
        if (!line.valid) {
            victim = &line;
        } else if (victim->valid && line.lastUse < victim->lastUse) {
            victim = &line;
        }
    }

    accesses.record(false);
    if (victim->valid && victim->dirty)
        ++writebackCount;
    if (evicted) {
        evicted->valid = victim->valid;
        evicted->dirty = victim->valid && victim->dirty;
        evicted->addr =
            victim->tag * static_cast<std::uint64_t>(cfg.blockBytes);
    }
    victim->valid = true;
    victim->dirty = is_write;
    victim->tag = block;
    victim->lastUse = ++useCounter;
    return false;
}

bool
Cache::probe(std::uint64_t addr) const
{
    const std::uint64_t block = blockAddr(addr);
    const std::uint64_t set = setIndex(block);
    const Line *base = &lines[set * static_cast<std::uint64_t>(cfg.assoc)];
    for (int w = 0; w < cfg.assoc; ++w) {
        if (base[w].valid && base[w].tag == block)
            return true;
    }
    return false;
}

void
Cache::save(StateWriter &w) const
{
    w.tag("CACH");
    w.u64(lines.size());
    for (const Line &line : lines) {
        w.boolean(line.valid);
        w.boolean(line.dirty);
        w.u64(line.tag);
        w.u64(line.lastUse);
    }
    w.u64(useCounter);
    accesses.save(w);
    w.u64(writebackCount);
}

void
Cache::restore(StateReader &r)
{
    r.tag("CACH");
    const std::uint64_t n = r.u64();
    VSIM_ASSERT(n == lines.size(),
                cfg.name, ": snapshot geometry mismatch");
    for (Line &line : lines) {
        line.valid = r.boolean();
        line.dirty = r.boolean();
        line.tag = r.u64();
        line.lastUse = r.u64();
    }
    useCounter = r.u64();
    accesses.restore(r);
    writebackCount = r.u64();
}

void
Cache::flush()
{
    for (auto &line : lines) {
        if (line.valid && line.dirty)
            ++writebackCount;
        line = Line{};
    }
    useCounter = 0;
}

CacheHierarchy::CacheHierarchy(const CacheConfig &l1_cfg, Cache &l2,
                               const HierarchyLatencies &lat)
    : l1Cache(l1_cfg), l2Cache(l2), lat(lat)
{}

int
CacheHierarchy::access(std::uint64_t addr, bool is_write)
{
    Eviction victim;
    if (l1Cache.access(addr, is_write, &victim))
        return lat.l1Hit;
    // Fill from L2; the L2 sees the miss as a (clean) read, since this
    // is a timing-only model.
    const int latency = l2Cache.access(addr, false) ? lat.l2Hit
                                                    : lat.l2Miss;
    // A dirty L1 victim drains into the L2 as a write. The writeback
    // sits behind a write buffer, so it does not lengthen the demand
    // fill — but the L2 tag/dirty state and its access/writeback
    // counters must see the traffic.
    if (victim.dirty)
        l2Cache.access(victim.addr, true);
    return latency;
}

} // namespace vsim::mem
