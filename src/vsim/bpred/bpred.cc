#include "bpred.hh"

#include "vsim/base/logging.hh"

namespace vsim::bpred
{

namespace
{

void
saveCounters(StateWriter &w, const std::vector<SatCounter> &table)
{
    w.u64(table.size());
    for (const SatCounter &ctr : table)
        w.u8(static_cast<std::uint8_t>(ctr.raw()));
}

void
restoreCounters(StateReader &r, std::vector<SatCounter> &table)
{
    const std::uint64_t n = r.u64();
    VSIM_ASSERT(n == table.size(),
                "branch-predictor snapshot geometry mismatch");
    for (SatCounter &ctr : table)
        ctr.setRaw(r.u8());
}

} // namespace

Gshare::Gshare(int history_bits, int table_bits)
    : historyBits(history_bits), tableBits(table_bits),
      table(1u << table_bits, SatCounter(2, 1))
{
    VSIM_ASSERT(history_bits <= table_bits,
                "gshare history wider than table index");
}

std::size_t
Gshare::index(std::uint64_t pc) const
{
    const std::uint64_t mask = (1ull << tableBits) - 1;
    const std::uint64_t hist_mask = (1ull << historyBits) - 1;
    return static_cast<std::size_t>(((pc >> 2) ^ (history & hist_mask))
                                    & mask);
}

bool
Gshare::predict(std::uint64_t pc)
{
    return table[index(pc)].taken();
}

void
Gshare::update(std::uint64_t pc, bool taken)
{
    SatCounter &ctr = table[index(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history = (history << 1) | (taken ? 1 : 0);
}

void
Gshare::save(StateWriter &w) const
{
    w.tag("BPGS");
    w.u64(history);
    saveCounters(w, table);
    accuracy.save(w);
}

void
Gshare::restore(StateReader &r)
{
    r.tag("BPGS");
    history = r.u64();
    restoreCounters(r, table);
    accuracy.restore(r);
}

Bimodal::Bimodal(int table_bits)
    : tableBits(table_bits), table(1u << table_bits, SatCounter(2, 1))
{}

bool
Bimodal::predict(std::uint64_t pc)
{
    const std::uint64_t mask = (1ull << tableBits) - 1;
    return table[static_cast<std::size_t>((pc >> 2) & mask)].taken();
}

void
Bimodal::update(std::uint64_t pc, bool taken)
{
    const std::uint64_t mask = (1ull << tableBits) - 1;
    SatCounter &ctr = table[static_cast<std::size_t>((pc >> 2) & mask)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

void
Bimodal::save(StateWriter &w) const
{
    w.tag("BPBM");
    saveCounters(w, table);
    accuracy.save(w);
}

void
Bimodal::restore(StateReader &r)
{
    r.tag("BPBM");
    restoreCounters(r, table);
    accuracy.restore(r);
}

GAg::GAg(int history_bits)
    : historyBits(history_bits),
      table(1u << history_bits, SatCounter(2, 1))
{}

bool
GAg::predict(std::uint64_t pc)
{
    (void)pc;
    const std::uint64_t mask = (1ull << historyBits) - 1;
    return table[static_cast<std::size_t>(history & mask)].taken();
}

void
GAg::update(std::uint64_t pc, bool taken)
{
    (void)pc;
    const std::uint64_t mask = (1ull << historyBits) - 1;
    SatCounter &ctr = table[static_cast<std::size_t>(history & mask)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history = (history << 1) | (taken ? 1 : 0);
}

void
GAg::save(StateWriter &w) const
{
    w.tag("BPGA");
    w.u64(history);
    saveCounters(w, table);
    accuracy.save(w);
}

void
GAg::restore(StateReader &r)
{
    r.tag("BPGA");
    history = r.u64();
    restoreCounters(r, table);
    accuracy.restore(r);
}

std::unique_ptr<BranchPredictor>
makeBranchPredictor(const std::string &kind)
{
    if (kind == "gshare")
        return std::make_unique<Gshare>();
    if (kind == "bimodal")
        return std::make_unique<Bimodal>();
    if (kind == "gag")
        return std::make_unique<GAg>();
    VSIM_FATAL("unknown branch predictor '", kind, "'");
}

} // namespace vsim::bpred
