#include "bpred.hh"

#include "vsim/base/logging.hh"

namespace vsim::bpred
{

Gshare::Gshare(int history_bits, int table_bits)
    : historyBits(history_bits), tableBits(table_bits),
      table(1u << table_bits, SatCounter(2, 1))
{
    VSIM_ASSERT(history_bits <= table_bits,
                "gshare history wider than table index");
}

std::size_t
Gshare::index(std::uint64_t pc) const
{
    const std::uint64_t mask = (1ull << tableBits) - 1;
    const std::uint64_t hist_mask = (1ull << historyBits) - 1;
    return static_cast<std::size_t>(((pc >> 2) ^ (history & hist_mask))
                                    & mask);
}

bool
Gshare::predict(std::uint64_t pc)
{
    return table[index(pc)].taken();
}

void
Gshare::update(std::uint64_t pc, bool taken)
{
    SatCounter &ctr = table[index(pc)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history = (history << 1) | (taken ? 1 : 0);
}

Bimodal::Bimodal(int table_bits)
    : tableBits(table_bits), table(1u << table_bits, SatCounter(2, 1))
{}

bool
Bimodal::predict(std::uint64_t pc)
{
    const std::uint64_t mask = (1ull << tableBits) - 1;
    return table[static_cast<std::size_t>((pc >> 2) & mask)].taken();
}

void
Bimodal::update(std::uint64_t pc, bool taken)
{
    const std::uint64_t mask = (1ull << tableBits) - 1;
    SatCounter &ctr = table[static_cast<std::size_t>((pc >> 2) & mask)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
}

GAg::GAg(int history_bits)
    : historyBits(history_bits),
      table(1u << history_bits, SatCounter(2, 1))
{}

bool
GAg::predict(std::uint64_t pc)
{
    (void)pc;
    const std::uint64_t mask = (1ull << historyBits) - 1;
    return table[static_cast<std::size_t>(history & mask)].taken();
}

void
GAg::update(std::uint64_t pc, bool taken)
{
    (void)pc;
    const std::uint64_t mask = (1ull << historyBits) - 1;
    SatCounter &ctr = table[static_cast<std::size_t>(history & mask)];
    if (taken)
        ctr.increment();
    else
        ctr.decrement();
    history = (history << 1) | (taken ? 1 : 0);
}

std::unique_ptr<BranchPredictor>
makeBranchPredictor(const std::string &kind)
{
    if (kind == "gshare")
        return std::make_unique<Gshare>();
    if (kind == "bimodal")
        return std::make_unique<Bimodal>();
    if (kind == "gag")
        return std::make_unique<GAg>();
    VSIM_FATAL("unknown branch predictor '", kind, "'");
}

} // namespace vsim::bpred
