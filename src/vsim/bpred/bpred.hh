/**
 * @file
 * Conditional-branch direction predictors.
 *
 * The paper's configuration (§5.1): a gshare predictor hashing 16 bits
 * of global history with the low 16 bits of the branch PC into a 64K
 * 2-bit-counter table, updated with correct information following each
 * prediction. Direct/unconditional jumps are always predicted
 * correctly and conditional-branch *targets* are correct whenever the
 * direction is correct, so only direction prediction is modelled here;
 * the fetch engine implements the target rules.
 *
 * Bimodal and GAg predictors are provided for ablation studies.
 */

#ifndef VSIM_BPRED_BPRED_HH
#define VSIM_BPRED_BPRED_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vsim/base/stats.hh"

namespace vsim::bpred
{

/** Direction predictor interface. */
class BranchPredictor
{
  public:
    virtual ~BranchPredictor() = default;

    /** Predict the direction of the conditional branch at @p pc. */
    virtual bool predict(std::uint64_t pc) = 0;

    /**
     * Train with the resolved direction. The paper's idealised timing
     * updates immediately after each prediction; the simulator calls
     * this as soon as the correct outcome is known.
     */
    virtual void update(std::uint64_t pc, bool taken) = 0;

    virtual std::string name() const = 0;

    /**
     * Checkpoint the predictor's training state (history registers,
     * counter tables, accuracy counters) / rebuild it. The restoring
     * predictor must be the same kind with the same geometry; the
     * section tags in the stream catch mismatches.
     */
    virtual void save(StateWriter &w) const = 0;
    virtual void restore(StateReader &r) = 0;

    const vsim::RatioStat &stats() const { return accuracy; }

    /** Record whether a completed prediction was correct. */
    void recordOutcome(bool correct) { accuracy.record(correct); }

  protected:
    vsim::RatioStat accuracy;
};

/** Saturating n-bit counter helper shared by the predictors. */
class SatCounter
{
  public:
    explicit SatCounter(int bits = 2, int initial = 1)
        : value(initial), maxValue((1 << bits) - 1)
    {}

    void
    increment()
    {
        if (value < maxValue)
            ++value;
    }

    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    bool taken() const { return value > maxValue / 2; }
    int raw() const { return value; }

    /** Restore a checkpointed raw count (clamped to the range). */
    void
    setRaw(int v)
    {
        value = v < 0 ? 0 : (v > maxValue ? maxValue : v);
    }

  private:
    int value;
    int maxValue;
};

/** gshare: GHR(16) xor PC[17:2] indexing 64K 2-bit counters. */
class Gshare : public BranchPredictor
{
  public:
    explicit Gshare(int history_bits = 16, int table_bits = 16);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "gshare"; }
    void save(StateWriter &w) const override;
    void restore(StateReader &r) override;

  private:
    std::size_t index(std::uint64_t pc) const;

    int historyBits;
    int tableBits;
    std::uint64_t history = 0;
    std::vector<SatCounter> table;
};

/** Classic per-PC 2-bit counter table. */
class Bimodal : public BranchPredictor
{
  public:
    explicit Bimodal(int table_bits = 16);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "bimodal"; }
    void save(StateWriter &w) const override;
    void restore(StateReader &r) override;

  private:
    int tableBits;
    std::vector<SatCounter> table;
};

/** GAg: global history alone indexes the counter table. */
class GAg : public BranchPredictor
{
  public:
    explicit GAg(int history_bits = 16);

    bool predict(std::uint64_t pc) override;
    void update(std::uint64_t pc, bool taken) override;
    std::string name() const override { return "gag"; }
    void save(StateWriter &w) const override;
    void restore(StateReader &r) override;

  private:
    int historyBits;
    std::uint64_t history = 0;
    std::vector<SatCounter> table;
};

/** Factory for the ablation bench: "gshare", "bimodal", "gag". */
std::unique_ptr<BranchPredictor> makeBranchPredictor(
    const std::string &kind);

} // namespace vsim::bpred

#endif // VSIM_BPRED_BPRED_HH
