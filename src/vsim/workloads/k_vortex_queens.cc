/**
 * @file
 * Workload kernels: `vortex` (in-memory database with hash buckets and
 * linked records, standing in for 147.vortex) and `queens` (recursive
 * 7-queens solver, standing in for 130.li — the paper's xlisp input
 * *is* "7 queens").
 */

#include "kernels.hh"

namespace vsim::workloads::detail
{

namespace
{

const char *kVortexAsm = R"(
# vortex_k -- in-memory DB: 256 hash buckets of singly linked records
# allocated from an arena. A PRNG drives a mix of inserts (9/16),
# lookups (5/16) and deletes (2/16): pointer-chasing, allocation-like
# address streams, irregular control.
        .equ NOPS, 2000

        .data
bucket: .space 2048              # 256 head pointers
arena:  .space 262144            # record arena: [key, val, next] * 24B

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum
outer:
        li s8, 0                 # per-repetition checksum
        la s0, bucket
        li t0, 0                 # clear bucket heads
clr:
        slli t1, t0, 3
        add t2, s0, t1
        sd zero, 0(t2)
        addi t0, t0, 1
        li t3, 256
        blt t0, t3, clr
        la s1, arena
        li s2, 0                 # records allocated
        li s7, 31415926
        li s5, 0                 # op counter
op_loop:
        slli t0, s7, 13
        xor s7, s7, t0
        srli t0, s7, 7
        xor s7, s7, t0
        slli t0, s7, 17
        xor s7, s7, t0
        srli t1, s7, 8
        andi s3, t1, 511         # key
        andi t2, s7, 15
        li t3, 9
        blt t2, t3, do_insert
        li t3, 14
        blt t2, t3, do_lookup
        j do_delete

do_insert:
        li t4, 10000             # arena capacity guard
        bge s2, t4, do_lookup
        slli t4, s2, 4
        slli t5, s2, 3
        add t4, t4, t5           # s2 * 24
        add t5, s1, t4           # record pointer
        sd s3, 0(t5)             # key
        srli t6, s7, 20
        andi t6, t6, 4095
        sd t6, 8(t5)             # value
        andi t0, s3, 255
        slli t0, t0, 3
        la t1, bucket
        add t1, t1, t0
        ld t2, 0(t1)
        sd t2, 16(t5)            # next = old head
        sd t5, 0(t1)             # head = record
        addi s2, s2, 1
        addi s8, s8, 1
        j op_done

do_lookup:
        andi t0, s3, 255
        slli t0, t0, 3
        la t1, bucket
        add t1, t1, t0
        ld t2, 0(t1)
look:
        beqz t2, op_done
        ld t3, 0(t2)
        bne t3, s3, look_next
        ld t4, 8(t2)
        add s8, s8, t4
        j op_done
look_next:
        ld t2, 16(t2)
        j look

do_delete:
        andi t0, s3, 255
        slli t0, t0, 3
        la t1, bucket
        add t1, t1, t0           # address of the link to cur
        ld t2, 0(t1)
del:
        beqz t2, op_done
        ld t3, 0(t2)
        beq t3, s3, del_hit
        addi t1, t2, 16
        ld t2, 16(t2)
        j del
del_hit:
        ld t4, 16(t2)
        sd t4, 0(t1)             # unlink first match
        addi s8, s8, 3

op_done:
        addi s5, s5, 1
        li t0, NOPS
        blt s5, t0, op_loop
        add s9, s9, s8
        addi s10, s10, -1
        bnez s10, outer
        halt s9
)";

const char *kQueensAsm = R"(
# queens_k -- recursive backtracking 7-queens solution counter (the
# paper's xlisp benchmark ran "7 queens"): deep call recursion, stack
# traffic, byte-array bookkeeping.
        .equ NREPS, 8

        .data
colu:   .space 8
diag1:  .space 16
diag2:  .space 16

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum
outer:
        li s4, 0                 # repetition counter
rep:
        la s0, colu
        li t0, 0
clr1:
        add t1, s0, t0
        sb zero, 0(t1)
        addi t0, t0, 1
        li t2, 7
        blt t0, t2, clr1
        la s1, diag1
        la s2, diag2
        li t0, 0
clr2:
        add t1, s1, t0
        sb zero, 0(t1)
        add t1, s2, t0
        sb zero, 0(t1)
        addi t0, t0, 1
        li t2, 13
        blt t0, t2, clr2
        li s5, 0                 # solutions found
        li a0, 0                 # row 0
        call solve
        add s9, s9, s5
        addi s4, s4, 1
        li t0, NREPS
        blt s4, t0, rep
        addi s10, s10, -1
        bnez s10, outer
        halt s9

# solve(a0 = row): count completed placements into s5.
# Uses s0=colu, s1=diag1, s2=diag2 (callee keeps them intact).
solve:
        li t0, 7
        bne a0, t0, s_work
        addi s5, s5, 1
        ret
s_work:
        addi sp, sp, -24
        sd ra, 0(sp)
        sd a0, 8(sp)
        sd s6, 16(sp)
        li s6, 0                 # column
s_col:
        add t1, s0, s6
        lbu t2, 0(t1)
        bnez t2, s_next
        ld a0, 8(sp)
        add t3, a0, s6           # row + col
        add t4, s1, t3
        lbu t5, 0(t4)
        bnez t5, s_next
        sub t3, a0, s6
        addi t3, t3, 6           # row - col + 6
        add t4, s2, t3
        lbu t5, 0(t4)
        bnez t5, s_next
        li t6, 1                 # place the queen
        add t1, s0, s6
        sb t6, 0(t1)
        add t3, a0, s6
        add t4, s1, t3
        sb t6, 0(t4)
        sub t3, a0, s6
        addi t3, t3, 6
        add t4, s2, t3
        sb t6, 0(t4)
        addi a0, a0, 1
        call solve
        ld a0, 8(sp)             # remove the queen
        add t1, s0, s6
        sb zero, 0(t1)
        add t3, a0, s6
        add t4, s1, t3
        sb zero, 0(t4)
        sub t3, a0, s6
        addi t3, t3, 6
        add t4, s2, t3
        sb zero, 0(t4)
s_next:
        addi s6, s6, 1
        li t0, 7
        blt s6, t0, s_col
        ld ra, 0(sp)
        ld s6, 16(sp)
        addi sp, sp, 24
        ret
)";

} // namespace

Workload
makeVortex()
{
    Workload w;
    w.name = "vortex";
    w.specAnalog = "147.vortex";
    w.description = "hash-bucket in-memory database with linked "
                    "records: insert/lookup/delete mix";
    w.source = kVortexAsm;
    w.defaultScale = 5;
    return w;
}

Workload
makeQueens()
{
    Workload w;
    w.name = "queens";
    w.specAnalog = "130.li (xlisp, 7-queens)";
    w.description = "recursive backtracking 7-queens solution counter";
    w.source = kQueensAsm;
    w.defaultScale = 1;
    return w;
}

} // namespace vsim::workloads::detail
