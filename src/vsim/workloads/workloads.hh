/**
 * @file
 * The benchmark suite: eight open workloads written in VRISC assembly,
 * one per SPECint95 benchmark of the paper's Table 1 (see DESIGN.md §2
 * for the substitution rationale). Each kernel computes a checksum and
 * halts with it, so every timing run doubles as a correctness check,
 * and scales its dynamic instruction count linearly with a work factor.
 */

#ifndef VSIM_WORKLOADS_WORKLOADS_HH
#define VSIM_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "vsim/assembler/program.hh"

namespace vsim::workloads
{

struct Workload
{
    std::string name;       //!< short name, e.g. "compress"
    std::string specAnalog; //!< the SPECint95 benchmark it stands in for
    std::string description;
    std::string source;     //!< VRISC assembly; uses WORK_SCALE
    int defaultScale = 1;   //!< work factor giving the standard length
};

/** All eight workloads, in Table 1 order. */
const std::vector<Workload> &all();

/** Look up one workload by name; throws FatalError when unknown. */
const Workload &byName(const std::string &name);

/**
 * Assemble @p w with the given work factor (defaultScale when -1).
 * The factor is injected as the `WORK_SCALE` assembler constant and
 * multiplies the number of outer repetitions, not buffer sizes.
 */
assembler::Program buildProgram(const Workload &w, int scale = -1);

} // namespace vsim::workloads

#endif // VSIM_WORKLOADS_WORKLOADS_HH
