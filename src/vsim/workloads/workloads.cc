#include "workloads.hh"

#include "kernels.hh"
#include "vsim/assembler/assembler.hh"
#include "vsim/base/logging.hh"

namespace vsim::workloads
{

const std::vector<Workload> &
all()
{
    static const std::vector<Workload> suite = {
        detail::makeCompress(), detail::makeCc(),   detail::makeGo(),
        detail::makeJpeg(),     detail::makeM88k(), detail::makePerl(),
        detail::makeVortex(),   detail::makeQueens(),
    };
    return suite;
}

const Workload &
byName(const std::string &name)
{
    for (const Workload &w : all()) {
        if (w.name == name)
            return w;
    }
    VSIM_FATAL("unknown workload '", name, "'");
}

assembler::Program
buildProgram(const Workload &w, int scale)
{
    const int eff = scale < 0 ? w.defaultScale : scale;
    if (eff <= 0)
        VSIM_FATAL("work scale must be positive, got ", eff);
    std::string src = ".equ WORK_SCALE, " + std::to_string(eff) + "\n";
    src += w.source;
    return assembler::assemble(src, w.name + ".s");
}

} // namespace vsim::workloads
