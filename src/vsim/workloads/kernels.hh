/**
 * @file
 * Internal factory declarations for the eight workload kernels. Each
 * factory lives in its own translation unit next to the kernel's
 * assembly source.
 */

#ifndef VSIM_WORKLOADS_KERNELS_HH
#define VSIM_WORKLOADS_KERNELS_HH

#include "workloads.hh"

namespace vsim::workloads::detail
{

Workload makeCompress(); //!< stands in for 099.compress
Workload makeCc();       //!< stands in for 126.gcc
Workload makeGo();       //!< stands in for 099.go
Workload makeJpeg();     //!< stands in for 132.ijpeg
Workload makeM88k();     //!< stands in for 124.m88ksim
Workload makePerl();     //!< stands in for 134.perl
Workload makeVortex();   //!< stands in for 147.vortex
Workload makeQueens();   //!< stands in for 130.li (xlisp, 7-queens input)

} // namespace vsim::workloads::detail

#endif // VSIM_WORKLOADS_KERNELS_HH
