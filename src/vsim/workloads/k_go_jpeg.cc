/**
 * @file
 * Workload kernels: `go` (board-scanning move evaluator, standing in
 * for 099.go) and `jpeg` (8x8 integer transform + quantisation,
 * standing in for 132.ijpeg).
 */

#include "kernels.hh"

namespace vsim::workloads::detail
{

namespace
{

const char *kGoAsm = R"(
# go_k -- 19x19 board with a sentinel border (21x21 bytes). Stones are
# seeded pseudo-randomly; each pass scans every empty cell, scores it
# from its neighbourhood and greedily plays the best move. Branchy
# 2-D array code with data-dependent control, like a go engine's
# board evaluator.
        .equ PASSES, 30

        .data
board:  .space 441               # 21*21

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum
outer:
        li s8, 0                 # per-repetition checksum
        # ---- seed the board ----
        la s0, board
        li s7, 55555
        li s1, 0
init:
        slli t0, s7, 13
        xor s7, s7, t0
        srli t0, s7, 7
        xor s7, s7, t0
        andi t1, s7, 3           # 0..3
        li t2, 3
        bne t1, t2, init_store
        li t1, 0                 # map 3 -> empty as well
init_store:
        add t3, s0, s1
        sb t1, 0(t3)
        addi s1, s1, 1
        li t4, 441
        blt s1, t4, init

        # ---- evaluation passes ----
        li s2, 0                 # pass number
pass_loop:
        li s3, 0                 # best score
        li s4, 0                 # best position
        li s1, 22                # first interior cell (row 1, col 1)
cell:
        add t0, s0, s1
        lbu t1, 0(t0)
        bnez t1, next_cell       # only empty cells are candidates
        lbu t2, -1(t0)           # west
        lbu t3, 1(t0)            # east
        lbu t4, -21(t0)          # north
        lbu t5, 21(t0)           # south
        add t6, t2, t3
        add t6, t6, t4
        add t6, t6, t5           # neighbourhood pressure
        slli t6, t6, 2
        andi t2, s1, 3           # positional tiebreak
        add t6, t6, t2
        ble t6, s3, next_cell
        mv s3, t6
        mv s4, s1
next_cell:
        addi s1, s1, 1
        li t0, 419               # last interior cell + 1
        blt s1, t0, cell
        # play the best move, alternating colours
        andi t1, s2, 1
        addi t1, t1, 1
        add t2, s0, s4
        sb t1, 0(t2)
        add s8, s8, s3
        add s8, s8, s4
        addi s2, s2, 1
        li t3, PASSES
        blt s2, t3, pass_loop

        add s9, s9, s8
        addi s10, s10, -1
        bnez s10, outer
        halt s9
)";

const char *kJpegAsm = R"(
# jpeg_k -- integer 8x8 block transform: C = K * B * K with a constant
# coefficient matrix, followed by quantisation. Long multiply chains
# and strided loads, like a JPEG encoder's DCT stage.
        .equ BLOCKS, 20

        .data
coef:   .space 512               # 8x8 dwords
blk:    .space 512
tmpm:   .space 512
outm:   .space 512

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum

        # ---- build the coefficient matrix once ----
        la s0, coef
        li s1, 0                 # i
ci:
        li t0, 0                 # j
cj:
        slli t1, s1, 1
        add t1, t1, s1           # 3*i
        slli t2, t0, 2
        add t2, t2, t0           # 5*j
        add t3, t1, t2
        andi t3, t3, 15
        addi t3, t3, -8          # small signed coefficients
        slli t4, s1, 3
        add t4, t4, t0
        slli t4, t4, 3
        add t5, s0, t4
        sd t3, 0(t5)
        addi t0, t0, 1
        li t6, 8
        blt t0, t6, cj
        addi s1, s1, 1
        li t6, 8
        blt s1, t6, ci

outer:
        li s8, 0                 # per-repetition checksum
        li s5, 0                 # block counter
        li s7, 24680
blk_loop:
        # ---- fill the block with pixel-like values ----
        la s1, blk
        li t0, 0
fill:
        slli t1, s7, 13
        xor s7, s7, t1
        srli t1, s7, 7
        xor s7, s7, t1
        andi t2, s7, 255
        slli t3, t0, 3
        add t4, s1, t3
        sd t2, 0(t4)
        addi t0, t0, 1
        li t5, 64
        blt t0, t5, fill

        la a0, coef
        la a1, blk
        la a2, tmpm
        call matmul8
        la a0, tmpm
        la a1, coef
        la a2, outm
        call matmul8

        # ---- quantise and accumulate ----
        la s1, outm
        li t0, 0
quant:
        slli t1, t0, 3
        add t2, s1, t1
        ld t3, 0(t2)
        srai t3, t3, 4
        add s8, s8, t3
        addi t0, t0, 1
        li t4, 64
        blt t0, t4, quant

        addi s5, s5, 1
        li t5, BLOCKS
        blt s5, t5, blk_loop
        add s9, s9, s8
        addi s10, s10, -1
        bnez s10, outer
        halt s9

# matmul8: C = A * B over 8x8 dword matrices. a0=A, a1=B, a2=C.
matmul8:
        li t0, 0                 # i
mm_i:
        li t1, 0                 # j
mm_j:
        li t2, 0                 # k
        li t3, 0                 # accumulator
mm_k:
        slli t4, t0, 3
        add t4, t4, t2
        slli t4, t4, 3
        add t5, a0, t4
        ld t6, 0(t5)             # A[i][k]
        slli t4, t2, 3
        add t4, t4, t1
        slli t4, t4, 3
        add t5, a1, t4
        ld t4, 0(t5)             # B[k][j]
        mul t6, t6, t4
        add t3, t3, t6
        addi t2, t2, 1
        li t4, 8
        blt t2, t4, mm_k
        slli t4, t0, 3
        add t4, t4, t1
        slli t4, t4, 3
        add t5, a2, t4
        sd t3, 0(t5)
        addi t1, t1, 1
        li t4, 8
        blt t1, t4, mm_j
        addi t0, t0, 1
        li t4, 8
        blt t0, t4, mm_i
        ret
)";

} // namespace

Workload
makeGo()
{
    Workload w;
    w.name = "go";
    w.specAnalog = "099.go";
    w.description = "19x19 board scan + greedy move evaluator with "
                    "data-dependent branching";
    w.source = kGoAsm;
    w.defaultScale = 3;
    return w;
}

Workload
makeJpeg()
{
    Workload w;
    w.name = "jpeg";
    w.specAnalog = "132.ijpeg";
    w.description = "8x8 integer block transform and quantisation "
                    "(multiply-heavy DCT analogue)";
    w.source = kJpegAsm;
    w.defaultScale = 2;
    return w;
}

} // namespace vsim::workloads::detail
