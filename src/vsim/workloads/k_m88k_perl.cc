/**
 * @file
 * Workload kernels: `m88k` (interpreter of a toy accumulator machine,
 * standing in for 124.m88ksim) and `perl` (word hashing into a probed
 * table, standing in for 134.perl).
 */

#include "kernels.hh"

namespace vsim::workloads::detail
{

namespace
{

const char *kM88kAsm = R"(
# m88k_k -- fetch/decode/dispatch interpreter running a guest
# accumulator-machine program (a counted summation loop), like a CPU
# simulator's main loop: indirect dispatch and state-machine values.
#
# Guest ISA: (op, arg) byte pairs.
#   0 LOADI  ACC = arg          1 ADDM  ACC += mem[arg]
#   2 STOREM mem[arg] = ACC     3 SUBI  ACC -= arg
#   4 JNZ    if ACC != 0 pc = arg
#   5 HALT                      6 LOADM ACC = mem[arg]
        .equ GRUNS, 30

        .data
gcode:  .byte 0,0, 2,1, 0,200, 2,0, 6,1, 1,0, 2,1
        .byte 6,0, 3,1, 2,0, 4,4, 6,1, 5,0
gmem:   .space 2048              # 256 guest dwords

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum
outer:
        li s8, 0                 # per-repetition checksum
        li s5, 0                 # guest-run counter
grun:
        la s0, gcode
        la s1, gmem
        li s2, 0                 # guest pc
        li s3, 0                 # guest ACC
step:
        slli t0, s2, 1
        add t1, s0, t0
        lbu t2, 0(t1)            # opcode
        lbu t3, 1(t1)            # argument
        addi s2, s2, 1
        beqz t2, g_loadi
        li t4, 1
        beq t2, t4, g_addm
        li t4, 2
        beq t2, t4, g_storem
        li t4, 3
        beq t2, t4, g_subi
        li t4, 4
        beq t2, t4, g_jnz
        li t4, 6
        beq t2, t4, g_loadm
        j g_halt
g_loadi:
        mv s3, t3
        j step
g_addm:
        slli t5, t3, 3
        add t6, s1, t5
        ld t5, 0(t6)
        add s3, s3, t5
        j step
g_storem:
        slli t5, t3, 3
        add t6, s1, t5
        sd s3, 0(t6)
        j step
g_subi:
        sub s3, s3, t3
        j step
g_jnz:
        beqz s3, step
        mv s2, t3
        j step
g_loadm:
        slli t5, t3, 3
        add t6, s1, t5
        ld s3, 0(t6)
        j step
g_halt:
        add s8, s8, s3
        addi s5, s5, 1
        li t0, GRUNS
        blt s5, t0, grun
        add s9, s9, s8
        addi s10, s10, -1
        bnez s10, outer
        halt s9
)";

const char *kPerlAsm = R"(
# perl_k -- generates pseudo-words, computes a h*31+c rolling hash and
# maintains a linearly probed (bounded, evicting) hash table of word
# counts: byte loads, hash arithmetic and table churn, like a perl
# associative-array workload.
        .equ NWORDS, 1200

        .data
wbuf:   .space 32
htab:   .space 16384             # 1024 entries of [hash, count]

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum
outer:
        li s8, 0                 # per-repetition checksum
        li s7, 777777
        la s4, htab
        li t0, 0                 # clear the table
clr:
        slli t1, t0, 3
        add t2, s4, t1
        sd zero, 0(t2)
        addi t0, t0, 1
        li t3, 2048
        blt t0, t3, clr
        li s5, 0                 # word counter
word:
        slli t0, s7, 13
        xor s7, s7, t0
        srli t0, s7, 7
        xor s7, s7, t0
        slli t0, s7, 17
        xor s7, s7, t0
        andi s2, s7, 7
        addi s2, s2, 4           # word length 4..11
        la s0, wbuf
        li s1, 0
        li s3, 0                 # rolling hash
mkch:
        srli t1, s7, 3
        xor t1, t1, s1
        andi t1, t1, 15
        addi t1, t1, 'a'
        add t2, s0, s1
        sb t1, 0(t2)
        slli t3, s3, 5           # h = h*31 + c
        sub t3, t3, s3
        add s3, t3, t1
        addi s1, s1, 1
        blt s1, s2, mkch

        andi t4, s3, 1023        # probe, capped at 8 steps
        li a3, 0
probe:
        slli t5, t4, 4
        add t6, s4, t5
        ld t0, 0(t6)
        beqz t0, ins_new
        beq t0, s3, ins_hit
        addi a3, a3, 1
        li t1, 8
        bge a3, t1, ins_evict
        addi t4, t4, 1
        andi t4, t4, 1023
        j probe
ins_new:
        sd s3, 0(t6)
        li t1, 1
        sd t1, 8(t6)
        j word_done
ins_evict:
        sd s3, 0(t6)
        li t1, 1
        sd t1, 8(t6)
        j word_done
ins_hit:
        ld t1, 8(t6)
        addi t1, t1, 1
        sd t1, 8(t6)
        add s8, s8, t1
word_done:
        add s8, s8, s3
        addi s5, s5, 1
        li t0, NWORDS
        blt s5, t0, word
        add s9, s9, s8
        addi s10, s10, -1
        bnez s10, outer
        halt s9
)";

} // namespace

Workload
makeM88k()
{
    Workload w;
    w.name = "m88k";
    w.specAnalog = "124.m88ksim";
    w.description = "fetch/decode/dispatch interpreter of a toy "
                    "accumulator machine";
    w.source = kM88kAsm;
    w.defaultScale = 1;
    return w;
}

Workload
makePerl()
{
    Workload w;
    w.name = "perl";
    w.specAnalog = "134.perl";
    w.description = "pseudo-word generation, rolling hash and probed "
                    "hash-table of counts";
    w.source = kPerlAsm;
    w.defaultScale = 6;
    return w;
}

} // namespace vsim::workloads::detail
