/**
 * @file
 * Workload kernels: `compress` (run-length + dictionary coder over
 * generated text, standing in for 099.compress) and `cc` (expression
 * generator + stack-machine evaluator, standing in for 126.gcc).
 */

#include "kernels.hh"

namespace vsim::workloads::detail
{

namespace
{

const char *kCompressAsm = R"(
# compress_k -- text generation, run-length coding, bigram dictionary.
# Mirrors the value behaviour of a compressor: tight byte loops, table
# updates, highly repetitive values.
        .equ BUFN, 2048

        .data
srcbuf: .space 8192
outbuf: .space 32768
dict:   .space 2048

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum
outer:
        li s8, 0                 # per-repetition checksum
        la s4, dict              # clear the dictionary
        li t0, 0
dclr:
        slli t1, t0, 3
        add t2, s4, t1
        sd zero, 0(t2)
        addi t0, t0, 1
        li t3, 256
        blt t0, t3, dclr
        # ---- phase 1: generate text-like data with runs ----
        la s0, srcbuf
        li s1, 0
        li s7, 1234567
        li s6, 'a'
gen:
        andi t0, s1, 7
        slti t1, t0, 3
        bnez t1, rpt             # 3 of every 8 bytes repeat
        slli t2, s7, 13
        xor s7, s7, t2
        srli t2, s7, 7
        xor s7, s7, t2
        andi t3, s7, 15
        addi t3, t3, 'a'
        j stor
rpt:
        mv t3, s6
stor:
        mv s6, t3
        add t4, s0, s1
        sb t3, 0(t4)
        addi s1, s1, 1
        li t5, BUFN
        bne s1, t5, gen

        # ---- phase 2: run-length encode ----
        la s0, srcbuf
        la s2, outbuf
        li s1, 0                 # input index
        li s3, 0                 # output index
rle_outer:
        add t0, s0, s1
        lbu t1, 0(t0)            # run character
        li t2, 1                 # run length
rle_run:
        add t3, s1, t2
        li t4, BUFN
        bge t3, t4, rle_emit
        add t5, s0, t3
        lbu t6, 0(t5)
        bne t6, t1, rle_emit
        addi t2, t2, 1
        j rle_run
rle_emit:
        add t3, s2, s3
        sb t1, 0(t3)
        sb t2, 1(t3)
        addi s3, s3, 2
        mul t4, t1, t2
        add s8, s8, t4
        add s1, s1, t2
        li t4, BUFN
        blt s1, t4, rle_outer

        # ---- phase 3: bigram dictionary counting ----
        la s0, srcbuf
        la s4, dict
        li s1, 0
dic:
        add t0, s0, s1
        lbu t1, 0(t0)
        lbu t2, 1(t0)
        slli t3, t1, 3
        xor t3, t3, t2
        andi t3, t3, 255
        slli t3, t3, 3
        add t4, s4, t3
        ld t5, 0(t4)
        addi t5, t5, 1
        sd t5, 0(t4)
        add s8, s8, t5
        addi s1, s1, 1
        li t6, 2047
        blt s1, t6, dic

        add s9, s9, s8
        addi s10, s10, -1
        bnez s10, outer
        halt s9
)";

const char *kCcAsm = R"(
# cc_k -- generates short RPN expression programs and evaluates them
# on an explicit operand stack: token dispatch, pointer arithmetic and
# irregular values, mimicking a compiler's expression walker.
        .equ NEXPR, 120

        .data
prog:   .space 256               # (opcode, imm) byte pairs
stk:    .space 512               # operand stack of dwords

        .text
        li s10, WORK_SCALE
        li s9, 0                 # checksum
outer:
        li s8, 0                 # per-repetition checksum
        li s7, 987654321
        li s5, 0                 # expression counter
expr_loop:
        # ---- generate one expression of ~30 tokens ----
        la s0, prog
        li s1, 0                 # token index
        li s2, 0                 # tracked stack depth
gen_tok:
        slli t0, s7, 13
        xor s7, s7, t0
        srli t0, s7, 7
        xor s7, s7, t0
        slli t0, s7, 17
        xor s7, s7, t0
        li t1, 2
        blt s2, t1, do_push      # keep two operands available
        andi t2, s7, 3
        beqz t2, do_push
        srli t3, s7, 2
        andi t3, t3, 3
        addi t3, t3, 1           # opcode 1..4
        slli t4, s1, 1
        add t5, s0, t4
        sb t3, 0(t5)
        sb zero, 1(t5)
        addi s2, s2, -1
        j gen_next
do_push:
        slli t4, s1, 1
        add t5, s0, t4
        sb zero, 0(t5)           # opcode 0 = push imm
        srli t6, s7, 5
        andi t6, t6, 127
        sb t6, 1(t5)
        addi s2, s2, 1
gen_next:
        addi s1, s1, 1
        li t0, 30
        blt s1, t0, gen_tok
drain:                           # reduce stack to one value
        li t1, 1
        ble s2, t1, interp
        slli t4, s1, 1
        add t5, s0, t4
        li t3, 1                 # add
        sb t3, 0(t5)
        sb zero, 1(t5)
        addi s1, s1, 1
        addi s2, s2, -1
        j drain

        # ---- interpret the token buffer ----
interp:
        la s3, stk
        li s4, 0                 # stack pointer (index)
        li s6, 0                 # token cursor
interp_loop:
        bge s6, s1, expr_done
        slli t1, s6, 1
        add t2, s0, t1
        lbu t3, 0(t2)            # opcode
        lbu t4, 1(t2)            # immediate
        bnez t3, i_op
        slli t5, s4, 3           # push imm
        add t6, s3, t5
        sd t4, 0(t6)
        addi s4, s4, 1
        j interp_next
i_op:
        addi s4, s4, -1          # pop rhs
        slli t5, s4, 3
        add t6, s3, t5
        ld t1, 0(t6)
        addi t5, s4, -1          # peek lhs
        slli t5, t5, 3
        add t6, s3, t5
        ld t2, 0(t6)
        li t5, 1
        beq t3, t5, op_add
        li t5, 2
        beq t3, t5, op_sub
        li t5, 3
        beq t3, t5, op_mul
        xor t2, t2, t1
        j op_store
op_add:
        add t2, t2, t1
        j op_store
op_sub:
        sub t2, t2, t1
        j op_store
op_mul:
        mul t2, t2, t1
op_store:
        addi t5, s4, -1
        slli t5, t5, 3
        add t6, s3, t5
        sd t2, 0(t6)
interp_next:
        addi s6, s6, 1
        j interp_loop
expr_done:
        ld t1, 0(s3)
        add s8, s8, t1
        addi s5, s5, 1
        li t0, NEXPR
        blt s5, t0, expr_loop
        add s9, s9, s8
        addi s10, s10, -1
        bnez s10, outer
        halt s9
)";

} // namespace

Workload
makeCompress()
{
    Workload w;
    w.name = "compress";
    w.specAnalog = "099.compress";
    w.description = "run-length + bigram-dictionary coder over "
                    "generated text with repetitive runs";
    w.source = kCompressAsm;
    w.defaultScale = 8;
    return w;
}

Workload
makeCc()
{
    Workload w;
    w.name = "cc";
    w.specAnalog = "126.gcc";
    w.description = "RPN expression generator + stack-machine "
                    "evaluator with token dispatch";
    w.source = kCcAsm;
    w.defaultScale = 6;
    return w;
}

} // namespace vsim::workloads::detail
