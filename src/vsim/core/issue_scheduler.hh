/**
 * @file
 * Event-driven wakeup/select support: ready lists keyed by operand
 * availability, replacing the per-cycle O(window) rescan of every
 * reservation station.
 *
 * Slots move between four states:
 *
 *   Idle    not tracked (free slot, or issued and in flight)
 *   Dirty   something changed; reclassify at the next collect
 *   Timed   will satisfy the wakeup conditions at a known cycle
 *           (operand readyAt, reissue delay, verify-to-branch gate)
 *   Ready   wakeup conditions hold now; stays ready until it issues
 *           or an event disturbs its operands
 *
 * The core marks a slot Dirty (touch) whenever dispatch, a result
 * broadcast, a verify/invalidate sweep, a nullification or a
 * retirement-broadcast changes anything a wakeup decision reads; the
 * scheduler re-derives the state lazily once per cycle through a
 * caller-supplied classifier. Entries whose conditions cannot be
 * satisfied without a further event (an operand with no value yet, a
 * branch waiting on a non-Valid operand) park untracked until the
 * next touch, so a cycle's work is proportional to the number of
 * state changes, not to the window size.
 *
 * The collect result is the exact set the monolithic scan used to
 * produce; selection order is re-established by the caller's
 * (prio, spec, seq) sort, so the scan and ready-list paths are
 * bit-identical (asserted by tests/test_scheduler.cc).
 */

#ifndef VSIM_CORE_ISSUE_SCHEDULER_HH
#define VSIM_CORE_ISSUE_SCHEDULER_HH

#include <cstdint>
#include <map>
#include <vector>

namespace vsim::core
{

/** Classifier verdict for one slot at one cycle. */
struct WakeClass
{
    enum Kind : std::uint8_t
    {
        Ready, //!< wakeup conditions hold this cycle
        Timed, //!< will hold at cycle `at` absent further events
        Parked, //!< needs another event; wait for the next touch
        Idle,  //!< not a wakeup candidate at all (issued/free)
    };
    Kind kind;
    std::uint64_t at = 0;

    static WakeClass ready() { return {Ready, 0}; }
    static WakeClass timed(std::uint64_t at) { return {Timed, at}; }
    static WakeClass parked() { return {Parked, 0}; }
    static WakeClass idle() { return {Idle, 0}; }
};

class IssueScheduler
{
  public:
    /** Drop all state and size for @p nslots physical slots. */
    void
    reset(int nslots)
    {
        slots.assign(static_cast<std::size_t>(nslots), SlotState{});
        dirty.clear();
        buckets.clear();
        ready.clear();
    }

    /** Re-evaluate @p slot at the next collect. */
    void
    touch(int slot)
    {
        SlotState &s = at(slot);
        if (s.kind == Kind::Dirty)
            return;
        s.kind = Kind::Dirty;
        dirty.push_back(slot);
    }

    /** @p slot issued or was freed; stop tracking it. */
    void
    remove(int slot)
    {
        at(slot).kind = Kind::Idle;
    }

    /**
     * Wake due timed slots, reclassify everything touched since the
     * last collect, and return the slots whose wakeup conditions hold
     * at @p now (unordered). @p classify is called as
     * `WakeClass classify(int slot)` and must evaluate the conditions
     * at cycle @p now.
     */
    template <typename ClassifyFn>
    const std::vector<int> &
    collectReady(std::uint64_t now, ClassifyFn &&classify)
    {
        // Due timers become dirty and go through the same classifier
        // (their conditions may have shifted since they were armed).
        while (!buckets.empty() && buckets.begin()->first <= now) {
            for (int slot : buckets.begin()->second) {
                SlotState &s = at(slot);
                if (s.kind == Kind::Timed
                    && s.wakeAt == buckets.begin()->first) {
                    touch(slot);
                }
            }
            buckets.erase(buckets.begin());
        }

        for (std::size_t i = 0; i < dirty.size(); ++i) {
            const int slot = dirty[i];
            SlotState &s = at(slot);
            if (s.kind != Kind::Dirty)
                continue; // duplicate touch already handled
            const WakeClass c = classify(slot);
            switch (c.kind) {
              case WakeClass::Ready:
                s.kind = Kind::Ready;
                if (!s.queued) {
                    s.queued = true;
                    ready.push_back(slot);
                }
                break;
              case WakeClass::Timed:
                s.kind = Kind::Timed;
                s.wakeAt = c.at > now ? c.at : now + 1;
                buckets[s.wakeAt].push_back(slot);
                break;
              case WakeClass::Parked:
                s.kind = Kind::Parked;
                break;
              case WakeClass::Idle:
                s.kind = Kind::Idle;
                break;
            }
        }
        dirty.clear();

        // Compact the ready list, dropping slots that issued or were
        // reclassified since they queued.
        std::size_t w = 0;
        for (int slot : ready) {
            SlotState &s = at(slot);
            if (s.kind == Kind::Ready) {
                ready[w++] = slot;
            } else {
                s.queued = false;
            }
        }
        ready.resize(w);
        return ready;
    }

    /** Number of slots currently in the ready list (tests). */
    std::size_t readyCount() const { return ready.size(); }

  private:
    enum class Kind : std::uint8_t { Idle, Dirty, Timed, Ready, Parked };

    struct SlotState
    {
        Kind kind = Kind::Idle;
        bool queued = false; //!< present in the ready vector
        std::uint64_t wakeAt = 0;
    };

    SlotState &
    at(int slot)
    {
        return slots[static_cast<std::size_t>(slot)];
    }

    std::vector<SlotState> slots;
    std::vector<int> dirty;
    std::map<std::uint64_t, std::vector<int>> buckets;
    std::vector<int> ready;
};

} // namespace vsim::core

#endif // VSIM_CORE_ISSUE_SCHEDULER_HH
