/**
 * @file
 * The speculation event network's scheduler: equality checks,
 * verification and invalidation events (§3.1/§3.2), previously
 * inlined in OooCore::processEvents.
 *
 * Ordering contract — events pop in deterministic (cycle, seq, kind)
 * order: strictly by cycle first; within one cycle, a *batch* is
 * everything already scheduled for that cycle when draining starts,
 * sorted by (seq, kind); events scheduled for the same cycle while a
 * batch is being processed (zero-latency chains such as
 * EqCheck -> Verify under the super model) form the next batch of the
 * same cycle. The contract is independent of scheduling order, so a
 * run is bit-reproducible no matter which code path enqueued first.
 *
 * The queue also owns the hierarchical-wave depth bookkeeping that
 * used to be duplicated between the verify and invalidate paths: an
 * event carries the wave depth (-1 for single-event schemes), and
 * advanceWave() reschedules the next dependence level one cycle out.
 */

#ifndef VSIM_CORE_EVENT_QUEUE_HH
#define VSIM_CORE_EVENT_QUEUE_HH

#include <cstdint>
#include <map>
#include <vector>

namespace vsim::core
{

enum class EventKind : std::uint8_t { EqCheck, Verify, Invalidate };

struct Event
{
    EventKind kind;
    int slot;
    std::uint64_t seq;
    /** Hierarchical schemes: remaining wave depth (unused = -1). */
    int depth = -1;
};

class EventQueue
{
  public:
    /** Schedule @p ev at absolute cycle @p at. */
    void schedule(std::uint64_t at, const Event &ev);

    /**
     * Schedule the opening event of a verify/invalidate transaction:
     * hierarchical schemes start a wave at depth 0, single-event
     * schemes carry no depth.
     */
    void scheduleWave(std::uint64_t at, EventKind kind, int slot,
                      std::uint64_t seq, bool hierarchical);

    /**
     * A hierarchical wave step left work behind: reschedule @p ev one
     * cycle after @p now, one dependence level deeper.
     */
    void advanceWave(std::uint64_t now, const Event &ev);

    /** Any event scheduled at or before @p now? */
    bool due(std::uint64_t now) const
    {
        return !byCycle.empty() && byCycle.begin()->first <= now;
    }

    /**
     * Remove and return the earliest due batch, sorted (seq, kind).
     * Only valid while due(now) holds. The returned reference aliases
     * reused internal storage: it stays valid while the batch is
     * iterated (schedule() during iteration only touches the pending
     * map) and is overwritten by the next popBatch() call.
     */
    const std::vector<Event> &popBatch(std::uint64_t now);

    bool empty() const { return byCycle.empty(); }
    std::size_t pendingEvents() const;

  private:
    std::map<std::uint64_t, std::vector<Event>> byCycle;
    std::vector<Event> batchScratch;
};

} // namespace vsim::core

#endif // VSIM_CORE_EVENT_QUEUE_HH
