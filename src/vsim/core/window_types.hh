/**
 * @file
 * The core's shared window substrate: reservation-station entries,
 * operand state, and the dependence masks that make the verification
 * network's parallel semantics (§3.1/§3.2) a single mask sweep.
 *
 * These types used to be private to OooCore; the layered core keeps
 * them in one header so the frontend/backend stage files, the policy
 * objects under policy/, the event queue and the wakeup scheduler all
 * operate on the same structures without friending each other.
 */

#ifndef VSIM_CORE_WINDOW_TYPES_HH
#define VSIM_CORE_WINDOW_TYPES_HH

#include <bitset>
#include <cstdint>
#include <vector>

#include "slot_ring.hh"
#include "vsim/isa/isa.hh"

namespace vsim::core
{

/**
 * Upper bound on the instruction window. Sized for the CVP-style
 * trace-replay configuration (512-entry window); everything that
 * scales with it — SpecMask, mask_ops, SlotRing, SubscriberIndex —
 * is sized off CoreConfig::windowSize or the bitset width, so runs
 * with smaller windows are unaffected by the headroom.
 */
constexpr int kMaxWindow = 512;

/** Set of unresolved predictions a value transitively depends on. */
using SpecMask = std::bitset<kMaxWindow>;

/** State of a reservation-station input operand (§2.2). */
enum class OperandState : std::uint8_t
{
    Unused,      //!< the instruction has no such operand
    Invalid,     //!< no value yet; waiting on the result bus
    Predicted,   //!< value came directly from the value predictor
    Speculative, //!< computed from >=1 predicted/speculative input
    Valid,       //!< architecturally correct
};

struct Operand
{
    OperandState state = OperandState::Unused;
    int reg = -1;
    int tag = -1;            //!< producing slot; -1 = register file
    std::uint64_t value = 0;
    SpecMask deps;
    std::uint64_t readyAt = 0;  //!< cycle the value can be consumed
    std::uint64_t validAt = 0;  //!< cycle state became Valid
    bool validViaEvent = false; //!< validity arrived via the network

    bool hasValue() const { return state != OperandState::Invalid
                                   && state != OperandState::Unused; }
    bool used() const { return state != OperandState::Unused; }
};

/**
 * Cold tail of a reservation-station entry, split out of RsEntry into
 * a parallel (structure-of-arrays) vector indexed by the same physical
 * slot. Everything here is touched a bounded number of times per
 * dynamic instruction — at dispatch, completion, squash or retirement
 * — never by the per-cycle wakeup scans or the verification/
 * invalidation sweeps, so evicting it shrinks the hot entry the
 * schedulers and policies stream over. The policy objects provably
 * read none of these fields; they reach the cold array only through
 * WindowRef::cold if a future scheme needs it.
 */
struct RsCold
{
    std::uint64_t pc = 0;

    // value prediction bookkeeping
    std::uint64_t predToken = 0;
    bool predWasCorrect = false; //!< filled at retire

    // control
    bool predTaken = false;
    std::uint64_t predNextPc = 0;
    bool mispredicted = false; //!< caused a squash at resolution

    // execution/latency bookkeeping
    std::uint64_t execDoneAt = 0;
    std::uint64_t nullifiedAt = 0; //!< cycle of the last nullification
    int execCount = 0;
    std::uint64_t outValidAt = 0;
    bool outValidViaEvent = false;
};

struct RsEntry
{
    bool busy = false;
    int slot = -1; //!< own physical index (= prediction bit)
    std::uint64_t seq = 0;
    std::uint64_t nonce = 0; //!< bumps on (re)issue/nullify
    isa::Inst inst;
    std::int64_t traceIndex = -1; //!< -1 on the wrong path

    Operand src[2];

    bool issued = false;
    bool executed = false;
    std::uint64_t dispatchAt = 0;
    std::uint64_t reissueAt = 0; //!< earliest re-select after nullify

    std::uint64_t outValue = 0;
    SpecMask outDeps;
    bool outValid = false;

    // value prediction bookkeeping
    bool vpEligible = false;
    bool predicted = false; //!< confident prediction visible to users
    bool predResolved = false;
    bool eqScheduled = false;
    std::uint64_t predValue = 0;
    bool predConfident = false;

    // memory
    bool addrReady = false;
    std::uint64_t memAddr = 0;
    std::uint64_t addrReadyAt = 0;
    /**
     * Memory-carried dependences (§3.2, memNeedsValidOps=false): the
     * predictions a load's *result* depends on through the LSQ rather
     * than through its register operands — the address operands of the
     * older stores it was disambiguated against plus the data operands
     * of the stores it forwarded from. Snapshotted at issue, folded
     * into outDeps at completion, cleared by the verification network
     * and tested by the invalidation sweep (a set bit there nullifies
     * the load for reissue). Always empty when memory resolution
     * requires valid operands.
     */
    SpecMask memDeps;

    // retire gating
    std::uint64_t verifiedAt = 0;
};

/** In-flight execution whose completion is pending. */
struct Completion
{
    int slot;
    std::uint64_t seq;
    std::uint64_t nonce;
    std::uint64_t value;   //!< result computed at issue
    bool taken;            //!< branch outcome
    std::uint64_t nextPc;  //!< branch target / next pc
};

class SubscriberIndex;

/**
 * Borrowed view of the window a policy object sweeps over: the
 * physical slots plus their program (seq) order. The policies never
 * allocate or free entries; they only rewrite operand/output state.
 * A non-null subscriber index narrows the sweeps to the resolving
 * bit's subscribers (SweepKind::Sparse); null keeps the legacy dense
 * scan over the full order. The cold array (the SoA tail split out of
 * RsEntry) rides along for completeness; the shipped policies never
 * touch it, so fakes may leave it null.
 */
struct WindowRef
{
    std::vector<RsEntry> &window;
    const SlotRing &order;
    SubscriberIndex *subs = nullptr;
    std::vector<RsCold> *cold = nullptr;

    RsEntry &at(int slot) const
    {
        return window[static_cast<std::size_t>(slot)];
    }

    RsCold &coldAt(int slot) const
    {
        return (*cold)[static_cast<std::size_t>(slot)];
    }
};

/**
 * Mutations the policy sweeps raise back into the core: everything
 * with side effects beyond the window entry itself (stats, tracer,
 * event scheduling, squash, wakeup-scheduler notifications) goes
 * through this interface, which keeps the policies unit-testable
 * against a trivial fake.
 */
class SpecHooks
{
  public:
    virtual ~SpecHooks() = default;

    /** @p e's output lost its last dependence bit via the network. */
    virtual void outputBecameValid(RsEntry &e) = 0;

    /** Wakeup nullification (§3.4) of a mis-speculated consumer. */
    virtual void nullifyEntry(RsEntry &e) = 0;

    /** Complete invalidation: squash everything younger than @p p. */
    virtual void completeSquash(RsEntry &p) = 0;

    /**
     * @p e's operands changed in a way that can affect its wakeup
     * (value arrived, state promoted/demoted); the issue scheduler
     * must re-evaluate it.
     */
    virtual void wakeupChanged(RsEntry &e) = 0;

    /**
     * Operand @p idx of @p e was reset to Invalid and now waits on the
     * result bus again (the core re-registers it with the broadcast
     * waiter lists on top of wakeupChanged).
     */
    virtual void operandInvalidated(RsEntry &e, int idx) = 0;

    /**
     * Cycle attribution: the sweep resolving prediction @p p acted on
     * @p consumer — a verification sweep (@p invalidation false)
     * cleansed at least one of its dependence bits, or an
     * invalidation sweep (@p invalidation true) nullified it. Raised
     * only for entries actually acted upon, never for entries a dense
     * scan merely visited, so sparse and dense sweeps attribute
     * identically. Default no-op keeps policy unit-test fakes simple.
     */
    virtual void attributeSweep(const RsEntry &p, const RsEntry &consumer,
                                bool invalidation)
    {
        (void)p;
        (void)consumer;
        (void)invalidation;
    }
};

} // namespace vsim::core

#endif // VSIM_CORE_WINDOW_TYPES_HH
