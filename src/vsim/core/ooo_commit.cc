/**
 * @file
 * Backend completion/verification/retire of the layered core:
 * completion apply + result-bus broadcast, the speculation event loop
 * (EqCheck dispatch and the policy-driven verify/invalidate sweeps),
 * and the retire stage with its §3-governed release conditions.
 */

#include "ooo_core.hh"

#include <algorithm>

#include "vsim/arch/exec.hh"
#include "vsim/base/logging.hh"

namespace vsim::core
{

// =====================================================================
// completion / broadcast
// =====================================================================

void
OooCore::broadcast(RsEntry &producer)
{
    const bool keep_prediction =
        producer.predicted && !producer.predResolved;

    if (!readyListScheduler()) {
        // Legacy result bus: sweep every younger entry for operands
        // tagged to this producer.
        for (int slot : windowOrder) {
            RsEntry &f = entry(slot);
            if (f.seq <= producer.seq)
                continue;
            for (Operand &o : f.src) {
                if (!o.used() || o.state != OperandState::Invalid
                    || o.tag != producer.slot) {
                    continue;
                }
                if (keep_prediction) {
                    o.value = producer.predValue;
                    o.state = OperandState::Predicted;
                    o.deps.reset();
                    o.deps.set(
                        static_cast<std::size_t>(producer.slot));
                    o.readyAt = cycle;
                    notePredConsumed(producer);
                } else {
                    o.value = producer.outValue;
                    o.deps = producer.outDeps;
                    o.readyAt = cycle;
                    if (o.deps.none()) {
                        o.state = OperandState::Valid;
                        o.validAt = cycle;
                        o.validViaEvent = false;
                        f.verifiedAt = std::max(f.verifiedAt, cycle);
                    } else {
                        o.state = OperandState::Speculative;
                    }
                }
                // Result-bus mask-gaining site (legacy sweep path).
                subsIndex.note(f.slot, o.deps);
            }
        }
        return;
    }

    // Ready-list mode: only the registered waiters look at the bus.
    // Every live registration is consumed by this broadcast (an
    // Invalid operand tagged here is unconditionally filled), so the
    // list is taken wholesale; entries that fail the same busy/seq/
    // state/tag checks the sweep applied are stale and dropped.
    auto &list = waiters[static_cast<std::size_t>(producer.slot)];
    if (list.empty())
        return;
    waiterScratch.clear();
    std::swap(waiterScratch, list);
    for (const auto &[slot, idx] : waiterScratch) {
        RsEntry &f = entry(slot);
        if (!f.busy || f.seq <= producer.seq)
            continue;
        Operand &o = f.src[idx];
        if (!o.used() || o.state != OperandState::Invalid
            || o.tag != producer.slot) {
            continue;
        }
        if (keep_prediction) {
            o.value = producer.predValue;
            o.state = OperandState::Predicted;
            o.deps.reset();
            o.deps.set(static_cast<std::size_t>(producer.slot));
            o.readyAt = cycle;
            notePredConsumed(producer);
        } else {
            o.value = producer.outValue;
            o.deps = producer.outDeps;
            o.readyAt = cycle;
            if (o.deps.none()) {
                o.state = OperandState::Valid;
                o.validAt = cycle;
                o.validViaEvent = false;
                f.verifiedAt = std::max(f.verifiedAt, cycle);
            } else {
                o.state = OperandState::Speculative;
            }
        }
        // Result-bus mask-gaining site (waiter-list path).
        subsIndex.note(f.slot, o.deps);
        sched.touch(slot);
    }
}

void
OooCore::applyCompletions()
{
    auto it = completions.begin();
    while (it != completions.end() && it->first <= cycle) {
        for (const Completion &c : it->second) {
            RsEntry &e = entry(c.slot);
            if (!e.busy || e.seq != c.seq || e.nonce != c.nonce
                || !e.issued || e.executed) {
                continue; // stale (nullified or squashed meanwhile)
            }
            RsCold &ec = cold(c.slot);
            e.executed = true;
            ec.execDoneAt = cycle;
            e.outValue = c.value;
            e.outDeps.reset();
            for (const Operand &o : e.src) {
                if (o.used())
                    e.outDeps |= o.deps;
            }
            // Memory-carried dependences acquired at issue (always
            // empty under valid-ops memory resolution). The network
            // may have cleared bits while the access was in flight;
            // the fold uses the maintained mask, not the snapshot.
            e.outDeps |= e.memDeps;
            // The fold introduces no bits the operand-capture and
            // memDeps sites did not already subscribe, but keeping the
            // call here makes the invariant independent of that
            // reasoning.
            subsIndex.note(e.slot, e.outDeps);
            e.verifiedAt = std::max(e.verifiedAt, cycle);
            if (e.inst.isStore()) {
                e.addrReady = true;
                e.addrReadyAt = cycle;
            }
            if (tracingEnabled)
                tracer_.note(e.seq, cycle, "W");

            if (e.outDeps.none())
                noteOutputValid(e, false);
            broadcast(e);

            if (e.inst.isBranch() && c.nextPc != ec.predNextPc) {
                // Branch misprediction: squash younger work and
                // redirect fetch to the computed target. Fetch is back
                // on the correct path only if the computed target is
                // architecturally right (it can be wrong when branches
                // are allowed to resolve with speculative operands).
                ++stats_.squashes;
                lastRedirect = RedirectCause::Branch;
                const bool on_path =
                    e.traceIndex >= 0
                    && c.nextPc
                           == trace.entries[static_cast<std::size_t>(
                                                e.traceIndex)]
                                  .nextPc;
                squashAfter(e.seq, c.nextPc,
                            on_path ? e.traceIndex + 1 : -1);
                // Later re-executions (speculative resolution only)
                // compare against the path actually being fetched.
                ec.predNextPc = c.nextPc;
                ec.mispredicted = true;
            }
        }
        it = completions.erase(it);
    }
}

// =====================================================================
// verification / invalidation events
// =====================================================================

void
OooCore::doEqCheck(RsEntry &e)
{
    if (!e.executed || !e.outDeps.none() || !e.predicted
        || e.predResolved) {
        e.eqScheduled = false;
        return;
    }
    e.eqScheduled = false;
    if (e.outValue == e.predValue) {
        events.scheduleWave(cycle + static_cast<std::uint64_t>(
                                        model.equalityToVerify),
                            EventKind::Verify, e.slot, e.seq,
                            policies.verify->hierarchical());
    } else {
        events.scheduleWave(cycle + static_cast<std::uint64_t>(
                                        model.equalityToInvalidate),
                            EventKind::Invalidate, e.slot, e.seq,
                            policies.invalidate->hierarchical());
    }
}

void
OooCore::processEvents()
{
    while (events.due(cycle)) {
        for (const Event &ev : events.popBatch(cycle)) {
            RsEntry &e = entry(ev.slot);
            if (!e.busy || e.seq != ev.seq)
                continue; // squashed
            switch (ev.kind) {
              case EventKind::EqCheck:
                doEqCheck(e);
                break;
              case EventKind::Verify:
                resolvePrediction(e, true);
                if (policies.verify->propagatesOnEvent()
                    && policies.verify->apply(windowRef(), e, cycle,
                                              *this)) {
                    events.advanceWave(cycle, ev);
                }
                break;
              case EventKind::Invalidate:
                resolvePrediction(e, false);
                if (policies.invalidate->apply(windowRef(), e, cycle,
                                               *this)) {
                    events.advanceWave(cycle, ev);
                }
                break;
            }
        }
    }
}

// =====================================================================
// retire
// =====================================================================

bool
OooCore::retireOne()
{
    if (windowOrder.empty())
        return false;
    const int slot = windowOrder.front();
    RsEntry &e = entry(slot);
    RsCold &ec = cold(slot);

    if (!e.executed || !e.outDeps.none())
        return false;
    if (e.predicted && !e.predResolved)
        return false;
    for (const Operand &o : e.src) {
        if (o.used() && o.state != OperandState::Valid)
            return false;
    }
    if (cycle < e.verifiedAt + static_cast<std::uint64_t>(
                                   model.verifyToFreeResource)) {
        return false;
    }
    if (e.inst.isStore() && dcachePortsUsed >= cfg.effDcachePorts())
        return false; // no store port this cycle
    // A predicted instruction drives its verification/invalidation
    // transaction from its reservation station: under a multi-step
    // wave it cannot release the entry while any in-flight value still
    // carries its dependence bit. Whether the applicable scheme leaves
    // such residue is the policy's call (residueGuardAtRetire):
    // single-event schemes never do, and the hybrid's retirement sweep
    // clears its own — under retirement-based verification the guard
    // would deadlock against this very retirement.
    if (e.predicted) {
        const bool mispredicted = e.predValue != e.outValue;
        const bool guard =
            mispredicted ? policies.invalidate->residueGuardAtRetire()
                         : policies.verify->residueGuardAtRetire();
        if (guard) {
            const std::size_t pbit = static_cast<std::size_t>(e.slot);
            if (sparseSweeps()) {
                if (subsIndex.anyOtherCarrier(static_cast<int>(pbit),
                                              window, e.slot)) {
                    return false;
                }
            } else {
                for (int other : windowOrder) {
                    const RsEntry &f = entry(other);
                    if (f.slot == e.slot)
                        continue;
                    if (f.executed && f.outDeps.test(pbit))
                        return false;
                    if (f.memDeps.test(pbit))
                        return false;
                    for (const Operand &o : f.src) {
                        if (o.used() && o.deps.test(pbit))
                            return false;
                    }
                }
            }
        }
    }

    // ---- golden check against the functional pre-execution ----------
    VSIM_ASSERT(e.traceIndex >= 0,
                "wrong-path instruction reached retirement, pc=", ec.pc);
    VSIM_ASSERT(e.traceIndex == static_cast<std::int64_t>(retiredCount),
                "retirement out of trace order at pc=", ec.pc);
    const arch::TraceEntry &te =
        trace.entries[static_cast<std::size_t>(e.traceIndex)];
    VSIM_ASSERT(te.pc == ec.pc, "retired pc mismatch");
    if (int dest = e.inst.destReg(); dest >= 0) {
        VSIM_ASSERT(e.outValue == te.value,
                    "value mismatch at retirement, pc=", ec.pc,
                    " ooo=", e.outValue, " func=", te.value);
        archRegs[static_cast<std::size_t>(dest)] = e.outValue;
        if (regTag[static_cast<std::size_t>(dest)] == slot)
            regTag[static_cast<std::size_t>(dest)] = -1;
    }

    if (e.inst.isStore()) {
        memory.write(e.memAddr, e.src[0].value, e.inst.memSize());
        dcacheH.access(e.memAddr, true);
        ++dcachePortsUsed;
        ++stats_.retiredStores;
    } else if (e.inst.isLoad()) {
        ++stats_.retiredLoads;
    } else if (e.inst.isSystem()) {
        switch (e.inst.op) {
          case isa::Op::HALT:
            halted = true;
            exitCode = e.src[0].used() ? e.src[0].value : 0;
            break;
          case isa::Op::PUTC:
            output.push_back(static_cast<char>(e.src[0].value));
            break;
          case isa::Op::PUTI:
            output += std::to_string(
                static_cast<std::int64_t>(e.src[0].value));
            break;
          default:
            VSIM_PANIC("unknown system op at retire");
        }
    } else if (e.inst.isBranch()) {
        ++stats_.retiredBranches;
        if (e.inst.isCondBranch()) {
            ++stats_.condBranches;
            if (ec.mispredicted)
                ++stats_.condMispredicts;
        }
    }

    // ---- value-prediction accounting & delayed training --------------
    if (e.vpEligible) {
        ++stats_.vpEligible;
        const bool correct = e.predValue == e.outValue;
        auto &pp = perPcVp[ec.pc];
        ++pp.first;
        pp.second += correct;
        if (correct)
            ++(e.predConfident ? stats_.vpCH : stats_.vpCL);
        else
            ++(e.predConfident ? stats_.vpIH : stats_.vpIL);
        if (e.predicted) {
            ++stats_.vpSpeculated;
            // Ledger: the prediction's producer reached architectural
            // state (freeSlot below clears the slot's record index).
            if (cfg.specLedger) {
                const std::int64_t li =
                    ledgerIdx[static_cast<std::size_t>(slot)];
                if (li >= 0)
                    ledger_.records[static_cast<std::size_t>(li)]
                        .committed = true;
            }
        }
        if (!predOverride && cfg.updateTiming == UpdateTiming::Delayed) {
            vpred_->updateTable(ec.pc, ec.predToken, e.outValue);
            vpred_->commitHistory(ec.pc, e.outValue, correct);
            if (cfg.confidence == ConfidenceKind::Real)
                conf_->update(ec.pc, correct);
        }
    }

    // Retirement-based verification: the paper's §3.2 scheme validates
    // consumers through the retirement broadcast.
    if (e.predicted && policies.verify->sweepsAtRetire())
        policies.verify->applyRetire(windowRef(), e, cycle, *this);

    if (tracingEnabled)
        tracer_.note(e.seq, cycle, "RT");

    if (e.inst.isMem()) {
        VSIM_ASSERT(!lsq.empty() && lsq.front() == slot,
                    "LSQ out of order at retirement");
        lsq.pop_front();
    }
    windowOrder.pop_front();
    freeSlot(slot);
    ++retiredCount;
    ++stats_.retired;
    return true;
}

void
OooCore::retireStage()
{
    const int width = cfg.effRetireWidth();
    for (int n = 0; n < width && !halted; ++n) {
        if (!retireOne())
            break;
    }
}

} // namespace vsim::core
