/**
 * @file
 * Subscriber lists for the verification/invalidation network
 * (§3.1/§3.2). A resolving prediction's sweep only matters to the
 * slots whose dependence masks carry the prediction's bit; the dense
 * policy sweeps nevertheless walked the whole window in program order
 * on every event wave. This index maintains, per prediction bit p, the
 * list of slots whose src[*].deps, outDeps or memDeps contain p, so a
 * sweep visits O(consumers) entries instead of O(window).
 *
 * Invariants (checked by checkInvariants, asserted under sanitizers):
 *
 *  (A) slot s appears in subs[p] exactly once iff subscribed[s] has
 *      bit p set — the list and the per-slot mask are a bijection, so
 *      a slot is never enqueued twice;
 *  (B) a busy entry with bit p set in any of its masks is subscribed
 *      to p — note() is called at every mask-gaining site, so sweeps
 *      cannot miss a consumer.
 *
 * Mask-*losing* sites (verify clears, nullification, slot free) do not
 * unsubscribe eagerly: stale entries are pruned lazily the next time
 * the bit's list is collected. This keeps the common path append-only;
 * the bijection (A) bounds each list at one entry per slot.
 *
 * The collected sweep domain is sorted by seq: the dense sweeps
 * iterate w.order (program order), and the hierarchical invalidation
 * wave reads live producer state, so visiting subscribers in any other
 * order would change which wave step a consumer reacts in.
 */

#ifndef VSIM_CORE_SUBSCRIBER_INDEX_HH
#define VSIM_CORE_SUBSCRIBER_INDEX_HH

#include <algorithm>
#include <string>
#include <vector>

#include "mask_ops.hh"
#include "window_types.hh"

namespace vsim::core
{

class SubscriberIndex
{
  public:
    void
    reset(int nslots)
    {
        subs_.assign(static_cast<std::size_t>(nslots), {});
        subscribed_.assign(static_cast<std::size_t>(nslots), SpecMask{});
        scratch_.clear();
        scratch_.reserve(static_cast<std::size_t>(nslots));
    }

    /** Does @p e carry bit @p pbit in any dependence mask? */
    static bool
    carries(const RsEntry &e, std::size_t pbit)
    {
        return e.src[0].deps.test(pbit) || e.src[1].deps.test(pbit)
               || e.outDeps.test(pbit) || e.memDeps.test(pbit);
    }

    /** @p slot's masks gained (at most) the bits of @p gained. */
    void
    note(int slot, const SpecMask &gained)
    {
        const std::size_t s = static_cast<std::size_t>(slot);
        const SpecMask fresh = gained & ~subscribed_[s];
        if (fresh.none())
            return;
        subscribed_[s] |= fresh;
        mask::forEachSetBit(fresh, [&](int p) {
            subs_[static_cast<std::size_t>(p)].push_back(slot);
        });
    }

    /** note() over the union of all of @p e's dependence masks. */
    void
    noteEntry(const RsEntry &e)
    {
        if (!e.busy) // a free slot holds no live masks (slot may be -1)
            return;
        SpecMask m = e.src[0].deps;
        m |= e.src[1].deps;
        m |= e.outDeps;
        m |= e.memDeps;
        note(e.slot, m);
    }

    /**
     * The sweep domain of prediction bit @p pbit: every live carrier,
     * sorted by seq (program order). Prunes stale subscriptions as a
     * side effect. The returned reference is invalidated by the next
     * collect()/anyOtherCarrier() call.
     */
    const std::vector<int> &
    collect(int pbit, const std::vector<RsEntry> &window)
    {
        auto &list = subs_[static_cast<std::size_t>(pbit)];
        scratch_.clear();
        for (std::size_t i = 0; i < list.size();) {
            const int slot = list[i];
            const RsEntry &e = window[static_cast<std::size_t>(slot)];
            if (e.busy && carries(e, static_cast<std::size_t>(pbit))) {
                scratch_.push_back(slot);
                ++i;
            } else {
                subscribed_[static_cast<std::size_t>(slot)].reset(
                    static_cast<std::size_t>(pbit));
                list[i] = list.back();
                list.pop_back();
            }
        }
        std::sort(scratch_.begin(), scratch_.end(),
                  [&window](int a, int b) {
                      return window[static_cast<std::size_t>(a)].seq
                             < window[static_cast<std::size_t>(b)].seq;
                  });
        return scratch_;
    }

    /**
     * Retire residue guard: does any live entry other than @p self
     * still carry bit @p pbit? Prunes stale subscriptions it passes.
     */
    bool
    anyOtherCarrier(int pbit, const std::vector<RsEntry> &window,
                    int self)
    {
        auto &list = subs_[static_cast<std::size_t>(pbit)];
        for (std::size_t i = 0; i < list.size();) {
            const int slot = list[i];
            const RsEntry &e = window[static_cast<std::size_t>(slot)];
            if (e.busy && carries(e, static_cast<std::size_t>(pbit))) {
                if (slot != self)
                    return true;
                ++i;
            } else {
                subscribed_[static_cast<std::size_t>(slot)].reset(
                    static_cast<std::size_t>(pbit));
                list[i] = list.back();
                list.pop_back();
            }
        }
        return false;
    }

    bool
    isSubscribed(int slot, int pbit) const
    {
        return subscribed_[static_cast<std::size_t>(slot)].test(
            static_cast<std::size_t>(pbit));
    }

    /**
     * Verify invariants (A) and (B) against @p window. @return false
     * (with an explanation in @p why, if given) on the first breach.
     */
    bool
    checkInvariants(const std::vector<RsEntry> &window,
                    std::string *why = nullptr) const
    {
        const auto fail = [&](const std::string &msg) {
            if (why)
                *why = msg;
            return false;
        };
        const std::size_t nslots = subscribed_.size();
        // (A) list membership <-> subscribed bit, exactly once.
        std::vector<int> count(nslots, 0);
        for (std::size_t p = 0; p < nslots; ++p) {
            std::fill(count.begin(), count.end(), 0);
            for (int slot : subs_[p])
                ++count[static_cast<std::size_t>(slot)];
            for (std::size_t s = 0; s < nslots; ++s) {
                const int expect = subscribed_[s].test(p) ? 1 : 0;
                if (count[s] != expect) {
                    return fail("slot " + std::to_string(s)
                                + " appears " + std::to_string(count[s])
                                + "x in subs[" + std::to_string(p)
                                + "], subscribed bit is "
                                + std::to_string(expect));
                }
            }
        }
        // (B) every set dependence bit of a busy entry is subscribed.
        for (std::size_t s = 0; s < nslots; ++s) {
            const RsEntry &e = window[s];
            if (!e.busy)
                continue;
            SpecMask m = e.src[0].deps;
            m |= e.src[1].deps;
            m |= e.outDeps;
            m |= e.memDeps;
            const SpecMask missing = m & ~subscribed_[s];
            if (missing.any()) {
                return fail("busy slot " + std::to_string(s)
                            + " carries bit "
                            + std::to_string(mask::findFirst(missing))
                            + " without a subscription");
            }
        }
        return true;
    }

  private:
    std::vector<std::vector<int>> subs_; //!< per prediction bit
    std::vector<SpecMask> subscribed_;   //!< per slot: bits in subs_
    std::vector<int> scratch_;           //!< collect() output storage
};

/**
 * Iterate a policy sweep's domain: the collected subscriber list when
 * the core runs sparse sweeps, the full program-order window
 * otherwise.
 */
template <typename Fn>
inline void
forEachSweepSlot(const WindowRef &w, const std::vector<int> *sparse,
                 Fn &&fn)
{
    if (sparse) {
        for (int slot : *sparse)
            fn(slot);
    } else {
        for (int slot : w.order)
            fn(slot);
    }
}

} // namespace vsim::core

#endif // VSIM_CORE_SUBSCRIBER_INDEX_HH
