/**
 * @file
 * Front-end stages of the layered core: instruction fetch (icache
 * timing, next-PC prediction per §5.1) and dispatch (window
 * allocation, operand capture, value prediction per §2.2/§5.2).
 */

#include "ooo_core.hh"

#include <algorithm>

#include "vsim/arch/exec.hh"
#include "vsim/base/logging.hh"

namespace vsim::core
{

namespace
{

/** True when the instruction's result register is value-predictable. */
bool
vpEligibleInst(const isa::Inst &inst)
{
    return inst.destReg() >= 0 && !inst.isControl();
}

} // namespace

// =====================================================================
// fetch
// =====================================================================

void
OooCore::fetchStage()
{
    if (halted || fetchSawHalt || cycle < fetchResumeAt)
        return;
    fetchStallIcache = false; // any pending I$ stall has elapsed

    const int width = cfg.effFetchWidth();
    const std::size_t buf_cap = static_cast<std::size_t>(2 * width);
    int fetched = 0;

    while (fetched < width && fetchQueue.size() < buf_cap) {
        const std::uint32_t word =
            static_cast<std::uint32_t>(memory.read(fetchPc, 4));
        const auto decoded = isa::decode(word);
        if (!decoded) {
            // Wrong-path fetch ran into non-code bytes; a real machine
            // would raise a fault that the squash discards. Idle the
            // front end until the redirect arrives.
            VSIM_ASSERT(!fetchOnCorrectPath,
                        "illegal instruction on the correct path at pc=",
                        fetchPc);
            fetchResumeAt = ~0ull;
            return;
        }
        const isa::Inst inst = *decoded;

        // Instruction-cache timing: a miss stalls the front end for
        // the fill delay; the line is resident on resume.
        const int ilat = icacheH.access(fetchPc, false);
        if (ilat > cfg.icacheHitLat) {
            fetchResumeAt =
                cycle + static_cast<std::uint64_t>(ilat - cfg.icacheHitLat);
            fetchStallIcache = true;
            return;
        }

        FetchedInst f;
        f.pc = fetchPc;
        f.inst = inst;
        f.availableAt = cycle + 1;
        f.traceIndex = fetchOnCorrectPath ? fetchTraceIdx : -1;

        // ---- next-PC prediction (paper §5.1 rules) ------------------
        const bool on_path =
            fetchOnCorrectPath
            && fetchTraceIdx
                   < static_cast<std::int64_t>(trace.entries.size());
        VSIM_ASSERT(!fetchOnCorrectPath || on_path,
                    "fetch ran past the end of the program trace");
        const arch::TraceEntry *te =
            on_path ? &trace.entries[static_cast<std::size_t>(
                          fetchTraceIdx)]
                    : nullptr;
        if (te) {
            VSIM_ASSERT(te->pc == fetchPc,
                        "correct-path fetch diverged from trace");
        }

        if (inst.isCondBranch()) {
            const bool pred_dir = bpred_->predict(fetchPc);
            if (te) {
                const bool actual_dir = te->nextPc != fetchPc + 4;
                auto trained =
                    bpTrained.begin() + static_cast<std::ptrdiff_t>(
                                            fetchTraceIdx);
                if (!*trained) {
                    bpred_->update(fetchPc, actual_dir);
                    *trained = true;
                }
                if (pred_dir == actual_dir) {
                    // Targets are always right when direction is right.
                    f.predTaken = actual_dir;
                    f.predNextPc = te->nextPc;
                } else {
                    f.predTaken = pred_dir;
                    f.predNextPc = pred_dir
                                       ? arch::directTarget(inst, fetchPc)
                                       : fetchPc + 4;
                }
            } else {
                f.predTaken = pred_dir;
                f.predNextPc = pred_dir
                                   ? arch::directTarget(inst, fetchPc)
                                   : fetchPc + 4;
            }
        } else if (inst.op == isa::Op::JAL) {
            f.predTaken = true;
            f.predNextPc = arch::directTarget(inst, fetchPc);
        } else if (inst.op == isa::Op::JALR) {
            // Unconditional jumps are always predicted correctly on
            // the correct path (§5.1); the wrong path has no oracle,
            // so fall through and let execution redirect.
            f.predTaken = true;
            f.predNextPc = te ? te->nextPc : fetchPc + 4;
        } else {
            f.predTaken = false;
            f.predNextPc = fetchPc + 4;
        }

        fetchQueue.push_back(f);
        ++stats_.fetched;
        ++fetched;

        if (fetchOnCorrectPath) {
            if (inst.op == isa::Op::HALT) {
                fetchSawHalt = true;
                return;
            }
            if (te && f.predNextPc != te->nextPc)
                fetchOnCorrectPath = false; // entering the wrong path
            ++fetchTraceIdx;
        }
        fetchPc = f.predNextPc;
    }
}

// =====================================================================
// dispatch
// =====================================================================

void
OooCore::captureOperand(RsEntry &e, int idx, int reg)
{
    Operand &o = e.src[idx];
    o = Operand{};
    if (reg < 0) {
        o.state = OperandState::Unused;
        return;
    }
    o.reg = reg;
    const int t = reg == 0 ? -1 : regTag[static_cast<std::size_t>(reg)];
    if (t < 0) {
        o.value = reg == 0 ? 0 : archRegs[static_cast<std::size_t>(reg)];
        o.state = OperandState::Valid;
        o.tag = -1;
        o.readyAt = cycle;
        o.validAt = cycle;
        return;
    }

    RsEntry &p = entry(t);
    o.tag = t;
    if (p.predicted && !p.predResolved) {
        // The prediction stands in for the producer's result until the
        // verification network resolves it.
        o.value = p.predValue;
        o.state = OperandState::Predicted;
        o.deps.set(static_cast<std::size_t>(t));
        o.readyAt = cycle;
        notePredConsumed(p);
    } else if (p.executed) {
        o.value = p.outValue;
        o.deps = p.outDeps;
        o.readyAt = std::max(cycle, cold(t).execDoneAt);
        if (o.deps.none()) {
            o.state = OperandState::Valid;
            o.validAt = cycle;
        } else {
            o.state = OperandState::Speculative;
        }
    } else {
        o.state = OperandState::Invalid; // wait on the result bus
        if (readyListScheduler())
            registerWaiter(e.slot, idx, t);
    }
}

void
OooCore::predictValueAt(RsEntry &e)
{
    if (!cfg.useValuePrediction || !vpEligibleInst(e.inst))
        return;
    e.vpEligible = true;
    RsCold &c = cold(e.slot);

    const bool have_actual = e.traceIndex >= 0;
    const std::uint64_t actual =
        have_actual
            ? trace.entries[static_cast<std::size_t>(e.traceIndex)].value
            : 0;

    if (predOverride) {
        if (auto forced = predOverride(c.pc, actual)) {
            e.predValue = *forced;
            e.predConfident = true;
            e.predicted = true;
        } else {
            e.vpEligible = false;
        }
        return;
    }

    const vpred::Prediction p = vpred_->predict(c.pc);
    e.predValue = p.value;
    c.predToken = p.token;

    switch (cfg.confidence) {
      case ConfidenceKind::Real:
        e.predConfident = conf_->confident(c.pc);
        break;
      case ConfidenceKind::Oracle:
        e.predConfident = have_actual && p.value == actual;
        break;
      case ConfidenceKind::Always:
        e.predConfident = true;
        break;
    }
    e.predicted = e.predConfident;

    if (cfg.updateTiming == UpdateTiming::Immediate) {
        // Idealised immediate update with the correct value (§5.2),
        // once per dynamic instance. The wrong path has no oracle and
        // cannot train.
        if (have_actual
            && !vpTrained[static_cast<std::size_t>(e.traceIndex)]) {
            vpTrained[static_cast<std::size_t>(e.traceIndex)] = true;
            vpred_->pushHistory(c.pc, actual);
            vpred_->updateTable(c.pc, p.token, actual);
            if (cfg.confidence == ConfidenceKind::Real)
                conf_->update(c.pc, p.value == actual);
        }
    } else {
        // Delayed update: history speculatively advanced with the
        // prediction now; tables trained at retirement (§5.2).
        vpred_->pushHistory(c.pc, p.value);
    }
}

void
OooCore::dispatchStage()
{
    if (halted)
        return;
    const int width = cfg.effFetchWidth();
    for (int n = 0; n < width && !fetchQueue.empty(); ++n) {
        const FetchedInst &f = fetchQueue.front();
        if (f.availableAt > cycle || liveEntries >= cfg.windowSize)
            return;

        const int slot = allocSlot();
        RsEntry &e = entry(slot);
        RsCold &c = cold(slot);
        e.slot = slot;
        e.seq = nextSeq++;
        c.pc = f.pc;
        e.inst = f.inst;
        e.traceIndex = f.traceIndex;
        e.dispatchAt = cycle;
        c.predTaken = f.predTaken;
        c.predNextPc = f.predNextPc;

        captureOperand(e, 0, e.inst.srcReg1());
        captureOperand(e, 1, e.inst.srcReg2());
        // The captures above are the dispatch-time mask-gaining site:
        // subscribe the entry to every prediction bit it picked up.
        subsIndex.noteEntry(e);
        predictValueAt(e);
        if (e.predicted) {
            ++specLive;
            ++stats_.predMade;
            ledgerPredictionMade(e);
        }

        if (int dest = e.inst.destReg(); dest >= 0)
            regTag[static_cast<std::size_t>(dest)] = slot;
        if (e.inst.isMem())
            lsq.push_back(slot);
        windowOrder.push_back(slot);
        touchWakeup(slot);

        if (tracingEnabled) {
            tracer_.label(e.seq, isa::disassemble(e.inst));
            tracer_.note(e.seq, cycle, "D");
        }

        fetchQueue.pop_front();
        ++stats_.dispatched;
    }
}

} // namespace vsim::core
