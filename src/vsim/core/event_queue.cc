#include "event_queue.hh"

#include <algorithm>

#include "vsim/base/logging.hh"

namespace vsim::core
{

void
EventQueue::schedule(std::uint64_t at, const Event &ev)
{
    byCycle[at].push_back(ev);
}

void
EventQueue::scheduleWave(std::uint64_t at, EventKind kind, int slot,
                         std::uint64_t seq, bool hierarchical)
{
    schedule(at, {kind, slot, seq, hierarchical ? 0 : -1});
}

void
EventQueue::advanceWave(std::uint64_t now, const Event &ev)
{
    VSIM_ASSERT(ev.depth >= 0, "advancing a non-wave event");
    schedule(now + 1, {ev.kind, ev.slot, ev.seq, ev.depth + 1});
}

const std::vector<Event> &
EventQueue::popBatch(std::uint64_t now)
{
    VSIM_ASSERT(due(now), "popBatch with no due events");
    auto it = byCycle.begin();
    batchScratch.clear();
    batchScratch.insert(batchScratch.end(), it->second.begin(),
                        it->second.end());
    byCycle.erase(it);
    std::stable_sort(batchScratch.begin(), batchScratch.end(),
                     [](const Event &a, const Event &b) {
                         if (a.seq != b.seq)
                             return a.seq < b.seq;
                         return static_cast<int>(a.kind)
                                < static_cast<int>(b.kind);
                     });
    return batchScratch;
}

std::size_t
EventQueue::pendingEvents() const
{
    std::size_t n = 0;
    for (const auto &[at, batch] : byCycle)
        n += batch.size();
    return n;
}

} // namespace vsim::core
