/**
 * @file
 * Word-level operations over the SpecMask bitset storage. The
 * speculation sweeps (§3.1/§3.2) and the subscriber bookkeeping spend
 * their time asking three questions — "is bit p set (and clear it)",
 * "do these masks intersect", "which bits are set" — and the idiomatic
 * std::bitset spellings hide the word-parallel answers behind
 * per-call-site test/reset pairs and full-mask temporaries. This
 * header names the patterns once so the hot paths read as intent and
 * compile to the underlying word scans.
 *
 * The scans view the bitset as an array of 64-bit words (std::bit_cast
 * — libstdc++ stores bit b of a bitset in word b/64 at position b%64,
 * which on a little-endian host is exactly the uint64 array layout)
 * and walk set bits with countr_zero + clear-lowest-bit loops: no
 * per-bit branch, zero words cost one compare each. Hosts where that
 * layout assumption does not hold fall back to a portable per-word
 * shift loop over to_ullong-sized chunks.
 */

#ifndef VSIM_CORE_MASK_OPS_HH
#define VSIM_CORE_MASK_OPS_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "window_types.hh"

namespace vsim::core::mask
{

/** @return whether @p bit was set; the bit is clear afterwards. */
inline bool
testAndClear(SpecMask &m, std::size_t bit)
{
    if (!m.test(bit))
        return false;
    m.reset(bit);
    return true;
}

/** Any bit set in both masks? (One word-parallel AND, no branch per bit.) */
inline bool
anyIntersect(const SpecMask &a, const SpecMask &b)
{
    return (a & b).any();
}

inline constexpr std::size_t kMaskWords = kMaxWindow / 64;

/** The mask reinterpreted as ascending 64-bit words (word i holds
 *  bits [64i, 64i+64)). */
using MaskWords = std::array<std::uint64_t, kMaskWords>;

/** Direct word view is valid: libstdc++ unsigned-long storage on a
 *  little-endian LP64 host with a whole number of words. */
inline constexpr bool kDirectWordView =
#if defined(__GLIBCXX__)
    std::endian::native == std::endian::little
    && sizeof(SpecMask) == sizeof(MaskWords) && kMaxWindow % 64 == 0;
#else
    false;
#endif

/** @return word @p wi of @p m (bits [64*wi, 64*wi+64)), loaded in
 *  place — no full-mask copy, so early-exit scans touch only the
 *  words they read. The memcpy compiles to a single 8-byte load. */
inline std::uint64_t
wordAt(const SpecMask &m, std::size_t wi)
{
    if constexpr (kDirectWordView) {
        std::uint64_t w;
        std::memcpy(&w,
                    reinterpret_cast<const unsigned char *>(&m)
                        + wi * sizeof(std::uint64_t),
                    sizeof(w));
        return w;
    } else {
        return ((m >> (wi * 64)) & SpecMask(~0ull)).to_ullong();
    }
}

/** @return @p m as 64-bit words, cheapest way the host allows. */
inline MaskWords
toWords(const SpecMask &m)
{
    if constexpr (kDirectWordView) {
        return std::bit_cast<MaskWords>(m);
    } else {
        MaskWords words{};
        for (std::size_t w = 0; w < kMaskWords; ++w)
            words[w] = wordAt(m, w);
        return words;
    }
}

/**
 * Call @p fn(int bit) for every set bit of @p m, ascending. Word
 * parallel and branchless per bit: each word is consumed by a
 * countr_zero / clear-lowest-set loop, so the iteration count equals
 * the popcount plus one compare per word.
 */
template <typename Fn>
inline void
forEachSetBit(const SpecMask &m, Fn &&fn)
{
    // Unrolled: sparse masks pay mostly loop overhead otherwise, and
    // the trip count is a compile-time constant (8 at kMaxWindow=512).
#pragma GCC unroll 8
    for (std::size_t wi = 0; wi < kMaskWords; ++wi) {
        std::uint64_t w = wordAt(m, wi);
        const int base = static_cast<int>(wi * 64);
        while (w) {
            fn(base + std::countr_zero(w));
            w &= w - 1;
        }
    }
}

/** First set bit of @p m, or -1 when empty. */
inline int
findFirst(const SpecMask &m)
{
#pragma GCC unroll 8
    for (std::size_t wi = 0; wi < kMaskWords; ++wi) {
        const std::uint64_t w = wordAt(m, wi);
        if (w)
            return static_cast<int>(wi * 64) + std::countr_zero(w);
    }
    return -1;
}

} // namespace vsim::core::mask

#endif // VSIM_CORE_MASK_OPS_HH
