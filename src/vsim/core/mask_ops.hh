/**
 * @file
 * Word-level operations over the SpecMask bitset storage. The
 * speculation sweeps (§3.1/§3.2) and the subscriber bookkeeping spend
 * their time asking three questions — "is bit p set (and clear it)",
 * "do these masks intersect", "which bits are set" — and the idiomatic
 * std::bitset spellings hide the word-parallel answers behind
 * per-call-site test/reset pairs and full-mask temporaries. This
 * header names the patterns once so the hot paths read as intent and
 * compile to the underlying word scans.
 *
 * libstdc++ exposes its word-parallel first-set scan as
 * _Find_first/_Find_next (a ctz per 64-bit word); other standard
 * libraries fall back to a portable per-word shift loop over
 * to_ullong-sized chunks.
 */

#ifndef VSIM_CORE_MASK_OPS_HH
#define VSIM_CORE_MASK_OPS_HH

#include <cstddef>

#include "window_types.hh"

namespace vsim::core::mask
{

/** @return whether @p bit was set; the bit is clear afterwards. */
inline bool
testAndClear(SpecMask &m, std::size_t bit)
{
    if (!m.test(bit))
        return false;
    m.reset(bit);
    return true;
}

/** Any bit set in both masks? (One word-parallel AND, no branch per bit.) */
inline bool
anyIntersect(const SpecMask &a, const SpecMask &b)
{
    return (a & b).any();
}

/**
 * Call @p fn(int bit) for every set bit of @p m, ascending. Word
 * parallel: the scan skips zero words instead of testing every bit.
 */
template <typename Fn>
inline void
forEachSetBit(const SpecMask &m, Fn &&fn)
{
#if defined(__GLIBCXX__)
    for (std::size_t b = m._Find_first(); b < m.size();
         b = m._Find_next(b)) {
        fn(static_cast<int>(b));
    }
#else
    constexpr std::size_t kWord = 64;
    for (std::size_t base = 0; base < m.size(); base += kWord) {
        unsigned long long w =
            ((m >> base) & SpecMask(~0ull)).to_ullong();
        while (w) {
            const int bit = __builtin_ctzll(w);
            fn(static_cast<int>(base) + bit);
            w &= w - 1;
        }
    }
#endif
}

/** First set bit of @p m, or -1 when empty. */
inline int
findFirst(const SpecMask &m)
{
#if defined(__GLIBCXX__)
    const std::size_t b = m._Find_first();
    return b < m.size() ? static_cast<int>(b) : -1;
#else
    int found = -1;
    forEachSetBit(m, [&](int b) {
        if (found < 0)
            found = b;
    });
    return found;
#endif
}

} // namespace vsim::core::mask

#endif // VSIM_CORE_MASK_OPS_HH
