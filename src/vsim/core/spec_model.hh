/**
 * @file
 * The paper's central contribution: the *speculative-execution model*
 * (§4) — a systematic description of a value-speculative
 * microarchitecture as a set of model variables (policies) and
 * latency variables (cycles between microarchitectural events).
 *
 * Latency variables are measured from the end of the first event to
 * the end of the second event, in cycles:
 *
 *   Execution – Equality            (execToEquality)
 *   Equality – Invalidation         (equalityToInvalidate)
 *   Equality – Verification         (equalityToVerify)
 *   Verification – Free issue res.  (verifyToFreeResource; unified RUU
 *   Verification – Free retire res.  makes these one variable)
 *   Invalidation – Reissue          (invalidateToReissue)
 *   Verification – Branch           (verifyToBranch)
 *   Verification Address – Mem.Acc. (verifyAddrToMem)
 *
 * The three named models of §4.1 are provided as factories:
 *
 *   | latency variable                    | super | great | good |
 *   |-------------------------------------|-------|-------|------|
 *   | Execution – Equality – Invalidation |   0   |   0   |  1   |
 *   | Execution – Equality – Verification |   0   |   0   |  1   |
 *   | Verification – Free Issue Resource  |   1   |   1   |  1   |
 *   | Verification – Free Retirement Res. |   1   |   1   |  1   |
 *   | Invalidation – Reissue              |   0   |   1   |  1   |
 *   | Verification – Branch               |   0   |   1   |  1   |
 *   | Verification Address – Mem. Access  |   0   |   1   |  1   |
 */

#ifndef VSIM_CORE_SPEC_MODEL_HH
#define VSIM_CORE_SPEC_MODEL_HH

#include <string>

namespace vsim::core
{

/** Verification mechanism (model variable, §3.2). */
enum class VerifyScheme
{
    /**
     * Flattened-hierarchical "verification network": all direct and
     * indirect successors of a (in)validated instruction are informed
     * in a single event. Highest performance potential.
     */
    Flattened,

    /**
     * Hierarchical: a verified instruction validates only its direct
     * successors; the wave advances one dependence level per cycle on
     * the tag-broadcast network.
     */
    Hierarchical,

    /**
     * Retirement-based: only the w oldest window entries can be
     * validated each cycle, where w is the retirement width.
     */
    RetirementBased,

    /** Hybrid of retirement-based (release) + hierarchical (detect). */
    Hybrid,
};

/** Invalidation mechanism (model variable, §3.1). */
enum class InvalScheme
{
    /** Selective, all successors in one event (parallel network). */
    Flattened,
    /** Selective, one dependence level per cycle. */
    Hierarchical,
    /** Complete: treat value misprediction like branch misprediction. */
    Complete,
};

/**
 * Issue-selection policy (model variable, §3.5). The paper evaluates
 * TypedSpecLast and calls selection for speculative execution "an
 * important research subject not explored in this paper"; the other
 * policies make that exploration possible.
 */
enum class SelectPolicy
{
    /**
     * Paper §3.5: branches and loads first, non-speculative preferred
     * over speculative, then oldest-first.
     */
    TypedSpecLast,
    /** Branches/loads first, then oldest; speculative state ignored. */
    TypedOnly,
    /** Pure dynamic program order. */
    OldestFirst,
    /**
     * Speculative candidates preferred (aggressive speculation-first
     * scheduling: spend issue slots on predictions, let valid work
     * wait).
     */
    TypedSpecFirst,
};

/**
 * A complete speculative-execution model: latency variables plus the
 * policy (model) variables the paper's evaluation fixes in §4.1 —
 * wakeup on valid/speculative operands, selection by type/age with
 * non-speculative preferred, branches and memory resolved only with
 * valid operands, verification network for verify+invalidate.
 */
struct SpecModel
{
    std::string name = "custom";

    // ---- latency variables (cycles) -----------------------------------
    int execToEquality = 0;
    int equalityToInvalidate = 0;
    int equalityToVerify = 0;
    int verifyToFreeResource = 1;
    int invalidateToReissue = 1;
    int verifyToBranch = 1;
    int verifyAddrToMem = 1;

    // ---- model variables ----------------------------------------------
    VerifyScheme verifyScheme = VerifyScheme::Flattened;
    InvalScheme invalScheme = InvalScheme::Flattened;
    SelectPolicy selectPolicy = SelectPolicy::TypedSpecLast;

    /** Branches resolve only with valid operands (paper's choice). */
    bool branchNeedsValidOps = true;
    /**
     * Memory ops access memory only with valid addresses (§3.2,
     * the paper's evaluation default). When false, loads may issue
     * with speculative addresses and forward speculative store data;
     * the LSQ tracks the memory-carried dependences (RsEntry::memDeps)
     * and raises violations through the invalidation network
     * (--mem-resolution spec).
     */
    bool memNeedsValidOps = true;

    /** Most optimistic model of §4.1. */
    static SpecModel superModel();
    /** 1-cycle reissue / branch-inform / mem-inform. */
    static SpecModel greatModel();
    /** Most pessimistic: 1-cycle equality+verify/invalidate as well. */
    static SpecModel goodModel();

    /**
     * Look up by name ("super", "great", "good") or build a custom
     * model from a latency tuple "E,EI,EV,VF,IR,VB,VA" — the seven §4
     * latency variables in the order execToEquality,
     * equalityToInvalidate, equalityToVerify, verifyToFreeResource,
     * invalidateToReissue, verifyToBranch, verifyAddrToMem (e.g.
     * "0,0,1,1,1,1,1"). Fatal on anything else.
     */
    static SpecModel byName(const std::string &name);
};

/**
 * Parse a model-variable name from the command line. Accepted names
 * (with short aliases): "flattened"/"flat", "hierarchical"/"hier",
 * "retirement"/"retire", "hybrid" for verification; "flattened",
 * "hierarchical", "complete" for invalidation; "typed-spec-last",
 * "typed-only", "oldest-first", "typed-spec-first" for selection.
 * Fatal with the list of valid names on anything else.
 */
VerifyScheme parseVerifyScheme(const std::string &name);
InvalScheme parseInvalScheme(const std::string &name);
SelectPolicy parseSelectPolicy(const std::string &name);

/** Canonical names of the model variables (labels, jobKey). */
const char *verifySchemeName(VerifyScheme scheme);
const char *invalSchemeName(InvalScheme scheme);
const char *selectPolicyName(SelectPolicy policy);

inline SpecModel
SpecModel::superModel()
{
    SpecModel m;
    m.name = "super";
    m.execToEquality = 0;
    m.equalityToInvalidate = 0;
    m.equalityToVerify = 0;
    m.verifyToFreeResource = 1;
    m.invalidateToReissue = 0;
    m.verifyToBranch = 0;
    m.verifyAddrToMem = 0;
    return m;
}

inline SpecModel
SpecModel::greatModel()
{
    SpecModel m;
    m.name = "great";
    m.execToEquality = 0;
    m.equalityToInvalidate = 0;
    m.equalityToVerify = 0;
    m.verifyToFreeResource = 1;
    m.invalidateToReissue = 1;
    m.verifyToBranch = 1;
    m.verifyAddrToMem = 1;
    return m;
}

inline SpecModel
SpecModel::goodModel()
{
    SpecModel m;
    m.name = "good";
    // The paper states these as combined Execution–Equality–X = 1; we
    // charge the cycle to the comparator stage.
    m.execToEquality = 1;
    m.equalityToInvalidate = 0;
    m.equalityToVerify = 0;
    m.verifyToFreeResource = 1;
    m.invalidateToReissue = 1;
    m.verifyToBranch = 1;
    m.verifyAddrToMem = 1;
    return m;
}

} // namespace vsim::core

#endif // VSIM_CORE_SPEC_MODEL_HH
