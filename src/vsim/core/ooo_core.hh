/**
 * @file
 * Cycle-level out-of-order core with value speculation.
 *
 * The base microarchitecture follows the paper's §2.1: a Register
 * Update Unit (unified issue + retirement window of reservation
 * stations), values living in the register file / window / bypass,
 * selection prioritising branches and loads then oldest-first, loads
 * waiting for all preceding store addresses, perfect load-hit
 * scheduling (consumers wake when the load's actual latency elapses),
 * wrong-path execution with modelled side effects, and no functional
 * unit limits except data-cache ports.
 *
 * Value speculation (§2.2) adds the four operand states
 * (invalid / predicted / speculative / valid), a value predictor +
 * confidence estimator consulted at dispatch, and the verification
 * network. Dependence on unresolved predictions is tracked exactly:
 * every operand and every produced value carries a bitmask (over
 * window slots) of the predictions it transitively depends on, so the
 * flattened-hierarchical verify/invalidate events of the model are a
 * single mask sweep — precisely the parallel semantics of §3.1/§3.2.
 *
 * Timing of the speculation events is governed entirely by the
 * SpecModel latency variables (§4); with value prediction disabled the
 * machine is the paper's base processor.
 *
 * Correctness is enforced by construction: the retire stage compares
 * every committed instruction against the functional pre-execution
 * trace and panics on divergence, so timing bugs cannot silently
 * corrupt results.
 */

#ifndef VSIM_CORE_OOO_CORE_HH
#define VSIM_CORE_OOO_CORE_HH

#include <bitset>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core_config.hh"
#include "core_stats.hh"
#include "pipeline_trace.hh"
#include "spec_model.hh"
#include "vsim/obs/interval.hh"
#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/program.hh"
#include "vsim/bpred/bpred.hh"
#include "vsim/mem/cache.hh"
#include "vsim/mem/mem_image.hh"
#include "vsim/vpred/vpred.hh"

namespace vsim::core
{

/** Upper bound on the instruction window (paper's largest is 96). */
constexpr int kMaxWindow = 128;

/** Set of unresolved predictions a value transitively depends on. */
using SpecMask = std::bitset<kMaxWindow>;

/** State of a reservation-station input operand (§2.2). */
enum class OperandState : std::uint8_t
{
    Unused,      //!< the instruction has no such operand
    Invalid,     //!< no value yet; waiting on the result bus
    Predicted,   //!< value came directly from the value predictor
    Speculative, //!< computed from >=1 predicted/speculative input
    Valid,       //!< architecturally correct
};

/** Final result of a simulation run. */
struct SimOutcome
{
    CoreStats stats;
    std::uint64_t exitCode = 0;
    std::string output;
    bool halted = false; //!< false if maxCycles was hit
    /** Per-interval time series (empty unless cfg.metricsInterval). */
    obs::IntervalSeries intervals;
};

/**
 * Optional hook that replaces the value predictor for specific PCs —
 * used by the Figure 1 reproduction to force correct or incorrect
 * predictions onto chosen instructions. Returning nullopt falls back
 * to "no prediction" for that instruction.
 */
using PredictionOverride = std::function<std::optional<std::uint64_t>(
    std::uint64_t pc, std::uint64_t correct_value)>;

class OooCore
{
  public:
    /**
     * Build a core for @p prog. The constructor runs the functional
     * pre-execution to obtain the oracle trace.
     */
    OooCore(const assembler::Program &prog, const CoreConfig &config);
    ~OooCore();

    OooCore(const OooCore &) = delete;
    OooCore &operator=(const OooCore &) = delete;

    /** Replace predictor output for matching PCs (Fig. 1 harness). */
    void setPredictionOverride(PredictionOverride override_fn);

    /** Run to completion (HALT retires) or cfg.maxCycles. */
    SimOutcome run();

    /** Advance one cycle; @return false once halted. */
    bool tick();

    const CoreStats &stats() const { return stats_; }
    const PipelineTracer &tracer() const { return tracer_; }
    std::uint64_t now() const { return cycle; }

    /** Per-PC value-prediction outcome counts: (eligible, correct). */
    using PerPcVp =
        std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>;
    const PerPcVp &perPcVpStats() const { return perPcVp; }

    /** Dynamic instruction count of the program (pre-execution). */
    std::uint64_t programLength() const { return trace.entries.size(); }

  private:
    // ---- per-operand / per-entry structures ---------------------------

    struct Operand
    {
        OperandState state = OperandState::Unused;
        int reg = -1;
        int tag = -1;            //!< producing slot; -1 = register file
        std::uint64_t value = 0;
        SpecMask deps;
        std::uint64_t readyAt = 0;  //!< cycle the value can be consumed
        std::uint64_t validAt = 0;  //!< cycle state became Valid
        bool validViaEvent = false; //!< validity arrived via the network

        bool hasValue() const { return state != OperandState::Invalid
                                       && state != OperandState::Unused; }
        bool used() const { return state != OperandState::Unused; }
    };

    struct RsEntry
    {
        bool busy = false;
        int slot = -1; //!< own physical index (= prediction bit)
        std::uint64_t seq = 0;
        std::uint64_t nonce = 0; //!< bumps on (re)issue/nullify
        std::uint64_t pc = 0;
        isa::Inst inst;
        std::int64_t traceIndex = -1; //!< -1 on the wrong path

        Operand src[2];

        bool issued = false;
        bool executed = false;
        std::uint64_t dispatchAt = 0;
        std::uint64_t execDoneAt = 0;
        std::uint64_t reissueAt = 0; //!< earliest re-select after nullify
        std::uint64_t nullifiedAt = 0; //!< cycle of the last nullification
        int execCount = 0;

        std::uint64_t outValue = 0;
        SpecMask outDeps;
        bool outValid = false;
        std::uint64_t outValidAt = 0;
        bool outValidViaEvent = false;

        // value prediction bookkeeping
        bool vpEligible = false;
        bool predicted = false; //!< confident prediction visible to users
        bool predResolved = false;
        bool eqScheduled = false;
        std::uint64_t predValue = 0;
        std::uint64_t predToken = 0;
        bool predConfident = false;
        bool predWasCorrect = false; //!< filled at retire

        // control
        bool predTaken = false;
        std::uint64_t predNextPc = 0;
        bool mispredicted = false; //!< caused a squash at resolution

        // memory
        bool addrReady = false;
        std::uint64_t memAddr = 0;
        std::uint64_t addrReadyAt = 0;

        // retire gating
        std::uint64_t verifiedAt = 0;
    };

    /** In-flight execution whose completion is pending. */
    struct Completion
    {
        int slot;
        std::uint64_t seq;
        std::uint64_t nonce;
        std::uint64_t value;   //!< result computed at issue
        bool taken;            //!< branch outcome
        std::uint64_t nextPc;  //!< branch target / next pc
    };

    enum class EventKind : std::uint8_t { EqCheck, Verify, Invalidate };

    struct Event
    {
        EventKind kind;
        int slot;
        std::uint64_t seq;
        /** Hierarchical schemes: remaining wave depth (unused = -1). */
        int depth = -1;
    };

    // ---- pipeline stages (called in reverse order each cycle) ----------
    void applyCompletions();
    void processEvents();
    void retireStage();
    void issueStage();
    void dispatchStage();
    void fetchStage();

    // ---- helpers --------------------------------------------------------
    int allocSlot();
    void freeSlot(int slot);
    int windowCount() const { return liveEntries; }
    RsEntry &entry(int slot) { return window[static_cast<std::size_t>(slot)]; }

    void captureOperand(RsEntry &e, int idx, int reg);
    void broadcast(RsEntry &producer);
    bool canIssue(const RsEntry &e) const;
    bool loadOrderingSatisfied(const RsEntry &e) const;
    bool loadValue(const RsEntry &e, std::uint64_t &value,
                   bool &forwarded) const;
    void issueEntry(RsEntry &e);
    void scheduleEvent(std::uint64_t at, const Event &ev);
    void doEqCheck(RsEntry &e);
    void doVerify(RsEntry &p, int depth);
    void doInvalidate(RsEntry &p, int depth);
    void nullify(RsEntry &e);
    void noteOutputValid(RsEntry &e, bool via_event);
    void squashAfter(std::uint64_t seq, std::uint64_t new_fetch_pc,
                     std::int64_t resume_trace_idx);
    void rebuildRegTags();
    bool retireOne();
    void predictValueAt(RsEntry &e);

    // ---- observability ---------------------------------------------------
    /** End-of-cycle sampling (histograms + interval metrics). */
    void sampleObservability();
    /** Close the open interval covering @p cycles cycles. */
    void flushInterval(std::uint64_t cycles);

    // ---- configuration / substrate --------------------------------------
    CoreConfig cfg;
    SpecModel model;
    arch::ExecTrace trace;
    mem::MemImage memory; //!< committed memory state
    std::array<std::uint64_t, isa::kNumRegs> archRegs{};
    std::string output;

    std::unique_ptr<bpred::BranchPredictor> bpred_;
    std::unique_ptr<vpred::ValuePredictor> vpred_;
    std::unique_ptr<vpred::ResettingConfidence> conf_;
    PredictionOverride predOverride;

    mem::Cache l2;
    mem::CacheHierarchy icacheH;
    mem::CacheHierarchy dcacheH;

    // ---- machine state ----------------------------------------------------
    std::uint64_t cycle = 0;
    std::uint64_t nextSeq = 1;
    bool halted = false;
    std::uint64_t exitCode = 0;

    std::vector<RsEntry> window; //!< physical slots
    std::vector<int> freeSlots;
    std::deque<int> windowOrder; //!< slots in program (seq) order
    int liveEntries = 0;

    std::array<int, isa::kNumRegs> regTag; //!< youngest producer slot

    /** LSQ: slots of in-flight memory instructions in program order. */
    std::deque<int> lsq;

    // fetch
    struct FetchedInst
    {
        std::uint64_t pc;
        isa::Inst inst;
        std::uint64_t availableAt;
        bool predTaken;
        std::uint64_t predNextPc;
        std::int64_t traceIndex;
    };
    std::deque<FetchedInst> fetchQueue;
    std::uint64_t fetchPc = 0;
    bool fetchOnCorrectPath = true;
    std::int64_t fetchTraceIdx = 0;
    std::uint64_t fetchResumeAt = 0; //!< stall for icache misses/redirect
    bool fetchSawHalt = false;

    std::map<std::uint64_t, std::vector<Completion>> completions;
    std::map<std::uint64_t, std::vector<Event>> events;

    std::uint64_t retiredCount = 0;
    int dcachePortsUsed = 0; //!< reset each cycle

    /**
     * Once-per-dynamic-instance training guards: an instruction that
     * is squashed and refetched must not train the predictors twice
     * (duplicate history pushes desynchronise the contexts).
     */
    std::vector<bool> vpTrained;
    std::vector<bool> bpTrained;

    CoreStats stats_;
    PipelineTracer tracer_;
    PerPcVp perPcVp;

    // ---- observability state ---------------------------------------------
    int specLive = 0; //!< unresolved confident predictions in flight

    /** Absolute counter values at the start of the open interval. */
    struct IntervalCursor
    {
        std::uint64_t cycleStart = 0;
        std::uint64_t occupancySum = 0; //!< accumulates within interval
        std::uint64_t retired = 0;
        std::uint64_t issued = 0;
        std::uint64_t dispatched = 0;
        std::uint64_t condBranches = 0;
        std::uint64_t condMispredicts = 0;
        std::uint64_t squashes = 0;
        std::uint64_t verifyEvents = 0;
        std::uint64_t invalidateEvents = 0;
        std::uint64_t nullifications = 0;
    };
    IntervalCursor ivCursor;
    obs::IntervalSeries intervals_;
};

} // namespace vsim::core

#endif // VSIM_CORE_OOO_CORE_HH
