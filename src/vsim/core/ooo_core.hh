/**
 * @file
 * Cycle-level out-of-order core with value speculation.
 *
 * The base microarchitecture follows the paper's §2.1: a Register
 * Update Unit (unified issue + retirement window of reservation
 * stations), values living in the register file / window / bypass,
 * selection prioritising branches and loads then oldest-first, loads
 * waiting for all preceding store addresses, perfect load-hit
 * scheduling (consumers wake when the load's actual latency elapses),
 * wrong-path execution with modelled side effects, and no functional
 * unit limits except data-cache ports.
 *
 * Value speculation (§2.2) adds the four operand states
 * (invalid / predicted / speculative / valid), a value predictor +
 * confidence estimator consulted at dispatch, and the verification
 * network. Dependence on unresolved predictions is tracked exactly:
 * every operand and every produced value carries a bitmask (over
 * window slots) of the predictions it transitively depends on — see
 * window_types.hh.
 *
 * The core is layered (see DESIGN.md):
 *
 *   frontend   fetch/dispatch stages            (ooo_frontend.cc)
 *   backend    wakeup/select/issue              (ooo_issue.cc)
 *              completion/events/retire         (ooo_commit.cc)
 *   policy/    the §3 model variables as strategy objects —
 *              SelectionPolicy, VerifyPolicy, InvalidatePolicy —
 *              constructed from the SpecModel by makePolicies()
 *   events     EventQueue with a deterministic (cycle, seq, kind)
 *              ordering contract                (event_queue.hh)
 *   wakeup     IssueScheduler ready lists keyed by operand
 *              availability                     (issue_scheduler.hh)
 *
 * Timing of the speculation events is governed entirely by the
 * SpecModel latency variables (§4); with value prediction disabled the
 * machine is the paper's base processor.
 *
 * Correctness is enforced by construction: the retire stage compares
 * every committed instruction against the functional pre-execution
 * trace and panics on divergence, so timing bugs cannot silently
 * corrupt results.
 */

#ifndef VSIM_CORE_OOO_CORE_HH
#define VSIM_CORE_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core_config.hh"
#include "core_stats.hh"
#include "event_queue.hh"
#include "issue_scheduler.hh"
#include "pipeline_trace.hh"
#include "policy/policies.hh"
#include "snapshot.hh"
#include "spec_model.hh"
#include "subscriber_index.hh"
#include "window_types.hh"
#include "vsim/obs/interval.hh"
#include "vsim/obs/ledger.hh"
#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/program.hh"
#include "vsim/bpred/bpred.hh"
#include "vsim/mem/cache.hh"
#include "vsim/mem/mem_image.hh"
#include "vsim/vpred/vpred.hh"

namespace vsim::core
{

/** Final result of a simulation run. */
struct SimOutcome
{
    CoreStats stats;
    std::uint64_t exitCode = 0;
    std::string output;
    bool halted = false; //!< false if maxCycles was hit
    /** Per-interval time series (empty unless cfg.metricsInterval). */
    obs::IntervalSeries intervals;
    /** Per-prediction records (empty unless cfg.specLedger). */
    obs::SpecLedger ledger;
};

/**
 * Optional hook that replaces the value predictor for specific PCs —
 * used by the Figure 1 reproduction to force correct or incorrect
 * predictions onto chosen instructions. Returning nullopt falls back
 * to "no prediction" for that instruction.
 */
using PredictionOverride = std::function<std::optional<std::uint64_t>(
    std::uint64_t pc, std::uint64_t correct_value)>;

class OooCore : private SpecHooks
{
  public:
    /**
     * Build a core for @p prog. The constructor runs the functional
     * pre-execution to obtain the oracle trace.
     */
    OooCore(const assembler::Program &prog, const CoreConfig &config);

    /**
     * Replay constructor: build a core for @p prog with an already
     * recorded dynamic trace (e.g. loaded from a .vst file) instead of
     * re-running the functional pre-execution. The correct path is
     * decode-free — it comes straight from @p recorded — while
     * wrong-path fetch still decodes from @p prog's image, so replay
     * is digest-identical to direct simulation of the same program.
     */
    OooCore(const assembler::Program &prog, arch::ExecTrace recorded,
            const CoreConfig &config);

    /**
     * Shared-trace replay constructor: like the replay constructor but
     * borrowing @p recorded instead of owning a copy, so N shard cores
     * replaying the same multi-gigabyte trace share one instance.
     */
    OooCore(const assembler::Program &prog,
            std::shared_ptr<const arch::ExecTrace> recorded,
            const CoreConfig &config);
    ~OooCore() override;

    OooCore(const OooCore &) = delete;
    OooCore &operator=(const OooCore &) = delete;

    /** Replace predictor output for matching PCs (Fig. 1 harness). */
    void setPredictionOverride(PredictionOverride override_fn);

    /**
     * Begin mid-trace from a functional-warmup snapshot: load the
     * architected registers/memory/PC and restore the predictor,
     * confidence and cache tables. Must be called on a fresh core,
     * before the first tick and before setRunWindow(). The snapshot
     * must have been produced for the same trace and machine
     * geometry.
     */
    void startFromSnapshot(const SimSnapshot &snap);

    /**
     * Shard stats window: start counting statistics once
     * @p stats_from_retired instructions have retired, and stop
     * simulating once @p stop_after_retired have. The boundary cut
     * happens at the end of the cycle in which the retired count
     * crosses the threshold, so two shards meeting at the same
     * boundary partition the cycle stream exactly (the crossing cycle
     * belongs to the earlier shard). Call after startFromSnapshot()
     * when both are used. Instruction counts are absolute trace
     * indices.
     */
    void setRunWindow(std::uint64_t stats_from_retired,
                      std::uint64_t stop_after_retired);

    /** Cycle at which the shard stats window opened (0 = at start). */
    std::uint64_t statsCutCycle() const { return statsCut.cycleAt; }

    /** Run to completion (HALT retires) or cfg.maxCycles. */
    SimOutcome run();

    /** Advance one cycle; @return false once halted. */
    bool tick();

    const CoreStats &stats() const { return stats_; }
    const PipelineTracer &tracer() const { return tracer_; }
    std::uint64_t now() const { return cycle; }

    /** Per-PC value-prediction outcome counts: (eligible, correct). */
    using PerPcVp =
        std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>;
    const PerPcVp &perPcVpStats() const { return perPcVp; }

    /** Dynamic instruction count of the program (pre-execution). */
    std::uint64_t programLength() const { return trace.entries.size(); }

    /**
     * Test hook: verify the subscriber-index invariants (every set
     * dependence bit subscribed and every subscription unique) against
     * the current window. @return false with an explanation in @p why.
     */
    bool
    checkSweepInvariants(std::string *why = nullptr) const
    {
        return subsIndex.checkInvariants(window, why);
    }

  private:
    // ---- pipeline stages (called in reverse order each cycle) ----------
    void applyCompletions(); // ooo_commit.cc
    void processEvents();    // ooo_commit.cc
    void retireStage();      // ooo_commit.cc
    void issueStage();       // ooo_issue.cc
    void dispatchStage();    // ooo_frontend.cc
    void fetchStage();       // ooo_frontend.cc

    // ---- slot / window helpers (ooo_core.cc) ---------------------------
    int allocSlot();
    void freeSlot(int slot);
    int windowCount() const { return liveEntries; }
    RsEntry &entry(int slot) { return window[static_cast<std::size_t>(slot)]; }
    const RsEntry &
    entry(int slot) const
    {
        return window[static_cast<std::size_t>(slot)];
    }
    RsCold &cold(int slot)
    {
        return windowCold[static_cast<std::size_t>(slot)];
    }
    const RsCold &
    cold(int slot) const
    {
        return windowCold[static_cast<std::size_t>(slot)];
    }
    WindowRef
    windowRef()
    {
        return {window, windowOrder,
                sparseSweeps() ? &subsIndex : nullptr, &windowCold};
    }
    bool sparseSweeps() const
    {
        return cfg.sweepKind == SweepKind::Sparse;
    }
    void squashAfter(std::uint64_t seq, std::uint64_t new_fetch_pc,
                     std::int64_t resume_trace_idx);
    void rebuildRegTags();
    void nullify(RsEntry &e);
    void noteOutputValid(RsEntry &e, bool via_event);
    void resolvePrediction(RsEntry &p, bool verified);

    // ---- frontend helpers (ooo_frontend.cc) ----------------------------
    void captureOperand(RsEntry &e, int idx, int reg);
    void predictValueAt(RsEntry &e);

    // ---- backend helpers (ooo_issue.cc / ooo_commit.cc) -----------------
    bool canIssue(const RsEntry &e) const;
    WakeClass classifyWakeup(int slot) const;
    bool loadOrderingSatisfied(const RsEntry &e) const;
    bool loadOrderingSatisfiedAt(const RsEntry &e,
                                 std::uint64_t addr) const;
    bool loadValue(const RsEntry &e, std::uint64_t &value,
                   bool &forwarded) const;
    SpecMask memCarriedDeps(const RsEntry &e) const;
    /** Memory ops may resolve with speculative operands (§3.2). */
    bool specMemResolution() const
    {
        return cfg.useValuePrediction && !model.memNeedsValidOps;
    }
    void issueEntry(RsEntry &e);
    void broadcast(RsEntry &producer);
    void doEqCheck(RsEntry &e);
    bool retireOne();

    // ---- SpecHooks: mutations raised by the policy sweeps ---------------
    void outputBecameValid(RsEntry &e) override;
    void nullifyEntry(RsEntry &e) override;
    void completeSquash(RsEntry &p) override;
    void wakeupChanged(RsEntry &e) override;
    void operandInvalidated(RsEntry &e, int idx) override;
    void attributeSweep(const RsEntry &p, const RsEntry &consumer,
                        bool invalidation) override;

    // ---- wakeup-scheduler bookkeeping ------------------------------------
    bool readyListScheduler() const
    {
        return cfg.scheduler == SchedulerKind::ReadyList;
    }
    void touchWakeup(int slot);
    void registerWaiter(int consumer_slot, int idx, int tag);

    // ---- observability ---------------------------------------------------
    /** End-of-cycle sampling (histograms + interval metrics). */
    void sampleObservability();
    /** Close the open interval covering @p cycles cycles. */
    void flushInterval(std::uint64_t cycles);
    /**
     * CPI-stack attribution: charge the cycle that just executed to
     * exactly one category, from end-of-cycle machine state.
     * @p retired_delta is the number of instructions retired this
     * cycle. Reads only deterministic simulation state, so stacks are
     * bit-identical across jobs, sweep kinds, schedulers and replay.
     */
    obs::CpiCat classifyCycle(std::uint64_t retired_delta) const;

    // ---- speculation-ledger bookkeeping ----------------------------------
    /** A consumer captured @p producer's still-unresolved prediction. */
    void notePredConsumed(const RsEntry &producer);
    /** Record the prediction dispatched on @p e (cfg.specLedger only). */
    void ledgerPredictionMade(const RsEntry &e);
    /** Terminal state for the prediction on slot @p p. */
    void ledgerResolved(const RsEntry &p, obs::LedgerOutcome outcome);

    // ---- configuration / substrate --------------------------------------
    CoreConfig cfg;
    SpecModel model;
    PolicySet policies;
    /**
     * Oracle trace, shared so shard workers replaying the same trace
     * do not copy it; `trace` is the single access path for the
     * stages. traceOwned must be declared before trace (it
     * initializes the reference).
     */
    std::shared_ptr<const arch::ExecTrace> traceOwned;
    const arch::ExecTrace &trace;
    mem::MemImage memory; //!< committed memory state
    std::array<std::uint64_t, isa::kNumRegs> archRegs{};
    std::string output;

    std::unique_ptr<bpred::BranchPredictor> bpred_;
    std::unique_ptr<vpred::ValuePredictor> vpred_;
    std::unique_ptr<vpred::ResettingConfidence> conf_;
    PredictionOverride predOverride;

    mem::Cache l2;
    mem::CacheHierarchy icacheH;
    mem::CacheHierarchy dcacheH;

    // ---- machine state ----------------------------------------------------
    std::uint64_t cycle = 0;
    std::uint64_t nextSeq = 1;
    bool halted = false;
    std::uint64_t exitCode = 0;

    std::vector<RsEntry> window; //!< physical slots (hot SoA half)
    /**
     * Cold SoA half of the window, parallel to `window` by slot: the
     * once-per-instruction bookkeeping (pc, branch/value-prediction
     * metadata, latency timestamps) the wakeup scans and policy sweeps
     * never read. Reset together with the hot entry in allocSlot().
     */
    std::vector<RsCold> windowCold;
    std::vector<int> freeSlots;
    SlotRing windowOrder; //!< slots in program (seq) order
    int liveEntries = 0;

    /**
     * Per-prediction-bit subscriber lists feeding the sparse policy
     * sweeps. Maintained under both sweep kinds (note() calls at every
     * mask-gaining site are cheap and keep the invariant checker
     * meaningful in differential runs); consulted only when
     * cfg.sweepKind == SweepKind::Sparse.
     */
    SubscriberIndex subsIndex;

    std::array<int, isa::kNumRegs> regTag; //!< youngest producer slot

    /** LSQ: slots of in-flight memory instructions in program order. */
    SlotRing lsq;

    // fetch
    struct FetchedInst
    {
        std::uint64_t pc;
        isa::Inst inst;
        std::uint64_t availableAt;
        bool predTaken;
        std::uint64_t predNextPc;
        std::int64_t traceIndex;
    };
    std::deque<FetchedInst> fetchQueue;
    std::uint64_t fetchPc = 0;
    bool fetchOnCorrectPath = true;
    std::int64_t fetchTraceIdx = 0;
    std::uint64_t fetchResumeAt = 0; //!< stall for icache misses/redirect
    bool fetchSawHalt = false;

    std::map<std::uint64_t, std::vector<Completion>> completions;
    EventQueue events;

    // ---- event-driven wakeup state ----------------------------------------
    IssueScheduler sched;
    /**
     * Broadcast waiter lists: per producer slot, the (consumer slot,
     * operand index) pairs whose operand sits in Invalid state waiting
     * on that producer's result bus. Replaces the O(window) consumer
     * scan per completed instruction; stale pairs (squashed or
     * re-captured consumers) are filtered by the same busy/seq/tag
     * checks the scan used. Maintained only by the ready-list
     * scheduler; the legacy Scan path keeps the full sweep.
     */
    std::vector<std::vector<std::pair<int, int>>> waiters;
    std::vector<std::pair<int, int>> waiterScratch;

    std::uint64_t retiredCount = 0;
    int dcachePortsUsed = 0; //!< reset each cycle

    // ---- shard run window (setRunWindow / startFromSnapshot) -------------
    /** Trace index of the first instruction this core simulates. */
    std::uint64_t startIndex = 0;
    /** Counters start once this many instructions have retired. */
    std::uint64_t statsFromRetired = 0;
    /** Simulation stops once this many instructions have retired. */
    std::uint64_t stopAfterRetired = UINT64_MAX;
    /** setRunWindow() was called: trim the outcome to the window. */
    bool shardWindowed = false;
    /**
     * True while histogram sampling is live. Scalar counters and the
     * CPI stack are windowed by subtracting their values captured at
     * the cut (exact for monotonically increasing integers); the
     * histograms cannot be subtracted (min/max are not invertible), so
     * their sample sites are gated on this flag instead. Always true
     * in a non-windowed run.
     */
    bool statsOpen = true;
    /** Counter values captured when the stats window opened. */
    struct StatsCut
    {
        std::uint64_t cycleAt = 0;
        CoreStats base; //!< scalar counters + CPI stack at the cut
    };
    StatsCut statsCut;
    /** Open the stats window at the current cycle boundary. */
    void openStatsWindow();

    /**
     * Once-per-dynamic-instance training guards: an instruction that
     * is squashed and refetched must not train the predictors twice
     * (duplicate history pushes desynchronise the contexts).
     */
    std::vector<bool> vpTrained;
    std::vector<bool> bpTrained;

    CoreStats stats_;
    PipelineTracer tracer_;
    PerPcVp perPcVp;

    /**
     * Hot-path observability handles, bound once at construction: the
     * histograms live inside stats_, and tracing on/off is a config
     * bit — sampling sites go through these members instead of
     * re-deriving either per event.
     */
    obs::Histogram *verifyLatencyHist = nullptr;
    obs::Histogram *invalToReissueHist = nullptr;
    obs::Histogram *specInFlightHist = nullptr;
    bool tracingEnabled = false;

    // ---- observability state ---------------------------------------------
    int specLive = 0; //!< unresolved confident predictions in flight

    /** Why fetch was last redirected (classifies empty-window cycles). */
    enum class RedirectCause : std::uint8_t
    {
        None,   //!< startup ramp, no squash yet
        Branch, //!< branch misprediction squash
        VMisp,  //!< complete-invalidation (value misprediction) squash
    };
    RedirectCause lastRedirect = RedirectCause::None;
    bool fetchStallIcache = false; //!< frontend stalled on an I$ miss
    std::uint64_t retiredAtTickStart = 0;

    /** Detailed per-prediction records (cfg.specLedger only). */
    obs::SpecLedger ledger_;
    /** Live ledger-record index per slot; -1 = none. */
    std::vector<std::int64_t> ledgerIdx;

    /** Absolute counter values at the start of the open interval. */
    struct IntervalCursor
    {
        std::uint64_t cycleStart = 0;
        std::uint64_t occupancySum = 0; //!< accumulates within interval
        std::uint64_t retired = 0;
        std::uint64_t issued = 0;
        std::uint64_t dispatched = 0;
        std::uint64_t condBranches = 0;
        std::uint64_t condMispredicts = 0;
        std::uint64_t squashes = 0;
        std::uint64_t verifyEvents = 0;
        std::uint64_t invalidateEvents = 0;
        std::uint64_t nullifications = 0;
        obs::CpiStack cpi;
    };
    IntervalCursor ivCursor;
    obs::IntervalSeries intervals_;
};

} // namespace vsim::core

#endif // VSIM_CORE_OOO_CORE_HH
