/**
 * @file
 * Contiguous circular buffer of window slot indices. The program-order
 * list (windowOrder) and the LSQ are FIFO-with-suffix-squash
 * structures: slots enter at the back at dispatch, leave at the front
 * at retire, and a squash pops the youngest suffix. std::deque paid a
 * chunk-map indirection on every sweep over them; this ring keeps the
 * indices in one power-of-two array so iteration is a pointer walk
 * with a mask, and reset() reuses the storage across runs.
 */

#ifndef VSIM_CORE_SLOT_RING_HH
#define VSIM_CORE_SLOT_RING_HH

#include <cstddef>
#include <iterator>
#include <vector>

#include "vsim/base/logging.hh"

namespace vsim::core
{

class SlotRing
{
  public:
    /** Size for @p capacity elements; discards current contents. */
    void
    reset(int capacity)
    {
        std::size_t cap = 1;
        while (cap < static_cast<std::size_t>(capacity))
            cap <<= 1;
        buf_.assign(cap, -1);
        mask_ = cap - 1;
        head_ = 0;
        size_ = 0;
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    int
    front() const
    {
        VSIM_DEBUG_ASSERT(size_ > 0, "front() on empty ring");
        return buf_[head_];
    }

    int
    back() const
    {
        VSIM_DEBUG_ASSERT(size_ > 0, "back() on empty ring");
        return buf_[(head_ + size_ - 1) & mask_];
    }

    /** @p i counts from the front (oldest). */
    int
    operator[](std::size_t i) const
    {
        VSIM_DEBUG_ASSERT(i < size_, "ring index out of range");
        return buf_[(head_ + i) & mask_];
    }

    void
    push_back(int v)
    {
        VSIM_DEBUG_ASSERT(size_ < buf_.size(), "ring overflow");
        buf_[(head_ + size_) & mask_] = v;
        ++size_;
    }

    void
    pop_front()
    {
        VSIM_DEBUG_ASSERT(size_ > 0, "pop_front() on empty ring");
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    void
    pop_back()
    {
        VSIM_DEBUG_ASSERT(size_ > 0, "pop_back() on empty ring");
        --size_;
    }

    class const_iterator
    {
      public:
        using iterator_category = std::input_iterator_tag;
        using value_type = int;
        using difference_type = std::ptrdiff_t;
        using pointer = const int *;
        using reference = int;

        const_iterator(const SlotRing *r, std::size_t i)
            : ring(r), pos(i)
        {}
        int operator*() const { return (*ring)[pos]; }
        const_iterator &
        operator++()
        {
            ++pos;
            return *this;
        }
        bool
        operator==(const const_iterator &o) const
        {
            return pos == o.pos;
        }
        bool
        operator!=(const const_iterator &o) const
        {
            return pos != o.pos;
        }

      private:
        const SlotRing *ring;
        std::size_t pos;
    };

    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, size_}; }

  private:
    std::vector<int> buf_;
    std::size_t mask_ = 0;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace vsim::core

#endif // VSIM_CORE_SLOT_RING_HH
