/**
 * @file
 * Backend wakeup/select/issue of the layered core. Two selection
 * implementations produce the same candidate set every cycle:
 *
 *  - Scan: the legacy O(window) rescan of every reservation station
 *    against the full wakeup conditions (canIssue).
 *  - ReadyList: the event-driven IssueScheduler; the core touches a
 *    slot whenever something a wakeup decision reads changes, and
 *    classifyWakeup() maps the entry onto ready-now / ready-at-a-
 *    known-cycle / parked-until-an-event.
 *
 * Both paths feed the same (prio, spec, seq) sort, where the key comes
 * from the model's SelectionPolicy (§3.5), so runs are bit-identical.
 * Load store-ordering and data-cache-port constraints are evaluated in
 * the selection loop (not in wakeup): a load blocked by them stays a
 * candidate and retries, exactly as the scan behaved.
 */

#include "ooo_core.hh"

#include <algorithm>

#include "vsim/arch/exec.hh"
#include "vsim/base/logging.hh"

namespace vsim::core
{

bool
OooCore::loadOrderingSatisfied(const RsEntry &e) const
{
    return loadOrderingSatisfiedAt(e, e.memAddr);
}

bool
OooCore::loadOrderingSatisfiedAt(const RsEntry &e,
                                 std::uint64_t addr) const
{
    // Loads execute only once every preceding store address is known
    // (§2.1); bytes covered by an older store additionally need the
    // store's data to be present. Under valid-ops memory resolution
    // the covering store's data must also be *valid*; with speculative
    // resolution (memNeedsValidOps=false) a predicted or speculative
    // value forwards as-is and the load carries the store's dependence
    // bits in memDeps instead. The address is passed explicitly so the
    // CPI classifier can evaluate the check without refreshing
    // e.memAddr (the selection loop passes e.memAddr).
    for (int slot : lsq) {
        const RsEntry &s = window[static_cast<std::size_t>(slot)];
        if (s.seq >= e.seq)
            break;
        if (!s.inst.isStore())
            continue;
        if (!s.addrReady || s.addrReadyAt > cycle)
            return false;

        const std::uint64_t lo = std::max(s.memAddr, addr);
        const std::uint64_t hi =
            std::min(s.memAddr + static_cast<std::uint64_t>(
                                     s.inst.memSize()),
                     addr + static_cast<std::uint64_t>(
                                e.inst.memSize()));
        if (lo < hi) {
            const Operand &data = s.src[0];
            if (data.readyAt > cycle)
                return false;
            if (specMemResolution() ? !data.hasValue()
                                    : data.state != OperandState::Valid) {
                return false;
            }
        }
    }
    return true;
}

SpecMask
OooCore::memCarriedDeps(const RsEntry &e) const
{
    // The predictions this load's result depends on *through the LSQ*
    // (speculative memory resolution only). Two channels:
    //
    //  - disambiguation: the ordering check consulted every older
    //    store's address, and those addresses may have been computed
    //    from speculative operands — a mispredicted address re-opens
    //    the check, so the address operands' dependence bits ride
    //    along for every older store regardless of overlap (whether
    //    the store overlaps is itself part of the speculation);
    //  - forwarding: bytes taken from an overlapping store's data
    //    operand inherit that operand's dependence bits.
    //
    // Register-carried dependences (the load's own address base) are
    // covered by the ordinary operand masks and are not duplicated
    // here.
    SpecMask deps;
    for (int slot : lsq) {
        const RsEntry &s = window[static_cast<std::size_t>(slot)];
        if (s.seq >= e.seq)
            break;
        if (!s.inst.isStore() || !s.addrReady)
            continue;
        if (s.src[1].used())
            deps |= s.src[1].deps;
        const std::uint64_t lo = std::max(s.memAddr, e.memAddr);
        const std::uint64_t hi =
            std::min(s.memAddr + static_cast<std::uint64_t>(
                                     s.inst.memSize()),
                     e.memAddr + static_cast<std::uint64_t>(
                                     e.inst.memSize()));
        if (lo < hi && s.src[0].used())
            deps |= s.src[0].deps;
    }
    return deps;
}

bool
OooCore::loadValue(const RsEntry &e, std::uint64_t &value,
                   bool &forwarded) const
{
    const int size = e.inst.memSize();
    forwarded = false;
    std::uint64_t raw = 0;
    for (int i = 0; i < size; ++i) {
        const std::uint64_t addr = e.memAddr + static_cast<unsigned>(i);
        std::uint8_t byte = memory.readByte(addr);
        // Youngest older store covering this byte wins.
        for (int slot : lsq) {
            const RsEntry &s = window[static_cast<std::size_t>(slot)];
            if (s.seq >= e.seq)
                break;
            if (!s.inst.isStore() || !s.addrReady)
                continue;
            if (addr >= s.memAddr
                && addr < s.memAddr + static_cast<std::uint64_t>(
                              s.inst.memSize())) {
                byte = static_cast<std::uint8_t>(
                    s.src[0].value >> (8 * (addr - s.memAddr)));
                forwarded = true;
            }
        }
        raw |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    value = arch::loadExtend(e.inst, raw);
    return true;
}

bool
OooCore::canIssue(const RsEntry &e) const
{
    if (!e.busy || e.issued || cycle <= e.dispatchAt
        || cycle < e.reissueAt) {
        return false;
    }
    for (const Operand &o : e.src) {
        if (!o.used())
            continue;
        if (!o.hasValue() || o.readyAt > cycle)
            return false;
    }

    const bool needs_valid =
        e.inst.isBranch() || e.inst.isSystem()
            ? model.branchNeedsValidOps || !cfg.useValuePrediction
            : false;
    if (needs_valid) {
        for (const Operand &o : e.src) {
            if (!o.used())
                continue;
            if (o.state != OperandState::Valid)
                return false;
            if (o.validViaEvent
                && cycle < o.validAt + static_cast<std::uint64_t>(
                               model.verifyToBranch)) {
                return false;
            }
        }
    }

    if (e.inst.isMem() && (model.memNeedsValidOps
                           || !cfg.useValuePrediction)) {
        // Address operand: loads use src[0], stores src[1].
        const Operand &base = e.inst.isLoad() ? e.src[0] : e.src[1];
        if (base.used()) {
            if (base.state != OperandState::Valid)
                return false;
            if (base.validViaEvent
                && cycle < base.validAt + static_cast<std::uint64_t>(
                               model.verifyAddrToMem)) {
                return false;
            }
        }
    }
    return true;
}

/**
 * canIssue() recast for the ready-list scheduler: instead of a yes/no
 * at the current cycle, report *when* the entry's conditions hold
 * absent further events. Every condition is either monotone in time
 * (dispatch delay, reissue delay, operand readyAt, the verify-to-use
 * gates) — giving a Timed verdict at the max of the thresholds — or
 * requires another event to change operand state, giving Parked.
 */
WakeClass
OooCore::classifyWakeup(int slot) const
{
    const RsEntry &e = entry(slot);
    if (!e.busy || e.issued)
        return WakeClass::idle();

    std::uint64_t at = std::max(e.dispatchAt + 1, e.reissueAt);
    for (const Operand &o : e.src) {
        if (!o.used())
            continue;
        if (!o.hasValue())
            return WakeClass::parked(); // waits on the result bus
        at = std::max(at, o.readyAt);
    }

    const bool needs_valid =
        e.inst.isBranch() || e.inst.isSystem()
            ? model.branchNeedsValidOps || !cfg.useValuePrediction
            : false;
    if (needs_valid) {
        for (const Operand &o : e.src) {
            if (!o.used())
                continue;
            if (o.state != OperandState::Valid)
                return WakeClass::parked();
            if (o.validViaEvent) {
                at = std::max(at,
                              o.validAt + static_cast<std::uint64_t>(
                                              model.verifyToBranch));
            }
        }
    }

    if (e.inst.isMem() && (model.memNeedsValidOps
                           || !cfg.useValuePrediction)) {
        const Operand &base = e.inst.isLoad() ? e.src[0] : e.src[1];
        if (base.used()) {
            if (base.state != OperandState::Valid)
                return WakeClass::parked();
            if (base.validViaEvent) {
                at = std::max(at,
                              base.validAt + static_cast<std::uint64_t>(
                                                 model.verifyAddrToMem));
            }
        }
    }
    return at <= cycle ? WakeClass::ready() : WakeClass::timed(at);
}

void
OooCore::issueEntry(RsEntry &e)
{
    // Gather register-role values from the operand slots (the operand
    // order mirrors Inst::srcReg1/srcReg2).
    const isa::OpInfo &oi = e.inst.info();
    std::uint64_t ra_val = 0, rb_val = 0, rc_val = 0;
    if (oi.readsRa) {
        ra_val = e.src[0].value;
        if (oi.readsRb)
            rb_val = e.src[1].value;
    } else {
        if (oi.readsRb)
            rb_val = e.src[0].value;
        if (oi.readsRc)
            rc_val = e.src[1].value;
    }

    RsCold &ec = cold(e.slot);
    const arch::ExecOut out =
        arch::evaluate(e.inst, ec.pc, ra_val, rb_val, rc_val);

    int lat = cfg.aluLat;
    Completion c;
    c.slot = e.slot;
    c.seq = e.seq;
    c.value = out.value;
    c.taken = out.taken;
    c.nextPc = out.nextPc;

    switch (e.inst.info().cls) {
      case isa::ExecClass::IntAlu:
      case isa::ExecClass::Branch:
      case isa::ExecClass::System:
        lat = cfg.aluLat;
        break;
      case isa::ExecClass::IntMul:
        lat = cfg.mulLat;
        break;
      case isa::ExecClass::IntDiv:
        lat = cfg.divLat;
        break;
      case isa::ExecClass::Store:
        lat = cfg.aluLat; // address generation only
        e.memAddr = out.memAddr;
        break;
      case isa::ExecClass::Load: {
        e.memAddr = out.memAddr;
        e.memDeps.reset();
        if (specMemResolution()) {
            e.memDeps = memCarriedDeps(e);
            // Memory-carried mask-gaining site: the invalidation sweep
            // must find this load through the subscriber lists.
            subsIndex.note(e.slot, e.memDeps);
        }
        bool forwarded = false;
        std::uint64_t value = 0;
        loadValue(e, value, forwarded);
        c.value = value;
        if (forwarded) {
            lat = cfg.aluLat + cfg.storeForwardLat;
            ++stats_.loadsForwarded;
        } else {
            lat = cfg.aluLat + dcacheH.access(e.memAddr, false);
            ++dcachePortsUsed;
        }
        break;
      }
    }

    e.issued = true;
    ++e.nonce;
    ++ec.execCount;
    if (ec.execCount > 1) {
        ++stats_.reissues;
        if (statsOpen)
            invalToReissueHist->sample(cycle - ec.nullifiedAt);
    }
    c.nonce = e.nonce;
    completions[cycle + static_cast<std::uint64_t>(lat)].push_back(c);
    ++stats_.issued;

    if (readyListScheduler())
        sched.remove(e.slot);

    if (tracingEnabled) {
        for (int k = 0; k < lat; ++k)
            tracer_.note(e.seq, cycle + static_cast<unsigned>(k), "EX");
    }
}

void
OooCore::issueStage()
{
    if (halted)
        return;

    struct Candidate
    {
        int prio;   //!< 0 issues first (SelectKey)
        int spec;   //!< tie break within a prio class
        std::uint64_t seq;
        int slot;
    };
    std::vector<Candidate> cands;
    cands.reserve(static_cast<std::size_t>(liveEntries));

    const auto addCandidate = [&](int slot) {
        const RsEntry &e = entry(slot);
        bool spec = false;
        for (const Operand &o : e.src) {
            if (o.used() && o.state != OperandState::Valid)
                spec = true;
        }
        const bool typed = e.inst.isBranch() || e.inst.isLoad();
        const SelectKey k = policies.select->key(typed, spec);
        cands.push_back({k.prio, k.spec, e.seq, slot});
    };

    if (readyListScheduler()) {
        const std::vector<int> &readySlots = sched.collectReady(
            cycle, [this](int slot) { return classifyWakeup(slot); });
        for (int slot : readySlots) {
            VSIM_DEBUG_ASSERT(canIssue(entry(slot)),
                              "ready-list slot fails the wakeup "
                              "conditions");
            addCandidate(slot);
        }
    } else {
        for (int slot : windowOrder) {
            if (canIssue(entry(slot)))
                addCandidate(slot);
        }
    }

    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.prio != b.prio)
                      return a.prio < b.prio;
                  if (a.spec != b.spec)
                      return a.spec < b.spec;
                  return a.seq < b.seq;
              });

    int issued = 0;
    for (const Candidate &cand : cands) {
        if (issued >= cfg.issueWidth)
            break;
        RsEntry &e = entry(cand.slot);
        if (e.inst.isLoad()) {
            // Effective address needed for the ordering check; compute
            // it from the base operand (cheap, pure).
            const Operand &base = e.src[0];
            e.memAddr =
                base.value
                + static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(e.inst.imm));
            if (!loadOrderingSatisfied(e))
                continue;
            // Loads that cannot forward need a data-cache port.
            bool would_forward = false;
            std::uint64_t dummy;
            loadValue(e, dummy, would_forward);
            if (!would_forward
                && dcachePortsUsed >= cfg.effDcachePorts()) {
                continue;
            }
        }
        issueEntry(e);
        ++issued;
    }
}

} // namespace vsim::core
