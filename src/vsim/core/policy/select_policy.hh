/**
 * @file
 * Issue-selection policies (§3.5) as strategy objects. A policy maps
 * a wakeup candidate's raw attributes — is it a branch/load, does any
 * operand still carry speculative state — to a (prio, spec) sort key;
 * candidates issue in ascending (prio, spec, seq) order, so lower
 * keys win and age breaks every tie.
 */

#ifndef VSIM_CORE_POLICY_SELECT_POLICY_HH
#define VSIM_CORE_POLICY_SELECT_POLICY_HH

#include <memory>

#include "vsim/core/spec_model.hh"

namespace vsim::core
{

/** Sort key of one wakeup candidate; compared before age. */
struct SelectKey
{
    int prio; //!< 0 = issue first
    int spec; //!< within a prio class, 0 issues first

    bool operator==(const SelectKey &) const = default;
};

class SelectionPolicy
{
  public:
    virtual ~SelectionPolicy() = default;

    virtual const char *name() const = 0;

    /**
     * Key for a candidate: @p typed_first is the branch-or-load class
     * bit, @p speculative is true when any operand is not yet Valid.
     */
    virtual SelectKey key(bool typed_first, bool speculative) const = 0;
};

/** Construct the §3.5 policy selected by @p policy. */
std::unique_ptr<SelectionPolicy> makeSelectionPolicy(SelectPolicy policy);

} // namespace vsim::core

#endif // VSIM_CORE_POLICY_SELECT_POLICY_HH
