/**
 * @file
 * Verification-scheme policies (§3.2) as strategy objects. A policy
 * owns the consumer-informing sweep that runs when a prediction is
 * verified: how fast validity propagates through the window (all
 * transitive dependents at once, one dependence level per cycle, or
 * only through the retirement broadcast).
 *
 * The sweeps mutate window entries directly and raise everything with
 * wider side effects (output-valid notifications, wakeup-scheduler
 * updates) through SpecHooks, so each policy is unit-testable against
 * a synthetic window and a fake hook sink.
 */

#ifndef VSIM_CORE_POLICY_VERIFY_POLICY_HH
#define VSIM_CORE_POLICY_VERIFY_POLICY_HH

#include <cstdint>
#include <memory>

#include "vsim/core/spec_model.hh"
#include "vsim/core/window_types.hh"

namespace vsim::core
{

class VerifyPolicy
{
  public:
    virtual ~VerifyPolicy() = default;

    virtual const char *name() const = 0;

    /** Wave advances one dependence level per cycle. */
    virtual bool hierarchical() const { return false; }

    /** Consumers learn through the per-event network sweep. */
    virtual bool propagatesOnEvent() const { return true; }

    /** Consumers (also) learn through the retirement broadcast. */
    virtual bool sweepsAtRetire() const { return false; }

    /**
     * A predicted producer cannot release its window entry while any
     * in-flight value still carries its dependence bit (multi-step
     * waves only; single-event schemes never leave residue).
     */
    virtual bool residueGuardAtRetire() const { return hierarchical(); }

    /**
     * Run one verification event of producer @p p over the window:
     * clear p's dependence bit from consumer operands and outputs.
     * @return true when a hierarchical wave still has work (the
     * caller reschedules the next level through the EventQueue).
     */
    virtual bool apply(const WindowRef &w, RsEntry &p,
                       std::uint64_t cycle, SpecHooks &hooks) const;

    /**
     * Retirement broadcast of producer @p p (retirement-based and
     * hybrid schemes): validate every remaining dependent at once.
     */
    void applyRetire(const WindowRef &w, RsEntry &p,
                     std::uint64_t cycle, SpecHooks &hooks) const;
};

/** Construct the §3.2 scheme selected by @p scheme. */
std::unique_ptr<VerifyPolicy> makeVerifyPolicy(VerifyScheme scheme);

} // namespace vsim::core

#endif // VSIM_CORE_POLICY_VERIFY_POLICY_HH
