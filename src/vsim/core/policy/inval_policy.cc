#include "inval_policy.hh"

#include "vsim/base/logging.hh"
#include "../subscriber_index.hh"

namespace vsim::core
{

bool
InvalidatePolicy::apply(const WindowRef &w, RsEntry &p,
                        std::uint64_t cycle, SpecHooks &hooks) const
{
    const std::size_t pbit = static_cast<std::size_t>(p.slot);
    const bool hier = hierarchical();
    bool any_left = false;

    // Sparse sweeps visit only the live carriers of bit p, in seq
    // order. Order matters more here than in verification: the wave
    // branches below read *live* producer state (an earlier iteration
    // may have nullified or left a producer alone), so the carriers
    // must be visited in the same program order the dense scan used.
    const std::vector<int> *sparse =
        w.subs ? &w.subs->collect(static_cast<int>(pbit), w.window)
               : nullptr;

    // Snapshot pre-step producer state for the hierarchical wave (see
    // VerifyPolicy::apply: in-place nullification must not let the
    // wave jump levels within one event).
    SpecMask was_executed, out_had_bit;
    if (hier) {
        const auto snap = [&](const RsEntry &f) {
            if (f.executed) {
                was_executed.set(static_cast<std::size_t>(f.slot));
                if (f.outDeps.test(pbit))
                    out_had_bit.set(static_cast<std::size_t>(f.slot));
            }
        };
        forEachSweepSlot(w, sparse, [&](int slot) {
            const RsEntry &f = w.at(slot);
            snap(f);
            if (!sparse)
                return;
            // The dense scan snapshotted every slot; the sparse
            // domain holds only carriers of bit p, but a carrying
            // operand's producer need not itself carry the bit (it
            // may have re-executed with corrected inputs before this
            // step) — snapshot those producers explicitly.
            for (const Operand &o : f.src) {
                if (o.used() && o.deps.test(pbit) && o.tag >= 0)
                    snap(w.at(o.tag));
            }
        });
    }

    forEachSweepSlot(w, sparse, [&](int slot) {
        RsEntry &f = w.at(slot);
        if (f.slot == p.slot)
            return;
        bool affected = false;
        for (int idx = 0; idx < 2; ++idx) {
            Operand &o = f.src[idx];
            if (!o.used() || !o.deps.test(pbit))
                continue;
            if (o.tag == p.slot) {
                // Direct consumer: the correct value rides the same
                // broadcast that signals the invalidation.
                o.value = p.outValue;
                o.deps.reset();
                o.state = OperandState::Valid;
                o.validAt = cycle;
                o.validViaEvent = true;
                o.readyAt = cycle;
                f.verifiedAt = std::max(f.verifiedAt, cycle);
                hooks.wakeupChanged(f);
                affected = true;
            } else if (!hier) {
                // Flattened: every transitive dependent resets at once
                // and re-captures from its producer's re-broadcast.
                o.state = OperandState::Invalid;
                o.deps.reset();
                hooks.operandInvalidated(f, idx);
                affected = true;
            } else {
                // Hierarchical wave: react only once the operand's own
                // producer was dealt with in an *earlier* step.
                const RsEntry *prod =
                    o.tag >= 0 ? &w.at(o.tag) : nullptr;
                const std::size_t tbit =
                    static_cast<std::size_t>(o.tag >= 0 ? o.tag : 0);
                if (!prod || !prod->busy || prod->seq >= f.seq) {
                    o.state = OperandState::Invalid;
                    o.deps.reset();
                    hooks.operandInvalidated(f, idx);
                    affected = true;
                } else if (!was_executed.test(tbit)) {
                    // Producer was nullified in an earlier wave step.
                    o.state = OperandState::Invalid;
                    o.deps.reset();
                    hooks.operandInvalidated(f, idx);
                    affected = true;
                } else if (!out_had_bit.test(tbit)
                           && prod->executed) {
                    // Producer re-executed with corrected inputs
                    // before this step.
                    o.value = prod->outValue;
                    o.deps = prod->outDeps;
                    o.readyAt = cycle;
                    if (o.deps.none()) {
                        o.state = OperandState::Valid;
                        o.validAt = cycle;
                        o.validViaEvent = true;
                        f.verifiedAt = std::max(f.verifiedAt, cycle);
                    } else {
                        o.state = OperandState::Speculative;
                    }
                    hooks.wakeupChanged(f);
                    affected = true;
                } else {
                    any_left = true;
                }
            }
        }
        if (f.memDeps.test(pbit)) {
            // Memory-carried dependence: the load's disambiguation or
            // forwarding consulted prediction p through the LSQ. The
            // access itself is suspect, so the load is killed outright
            // (no selective value patch is possible — the wrong datum
            // came from the memory system, not an operand latch) and
            // reissue re-runs disambiguation against the corrected
            // store state. Like the LSQ port in the verification
            // sweep, this reacts in one step under every scheme.
            affected = true;
        }
        if (affected && (f.issued || f.executed)) {
            // Attribution before the kill: raised only for entries the
            // sweep actually nullifies, so dense and sparse domains
            // report identical touch counts.
            hooks.attributeSweep(p, f, true);
            hooks.nullifyEntry(f);
        }
    });
    return hier && any_left;
}

namespace
{

/** Selective, all successors in one event (parallel network). */
class FlattenedInval final : public InvalidatePolicy
{
  public:
    const char *name() const override { return "flattened"; }
};

/** Selective, one dependence level per cycle. */
class HierarchicalInval final : public InvalidatePolicy
{
  public:
    const char *name() const override { return "hierarchical"; }
    bool hierarchical() const override { return true; }
};

/** Treat value misprediction like branch misprediction (§3.1). */
class CompleteInval final : public InvalidatePolicy
{
  public:
    const char *name() const override { return "complete"; }
    bool complete() const override { return true; }
    bool
    apply(const WindowRef &, RsEntry &p, std::uint64_t,
          SpecHooks &hooks) const override
    {
        hooks.completeSquash(p);
        return false;
    }
};

} // namespace

std::unique_ptr<InvalidatePolicy>
makeInvalPolicy(InvalScheme scheme)
{
    switch (scheme) {
      case InvalScheme::Flattened:
        return std::make_unique<FlattenedInval>();
      case InvalScheme::Hierarchical:
        return std::make_unique<HierarchicalInval>();
      case InvalScheme::Complete:
        return std::make_unique<CompleteInval>();
    }
    VSIM_PANIC("unhandled invalidation scheme");
}

} // namespace vsim::core
