#include "verify_policy.hh"

#include "vsim/base/logging.hh"
#include "../mask_ops.hh"
#include "../subscriber_index.hh"

namespace vsim::core
{

bool
VerifyPolicy::apply(const WindowRef &w, RsEntry &p, std::uint64_t cycle,
                    SpecHooks &hooks) const
{
    const std::size_t pbit = static_cast<std::size_t>(p.slot);
    const bool hier = hierarchical();

    // Sparse sweeps visit only the live carriers of bit p, in seq
    // order — the same relative order the dense program-order scan
    // visits them in, with the non-carriers (for which every action
    // below is a no-op) skipped.
    const std::vector<int> *sparse =
        w.subs ? &w.subs->collect(static_cast<int>(pbit), w.window)
               : nullptr;

    // Hierarchical semantics advance one dependence level per event.
    // All "was X cleansed?" tests must observe the state *before* the
    // event started, otherwise an in-order sweep cleanses producers
    // in-place and collapses the wave into the flattened behaviour —
    // so snapshot which outputs and which entries' inputs carried the
    // bit at the start of the step. Sparse domains lose nothing here:
    // both masks are only ever consulted for slots that carry bit p.
    SpecMask out_had_bit;  //!< slots whose output carried bit p
    SpecMask in_had_bit;   //!< slots with an input carrying bit p
    if (hier) {
        forEachSweepSlot(w, sparse, [&](int slot) {
            const RsEntry &f = w.at(slot);
            if (f.executed && f.outDeps.test(pbit))
                out_had_bit.set(static_cast<std::size_t>(slot));
            for (const Operand &o : f.src) {
                if (o.used() && o.deps.test(pbit))
                    in_had_bit.set(static_cast<std::size_t>(slot));
            }
        });
    }

    bool any_left = false;
    forEachSweepSlot(w, sparse, [&](int slot) {
        RsEntry &f = w.at(slot);
        if (f.slot == p.slot)
            return;
        bool touched = false; //!< any dependence bit actually cleansed
        for (Operand &o : f.src) {
            if (!o.used() || !o.deps.test(pbit))
                continue;
            bool clear = true;
            if (hier && o.tag != p.slot && o.tag >= 0) {
                // Clears only when the operand's producer's output was
                // already cleansed before this wave step.
                const RsEntry &prod = w.at(o.tag);
                clear = !prod.busy || prod.seq >= f.seq
                        || !prod.executed
                        || !out_had_bit.test(
                               static_cast<std::size_t>(o.tag));
            }
            if (!clear) {
                any_left = true;
                continue;
            }
            o.deps.reset(pbit);
            touched = true;
            if (o.deps.none() && o.state != OperandState::Invalid
                && o.state != OperandState::Valid) {
                o.state = OperandState::Valid;
                o.validAt = cycle;
                o.validViaEvent = true;
                f.verifiedAt = std::max(f.verifiedAt, cycle);
                hooks.wakeupChanged(f);
            }
        }
        // Memory-carried dependences clear in one step regardless of
        // scheme: the LSQ disambiguation port is a flattened structure
        // (it re-checked against the store's slot directly, not
        // through the tag-broadcast tree), so there is no wave to run.
        if (f.memDeps.test(pbit)) {
            f.memDeps.reset(pbit);
            touched = true;
        }
        if (f.executed && f.outDeps.test(pbit)) {
            // The output cleanses one wave step after its inputs did
            // (flattened: immediately).
            const bool inputs_were_clean =
                !hier
                || !in_had_bit.test(static_cast<std::size_t>(slot));
            if (inputs_were_clean) {
                f.outDeps.reset(pbit);
                touched = true;
                if (f.outDeps.none())
                    hooks.outputBecameValid(f);
            } else {
                any_left = true;
            }
        }
        // Attribution: raised only for entries the sweep acted on, so
        // dense scans (which also visit non-carriers) report the same
        // touch counts as sparse subscriber-list sweeps.
        if (touched)
            hooks.attributeSweep(p, f, false);
    });
    return hier && any_left;
}

void
VerifyPolicy::applyRetire(const WindowRef &w, RsEntry &p,
                          std::uint64_t cycle, SpecHooks &hooks) const
{
    const std::size_t pbit = static_cast<std::size_t>(p.slot);
    const std::vector<int> *sparse =
        w.subs ? &w.subs->collect(static_cast<int>(pbit), w.window)
               : nullptr;
    forEachSweepSlot(w, sparse, [&](int slot) {
        RsEntry &f = w.at(slot);
        if (f.slot == p.slot)
            return;
        bool touched = false;
        for (Operand &o : f.src) {
            if (!o.used() || !mask::testAndClear(o.deps, pbit))
                continue;
            touched = true;
            if (o.deps.none() && o.state != OperandState::Invalid
                && o.state != OperandState::Valid) {
                o.state = OperandState::Valid;
                o.validAt = cycle;
                o.validViaEvent = true;
                f.verifiedAt = std::max(f.verifiedAt, cycle);
                hooks.wakeupChanged(f);
            }
        }
        if (mask::testAndClear(f.memDeps, pbit))
            touched = true;
        if (f.executed && mask::testAndClear(f.outDeps, pbit)) {
            touched = true;
            if (f.outDeps.none())
                hooks.outputBecameValid(f);
        }
        if (touched)
            hooks.attributeSweep(p, f, false);
    });
}

namespace
{

/**
 * Flattened-hierarchical "verification network": all direct and
 * indirect successors informed in a single event (§3.2).
 */
class FlattenedVerify final : public VerifyPolicy
{
  public:
    const char *name() const override { return "flattened"; }
};

/** One dependence level per cycle on the tag-broadcast network. */
class HierarchicalVerify final : public VerifyPolicy
{
  public:
    const char *name() const override { return "hierarchical"; }
    bool hierarchical() const override { return true; }
};

/** Consumers learn only through the retirement broadcast. */
class RetirementVerify final : public VerifyPolicy
{
  public:
    const char *name() const override { return "retirement"; }
    bool propagatesOnEvent() const override { return false; }
    bool sweepsAtRetire() const override { return true; }
};

/**
 * Hybrid: hierarchical detection plus retirement-based release — the
 * retirement sweep clears any residue, so no retire guard is needed.
 */
class HybridVerify final : public VerifyPolicy
{
  public:
    const char *name() const override { return "hybrid"; }
    bool hierarchical() const override { return true; }
    bool sweepsAtRetire() const override { return true; }
    bool residueGuardAtRetire() const override { return false; }
};

} // namespace

std::unique_ptr<VerifyPolicy>
makeVerifyPolicy(VerifyScheme scheme)
{
    switch (scheme) {
      case VerifyScheme::Flattened:
        return std::make_unique<FlattenedVerify>();
      case VerifyScheme::Hierarchical:
        return std::make_unique<HierarchicalVerify>();
      case VerifyScheme::RetirementBased:
        return std::make_unique<RetirementVerify>();
      case VerifyScheme::Hybrid:
        return std::make_unique<HybridVerify>();
    }
    VSIM_PANIC("unhandled verify scheme");
}

} // namespace vsim::core
