/**
 * @file
 * Invalidation-scheme policies (§3.1) as strategy objects. A policy
 * owns the consumer-nullifying sweep that runs when a prediction
 * turns out wrong: selective flattened (all transitive dependents in
 * one event), selective hierarchical (one dependence level per
 * cycle), or complete (treat the value misprediction like a branch
 * misprediction and squash).
 */

#ifndef VSIM_CORE_POLICY_INVAL_POLICY_HH
#define VSIM_CORE_POLICY_INVAL_POLICY_HH

#include <cstdint>
#include <memory>

#include "vsim/core/spec_model.hh"
#include "vsim/core/window_types.hh"

namespace vsim::core
{

class InvalidatePolicy
{
  public:
    virtual ~InvalidatePolicy() = default;

    virtual const char *name() const = 0;

    /** Wave advances one dependence level per cycle. */
    virtual bool hierarchical() const { return false; }

    /** Complete invalidation: squash instead of selective repair. */
    virtual bool complete() const { return false; }

    /** See VerifyPolicy::residueGuardAtRetire. */
    virtual bool residueGuardAtRetire() const { return hierarchical(); }

    /**
     * Run one invalidation event of producer @p p over the window:
     * hand direct consumers the corrected value, reset transitive
     * dependents, and nullify everything that consumed the wrong
     * value. Complete invalidation raises SpecHooks::completeSquash
     * instead. @return true when a hierarchical wave still has work.
     */
    virtual bool apply(const WindowRef &w, RsEntry &p,
                       std::uint64_t cycle, SpecHooks &hooks) const;
};

/** Construct the §3.1 scheme selected by @p scheme. */
std::unique_ptr<InvalidatePolicy> makeInvalPolicy(InvalScheme scheme);

} // namespace vsim::core

#endif // VSIM_CORE_POLICY_INVAL_POLICY_HH
