#include "select_policy.hh"

#include "vsim/base/logging.hh"

namespace vsim::core
{

namespace
{

/** Paper §3.5: type, then non-speculative preferred, then age. */
class TypedSpecLastPolicy final : public SelectionPolicy
{
  public:
    const char *name() const override { return "typed-spec-last"; }
    SelectKey
    key(bool typed_first, bool speculative) const override
    {
        return {typed_first ? 0 : 1, speculative ? 1 : 0};
    }
};

/** Branches/loads first, then oldest; speculative state ignored. */
class TypedOnlyPolicy final : public SelectionPolicy
{
  public:
    const char *name() const override { return "typed-only"; }
    SelectKey
    key(bool typed_first, bool) const override
    {
        return {typed_first ? 0 : 1, 0};
    }
};

/** Pure dynamic program order. */
class OldestFirstPolicy final : public SelectionPolicy
{
  public:
    const char *name() const override { return "oldest-first"; }
    SelectKey key(bool, bool) const override { return {0, 0}; }
};

/** Aggressive speculation-first scheduling. */
class TypedSpecFirstPolicy final : public SelectionPolicy
{
  public:
    const char *name() const override { return "typed-spec-first"; }
    SelectKey
    key(bool typed_first, bool speculative) const override
    {
        return {typed_first ? 0 : 1, speculative ? 0 : 1};
    }
};

} // namespace

std::unique_ptr<SelectionPolicy>
makeSelectionPolicy(SelectPolicy policy)
{
    switch (policy) {
      case SelectPolicy::TypedSpecLast:
        return std::make_unique<TypedSpecLastPolicy>();
      case SelectPolicy::TypedOnly:
        return std::make_unique<TypedOnlyPolicy>();
      case SelectPolicy::OldestFirst:
        return std::make_unique<OldestFirstPolicy>();
      case SelectPolicy::TypedSpecFirst:
        return std::make_unique<TypedSpecFirstPolicy>();
    }
    VSIM_PANIC("unhandled selection policy");
}

} // namespace vsim::core
