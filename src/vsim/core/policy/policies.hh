/**
 * @file
 * One-stop factory binding a SpecModel's model variables (§3) to the
 * strategy objects the backend drives: selection (§3.5), verification
 * (§3.2) and invalidation (§3.1).
 */

#ifndef VSIM_CORE_POLICY_POLICIES_HH
#define VSIM_CORE_POLICY_POLICIES_HH

#include "inval_policy.hh"
#include "select_policy.hh"
#include "verify_policy.hh"
#include "vsim/core/spec_model.hh"

namespace vsim::core
{

/** The per-concern rule modules of one speculative-execution model. */
struct PolicySet
{
    std::unique_ptr<SelectionPolicy> select;
    std::unique_ptr<VerifyPolicy> verify;
    std::unique_ptr<InvalidatePolicy> invalidate;
};

inline PolicySet
makePolicies(const SpecModel &model)
{
    return {makeSelectionPolicy(model.selectPolicy),
            makeVerifyPolicy(model.verifyScheme),
            makeInvalPolicy(model.invalScheme)};
}

} // namespace vsim::core

#endif // VSIM_CORE_POLICY_POLICIES_HH
