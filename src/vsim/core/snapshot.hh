/**
 * @file
 * Checkpointable simulation state.
 *
 * A SimSnapshot captures everything a detailed core needs to begin
 * simulating mid-trace: the architected state (registers, PC,
 * committed memory) plus the trained microarchitectural tables
 * (branch predictor, value predictor, confidence counters, cache
 * tags/LRU). Snapshots are produced by a fast functional-warmup pass
 * (functionalWarmup) that executes the program in order, training the
 * predictors and caches from the retired instruction stream, and
 * serializing the machine every time it crosses a requested
 * instruction boundary.
 *
 * Warmup fidelity: the functional pass trains tables from the
 * *correct-path* stream only — no wrong-path fetches pollute the
 * caches or branch history, and the value predictor is trained
 * in order at "retire" rather than with the core's exact
 * dispatch/retire interleaving. A core started from a snapshot is
 * therefore an approximation of the mid-flight detailed machine; the
 * shard runner (vsim/sim/shard.hh) quantifies the resulting error and
 * the W=inf (full warmup) path never consumes these tables at all, so
 * its merges are exact. See DESIGN.md "Checkpointing and sharded
 * simulation".
 */

#ifndef VSIM_CORE_SNAPSHOT_HH
#define VSIM_CORE_SNAPSHOT_HH

#include <array>
#include <cstdint>
#include <vector>

#include "core_config.hh"
#include "vsim/arch/functional_core.hh"
#include "vsim/assembler/program.hh"
#include "vsim/base/state_io.hh"
#include "vsim/isa/isa.hh"
#include "vsim/mem/mem_image.hh"

namespace vsim::core
{

/** Complete restart state at one retired-instruction boundary. */
struct SimSnapshot
{
    /** Number of instructions retired before this point; the next
     *  instruction the restored core fetches is trace entry
     *  instIndex. */
    std::uint64_t instIndex = 0;
    std::uint64_t pc = 0; //!< fetch PC at the boundary
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    mem::MemImage memory; //!< committed memory at the boundary

    /**
     * Serialized microarchitectural tables, in fixed order: branch
     * predictor, value predictor, confidence table, L2 cache, L1I,
     * L1D. Each component writes a section tag, so restoring into a
     * machine of different geometry fails loudly.
     */
    std::vector<std::uint8_t> tables;

    /** Serialize the whole snapshot to a deterministic byte stream. */
    std::vector<std::uint8_t> toBytes() const;
    /** Rebuild a snapshot from toBytes() output. */
    static SimSnapshot fromBytes(const std::vector<std::uint8_t> &bytes);

    bool operator==(const SimSnapshot &) const;
};

/**
 * Fast functional-warmup pass: execute @p prog in order, training the
 * predictor/cache structures that @p cfg describes from the retired
 * stream, and capture a SimSnapshot at every boundary in @p points
 * (sorted ascending, each <= trace length; a point equal to the trace
 * length snapshots the final state). The pass asserts its PC stream
 * matches @p trace, so a stale recorded trace cannot silently produce
 * snapshots of a different execution.
 */
std::vector<SimSnapshot> functionalWarmup(
    const assembler::Program &prog, const arch::ExecTrace &trace,
    const CoreConfig &cfg, const std::vector<std::uint64_t> &points);

} // namespace vsim::core

#endif // VSIM_CORE_SNAPSHOT_HH
