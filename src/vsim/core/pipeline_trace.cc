#include "pipeline_trace.hh"

#include <algorithm>
#include <sstream>

namespace vsim::core
{

void
PipelineTracer::note(std::uint64_t seq, std::uint64_t cycle,
                     const std::string &tag)
{
    std::string &cell = events[seq].byCycle[cycle];
    if (!cell.empty())
        cell += "/";
    cell += tag;
}

void
PipelineTracer::label(std::uint64_t seq, const std::string &text)
{
    events[seq].text = text;
}

void
PipelineTracer::clear()
{
    events.clear();
}

std::string
PipelineTracer::render(std::uint64_t first_cycle,
                       std::uint64_t last_cycle) const
{
    if (events.empty())
        return "(no pipeline events)\n";

    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto &[seq, row] : events) {
        for (const auto &[cycle, tag] : row.byCycle) {
            lo = std::min(lo, cycle);
            hi = std::max(hi, cycle);
        }
    }
    lo = std::max(lo, first_cycle);
    hi = std::min(hi, last_cycle);
    if (lo > hi)
        return "(no pipeline events in range)\n";

    // Column width: widest cell or cycle header.
    std::size_t cell_w = 2;
    for (const auto &[seq, row] : events)
        for (const auto &[cycle, tag] : row.byCycle)
            if (cycle >= lo && cycle <= hi)
                cell_w = std::max(cell_w, tag.size());
    for (std::uint64_t c = lo; c <= hi; ++c)
        cell_w = std::max(cell_w, std::to_string(c).size());

    std::size_t label_w = 4;
    for (const auto &[seq, row] : events) {
        std::ostringstream os;
        os << "#" << seq << " " << row.text;
        label_w = std::max(label_w, os.str().size());
    }

    auto pad = [](const std::string &s, std::size_t w) {
        return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
    };

    std::ostringstream os;
    os << pad("", label_w) << " |";
    for (std::uint64_t c = lo; c <= hi; ++c)
        os << " " << pad(std::to_string(c), cell_w);
    os << "\n";
    os << std::string(label_w, '-') << "-+"
       << std::string((hi - lo + 1) * (cell_w + 1), '-') << "\n";

    for (const auto &[seq, row] : events) {
        std::ostringstream lbl;
        lbl << "#" << seq << " " << row.text;
        os << pad(lbl.str(), label_w) << " |";
        for (std::uint64_t c = lo; c <= hi; ++c) {
            auto it = row.byCycle.find(c);
            os << " "
               << pad(it == row.byCycle.end() ? "." : it->second, cell_w);
        }
        os << "\n";
    }
    return os.str();
}

} // namespace vsim::core
