#include "pipeline_trace.hh"

#include <algorithm>
#include <sstream>

namespace vsim::core
{

PipelineTracer::Row &
PipelineTracer::row(std::uint64_t seq)
{
    auto [it, inserted] = events.try_emplace(seq);
    if (inserted && cap != 0 && events.size() > cap) {
        // Retained window: drop the oldest instruction, never the row
        // just inserted (seqs arrive in program order, so the new row
        // is the youngest in practice).
        auto victim = events.begin();
        if (victim == it)
            ++victim;
        events.erase(victim);
        ++droppedRows;
    }
    return it->second;
}

void
PipelineTracer::note(std::uint64_t seq, std::uint64_t cycle,
                     const std::string &tag)
{
    // All producers note monotonically non-decreasing seqs, so the
    // newly inserted row is never the one evicted.
    std::string &cell = row(seq).byCycle[cycle];
    if (!cell.empty())
        cell += "/";
    cell += tag;
}

void
PipelineTracer::label(std::uint64_t seq, const std::string &text)
{
    row(seq).text = text;
}

void
PipelineTracer::clear()
{
    events.clear();
    droppedRows = 0;
}

std::string
PipelineTracer::render(std::uint64_t first_cycle,
                       std::uint64_t last_cycle) const
{
    if (events.empty())
        return "(no pipeline events)\n";

    std::uint64_t lo = ~0ull, hi = 0;
    for (const auto &[seq, row] : events) {
        for (const auto &[cycle, tag] : row.byCycle) {
            lo = std::min(lo, cycle);
            hi = std::max(hi, cycle);
        }
    }
    lo = std::max(lo, first_cycle);
    hi = std::min(hi, last_cycle);
    if (lo > hi)
        return "(no pipeline events in range)\n";

    // Only instructions with at least one event inside the window get
    // a row; everything else would render as dots.
    const auto in_window = [&](const Row &row) {
        auto it = row.byCycle.lower_bound(lo);
        return it != row.byCycle.end() && it->first <= hi;
    };

    // Column width: widest cell or cycle header.
    std::size_t cell_w = 2;
    for (const auto &[seq, row] : events)
        for (const auto &[cycle, tag] : row.byCycle)
            if (cycle >= lo && cycle <= hi)
                cell_w = std::max(cell_w, tag.size());
    for (std::uint64_t c = lo; c <= hi; ++c)
        cell_w = std::max(cell_w, std::to_string(c).size());

    std::size_t label_w = 4;
    for (const auto &[seq, row] : events) {
        if (!in_window(row))
            continue;
        std::ostringstream os;
        os << "#" << seq << " " << row.text;
        label_w = std::max(label_w, os.str().size());
    }

    auto pad = [](const std::string &s, std::size_t w) {
        return s + std::string(w > s.size() ? w - s.size() : 0, ' ');
    };

    std::ostringstream os;
    if (droppedRows > 0) {
        os << "(" << droppedRows
           << " oldest instructions dropped by the trace retained-"
              "window cap)\n";
    }
    os << pad("", label_w) << " |";
    for (std::uint64_t c = lo; c <= hi; ++c)
        os << " " << pad(std::to_string(c), cell_w);
    os << "\n";
    os << std::string(label_w, '-') << "-+"
       << std::string((hi - lo + 1) * (cell_w + 1), '-') << "\n";

    for (const auto &[seq, row] : events) {
        if (!in_window(row))
            continue;
        std::ostringstream lbl;
        lbl << "#" << seq << " " << row.text;
        os << pad(lbl.str(), label_w) << " |";
        for (std::uint64_t c = lo; c <= hi; ++c) {
            auto it = row.byCycle.find(c);
            os << " "
               << pad(it == row.byCycle.end() ? "." : it->second, cell_w);
        }
        os << "\n";
    }
    return os.str();
}

void
PipelineTracer::exportTo(obs::TraceWriter &writer, int pid) const
{
    writer.processName(pid, "pipeline");
    for (const auto &[seq, row] : events) {
        std::ostringstream name;
        name << "#" << seq << " " << row.text;
        writer.threadName(pid, seq, name.str());

        // Coalesce runs of consecutive cycles carrying the same tag
        // (EX EX EX ...) into a single span.
        auto it = row.byCycle.begin();
        while (it != row.byCycle.end()) {
            const std::uint64_t start = it->first;
            const std::string &tag = it->second;
            std::uint64_t end = start + 1;
            auto next = std::next(it);
            while (next != row.byCycle.end() && next->first == end
                   && next->second == tag) {
                ++end;
                ++next;
            }
            writer.complete(tag, "pipeline", start, end - start, pid,
                            seq);
            it = next;
        }
    }
}

} // namespace vsim::core
