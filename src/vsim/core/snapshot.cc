#include "snapshot.hh"

#include "vsim/base/logging.hh"
#include "vsim/bpred/bpred.hh"
#include "vsim/mem/cache.hh"
#include "vsim/vpred/vpred.hh"

namespace vsim::core
{

namespace
{

constexpr std::uint64_t kSnapshotVersion = 1;

} // namespace

std::vector<std::uint8_t>
SimSnapshot::toBytes() const
{
    StateWriter w;
    w.tag("SNAP");
    w.u64(kSnapshotVersion);
    w.u64(instIndex);
    w.u64(pc);
    for (std::uint64_t reg : regs)
        w.u64(reg);
    memory.save(w);
    w.u64(tables.size());
    w.bytes(tables.data(), tables.size());
    return w.take();
}

SimSnapshot
SimSnapshot::fromBytes(const std::vector<std::uint8_t> &bytes)
{
    StateReader r(bytes.data(), bytes.size());
    r.tag("SNAP");
    const std::uint64_t version = r.u64();
    VSIM_ASSERT(version == kSnapshotVersion,
                "unsupported snapshot version ", version);
    SimSnapshot snap;
    snap.instIndex = r.u64();
    snap.pc = r.u64();
    for (std::uint64_t &reg : snap.regs)
        reg = r.u64();
    snap.memory.restore(r);
    snap.tables.resize(r.u64());
    r.bytes(snap.tables.data(), snap.tables.size());
    VSIM_ASSERT(r.done(), "trailing bytes after snapshot");
    return snap;
}

bool
SimSnapshot::operator==(const SimSnapshot &other) const
{
    // MemImage has no operator==; the serialized form is canonical
    // (pages sorted), so compare through it.
    return toBytes() == other.toBytes();
}

std::vector<SimSnapshot>
functionalWarmup(const assembler::Program &prog,
                 const arch::ExecTrace &trace, const CoreConfig &cfg,
                 const std::vector<std::uint64_t> &points)
{
    // Mirror the detailed core's construction exactly, so the
    // serialized tables restore into it without geometry mismatches.
    auto bp = bpred::makeBranchPredictor(cfg.branchPredictor);
    auto vp = vpred::makeValuePredictor(cfg.valuePredictor);
    vpred::ResettingConfidence conf(cfg.confidenceBits,
                                    cfg.confidenceTableBits,
                                    cfg.confidenceThreshold);
    mem::Cache l2(cfg.l2cache);
    mem::CacheHierarchy icacheH(
        cfg.icache, l2,
        {cfg.icacheHitLat, cfg.l2HitLat, cfg.l2MissLat});
    mem::CacheHierarchy dcacheH(
        cfg.dcache, l2,
        {cfg.dcacheHitLat, cfg.l2HitLat, cfg.l2MissLat});

    const auto capture = [&](const arch::ArchState &st,
                             std::uint64_t inst_index) {
        SimSnapshot snap;
        snap.instIndex = inst_index;
        snap.pc = st.pc;
        snap.regs = st.regs;
        snap.memory = st.mem;
        StateWriter w;
        bp->save(w);
        vp->save(w);
        conf.save(w);
        l2.save(w);
        icacheH.l1().save(w);
        dcacheH.l1().save(w);
        snap.tables = w.take();
        return snap;
    };

    std::vector<SimSnapshot> snapshots;
    snapshots.reserve(points.size());

    // Fast-forward by *applying* the recorded entries to the
    // architectural state instead of re-executing them: the trace
    // already carries every destination value, effective address and
    // next pc, so fetch/decode/evaluate are pure overhead here — and
    // this pass is the serial spine of a sampled run. Store data is
    // the ra register at the store (exec.cc), read from the
    // up-to-date state. System output side effects are skipped: a
    // snapshot captures pc/registers/memory, never the output stream.
    // The pc cross-check at every snapshot point still catches a
    // trace that is inconsistent with itself or with the program.
    arch::ArchState st = arch::loadProgram(prog);
    std::size_t nextPoint = 0;
    for (std::uint64_t i = 0; i < trace.entries.size(); ++i) {
        while (nextPoint < points.size() && points[nextPoint] == i) {
            VSIM_ASSERT(st.pc == trace.entries[i].pc,
                        "warmup diverged from trace at instruction ", i);
            snapshots.push_back(capture(st, i));
            ++nextPoint;
        }
        if (nextPoint >= points.size())
            break;

        const arch::TraceEntry &te = trace.entries[i];
        if (te.inst.isStore())
            st.mem.write(te.memAddr, st.reg(te.inst.ra),
                         te.inst.memSize());
        if (int dest = te.inst.destReg(); dest >= 0)
            st.setReg(dest, te.value);
        st.pc = te.nextPc;

        // Train the structures from the retired stream, approximating
        // the detailed machine's steady state (see file header).
        icacheH.access(te.pc, false);
        if (te.inst.isCondBranch()) {
            const bool taken = te.nextPc != te.pc + 4;
            bp->predict(te.pc);
            bp->update(te.pc, taken);
        }
        if (te.inst.isMem())
            dcacheH.access(te.memAddr, te.inst.isStore());
        if (cfg.useValuePrediction && te.inst.destReg() >= 0
            && !te.inst.isControl()) {
            const vpred::Prediction p = vp->predict(te.pc);
            const bool correct = p.value == te.value;
            if (cfg.updateTiming == UpdateTiming::Immediate) {
                vp->pushHistory(te.pc, te.value);
                vp->updateTable(te.pc, p.token, te.value);
            } else {
                vp->pushHistory(te.pc, p.value);
                vp->updateTable(te.pc, p.token, te.value);
                vp->commitHistory(te.pc, te.value, correct);
            }
            if (cfg.confidence == ConfidenceKind::Real)
                conf.update(te.pc, correct);
        }
    }

    // Points at (or past) the end of the trace snapshot final state.
    while (nextPoint < points.size()) {
        VSIM_ASSERT(points[nextPoint] >= trace.entries.size(),
                    "warmup ended before snapshot point ",
                    points[nextPoint]);
        snapshots.push_back(capture(st, trace.entries.size()));
        ++nextPoint;
    }
    return snapshots;
}

} // namespace vsim::core
