/**
 * @file
 * Statistics gathered by one out-of-order simulation run. Fields map
 * directly onto the paper's reported quantities: IPC/speedup (Fig. 3),
 * the CH/CL/IH/IL prediction breakdown (Fig. 4), and the Table 1
 * characteristics.
 */

#ifndef VSIM_CORE_CORE_STATS_HH
#define VSIM_CORE_CORE_STATS_HH

#include <cstdint>

namespace vsim::core
{

struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;

    // ---- instruction mix (committed) -----------------------------------
    std::uint64_t retiredLoads = 0;
    std::uint64_t retiredStores = 0;
    std::uint64_t retiredBranches = 0;

    // ---- branch prediction ----------------------------------------------
    std::uint64_t condBranches = 0;   //!< committed conditional branches
    std::uint64_t condMispredicts = 0;
    std::uint64_t squashes = 0;       //!< pipeline squashes (any path)

    // ---- value prediction (committed, eligible instructions) ------------
    std::uint64_t vpEligible = 0;  //!< predictions made (Table 1 "%")
    std::uint64_t vpCH = 0;        //!< correct, high confidence
    std::uint64_t vpCL = 0;        //!< correct, low confidence
    std::uint64_t vpIH = 0;        //!< incorrect, high confidence
    std::uint64_t vpIL = 0;        //!< incorrect, low confidence
    std::uint64_t vpSpeculated = 0; //!< entries consumers could use

    // ---- speculation machinery -------------------------------------------
    std::uint64_t verifyEvents = 0;
    std::uint64_t invalidateEvents = 0;
    std::uint64_t nullifications = 0; //!< issued-work thrown away
    std::uint64_t reissues = 0;       //!< re-executions after nullify

    // ---- memory -------------------------------------------------------------
    std::uint64_t loadsForwarded = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(retired)
                                 / static_cast<double>(cycles);
    }

    double
    predictionAccuracy() const
    {
        const std::uint64_t total = vpCH + vpCL + vpIH + vpIL;
        return total == 0 ? 0.0
                          : static_cast<double>(vpCH + vpCL)
                                / static_cast<double>(total);
    }
};

} // namespace vsim::core

#endif // VSIM_CORE_CORE_STATS_HH
