/**
 * @file
 * Statistics gathered by one out-of-order simulation run. Fields map
 * directly onto the paper's reported quantities: IPC/speedup (Fig. 3),
 * the CH/CL/IH/IL prediction breakdown (Fig. 4), and the Table 1
 * characteristics.
 *
 * Besides the scalar counters, a run aggregates three distributions
 * the paper's timing argument rests on: the latency from making a
 * confident prediction to its verification/invalidation, the delay
 * from a nullification to the re-issue of the same instruction, and
 * the number of unresolved predictions in flight per cycle. They are
 * obs::Histogram objects, so the registry bridge (registerStats) can
 * expose every quantity in self-describing form.
 */

#ifndef VSIM_CORE_CORE_STATS_HH
#define VSIM_CORE_CORE_STATS_HH

#include <cstdint>

#include "vsim/obs/cpi.hh"
#include "vsim/obs/registry.hh"

namespace vsim::core
{

struct CoreStats
{
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t fetched = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t issued = 0;

    // ---- instruction mix (committed) -----------------------------------
    std::uint64_t retiredLoads = 0;
    std::uint64_t retiredStores = 0;
    std::uint64_t retiredBranches = 0;

    // ---- branch prediction ----------------------------------------------
    std::uint64_t condBranches = 0;   //!< committed conditional branches
    std::uint64_t condMispredicts = 0;
    std::uint64_t squashes = 0;       //!< pipeline squashes (any path)

    // ---- value prediction (committed, eligible instructions) ------------
    std::uint64_t vpEligible = 0;  //!< predictions made (Table 1 "%")
    std::uint64_t vpCH = 0;        //!< correct, high confidence
    std::uint64_t vpCL = 0;        //!< correct, low confidence
    std::uint64_t vpIH = 0;        //!< incorrect, high confidence
    std::uint64_t vpIL = 0;        //!< incorrect, low confidence
    std::uint64_t vpSpeculated = 0; //!< entries consumers could use

    // ---- speculation machinery -------------------------------------------
    std::uint64_t verifyEvents = 0;
    std::uint64_t invalidateEvents = 0;
    std::uint64_t nullifications = 0; //!< issued-work thrown away
    std::uint64_t reissues = 0;       //!< re-executions after nullify

    // ---- memory -------------------------------------------------------------
    std::uint64_t loadsForwarded = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t dcacheMisses = 0;

    // ---- cycle attribution (observability layer) -------------------------
    /**
     * CPI stack: every cycle charged to exactly one category, so
     * cpi.total() == cycles at the end of a run. Collected
     * unconditionally — memoized results are flag-independent.
     */
    obs::CpiStack cpi;

    // ---- speculation ledger (conservation counters, always on) -----------
    /** Predictions dispatched into the window (any path). Conserved:
     *  predMade == verifyEvents + invalidateEvents + predSquashed. */
    std::uint64_t predMade = 0;
    std::uint64_t predSquashed = 0; //!< squashed before resolution
    std::uint64_t predConsumed = 0; //!< operand captures of predictions
    /** Entries cleansed by verification sweeps (per-entry touches). */
    std::uint64_t verifyTouches = 0;
    /** Entries nullified by invalidation sweeps (per-entry touches). */
    std::uint64_t invalTouches = 0;

    // ---- distributions (observability layer) -----------------------------
    /** Dispatch-to-resolution latency of confident predictions. */
    obs::Histogram verifyLatency{
        "verify_latency",
        "cycles from dispatch of a confident prediction to its "
        "verification or invalidation",
        "cycles", 4, 32};
    /** Nullification-to-reissue delay of re-executed instructions. */
    obs::Histogram invalToReissue{
        "invalidate_to_reissue",
        "cycles from a wakeup nullification to the re-issue of the "
        "same instruction",
        "cycles", 1, 16};
    /** Unresolved confident predictions in the window, per cycle. */
    obs::Histogram specInFlight{
        "spec_in_flight",
        "unresolved confident predictions in the window, sampled "
        "every cycle (value prediction runs only)",
        "insts", 4, 32};

    /** Memberwise equality (counters, CPI stack, histograms) — the
     *  bit-identity predicate the shard-merge tests are built on. */
    bool operator==(const CoreStats &) const = default;

    /**
     * Windowing helper for sharded runs: subtract @p baseline's
     * scalar counters and CPI stack (the values captured when the
     * shard's stats window opened) from this run-final copy, leaving
     * only the window's contribution. The three histograms are NOT
     * touched — their sample sites are gated on the window instead,
     * because min/max cannot be recovered by subtraction.
     */
    void subtractCounters(const CoreStats &baseline);

    /**
     * Shard-merge helper: add @p other's scalar counters, CPI stack
     * and histograms into this one. Associative and commutative, so a
     * merge over per-shard windowed stats reconstructs the monolithic
     * aggregates exactly when the shard windows partition the run
     * (full warmup).
     */
    void merge(const CoreStats &other);

    /**
     * Weighted fold for sampled simulation (vsim/sim/sample.hh): add
     * @p other's scalar counters, CPI stack and histograms scaled by
     * the integer @p weight — exactly as if other had been merged
     * @p weight times. A representative interval merged under its
     * cluster's population weight stands in for every interval of the
     * cluster. Integer arithmetic only, so sampled merges stay
     * bit-identical across hosts and worker counts.
     */
    void mergeWeighted(const CoreStats &other, std::uint64_t weight);

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(retired)
                                 / static_cast<double>(cycles);
    }

    double
    predictionAccuracy() const
    {
        const std::uint64_t total = vpCH + vpCL + vpIH + vpIL;
        return total == 0 ? 0.0
                          : static_cast<double>(vpCH + vpCL)
                                / static_cast<double>(total);
    }
};

/**
 * Observability bridge: register every CoreStats counter (with name,
 * description, and unit) and copy the three distributions into
 * @p reg. Counter names match the JSON field names of sim/report.
 */
void registerStats(obs::Registry &reg, const CoreStats &s);

} // namespace vsim::core

#endif // VSIM_CORE_CORE_STATS_HH
