#include "spec_model.hh"

#include <cerrno>
#include <cstdlib>
#include <limits>

#include "vsim/base/logging.hh"

namespace vsim::core
{

namespace
{

/**
 * Parse a custom latency tuple "E,EI,EV,VF,IR,VB,VA": exactly seven
 * comma-separated non-negative integers, every field fully consumed.
 */
SpecModel
parseLatencyTuple(const std::string &spec)
{
    SpecModel m;
    m.name = spec;
    int *const order[7] = {&m.execToEquality,     &m.equalityToInvalidate,
                           &m.equalityToVerify,   &m.verifyToFreeResource,
                           &m.invalidateToReissue, &m.verifyToBranch,
                           &m.verifyAddrToMem};

    const char *p = spec.c_str();
    for (int i = 0; i < 7; ++i) {
        char *end = nullptr;
        errno = 0;
        const long v = std::strtol(p, &end, 10);
        // errno/ERANGE and the explicit int bound reject out-of-range
        // values strtol would otherwise clamp (silent truncation).
        if (end == p || errno == ERANGE || v < 0
            || v > std::numeric_limits<int>::max() || v > 1'000'000) {
            VSIM_FATAL("bad latency tuple '", spec, "': field ", i + 1,
                       " is not a non-negative integer (expected seven "
                       "comma-separated values E,EI,EV,VF,IR,VB,VA)");
        }
        *order[i] = static_cast<int>(v);
        p = end;
        if (i < 6) {
            if (*p != ',') {
                VSIM_FATAL("bad latency tuple '", spec, "': expected ',' "
                           "after field ", i + 1,
                           " (seven values E,EI,EV,VF,IR,VB,VA)");
            }
            ++p;
        }
    }
    if (*p != '\0') {
        VSIM_FATAL("bad latency tuple '", spec,
                   "': trailing characters after the seventh field");
    }
    return m;
}

} // namespace

SpecModel
SpecModel::byName(const std::string &name)
{
    if (name == "super")
        return superModel();
    if (name == "great")
        return greatModel();
    if (name == "good")
        return goodModel();
    if (name.find(',') != std::string::npos)
        return parseLatencyTuple(name);
    VSIM_FATAL("unknown speculative execution model '", name,
               "' (expected super/great/good, or a seven-value latency "
               "tuple like 0,0,1,1,1,1,1)");
}

VerifyScheme
parseVerifyScheme(const std::string &name)
{
    if (name == "flattened" || name == "flat")
        return VerifyScheme::Flattened;
    if (name == "hierarchical" || name == "hier")
        return VerifyScheme::Hierarchical;
    if (name == "retirement" || name == "retire")
        return VerifyScheme::RetirementBased;
    if (name == "hybrid")
        return VerifyScheme::Hybrid;
    VSIM_FATAL("unknown verification scheme '", name,
               "' (expected flattened/hierarchical/retirement/hybrid)");
}

InvalScheme
parseInvalScheme(const std::string &name)
{
    if (name == "flattened" || name == "flat")
        return InvalScheme::Flattened;
    if (name == "hierarchical" || name == "hier")
        return InvalScheme::Hierarchical;
    if (name == "complete")
        return InvalScheme::Complete;
    VSIM_FATAL("unknown invalidation scheme '", name,
               "' (expected flattened/hierarchical/complete)");
}

SelectPolicy
parseSelectPolicy(const std::string &name)
{
    if (name == "typed-spec-last")
        return SelectPolicy::TypedSpecLast;
    if (name == "typed-only")
        return SelectPolicy::TypedOnly;
    if (name == "oldest-first")
        return SelectPolicy::OldestFirst;
    if (name == "typed-spec-first")
        return SelectPolicy::TypedSpecFirst;
    VSIM_FATAL("unknown selection policy '", name,
               "' (expected typed-spec-last/typed-only/oldest-first/"
               "typed-spec-first)");
}

const char *
verifySchemeName(VerifyScheme scheme)
{
    switch (scheme) {
      case VerifyScheme::Flattened:
        return "flattened";
      case VerifyScheme::Hierarchical:
        return "hierarchical";
      case VerifyScheme::RetirementBased:
        return "retirement";
      case VerifyScheme::Hybrid:
        return "hybrid";
    }
    return "?";
}

const char *
invalSchemeName(InvalScheme scheme)
{
    switch (scheme) {
      case InvalScheme::Flattened:
        return "flattened";
      case InvalScheme::Hierarchical:
        return "hierarchical";
      case InvalScheme::Complete:
        return "complete";
    }
    return "?";
}

const char *
selectPolicyName(SelectPolicy policy)
{
    switch (policy) {
      case SelectPolicy::TypedSpecLast:
        return "typed-spec-last";
      case SelectPolicy::TypedOnly:
        return "typed-only";
      case SelectPolicy::OldestFirst:
        return "oldest-first";
      case SelectPolicy::TypedSpecFirst:
        return "typed-spec-first";
    }
    return "?";
}

} // namespace vsim::core
