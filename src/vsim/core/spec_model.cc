#include "spec_model.hh"

#include "vsim/base/logging.hh"

namespace vsim::core
{

SpecModel
SpecModel::byName(const std::string &name)
{
    if (name == "super")
        return superModel();
    if (name == "great")
        return greatModel();
    if (name == "good")
        return goodModel();
    VSIM_FATAL("unknown speculative execution model '", name,
               "' (expected super/great/good)");
}

} // namespace vsim::core
