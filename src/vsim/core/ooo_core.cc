#include "ooo_core.hh"

#include <algorithm>

#include "vsim/arch/exec.hh"
#include "vsim/base/logging.hh"

namespace vsim::core
{

namespace
{

/** True when the instruction's result register is value-predictable. */
bool
vpEligibleInst(const isa::Inst &inst)
{
    return inst.destReg() >= 0 && !inst.isControl();
}

} // namespace

OooCore::OooCore(const assembler::Program &prog, const CoreConfig &config)
    : cfg(config), model(config.model),
      trace(arch::preExecute(prog)),
      bpred_(bpred::makeBranchPredictor(config.branchPredictor)),
      vpred_(vpred::makeValuePredictor(config.valuePredictor)),
      conf_(std::make_unique<vpred::ResettingConfidence>(
          config.confidenceBits, 16, config.confidenceThreshold)),
      l2(config.l2cache),
      icacheH(config.icache, l2,
              {config.icacheHitLat, config.l2HitLat, config.l2MissLat}),
      dcacheH(config.dcache, l2,
              {config.dcacheHitLat, config.l2HitLat, config.l2MissLat})
{
    VSIM_ASSERT(cfg.windowSize > 0 && cfg.windowSize <= kMaxWindow,
                "window size ", cfg.windowSize, " out of range");
    VSIM_ASSERT(cfg.issueWidth > 0, "bad issue width");
    if (cfg.useValuePrediction && !model.memNeedsValidOps) {
        // Speculative *memory* resolution would require tracking
        // dependences through memory (stores written with speculative
        // data invalidating forwarded loads), which the verification
        // network does not cover; the paper's evaluation also resolves
        // memory only with valid operands (§3.2).
        VSIM_FATAL("memNeedsValidOps=false is not supported with value "
                   "prediction; see DESIGN.md");
    }

    // Committed architectural state starts exactly like the loader's.
    arch::ArchState init = arch::loadProgram(prog);
    memory = std::move(init.mem);
    archRegs = init.regs;
    fetchPc = init.pc;

    window.resize(static_cast<std::size_t>(cfg.windowSize));
    for (int i = cfg.windowSize - 1; i >= 0; --i)
        freeSlots.push_back(i);
    regTag.fill(-1);
    vpTrained.assign(trace.entries.size(), false);
    bpTrained.assign(trace.entries.size(), false);

    tracer_.setCapacity(cfg.traceRetain);
    intervals_.period = cfg.metricsInterval;
}

OooCore::~OooCore() = default;

void
OooCore::setPredictionOverride(PredictionOverride override_fn)
{
    predOverride = std::move(override_fn);
}

// =====================================================================
// slot management
// =====================================================================

int
OooCore::allocSlot()
{
    VSIM_ASSERT(!freeSlots.empty(), "window overflow");
    const int slot = freeSlots.back();
    freeSlots.pop_back();
    ++liveEntries;
    RsEntry &e = window[static_cast<std::size_t>(slot)];
    e = RsEntry{};
    e.busy = true;
    return slot;
}

void
OooCore::freeSlot(int slot)
{
    RsEntry &e = entry(slot);
    VSIM_ASSERT(e.busy, "freeing idle slot");
    e.busy = false;
    freeSlots.push_back(slot);
    --liveEntries;
}

void
OooCore::rebuildRegTags()
{
    regTag.fill(-1);
    for (int slot : windowOrder) {
        const RsEntry &e = entry(slot);
        if (int dest = e.inst.destReg(); dest >= 0)
            regTag[static_cast<std::size_t>(dest)] = slot;
    }
}

// =====================================================================
// fetch
// =====================================================================

void
OooCore::fetchStage()
{
    if (halted || fetchSawHalt || cycle < fetchResumeAt)
        return;

    const int width = cfg.effFetchWidth();
    const std::size_t buf_cap = static_cast<std::size_t>(2 * width);
    int fetched = 0;

    while (fetched < width && fetchQueue.size() < buf_cap) {
        const std::uint32_t word =
            static_cast<std::uint32_t>(memory.read(fetchPc, 4));
        const auto decoded = isa::decode(word);
        if (!decoded) {
            // Wrong-path fetch ran into non-code bytes; a real machine
            // would raise a fault that the squash discards. Idle the
            // front end until the redirect arrives.
            VSIM_ASSERT(!fetchOnCorrectPath,
                        "illegal instruction on the correct path at pc=",
                        fetchPc);
            fetchResumeAt = ~0ull;
            return;
        }
        const isa::Inst inst = *decoded;

        // Instruction-cache timing: a miss stalls the front end for
        // the fill delay; the line is resident on resume.
        const int ilat = icacheH.access(fetchPc, false);
        if (ilat > cfg.icacheHitLat) {
            fetchResumeAt =
                cycle + static_cast<std::uint64_t>(ilat - cfg.icacheHitLat);
            return;
        }

        FetchedInst f;
        f.pc = fetchPc;
        f.inst = inst;
        f.availableAt = cycle + 1;
        f.traceIndex = fetchOnCorrectPath ? fetchTraceIdx : -1;

        // ---- next-PC prediction (paper §5.1 rules) ------------------
        const bool on_path =
            fetchOnCorrectPath
            && fetchTraceIdx
                   < static_cast<std::int64_t>(trace.entries.size());
        VSIM_ASSERT(!fetchOnCorrectPath || on_path,
                    "fetch ran past the end of the program trace");
        const arch::TraceEntry *te =
            on_path ? &trace.entries[static_cast<std::size_t>(
                          fetchTraceIdx)]
                    : nullptr;
        if (te) {
            VSIM_ASSERT(te->pc == fetchPc,
                        "correct-path fetch diverged from trace");
        }

        if (inst.isCondBranch()) {
            const bool pred_dir = bpred_->predict(fetchPc);
            if (te) {
                const bool actual_dir = te->nextPc != fetchPc + 4;
                auto trained =
                    bpTrained.begin() + static_cast<std::ptrdiff_t>(
                                            fetchTraceIdx);
                if (!*trained) {
                    bpred_->update(fetchPc, actual_dir);
                    *trained = true;
                }
                if (pred_dir == actual_dir) {
                    // Targets are always right when direction is right.
                    f.predTaken = actual_dir;
                    f.predNextPc = te->nextPc;
                } else {
                    f.predTaken = pred_dir;
                    f.predNextPc = pred_dir
                                       ? arch::directTarget(inst, fetchPc)
                                       : fetchPc + 4;
                }
            } else {
                f.predTaken = pred_dir;
                f.predNextPc = pred_dir
                                   ? arch::directTarget(inst, fetchPc)
                                   : fetchPc + 4;
            }
        } else if (inst.op == isa::Op::JAL) {
            f.predTaken = true;
            f.predNextPc = arch::directTarget(inst, fetchPc);
        } else if (inst.op == isa::Op::JALR) {
            // Unconditional jumps are always predicted correctly on
            // the correct path (§5.1); the wrong path has no oracle,
            // so fall through and let execution redirect.
            f.predTaken = true;
            f.predNextPc = te ? te->nextPc : fetchPc + 4;
        } else {
            f.predTaken = false;
            f.predNextPc = fetchPc + 4;
        }

        fetchQueue.push_back(f);
        ++stats_.fetched;
        ++fetched;

        if (fetchOnCorrectPath) {
            if (inst.op == isa::Op::HALT) {
                fetchSawHalt = true;
                return;
            }
            if (te && f.predNextPc != te->nextPc)
                fetchOnCorrectPath = false; // entering the wrong path
            ++fetchTraceIdx;
        }
        fetchPc = f.predNextPc;
    }
}

// =====================================================================
// dispatch
// =====================================================================

void
OooCore::captureOperand(RsEntry &e, int idx, int reg)
{
    Operand &o = e.src[idx];
    o = Operand{};
    if (reg < 0) {
        o.state = OperandState::Unused;
        return;
    }
    o.reg = reg;
    const int t = reg == 0 ? -1 : regTag[static_cast<std::size_t>(reg)];
    if (t < 0) {
        o.value = reg == 0 ? 0 : archRegs[static_cast<std::size_t>(reg)];
        o.state = OperandState::Valid;
        o.tag = -1;
        o.readyAt = cycle;
        o.validAt = cycle;
        return;
    }

    RsEntry &p = entry(t);
    o.tag = t;
    if (p.predicted && !p.predResolved) {
        // The prediction stands in for the producer's result until the
        // verification network resolves it.
        o.value = p.predValue;
        o.state = OperandState::Predicted;
        o.deps.set(static_cast<std::size_t>(t));
        o.readyAt = cycle;
    } else if (p.executed) {
        o.value = p.outValue;
        o.deps = p.outDeps;
        o.readyAt = std::max(cycle, p.execDoneAt);
        if (o.deps.none()) {
            o.state = OperandState::Valid;
            o.validAt = cycle;
        } else {
            o.state = OperandState::Speculative;
        }
    } else {
        o.state = OperandState::Invalid; // wait on the result bus
    }
}

void
OooCore::predictValueAt(RsEntry &e)
{
    if (!cfg.useValuePrediction || !vpEligibleInst(e.inst))
        return;
    e.vpEligible = true;

    const bool have_actual = e.traceIndex >= 0;
    const std::uint64_t actual =
        have_actual
            ? trace.entries[static_cast<std::size_t>(e.traceIndex)].value
            : 0;

    if (predOverride) {
        if (auto forced = predOverride(e.pc, actual)) {
            e.predValue = *forced;
            e.predConfident = true;
            e.predicted = true;
        } else {
            e.vpEligible = false;
        }
        return;
    }

    const vpred::Prediction p = vpred_->predict(e.pc);
    e.predValue = p.value;
    e.predToken = p.token;

    switch (cfg.confidence) {
      case ConfidenceKind::Real:
        e.predConfident = conf_->confident(e.pc);
        break;
      case ConfidenceKind::Oracle:
        e.predConfident = have_actual && p.value == actual;
        break;
      case ConfidenceKind::Always:
        e.predConfident = true;
        break;
    }
    e.predicted = e.predConfident;

    if (cfg.updateTiming == UpdateTiming::Immediate) {
        // Idealised immediate update with the correct value (§5.2),
        // once per dynamic instance. The wrong path has no oracle and
        // cannot train.
        if (have_actual
            && !vpTrained[static_cast<std::size_t>(e.traceIndex)]) {
            vpTrained[static_cast<std::size_t>(e.traceIndex)] = true;
            vpred_->pushHistory(e.pc, actual);
            vpred_->updateTable(e.pc, p.token, actual);
            if (cfg.confidence == ConfidenceKind::Real)
                conf_->update(e.pc, p.value == actual);
        }
    } else {
        // Delayed update: history speculatively advanced with the
        // prediction now; tables trained at retirement (§5.2).
        vpred_->pushHistory(e.pc, p.value);
    }
}

void
OooCore::dispatchStage()
{
    if (halted)
        return;
    const int width = cfg.effFetchWidth();
    for (int n = 0; n < width && !fetchQueue.empty(); ++n) {
        const FetchedInst &f = fetchQueue.front();
        if (f.availableAt > cycle || liveEntries >= cfg.windowSize)
            return;

        const int slot = allocSlot();
        RsEntry &e = entry(slot);
        e.slot = slot;
        e.seq = nextSeq++;
        e.pc = f.pc;
        e.inst = f.inst;
        e.traceIndex = f.traceIndex;
        e.dispatchAt = cycle;
        e.predTaken = f.predTaken;
        e.predNextPc = f.predNextPc;

        captureOperand(e, 0, e.inst.srcReg1());
        captureOperand(e, 1, e.inst.srcReg2());
        predictValueAt(e);
        if (e.predicted)
            ++specLive;

        if (int dest = e.inst.destReg(); dest >= 0)
            regTag[static_cast<std::size_t>(dest)] = slot;
        if (e.inst.isMem())
            lsq.push_back(slot);
        windowOrder.push_back(slot);

        if (cfg.tracePipeline) {
            tracer_.label(e.seq, isa::disassemble(e.inst));
            tracer_.note(e.seq, cycle, "D");
        }

        fetchQueue.pop_front();
        ++stats_.dispatched;
    }
}

// =====================================================================
// wakeup / select / issue
// =====================================================================

bool
OooCore::loadOrderingSatisfied(const RsEntry &e) const
{
    // Loads execute only once every preceding store address is known
    // (§2.1); bytes covered by an older store additionally need the
    // store's data to be present and valid.
    for (int slot : lsq) {
        const RsEntry &s = window[static_cast<std::size_t>(slot)];
        if (s.seq >= e.seq)
            break;
        if (!s.inst.isStore())
            continue;
        if (!s.addrReady || s.addrReadyAt > cycle)
            return false;

        const std::uint64_t lo = std::max(s.memAddr, e.memAddr);
        const std::uint64_t hi =
            std::min(s.memAddr + static_cast<std::uint64_t>(
                                     s.inst.memSize()),
                     e.memAddr + static_cast<std::uint64_t>(
                                     e.inst.memSize()));
        if (lo < hi) {
            const Operand &data = s.src[0];
            if (data.state != OperandState::Valid
                || data.readyAt > cycle) {
                return false;
            }
        }
    }
    return true;
}

bool
OooCore::loadValue(const RsEntry &e, std::uint64_t &value,
                   bool &forwarded) const
{
    const int size = e.inst.memSize();
    forwarded = false;
    std::uint64_t raw = 0;
    for (int i = 0; i < size; ++i) {
        const std::uint64_t addr = e.memAddr + static_cast<unsigned>(i);
        std::uint8_t byte = memory.readByte(addr);
        // Youngest older store covering this byte wins.
        for (int slot : lsq) {
            const RsEntry &s = window[static_cast<std::size_t>(slot)];
            if (s.seq >= e.seq)
                break;
            if (!s.inst.isStore() || !s.addrReady)
                continue;
            if (addr >= s.memAddr
                && addr < s.memAddr + static_cast<std::uint64_t>(
                              s.inst.memSize())) {
                byte = static_cast<std::uint8_t>(
                    s.src[0].value >> (8 * (addr - s.memAddr)));
                forwarded = true;
            }
        }
        raw |= static_cast<std::uint64_t>(byte) << (8 * i);
    }
    value = arch::loadExtend(e.inst, raw);
    return true;
}

bool
OooCore::canIssue(const RsEntry &e) const
{
    if (!e.busy || e.issued || cycle <= e.dispatchAt
        || cycle < e.reissueAt) {
        return false;
    }
    for (const Operand &o : e.src) {
        if (!o.used())
            continue;
        if (!o.hasValue() || o.readyAt > cycle)
            return false;
    }

    const bool needs_valid =
        e.inst.isBranch() || e.inst.isSystem()
            ? model.branchNeedsValidOps || !cfg.useValuePrediction
            : false;
    if (needs_valid) {
        for (const Operand &o : e.src) {
            if (!o.used())
                continue;
            if (o.state != OperandState::Valid)
                return false;
            if (o.validViaEvent
                && cycle < o.validAt + static_cast<std::uint64_t>(
                               model.verifyToBranch)) {
                return false;
            }
        }
    }

    if (e.inst.isMem() && (model.memNeedsValidOps
                           || !cfg.useValuePrediction)) {
        // Address operand: loads use src[0], stores src[1].
        const Operand &base = e.inst.isLoad() ? e.src[0] : e.src[1];
        if (base.used()) {
            if (base.state != OperandState::Valid)
                return false;
            if (base.validViaEvent
                && cycle < base.validAt + static_cast<std::uint64_t>(
                               model.verifyAddrToMem)) {
                return false;
            }
        }
    }
    return true;
}

void
OooCore::issueEntry(RsEntry &e)
{
    // Gather register-role values from the operand slots (the operand
    // order mirrors Inst::srcReg1/srcReg2).
    const isa::OpInfo &oi = e.inst.info();
    std::uint64_t ra_val = 0, rb_val = 0, rc_val = 0;
    if (oi.readsRa) {
        ra_val = e.src[0].value;
        if (oi.readsRb)
            rb_val = e.src[1].value;
    } else {
        if (oi.readsRb)
            rb_val = e.src[0].value;
        if (oi.readsRc)
            rc_val = e.src[1].value;
    }

    const arch::ExecOut out =
        arch::evaluate(e.inst, e.pc, ra_val, rb_val, rc_val);

    int lat = cfg.aluLat;
    Completion c;
    c.slot = e.slot;
    c.seq = e.seq;
    c.value = out.value;
    c.taken = out.taken;
    c.nextPc = out.nextPc;

    switch (e.inst.info().cls) {
      case isa::ExecClass::IntAlu:
      case isa::ExecClass::Branch:
      case isa::ExecClass::System:
        lat = cfg.aluLat;
        break;
      case isa::ExecClass::IntMul:
        lat = cfg.mulLat;
        break;
      case isa::ExecClass::IntDiv:
        lat = cfg.divLat;
        break;
      case isa::ExecClass::Store:
        lat = cfg.aluLat; // address generation only
        e.memAddr = out.memAddr;
        break;
      case isa::ExecClass::Load: {
        e.memAddr = out.memAddr;
        bool forwarded = false;
        std::uint64_t value = 0;
        loadValue(e, value, forwarded);
        c.value = value;
        if (forwarded) {
            lat = cfg.aluLat + cfg.storeForwardLat;
            ++stats_.loadsForwarded;
        } else {
            lat = cfg.aluLat + dcacheH.access(e.memAddr, false);
            ++dcachePortsUsed;
        }
        break;
      }
    }

    e.issued = true;
    ++e.nonce;
    ++e.execCount;
    if (e.execCount > 1) {
        ++stats_.reissues;
        stats_.invalToReissue.sample(cycle - e.nullifiedAt);
    }
    c.nonce = e.nonce;
    completions[cycle + static_cast<std::uint64_t>(lat)].push_back(c);
    ++stats_.issued;

    if (cfg.tracePipeline) {
        for (int k = 0; k < lat; ++k)
            tracer_.note(e.seq, cycle + static_cast<unsigned>(k), "EX");
    }
}

void
OooCore::issueStage()
{
    if (halted)
        return;

    struct Candidate
    {
        int prio;   //!< 0 = branch/load first
        int spec;   //!< non-speculative preferred
        std::uint64_t seq;
        int slot;
    };
    std::vector<Candidate> cands;
    cands.reserve(static_cast<std::size_t>(liveEntries));

    for (int slot : windowOrder) {
        RsEntry &e = entry(slot);
        if (!canIssue(e))
            continue;
        int spec = 0;
        for (const Operand &o : e.src) {
            if (o.used() && o.state != OperandState::Valid)
                spec = 1;
        }
        int prio = (e.inst.isBranch() || e.inst.isLoad()) ? 0 : 1;
        switch (model.selectPolicy) {
          case SelectPolicy::TypedSpecLast:
            break; // paper §3.5: type, then non-spec, then age
          case SelectPolicy::TypedOnly:
            spec = 0;
            break;
          case SelectPolicy::OldestFirst:
            prio = 0;
            spec = 0;
            break;
          case SelectPolicy::TypedSpecFirst:
            spec = 1 - spec;
            break;
        }
        cands.push_back({prio, spec, e.seq, slot});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.prio != b.prio)
                      return a.prio < b.prio;
                  if (a.spec != b.spec)
                      return a.spec < b.spec;
                  return a.seq < b.seq;
              });

    int issued = 0;
    for (const Candidate &cand : cands) {
        if (issued >= cfg.issueWidth)
            break;
        RsEntry &e = entry(cand.slot);
        if (e.inst.isLoad()) {
            // Effective address needed for the ordering check; compute
            // it from the base operand (cheap, pure).
            const Operand &base = e.src[0];
            e.memAddr =
                base.value
                + static_cast<std::uint64_t>(
                      static_cast<std::int64_t>(e.inst.imm));
            if (!loadOrderingSatisfied(e))
                continue;
            // Loads that cannot forward need a data-cache port.
            bool would_forward = false;
            std::uint64_t dummy;
            loadValue(e, dummy, would_forward);
            if (!would_forward
                && dcachePortsUsed >= cfg.effDcachePorts()) {
                continue;
            }
        }
        issueEntry(e);
        ++issued;
    }
}

// =====================================================================
// completion / broadcast
// =====================================================================

void
OooCore::broadcast(RsEntry &producer)
{
    const bool keep_prediction =
        producer.predicted && !producer.predResolved;
    for (int slot : windowOrder) {
        RsEntry &f = entry(slot);
        if (f.seq <= producer.seq)
            continue;
        for (Operand &o : f.src) {
            if (!o.used() || o.state != OperandState::Invalid
                || o.tag != producer.slot) {
                continue;
            }
            if (keep_prediction) {
                o.value = producer.predValue;
                o.state = OperandState::Predicted;
                o.deps.reset();
                o.deps.set(static_cast<std::size_t>(producer.slot));
                o.readyAt = cycle;
            } else {
                o.value = producer.outValue;
                o.deps = producer.outDeps;
                o.readyAt = cycle;
                if (o.deps.none()) {
                    o.state = OperandState::Valid;
                    o.validAt = cycle;
                    o.validViaEvent = false;
                    f.verifiedAt = std::max(f.verifiedAt, cycle);
                } else {
                    o.state = OperandState::Speculative;
                }
            }
        }
    }
}

void
OooCore::noteOutputValid(RsEntry &e, bool via_event)
{
    e.outValid = true;
    e.outValidAt = cycle;
    e.outValidViaEvent = via_event;
    e.verifiedAt = std::max(e.verifiedAt, cycle);
    if (e.predicted && !e.predResolved && !e.eqScheduled) {
        e.eqScheduled = true;
        scheduleEvent(cycle + static_cast<std::uint64_t>(
                                  model.execToEquality),
                      {EventKind::EqCheck, e.slot, e.seq, -1});
    }
}

void
OooCore::applyCompletions()
{
    auto it = completions.begin();
    while (it != completions.end() && it->first <= cycle) {
        for (const Completion &c : it->second) {
            RsEntry &e = entry(c.slot);
            if (!e.busy || e.seq != c.seq || e.nonce != c.nonce
                || !e.issued || e.executed) {
                continue; // stale (nullified or squashed meanwhile)
            }
            e.executed = true;
            e.execDoneAt = cycle;
            e.outValue = c.value;
            e.outDeps.reset();
            for (const Operand &o : e.src) {
                if (o.used())
                    e.outDeps |= o.deps;
            }
            e.verifiedAt = std::max(e.verifiedAt, cycle);
            if (e.inst.isStore()) {
                e.addrReady = true;
                e.addrReadyAt = cycle;
            }
            if (cfg.tracePipeline)
                tracer_.note(e.seq, cycle, "W");

            if (e.outDeps.none())
                noteOutputValid(e, false);
            broadcast(e);

            if (e.inst.isBranch() && c.nextPc != e.predNextPc) {
                // Branch misprediction: squash younger work and
                // redirect fetch to the computed target. Fetch is back
                // on the correct path only if the computed target is
                // architecturally right (it can be wrong when branches
                // are allowed to resolve with speculative operands).
                ++stats_.squashes;
                const bool on_path =
                    e.traceIndex >= 0
                    && c.nextPc
                           == trace.entries[static_cast<std::size_t>(
                                                e.traceIndex)]
                                  .nextPc;
                squashAfter(e.seq, c.nextPc,
                            on_path ? e.traceIndex + 1 : -1);
                // Later re-executions (speculative resolution only)
                // compare against the path actually being fetched.
                e.predNextPc = c.nextPc;
                e.mispredicted = true;
            }
        }
        it = completions.erase(it);
    }
}

// =====================================================================
// verification / invalidation events
// =====================================================================

void
OooCore::scheduleEvent(std::uint64_t at, const Event &ev)
{
    events[at].push_back(ev);
}

void
OooCore::doEqCheck(RsEntry &e)
{
    if (!e.executed || !e.outDeps.none() || !e.predicted
        || e.predResolved) {
        e.eqScheduled = false;
        return;
    }
    e.eqScheduled = false;
    if (e.outValue == e.predValue) {
        scheduleEvent(cycle + static_cast<std::uint64_t>(
                                  model.equalityToVerify),
                      {EventKind::Verify, e.slot, e.seq,
                       model.verifyScheme == VerifyScheme::Hierarchical
                               || model.verifyScheme == VerifyScheme::Hybrid
                           ? 0
                           : -1});
    } else {
        scheduleEvent(cycle + static_cast<std::uint64_t>(
                                  model.equalityToInvalidate),
                      {EventKind::Invalidate, e.slot, e.seq,
                       model.invalScheme == InvalScheme::Hierarchical ? 0
                                                                      : -1});
    }
}

void
OooCore::doVerify(RsEntry &p, int depth)
{
    const std::size_t pbit = static_cast<std::size_t>(p.slot);

    if (!p.predResolved) {
        ++stats_.verifyEvents;
        p.predResolved = true;
        p.verifiedAt = std::max(p.verifiedAt, cycle);
        stats_.verifyLatency.sample(cycle - p.dispatchAt);
        --specLive;
        if (cfg.tracePipeline)
            tracer_.note(p.seq, cycle, "V");
    }

    const VerifyScheme scheme = model.verifyScheme;
    if (scheme == VerifyScheme::RetirementBased) {
        // Consumers learn at the producer's retirement; nothing to do
        // here (see retireOne()).
        return;
    }
    const bool hier = scheme == VerifyScheme::Hierarchical
                      || scheme == VerifyScheme::Hybrid;

    // Hierarchical semantics advance one dependence level per event.
    // All "was X cleansed?" tests must observe the state *before* the
    // event started, otherwise an in-order sweep cleanses producers
    // in-place and collapses the wave into the flattened behaviour —
    // so snapshot which outputs and which entries' inputs carried the
    // bit at the start of the step.
    SpecMask out_had_bit;  //!< slots whose output carried bit p
    SpecMask in_had_bit;   //!< slots with an input carrying bit p
    if (hier) {
        for (int slot : windowOrder) {
            const RsEntry &f = entry(slot);
            if (f.executed && f.outDeps.test(pbit))
                out_had_bit.set(static_cast<std::size_t>(slot));
            for (const Operand &o : f.src) {
                if (o.used() && o.deps.test(pbit))
                    in_had_bit.set(static_cast<std::size_t>(slot));
            }
        }
    }

    bool any_left = false;
    for (int slot : windowOrder) {
        RsEntry &f = entry(slot);
        if (f.slot == p.slot)
            continue;
        for (Operand &o : f.src) {
            if (!o.used() || !o.deps.test(pbit))
                continue;
            bool clear = true;
            if (hier && o.tag != p.slot && o.tag >= 0) {
                // Clears only when the operand's producer's output was
                // already cleansed before this wave step.
                const RsEntry &prod =
                    window[static_cast<std::size_t>(o.tag)];
                clear = !prod.busy || prod.seq >= f.seq
                        || !prod.executed
                        || !out_had_bit.test(
                               static_cast<std::size_t>(o.tag));
            }
            if (!clear) {
                any_left = true;
                continue;
            }
            o.deps.reset(pbit);
            if (o.deps.none() && o.state != OperandState::Invalid
                && o.state != OperandState::Valid) {
                o.state = OperandState::Valid;
                o.validAt = cycle;
                o.validViaEvent = true;
                f.verifiedAt = std::max(f.verifiedAt, cycle);
            }
        }
        if (f.executed && f.outDeps.test(pbit)) {
            // The output cleanses one wave step after its inputs did
            // (flattened: immediately).
            const bool inputs_were_clean =
                !hier
                || !in_had_bit.test(static_cast<std::size_t>(slot));
            if (inputs_were_clean) {
                f.outDeps.reset(pbit);
                if (f.outDeps.none())
                    noteOutputValid(f, true);
            } else {
                any_left = true;
            }
        }
    }

    if (hier && any_left) {
        // Advance the wave one level next cycle.
        scheduleEvent(cycle + 1,
                      {EventKind::Verify, p.slot, p.seq, depth + 1});
    }
}

void
OooCore::nullify(RsEntry &e)
{
    // Wakeup nullification (§3.4): remove the effects of the previous
    // execution and enable a future wakeup.
    e.issued = false;
    e.executed = false;
    ++e.nonce;
    e.outDeps.reset();
    e.outValid = false;
    e.eqScheduled = false;
    if (e.inst.isStore()) {
        e.addrReady = false;
    }
    e.reissueAt = cycle + static_cast<std::uint64_t>(
                              model.invalidateToReissue);
    e.nullifiedAt = cycle;
    ++stats_.nullifications;
    if (cfg.tracePipeline)
        tracer_.note(e.seq, cycle, "I");
}

void
OooCore::doInvalidate(RsEntry &p, int depth)
{
    const std::size_t pbit = static_cast<std::size_t>(p.slot);

    if (!p.predResolved) {
        ++stats_.invalidateEvents;
        p.predResolved = true;
        p.verifiedAt = std::max(p.verifiedAt, cycle);
        stats_.verifyLatency.sample(cycle - p.dispatchAt);
        --specLive;
        if (cfg.tracePipeline)
            tracer_.note(p.seq, cycle, "EQ!");
    }

    if (model.invalScheme == InvalScheme::Complete) {
        // Complete invalidation (§3.1): treat the value misprediction
        // like a branch misprediction — squash everything younger than
        // p and refetch. p itself keeps its (correct) computed result.
        ++stats_.squashes;
        squashAfter(p.seq, p.pc + 4,
                    p.traceIndex >= 0 ? p.traceIndex + 1 : -1);
        return;
    }

    const bool hier = model.invalScheme == InvalScheme::Hierarchical;
    bool any_left = false;

    // Snapshot pre-step producer state for the hierarchical wave (see
    // doVerify: in-place nullification must not let the wave jump
    // levels within one event).
    SpecMask was_executed, out_had_bit;
    if (hier) {
        for (int slot : windowOrder) {
            const RsEntry &f = entry(slot);
            if (f.executed) {
                was_executed.set(static_cast<std::size_t>(slot));
                if (f.outDeps.test(pbit))
                    out_had_bit.set(static_cast<std::size_t>(slot));
            }
        }
    }

    for (int slot : windowOrder) {
        RsEntry &f = entry(slot);
        if (f.slot == p.slot)
            continue;
        bool affected = false;
        for (Operand &o : f.src) {
            if (!o.used() || !o.deps.test(pbit))
                continue;
            if (o.tag == p.slot) {
                // Direct consumer: the correct value rides the same
                // broadcast that signals the invalidation.
                o.value = p.outValue;
                o.deps.reset();
                o.state = OperandState::Valid;
                o.validAt = cycle;
                o.validViaEvent = true;
                o.readyAt = cycle;
                f.verifiedAt = std::max(f.verifiedAt, cycle);
                affected = true;
            } else if (!hier) {
                // Flattened: every transitive dependent resets at once
                // and re-captures from its producer's re-broadcast.
                o.state = OperandState::Invalid;
                o.deps.reset();
                affected = true;
            } else {
                // Hierarchical wave: react only once the operand's own
                // producer was dealt with in an *earlier* step.
                const RsEntry *prod =
                    o.tag >= 0
                        ? &window[static_cast<std::size_t>(o.tag)]
                        : nullptr;
                const std::size_t tbit =
                    static_cast<std::size_t>(o.tag >= 0 ? o.tag : 0);
                if (!prod || !prod->busy || prod->seq >= f.seq) {
                    o.state = OperandState::Invalid;
                    o.deps.reset();
                    affected = true;
                } else if (!was_executed.test(tbit)) {
                    // Producer was nullified in an earlier wave step.
                    o.state = OperandState::Invalid;
                    o.deps.reset();
                    affected = true;
                } else if (!out_had_bit.test(tbit)
                           && prod->executed) {
                    // Producer re-executed with corrected inputs
                    // before this step.
                    o.value = prod->outValue;
                    o.deps = prod->outDeps;
                    o.readyAt = cycle;
                    if (o.deps.none()) {
                        o.state = OperandState::Valid;
                        o.validAt = cycle;
                        o.validViaEvent = true;
                        f.verifiedAt = std::max(f.verifiedAt, cycle);
                    } else {
                        o.state = OperandState::Speculative;
                    }
                    affected = true;
                } else {
                    any_left = true;
                }
            }
        }
        if (affected && (f.issued || f.executed))
            nullify(f);
    }

    if (hier && any_left) {
        scheduleEvent(cycle + 1,
                      {EventKind::Invalidate, p.slot, p.seq, depth + 1});
    }
}

void
OooCore::processEvents()
{
    while (!events.empty() && events.begin()->first <= cycle) {
        std::vector<Event> batch = std::move(events.begin()->second);
        events.erase(events.begin());
        for (const Event &ev : batch) {
            RsEntry &e = entry(ev.slot);
            if (!e.busy || e.seq != ev.seq)
                continue; // squashed
            switch (ev.kind) {
              case EventKind::EqCheck:
                doEqCheck(e);
                break;
              case EventKind::Verify:
                doVerify(e, ev.depth);
                break;
              case EventKind::Invalidate:
                doInvalidate(e, ev.depth);
                break;
            }
        }
    }
}

// =====================================================================
// squash
// =====================================================================

void
OooCore::squashAfter(std::uint64_t seq, std::uint64_t new_fetch_pc,
                     std::int64_t resume_trace_idx)
{
    while (!windowOrder.empty()) {
        const int slot = windowOrder.back();
        RsEntry &e = entry(slot);
        if (e.seq <= seq)
            break;
        if (e.predicted && !e.predResolved)
            --specLive; // squashed prediction never resolves
        freeSlot(slot);
        windowOrder.pop_back();
    }
    std::deque<int> new_lsq;
    for (int slot : lsq) {
        if (entry(slot).busy && entry(slot).seq <= seq)
            new_lsq.push_back(slot);
    }
    lsq = std::move(new_lsq);
    fetchQueue.clear();
    rebuildRegTags();

    fetchPc = new_fetch_pc;
    fetchResumeAt = cycle + 1;
    fetchSawHalt = false;
    if (resume_trace_idx >= 0) {
        fetchOnCorrectPath = true;
        fetchTraceIdx = resume_trace_idx;
    } else {
        fetchOnCorrectPath = false;
    }
}

// =====================================================================
// retire
// =====================================================================

bool
OooCore::retireOne()
{
    if (windowOrder.empty())
        return false;
    const int slot = windowOrder.front();
    RsEntry &e = entry(slot);

    if (!e.executed || !e.outDeps.none())
        return false;
    if (e.predicted && !e.predResolved)
        return false;
    for (const Operand &o : e.src) {
        if (o.used() && o.state != OperandState::Valid)
            return false;
    }
    if (cycle < e.verifiedAt + static_cast<std::uint64_t>(
                                   model.verifyToFreeResource)) {
        return false;
    }
    if (e.inst.isStore() && dcachePortsUsed >= cfg.effDcachePorts())
        return false; // no store port this cycle
    // A predicted instruction drives its verification/invalidation
    // transaction from its reservation station: under a *hierarchical*
    // (multi-step) wave it cannot release the entry while any
    // in-flight value still carries its dependence bit. Single-event
    // schemes never leave residue (flattened clears everything at
    // once; the retirement-based/hybrid sweep clears it at this very
    // retirement), so the guard must not apply to them — under
    // retirement-based verification it would deadlock against itself.
    if (e.predicted) {
        const bool wave_verify =
            model.verifyScheme == VerifyScheme::Hierarchical;
        const bool wave_inval =
            model.invalScheme == InvalScheme::Hierarchical;
        const bool mispredicted = e.predValue != e.outValue;
        if (mispredicted ? wave_inval : wave_verify) {
            const std::size_t pbit = static_cast<std::size_t>(e.slot);
            for (int other : windowOrder) {
                const RsEntry &f = entry(other);
                if (f.slot == e.slot)
                    continue;
                if (f.executed && f.outDeps.test(pbit))
                    return false;
                for (const Operand &o : f.src) {
                    if (o.used() && o.deps.test(pbit))
                        return false;
                }
            }
        }
    }

    // ---- golden check against the functional pre-execution ----------
    VSIM_ASSERT(e.traceIndex >= 0,
                "wrong-path instruction reached retirement, pc=", e.pc);
    VSIM_ASSERT(e.traceIndex == static_cast<std::int64_t>(retiredCount),
                "retirement out of trace order at pc=", e.pc);
    const arch::TraceEntry &te =
        trace.entries[static_cast<std::size_t>(e.traceIndex)];
    VSIM_ASSERT(te.pc == e.pc, "retired pc mismatch");
    if (int dest = e.inst.destReg(); dest >= 0) {
        VSIM_ASSERT(e.outValue == te.value,
                    "value mismatch at retirement, pc=", e.pc,
                    " ooo=", e.outValue, " func=", te.value);
        archRegs[static_cast<std::size_t>(dest)] = e.outValue;
        if (regTag[static_cast<std::size_t>(dest)] == slot)
            regTag[static_cast<std::size_t>(dest)] = -1;
    }

    if (e.inst.isStore()) {
        memory.write(e.memAddr, e.src[0].value, e.inst.memSize());
        dcacheH.access(e.memAddr, true);
        ++dcachePortsUsed;
        ++stats_.retiredStores;
    } else if (e.inst.isLoad()) {
        ++stats_.retiredLoads;
    } else if (e.inst.isSystem()) {
        switch (e.inst.op) {
          case isa::Op::HALT:
            halted = true;
            exitCode = e.src[0].used() ? e.src[0].value : 0;
            break;
          case isa::Op::PUTC:
            output.push_back(static_cast<char>(e.src[0].value));
            break;
          case isa::Op::PUTI:
            output += std::to_string(
                static_cast<std::int64_t>(e.src[0].value));
            break;
          default:
            VSIM_PANIC("unknown system op at retire");
        }
    } else if (e.inst.isBranch()) {
        ++stats_.retiredBranches;
        if (e.inst.isCondBranch()) {
            ++stats_.condBranches;
            if (e.mispredicted)
                ++stats_.condMispredicts;
        }
    }

    // ---- value-prediction accounting & delayed training --------------
    if (e.vpEligible) {
        ++stats_.vpEligible;
        const bool correct = e.predValue == e.outValue;
        auto &pp = perPcVp[e.pc];
        ++pp.first;
        pp.second += correct;
        if (correct)
            ++(e.predConfident ? stats_.vpCH : stats_.vpCL);
        else
            ++(e.predConfident ? stats_.vpIH : stats_.vpIL);
        if (e.predicted)
            ++stats_.vpSpeculated;
        if (!predOverride && cfg.updateTiming == UpdateTiming::Delayed) {
            vpred_->updateTable(e.pc, e.predToken, e.outValue);
            vpred_->commitHistory(e.pc, e.outValue, correct);
            if (cfg.confidence == ConfidenceKind::Real)
                conf_->update(e.pc, correct);
        }
    }

    // Retirement-based verification: the paper's §3.2 scheme validates
    // consumers through the retirement broadcast.
    if (e.predicted
        && (model.verifyScheme == VerifyScheme::RetirementBased
            || model.verifyScheme == VerifyScheme::Hybrid)) {
        const std::size_t pbit = static_cast<std::size_t>(e.slot);
        for (int fslot : windowOrder) {
            RsEntry &f = entry(fslot);
            if (f.slot == e.slot)
                continue;
            for (Operand &o : f.src) {
                if (!o.used() || !o.deps.test(pbit))
                    continue;
                o.deps.reset(pbit);
                if (o.deps.none() && o.state != OperandState::Invalid
                    && o.state != OperandState::Valid) {
                    o.state = OperandState::Valid;
                    o.validAt = cycle;
                    o.validViaEvent = true;
                    f.verifiedAt = std::max(f.verifiedAt, cycle);
                }
            }
            if (f.executed && f.outDeps.test(pbit)) {
                f.outDeps.reset(pbit);
                if (f.outDeps.none())
                    noteOutputValid(f, true);
            }
        }
    }

    if (cfg.tracePipeline)
        tracer_.note(e.seq, cycle, "RT");

    if (e.inst.isMem()) {
        VSIM_ASSERT(!lsq.empty() && lsq.front() == slot,
                    "LSQ out of order at retirement");
        lsq.pop_front();
    }
    windowOrder.pop_front();
    freeSlot(slot);
    ++retiredCount;
    ++stats_.retired;
    return true;
}

void
OooCore::retireStage()
{
    const int width = cfg.effRetireWidth();
    for (int n = 0; n < width && !halted; ++n) {
        if (!retireOne())
            break;
    }
}

// =====================================================================
// observability sampling
// =====================================================================

void
OooCore::flushInterval(std::uint64_t cycles)
{
    obs::IntervalSample s;
    s.cycleStart = ivCursor.cycleStart;
    s.cycles = cycles;
    s.occupancySum = ivCursor.occupancySum;
    s.retired = stats_.retired - ivCursor.retired;
    s.issued = stats_.issued - ivCursor.issued;
    s.dispatched = stats_.dispatched - ivCursor.dispatched;
    s.condBranches = stats_.condBranches - ivCursor.condBranches;
    s.condMispredicts =
        stats_.condMispredicts - ivCursor.condMispredicts;
    s.squashes = stats_.squashes - ivCursor.squashes;
    s.verifyEvents = stats_.verifyEvents - ivCursor.verifyEvents;
    s.invalidateEvents =
        stats_.invalidateEvents - ivCursor.invalidateEvents;
    s.nullifications =
        stats_.nullifications - ivCursor.nullifications;
    intervals_.samples.push_back(s);

    ivCursor.cycleStart += cycles;
    ivCursor.occupancySum = 0;
    ivCursor.retired = stats_.retired;
    ivCursor.issued = stats_.issued;
    ivCursor.dispatched = stats_.dispatched;
    ivCursor.condBranches = stats_.condBranches;
    ivCursor.condMispredicts = stats_.condMispredicts;
    ivCursor.squashes = stats_.squashes;
    ivCursor.verifyEvents = stats_.verifyEvents;
    ivCursor.invalidateEvents = stats_.invalidateEvents;
    ivCursor.nullifications = stats_.nullifications;
}

void
OooCore::sampleObservability()
{
    // Always-on distributions: collected on every run so a memoized
    // result is identical no matter which flags requested it.
    if (cfg.useValuePrediction)
        stats_.specInFlight.sample(static_cast<std::uint64_t>(specLive));

    if (cfg.metricsInterval == 0)
        return;
    ivCursor.occupancySum += static_cast<std::uint64_t>(liveEntries);
    const std::uint64_t elapsed = cycle + 1 - ivCursor.cycleStart;
    if (elapsed >= cfg.metricsInterval)
        flushInterval(elapsed);
}

// =====================================================================
// top level
// =====================================================================

bool
OooCore::tick()
{
    if (halted)
        return false;
    dcachePortsUsed = 0;
    applyCompletions();
    processEvents();
    retireStage();
    issueStage();
    dispatchStage();
    fetchStage();
    sampleObservability();
    ++cycle;
    return !halted;
}

SimOutcome
OooCore::run()
{
    while (!halted && cycle < cfg.maxCycles)
        tick();

    if (halted) {
        VSIM_ASSERT(output == trace.output,
                    "program output diverged from functional run");
        VSIM_ASSERT(retiredCount == trace.entries.size(),
                    "retired count != trace length");
    }

    stats_.cycles = cycle;
    stats_.icacheMisses = icacheH.l1().stats().misses();
    stats_.dcacheMisses = dcacheH.l1().stats().misses();

    // Close the trailing (short) interval so its events are not lost.
    if (cfg.metricsInterval != 0 && cycle > ivCursor.cycleStart)
        flushInterval(cycle - ivCursor.cycleStart);

    SimOutcome outcome;
    outcome.stats = stats_;
    outcome.exitCode = exitCode;
    outcome.output = output;
    outcome.halted = halted;
    outcome.intervals = intervals_;
    return outcome;
}

} // namespace vsim::core
