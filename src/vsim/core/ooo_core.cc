/**
 * @file
 * OooCore backbone: construction, window slot management, squash,
 * nullification, the SpecHooks bridge into the policy sweeps, the
 * wakeup-scheduler bookkeeping, observability sampling and the
 * top-level cycle loop. The pipeline stages themselves live in
 * ooo_frontend.cc (fetch/dispatch), ooo_issue.cc (wakeup/select/issue)
 * and ooo_commit.cc (completion/events/retire).
 */

#include "ooo_core.hh"

#include <algorithm>

#include "vsim/arch/exec.hh"
#include "vsim/base/logging.hh"

namespace vsim::core
{

OooCore::OooCore(const assembler::Program &prog, const CoreConfig &config)
    : OooCore(prog, arch::preExecute(prog), config)
{}

OooCore::OooCore(const assembler::Program &prog, arch::ExecTrace recorded,
                 const CoreConfig &config)
    : cfg(config), model(config.model),
      policies(makePolicies(config.model)),
      trace(std::move(recorded)),
      bpred_(bpred::makeBranchPredictor(config.branchPredictor)),
      vpred_(vpred::makeValuePredictor(config.valuePredictor)),
      conf_(std::make_unique<vpred::ResettingConfidence>(
          config.confidenceBits, config.confidenceTableBits,
          config.confidenceThreshold)),
      l2(config.l2cache),
      icacheH(config.icache, l2,
              {config.icacheHitLat, config.l2HitLat, config.l2MissLat}),
      dcacheH(config.dcache, l2,
              {config.dcacheHitLat, config.l2HitLat, config.l2MissLat})
{
    VSIM_ASSERT(cfg.windowSize > 0 && cfg.windowSize <= kMaxWindow,
                "window size ", cfg.windowSize, " out of range");
    VSIM_ASSERT(cfg.issueWidth > 0, "bad issue width");

    // Committed architectural state starts exactly like the loader's.
    arch::ArchState init = arch::loadProgram(prog);
    memory = std::move(init.mem);
    archRegs = init.regs;
    fetchPc = init.pc;

    window.resize(static_cast<std::size_t>(cfg.windowSize));
    for (int i = cfg.windowSize - 1; i >= 0; --i)
        freeSlots.push_back(i);
    regTag.fill(-1);
    vpTrained.assign(trace.entries.size(), false);
    bpTrained.assign(trace.entries.size(), false);

    windowOrder.reset(cfg.windowSize);
    lsq.reset(cfg.windowSize);
    subsIndex.reset(cfg.windowSize);

    sched.reset(cfg.windowSize);
    waiters.assign(static_cast<std::size_t>(cfg.windowSize), {});

    verifyLatencyHist = &stats_.verifyLatency;
    invalToReissueHist = &stats_.invalToReissue;
    specInFlightHist = &stats_.specInFlight;
    tracingEnabled = cfg.tracePipeline;

    tracer_.setCapacity(cfg.traceRetain);
    intervals_.period = cfg.metricsInterval;
}

OooCore::~OooCore() = default;

void
OooCore::setPredictionOverride(PredictionOverride override_fn)
{
    predOverride = std::move(override_fn);
}

// =====================================================================
// slot management
// =====================================================================

int
OooCore::allocSlot()
{
    VSIM_ASSERT(!freeSlots.empty(), "window overflow");
    const int slot = freeSlots.back();
    freeSlots.pop_back();
    ++liveEntries;
    RsEntry &e = window[static_cast<std::size_t>(slot)];
    e = RsEntry{};
    e.busy = true;
    // Waiters of the slot's previous tenant are all dead by now (a
    // retiring producer has broadcast; a squashed one took every
    // younger consumer with it) — drop them before they accumulate.
    waiters[static_cast<std::size_t>(slot)].clear();
    return slot;
}

void
OooCore::freeSlot(int slot)
{
    RsEntry &e = entry(slot);
    VSIM_ASSERT(e.busy, "freeing idle slot");
    e.busy = false;
    freeSlots.push_back(slot);
    --liveEntries;
    if (readyListScheduler())
        sched.remove(slot);
}

void
OooCore::rebuildRegTags()
{
    regTag.fill(-1);
    for (int slot : windowOrder) {
        const RsEntry &e = entry(slot);
        if (int dest = e.inst.destReg(); dest >= 0)
            regTag[static_cast<std::size_t>(dest)] = slot;
    }
}

// =====================================================================
// squash
// =====================================================================

void
OooCore::squashAfter(std::uint64_t seq, std::uint64_t new_fetch_pc,
                     std::int64_t resume_trace_idx)
{
    while (!windowOrder.empty()) {
        const int slot = windowOrder.back();
        RsEntry &e = entry(slot);
        if (e.seq <= seq)
            break;
        if (e.predicted && !e.predResolved)
            --specLive; // squashed prediction never resolves
        freeSlot(slot);
        windowOrder.pop_back();
    }
    // The LSQ is in program order, so the squashed (freed-above)
    // entries are exactly its youngest suffix.
    while (!lsq.empty() && entry(lsq.back()).seq > seq)
        lsq.pop_back();
    fetchQueue.clear();
    rebuildRegTags();

    fetchPc = new_fetch_pc;
    fetchResumeAt = cycle + 1;
    fetchSawHalt = false;
    if (resume_trace_idx >= 0) {
        fetchOnCorrectPath = true;
        fetchTraceIdx = resume_trace_idx;
    } else {
        fetchOnCorrectPath = false;
    }
}

// =====================================================================
// nullification / prediction resolution
// =====================================================================

void
OooCore::nullify(RsEntry &e)
{
    // Wakeup nullification (§3.4): remove the effects of the previous
    // execution and enable a future wakeup.
    e.issued = false;
    e.executed = false;
    ++e.nonce;
    e.outDeps.reset();
    e.memDeps.reset();
    e.outValid = false;
    e.eqScheduled = false;
    if (e.inst.isStore()) {
        e.addrReady = false;
    }
    e.reissueAt = cycle + static_cast<std::uint64_t>(
                              model.invalidateToReissue);
    e.nullifiedAt = cycle;
    ++stats_.nullifications;
    if (tracingEnabled)
        tracer_.note(e.seq, cycle, "I");
    touchWakeup(e.slot);
}

void
OooCore::noteOutputValid(RsEntry &e, bool via_event)
{
    e.outValid = true;
    e.outValidAt = cycle;
    e.outValidViaEvent = via_event;
    e.verifiedAt = std::max(e.verifiedAt, cycle);
    if (e.predicted && !e.predResolved && !e.eqScheduled) {
        e.eqScheduled = true;
        events.schedule(cycle + static_cast<std::uint64_t>(
                                    model.execToEquality),
                        {EventKind::EqCheck, e.slot, e.seq, -1});
    }
}

void
OooCore::resolvePrediction(RsEntry &p, bool verified)
{
    if (p.predResolved)
        return;
    ++(verified ? stats_.verifyEvents : stats_.invalidateEvents);
    p.predResolved = true;
    p.verifiedAt = std::max(p.verifiedAt, cycle);
    verifyLatencyHist->sample(cycle - p.dispatchAt);
    --specLive;
    if (tracingEnabled)
        tracer_.note(p.seq, cycle, verified ? "V" : "EQ!");
}

// =====================================================================
// SpecHooks: side effects raised by the policy sweeps
// =====================================================================

void
OooCore::outputBecameValid(RsEntry &e)
{
    noteOutputValid(e, true);
}

void
OooCore::nullifyEntry(RsEntry &e)
{
    nullify(e);
}

void
OooCore::completeSquash(RsEntry &p)
{
    // Complete invalidation (§3.1): treat the value misprediction
    // like a branch misprediction — squash everything younger than
    // p and refetch. p itself keeps its (correct) computed result.
    ++stats_.squashes;
    squashAfter(p.seq, p.pc + 4,
                p.traceIndex >= 0 ? p.traceIndex + 1 : -1);
}

void
OooCore::wakeupChanged(RsEntry &e)
{
    // A policy sweep may have rewritten the entry's operand masks
    // (the hierarchical invalidation wave re-captures a corrected
    // producer output wholesale) — keep the subscriber lists current.
    subsIndex.noteEntry(e);
    touchWakeup(e.slot);
}

void
OooCore::operandInvalidated(RsEntry &e, int idx)
{
    if (!readyListScheduler())
        return;
    if (e.src[idx].tag >= 0)
        registerWaiter(e.slot, idx, e.src[idx].tag);
    sched.touch(e.slot);
}

// =====================================================================
// wakeup-scheduler bookkeeping
// =====================================================================

void
OooCore::touchWakeup(int slot)
{
    if (readyListScheduler())
        sched.touch(slot);
}

void
OooCore::registerWaiter(int consumer_slot, int idx, int tag)
{
    waiters[static_cast<std::size_t>(tag)].push_back(
        {consumer_slot, idx});
}

// =====================================================================
// observability sampling
// =====================================================================

void
OooCore::flushInterval(std::uint64_t cycles)
{
    obs::IntervalSample s;
    s.cycleStart = ivCursor.cycleStart;
    s.cycles = cycles;
    s.occupancySum = ivCursor.occupancySum;
    s.retired = stats_.retired - ivCursor.retired;
    s.issued = stats_.issued - ivCursor.issued;
    s.dispatched = stats_.dispatched - ivCursor.dispatched;
    s.condBranches = stats_.condBranches - ivCursor.condBranches;
    s.condMispredicts =
        stats_.condMispredicts - ivCursor.condMispredicts;
    s.squashes = stats_.squashes - ivCursor.squashes;
    s.verifyEvents = stats_.verifyEvents - ivCursor.verifyEvents;
    s.invalidateEvents =
        stats_.invalidateEvents - ivCursor.invalidateEvents;
    s.nullifications =
        stats_.nullifications - ivCursor.nullifications;
    intervals_.samples.push_back(s);

    ivCursor.cycleStart += cycles;
    ivCursor.occupancySum = 0;
    ivCursor.retired = stats_.retired;
    ivCursor.issued = stats_.issued;
    ivCursor.dispatched = stats_.dispatched;
    ivCursor.condBranches = stats_.condBranches;
    ivCursor.condMispredicts = stats_.condMispredicts;
    ivCursor.squashes = stats_.squashes;
    ivCursor.verifyEvents = stats_.verifyEvents;
    ivCursor.invalidateEvents = stats_.invalidateEvents;
    ivCursor.nullifications = stats_.nullifications;
}

void
OooCore::sampleObservability()
{
    // Always-on distributions: collected on every run so a memoized
    // result is identical no matter which flags requested it.
    if (cfg.useValuePrediction)
        specInFlightHist->sample(static_cast<std::uint64_t>(specLive));

    if (cfg.metricsInterval == 0)
        return;
    ivCursor.occupancySum += static_cast<std::uint64_t>(liveEntries);
    const std::uint64_t elapsed = cycle + 1 - ivCursor.cycleStart;
    if (elapsed >= cfg.metricsInterval)
        flushInterval(elapsed);
}

// =====================================================================
// top level
// =====================================================================

bool
OooCore::tick()
{
    if (halted)
        return false;
    dcachePortsUsed = 0;
    applyCompletions();
    processEvents();
    retireStage();
    issueStage();
    dispatchStage();
    fetchStage();
    sampleObservability();
    ++cycle;
    return !halted;
}

SimOutcome
OooCore::run()
{
    while (!halted && cycle < cfg.maxCycles)
        tick();

    if (halted) {
        VSIM_ASSERT(output == trace.output,
                    "program output diverged from functional run");
        VSIM_ASSERT(retiredCount == trace.entries.size(),
                    "retired count != trace length");
    }

    stats_.cycles = cycle;
    stats_.icacheMisses = icacheH.l1().stats().misses();
    stats_.dcacheMisses = dcacheH.l1().stats().misses();

    // Close the trailing (short) interval so its events are not lost.
    if (cfg.metricsInterval != 0 && cycle > ivCursor.cycleStart)
        flushInterval(cycle - ivCursor.cycleStart);

    SimOutcome outcome;
    outcome.stats = stats_;
    outcome.exitCode = exitCode;
    outcome.output = output;
    outcome.halted = halted;
    outcome.intervals = intervals_;
    return outcome;
}

} // namespace vsim::core
