/**
 * @file
 * OooCore backbone: construction, window slot management, squash,
 * nullification, the SpecHooks bridge into the policy sweeps, the
 * wakeup-scheduler bookkeeping, observability sampling and the
 * top-level cycle loop. The pipeline stages themselves live in
 * ooo_frontend.cc (fetch/dispatch), ooo_issue.cc (wakeup/select/issue)
 * and ooo_commit.cc (completion/events/retire).
 */

#include "ooo_core.hh"

#include <algorithm>

#include "vsim/arch/exec.hh"
#include "vsim/base/logging.hh"

namespace vsim::core
{

OooCore::OooCore(const assembler::Program &prog, const CoreConfig &config)
    : OooCore(prog, arch::preExecute(prog), config)
{}

OooCore::OooCore(const assembler::Program &prog, arch::ExecTrace recorded,
                 const CoreConfig &config)
    : OooCore(prog,
              std::make_shared<const arch::ExecTrace>(std::move(recorded)),
              config)
{}

OooCore::OooCore(const assembler::Program &prog,
                 std::shared_ptr<const arch::ExecTrace> recorded,
                 const CoreConfig &config)
    : cfg(config), model(config.model),
      policies(makePolicies(config.model)),
      traceOwned(std::move(recorded)), trace(*traceOwned),
      bpred_(bpred::makeBranchPredictor(config.branchPredictor)),
      vpred_(vpred::makeValuePredictor(config.valuePredictor)),
      conf_(std::make_unique<vpred::ResettingConfidence>(
          config.confidenceBits, config.confidenceTableBits,
          config.confidenceThreshold)),
      l2(config.l2cache),
      icacheH(config.icache, l2,
              {config.icacheHitLat, config.l2HitLat, config.l2MissLat}),
      dcacheH(config.dcache, l2,
              {config.dcacheHitLat, config.l2HitLat, config.l2MissLat})
{
    VSIM_ASSERT(cfg.windowSize > 0 && cfg.windowSize <= kMaxWindow,
                "window size ", cfg.windowSize, " out of range");
    VSIM_ASSERT(cfg.issueWidth > 0, "bad issue width");

    // Committed architectural state starts exactly like the loader's.
    arch::ArchState init = arch::loadProgram(prog);
    memory = std::move(init.mem);
    archRegs = init.regs;
    fetchPc = init.pc;

    window.resize(static_cast<std::size_t>(cfg.windowSize));
    windowCold.resize(static_cast<std::size_t>(cfg.windowSize));
    for (int i = cfg.windowSize - 1; i >= 0; --i)
        freeSlots.push_back(i);
    regTag.fill(-1);
    vpTrained.assign(trace.entries.size(), false);
    bpTrained.assign(trace.entries.size(), false);

    windowOrder.reset(cfg.windowSize);
    lsq.reset(cfg.windowSize);
    subsIndex.reset(cfg.windowSize);

    sched.reset(cfg.windowSize);
    waiters.assign(static_cast<std::size_t>(cfg.windowSize), {});

    verifyLatencyHist = &stats_.verifyLatency;
    invalToReissueHist = &stats_.invalToReissue;
    specInFlightHist = &stats_.specInFlight;
    tracingEnabled = cfg.tracePipeline;

    tracer_.setCapacity(cfg.traceRetain);
    intervals_.period = cfg.metricsInterval;

    ledger_.enabled = cfg.specLedger;
    if (cfg.specLedger)
        ledgerIdx.assign(static_cast<std::size_t>(cfg.windowSize), -1);
}

OooCore::~OooCore() = default;

void
OooCore::setPredictionOverride(PredictionOverride override_fn)
{
    predOverride = std::move(override_fn);
}

// =====================================================================
// snapshot start / shard stats window
// =====================================================================

void
OooCore::startFromSnapshot(const SimSnapshot &snap)
{
    VSIM_ASSERT(cycle == 0 && retiredCount == 0 && liveEntries == 0,
                "startFromSnapshot on a running core");
    VSIM_ASSERT(snap.instIndex < trace.entries.size(),
                "snapshot index ", snap.instIndex,
                " outside the trace");
    VSIM_ASSERT(trace.entries[snap.instIndex].pc == snap.pc,
                "snapshot PC does not match the trace at instruction ",
                snap.instIndex);

    archRegs = snap.regs;
    memory = snap.memory;
    startIndex = snap.instIndex;
    retiredCount = snap.instIndex;
    fetchTraceIdx = static_cast<std::int64_t>(snap.instIndex);
    fetchPc = snap.pc;

    StateReader r(snap.tables.data(), snap.tables.size());
    bpred_->restore(r);
    vpred_->restore(r);
    conf_->restore(r);
    l2.restore(r);
    icacheH.l1().restore(r);
    dcacheH.l1().restore(r);
    VSIM_ASSERT(r.done(), "trailing bytes in snapshot tables");
}

void
OooCore::setRunWindow(std::uint64_t stats_from_retired,
                      std::uint64_t stop_after_retired)
{
    VSIM_ASSERT(cycle == 0, "setRunWindow on a running core");
    VSIM_ASSERT(stats_from_retired >= retiredCount,
                "stats window starts before the snapshot point");
    VSIM_ASSERT(stop_after_retired > stats_from_retired
                    && stop_after_retired <= trace.entries.size(),
                "bad shard stop boundary");
    statsFromRetired = stats_from_retired;
    stopAfterRetired = stop_after_retired;
    shardWindowed = true;
    // When the window opens at the start (W covers nothing), the
    // all-zero baseline is already correct.
    statsOpen = retiredCount >= statsFromRetired;
}

void
OooCore::openStatsWindow()
{
    statsOpen = true;
    statsCut.cycleAt = cycle;
    statsCut.base = stats_;
    statsCut.base.cycles = cycle;
    statsCut.base.icacheMisses = icacheH.l1().stats().misses();
    statsCut.base.dcacheMisses = dcacheH.l1().stats().misses();
    // Restart the interval sampler at the cut: shard samples cover
    // only the counted window, with interval boundaries re-anchored
    // at the cut cycle (DESIGN.md documents the seam).
    if (cfg.metricsInterval != 0) {
        intervals_.samples.clear();
        ivCursor.cycleStart = cycle;
        ivCursor.occupancySum = 0;
        ivCursor.retired = stats_.retired;
        ivCursor.issued = stats_.issued;
        ivCursor.dispatched = stats_.dispatched;
        ivCursor.condBranches = stats_.condBranches;
        ivCursor.condMispredicts = stats_.condMispredicts;
        ivCursor.squashes = stats_.squashes;
        ivCursor.verifyEvents = stats_.verifyEvents;
        ivCursor.invalidateEvents = stats_.invalidateEvents;
        ivCursor.nullifications = stats_.nullifications;
        ivCursor.cpi = stats_.cpi;
    }
}

// =====================================================================
// slot management
// =====================================================================

int
OooCore::allocSlot()
{
    VSIM_ASSERT(!freeSlots.empty(), "window overflow");
    const int slot = freeSlots.back();
    freeSlots.pop_back();
    ++liveEntries;
    RsEntry &e = window[static_cast<std::size_t>(slot)];
    e = RsEntry{};
    windowCold[static_cast<std::size_t>(slot)] = RsCold{};
    e.busy = true;
    // Waiters of the slot's previous tenant are all dead by now (a
    // retiring producer has broadcast; a squashed one took every
    // younger consumer with it) — drop them before they accumulate.
    waiters[static_cast<std::size_t>(slot)].clear();
    return slot;
}

void
OooCore::freeSlot(int slot)
{
    RsEntry &e = entry(slot);
    VSIM_ASSERT(e.busy, "freeing idle slot");
    e.busy = false;
    freeSlots.push_back(slot);
    --liveEntries;
    if (readyListScheduler())
        sched.remove(slot);
    if (cfg.specLedger)
        ledgerIdx[static_cast<std::size_t>(slot)] = -1;
}

void
OooCore::rebuildRegTags()
{
    regTag.fill(-1);
    for (int slot : windowOrder) {
        const RsEntry &e = entry(slot);
        if (int dest = e.inst.destReg(); dest >= 0)
            regTag[static_cast<std::size_t>(dest)] = slot;
    }
}

// =====================================================================
// squash
// =====================================================================

void
OooCore::squashAfter(std::uint64_t seq, std::uint64_t new_fetch_pc,
                     std::int64_t resume_trace_idx)
{
    while (!windowOrder.empty()) {
        const int slot = windowOrder.back();
        RsEntry &e = entry(slot);
        if (e.seq <= seq)
            break;
        if (e.predicted && !e.predResolved) {
            --specLive; // squashed prediction never resolves
            ++stats_.predSquashed;
            ledgerResolved(e, obs::LedgerOutcome::Squashed);
        }
        freeSlot(slot);
        windowOrder.pop_back();
    }
    // The LSQ is in program order, so the squashed (freed-above)
    // entries are exactly its youngest suffix.
    while (!lsq.empty() && entry(lsq.back()).seq > seq)
        lsq.pop_back();
    fetchQueue.clear();
    rebuildRegTags();

    fetchPc = new_fetch_pc;
    fetchResumeAt = cycle + 1;
    fetchSawHalt = false;
    fetchStallIcache = false; // the redirect supersedes any I$ stall
    if (resume_trace_idx >= 0) {
        fetchOnCorrectPath = true;
        fetchTraceIdx = resume_trace_idx;
    } else {
        fetchOnCorrectPath = false;
    }
}

// =====================================================================
// nullification / prediction resolution
// =====================================================================

void
OooCore::nullify(RsEntry &e)
{
    // Wakeup nullification (§3.4): remove the effects of the previous
    // execution and enable a future wakeup.
    e.issued = false;
    e.executed = false;
    ++e.nonce;
    e.outDeps.reset();
    e.memDeps.reset();
    e.outValid = false;
    e.eqScheduled = false;
    if (e.inst.isStore()) {
        e.addrReady = false;
    }
    e.reissueAt = cycle + static_cast<std::uint64_t>(
                              model.invalidateToReissue);
    cold(e.slot).nullifiedAt = cycle;
    ++stats_.nullifications;
    if (tracingEnabled)
        tracer_.note(e.seq, cycle, "I");
    touchWakeup(e.slot);
}

void
OooCore::noteOutputValid(RsEntry &e, bool via_event)
{
    e.outValid = true;
    RsCold &ec = cold(e.slot);
    ec.outValidAt = cycle;
    ec.outValidViaEvent = via_event;
    e.verifiedAt = std::max(e.verifiedAt, cycle);
    if (e.predicted && !e.predResolved && !e.eqScheduled) {
        e.eqScheduled = true;
        events.schedule(cycle + static_cast<std::uint64_t>(
                                    model.execToEquality),
                        {EventKind::EqCheck, e.slot, e.seq, -1});
    }
}

void
OooCore::resolvePrediction(RsEntry &p, bool verified)
{
    if (p.predResolved)
        return;
    ++(verified ? stats_.verifyEvents : stats_.invalidateEvents);
    p.predResolved = true;
    p.verifiedAt = std::max(p.verifiedAt, cycle);
    if (statsOpen)
        verifyLatencyHist->sample(cycle - p.dispatchAt);
    --specLive;
    ledgerResolved(p, verified ? obs::LedgerOutcome::Verified
                               : obs::LedgerOutcome::Invalidated);
    if (tracingEnabled)
        tracer_.note(p.seq, cycle, verified ? "V" : "EQ!");
}

// =====================================================================
// SpecHooks: side effects raised by the policy sweeps
// =====================================================================

void
OooCore::outputBecameValid(RsEntry &e)
{
    noteOutputValid(e, true);
}

void
OooCore::nullifyEntry(RsEntry &e)
{
    nullify(e);
}

void
OooCore::completeSquash(RsEntry &p)
{
    // Complete invalidation (§3.1): treat the value misprediction
    // like a branch misprediction — squash everything younger than
    // p and refetch. p itself keeps its (correct) computed result.
    ++stats_.squashes;
    lastRedirect = RedirectCause::VMisp;
    squashAfter(p.seq, cold(p.slot).pc + 4,
                p.traceIndex >= 0 ? p.traceIndex + 1 : -1);
}

void
OooCore::wakeupChanged(RsEntry &e)
{
    // A policy sweep may have rewritten the entry's operand masks
    // (the hierarchical invalidation wave re-captures a corrected
    // producer output wholesale) — keep the subscriber lists current.
    subsIndex.noteEntry(e);
    touchWakeup(e.slot);
}

void
OooCore::operandInvalidated(RsEntry &e, int idx)
{
    if (!readyListScheduler())
        return;
    if (e.src[idx].tag >= 0)
        registerWaiter(e.slot, idx, e.src[idx].tag);
    sched.touch(e.slot);
}

void
OooCore::attributeSweep(const RsEntry &p, const RsEntry &consumer,
                        bool invalidation)
{
    (void)consumer;
    if (invalidation) {
        ++stats_.invalTouches;
        // The invalidation of p's prediction killed this consumer:
        // extend p's reissue chain in the ledger.
        if (cfg.specLedger) {
            const std::int64_t i =
                ledgerIdx[static_cast<std::size_t>(p.slot)];
            if (i >= 0)
                ++ledger_.records[static_cast<std::size_t>(i)].reissues;
        }
    } else {
        ++stats_.verifyTouches;
    }
}

// =====================================================================
// speculation-ledger bookkeeping
// =====================================================================

void
OooCore::notePredConsumed(const RsEntry &producer)
{
    ++stats_.predConsumed;
    if (!cfg.specLedger)
        return;
    const std::int64_t i =
        ledgerIdx[static_cast<std::size_t>(producer.slot)];
    if (i >= 0)
        ++ledger_.records[static_cast<std::size_t>(i)].consumers;
}

void
OooCore::ledgerPredictionMade(const RsEntry &e)
{
    if (!cfg.specLedger)
        return;
    obs::LedgerRecord r;
    r.seq = e.seq;
    r.pc = cold(e.slot).pc;
    r.madeAt = cycle;
    ledgerIdx[static_cast<std::size_t>(e.slot)] =
        static_cast<std::int64_t>(ledger_.records.size());
    ledger_.records.push_back(r);
}

void
OooCore::ledgerResolved(const RsEntry &p, obs::LedgerOutcome outcome)
{
    if (!cfg.specLedger)
        return;
    const std::int64_t i = ledgerIdx[static_cast<std::size_t>(p.slot)];
    if (i < 0)
        return;
    obs::LedgerRecord &r = ledger_.records[static_cast<std::size_t>(i)];
    r.outcome = outcome;
    r.resolvedAt = cycle;
}

// =====================================================================
// wakeup-scheduler bookkeeping
// =====================================================================

void
OooCore::touchWakeup(int slot)
{
    if (readyListScheduler())
        sched.touch(slot);
}

void
OooCore::registerWaiter(int consumer_slot, int idx, int tag)
{
    waiters[static_cast<std::size_t>(tag)].push_back(
        {consumer_slot, idx});
}

// =====================================================================
// observability sampling
// =====================================================================

obs::CpiCat
OooCore::classifyCycle(std::uint64_t retired_delta) const
{
    using obs::CpiCat;
    if (retired_delta > 0)
        return CpiCat::Base;

    if (windowOrder.empty()) {
        // Frontend-bound: the backend has nothing at all to work on.
        if (fetchStallIcache)
            return CpiCat::IcacheStall;
        switch (lastRedirect) {
          case RedirectCause::VMisp:
            return CpiCat::VmispSquash;
          case RedirectCause::Branch:
            return CpiCat::BranchRecovery;
          case RedirectCause::None:
            break; // startup ramp
        }
        return CpiCat::FetchRedirect;
    }

    // Commit-centric attribution: nothing retired this cycle, so
    // charge whatever holds the window head (the oldest instruction).
    const RsEntry &e = entry(windowOrder.front());
    const RsCold &ec = cold(windowOrder.front());

    if (e.executed) {
        // An executed head failed one of retireOne()'s §3 release
        // conditions; walk them in the same order.
        if (!e.outDeps.none())
            return CpiCat::Verify;
        if (e.predicted && !e.predResolved)
            return CpiCat::Verify;
        for (const Operand &o : e.src) {
            if (o.used() && o.state != OperandState::Valid)
                return CpiCat::Verify;
        }
        if (cycle < e.verifiedAt + static_cast<std::uint64_t>(
                                       model.verifyToFreeResource)) {
            // The release delay is verification cost only when the
            // head's validity actually came through the network;
            // otherwise it is the machine's plain commit latency.
            if (e.predicted || ec.outValidViaEvent)
                return CpiCat::Verify;
            for (const Operand &o : e.src) {
                if (o.used() && o.validViaEvent)
                    return CpiCat::Verify;
            }
            return CpiCat::Base;
        }
        if (e.inst.isStore())
            return CpiCat::Memory; // store retire needs a dcache port
        return CpiCat::Verify;     // residue guard on a predicted head
    }

    if (e.issued) {
        // In-flight execution: memory-system latency for memory ops,
        // plain functional-unit latency otherwise.
        return e.inst.isMem() ? CpiCat::Memory : CpiCat::Base;
    }

    // Head not yet issued: find the first failing wakeup condition,
    // mirroring canIssue()'s order.
    if (cycle < e.reissueAt)
        return CpiCat::Reissue;
    for (const Operand &o : e.src) {
        if (!o.used())
            continue;
        if (!o.hasValue()) {
            // An Invalid operand of an already-executed-once head
            // means it was nullified and waits on its producer's
            // re-broadcast: that is the reissue chain, not a plain
            // operand wait.
            return ec.execCount > 0 ? CpiCat::Reissue
                                   : CpiCat::OperandWait;
        }
        if (o.readyAt > cycle)
            return CpiCat::OperandWait;
    }
    const bool needs_valid =
        e.inst.isBranch() || e.inst.isSystem()
            ? model.branchNeedsValidOps || !cfg.useValuePrediction
            : false;
    if (needs_valid) {
        for (const Operand &o : e.src) {
            if (!o.used())
                continue;
            if (o.state != OperandState::Valid)
                return CpiCat::Verify;
            if (o.validViaEvent
                && cycle < o.validAt + static_cast<std::uint64_t>(
                               model.verifyToBranch)) {
                return CpiCat::Verify;
            }
        }
    }
    if (e.inst.isMem()
        && (model.memNeedsValidOps || !cfg.useValuePrediction)) {
        const Operand &base = e.inst.isLoad() ? e.src[0] : e.src[1];
        if (base.used()) {
            if (base.state != OperandState::Valid)
                return CpiCat::Verify;
            if (base.validViaEvent
                && cycle < base.validAt + static_cast<std::uint64_t>(
                               model.verifyAddrToMem)) {
                return CpiCat::Verify;
            }
        }
    }
    if (e.inst.isLoad()) {
        const std::uint64_t addr =
            e.src[0].value
            + static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(e.inst.imm));
        if (!loadOrderingSatisfiedAt(e, addr))
            return CpiCat::Memory; // blocked behind older stores
        if (dcachePortsUsed >= cfg.effDcachePorts())
            return CpiCat::Memory; // data-cache ports exhausted
    }
    // The head is issueable but was not selected (dispatched this very
    // cycle, or lost the width race): window pressure when the window
    // is full, plain pipeline latency otherwise.
    if (liveEntries >= cfg.windowSize)
        return CpiCat::WindowFull;
    return CpiCat::Base;
}

void
OooCore::flushInterval(std::uint64_t cycles)
{
    obs::IntervalSample s;
    s.cycleStart = ivCursor.cycleStart;
    s.cycles = cycles;
    s.occupancySum = ivCursor.occupancySum;
    s.retired = stats_.retired - ivCursor.retired;
    s.issued = stats_.issued - ivCursor.issued;
    s.dispatched = stats_.dispatched - ivCursor.dispatched;
    s.condBranches = stats_.condBranches - ivCursor.condBranches;
    s.condMispredicts =
        stats_.condMispredicts - ivCursor.condMispredicts;
    s.squashes = stats_.squashes - ivCursor.squashes;
    s.verifyEvents = stats_.verifyEvents - ivCursor.verifyEvents;
    s.invalidateEvents =
        stats_.invalidateEvents - ivCursor.invalidateEvents;
    s.nullifications =
        stats_.nullifications - ivCursor.nullifications;
    for (std::size_t i = 0; i < obs::kCpiCatCount; ++i)
        s.cpi.cycles[i] = stats_.cpi.cycles[i] - ivCursor.cpi.cycles[i];
    intervals_.samples.push_back(s);

    ivCursor.cycleStart += cycles;
    ivCursor.occupancySum = 0;
    ivCursor.retired = stats_.retired;
    ivCursor.issued = stats_.issued;
    ivCursor.dispatched = stats_.dispatched;
    ivCursor.condBranches = stats_.condBranches;
    ivCursor.condMispredicts = stats_.condMispredicts;
    ivCursor.squashes = stats_.squashes;
    ivCursor.verifyEvents = stats_.verifyEvents;
    ivCursor.invalidateEvents = stats_.invalidateEvents;
    ivCursor.nullifications = stats_.nullifications;
    ivCursor.cpi = stats_.cpi;
}

void
OooCore::sampleObservability()
{
    // Always-on cycle attribution: exactly one category per tick, so
    // the stack sums to total cycles by construction. Like the
    // histograms, collected on every run so memoized results are
    // flag-independent.
    stats_.cpi[classifyCycle(stats_.retired - retiredAtTickStart)] += 1;

    // Always-on distributions: collected on every run so a memoized
    // result is identical no matter which flags requested it.
    if (cfg.useValuePrediction && statsOpen)
        specInFlightHist->sample(static_cast<std::uint64_t>(specLive));

    if (cfg.metricsInterval == 0)
        return;
    ivCursor.occupancySum += static_cast<std::uint64_t>(liveEntries);
    // Flush on absolute period boundaries (cycle + 1 = completed
    // cycles). For a run counted from cycle 0 this is the same as
    // flushing every `metricsInterval` elapsed cycles; for a shard
    // whose window opened mid-run it keeps interval boundaries
    // aligned with the monolithic run's, so a full-warmup merge can
    // coalesce the two partial samples at each seam into exactly the
    // monolithic sample (see sim/shard.cc).
    if ((cycle + 1) % cfg.metricsInterval == 0)
        flushInterval(cycle + 1 - ivCursor.cycleStart);
}

// =====================================================================
// top level
// =====================================================================

bool
OooCore::tick()
{
    if (halted)
        return false;
    dcachePortsUsed = 0;
    retiredAtTickStart = stats_.retired;
    applyCompletions();
    processEvents();
    retireStage();
    issueStage();
    dispatchStage();
    fetchStage();
    sampleObservability();
    ++cycle;
    // Shard stats cut: the cycle at whose end the retired count
    // crossed the boundary belongs to the *previous* shard; counting
    // here starts with the next tick.
    if (!statsOpen && retiredCount >= statsFromRetired)
        openStatsWindow();
    return !halted;
}

SimOutcome
OooCore::run()
{
    while (!halted && cycle < cfg.maxCycles
           && retiredCount < stopAfterRetired)
        tick();

    if (halted) {
        // A core started mid-trace only produces the suffix of the
        // program's output, so the full-output check needs a start
        // at instruction 0.
        if (startIndex == 0) {
            VSIM_ASSERT(output == trace.output,
                        "program output diverged from functional run");
        }
        VSIM_ASSERT(retiredCount == trace.entries.size(),
                    "retired count != trace length");
    }
    if (shardWindowed) {
        VSIM_ASSERT(retiredCount >= stopAfterRetired || halted,
                    "shard hit the cycle limit before its stop "
                    "boundary");
        VSIM_ASSERT(statsOpen,
                    "shard stats window never opened");
    }

    // Close the trailing (short) interval so its events are not lost.
    // Must happen before the shard-window subtraction below: interval
    // deltas are computed against the absolute counter values the
    // cursor captured.
    if (cfg.metricsInterval != 0 && cycle > ivCursor.cycleStart)
        flushInterval(cycle - ivCursor.cycleStart);

    stats_.cycles = cycle;
    stats_.icacheMisses = icacheH.l1().stats().misses();
    stats_.dcacheMisses = dcacheH.l1().stats().misses();
    if (shardWindowed)
        stats_.subtractCounters(statsCut.base);
    VSIM_ASSERT(stats_.cpi.total() == stats_.cycles,
                "CPI stack does not sum to total cycles");

    // A shard stopping at its boundary leaves correct-path entries in
    // the window that the oracle trace proves will retire; mark their
    // prediction records committed so the bit matches the monolithic
    // run (wrong-path entries stay uncommitted there too).
    if (shardWindowed && !halted && cfg.specLedger) {
        for (const int slot : windowOrder) {
            const RsEntry &e = entry(slot);
            const std::int64_t li =
                ledgerIdx[static_cast<std::size_t>(slot)];
            if (e.busy && e.predicted && e.traceIndex >= 0 && li >= 0)
                ledger_.records[static_cast<std::size_t>(li)]
                    .committed = true;
        }
    }

    // Shard ledger window: records of predictions made during the cut
    // cycle or earlier belong to the previous shard. Pre-cut records
    // that *resolved* inside this window are kept as carries: the
    // previous shard saw those predictions as unresolved at its stop
    // boundary, and the merge patches its seam records from them
    // (exact at full warmup, where both shards replay the same
    // machine).
    if (shardWindowed && cfg.specLedger && statsCut.cycleAt > 0) {
        auto &rec = ledger_.records;
        rec.erase(
            std::remove_if(
                rec.begin(), rec.end(),
                [this](const obs::LedgerRecord &r) {
                    if (r.madeAt >= statsCut.cycleAt)
                        return false;
                    return r.outcome == obs::LedgerOutcome::Unresolved
                           || r.resolvedAt < statsCut.cycleAt;
                }),
            rec.end());
    }

    SimOutcome outcome;
    outcome.stats = stats_;
    outcome.exitCode = exitCode;
    outcome.output = output;
    outcome.halted = halted;
    outcome.intervals = intervals_;
    outcome.ledger = ledger_;
    return outcome;
}

} // namespace vsim::core
