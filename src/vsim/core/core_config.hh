/**
 * @file
 * Configuration of the out-of-order core, defaulting to the paper's
 * §5.1 parameters (the 8-wide / 48-entry middle configuration).
 */

#ifndef VSIM_CORE_CORE_CONFIG_HH
#define VSIM_CORE_CORE_CONFIG_HH

#include <cstdint>
#include <string>

#include "spec_model.hh"
#include "vsim/mem/cache.hh"

namespace vsim::core
{

/** How the value predictor and confidence tables are trained (§5.2). */
enum class UpdateTiming
{
    Immediate, //!< (I) trained with the correct value after predicting
    Delayed,   //!< (D) table at retire; history speculatively at predict
};

/** Confidence estimation mode (§3.6 / §6). */
enum class ConfidenceKind
{
    Real,   //!< table of resetting counters
    Oracle, //!< speculate exactly on correct predictions
    Always, //!< speculate on every prediction (stress configuration)
};

/**
 * Wakeup/select implementation. Both produce bit-identical runs
 * (asserted by tests/test_scheduler.cc); Scan keeps the legacy
 * O(window)-per-cycle rescan for the before/after comparison in
 * bench/perf_simulator.cc. Not part of a run's identity (jobKey).
 */
enum class SchedulerKind
{
    ReadyList, //!< event-driven ready lists (issue_scheduler.hh)
    Scan,      //!< re-derive the candidate set from scratch each cycle
};

/**
 * Verification/invalidation sweep domain. Both produce bit-identical
 * runs (asserted by tests/test_policy.cc and test_core_xprod.cc):
 * Sparse visits only the subscriber lists of the resolving prediction
 * bit (subscriber_index.hh); Dense keeps the legacy O(window)
 * program-order scan for differential testing and the before/after
 * comparison in bench/perf_simulator.cc. Not part of a run's identity
 * (jobKey).
 */
enum class SweepKind
{
    Sparse, //!< subscriber-list sweeps, O(consumers) per wave
    Dense,  //!< legacy full-window scan per wave
};

struct CoreConfig
{
    // ---- machine width / window (paper: 4/24, 8/48, 16/96) -----------
    int issueWidth = 8;
    int windowSize = 48;
    int fetchWidth = -1;   //!< -1 = issueWidth
    int retireWidth = -1;  //!< -1 = issueWidth
    int dcachePorts = -1;  //!< -1 = issueWidth / 2 (paper §5.1)

    // ---- value speculation --------------------------------------------
    bool useValuePrediction = false;
    SpecModel model = SpecModel::greatModel();
    std::string valuePredictor = "fcm";
    ConfidenceKind confidence = ConfidenceKind::Real;
    int confidenceBits = 3;      //!< resetting-counter width
    int confidenceTableBits = 16; //!< log2 of the confidence table size
    int confidenceThreshold = -1; //!< -1 = confident only at max
    UpdateTiming updateTiming = UpdateTiming::Delayed;

    // ---- front end ------------------------------------------------------
    std::string branchPredictor = "gshare";

    // ---- memory hierarchy (paper §5.1) ---------------------------------
    mem::CacheConfig icache{"l1i", 64 * 1024, 4, 32};
    mem::CacheConfig dcache{"l1d", 64 * 1024, 4, 32};
    mem::CacheConfig l2cache{"l2", 1024 * 1024, 4, 64};
    int icacheHitLat = 1;
    int dcacheHitLat = 2;
    int l2HitLat = 12;
    int l2MissLat = 36;
    int storeForwardLat = 1;

    // ---- functional-unit latencies -------------------------------------
    int aluLat = 1;
    int mulLat = 3;
    int divLat = 20;

    // ---- run control -----------------------------------------------------
    std::uint64_t maxCycles = 2'000'000'000;
    bool tracePipeline = false;
    SchedulerKind scheduler = SchedulerKind::ReadyList;
    SweepKind sweepKind = SweepKind::Sparse;

    // ---- observability ---------------------------------------------------
    /**
     * Record one interval metrics sample every N cycles (IPC, issue
     * and window occupancy, misprediction/invalidation rates); 0
     * disables the sampler. Part of the run's identity (jobKey): a
     * run's RunResult carries its interval series.
     */
    std::uint64_t metricsInterval = 0;
    /**
     * Retained-window cap on the pipeline tracer: keep only the
     * youngest N traced instructions (0 = unbounded). Bounds --trace
     * memory on long runs; no effect on stats or timing.
     */
    std::size_t traceRetain = 0;
    /**
     * Collect the detailed per-prediction speculation ledger
     * (obs::SpecLedger records in SimOutcome/RunResult). Part of the
     * run's identity (jobKey): the records ride in the RunResult. The
     * aggregate conservation counters in CoreStats are always
     * collected; this only gates the per-prediction records. No
     * effect on timing or any other statistic.
     */
    bool specLedger = false;

    // ---- sharded interval simulation (vsim/sim/shard.hh) -----------------
    /**
     * Cut the run into N equal instruction intervals simulated in
     * parallel shards (0 = off; mutually exclusive with
     * intervalInsts). Part of the run's identity (jobKey): with a
     * finite warmupInsts the merged statistics approximate the
     * monolithic run.
     */
    std::uint64_t shards = 0;
    /**
     * Cut the run into ceil(length / K) intervals of K instructions
     * each (0 = off; mutually exclusive with shards). Part of the
     * run's identity (jobKey).
     */
    std::uint64_t intervalInsts = 0;
    /**
     * Detailed-simulation warmup prefix per shard, in instructions:
     * a shard starts simulating this many instructions before its
     * counted interval (from a functional-warmup snapshot) and
     * discards the prefix statistics. UINT64_MAX (the default) means
     * full warmup — every shard replays from instruction 0, which is
     * slower but makes the merged counters bit-identical to the
     * monolithic run. Part of the run's identity (jobKey).
     */
    std::uint64_t warmupInsts = UINT64_MAX;
    /**
     * Worker threads for shard execution (<= 0 = one per hardware
     * thread). An execution resource like SchedulerKind — never part
     * of the run's identity (jobKey); sweeps keep the default 1
     * because their cells are already parallel.
     */
    int shardJobs = 1;

    // ---- sampled simulation (vsim/sim/sample.hh) -------------------------
    /**
     * SimPoint-style sampled replay: cluster the trace's
     * sampleIntervalInsts-length intervals into at most N phases by
     * their basic-block vectors, simulate only one representative
     * interval per phase in detail, and weight its statistics by the
     * phase population (0 = off; mutually exclusive with shards /
     * intervalInsts). Part of the run's identity (jobKey): sampled
     * statistics approximate the monolithic run.
     */
    std::uint64_t sampleK = 0;
    /**
     * Interval length for sampled replay, in instructions (0 = the
     * default kDefaultSampleIntervalInsts). Part of the run's
     * identity (jobKey): it defines the clustering granularity.
     */
    std::uint64_t sampleIntervalInsts = 0;

    int effFetchWidth() const { return fetchWidth < 0 ? issueWidth : fetchWidth; }
    int effRetireWidth() const { return retireWidth < 0 ? issueWidth : retireWidth; }
    int
    effDcachePorts() const
    {
        if (dcachePorts >= 0)
            return dcachePorts;
        return issueWidth / 2 > 0 ? issueWidth / 2 : 1;
    }
};

} // namespace vsim::core

#endif // VSIM_CORE_CORE_CONFIG_HH
