#include "core_stats.hh"

namespace vsim::core
{

void
CoreStats::subtractCounters(const CoreStats &baseline)
{
    cycles -= baseline.cycles;
    retired -= baseline.retired;
    fetched -= baseline.fetched;
    dispatched -= baseline.dispatched;
    issued -= baseline.issued;
    retiredLoads -= baseline.retiredLoads;
    retiredStores -= baseline.retiredStores;
    retiredBranches -= baseline.retiredBranches;
    condBranches -= baseline.condBranches;
    condMispredicts -= baseline.condMispredicts;
    squashes -= baseline.squashes;
    vpEligible -= baseline.vpEligible;
    vpCH -= baseline.vpCH;
    vpCL -= baseline.vpCL;
    vpIH -= baseline.vpIH;
    vpIL -= baseline.vpIL;
    vpSpeculated -= baseline.vpSpeculated;
    verifyEvents -= baseline.verifyEvents;
    invalidateEvents -= baseline.invalidateEvents;
    nullifications -= baseline.nullifications;
    reissues -= baseline.reissues;
    loadsForwarded -= baseline.loadsForwarded;
    icacheMisses -= baseline.icacheMisses;
    dcacheMisses -= baseline.dcacheMisses;
    predMade -= baseline.predMade;
    predSquashed -= baseline.predSquashed;
    predConsumed -= baseline.predConsumed;
    verifyTouches -= baseline.verifyTouches;
    invalTouches -= baseline.invalTouches;
    for (std::size_t i = 0; i < obs::kCpiCatCount; ++i)
        cpi.cycles[i] -= baseline.cpi.cycles[i];
}

void
CoreStats::merge(const CoreStats &other)
{
    cycles += other.cycles;
    retired += other.retired;
    fetched += other.fetched;
    dispatched += other.dispatched;
    issued += other.issued;
    retiredLoads += other.retiredLoads;
    retiredStores += other.retiredStores;
    retiredBranches += other.retiredBranches;
    condBranches += other.condBranches;
    condMispredicts += other.condMispredicts;
    squashes += other.squashes;
    vpEligible += other.vpEligible;
    vpCH += other.vpCH;
    vpCL += other.vpCL;
    vpIH += other.vpIH;
    vpIL += other.vpIL;
    vpSpeculated += other.vpSpeculated;
    verifyEvents += other.verifyEvents;
    invalidateEvents += other.invalidateEvents;
    nullifications += other.nullifications;
    reissues += other.reissues;
    loadsForwarded += other.loadsForwarded;
    icacheMisses += other.icacheMisses;
    dcacheMisses += other.dcacheMisses;
    predMade += other.predMade;
    predSquashed += other.predSquashed;
    predConsumed += other.predConsumed;
    verifyTouches += other.verifyTouches;
    invalTouches += other.invalTouches;
    cpi.merge(other.cpi);
    verifyLatency.merge(other.verifyLatency);
    invalToReissue.merge(other.invalToReissue);
    specInFlight.merge(other.specInFlight);
}

void
CoreStats::mergeWeighted(const CoreStats &other, std::uint64_t w)
{
    cycles += other.cycles * w;
    retired += other.retired * w;
    fetched += other.fetched * w;
    dispatched += other.dispatched * w;
    issued += other.issued * w;
    retiredLoads += other.retiredLoads * w;
    retiredStores += other.retiredStores * w;
    retiredBranches += other.retiredBranches * w;
    condBranches += other.condBranches * w;
    condMispredicts += other.condMispredicts * w;
    squashes += other.squashes * w;
    vpEligible += other.vpEligible * w;
    vpCH += other.vpCH * w;
    vpCL += other.vpCL * w;
    vpIH += other.vpIH * w;
    vpIL += other.vpIL * w;
    vpSpeculated += other.vpSpeculated * w;
    verifyEvents += other.verifyEvents * w;
    invalidateEvents += other.invalidateEvents * w;
    nullifications += other.nullifications * w;
    reissues += other.reissues * w;
    loadsForwarded += other.loadsForwarded * w;
    icacheMisses += other.icacheMisses * w;
    dcacheMisses += other.dcacheMisses * w;
    predMade += other.predMade * w;
    predSquashed += other.predSquashed * w;
    predConsumed += other.predConsumed * w;
    verifyTouches += other.verifyTouches * w;
    invalTouches += other.invalTouches * w;
    cpi.mergeWeighted(other.cpi, w);
    verifyLatency.mergeWeighted(other.verifyLatency, w);
    invalToReissue.mergeWeighted(other.invalToReissue, w);
    specInFlight.mergeWeighted(other.specInFlight, w);
}

void
registerStats(obs::Registry &reg, const CoreStats &s)
{
    auto set = [&reg](const char *name, const char *desc,
                      const char *unit, std::uint64_t value) {
        reg.counter(name, desc, unit).set(value);
    };

    set("cycles", "simulated machine cycles", "cycles", s.cycles);
    set("retired", "committed instructions", "insts", s.retired);
    set("fetched", "instructions fetched (any path)", "insts",
        s.fetched);
    set("dispatched", "instructions dispatched into the window",
        "insts", s.dispatched);
    set("issued", "instruction issue slots used (incl. re-issues)",
        "insts", s.issued);

    set("loads", "committed loads", "insts", s.retiredLoads);
    set("stores", "committed stores", "insts", s.retiredStores);
    set("branches", "committed branches", "insts", s.retiredBranches);

    set("cond_branches", "committed conditional branches", "insts",
        s.condBranches);
    set("cond_mispredicts",
        "committed conditional branches that mispredicted", "insts",
        s.condMispredicts);
    set("squashes", "pipeline squashes (any cause)", "events",
        s.squashes);

    set("vp_eligible", "value predictions made on committed insts",
        "insts", s.vpEligible);
    set("vp_ch", "correct, high-confidence predictions", "insts",
        s.vpCH);
    set("vp_cl", "correct, low-confidence predictions", "insts",
        s.vpCL);
    set("vp_ih", "incorrect, high-confidence predictions", "insts",
        s.vpIH);
    set("vp_il", "incorrect, low-confidence predictions", "insts",
        s.vpIL);
    set("vp_speculated", "predictions visible to consumers", "insts",
        s.vpSpeculated);

    set("verify_events", "prediction verification events", "events",
        s.verifyEvents);
    set("invalidate_events", "prediction invalidation events",
        "events", s.invalidateEvents);
    set("nullifications", "issued executions thrown away", "events",
        s.nullifications);
    set("reissues", "re-executions after a nullification", "events",
        s.reissues);

    set("loads_forwarded", "loads satisfied by store forwarding",
        "insts", s.loadsForwarded);
    set("icache_misses", "instruction-cache misses", "events",
        s.icacheMisses);
    set("dcache_misses", "data-cache misses", "events",
        s.dcacheMisses);

    for (std::size_t i = 0; i < obs::kCpiCatCount; ++i) {
        const auto c = static_cast<obs::CpiCat>(i);
        const std::string name = std::string("cpi_") + obs::cpiCatName(c);
        reg.counter(name, obs::cpiCatDesc(c), "cycles")
            .set(s.cpi.cycles[i]);
    }

    set("pred_made", "value predictions dispatched into the window",
        "insts", s.predMade);
    set("pred_squashed", "predictions squashed before resolution",
        "insts", s.predSquashed);
    set("pred_consumed", "operand captures of predicted values",
        "events", s.predConsumed);
    set("verify_touches", "entries cleansed by verification sweeps",
        "events", s.verifyTouches);
    set("inval_touches", "entries nullified by invalidation sweeps",
        "events", s.invalTouches);

    reg.histogram(s.verifyLatency);
    reg.histogram(s.invalToReissue);
    reg.histogram(s.specInFlight);
}

} // namespace vsim::core
