/**
 * @file
 * Cycle-by-cycle pipeline tracer used to reproduce Figure 1: it
 * records, per dynamic instruction, which pipeline activity happened
 * in which cycle, and renders the same style of diagram the paper
 * uses (EX = execute, W = write/verify, I = invalidated, V = verified,
 * RT = retire, ...).
 */

#ifndef VSIM_CORE_PIPELINE_TRACE_HH
#define VSIM_CORE_PIPELINE_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vsim::core
{

class PipelineTracer
{
  public:
    /** Record that instruction @p seq performed @p tag during @p cycle. */
    void note(std::uint64_t seq, std::uint64_t cycle,
              const std::string &tag);

    /** Attach a human-readable label (disassembly) to @p seq. */
    void label(std::uint64_t seq, const std::string &text);

    /**
     * Render a diagram with one row per instruction and one column per
     * cycle, restricted to [first_cycle, last_cycle] when given.
     */
    std::string render(std::uint64_t first_cycle = 0,
                       std::uint64_t last_cycle = ~0ull) const;

    bool empty() const { return events.empty(); }
    void clear();

  private:
    struct Row
    {
        std::string text;
        std::map<std::uint64_t, std::string> byCycle;
    };

    std::map<std::uint64_t, Row> events; //!< keyed by seq
};

} // namespace vsim::core

#endif // VSIM_CORE_PIPELINE_TRACE_HH
