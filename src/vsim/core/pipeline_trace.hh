/**
 * @file
 * Cycle-by-cycle pipeline tracer used to reproduce Figure 1: it
 * records, per dynamic instruction, which pipeline activity happened
 * in which cycle, and renders the same style of diagram the paper
 * uses (EX = execute, W = write/verify, I = invalidated, V = verified,
 * RT = retire, ...).
 *
 * Memory is bounded by an optional retained-window cap: when set,
 * only the youngest N instructions are kept (a ring over program
 * order), so tracing large-scale runs cannot exhaust memory. The
 * recorded events can also be exported as Chrome/Perfetto
 * trace_event JSON (one track per instruction, timestamps in
 * cycles) through the observability layer's TraceWriter.
 */

#ifndef VSIM_CORE_PIPELINE_TRACE_HH
#define VSIM_CORE_PIPELINE_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "vsim/obs/trace_export.hh"

namespace vsim::core
{

class PipelineTracer
{
  public:
    /** Record that instruction @p seq performed @p tag during @p cycle. */
    void note(std::uint64_t seq, std::uint64_t cycle,
              const std::string &tag);

    /** Attach a human-readable label (disassembly) to @p seq. */
    void label(std::uint64_t seq, const std::string &text);

    /**
     * Keep at most @p max_rows instructions (0 = unbounded); when the
     * cap is exceeded the oldest row is dropped. Applies from the
     * next note()/label() on.
     */
    void setCapacity(std::size_t max_rows) { cap = max_rows; }
    std::size_t capacity() const { return cap; }

    /** Instructions dropped so far by the retained-window cap. */
    std::uint64_t dropped() const { return droppedRows; }

    /**
     * Render a diagram with one row per instruction and one column per
     * cycle, restricted to [first_cycle, last_cycle] when given.
     */
    std::string render(std::uint64_t first_cycle = 0,
                       std::uint64_t last_cycle = ~0ull) const;

    /**
     * Export every event as Chrome trace_event spans: one track (tid)
     * per instruction named with its label, one complete event per
     * run of identical tags, 1 cycle = 1 us.
     */
    void exportTo(obs::TraceWriter &writer, int pid = 1) const;

    bool empty() const { return events.empty(); }
    void clear();

  private:
    struct Row
    {
        std::string text;
        std::map<std::uint64_t, std::string> byCycle;
    };

    Row &row(std::uint64_t seq);

    std::map<std::uint64_t, Row> events; //!< keyed by seq
    std::size_t cap = 0;                 //!< 0 = unbounded
    std::uint64_t droppedRows = 0;
};

} // namespace vsim::core

#endif // VSIM_CORE_PIPELINE_TRACE_HH
