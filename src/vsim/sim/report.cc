#include "report.hh"

#include <sstream>

namespace vsim::sim
{

namespace
{

void
field(std::ostringstream &os, const char *name, std::uint64_t value,
      bool comma = true)
{
    os << "\"" << name << "\": " << value;
    if (comma)
        os << ", ";
}

} // namespace

std::string
toJson(const RunResult &r)
{
    const core::CoreStats &s = r.stats;
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << r.workload << "\", ";
    os << "\"ipc\": " << r.ipc << ", ";
    field(os, "cycles", s.cycles);
    field(os, "retired", s.retired);
    field(os, "exit_code", r.exitCode);
    field(os, "loads", s.retiredLoads);
    field(os, "stores", s.retiredStores);
    field(os, "branches", s.retiredBranches);
    field(os, "cond_branches", s.condBranches);
    field(os, "cond_mispredicts", s.condMispredicts);
    field(os, "squashes", s.squashes);
    field(os, "vp_eligible", s.vpEligible);
    field(os, "vp_ch", s.vpCH);
    field(os, "vp_cl", s.vpCL);
    field(os, "vp_ih", s.vpIH);
    field(os, "vp_il", s.vpIL);
    field(os, "verify_events", s.verifyEvents);
    field(os, "invalidate_events", s.invalidateEvents);
    field(os, "nullifications", s.nullifications);
    field(os, "reissues", s.reissues);
    field(os, "loads_forwarded", s.loadsForwarded);
    field(os, "icache_misses", s.icacheMisses);
    field(os, "dcache_misses", s.dcacheMisses, false);
    os << "}";
    return os.str();
}

std::string
toJson(const std::vector<RunResult> &runs)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            os << ",\n ";
        os << toJson(runs[i]);
    }
    os << "]";
    return os.str();
}

} // namespace vsim::sim
