#include "report.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "vsim/base/logging.hh"
#include "vsim/obs/registry.hh"
#include "vsim/obs/trace_export.hh"

namespace vsim::sim
{

namespace
{

/**
 * RFC-4180 CSV field: values containing the delimiter, a double
 * quote or a line break are wrapped in double quotes with embedded
 * quotes doubled. Plain values pass through unquoted, keeping the
 * common output byte-identical to the historical format.
 */
std::string
csvField(const std::string &value)
{
    if (value.find_first_of(",\"\n\r") == std::string::npos)
        return value;
    std::string quoted = "\"";
    for (char c : value) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
field(std::ostringstream &os, const char *name, std::uint64_t value,
      bool comma = true)
{
    os << "\"" << name << "\": " << value;
    if (comma)
        os << ", ";
}

/** The shared stats body of a run object (no surrounding braces). */
void
statsFields(std::ostringstream &os, const RunResult &r)
{
    const core::CoreStats &s = r.stats;
    os << "\"ipc\": " << r.ipc << ", ";
    field(os, "cycles", s.cycles);
    field(os, "retired", s.retired);
    field(os, "exit_code", r.exitCode);
    field(os, "loads", s.retiredLoads);
    field(os, "stores", s.retiredStores);
    field(os, "branches", s.retiredBranches);
    field(os, "cond_branches", s.condBranches);
    field(os, "cond_mispredicts", s.condMispredicts);
    field(os, "squashes", s.squashes);
    field(os, "vp_eligible", s.vpEligible);
    field(os, "vp_ch", s.vpCH);
    field(os, "vp_cl", s.vpCL);
    field(os, "vp_ih", s.vpIH);
    field(os, "vp_il", s.vpIL);
    field(os, "verify_events", s.verifyEvents);
    field(os, "invalidate_events", s.invalidateEvents);
    field(os, "nullifications", s.nullifications);
    field(os, "reissues", s.reissues);
    field(os, "loads_forwarded", s.loadsForwarded);
    field(os, "icache_misses", s.icacheMisses);
    field(os, "dcache_misses", s.dcacheMisses);
    os << s.cpi.jsonFields() << ", ";
    field(os, "pred_made", s.predMade);
    field(os, "pred_squashed", s.predSquashed);
    field(os, "pred_consumed", s.predConsumed);
    field(os, "verify_touches", s.verifyTouches);
    field(os, "inval_touches", s.invalTouches, false);
}

/** The job-identity prefix of a sweep-cell object (no braces). */
void
cellHeadFields(std::ostringstream &os, const SweepJob &job,
               const RunResult &r)
{
    os << "\"label\": \"" << obs::jsonEscape(job.label) << "\", ";
    os << "\"workload\": \"" << obs::jsonEscape(r.workload) << "\", ";
    os << "\"scale\": " << job.scale << ", ";
    os << "\"machine\": \"" << job.cfg.issueWidth << "/"
       << job.cfg.windowSize << "\", ";
    os << "\"config\": \"" << obs::jsonEscape(configLabel(job.cfg))
       << "\", ";
}

/** The lifecycle-aggregate body of a ledger object (no braces). */
void
ledgerFields(std::ostringstream &os, const RunResult &r,
             std::size_t limit)
{
    const core::CoreStats &s = r.stats;
    field(os, "pred_made", s.predMade);
    field(os, "verified", s.verifyEvents);
    field(os, "invalidated", s.invalidateEvents);
    field(os, "squashed", s.predSquashed);
    field(os, "committed", s.vpSpeculated);
    field(os, "consumed", s.predConsumed);
    field(os, "reissues", s.reissues);
    os << "\"records_enabled\": "
       << (r.ledger.enabled ? "true" : "false") << ", ";
    field(os, "records_total", r.ledger.records.size());
    os << "\"truncated\": "
       << (r.ledger.truncated(limit) ? "true" : "false") << ", ";
    os << "\"records\": " << r.ledger.recordsJson(limit);
}

} // namespace

std::string
toJson(const RunResult &r)
{
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << obs::jsonEscape(r.workload) << "\", ";
    statsFields(os, r);
    os << "}";
    return os.str();
}

std::string
toJson(const std::vector<RunResult> &runs)
{
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (i)
            os << ",\n ";
        os << toJson(runs[i]);
    }
    os << "]";
    return os.str();
}

std::string
toJson(const SweepJob &job, const RunResult &r)
{
    std::ostringstream os;
    os << "{";
    cellHeadFields(os, job, r);
    statsFields(os, r);
    os << "}";
    return os.str();
}

std::string
toJson(const std::vector<SweepJob> &jobs,
       const std::vector<RunResult> &results)
{
    VSIM_ASSERT(jobs.size() == results.size(),
                "jobs/results size mismatch");
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            os << ",\n ";
        os << toJson(jobs[i], results[i]);
    }
    os << "]";
    return os.str();
}

std::string
toJson(const std::vector<SweepJob> &jobs,
       const std::vector<RunResult> &results,
       const std::vector<JobSpan> &spans)
{
    VSIM_ASSERT(jobs.size() == results.size(),
                "jobs/results size mismatch");
    VSIM_ASSERT(jobs.size() == spans.size(),
                "jobs/spans size mismatch");
    // Spans arrive in completion order; address them by job index.
    std::vector<const JobSpan *> byIndex(jobs.size(), nullptr);
    for (const JobSpan &sp : spans)
        byIndex.at(sp.index) = &sp;
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            os << ",\n ";
        os << "{";
        cellHeadFields(os, jobs[i], results[i]);
        statsFields(os, results[i]);
        const JobSpan *sp = byIndex[i];
        const std::uint64_t wall_ns =
            sp ? sp->endNs - sp->startNs : 0;
        const double wall_ms = static_cast<double>(wall_ns) / 1e6;
        const double inst_per_s =
            wall_ns == 0
                ? 0.0
                : static_cast<double>(results[i].instructions)
                      / (static_cast<double>(wall_ns) / 1e9);
        os << ", \"cache_hit\": "
           << ((sp && sp->cacheHit) ? "true" : "false");
        os << ", \"wall_ms\": " << wall_ms;
        os << ", \"inst_per_s\": " << inst_per_s;
        os << "}";
    }
    os << "]";
    return os.str();
}

std::string
toCsv(const std::vector<SweepJob> &jobs,
      const std::vector<RunResult> &results)
{
    VSIM_ASSERT(jobs.size() == results.size(),
                "jobs/results size mismatch");
    std::ostringstream os;
    os << "label,workload,scale,machine,config,cycles,retired,ipc,"
          "exit_code,squashes,vp_eligible,vp_ch,vp_cl,vp_ih,vp_il,"
          "verify_events,invalidate_events,nullifications,reissues";
    for (std::size_t c = 0; c < obs::kCpiCatCount; ++c)
        os << ",cpi_" << obs::cpiCatName(static_cast<obs::CpiCat>(c));
    os << '\n';
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &j = jobs[i];
        const RunResult &r = results[i];
        const core::CoreStats &s = r.stats;
        os << csvField(j.label) << ',' << csvField(r.workload) << ','
           << j.scale << ','
           << j.cfg.issueWidth << '/' << j.cfg.windowSize << ','
           << csvField(configLabel(j.cfg)) << ',' << s.cycles << ','
           << s.retired
           << ',' << r.ipc << ',' << r.exitCode << ',' << s.squashes
           << ',' << s.vpEligible << ',' << s.vpCH << ',' << s.vpCL
           << ',' << s.vpIH << ',' << s.vpIL << ',' << s.verifyEvents
           << ',' << s.invalidateEvents << ',' << s.nullifications
           << ',' << s.reissues;
        for (std::uint64_t v : s.cpi.cycles)
            os << ',' << v;
        os << '\n';
    }
    return os.str();
}

std::string
stacksText(const RunResult &r)
{
    std::ostringstream os;
    os << r.workload << ": " << r.stats.cycles << " cycles, "
       << r.instructions << " instructions\n";
    os << r.stats.cpi.renderText(r.stats.cycles, r.instructions);
    return os.str();
}

std::string
stacksJson(const RunResult &r)
{
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << obs::jsonEscape(r.workload) << "\", ";
    field(os, "cycles", r.stats.cycles);
    field(os, "retired", r.stats.retired);
    os << r.stats.cpi.jsonFields();
    os << "}";
    return os.str();
}

std::string
stacksJson(const std::vector<SweepJob> &jobs,
           const std::vector<RunResult> &results)
{
    VSIM_ASSERT(jobs.size() == results.size(),
                "jobs/results size mismatch");
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            os << ",\n ";
        os << "{";
        cellHeadFields(os, jobs[i], results[i]);
        field(os, "cycles", results[i].stats.cycles);
        field(os, "retired", results[i].stats.retired);
        os << results[i].stats.cpi.jsonFields();
        os << "}";
    }
    os << "]";
    return os.str();
}

std::string
ledgerJson(const RunResult &r, std::size_t limit)
{
    std::ostringstream os;
    os << "{";
    os << "\"workload\": \"" << obs::jsonEscape(r.workload) << "\", ";
    ledgerFields(os, r, limit);
    os << "}";
    return os.str();
}

std::string
ledgerJson(const std::vector<SweepJob> &jobs,
           const std::vector<RunResult> &results, std::size_t limit)
{
    VSIM_ASSERT(jobs.size() == results.size(),
                "jobs/results size mismatch");
    std::ostringstream os;
    os << "[";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (i)
            os << ",\n ";
        os << "{";
        cellHeadFields(os, jobs[i], results[i]);
        ledgerFields(os, results[i], limit);
        os << "}";
    }
    os << "]";
    return os.str();
}

std::string
countersJson(const RunResult &r)
{
    obs::Registry reg;
    core::registerStats(reg, r.stats);
    return reg.toJson();
}

std::string
countersText(const RunResult &r)
{
    obs::Registry reg;
    core::registerStats(reg, r.stats);
    std::ostringstream os;
    for (const obs::Counter &c : reg.counters()) {
        os << c.name() << ": " << c.value();
        if (!c.unit().empty())
            os << ' ' << c.unit();
        os << '\n';
    }
    for (const obs::Histogram &h : reg.histograms())
        os << h.summary() << '\n';
    return os.str();
}

std::string
metricsToCsv(const std::vector<SweepJob> &jobs,
             const std::vector<RunResult> &results)
{
    VSIM_ASSERT(jobs.size() == results.size(),
                "jobs/results size mismatch");
    std::ostringstream os;
    os << obs::IntervalSeries::csvHeader("label,workload,");
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const obs::IntervalSeries &series = results[i].intervals;
        if (series.empty())
            continue;
        series.appendCsv(os, csvField(jobs[i].label) + ","
                                 + csvField(results[i].workload) + ",");
    }
    return os.str();
}

std::string
sweepTraceJson(const std::vector<JobSpan> &spans)
{
    using obs::TraceWriter;
    TraceWriter writer;
    const int pid = 1;
    writer.processName(pid, "sweep");

    // Track ids: pool workers get 1..N in index order, the caller
    // thread (serial runs) track 0.
    int max_worker = -1;
    for (const JobSpan &sp : spans)
        max_worker = std::max(max_worker, sp.worker);
    writer.threadName(pid, 0, "caller");
    for (int w = 0; w <= max_worker; ++w) {
        writer.threadName(pid, static_cast<std::uint64_t>(w) + 1,
                          "worker " + std::to_string(w));
    }

    for (const JobSpan &sp : spans) {
        const std::uint64_t tid =
            sp.worker < 0 ? 0
                          : static_cast<std::uint64_t>(sp.worker) + 1;
        TraceWriter::Args args;
        args.emplace_back("workload", TraceWriter::str(sp.workload));
        args.emplace_back("index", TraceWriter::num(
                                       static_cast<std::uint64_t>(
                                           sp.index)));
        args.emplace_back("queue_wait_us",
                          TraceWriter::num((sp.startNs - sp.submitNs)
                                           / 1000));
        args.emplace_back("cache_hit",
                          TraceWriter::boolean(sp.cacheHit));
        writer.complete(sp.label, "sweep-job", sp.startNs / 1000,
                        (sp.endNs - sp.startNs) / 1000, pid, tid,
                        std::move(args));
    }
    return writer.toJson();
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path);
    if (!out)
        VSIM_FATAL("cannot open ", path, " for writing");
    out << content;
    if (!out)
        VSIM_FATAL("write to ", path, " failed");
    // Buffered bytes can still fail at flush/close (full disk,
    // vanished directory) — a partial file must not pass as success.
    out.flush();
    if (!out)
        VSIM_FATAL("flush of ", path, " failed");
    out.close();
    if (out.fail())
        VSIM_FATAL("close of ", path, " failed");
}

} // namespace vsim::sim
