/**
 * @file
 * Sharded interval simulation: cut one workload's dynamic instruction
 * stream into N intervals and simulate them as independent shards on
 * a worker pool, then merge the per-shard statistics into a single
 * RunResult.
 *
 * Each shard covers the retired instructions [start, stop) of the
 * oracle trace. The shard's core begins detailed simulation at
 * warmStart = max(start - W, 0) — from a functional-warmup
 * SimSnapshot when warmStart > 0, from the program's initial state
 * otherwise — runs a discarded warmup prefix until `start`
 * instructions have retired, then counts statistics until `stop`.
 *
 * Exactness (documented error bounds in DESIGN.md):
 *
 *  - W = UINT64_MAX (full warmup, the default): every shard replays
 *    from instruction 0, so shard i's machine state at its stats cut
 *    is bit-identical to the monolithic machine at that point. The
 *    cut opens at the END of the cycle in which the retired count
 *    crosses `start`, which is the same cycle at which shard i-1
 *    stops — the shards partition the monolithic cycle stream
 *    exactly, and merged CoreStats / CPI stacks / histograms /
 *    ledger records are bit-identical to the monolithic run for any
 *    shard count. Wall-clock: the *total* simulated work is the
 *    arithmetic series (~N/2 times the monolithic work), but the
 *    critical path — what an N-core run waits for — is the longest
 *    single shard, i.e. the full replay of the last shard, so full
 *    warmup buys exactness, not speed.
 *
 *  - finite W: shards start from functional-warmup snapshots, whose
 *    tables were trained on the correct path only (no wrong-path
 *    pollution) and whose pipeline starts empty, so per-shard cycle
 *    counts deviate near interval boundaries. Total simulated work is
 *    len + N*W instructions and the critical path is ~len/N + W: this
 *    is the fast mode. The error shrinks with W; scripts/check.sh
 *    gates the harmonic-mean speedup error at <= 1% for the default
 *    configuration.
 *
 * Interval series and ledger records are rebased onto a merged
 * timeline (shard-local cycles minus the shard's cut cycle, plus the
 * sum of earlier shards' counted cycles); at full warmup this rebase
 * is the identity. Two seam mechanisms make the detailed artifacts
 * exact there too: the core flushes interval samples on absolute
 * period boundaries, so the merge can coalesce the two halves of an
 * interval split by a shard boundary back into one sample; and a
 * shard keeps the resolved form of predictions made before its cut,
 * which the merge patches over the previous shard's unresolved seam
 * records by sequence number. At finite W the seam records stay
 * unresolved (shard-local seq streams are incomparable) — a
 * documented approximation.
 */

#ifndef VSIM_SIM_SHARD_HH
#define VSIM_SIM_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "simulator.hh"
#include "vsim/core/core_config.hh"

namespace vsim::sim
{

/** Boundaries of one shard, in absolute trace instruction indices. */
struct ShardPlan
{
    std::uint64_t warmStart = 0; //!< detailed simulation starts here
    std::uint64_t start = 0;     //!< counted window starts here
    std::uint64_t stop = 0;      //!< counted window ends here (excl.)

    bool operator==(const ShardPlan &) const = default;
};

/** True when @p cfg asks for sharded execution. */
bool shardingRequested(const core::CoreConfig &cfg);

/** True when @p cfg asks for sampled (representative-interval) replay. */
bool samplingRequested(const core::CoreConfig &cfg);

/**
 * Fail loudly on inconsistent partition/warmup settings, whichever
 * path set them (CLI, daemon, tests): cfg.shards and cfg.intervalInsts
 * are mutually exclusive, sampling excludes both, a non-default
 * cfg.warmupInsts without sharding or sampling would be silently
 * ignored, and cfg.sampleIntervalInsts is meaningless without
 * cfg.sampleK. VSIM_FATAL with a one-line diagnosis on violation.
 */
void validatePartition(const core::CoreConfig &cfg);

/**
 * Partition a trace of @p len instructions per cfg.shards /
 * cfg.intervalInsts / cfg.warmupInsts (VSIM_FATAL when both partition
 * controls are set). Shard counts above @p len are clamped; the plan
 * covers [0, len) without gaps or overlap.
 */
std::vector<ShardPlan> planShards(std::uint64_t len,
                                  const core::CoreConfig &cfg);

/**
 * Executes one workload as a set of interval shards on a worker pool
 * (cfg.shardJobs workers) and merges the results. Used by
 * runWorkload() whenever shardingRequested(cfg) or
 * samplingRequested(cfg); the shard partition, warmup depth and
 * sampling controls live in the CoreConfig so the RunCache jobKey
 * covers them.
 *
 * Sampled mode (cfg.sampleK > 0, SimPoint-style): the trace is cut
 * into cfg.sampleIntervalInsts-length intervals, fingerprinted with
 * basic-block vectors (vsim/arch/bbv.hh) and clustered into at most
 * sampleK phases (vsim/sim/sample.hh); only one representative
 * interval per phase is simulated in detail — from a functional-warmup
 * snapshot — and its statistics are folded under the phase population
 * (CoreStats::mergeWeighted). The trailing interval is always its own
 * singleton phase, so the merged retired count matches the trace
 * length to within one retire group per interval boundary and the
 * final representative consumes the trace to its HALT.
 * Full warmup (warmupInsts == UINT64_MAX, the default) is reinterpreted
 * as one interval of warmup: replaying every representative from
 * instruction 0 would defeat sampling, and the jobKey still carries
 * the raw warmupInsts value, so the reinterpretation cannot alias two
 * different runs. Sampled statistics approximate the monolithic run;
 * scripts/check.sh gates the hmean-speedup error at <= 2%.
 */
class ShardRunner
{
  public:
    explicit ShardRunner(core::CoreConfig config);

    /** Simulate @p workload at @p scale sharded; merged RunResult. */
    RunResult run(const std::string &workload, int scale);

  private:
    core::CoreConfig cfg;
};

} // namespace vsim::sim

#endif // VSIM_SIM_SHARD_HH
