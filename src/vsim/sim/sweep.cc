#include "sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>

#include "disk_cache.hh"
#include "vsim/base/logging.hh"
#include "vsim/base/thread_pool.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace vsim::sim
{

namespace
{

void
keyCache(std::ostringstream &os, const mem::CacheConfig &c)
{
    os << c.sizeBytes << '/' << c.assoc << '/' << c.blockBytes << ';';
}

} // namespace

std::string
jobKey(const SweepJob &job)
{
    const core::CoreConfig &c = job.cfg;
    const core::SpecModel &m = c.model;
    std::ostringstream os;
    // Workload identity. A trace workload's identity is its content,
    // not its path: the same path can hold a different recording
    // across tool invocations, so the key carries the file's hash
    // (memoised per path — stable for the life of the process).
    os << job.workload << '@' << job.scale;
    if (isTraceWorkload(job.workload)) {
        os << '#' << std::hex
           << trace::traceFileHash(traceWorkloadPath(job.workload))
           << std::dec;
    }
    os << ';';
    // Machine.
    os << c.issueWidth << '/' << c.windowSize << '/' << c.fetchWidth
       << '/' << c.retireWidth << '/' << c.dcachePorts << ';';
    // Value speculation. The model's cosmetic name is excluded: two
    // models with equal variables produce bit-identical runs.
    os << c.useValuePrediction << ';' << c.valuePredictor << ';'
       << static_cast<int>(c.confidence) << '/' << c.confidenceBits
       << '/' << c.confidenceTableBits << '/' << c.confidenceThreshold
       << ';'
       << static_cast<int>(c.updateTiming) << ';';
    os << m.execToEquality << ',' << m.equalityToInvalidate << ','
       << m.equalityToVerify << ',' << m.verifyToFreeResource << ','
       << m.invalidateToReissue << ',' << m.verifyToBranch << ','
       << m.verifyAddrToMem << ',' << static_cast<int>(m.verifyScheme)
       << ',' << static_cast<int>(m.invalScheme) << ','
       << static_cast<int>(m.selectPolicy) << ','
       << m.branchNeedsValidOps << ',' << m.memNeedsValidOps << ';';
    // Front end and memory hierarchy.
    os << c.branchPredictor << ';';
    keyCache(os, c.icache);
    keyCache(os, c.dcache);
    keyCache(os, c.l2cache);
    os << c.icacheHitLat << ',' << c.dcacheHitLat << ',' << c.l2HitLat
       << ',' << c.l2MissLat << ',' << c.storeForwardLat << ';';
    // Functional units and run control.
    os << c.aluLat << ',' << c.mulLat << ',' << c.divLat << ';'
       << c.maxCycles << ';';
    // Observability settings that shape the RunResult (the interval
    // series is part of the memoized value). traceRetain and
    // tracePipeline stay out: they never reach a cached result.
    // sweepKind (like scheduler) stays out too: sparse and dense
    // sweeps produce bit-identical stats, so either may serve a
    // cached result for the other.
    os << c.metricsInterval << ',' << c.specLedger;
    // Sharding: interval partition and warmup depth change the merged
    // statistics (exactly reproducible only at full warmup), so they
    // are part of the key; shardJobs (an execution resource, like
    // scheduler) stays out.
    os << ';' << c.shards << ',' << c.intervalInsts << ','
       << c.warmupInsts;
    // Sampled replay: the phase budget and interval length define the
    // clustering, so both are part of the key (sampled statistics
    // approximate the monolithic run and must never serve it).
    os << ',' << c.sampleK << ',' << c.sampleIntervalInsts;
    return os.str();
}

RunCache &
RunCache::process()
{
    static RunCache cache;
    return cache;
}

RunResult
RunCache::getOrRun(const SweepJob &job, bool *cache_hit)
{
    const std::string key = jobKey(job);
    std::promise<RunResult> promise;
    std::shared_future<RunResult> future;
    std::shared_ptr<DiskRunCache> dsk;
    bool owner = false;
    {
        std::unique_lock<std::mutex> lock(mtx);
        auto it = entries.find(key);
        if (it != entries.end()) {
            ++nHits;
            future = it->second;
        } else {
            future = promise.get_future().share();
            entries.emplace(key, future);
            owner = true;
            dsk = diskCache;
        }
    }
    bool from_disk = false;
    if (owner) {
        try {
            RunResult result;
            from_disk = dsk && dsk->load(key, result);
            if (!from_disk)
                result = runWorkload(job.workload, job.scale, job.cfg);
            promise.set_value(std::move(result));
            {
                std::unique_lock<std::mutex> lock(mtx);
                if (from_disk)
                    ++nDiskHits;
                else
                    ++nMisses;
            }
            if (!from_disk && dsk)
                dsk->store(key, future.get());
        } catch (...) {
            // Release every waiter with the error, then drop the
            // entry: a failure is never memoized, so a retried key
            // simulates again instead of replaying the exception.
            promise.set_exception(std::current_exception());
            std::unique_lock<std::mutex> lock(mtx);
            ++nMisses;
            entries.erase(key);
        }
    }
    if (cache_hit)
        *cache_hit = !owner || from_disk;
    return future.get(); // rethrows the run's error, if any
}

void
RunCache::attachDisk(std::shared_ptr<DiskRunCache> disk)
{
    std::unique_lock<std::mutex> lock(mtx);
    diskCache = std::move(disk);
}

std::shared_ptr<DiskRunCache>
RunCache::disk() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return diskCache;
}

std::uint64_t
RunCache::hits() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return nHits;
}

std::uint64_t
RunCache::misses() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return nMisses;
}

std::uint64_t
RunCache::diskHits() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return nDiskHits;
}

std::size_t
RunCache::size() const
{
    std::unique_lock<std::mutex> lock(mtx);
    return entries.size();
}

void
RunCache::clear()
{
    std::unique_lock<std::mutex> lock(mtx);
    entries.clear();
    nHits = 0;
    nMisses = 0;
    nDiskHits = 0;
}

SweepRunner::SweepRunner(int jobs, RunCache *cache)
    : nJobs(jobs < 1 ? 1 : jobs), cache(cache)
{
}

int
SweepRunner::defaultJobs()
{
    return ThreadPool::defaultThreadCount();
}

RunResult
SweepRunner::runOne(const SweepJob &job, bool *cache_hit)
{
    if (cache)
        return cache->getOrRun(job, cache_hit);
    if (cache_hit)
        *cache_hit = false;
    return runWorkload(job.workload, job.scale, job.cfg);
}

namespace
{

/** Completion-order progress line: "[k/N] label (workload)". */
void
progressLine(std::atomic<std::size_t> &done, std::size_t total,
             const SweepJob &job, bool cached)
{
    std::ostringstream os;
    os << "[" << done.fetch_add(1) + 1 << "/" << total << "] "
       << job.label << " (" << job.workload << ")";
    if (cached)
        os << " [cached]";
    logLine(os.str());
}

} // namespace

std::vector<RunResult>
SweepRunner::run(const std::vector<SweepJob> &jobs)
{
    using Clock = std::chrono::steady_clock;
    const Clock::time_point epoch = Clock::now();
    const auto now_ns = [epoch] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - epoch)
                .count());
    };

    std::vector<RunResult> results(jobs.size());
    if (spans) {
        spans->clear();
        spans->resize(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            JobSpan &sp = (*spans)[i];
            sp.index = i;
            sp.label = jobs[i].label;
            sp.workload = jobs[i].workload;
        }
    }
    std::atomic<std::size_t> done{0};

    if (nJobs <= 1 || jobs.size() <= 1) {
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            JobSpan *sp = spans ? &(*spans)[i] : nullptr;
            if (sp) {
                sp->worker = -1;
                sp->submitNs = now_ns();
                sp->startNs = sp->submitNs;
            }
            bool cached = false;
            results[i] = runOne(jobs[i], &cached);
            if (sp) {
                sp->endNs = now_ns();
                sp->cacheHit = cached;
            }
            if (progress)
                progressLine(done, jobs.size(), jobs[i], cached);
        }
        return results;
    }

    std::vector<std::exception_ptr> errors(jobs.size());
    {
        ThreadPool pool(std::min<int>(
            nJobs, static_cast<int>(jobs.size())));
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            JobSpan *sp = spans ? &(*spans)[i] : nullptr;
            if (sp)
                sp->submitNs = now_ns();
            pool.submit([this, &jobs, &results, &errors, &done, sp,
                         now_ns, i] {
                if (sp) {
                    sp->worker = ThreadPool::currentWorkerIndex();
                    sp->startNs = now_ns();
                }
                bool cached = false;
                try {
                    results[i] = runOne(jobs[i], &cached);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                if (sp) {
                    sp->endNs = now_ns();
                    sp->cacheHit = cached;
                }
                if (progress)
                    progressLine(done, jobs.size(), jobs[i], cached);
            });
        }
        pool.wait();
    }
    for (const std::exception_ptr &err : errors) {
        if (err)
            std::rethrow_exception(err);
    }
    return results;
}

std::vector<std::string>
sweepWorkloads(bool quick)
{
    if (quick)
        return {"compress", "m88k", "queens"};
    std::vector<std::string> names;
    for (const auto &w : workloads::all())
        names.push_back(w.name);
    return names;
}

std::vector<std::string>
sweepWorkloads(const SweepOptions &opt)
{
    if (!opt.workloads.empty())
        return opt.workloads;
    return sweepWorkloads(opt.quick);
}

std::vector<MachineConfig>
sweepMachines(bool quick)
{
    if (quick)
        return {{8, 48}};
    return paperMachines();
}

std::string
configLabel(const core::CoreConfig &cfg)
{
    if (!cfg.useValuePrediction)
        return "base";
    return cfg.model.name + " "
           + timingConfLabel(cfg.updateTiming, cfg.confidence);
}

namespace
{

using core::ConfidenceKind;
using core::SpecModel;
using core::UpdateTiming;

/** Label a job "<machine> <config>" unless the builder overrides. */
SweepJob
makeJob(const MachineConfig &m, const std::string &workload, int scale,
        const core::CoreConfig &cfg, const std::string &label = "")
{
    SweepJob job;
    job.label = label.empty() ? m.label() + " " + configLabel(cfg)
                              : label;
    job.workload = workload;
    job.scale = scale;
    job.cfg = cfg;
    return job;
}

std::vector<SweepJob>
buildBase(const SweepOptions &opt)
{
    std::vector<SweepJob> jobs;
    for (const auto &m : sweepMachines(opt.quick))
        for (const auto &w : sweepWorkloads(opt))
            jobs.push_back(makeJob(m, w, opt.scale, baseConfig(m)));
    return jobs;
}

std::vector<SweepJob>
buildFig3(const SweepOptions &opt)
{
    const std::vector<SpecModel> models = {SpecModel::goodModel(),
                                           SpecModel::greatModel(),
                                           SpecModel::superModel()};
    const std::vector<std::pair<UpdateTiming, ConfidenceKind>> combos = {
        {UpdateTiming::Delayed, ConfidenceKind::Real},
        {UpdateTiming::Immediate, ConfidenceKind::Real},
        {UpdateTiming::Delayed, ConfidenceKind::Oracle},
        {UpdateTiming::Immediate, ConfidenceKind::Oracle},
    };
    std::vector<SweepJob> jobs = buildBase(opt);
    for (const auto &m : sweepMachines(opt.quick))
        for (const SpecModel &model : models)
            for (const auto &[timing, conf] : combos)
                for (const auto &w : sweepWorkloads(opt))
                    jobs.push_back(makeJob(
                        m, w, opt.scale,
                        vpConfig(m, model, conf, timing)));
    return jobs;
}

std::vector<SweepJob>
buildFig4(const SweepOptions &opt)
{
    std::vector<SweepJob> jobs;
    for (const auto &m : sweepMachines(opt.quick))
        for (UpdateTiming timing :
             {UpdateTiming::Delayed, UpdateTiming::Immediate})
            for (const auto &w : sweepWorkloads(opt))
                jobs.push_back(makeJob(
                    m, w, opt.scale,
                    vpConfig(m, SpecModel::greatModel(),
                             ConfidenceKind::Real, timing)));
    return jobs;
}

std::vector<SweepJob>
buildConfidence(const SweepOptions &opt)
{
    const MachineConfig m{8, 48};
    struct Variant
    {
        const char *name;
        ConfidenceKind kind;
        int bits;
        int threshold;
    };
    const std::vector<Variant> variants = {
        {"ctr-1bit", ConfidenceKind::Real, 1, -1},
        {"ctr-2bit", ConfidenceKind::Real, 2, -1},
        {"ctr-3bit", ConfidenceKind::Real, 3, -1},
        {"ctr-4bit", ConfidenceKind::Real, 4, -1},
        {"ctr-3bit-thr4", ConfidenceKind::Real, 3, 4},
        {"always", ConfidenceKind::Always, 3, -1},
        {"oracle", ConfidenceKind::Oracle, 3, -1},
    };
    std::vector<SweepJob> jobs;
    for (const auto &w : sweepWorkloads(opt))
        jobs.push_back(makeJob(m, w, opt.scale, baseConfig(m)));
    for (const Variant &v : variants) {
        for (const auto &w : sweepWorkloads(opt)) {
            core::CoreConfig cfg =
                vpConfig(m, SpecModel::greatModel(), v.kind,
                         UpdateTiming::Delayed);
            cfg.confidenceBits = v.bits;
            cfg.confidenceThreshold = v.threshold;
            jobs.push_back(makeJob(m, w, opt.scale, cfg,
                                   m.label() + " " + v.name));
        }
    }
    return jobs;
}

std::vector<SweepJob>
buildPredictors(const SweepOptions &opt)
{
    const MachineConfig m{8, 48};
    std::vector<SweepJob> jobs;
    for (const auto &w : sweepWorkloads(opt))
        jobs.push_back(makeJob(m, w, opt.scale, baseConfig(m)));
    for (const char *pred : {"fcm", "last-value", "stride", "hybrid"}) {
        for (const auto &w : sweepWorkloads(opt)) {
            core::CoreConfig cfg =
                vpConfig(m, SpecModel::greatModel(),
                         ConfidenceKind::Oracle, UpdateTiming::Immediate);
            cfg.valuePredictor = pred;
            jobs.push_back(
                makeJob(m, w, opt.scale, cfg,
                        m.label() + " " + std::string(pred)));
        }
    }
    return jobs;
}

std::vector<SweepJob>
buildVerifLatency(const SweepOptions &opt)
{
    const MachineConfig m{8, 48};
    std::vector<SweepJob> jobs;
    for (const auto &w : sweepWorkloads(opt))
        jobs.push_back(makeJob(m, w, opt.scale, baseConfig(m)));
    for (int lat = 0; lat <= 3; ++lat) {
        for (const auto &w : sweepWorkloads(opt)) {
            SpecModel model = SpecModel::greatModel();
            model.execToEquality = lat;
            jobs.push_back(makeJob(
                m, w, opt.scale,
                vpConfig(m, model, ConfidenceKind::Oracle,
                         UpdateTiming::Immediate),
                m.label() + " verif-lat=" + std::to_string(lat)));
        }
    }
    return jobs;
}

std::vector<SweepJob>
buildReissueLatency(const SweepOptions &opt)
{
    const MachineConfig m{8, 48};
    std::vector<SweepJob> jobs;
    for (const auto &w : sweepWorkloads(opt))
        jobs.push_back(makeJob(m, w, opt.scale, baseConfig(m)));
    for (ConfidenceKind conf :
         {ConfidenceKind::Always, ConfidenceKind::Real}) {
        for (int lat : {0, 1, 2, 4}) {
            for (const auto &w : sweepWorkloads(opt)) {
                SpecModel model = SpecModel::greatModel();
                model.invalidateToReissue = lat;
                jobs.push_back(makeJob(
                    m, w, opt.scale,
                    vpConfig(m, model, conf, UpdateTiming::Immediate),
                    m.label()
                        + (conf == ConfidenceKind::Always ? " always"
                                                          : " real")
                        + " reissue-lat=" + std::to_string(lat)));
            }
        }
    }
    return jobs;
}

} // namespace

const std::vector<NamedSweep> &
namedSweeps()
{
    static const std::vector<NamedSweep> sweeps = {
        {"base", "base machines (no value prediction), all workloads",
         buildBase},
        {"fig3", "Fig. 3 grid: models x D/R-I/R-D/O-I/O x machines "
                 "(plus base runs)",
         buildFig3},
        {"fig4", "Fig. 4 grid: great model, real confidence, D and I "
                 "update timing",
         buildFig4},
        {"confidence", "confidence-estimator design space on 8/48",
         buildConfidence},
        {"predictors", "value-predictor choice on 8/48 (oracle, "
                       "immediate)",
         buildPredictors},
        {"verif-latency",
         "Execution-Equality-Verification latency sweep 0-3 on 8/48",
         buildVerifLatency},
        {"reissue-latency",
         "Invalidation-Reissue latency sweep 0-4 on 8/48, always and "
         "real confidence",
         buildReissueLatency},
    };
    return sweeps;
}

const NamedSweep &
sweepByName(const std::string &name)
{
    for (const NamedSweep &s : namedSweeps()) {
        if (s.name == name)
            return s;
    }
    VSIM_FATAL("unknown sweep '", name, "'");
}

} // namespace vsim::sim
