/**
 * @file
 * Interval clustering for SimPoint-style sampled simulation: group
 * the per-interval basic-block vectors (vsim/arch/bbv.hh) into phases
 * with k-means, pick one representative interval per phase, and weight
 * it by the phase's population. The sampled replay planner
 * (vsim/sim/shard.hh) then simulates only the representatives in
 * detail and folds their statistics under these weights.
 *
 * Determinism contract: everything here — seeding, initialization,
 * Lloyd iteration order, tie breaking, the BIC-based choice of k — is
 * a pure function of the input vectors, the requested maximum k and
 * the explicit seed. Two runs of the same trace at the same flags
 * produce the same SamplePlan on any host, which is what lets the
 * RunCache memoize sampled results under the jobKey.
 *
 * Algorithm:
 *
 *  1. Each BBV is L1-normalized to a point on the probability simplex
 *     (shape of an interval, not its length — all intervals but the
 *     last have equal length anyway).
 *  2. For k = 1..maxK, Lloyd's k-means with squared-Euclidean
 *     distance: centroids initialized by picking k distinct input
 *     points with a seeded SplitMix64 stream, assignment ties broken
 *     toward the lowest centroid index, an emptied cluster reseeded
 *     with the point farthest from its centroid.
 *  3. Each k is scored with the X-means spherical-Gaussian BIC
 *     (Pelleg & Moore, 2000). The chosen k is the *smallest* one whose
 *     score reaches 90% of the best score's span above the worst —
 *     the SimPoint elbow rule, made scale-free so negative
 *     log-likelihoods cannot flip the comparison.
 *  4. The representative of a cluster is its member closest to the
 *     centroid (ties toward the lowest interval index); its weight is
 *     the cluster's population.
 *
 * Degenerate inputs fall back to full detail: maxK >= #intervals (or
 * maxK == 0) yields one singleton cluster per interval, which makes
 * the sampled replay simulate everything — exactness over speed when
 * sampling cannot help.
 */

#ifndef VSIM_SIM_SAMPLE_HH
#define VSIM_SIM_SAMPLE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "vsim/arch/bbv.hh"

namespace vsim::sim
{

/** Default PRNG seed for k-means initialization; fixed so sampled
 *  runs are reproducible without a flag. */
inline constexpr std::uint64_t kSampleSeed = 0x5eed5a3e1de50001ull;

/** Interval length used when CoreConfig::sampleIntervalInsts is 0:
 *  1M instructions, the classic SimPoint granularity — long enough
 *  that pipeline warmup noise is a small fraction of an interval,
 *  short enough that CVP-scale traces yield ~100 intervals. */
inline constexpr std::uint64_t kDefaultSampleIntervalInsts = 1'000'000;

/** Clustering outcome: a partition of the intervals plus one weighted
 *  representative per cluster. */
struct SamplePlan
{
    /** Cluster index of every interval, in trace order. */
    std::vector<std::uint32_t> assignment;
    /** Interval index chosen to represent each cluster. */
    std::vector<std::size_t> representatives;
    /** Cluster populations; weights[c] intervals are represented by
     *  representatives[c]. Sums to assignment.size(). */
    std::vector<std::uint64_t> weights;

    std::size_t clusters() const { return representatives.size(); }
    bool operator==(const SamplePlan &) const = default;
};

/**
 * Cluster @p bbvs into at most @p maxK phases (see file comment for
 * the algorithm and the determinism contract). maxK >= bbvs.size()
 * or maxK == 0 degenerates to one singleton cluster per interval.
 */
SamplePlan clusterIntervals(const std::vector<arch::Bbv> &bbvs,
                            std::uint64_t maxK,
                            std::uint64_t seed = kSampleSeed);

} // namespace vsim::sim

#endif // VSIM_SIM_SAMPLE_HH
