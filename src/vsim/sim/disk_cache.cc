#include "disk_cache.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include <unistd.h>

#include "vsim/base/logging.hh"
#include "vsim/base/state_io.hh"
#include "vsim/trace/trace_format.hh"

#include "vsim_build_hash.hh"

namespace vsim::sim
{

namespace
{

namespace fs = std::filesystem;

void
saveCpi(StateWriter &w, const obs::CpiStack &cpi)
{
    for (std::uint64_t c : cpi.cycles)
        w.u64(c);
}

void
loadCpi(StateReader &r, obs::CpiStack &cpi)
{
    for (std::uint64_t &c : cpi.cycles)
        c = r.u64();
}

void
saveStats(StateWriter &w, const core::CoreStats &s)
{
    w.tag("STAT");
    w.u64(s.cycles);
    w.u64(s.retired);
    w.u64(s.fetched);
    w.u64(s.dispatched);
    w.u64(s.issued);
    w.u64(s.retiredLoads);
    w.u64(s.retiredStores);
    w.u64(s.retiredBranches);
    w.u64(s.condBranches);
    w.u64(s.condMispredicts);
    w.u64(s.squashes);
    w.u64(s.vpEligible);
    w.u64(s.vpCH);
    w.u64(s.vpCL);
    w.u64(s.vpIH);
    w.u64(s.vpIL);
    w.u64(s.vpSpeculated);
    w.u64(s.verifyEvents);
    w.u64(s.invalidateEvents);
    w.u64(s.nullifications);
    w.u64(s.reissues);
    w.u64(s.loadsForwarded);
    w.u64(s.icacheMisses);
    w.u64(s.dcacheMisses);
    w.u64(s.predMade);
    w.u64(s.predSquashed);
    w.u64(s.predConsumed);
    w.u64(s.verifyTouches);
    w.u64(s.invalTouches);
    saveCpi(w, s.cpi);
    s.verifyLatency.save(w);
    s.invalToReissue.save(w);
    s.specInFlight.save(w);
}

void
loadStats(StateReader &r, core::CoreStats &s)
{
    r.tag("STAT");
    s.cycles = r.u64();
    s.retired = r.u64();
    s.fetched = r.u64();
    s.dispatched = r.u64();
    s.issued = r.u64();
    s.retiredLoads = r.u64();
    s.retiredStores = r.u64();
    s.retiredBranches = r.u64();
    s.condBranches = r.u64();
    s.condMispredicts = r.u64();
    s.squashes = r.u64();
    s.vpEligible = r.u64();
    s.vpCH = r.u64();
    s.vpCL = r.u64();
    s.vpIH = r.u64();
    s.vpIL = r.u64();
    s.vpSpeculated = r.u64();
    s.verifyEvents = r.u64();
    s.invalidateEvents = r.u64();
    s.nullifications = r.u64();
    s.reissues = r.u64();
    s.loadsForwarded = r.u64();
    s.icacheMisses = r.u64();
    s.dcacheMisses = r.u64();
    s.predMade = r.u64();
    s.predSquashed = r.u64();
    s.predConsumed = r.u64();
    s.verifyTouches = r.u64();
    s.invalTouches = r.u64();
    loadCpi(r, s.cpi);
    s.verifyLatency.restore(r);
    s.invalToReissue.restore(r);
    s.specInFlight.restore(r);
}

} // namespace

void
saveRunResult(StateWriter &w, const RunResult &r)
{
    w.tag("VSRR");
    w.str(r.workload);
    w.u64(r.instructions);
    w.f64(r.ipc);
    w.u64(r.exitCode);
    w.str(r.output);
    saveStats(w, r.stats);
    w.tag("INTV");
    w.u64(r.intervals.period);
    w.u64(r.intervals.samples.size());
    for (const obs::IntervalSample &s : r.intervals.samples) {
        w.u64(s.cycleStart);
        w.u64(s.cycles);
        w.u64(s.retired);
        w.u64(s.issued);
        w.u64(s.dispatched);
        w.u64(s.occupancySum);
        w.u64(s.condBranches);
        w.u64(s.condMispredicts);
        w.u64(s.squashes);
        w.u64(s.verifyEvents);
        w.u64(s.invalidateEvents);
        w.u64(s.nullifications);
        saveCpi(w, s.cpi);
    }
    w.tag("LEDG");
    w.boolean(r.ledger.enabled);
    w.u64(r.ledger.records.size());
    for (const obs::LedgerRecord &rec : r.ledger.records) {
        w.u64(rec.seq);
        w.u64(rec.pc);
        w.u64(rec.madeAt);
        w.u64(rec.resolvedAt);
        w.u64(rec.consumers);
        w.u64(rec.reissues);
        w.u8(static_cast<std::uint8_t>(rec.outcome));
        w.boolean(rec.committed);
    }
}

RunResult
loadRunResult(StateReader &r)
{
    RunResult out;
    r.tag("VSRR");
    out.workload = r.str();
    out.instructions = r.u64();
    out.ipc = r.f64();
    out.exitCode = r.u64();
    out.output = r.str();
    loadStats(r, out.stats);
    r.tag("INTV");
    out.intervals.period = r.u64();
    const std::uint64_t nsamples = r.u64();
    // Each sample is at least 12 u64s + a CPI stack; cap the reserve
    // against absurd counts so a corrupt length can't OOM before the
    // underrun check fires.
    if (nsamples > (1ull << 32))
        VSIM_FATAL("implausible interval sample count ", nsamples);
    out.intervals.samples.resize(static_cast<std::size_t>(nsamples));
    for (obs::IntervalSample &s : out.intervals.samples) {
        s.cycleStart = r.u64();
        s.cycles = r.u64();
        s.retired = r.u64();
        s.issued = r.u64();
        s.dispatched = r.u64();
        s.occupancySum = r.u64();
        s.condBranches = r.u64();
        s.condMispredicts = r.u64();
        s.squashes = r.u64();
        s.verifyEvents = r.u64();
        s.invalidateEvents = r.u64();
        s.nullifications = r.u64();
        loadCpi(r, s.cpi);
    }
    r.tag("LEDG");
    out.ledger.enabled = r.boolean();
    const std::uint64_t nrecords = r.u64();
    if (nrecords > (1ull << 32))
        VSIM_FATAL("implausible ledger record count ", nrecords);
    out.ledger.records.resize(static_cast<std::size_t>(nrecords));
    for (obs::LedgerRecord &rec : out.ledger.records) {
        rec.seq = r.u64();
        rec.pc = r.u64();
        rec.madeAt = r.u64();
        rec.resolvedAt = r.u64();
        rec.consumers = static_cast<std::uint32_t>(r.u64());
        rec.reissues = static_cast<std::uint32_t>(r.u64());
        const std::uint8_t outcome = r.u8();
        if (outcome > static_cast<std::uint8_t>(
                obs::LedgerOutcome::Squashed))
            VSIM_FATAL("invalid ledger outcome ", int(outcome));
        rec.outcome = static_cast<obs::LedgerOutcome>(outcome);
        rec.committed = r.boolean();
    }
    return out;
}

std::uint64_t
DiskRunCache::buildFingerprint()
{
    std::ostringstream os;
    os << std::hex << VSIM_SOURCE_HASH << '|' << __VERSION__ << '|'
       << VSIM_BUILD_FLAGS << '|' << kDiskFormatVersion;
    const std::string s = os.str();
    return trace::fnv1a(s.data(), s.size());
}

DiskRunCache::DiskRunCache(std::string dir, std::uint64_t fingerprint)
    : dir_(std::move(dir)), fingerprint_(fingerprint)
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec || !fs::is_directory(dir_))
        VSIM_FATAL("cannot create cache directory '", dir_,
                   "': ", ec ? ec.message() : "not a directory");
}

std::string
DiskRunCache::entryPath(const std::string &key) const
{
    std::uint64_t h = trace::fnv1a(&fingerprint_, sizeof(fingerprint_));
    h = trace::fnv1a(key.data(), key.size(), h);
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.vsr",
                  static_cast<unsigned long long>(h));
    return dir_ + "/" + name;
}

bool
DiskRunCache::load(const std::string &key, RunResult &out)
{
    const std::string path = entryPath(key);
    std::vector<std::uint8_t> bytes;
    {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            return false; // plain miss
        in.seekg(0, std::ios::end);
        const std::streamoff len = in.tellg();
        in.seekg(0, std::ios::beg);
        if (len > 0) {
            bytes.resize(static_cast<std::size_t>(len));
            in.read(reinterpret_cast<char *>(bytes.data()), len);
        }
        if (!in) {
            VSIM_WARN("cache: unreadable entry ", path, ", evicting");
            fs::remove(path);
            return false;
        }
    }

    const auto evict = [&](const std::string &why) {
        VSIM_WARN("cache: corrupt entry ", path, " (", why,
                  "), evicting");
        std::error_code ec;
        fs::remove(path, ec);
        return false;
    };

    if (bytes.size() < sizeof(std::uint64_t))
        return evict("short file");
    const std::size_t payload = bytes.size() - sizeof(std::uint64_t);
    std::uint64_t stored = 0;
    for (int i = 0; i < 8; ++i)
        stored |= static_cast<std::uint64_t>(bytes[payload + i])
                  << (8 * i);
    if (trace::fnv1a(bytes.data(), payload) != stored)
        return evict("checksum mismatch");

    try {
        StateReader r(bytes.data(), payload);
        r.tag("VSRC");
        if (r.u64() != kDiskFormatVersion)
            return false; // another format's entry: miss, leave alone
        if (r.u64() != fingerprint_)
            return false; // another build's entry: miss, leave alone
        if (r.str() != key)
            return false; // FNV collision: miss, leave alone
        out = loadRunResult(r);
        if (!r.done())
            return evict("trailing bytes");
    } catch (const FatalError &err) {
        return evict(err.what());
    }
    // Refresh the entry's mtime so the size budget's oldest-first
    // eviction is true LRU rather than insertion order. Best-effort: a
    // read-only cache directory still serves hits.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    return true;
}

void
DiskRunCache::store(const std::string &key, const RunResult &result)
{
    StateWriter w;
    w.tag("VSRC");
    w.u64(kDiskFormatVersion);
    w.u64(fingerprint_);
    w.str(key);
    saveRunResult(w, result);
    const std::uint64_t checksum =
        trace::fnv1a(w.data().data(), w.data().size());
    w.u64(checksum);

    const std::string path = entryPath(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(::getpid());
    {
        std::ofstream outf(tmp, std::ios::binary | std::ios::trunc);
        if (!outf) {
            VSIM_WARN("cache: cannot write ", tmp, ", skipping store");
            return;
        }
        outf.write(reinterpret_cast<const char *>(w.data().data()),
                   static_cast<std::streamsize>(w.data().size()));
        if (!outf) {
            VSIM_WARN("cache: short write to ", tmp,
                      ", skipping store");
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        VSIM_WARN("cache: cannot rename ", tmp, " to ", path, ": ",
                  ec.message());
        fs::remove(tmp, ec);
        return;
    }
    enforceBudget();
}

void
DiskRunCache::enforceBudget()
{
    if (maxBytes_ == 0)
        return;

    struct Entry
    {
        fs::path path;
        fs::file_time_type mtime;
        std::uint64_t size = 0;
    };
    std::vector<Entry> entries;
    std::uint64_t total = 0;

    std::error_code ec;
    for (const auto &de : fs::directory_iterator(dir_, ec)) {
        if (de.path().extension() != ".vsr")
            continue; // leave temp files to their owners
        std::error_code fec;
        const std::uint64_t size = de.file_size(fec);
        if (fec)
            continue; // raced with an eviction elsewhere
        const fs::file_time_type mtime = de.last_write_time(fec);
        if (fec)
            continue;
        entries.push_back({de.path(), mtime, size});
        total += size;
    }
    if (ec) {
        VSIM_WARN("cache: cannot scan ", dir_, " for size budget: ",
                  ec.message());
        return;
    }
    if (total <= maxBytes_)
        return;

    // Oldest mtime first; the path tie-break keeps concurrent writers
    // that share a budget evicting in the same order.
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
                  if (a.mtime != b.mtime)
                      return a.mtime < b.mtime;
                  return a.path < b.path;
              });
    for (const Entry &e : entries) {
        if (total <= maxBytes_)
            break;
        std::error_code rec;
        if (!fs::remove(e.path, rec)) {
            if (rec) {
                VSIM_WARN("cache: cannot evict ", e.path.string(),
                          ": ", rec.message());
                continue; // still there, still counts
            }
            total -= e.size; // raced: already gone, bytes reclaimed
            continue;
        }
        VSIM_WARN("cache: size budget ", maxBytes_,
                  " bytes exceeded, evicted LRU entry ",
                  e.path.string(), " (", e.size, " bytes)");
        total -= e.size;
    }
}

} // namespace vsim::sim
