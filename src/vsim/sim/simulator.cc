#include "simulator.hh"

#include "shard.hh"
#include "vsim/base/logging.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace vsim::sim
{

std::vector<MachineConfig>
paperMachines()
{
    return {{4, 24}, {8, 48}, {16, 96}};
}

core::CoreConfig
baseConfig(const MachineConfig &m)
{
    core::CoreConfig cfg;
    cfg.issueWidth = m.issueWidth;
    cfg.windowSize = m.windowSize;
    cfg.useValuePrediction = false;
    return cfg;
}

core::CoreConfig
vpConfig(const MachineConfig &m, const core::SpecModel &model,
         core::ConfidenceKind confidence, core::UpdateTiming timing)
{
    core::CoreConfig cfg = baseConfig(m);
    cfg.useValuePrediction = true;
    cfg.model = model;
    cfg.confidence = confidence;
    cfg.updateTiming = timing;
    return cfg;
}

std::string
timingConfLabel(core::UpdateTiming timing, core::ConfidenceKind confidence)
{
    std::string label =
        timing == core::UpdateTiming::Delayed ? "D/" : "I/";
    switch (confidence) {
      case core::ConfidenceKind::Real: label += "R"; break;
      case core::ConfidenceKind::Oracle: label += "O"; break;
      case core::ConfidenceKind::Always: label += "A"; break;
    }
    return label;
}

bool
isTraceWorkload(const std::string &name)
{
    return name.rfind(kTraceWorkloadPrefix, 0) == 0;
}

std::string
traceWorkloadName(const std::string &path)
{
    return kTraceWorkloadPrefix + path;
}

std::string
traceWorkloadPath(const std::string &name)
{
    VSIM_ASSERT(isTraceWorkload(name), "not a trace workload: ", name);
    return name.substr(sizeof(kTraceWorkloadPrefix) - 1);
}

namespace
{

core::SimOutcome
simulate(const std::string &name, int scale,
         const core::CoreConfig &cfg)
{
    if (isTraceWorkload(name)) {
        trace::LoadedTrace loaded =
            trace::loadTrace(traceWorkloadPath(name));
        core::OooCore core(loaded.program, std::move(loaded.trace),
                           cfg);
        return core.run();
    }
    const workloads::Workload &w = workloads::byName(name);
    const assembler::Program prog = workloads::buildProgram(w, scale);
    core::OooCore core(prog, cfg);
    return core.run();
}

} // namespace

RunResult
runWorkload(const std::string &name, int scale,
            const core::CoreConfig &cfg)
{
    validatePartition(cfg);
    if (shardingRequested(cfg) || samplingRequested(cfg)) {
        ShardRunner runner(cfg);
        return runner.run(name, scale);
    }
    const core::SimOutcome out = simulate(name, scale, cfg);
    VSIM_ASSERT(out.halted, "workload ", name,
                " did not finish within the cycle limit");

    RunResult r;
    r.workload = name;
    r.stats = out.stats;
    r.instructions = out.stats.retired;
    r.ipc = out.stats.ipc();
    r.exitCode = out.exitCode;
    r.output = out.output;
    r.intervals = out.intervals;
    r.ledger = out.ledger;
    return r;
}

double
speedup(const RunResult &base, const RunResult &vp)
{
    VSIM_ASSERT(base.workload == vp.workload,
                "speedup across different workloads");
    VSIM_ASSERT(base.stats.cycles > 0, "zero-cycle base run");
    VSIM_ASSERT(vp.stats.cycles > 0, "zero-cycle run");
    return static_cast<double>(base.stats.cycles)
           / static_cast<double>(vp.stats.cycles);
}

} // namespace vsim::sim
