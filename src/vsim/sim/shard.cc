#include "shard.hh"

#include <algorithm>
#include <chrono>
#include <exception>
#include <memory>
#include <unordered_map>
#include <utility>

#include "sample.hh"
#include "vsim/base/logging.hh"
#include "vsim/base/thread_pool.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/core/snapshot.hh"
#include "vsim/trace/trace_io.hh"
#include "vsim/workloads/workloads.hh"

namespace vsim::sim
{

bool
shardingRequested(const core::CoreConfig &cfg)
{
    return cfg.shards > 0 || cfg.intervalInsts > 0;
}

bool
samplingRequested(const core::CoreConfig &cfg)
{
    return cfg.sampleK > 0;
}

void
validatePartition(const core::CoreConfig &cfg)
{
    if (cfg.shards > 0 && cfg.intervalInsts > 0)
        VSIM_FATAL("--shards and --interval-insts are mutually "
                   "exclusive: pick one partition of the trace");
    if (cfg.sampleK > 0 && (cfg.shards > 0 || cfg.intervalInsts > 0))
        VSIM_FATAL("--sample is mutually exclusive with --shards/"
                   "--interval-insts: sampled replay chooses its own "
                   "interval partition");
    if (cfg.sampleIntervalInsts > 0 && cfg.sampleK == 0)
        VSIM_FATAL("--sample-interval-insts needs --sample");
    if (cfg.warmupInsts != UINT64_MAX && !shardingRequested(cfg)
        && !samplingRequested(cfg))
        VSIM_FATAL("--warmup-insts needs --shards, --interval-insts "
                   "or --sample: it would otherwise be ignored");
}

std::vector<ShardPlan>
planShards(std::uint64_t len, const core::CoreConfig &cfg)
{
    VSIM_ASSERT(len > 0, "cannot shard an empty trace");
    if (cfg.shards > 0 && cfg.intervalInsts > 0)
        VSIM_FATAL("--shards and --interval-insts are mutually "
                   "exclusive: pick one partition of the trace");

    const std::uint64_t w = cfg.warmupInsts;
    auto warmStart = [w](std::uint64_t start) {
        return w == UINT64_MAX ? 0 : start - std::min(start, w);
    };

    std::vector<ShardPlan> plan;
    if (cfg.shards > 0) {
        // N near-equal pieces; shards beyond one-instruction
        // granularity would be empty, so clamp.
        const std::uint64_t n = std::min<std::uint64_t>(cfg.shards, len);
        plan.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = 0; i < n; ++i) {
            ShardPlan p;
            p.start = len * i / n;
            p.stop = len * (i + 1) / n;
            p.warmStart = warmStart(p.start);
            plan.push_back(p);
        }
    } else {
        VSIM_ASSERT(cfg.intervalInsts > 0, "no shard partition requested");
        plan.reserve(static_cast<std::size_t>(
            (len + cfg.intervalInsts - 1) / cfg.intervalInsts));
        for (std::uint64_t s = 0; s < len; s += cfg.intervalInsts) {
            ShardPlan p;
            p.start = s;
            p.stop = std::min(len, s + cfg.intervalInsts);
            p.warmStart = warmStart(p.start);
            plan.push_back(p);
        }
    }
    return plan;
}

namespace
{

/** One shard's outcome plus the merge/rebase inputs. */
struct ShardResult
{
    core::SimOutcome out;
    std::uint64_t cutCycle = 0; //!< cycle the stats window opened at
    double wallSeconds = 0.0;
    std::exception_ptr error;
};

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now()
                                         - t0)
        .count();
}

/**
 * Execute every plan entry as one detailed core on the worker pool
 * (cfg.shardJobs workers): mint functional-warmup snapshots for the
 * distinct nonzero warmStart points, run each [start, stop) window,
 * and surface the first worker exception on the caller. @p what labels
 * the progress lines ("shard" or "sample rep").
 */
std::vector<ShardResult>
executePlans(const core::CoreConfig &cfg, const assembler::Program &prog,
             const std::shared_ptr<const arch::ExecTrace> &trace,
             const std::vector<ShardPlan> &plan, const char *what)
{
    const std::size_t n = plan.size();
    const std::uint64_t len = trace->entries.size();

    std::vector<std::uint64_t> points;
    for (const ShardPlan &p : plan)
        if (p.warmStart > 0)
            points.push_back(p.warmStart);
    std::sort(points.begin(), points.end());
    points.erase(std::unique(points.begin(), points.end()),
                 points.end());

    std::vector<core::SimSnapshot> snaps;
    if (!points.empty()) {
        const auto t0 = std::chrono::steady_clock::now();
        snaps = core::functionalWarmup(prog, *trace, cfg, points);
        VSIM_INFORM(what, " warmup: ", points.size(),
                    " snapshot(s) of ", len, " insts in ",
                    secondsSince(t0), "s");
    }
    auto snapshotFor = [&](std::uint64_t point) -> const core::SimSnapshot & {
        const auto it =
            std::lower_bound(points.begin(), points.end(), point);
        VSIM_ASSERT(it != points.end() && *it == point,
                    "no snapshot captured for warmStart ", point);
        return snaps[static_cast<std::size_t>(it - points.begin())];
    };

    std::vector<ShardResult> results(n);
    auto runShard = [&](std::size_t i) {
        ShardResult &r = results[i];
        try {
            const auto t0 = std::chrono::steady_clock::now();
            core::OooCore core(prog, trace, cfg);
            if (plan[i].warmStart > 0)
                core.startFromSnapshot(snapshotFor(plan[i].warmStart));
            core.setRunWindow(plan[i].start, plan[i].stop);
            r.out = core.run();
            r.cutCycle = core.statsCutCycle();
            r.wallSeconds = secondsSince(t0);
            VSIM_INFORM(what, " ", i + 1, "/", n, " [", plan[i].start,
                        ",", plan[i].stop, ") warm=", plan[i].warmStart,
                        ": cycles=", r.out.stats.cycles, " wall=",
                        r.wallSeconds, "s");
        } catch (...) {
            // Pool tasks must not throw; surface on the caller.
            r.error = std::current_exception();
        }
    };

    const int jobs = cfg.shardJobs <= 0 ? ThreadPool::defaultThreadCount()
                                        : cfg.shardJobs;
    if (n > 1 && jobs > 1) {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < n; ++i)
            pool.submit([&runShard, i] { runShard(i); });
        pool.wait();
    } else {
        for (std::size_t i = 0; i < n; ++i)
            runShard(i);
    }
    for (ShardResult &r : results)
        if (r.error)
            std::rethrow_exception(r.error);
    return results;
}

/**
 * SimPoint-style sampled replay (see shard.hh): fingerprint the
 * trace's K-instruction intervals with BBVs, cluster them into at most
 * cfg.sampleK phases, simulate one representative per phase in detail
 * and fold its statistics under the phase population.
 */
RunResult
runSampled(const core::CoreConfig &cfg, const std::string &workload,
           const assembler::Program &prog,
           const std::shared_ptr<const arch::ExecTrace> &trace)
{
    const std::uint64_t len = trace->entries.size();
    const std::uint64_t K = cfg.sampleIntervalInsts > 0
                                ? cfg.sampleIntervalInsts
                                : kDefaultSampleIntervalInsts;

    const auto tProfile = std::chrono::steady_clock::now();
    const std::vector<arch::Bbv> bbvs = arch::profileBbv(*trace, K);
    const std::size_t n = bbvs.size();
    VSIM_ASSERT(n > 0, "cannot sample an empty trace");

    // The trailing interval is always its own singleton phase: it may
    // be ragged, and detailing it keeps the merged retired count equal
    // to the trace length and lets the final representative consume
    // the trace to its HALT. Only the head intervals are clustered.
    SamplePlan plan;
    if (n == 1) {
        plan.assignment = {0};
        plan.representatives = {0};
        plan.weights = {1};
    } else {
        plan = clusterIntervals(
            std::vector<arch::Bbv>(bbvs.begin(), bbvs.end() - 1),
            cfg.sampleK);
        plan.assignment.push_back(
            static_cast<std::uint32_t>(plan.clusters()));
        plan.representatives.push_back(n - 1);
        plan.weights.push_back(1);
    }
    const std::size_t k = plan.clusters();
    VSIM_INFORM("sample: ", n, " interval(s) of ", K, " insts -> ", k,
                " phase(s) in ", secondsSince(tProfile), "s");

    // Full warmup would replay every representative from instruction
    // 0, defeating sampling: reinterpret the 'full' default as one
    // interval of functional warmup. The jobKey carries the raw
    // warmupInsts value, so this cannot alias two different runs.
    const std::uint64_t w =
        cfg.warmupInsts == UINT64_MAX ? K : cfg.warmupInsts;
    std::vector<ShardPlan> shardPlan(k);
    for (std::size_t c = 0; c < k; ++c) {
        const std::uint64_t rep = plan.representatives[c];
        ShardPlan &p = shardPlan[c];
        p.start = rep * K;
        p.stop = std::min(len, (rep + 1) * K);
        p.warmStart = p.start - std::min(p.start, w);
    }

    std::vector<ShardResult> results =
        executePlans(cfg, prog, trace, shardPlan, "sample rep");

    // ---- weighted merge --------------------------------------------------
    // Each representative stands in for every interval of its phase:
    // scalar counters, CPI stacks and histograms fold in scaled by the
    // phase population (integer arithmetic, so the merge is
    // bit-identical across hosts and worker counts). The stats window
    // opens and closes at retire-cycle granularity, so a
    // representative counts its interval length give or take one
    // retire group per boundary; the weighted total therefore matches
    // the trace length to within 2 * retireWidth per interval.
    core::CoreStats merged;
    for (std::size_t c = 0; c < k; ++c)
        merged.mergeWeighted(results[c].out.stats, plan.weights[c]);

    RunResult r;
    r.workload = workload;
    r.stats = merged;
    r.instructions = merged.retired;
    r.ipc = merged.ipc();
    // The architectural outcome is fixed by the oracle trace; a
    // mid-trace representative only reproduces a suffix of the output.
    r.exitCode = trace->exitCode;
    r.output = trace->output;

    // Detailed artifacts are approximations assembled in trace order:
    // interval i contributes its representative's samples rebased onto
    // the merged timeline at offset_i (the sum of the preceding
    // intervals' representative cycle counts), and each
    // representative's ledger records appear once, at the offset of
    // the representative's own position. Records made before a
    // representative's cut (during its warmup prefix) are dropped —
    // there is no adjacent shard whose seam they could patch.
    r.intervals.period = cfg.metricsInterval;
    r.ledger.enabled = cfg.specLedger;
    std::uint64_t offset = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = plan.assignment[i];
        const ShardResult &res = results[c];
        const std::uint64_t cut = res.cutCycle;
        for (obs::IntervalSample s : res.out.intervals.samples) {
            VSIM_ASSERT(s.cycleStart >= cut,
                        "interval sample precedes the sample's cut");
            s.cycleStart = s.cycleStart - cut + offset;
            r.intervals.samples.push_back(s);
        }
        if (plan.representatives[c] == i) {
            for (obs::LedgerRecord rec : res.out.ledger.records) {
                if (rec.madeAt < cut)
                    continue;
                rec.madeAt = rec.madeAt - cut + offset;
                if (rec.outcome != obs::LedgerOutcome::Unresolved)
                    rec.resolvedAt = rec.resolvedAt - cut + offset;
                r.ledger.records.push_back(rec);
            }
        }
        offset += res.out.stats.cycles;
    }

    VSIM_ASSERT(results[k - 1].out.halted,
                "final sample representative of ", workload,
                " did not finish within the cycle limit");
    const std::uint64_t slack =
        2ull * static_cast<std::uint64_t>(cfg.effRetireWidth()) * n;
    VSIM_ASSERT(merged.retired + slack >= len
                    && merged.retired <= len + slack,
                "sampled weights did not cover the trace: ",
                merged.retired, " vs ", len, " (slack ", slack, ")");
    return r;
}

} // namespace

ShardRunner::ShardRunner(core::CoreConfig config) : cfg(std::move(config))
{}

RunResult
ShardRunner::run(const std::string &workload, int scale)
{
    validatePartition(cfg);
    // Materialise the program and the oracle trace once; every shard
    // core borrows the (potentially multi-gigabyte) trace via
    // shared_ptr instead of copying it.
    assembler::Program prog;
    std::shared_ptr<const arch::ExecTrace> trace;
    if (isTraceWorkload(workload)) {
        trace::LoadedTrace loaded =
            trace::loadTrace(traceWorkloadPath(workload));
        prog = std::move(loaded.program);
        trace = std::make_shared<const arch::ExecTrace>(
            std::move(loaded.trace));
    } else {
        const workloads::Workload &w = workloads::byName(workload);
        prog = workloads::buildProgram(w, scale);
        trace = std::make_shared<const arch::ExecTrace>(
            arch::preExecute(prog));
    }
    const std::uint64_t len = trace->entries.size();

    if (samplingRequested(cfg))
        return runSampled(cfg, workload, prog, trace);

    const std::vector<ShardPlan> plan = planShards(len, cfg);
    const std::size_t n = plan.size();
    std::vector<ShardResult> results =
        executePlans(cfg, prog, trace, plan, "shard");

    // ---- merge -----------------------------------------------------------
    // Scalars, CPI stacks and histograms add; interval samples and
    // ledger records are rebased onto the merged timeline: shard i's
    // counted cycles begin at offset_i = sum of the earlier shards'
    // counted cycles, so a shard-local cycle x maps to
    // x - cut_i + offset_i. At full warmup cut_i == offset_i for
    // every shard (each replay reproduces the monolithic cycle
    // stream), making the rebase the identity and the merge
    // bit-identical to the monolithic run.
    core::CoreStats merged = results[0].out.stats;
    for (std::size_t i = 1; i < n; ++i)
        merged.merge(results[i].out.stats);

    RunResult r;
    r.workload = workload;
    r.stats = merged;
    r.instructions = merged.retired;
    r.ipc = merged.ipc();
    // The architectural outcome is fixed by the oracle trace; a
    // mid-trace shard core only reproduces its suffix of the output.
    r.exitCode = trace->exitCode;
    r.output = trace->output;

    r.intervals.period = cfg.metricsInterval;
    r.ledger.enabled = cfg.specLedger;
    const bool fullWarmup = cfg.warmupInsts == UINT64_MAX;
    // Merged-ledger indices of records still unresolved at their
    // shard's stop boundary, keyed by dynamic sequence number.
    std::unordered_map<std::uint64_t, std::size_t> unresolvedSeam;
    std::uint64_t offset = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t cut = results[i].cutCycle;
        const auto &inSamples = results[i].out.intervals.samples;
        for (std::size_t j = 0; j < inSamples.size(); ++j) {
            obs::IntervalSample s = inSamples[j];
            VSIM_ASSERT(s.cycleStart >= cut,
                        "interval sample precedes the shard's cut");
            s.cycleStart = s.cycleStart - cut + offset;
            // Seam coalescing: the core flushes intervals on absolute
            // period boundaries, so the previous shard's trailing
            // partial sample and this shard's *leading* partial
            // sample are two halves of one monolithic interval
            // whenever the seam does not itself fall on a boundary.
            // Summing them reconstructs the monolithic sample exactly
            // at full warmup. Only the leading sample may coalesce —
            // later samples of a finite-warmup shard are contiguous
            // and off-boundary too, but they are whole intervals.
            auto &out = r.intervals.samples;
            if (j == 0 && !out.empty() && cfg.metricsInterval != 0
                && s.cycleStart % cfg.metricsInterval != 0
                && out.back().cycleStart + out.back().cycles
                       == s.cycleStart) {
                obs::IntervalSample &b = out.back();
                b.cycles += s.cycles;
                b.retired += s.retired;
                b.issued += s.issued;
                b.dispatched += s.dispatched;
                b.occupancySum += s.occupancySum;
                b.condBranches += s.condBranches;
                b.condMispredicts += s.condMispredicts;
                b.squashes += s.squashes;
                b.verifyEvents += s.verifyEvents;
                b.invalidateEvents += s.invalidateEvents;
                b.nullifications += s.nullifications;
                b.cpi.merge(s.cpi);
                continue;
            }
            out.push_back(s);
        }
        for (obs::LedgerRecord rec : results[i].out.ledger.records) {
            if (rec.madeAt < cut) {
                // Pre-cut carry: the resolved form of a prediction the
                // previous shard reported as unresolved at its stop.
                // Patch that seam record in place (the seq streams of
                // full-warmup replays are identical; finite-warmup
                // shards have incomparable seqs, so the seam records
                // stay unresolved there — a documented approximation).
                if (!fullWarmup)
                    continue;
                const auto it = unresolvedSeam.find(rec.seq);
                if (it == unresolvedSeam.end())
                    continue;
                obs::LedgerRecord &t = r.ledger.records[it->second];
                t.outcome = rec.outcome;
                t.resolvedAt = rec.resolvedAt - cut + offset;
                t.consumers = rec.consumers;
                t.reissues = rec.reissues;
                t.committed = rec.committed;
                unresolvedSeam.erase(it);
                continue;
            }
            rec.madeAt = rec.madeAt - cut + offset;
            if (rec.outcome != obs::LedgerOutcome::Unresolved)
                rec.resolvedAt = rec.resolvedAt - cut + offset;
            else if (i + 1 < n)
                unresolvedSeam.emplace(rec.seq,
                                       r.ledger.records.size());
            r.ledger.records.push_back(rec);
        }
        offset += results[i].out.stats.cycles;
    }

    // The final shard must have consumed the trace to its HALT; the
    // earlier shards stop at their boundary instead of halting.
    VSIM_ASSERT(results[n - 1].out.halted,
                "final shard of ", workload,
                " did not finish within the cycle limit");
    if (cfg.warmupInsts == UINT64_MAX)
        VSIM_ASSERT(merged.retired == len,
                    "full-warmup shards did not partition the trace: ",
                    merged.retired, " != ", len);
    return r;
}

} // namespace vsim::sim
