/**
 * @file
 * Sweep-as-a-service: the experiment engine behind a Unix-domain
 * socket. A long-running daemon (tools/vspec_sweepd.cc) owns the
 * process-wide RunCache — optionally backed by a persistent
 * DiskRunCache — and a worker pool; any number of concurrent clients
 * submit batched sweep requests and read back one result per cell as
 * it completes. Two clients asking for the same cell simulate it once
 * (the RunCache's in-flight dedupe works across connections), and a
 * restarted daemon serves previously computed cells from disk.
 *
 * Wire protocol — length-prefixed JSON frames in both directions:
 * every frame is a 4-byte little-endian payload length followed by
 * that many bytes of UTF-8 JSON.
 *
 *   client -> server   {"type": "sweep", "jobs": ["<hex>", ...]}
 *   server -> client   {"type": "result", "index": N,
 *                       "cached": true|false, "data": "<hex>"}  (per cell,
 *                       completion order)
 *                      {"type": "done", "cells": N}             (terminal)
 *                      {"type": "error", "message": "..."}      (terminal)
 *
 * "<hex>" payloads are hex-encoded vsim::StateWriter streams: each
 * requested job is a saveSweepJob encoding (label, workload, scale and
 * every CoreConfig field), each returned cell a saveRunResult
 * encoding. Shipping the full job — rather than a key — lets the
 * server simulate cells it has never seen; shipping the full result
 * lets the thin client render every existing report format locally,
 * byte-identical to a direct run.
 */

#ifndef VSIM_SIM_SERVER_HH
#define VSIM_SIM_SERVER_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "sweep.hh"

namespace vsim
{
class ThreadPool;
class StateWriter;
class StateReader;
} // namespace vsim

namespace vsim::sim
{

/** Protocol frames larger than this are rejected as malformed. */
constexpr std::uint32_t kMaxFrameBytes = 256u * 1024u * 1024u;

/** Serialize a sweep job (label, workload, scale, full CoreConfig). */
void saveSweepJob(StateWriter &w, const SweepJob &job);

/** Inverse of saveSweepJob; VSIM_FATAL (catchable) on corrupt input. */
SweepJob loadSweepJob(StateReader &r);

/** Lower-case hex of @p bytes. */
std::string hexEncode(const std::vector<std::uint8_t> &bytes);

/** Inverse of hexEncode; VSIM_FATAL on odd length / non-hex digits. */
std::vector<std::uint8_t> hexDecode(const std::string &hex);

/**
 * The daemon side: accept loop plus a shared simulation worker pool.
 * One instance serves many concurrent client connections; all of them
 * memoize and dedupe through @p cache.
 */
class SweepServer
{
  public:
    /**
     * Bind and listen on @p socket_path (an existing socket file is
     * replaced). @p workers is the simulation worker count (<= 0 = one
     * per hardware thread). VSIM_FATAL when the socket cannot be
     * bound.
     */
    SweepServer(std::string socket_path, int workers,
                RunCache *cache = &RunCache::process());
    ~SweepServer();

    SweepServer(const SweepServer &) = delete;
    SweepServer &operator=(const SweepServer &) = delete;

    /**
     * Run the accept loop until stop() is called (from a signal
     * handler or another thread). Each connection is served on its own
     * thread; simulations run on the shared worker pool.
     */
    void serve();

    /** Ask serve() to return; safe from signal handlers. */
    void stop() { stopping.store(true); }

    const std::string &socketPath() const { return path; }

    /** Total cells served since construction (tests, stats line). */
    std::uint64_t cellsServed() const { return served.load(); }

  private:
    void handleClientOnPool(int fd, ThreadPool &pool);

    std::string path;
    int listenFd = -1;
    int nWorkers;
    RunCache *cache;
    std::atomic<bool> stopping{false};
    std::atomic<std::uint64_t> served{0};
};

/** One cell returned by runSweepOverSocket. */
struct ServerCell
{
    RunResult result;
    bool cached = false; //!< served without simulating (memory or disk)
};

/**
 * The thin-client side: connect to the daemon at @p socket_path, ship
 * @p jobs, and collect every cell (re-ordered back to job order).
 * @p timeout_ms bounds connect and each read/write. VSIM_FATAL with a
 * clear diagnostic when the daemon is unreachable, times out, or
 * reports an error.
 */
std::vector<ServerCell> runSweepOverSocket(
    const std::string &socket_path, const std::vector<SweepJob> &jobs,
    int timeout_ms = 300000);

} // namespace vsim::sim

#endif // VSIM_SIM_SERVER_HH
