#include "server.hh"

#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "vsim/base/logging.hh"
#include "vsim/base/state_io.hh"
#include "vsim/base/thread_pool.hh"
#include "vsim/obs/registry.hh" // jsonEscape
#include "disk_cache.hh"

namespace vsim::sim
{

// ---- job codec ---------------------------------------------------------

void
saveSweepJob(StateWriter &w, const SweepJob &job)
{
    const core::CoreConfig &c = job.cfg;
    const core::SpecModel &m = c.model;
    w.tag("SWJB");
    w.str(job.label);
    w.str(job.workload);
    w.i64(job.scale);
    // Machine.
    w.i64(c.issueWidth);
    w.i64(c.windowSize);
    w.i64(c.fetchWidth);
    w.i64(c.retireWidth);
    w.i64(c.dcachePorts);
    // Value speculation.
    w.boolean(c.useValuePrediction);
    w.str(m.name);
    w.i64(m.execToEquality);
    w.i64(m.equalityToInvalidate);
    w.i64(m.equalityToVerify);
    w.i64(m.verifyToFreeResource);
    w.i64(m.invalidateToReissue);
    w.i64(m.verifyToBranch);
    w.i64(m.verifyAddrToMem);
    w.u8(static_cast<std::uint8_t>(m.verifyScheme));
    w.u8(static_cast<std::uint8_t>(m.invalScheme));
    w.u8(static_cast<std::uint8_t>(m.selectPolicy));
    w.boolean(m.branchNeedsValidOps);
    w.boolean(m.memNeedsValidOps);
    w.str(c.valuePredictor);
    w.u8(static_cast<std::uint8_t>(c.confidence));
    w.i64(c.confidenceBits);
    w.i64(c.confidenceTableBits);
    w.i64(c.confidenceThreshold);
    w.u8(static_cast<std::uint8_t>(c.updateTiming));
    // Front end and memory hierarchy.
    w.str(c.branchPredictor);
    for (const mem::CacheConfig *cc : {&c.icache, &c.dcache, &c.l2cache}) {
        w.str(cc->name);
        w.u64(cc->sizeBytes);
        w.i64(cc->assoc);
        w.i64(cc->blockBytes);
    }
    w.i64(c.icacheHitLat);
    w.i64(c.dcacheHitLat);
    w.i64(c.l2HitLat);
    w.i64(c.l2MissLat);
    w.i64(c.storeForwardLat);
    // Functional units and run control.
    w.i64(c.aluLat);
    w.i64(c.mulLat);
    w.i64(c.divLat);
    w.u64(c.maxCycles);
    w.boolean(c.tracePipeline);
    w.u8(static_cast<std::uint8_t>(c.scheduler));
    w.u8(static_cast<std::uint8_t>(c.sweepKind));
    // Observability and sharding.
    w.u64(c.metricsInterval);
    w.u64(c.traceRetain);
    w.boolean(c.specLedger);
    w.u64(c.shards);
    w.u64(c.intervalInsts);
    w.u64(c.warmupInsts);
    w.u64(c.sampleK);
    w.u64(c.sampleIntervalInsts);
    w.i64(c.shardJobs);
}

namespace
{

std::uint8_t
checkedEnum(StateReader &r, std::uint8_t max, const char *what)
{
    const std::uint8_t v = r.u8();
    if (v > max)
        VSIM_FATAL("invalid ", what, " value ", int(v), " in sweep job");
    return v;
}

} // namespace

SweepJob
loadSweepJob(StateReader &r)
{
    SweepJob job;
    core::CoreConfig &c = job.cfg;
    core::SpecModel &m = c.model;
    r.tag("SWJB");
    job.label = r.str();
    job.workload = r.str();
    job.scale = static_cast<int>(r.i64());
    c.issueWidth = static_cast<int>(r.i64());
    c.windowSize = static_cast<int>(r.i64());
    c.fetchWidth = static_cast<int>(r.i64());
    c.retireWidth = static_cast<int>(r.i64());
    c.dcachePorts = static_cast<int>(r.i64());
    c.useValuePrediction = r.boolean();
    m.name = r.str();
    m.execToEquality = static_cast<int>(r.i64());
    m.equalityToInvalidate = static_cast<int>(r.i64());
    m.equalityToVerify = static_cast<int>(r.i64());
    m.verifyToFreeResource = static_cast<int>(r.i64());
    m.invalidateToReissue = static_cast<int>(r.i64());
    m.verifyToBranch = static_cast<int>(r.i64());
    m.verifyAddrToMem = static_cast<int>(r.i64());
    m.verifyScheme = static_cast<core::VerifyScheme>(
        checkedEnum(r, 3, "verify scheme"));
    m.invalScheme = static_cast<core::InvalScheme>(
        checkedEnum(r, 2, "invalidation scheme"));
    m.selectPolicy = static_cast<core::SelectPolicy>(
        checkedEnum(r, 3, "selection policy"));
    m.branchNeedsValidOps = r.boolean();
    m.memNeedsValidOps = r.boolean();
    c.valuePredictor = r.str();
    c.confidence = static_cast<core::ConfidenceKind>(
        checkedEnum(r, 2, "confidence kind"));
    c.confidenceBits = static_cast<int>(r.i64());
    c.confidenceTableBits = static_cast<int>(r.i64());
    c.confidenceThreshold = static_cast<int>(r.i64());
    c.updateTiming = static_cast<core::UpdateTiming>(
        checkedEnum(r, 1, "update timing"));
    c.branchPredictor = r.str();
    for (mem::CacheConfig *cc : {&c.icache, &c.dcache, &c.l2cache}) {
        cc->name = r.str();
        cc->sizeBytes = r.u64();
        cc->assoc = static_cast<int>(r.i64());
        cc->blockBytes = static_cast<int>(r.i64());
    }
    c.icacheHitLat = static_cast<int>(r.i64());
    c.dcacheHitLat = static_cast<int>(r.i64());
    c.l2HitLat = static_cast<int>(r.i64());
    c.l2MissLat = static_cast<int>(r.i64());
    c.storeForwardLat = static_cast<int>(r.i64());
    c.aluLat = static_cast<int>(r.i64());
    c.mulLat = static_cast<int>(r.i64());
    c.divLat = static_cast<int>(r.i64());
    c.maxCycles = r.u64();
    c.tracePipeline = r.boolean();
    c.scheduler =
        static_cast<core::SchedulerKind>(checkedEnum(r, 1, "scheduler"));
    c.sweepKind =
        static_cast<core::SweepKind>(checkedEnum(r, 1, "sweep kind"));
    c.metricsInterval = r.u64();
    c.traceRetain = static_cast<std::size_t>(r.u64());
    c.specLedger = r.boolean();
    c.shards = r.u64();
    c.intervalInsts = r.u64();
    c.warmupInsts = r.u64();
    c.sampleK = r.u64();
    c.sampleIntervalInsts = r.u64();
    c.shardJobs = static_cast<int>(r.i64());
    return job;
}

// ---- hex ---------------------------------------------------------------

std::string
hexEncode(const std::vector<std::uint8_t> &bytes)
{
    static const char digits[] = "0123456789abcdef";
    std::string out;
    out.reserve(bytes.size() * 2);
    for (std::uint8_t b : bytes) {
        out += digits[b >> 4];
        out += digits[b & 0xf];
    }
    return out;
}

namespace
{

int
hexNibble(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

} // namespace

std::vector<std::uint8_t>
hexDecode(const std::string &hex)
{
    if (hex.size() % 2 != 0)
        VSIM_FATAL("odd-length hex payload (", hex.size(), " chars)");
    std::vector<std::uint8_t> out(hex.size() / 2);
    for (std::size_t i = 0; i < out.size(); ++i) {
        const int hi = hexNibble(hex[2 * i]);
        const int lo = hexNibble(hex[2 * i + 1]);
        if (hi < 0 || lo < 0)
            VSIM_FATAL("invalid hex digit at offset ", 2 * i);
        out[i] = static_cast<std::uint8_t>((hi << 4) | lo);
    }
    return out;
}

// ---- framing -----------------------------------------------------------

namespace
{

/** write(2) the whole buffer; EPIPE and friends throw FatalError. */
void
writeAll(int fd, const void *data, std::size_t len)
{
    const char *p = static_cast<const char *>(data);
    while (len > 0) {
        const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                VSIM_FATAL("socket write timed out");
            VSIM_FATAL("socket write failed: ", std::strerror(errno));
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
}

/**
 * Read exactly @p len bytes. Returns false on EOF before the first
 * byte when @p eof_ok; any other short read or error throws.
 */
bool
readAll(int fd, void *data, std::size_t len, bool eof_ok)
{
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < len) {
        const ssize_t n = ::recv(fd, p + got, len - got, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                VSIM_FATAL("socket read timed out");
            VSIM_FATAL("socket read failed: ", std::strerror(errno));
        }
        if (n == 0) {
            if (eof_ok && got == 0)
                return false;
            VSIM_FATAL("peer closed mid-frame (", got, "/", len,
                       " bytes)");
        }
        got += static_cast<std::size_t>(n);
    }
    return true;
}

void
sendFrame(int fd, const std::string &json)
{
    const std::uint32_t len = static_cast<std::uint32_t>(json.size());
    std::uint8_t hdr[4];
    for (int i = 0; i < 4; ++i)
        hdr[i] = static_cast<std::uint8_t>(len >> (8 * i));
    writeAll(fd, hdr, sizeof(hdr));
    writeAll(fd, json.data(), json.size());
}

/** Read one frame; false on clean EOF at a frame boundary. */
bool
recvFrame(int fd, std::string &json)
{
    std::uint8_t hdr[4];
    if (!readAll(fd, hdr, sizeof(hdr), /*eof_ok=*/true))
        return false;
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i)
        len |= static_cast<std::uint32_t>(hdr[i]) << (8 * i);
    if (len > kMaxFrameBytes)
        VSIM_FATAL("oversized frame (", len, " bytes)");
    json.resize(len);
    if (len > 0)
        readAll(fd, json.data(), len, /*eof_ok=*/false);
    return true;
}

// ---- request parsing ---------------------------------------------------

/** Scan `"name": "<string>"` out of a flat JSON object. */
bool
findString(const std::string &obj, const std::string &name,
           std::string &out)
{
    const std::string needle = "\"" + name + "\"";
    std::size_t at = obj.find(needle);
    if (at == std::string::npos)
        return false;
    at += needle.size();
    while (at < obj.size()
           && (std::isspace(static_cast<unsigned char>(obj[at]))
               || obj[at] == ':'))
        ++at;
    if (at >= obj.size() || obj[at] != '"')
        return false;
    const std::size_t end = obj.find('"', at + 1);
    if (end == std::string::npos)
        return false;
    out = obj.substr(at + 1, end - at - 1);
    return true;
}

/**
 * Parse the "jobs" array of hex strings. Strict about shape: anything
 * but `"jobs": ["...", ...]` (whitespace allowed) is malformed.
 */
bool
parseJobsArray(const std::string &obj, std::vector<std::string> &out)
{
    const std::string needle = "\"jobs\"";
    std::size_t at = obj.find(needle);
    if (at == std::string::npos)
        return false;
    at += needle.size();
    const auto skipWs = [&] {
        while (at < obj.size()
               && std::isspace(static_cast<unsigned char>(obj[at])))
            ++at;
    };
    skipWs();
    if (at >= obj.size() || obj[at] != ':')
        return false;
    ++at;
    skipWs();
    if (at >= obj.size() || obj[at] != '[')
        return false;
    ++at;
    skipWs();
    if (at < obj.size() && obj[at] == ']')
        return true; // empty list
    while (true) {
        skipWs();
        if (at >= obj.size() || obj[at] != '"')
            return false;
        const std::size_t end = obj.find('"', at + 1);
        if (end == std::string::npos)
            return false;
        out.push_back(obj.substr(at + 1, end - at - 1));
        at = end + 1;
        skipWs();
        if (at >= obj.size())
            return false;
        if (obj[at] == ']')
            return true;
        if (obj[at] != ',')
            return false;
        ++at;
    }
}

std::string
errorFrame(const std::string &message)
{
    return "{\"type\": \"error\", \"message\": \""
           + obs::jsonEscape(message) + "\"}";
}

/** Per-connection send state: one writer at a time, EPIPE latches. */
struct ClientLink
{
    int fd;
    std::mutex mtx;
    bool dead = false;

    void
    send(const std::string &json)
    {
        std::unique_lock<std::mutex> lock(mtx);
        if (dead)
            return;
        try {
            sendFrame(fd, json);
        } catch (const FatalError &err) {
            // The client went away; keep simulating (results still
            // land in the shared cache) but stop writing.
            VSIM_WARN("sweepd: client disconnected: ", err.what());
            dead = true;
        }
    }
};

} // namespace

// ---- server ------------------------------------------------------------

SweepServer::SweepServer(std::string socket_path, int workers,
                         RunCache *run_cache)
    : path(std::move(socket_path)),
      nWorkers(workers < 1 ? ThreadPool::defaultThreadCount() : workers),
      cache(run_cache)
{
    VSIM_ASSERT(cache != nullptr, "SweepServer needs a run cache");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        VSIM_FATAL("socket path too long (", path.size(), " > ",
                   sizeof(addr.sun_path) - 1, "): ", path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0)
        VSIM_FATAL("cannot create socket: ", std::strerror(errno));
    ::unlink(path.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr))
        != 0) {
        const int err = errno;
        ::close(listenFd);
        listenFd = -1;
        VSIM_FATAL("cannot bind ", path, ": ", std::strerror(err));
    }
    if (::listen(listenFd, 64) != 0) {
        const int err = errno;
        ::close(listenFd);
        listenFd = -1;
        VSIM_FATAL("cannot listen on ", path, ": ",
                   std::strerror(err));
    }
}

SweepServer::~SweepServer()
{
    if (listenFd >= 0)
        ::close(listenFd);
    ::unlink(path.c_str());
}

void
SweepServer::serve()
{
    ThreadPool pool(nWorkers);
    std::vector<std::thread> clients;
    while (!stopping.load()) {
        pollfd pfd{listenFd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            VSIM_FATAL("poll failed: ", std::strerror(errno));
        }
        if (ready == 0)
            continue;
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            VSIM_FATAL("accept failed: ", std::strerror(errno));
        }
        clients.emplace_back([this, fd, &pool] {
            handleClientOnPool(fd, pool);
        });
    }
    for (std::thread &t : clients)
        t.join();
}

void
SweepServer::handleClientOnPool(int fd, ThreadPool &pool)
{
    auto link = std::make_shared<ClientLink>();
    link->fd = fd;
    try {
        std::string request;
        while (!stopping.load() && recvFrame(fd, request)) {
            std::string type;
            if (!findString(request, "type", type)
                || type != "sweep") {
                link->send(errorFrame(
                    "malformed request: expected {\"type\": "
                    "\"sweep\", \"jobs\": [...]}"));
                break;
            }
            std::vector<std::string> encoded;
            if (!parseJobsArray(request, encoded)) {
                link->send(errorFrame(
                    "malformed request: bad \"jobs\" array"));
                break;
            }
            std::vector<SweepJob> jobs;
            jobs.reserve(encoded.size());
            try {
                for (const std::string &hex : encoded) {
                    const std::vector<std::uint8_t> bytes =
                        hexDecode(hex);
                    StateReader r(bytes.data(), bytes.size());
                    jobs.push_back(loadSweepJob(r));
                }
            } catch (const FatalError &err) {
                link->send(errorFrame(
                    std::string("malformed job encoding: ")
                    + err.what()));
                break;
            }

            // Fan the batch out on the shared pool; every cell
            // memoizes and dedupes through the shared RunCache, so
            // identical cells from concurrent clients simulate once.
            struct Batch
            {
                std::mutex mtx;
                std::condition_variable cv;
                std::size_t remaining;
                std::string firstError;
            };
            auto batch = std::make_shared<Batch>();
            batch->remaining = jobs.size();
            for (std::size_t i = 0; i < jobs.size(); ++i) {
                const SweepJob job = jobs[i];
                pool.submit([this, link, batch, job, i] {
                    try {
                        bool cached = false;
                        const RunResult result =
                            cache->getOrRun(job, &cached);
                        StateWriter w;
                        saveRunResult(w, result);
                        std::ostringstream os;
                        os << "{\"type\": \"result\", \"index\": " << i
                           << ", \"cached\": "
                           << (cached ? "true" : "false")
                           << ", \"data\": \"" << hexEncode(w.data())
                           << "\"}";
                        link->send(os.str());
                        served.fetch_add(1);
                    } catch (const std::exception &err) {
                        std::unique_lock<std::mutex> lock(batch->mtx);
                        if (batch->firstError.empty())
                            batch->firstError = err.what();
                    }
                    std::unique_lock<std::mutex> lock(batch->mtx);
                    if (--batch->remaining == 0)
                        batch->cv.notify_all();
                });
            }
            {
                std::unique_lock<std::mutex> lock(batch->mtx);
                batch->cv.wait(
                    lock, [&] { return batch->remaining == 0; });
            }
            if (!batch->firstError.empty()) {
                link->send(errorFrame(batch->firstError));
                break;
            }
            std::ostringstream os;
            os << "{\"type\": \"done\", \"cells\": " << jobs.size()
               << "}";
            link->send(os.str());
            if (link->dead)
                break;
        }
    } catch (const FatalError &err) {
        // Framing error or mid-frame disconnect: log and drop the
        // connection; other clients are unaffected.
        VSIM_WARN("sweepd: dropping client: ", err.what());
    }
    ::close(fd);
}

// ---- thin client -------------------------------------------------------

std::vector<ServerCell>
runSweepOverSocket(const std::string &socket_path,
                   const std::vector<SweepJob> &jobs, int timeout_ms)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socket_path.size() >= sizeof(addr.sun_path))
        VSIM_FATAL("socket path too long: ", socket_path);
    std::memcpy(addr.sun_path, socket_path.c_str(),
                socket_path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        VSIM_FATAL("cannot create socket: ", std::strerror(errno));
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr))
        != 0) {
        const int err = errno;
        ::close(fd);
        VSIM_FATAL("cannot connect to sweep daemon at ", socket_path,
                   ": ", std::strerror(err),
                   " (is vspec_sweepd running?)");
    }

    std::vector<ServerCell> cells(jobs.size());
    std::vector<bool> filled(jobs.size(), false);
    try {
        std::ostringstream req;
        req << "{\"type\": \"sweep\", \"jobs\": [";
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            StateWriter w;
            saveSweepJob(w, jobs[i]);
            req << (i ? ", " : "") << '"' << hexEncode(w.data())
                << '"';
        }
        req << "]}";
        sendFrame(fd, req.str());

        bool done = false;
        std::string frame;
        while (!done) {
            if (!recvFrame(fd, frame))
                VSIM_FATAL("sweep daemon closed the connection before "
                           "completing the batch");
            std::string type;
            if (!findString(frame, "type", type))
                VSIM_FATAL("sweep daemon sent an untyped frame");
            if (type == "error") {
                std::string message = "(no message)";
                findString(frame, "message", message);
                VSIM_FATAL("sweep daemon error: ", message);
            } else if (type == "done") {
                done = true;
            } else if (type == "result") {
                const std::string idx_needle = "\"index\":";
                const std::size_t at = frame.find(idx_needle);
                if (at == std::string::npos)
                    VSIM_FATAL("result frame without an index");
                const std::size_t index = static_cast<std::size_t>(
                    std::strtoull(frame.c_str() + at
                                      + idx_needle.size(),
                                  nullptr, 10));
                if (index >= jobs.size())
                    VSIM_FATAL("result index ", index,
                               " out of range (", jobs.size(),
                               " jobs)");
                std::string data;
                if (!findString(frame, "data", data))
                    VSIM_FATAL("result frame without data");
                const std::vector<std::uint8_t> bytes =
                    hexDecode(data);
                StateReader r(bytes.data(), bytes.size());
                cells[index].result = loadRunResult(r);
                cells[index].cached =
                    frame.find("\"cached\": true") != std::string::npos;
                filled[index] = true;
            } else {
                VSIM_FATAL("sweep daemon sent unknown frame type '",
                           type, "'");
            }
        }
    } catch (...) {
        ::close(fd);
        throw;
    }
    ::close(fd);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (!filled[i])
            VSIM_FATAL("sweep daemon reported done but cell ", i,
                       " never arrived");
    }
    return cells;
}

} // namespace vsim::sim
