/**
 * @file
 * Machine-readable result export: serialise a RunResult (or a whole
 * set of them) to JSON for plotting pipelines. Kept dependency-free —
 * the schema is flat and the writer is ~50 lines.
 */

#ifndef VSIM_SIM_REPORT_HH
#define VSIM_SIM_REPORT_HH

#include <string>
#include <vector>

#include "simulator.hh"

namespace vsim::sim
{

/** One run as a flat JSON object. */
std::string toJson(const RunResult &r);

/** A JSON array of runs (e.g. one sweep). */
std::string toJson(const std::vector<RunResult> &runs);

} // namespace vsim::sim

#endif // VSIM_SIM_REPORT_HH
