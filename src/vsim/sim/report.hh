/**
 * @file
 * Machine-readable result export: serialise a RunResult (or a whole
 * set of them) to JSON for plotting pipelines. Kept dependency-free —
 * the schema is flat and the writer is ~50 lines.
 */

#ifndef VSIM_SIM_REPORT_HH
#define VSIM_SIM_REPORT_HH

#include <string>
#include <vector>

#include "simulator.hh"
#include "sweep.hh"

namespace vsim::sim
{

/** One run as a flat JSON object. */
std::string toJson(const RunResult &r);

/** A JSON array of runs (e.g. one sweep). */
std::string toJson(const std::vector<RunResult> &runs);

/**
 * One sweep cell as a flat JSON object: the job's label, workload,
 * scale, machine and configuration tag followed by the run's stats.
 */
std::string toJson(const SweepJob &job, const RunResult &r);

/** A whole sweep (jobs and results index-aligned) as a JSON array. */
std::string toJson(const std::vector<SweepJob> &jobs,
                   const std::vector<RunResult> &results);

/**
 * A whole sweep as JSON with per-cell execution timing appended:
 * "wall_ms" (wall-clock of the cell, cache hits included) and
 * "inst_per_s" (simulation rate). Timing fields are host-dependent by
 * nature and must never enter digests or goldens.
 */
std::string toJson(const std::vector<SweepJob> &jobs,
                   const std::vector<RunResult> &results,
                   const std::vector<JobSpan> &spans);

/** The same sweep as CSV with a header row. */
std::string toCsv(const std::vector<SweepJob> &jobs,
                  const std::vector<RunResult> &results);

// ---- CPI stack / speculation ledger exports ---------------------------

/** One run's CPI stack as a human-readable table. */
std::string stacksText(const RunResult &r);

/** One run's CPI stack as a flat JSON object. */
std::string stacksJson(const RunResult &r);

/** Per-cell CPI stacks of a whole sweep as a JSON array. */
std::string stacksJson(const std::vector<SweepJob> &jobs,
                       const std::vector<RunResult> &results);

/**
 * One run's speculation ledger as JSON: aggregate lifecycle counters
 * (always collected) plus the detailed per-prediction records when
 * the run was configured with specLedger; at most @p limit records
 * are emitted (0 = no limit), with a "truncated" flag.
 */
std::string ledgerJson(const RunResult &r, std::size_t limit);

/** Speculation ledgers of a whole sweep as a JSON array. */
std::string ledgerJson(const std::vector<SweepJob> &jobs,
                       const std::vector<RunResult> &results,
                       std::size_t limit);

// ---- observability exports --------------------------------------------

/**
 * The full counter/histogram registry of one run as JSON: every
 * CoreStats field in self-describing form (name, description, unit,
 * value) plus the run's three latency/occupancy distributions.
 */
std::string countersJson(const RunResult &r);

/**
 * The same registry as a human-readable listing: one "name: value
 * unit" line per counter followed by one summary line per histogram
 * (count, mean, p50/p90/p99, min..max).
 */
std::string countersText(const RunResult &r);

/**
 * Interval time series of a whole sweep as CSV (one row per interval
 * per run, leading label/workload columns). Jobs whose config had
 * metricsInterval = 0 contribute no rows.
 */
std::string metricsToCsv(const std::vector<SweepJob> &jobs,
                         const std::vector<RunResult> &results);

/**
 * Sweep execution timeline as Chrome/Perfetto trace_event JSON: one
 * track per worker, one span per job, annotated with queue wait and
 * cache-hit status. Load the file in ui.perfetto.dev or
 * chrome://tracing.
 */
std::string sweepTraceJson(const std::vector<JobSpan> &spans);

/**
 * Write @p content to @p path; VSIM_FATAL if the file cannot be
 * opened or written.
 */
void writeFile(const std::string &path, const std::string &content);

} // namespace vsim::sim

#endif // VSIM_SIM_REPORT_HH
