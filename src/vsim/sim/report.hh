/**
 * @file
 * Machine-readable result export: serialise a RunResult (or a whole
 * set of them) to JSON for plotting pipelines. Kept dependency-free —
 * the schema is flat and the writer is ~50 lines.
 */

#ifndef VSIM_SIM_REPORT_HH
#define VSIM_SIM_REPORT_HH

#include <string>
#include <vector>

#include "simulator.hh"
#include "sweep.hh"

namespace vsim::sim
{

/** One run as a flat JSON object. */
std::string toJson(const RunResult &r);

/** A JSON array of runs (e.g. one sweep). */
std::string toJson(const std::vector<RunResult> &runs);

/**
 * One sweep cell as a flat JSON object: the job's label, workload,
 * scale, machine and configuration tag followed by the run's stats.
 */
std::string toJson(const SweepJob &job, const RunResult &r);

/** A whole sweep (jobs and results index-aligned) as a JSON array. */
std::string toJson(const std::vector<SweepJob> &jobs,
                   const std::vector<RunResult> &results);

/** The same sweep as CSV with a header row. */
std::string toCsv(const std::vector<SweepJob> &jobs,
                  const std::vector<RunResult> &results);

// ---- observability exports --------------------------------------------

/**
 * The full counter/histogram registry of one run as JSON: every
 * CoreStats field in self-describing form (name, description, unit,
 * value) plus the run's three latency/occupancy distributions.
 */
std::string countersJson(const RunResult &r);

/**
 * Interval time series of a whole sweep as CSV (one row per interval
 * per run, leading label/workload columns). Jobs whose config had
 * metricsInterval = 0 contribute no rows.
 */
std::string metricsToCsv(const std::vector<SweepJob> &jobs,
                         const std::vector<RunResult> &results);

/**
 * Sweep execution timeline as Chrome/Perfetto trace_event JSON: one
 * track per worker, one span per job, annotated with queue wait and
 * cache-hit status. Load the file in ui.perfetto.dev or
 * chrome://tracing.
 */
std::string sweepTraceJson(const std::vector<JobSpan> &spans);

/**
 * Write @p content to @p path; VSIM_FATAL if the file cannot be
 * opened or written.
 */
void writeFile(const std::string &path, const std::string &content);

} // namespace vsim::sim

#endif // VSIM_SIM_REPORT_HH
