/**
 * @file
 * Persistent, content-addressed on-disk extension of the RunCache.
 *
 * Every entry is one file named by the FNV-1a 64 hash of the job's
 * canonical fingerprint (jobKey) folded with a *build fingerprint* —
 * a hash of every source file, the compiler version and the build
 * flags — so a rebuilt simulator can never serve results recorded by
 * a different binary: stale entries simply live under names the new
 * build never computes.
 *
 * Entry format (all little-endian, via vsim::StateWriter):
 *
 *   "VSRC"                        magic tag
 *   u64  format version           kDiskFormatVersion
 *   u64  build fingerprint        redundant with the file name; guards
 *                                 manual renames / copied cache dirs
 *   str  jobKey                   full key, guards FNV collisions
 *   RunResult payload             saveRunResult byte stream
 *   u64  FNV-1a checksum          over everything above
 *
 * Writes are atomic (temp file + rename in the same directory), so
 * concurrent processes sharing a cache directory race benignly: both
 * write the same bytes, the second rename wins. Reads treat *any*
 * defect — short file, bad checksum, tag mismatch, truncated payload —
 * as a miss and evict the entry rather than crash; a mismatched
 * fingerprint or jobKey is a plain miss (the entry belongs to someone
 * else and is left alone).
 */

#ifndef VSIM_SIM_DISK_CACHE_HH
#define VSIM_SIM_DISK_CACHE_HH

#include <cstdint>
#include <string>

#include "simulator.hh"

namespace vsim
{
class StateWriter;
class StateReader;
} // namespace vsim

namespace vsim::sim
{

/** Bump when the entry layout or the RunResult codec changes. */
constexpr std::uint64_t kDiskFormatVersion = 1;

/**
 * Serialize @p r (stats, CPI stack, histograms, intervals, ledger)
 * into @p w. The stream is self-delimiting; loadRunResult reads it
 * back bit-identically. Shared by the disk cache and the sweep
 * daemon's wire protocol.
 */
void saveRunResult(StateWriter &w, const RunResult &r);

/** Inverse of saveRunResult; VSIM_FATAL (catchable) on corrupt input. */
RunResult loadRunResult(StateReader &r);

/** Directory-backed store of finished runs, keyed by jobKey string. */
class DiskRunCache
{
  public:
    /**
     * Open (creating if needed) the store at @p dir. @p fingerprint
     * defaults to this binary's build fingerprint; tests override it
     * to model a rebuilt binary. VSIM_FATAL when the directory cannot
     * be created.
     */
    explicit DiskRunCache(std::string dir,
                          std::uint64_t fingerprint = buildFingerprint());

    /**
     * Look up @p key. True and fills @p out on a valid entry; false on
     * absence, on another build's entry, or on a corrupt entry (which
     * is unlinked and warned about).
     */
    bool load(const std::string &key, RunResult &out);

    /**
     * Persist @p result under @p key (atomic temp-file + rename).
     * Failures are warned about, never fatal: a full disk degrades the
     * cache to a no-op, it does not kill the sweep.
     */
    void store(const std::string &key, const RunResult &result);

    /** Entry file path for @p key (name = hash(key, fingerprint)). */
    std::string entryPath(const std::string &key) const;

    /**
     * Cap the total size of the directory's *.vsr entries at
     * @p maxBytes (0, the default, means unlimited). Enforced after
     * every successful store(): entries are evicted oldest-mtime-first
     * until the total fits, each eviction logged at warning level.
     * load() refreshes a hit's mtime, so the order is true LRU, not
     * insertion order. Entries from other builds share the directory
     * and the budget — an old build's cold entries are exactly what
     * the budget is meant to reclaim.
     */
    void setMaxBytes(std::uint64_t maxBytes) { maxBytes_ = maxBytes; }
    std::uint64_t maxBytes() const { return maxBytes_; }

    const std::string &dir() const { return dir_; }
    std::uint64_t fingerprint() const { return fingerprint_; }

    /**
     * Fingerprint of this binary: FNV-1a over the source-tree hash
     * (generated at build time), the compiler version string, the
     * build flags, and kDiskFormatVersion.
     */
    static std::uint64_t buildFingerprint();

  private:
    /** Evict oldest-mtime entries until the directory fits the budget. */
    void enforceBudget();

    std::string dir_;
    std::uint64_t fingerprint_;
    std::uint64_t maxBytes_ = 0;
};

} // namespace vsim::sim

#endif // VSIM_SIM_DISK_CACHE_HH
