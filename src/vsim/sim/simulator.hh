/**
 * @file
 * High-level experiment driver: builds a workload, runs it through the
 * out-of-order core, and aggregates results the way the paper reports
 * them (harmonic-mean speedups over the benchmark suite, Fig. 3;
 * arithmetic-mean prediction-rate breakdowns, Fig. 4).
 */

#ifndef VSIM_SIM_SIMULATOR_HH
#define VSIM_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vsim/core/core_config.hh"
#include "vsim/core/core_stats.hh"
#include "vsim/core/spec_model.hh"
#include "vsim/obs/interval.hh"
#include "vsim/obs/ledger.hh"

namespace vsim::sim
{

/** One of the paper's three machine sizes (issue width / window). */
struct MachineConfig
{
    int issueWidth;
    int windowSize;

    std::string
    label() const
    {
        return std::to_string(issueWidth) + "/"
               + std::to_string(windowSize);
    }
};

/** The paper's §6 configurations: 4/24, 8/48 and 16/96. */
std::vector<MachineConfig> paperMachines();

/** Base-processor configuration (no value prediction). */
core::CoreConfig baseConfig(const MachineConfig &m);

/**
 * Value-speculation configuration for a machine size, speculative
 * execution model, confidence mode and predictor update timing
 * (paper notation: D/R, I/R, D/O, I/O).
 */
core::CoreConfig vpConfig(const MachineConfig &m,
                          const core::SpecModel &model,
                          core::ConfidenceKind confidence,
                          core::UpdateTiming timing);

/** Short label for a confidence/timing pair, e.g. "D/R". */
std::string timingConfLabel(core::UpdateTiming timing,
                            core::ConfidenceKind confidence);

/** Result of one simulation run. */
struct RunResult
{
    std::string workload;
    core::CoreStats stats;
    std::uint64_t instructions = 0; //!< committed instructions
    double ipc = 0.0;
    std::uint64_t exitCode = 0;
    std::string output; //!< anything the program printed
    /** Interval time series (empty unless cfg.metricsInterval). */
    obs::IntervalSeries intervals;
    /** Per-prediction lifecycle records (empty unless cfg.specLedger). */
    obs::SpecLedger ledger;
};

/**
 * Workload names with this prefix are trace replays: the rest of the
 * name is a .vst file path (see vsim/trace). Such runs skip the
 * assembler and the functional pre-execution entirely; scale is
 * ignored (the trace fixes the dynamic instruction stream).
 */
constexpr const char kTraceWorkloadPrefix[] = "trace:";

/** True when @p name names a recorded trace, not a built-in kernel. */
bool isTraceWorkload(const std::string &name);

/** "trace:<path>" for @p path (the workload name of a trace replay). */
std::string traceWorkloadName(const std::string &path);

/** The .vst path behind a trace workload name. */
std::string traceWorkloadPath(const std::string &name);

/**
 * Build workload @p name at @p scale (-1 = default) and run it under
 * @p cfg. Correctness against the functional model is enforced inside
 * the core. A "trace:<path>" name replays the recorded trace instead
 * of building a kernel.
 */
RunResult runWorkload(const std::string &name, int scale,
                      const core::CoreConfig &cfg);

/**
 * Speedup of @p vp over @p base (cycles ratio); both runs must be of
 * the same workload and scale.
 */
double speedup(const RunResult &base, const RunResult &vp);

} // namespace vsim::sim

#endif // VSIM_SIM_SIMULATOR_HH
