/**
 * @file
 * Parallel sweep engine. Every figure and ablation in the
 * reproduction is a cross-product of (workload × machine × model ×
 * confidence/timing) whose cells are completely independent
 * simulations; the SweepRunner executes such a declarative job list
 * on a fixed-size worker pool and returns results in job order, so
 * callers get the throughput of the hardware with the output of the
 * serial loop.
 *
 * Determinism: each simulation owns all of its state (core, caches,
 * predictors, RNG), so an N-thread sweep is bit-identical to the
 * serial sweep — results depend only on the job, never on scheduling.
 *
 * The process-wide RunCache memoises finished runs by a canonical
 * fingerprint of (workload, scale, full CoreConfig), replacing the
 * per-binary base-run caches the bench drivers used to carry; it also
 * dedupes *in-flight* runs, so two workers asking for the same cell
 * simulate it once and share the result.
 */

#ifndef VSIM_SIM_SWEEP_HH
#define VSIM_SIM_SWEEP_HH

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "simulator.hh"

namespace vsim::sim
{

class DiskRunCache; // disk_cache.hh

/** One cell of a sweep: a workload run under one configuration. */
struct SweepJob
{
    std::string label; //!< caller tag, carried into tables/JSON/CSV
    std::string workload;
    int scale = -1; //!< -1 = per-workload default
    core::CoreConfig cfg;
};

/**
 * Canonical fingerprint of the *simulation inputs* of a job (workload,
 * scale, every timing-relevant CoreConfig field, plus the
 * metrics-interval setting, whose time series rides in the
 * RunResult). Two jobs with equal keys produce bit-identical
 * RunResults; the label is excluded.
 */
std::string jobKey(const SweepJob &job);

/**
 * Execution record of one sweep cell: which worker ran it, when it
 * was submitted / started / finished (nanoseconds relative to the
 * start of SweepRunner::run), and whether the run cache satisfied it
 * without simulating. Feeds the Perfetto trace export
 * (sweepTraceJson in report.hh).
 */
struct JobSpan
{
    std::size_t index = 0; //!< position in the job list
    std::string label;
    std::string workload;
    int worker = 0; //!< 0-based pool worker; -1 = caller thread
    std::uint64_t submitNs = 0;
    std::uint64_t startNs = 0;
    std::uint64_t endNs = 0;
    bool cacheHit = false;
};

/** Thread-safe memoizing cache of finished (and in-flight) runs. */
class RunCache
{
  public:
    RunCache() = default;
    RunCache(const RunCache &) = delete;
    RunCache &operator=(const RunCache &) = delete;

    /** The process-wide instance shared by every driver. */
    static RunCache &process();

    /**
     * Return the cached result for @p job, or simulate it (running at
     * most once per key even under concurrent callers — late arrivals
     * block on the in-flight run). Lookup order is memory → attached
     * disk store → simulate. Errors are rethrown to every caller
     * blocked on the failing key, and the key itself is released —
     * a failure is never memoized, so a later retry simulates again.
     * When @p cache_hit is non-null it is set to whether the run was
     * satisfied without simulating (a blocking wait on an in-flight
     * run and a disk-store hit both count).
     */
    RunResult getOrRun(const SweepJob &job, bool *cache_hit = nullptr);

    /**
     * Attach a persistent disk store (nullptr detaches). Subsequent
     * misses consult the store before simulating and write their
     * results back to it.
     */
    void attachDisk(std::shared_ptr<DiskRunCache> disk);
    std::shared_ptr<DiskRunCache> disk() const;

    std::uint64_t hits() const;
    std::uint64_t misses() const;
    /** Misses satisfied from the attached disk store. */
    std::uint64_t diskHits() const;
    std::size_t size() const;
    void clear();

  private:
    mutable std::mutex mtx;
    std::map<std::string, std::shared_future<RunResult>> entries;
    std::shared_ptr<DiskRunCache> diskCache;
    std::uint64_t nHits = 0;
    std::uint64_t nMisses = 0;
    std::uint64_t nDiskHits = 0;
};

/** Executes job lists on a worker pool, memoizing through a RunCache. */
class SweepRunner
{
  public:
    /**
     * @param jobs   worker threads; <= 1 runs serially on the caller's
     *               thread. The default is one per hardware thread.
     * @param cache  run cache to memoize through (default: the
     *               process-wide cache); nullptr disables memoization.
     */
    explicit SweepRunner(int jobs = defaultJobs(),
                         RunCache *cache = &RunCache::process());

    /**
     * Run every job, in parallel up to the worker count, and return
     * results indexed exactly like @p jobs regardless of completion
     * order. If any job fails, the error of the earliest failing job
     * is rethrown after the pool drains.
     */
    std::vector<RunResult> run(const std::vector<SweepJob> &jobs);

    int jobCount() const { return nJobs; }

    /**
     * Emit one atomic "[k/N] label (workload)" stderr line per
     * finished job (completion order, "[cached]" suffix on cache
     * hits). Off by default; simulation results are unaffected.
     */
    void setProgress(bool on) { progress = on; }

    /**
     * Record one JobSpan per job into @p sink (cleared and resized by
     * run()). nullptr (the default) disables span collection and its
     * clock reads.
     */
    void setSpanSink(std::vector<JobSpan> *sink) { spans = sink; }

    /** Default worker count: one per hardware thread. */
    static int defaultJobs();

  private:
    RunResult runOne(const SweepJob &job, bool *cache_hit);

    int nJobs;
    RunCache *cache;
    bool progress = false;
    std::vector<JobSpan> *spans = nullptr;
};

// ---- shared sweep vocabulary ------------------------------------------

/** The suite (8 workloads), or the 3-workload smoke set if @p quick. */
std::vector<std::string> sweepWorkloads(bool quick);

struct SweepOptions; // below

/**
 * The workload list a named sweep should iterate: the explicit
 * override list (e.g. "trace:<path>" entries from --trace) when
 * non-empty, else the built-in suite per @p opt.quick.
 */
std::vector<std::string> sweepWorkloads(const SweepOptions &opt);

/** The paper's machine grid, or just the 8/48 machine if @p quick. */
std::vector<MachineConfig> sweepMachines(bool quick);

/** Human-readable configuration tag: "base" or "<model> <D/R>". */
std::string configLabel(const core::CoreConfig &cfg);

// ---- named sweeps (tools/vspec_sweep) ---------------------------------

struct SweepOptions
{
    bool quick = false;
    int scale = -1;
    /**
     * When non-empty, replaces the built-in workload suite in every
     * named sweep — the vehicle for sweeping recorded traces
     * ("trace:<path>" names) through any figure's configuration grid.
     */
    std::vector<std::string> workloads;
};

/** A named, reusable job-list builder (one per figure/ablation). */
struct NamedSweep
{
    std::string name;
    std::string description;
    std::function<std::vector<SweepJob>(const SweepOptions &)> build;
};

/** Registry of the built-in sweeps. */
const std::vector<NamedSweep> &namedSweeps();

/** Look up a named sweep; VSIM_FATAL on unknown names. */
const NamedSweep &sweepByName(const std::string &name);

} // namespace vsim::sim

#endif // VSIM_SIM_SWEEP_HH
