#include "sample.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "vsim/base/logging.hh"

namespace vsim::sim
{

namespace
{

constexpr std::size_t kDim = arch::kBbvDim;
constexpr int kMaxLloydIters = 64;

using Point = std::array<double, kDim>;

/** SplitMix64: tiny, seedable, identical on every host. */
struct SplitMix64
{
    std::uint64_t s;

    std::uint64_t
    next()
    {
        std::uint64_t z = (s += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }
};

double
sqDist(const Point &a, const Point &b)
{
    double d = 0.0;
    for (std::size_t i = 0; i < kDim; ++i) {
        const double t = a[i] - b[i];
        d += t * t;
    }
    return d;
}

/** L1-normalize the integer BBVs onto the probability simplex. */
std::vector<Point>
normalize(const std::vector<arch::Bbv> &bbvs)
{
    std::vector<Point> pts(bbvs.size());
    for (std::size_t i = 0; i < bbvs.size(); ++i) {
        std::uint64_t total = 0;
        for (const std::uint64_t c : bbvs[i])
            total += c;
        Point &p = pts[i];
        if (total == 0) {
            p.fill(0.0);
            continue;
        }
        for (std::size_t j = 0; j < kDim; ++j)
            p[j] = static_cast<double>(bbvs[i][j])
                   / static_cast<double>(total);
    }
    return pts;
}

struct KMeansResult
{
    std::vector<std::uint32_t> assignment;
    std::vector<Point> centroids;
    std::vector<std::uint64_t> population;
    double distortion = 0.0;
};

/** Nearest centroid of @p p; ties go to the lowest index. */
std::uint32_t
nearest(const std::vector<Point> &centroids, const Point &p)
{
    std::uint32_t best = 0;
    double bestD = std::numeric_limits<double>::infinity();
    for (std::uint32_t c = 0; c < centroids.size(); ++c) {
        const double d = sqDist(centroids[c], p);
        if (d < bestD) {
            bestD = d;
            best = c;
        }
    }
    return best;
}

/** Seeded Lloyd's k-means; deterministic for fixed inputs. Requires
 *  0 < k <= n. */
KMeansResult
kmeans(const std::vector<Point> &pts, std::size_t k, std::uint64_t seed)
{
    const std::size_t n = pts.size();
    VSIM_ASSERT(k > 0 && k <= n, "k-means needs 0 < k <= n");

    KMeansResult r;
    r.centroids.reserve(k);
    // Initialize with k distinct input points drawn from the seeded
    // stream (distinct *indices*; coincident points merely start two
    // centroids in the same place, which Lloyd resolves).
    SplitMix64 rng{seed};
    std::vector<bool> taken(n, false);
    while (r.centroids.size() < k) {
        const std::size_t i =
            static_cast<std::size_t>(rng.next() % n);
        if (taken[i])
            continue;
        taken[i] = true;
        r.centroids.push_back(pts[i]);
    }

    r.assignment.assign(n, 0);
    r.population.assign(k, 0);
    for (int iter = 0; iter < kMaxLloydIters; ++iter) {
        // Assignment step.
        bool changed = iter == 0;
        std::fill(r.population.begin(), r.population.end(), 0);
        for (std::size_t i = 0; i < n; ++i) {
            const std::uint32_t c = nearest(r.centroids, pts[i]);
            if (c != r.assignment[i]) {
                r.assignment[i] = c;
                changed = true;
            }
            ++r.population[c];
        }
        // Reseed any emptied cluster with the point farthest from its
        // current centroid (ties toward the lowest index) and redo
        // the assignment on the next iteration.
        bool reseeded = false;
        for (std::uint32_t c = 0; c < k; ++c) {
            if (r.population[c] > 0)
                continue;
            std::size_t far = 0;
            double farD = -1.0;
            for (std::size_t i = 0; i < n; ++i) {
                const double d =
                    sqDist(r.centroids[r.assignment[i]], pts[i]);
                if (d > farD) {
                    farD = d;
                    far = i;
                }
            }
            r.centroids[c] = pts[far];
            reseeded = true;
        }
        if (reseeded)
            continue;
        if (!changed)
            break;
        // Update step: centroids move to their members' mean.
        std::vector<Point> sums(k);
        for (Point &s : sums)
            s.fill(0.0);
        for (std::size_t i = 0; i < n; ++i) {
            const Point &p = pts[i];
            Point &s = sums[r.assignment[i]];
            for (std::size_t j = 0; j < kDim; ++j)
                s[j] += p[j];
        }
        for (std::uint32_t c = 0; c < k; ++c)
            for (std::size_t j = 0; j < kDim; ++j)
                r.centroids[c][j] =
                    sums[c][j] / static_cast<double>(r.population[c]);
    }

    r.distortion = 0.0;
    for (std::size_t i = 0; i < n; ++i)
        r.distortion += sqDist(r.centroids[r.assignment[i]], pts[i]);
    return r;
}

/**
 * X-means spherical-Gaussian BIC (Pelleg & Moore, 2000): the
 * max-likelihood estimate of the shared spherical variance is
 * distortion / (d * (n - k)), and the model has k*(d+1) free
 * parameters (centroids plus mixing weights). Larger is better.
 */
double
bicScore(const KMeansResult &r, std::size_t n, std::size_t k)
{
    const double d = static_cast<double>(kDim);
    const double nn = static_cast<double>(n);
    // Perfect (or numerically perfect) clusterings get the variance
    // floor: the likelihood term saturates instead of diverging.
    const double var = std::max(
        r.distortion / (d * static_cast<double>(n - k)), 1e-12);
    double loglik = -nn * d / 2.0 * std::log(2.0 * M_PI * var)
                    - static_cast<double>(n - k) * d / 2.0;
    for (const std::uint64_t pop : r.population) {
        const double p = static_cast<double>(pop);
        loglik += p * std::log(p / nn);
    }
    const double params = static_cast<double>(k) * (d + 1.0);
    return loglik - params / 2.0 * std::log(nn);
}

/** One singleton cluster per interval: the full-detail fallback. */
SamplePlan
fullDetailPlan(std::size_t n)
{
    SamplePlan plan;
    plan.assignment.resize(n);
    plan.representatives.resize(n);
    plan.weights.assign(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        plan.assignment[i] = static_cast<std::uint32_t>(i);
        plan.representatives[i] = i;
    }
    return plan;
}

} // namespace

SamplePlan
clusterIntervals(const std::vector<arch::Bbv> &bbvs, std::uint64_t maxK,
                 std::uint64_t seed)
{
    const std::size_t n = bbvs.size();
    if (maxK == 0 || maxK >= n)
        return fullDetailPlan(n);

    const std::vector<Point> pts = normalize(bbvs);

    // Score k = 1..maxK and keep every candidate clustering: the
    // chosen k is the smallest whose BIC reaches 90% of the score
    // span (max - min) above the minimum — the SimPoint elbow rule,
    // scale-free so negative log-likelihoods compare correctly.
    std::vector<KMeansResult> runs;
    std::vector<double> scores;
    runs.reserve(static_cast<std::size_t>(maxK));
    for (std::size_t k = 1; k <= maxK; ++k) {
        runs.push_back(kmeans(pts, k, seed));
        scores.push_back(bicScore(runs.back(), n, k));
    }
    const double hi = *std::max_element(scores.begin(), scores.end());
    const double lo = *std::min_element(scores.begin(), scores.end());
    const double cutoff = lo + 0.9 * (hi - lo);
    std::size_t chosen = scores.size() - 1;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] >= cutoff) {
            chosen = i;
            break;
        }
    }
    const KMeansResult &best = runs[chosen];
    const std::size_t k = chosen + 1;

    SamplePlan plan;
    plan.assignment = best.assignment;
    plan.weights = best.population;
    plan.representatives.assign(k, 0);
    // Representative: the member closest to its centroid; the
    // ascending scan makes ties fall to the lowest interval index.
    std::vector<double> bestD(
        k, std::numeric_limits<double>::infinity());
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t c = best.assignment[i];
        const double d = sqDist(best.centroids[c], pts[i]);
        if (d < bestD[c]) {
            bestD[c] = d;
            plan.representatives[c] = i;
        }
    }
    return plan;
}

} // namespace vsim::sim
