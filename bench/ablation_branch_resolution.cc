/**
 * @file
 * Ablation F (paper §3.2, after Sodani & Sohi [38]): branch resolution
 * policy — branches resolved only with *valid* operands (the paper's
 * evaluated configuration; mispredicted values never redirect fetch,
 * but branches wait for verification + verifyToBranch) versus branches
 * resolved with *speculative/predicted* operands (faster resolution,
 * but value mispredictions can trigger spurious squashes).
 *
 * Compared under real and oracle confidence on the 8/48 machine with
 * the great model. With accurate confidence the speculative policy
 * should be competitive (few value-mispredicted redirects); with
 * aggressive speculation it pays for the extra squashes.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::BaseRuns base_runs(opt);
    const sim::MachineConfig m{8, 48};

    for (ConfidenceKind conf :
         {ConfidenceKind::Real, ConfidenceKind::Oracle}) {
        std::printf("== Ablation: branch resolution policy (8/48, "
                    "great, %s confidence, immediate update) ==\n\n",
                    conf == ConfidenceKind::Real ? "real" : "oracle");
        TextTable table;
        table.setHeader({"workload", "valid-only", "speculative",
                         "squashes(valid)", "squashes(spec)"});

        std::vector<double> sp_valid, sp_spec;
        for (const std::string &wname : bench::workloadNames(opt)) {
            SpecModel valid_model = SpecModel::greatModel();
            const auto vr = sim::runWorkload(
                wname, opt.scale,
                sim::vpConfig(m, valid_model, conf,
                              UpdateTiming::Immediate));

            SpecModel spec_model = SpecModel::greatModel();
            spec_model.branchNeedsValidOps = false;
            const auto sr = sim::runWorkload(
                wname, opt.scale,
                sim::vpConfig(m, spec_model, conf,
                              UpdateTiming::Immediate));

            const auto &base = base_runs.get(m, wname);
            const double v = sim::speedup(base, vr);
            const double s = sim::speedup(base, sr);
            sp_valid.push_back(v);
            sp_spec.push_back(s);
            table.addRow({wname, TextTable::fmt(v, 3),
                          TextTable::fmt(s, 3),
                          std::to_string(vr.stats.squashes),
                          std::to_string(sr.stats.squashes)});
        }
        table.addRow({"(hmean)", TextTable::fmt(harmonicMean(sp_valid), 3),
                      TextTable::fmt(harmonicMean(sp_spec), 3), "", ""});
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
