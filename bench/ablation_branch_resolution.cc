/**
 * @file
 * Ablation F (paper §3.2, after Sodani & Sohi [38]): branch resolution
 * policy — branches resolved only with *valid* operands (the paper's
 * evaluated configuration; mispredicted values never redirect fetch,
 * but branches wait for verification + verifyToBranch) versus branches
 * resolved with *speculative/predicted* operands (faster resolution,
 * but value mispredictions can trigger spurious squashes).
 *
 * Compared under real and oracle confidence on the 8/48 machine with
 * the great model. With accurate confidence the speculative policy
 * should be competitive (few value-mispredicted redirects); with
 * aggressive speculation it pays for the extra squashes.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};
    const ConfidenceKind confs[] = {ConfidenceKind::Real,
                                    ConfidenceKind::Oracle};

    bench::Sweep sweep(opt);
    const auto wnames = bench::workloadNames(opt);
    std::vector<int> base_idx;
    // valid_idx/spec_idx[conf][workload]
    std::vector<std::vector<int>> valid_idx(2), spec_idx(2);
    for (const std::string &wname : wnames)
        base_idx.push_back(sweep.addBase(m, wname));
    for (std::size_t c = 0; c < 2; ++c) {
        for (const std::string &wname : wnames) {
            SpecModel valid_model = SpecModel::greatModel();
            valid_idx[c].push_back(sweep.add(
                m, wname,
                sim::vpConfig(m, valid_model, confs[c],
                              UpdateTiming::Immediate)));

            SpecModel spec_model = SpecModel::greatModel();
            spec_model.branchNeedsValidOps = false;
            spec_idx[c].push_back(sweep.add(
                m, wname,
                sim::vpConfig(m, spec_model, confs[c],
                              UpdateTiming::Immediate),
                m.label() + " spec-branch"));
        }
    }
    sweep.run();

    for (std::size_t c = 0; c < 2; ++c) {
        std::printf("== Ablation: branch resolution policy (8/48, "
                    "great, %s confidence, immediate update) ==\n\n",
                    confs[c] == ConfidenceKind::Real ? "real"
                                                     : "oracle");
        TextTable table;
        table.setHeader({"workload", "valid-only", "speculative",
                         "squashes(valid)", "squashes(spec)"});

        std::vector<double> sp_valid, sp_spec;
        for (std::size_t w = 0; w < wnames.size(); ++w) {
            const auto &vr = sweep.at(valid_idx[c][w]);
            const auto &sr = sweep.at(spec_idx[c][w]);
            const double v = sweep.speedup(base_idx[w], valid_idx[c][w]);
            const double s = sweep.speedup(base_idx[w], spec_idx[c][w]);
            sp_valid.push_back(v);
            sp_spec.push_back(s);
            table.addRow({wnames[w], TextTable::fmt(v, 3),
                          TextTable::fmt(s, 3),
                          std::to_string(vr.stats.squashes),
                          std::to_string(sr.stats.squashes)});
        }
        table.addRow({"(hmean)", TextTable::fmt(harmonicMean(sp_valid), 3),
                      TextTable::fmt(harmonicMean(sp_spec), 3), "", ""});
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
