/**
 * @file
 * Ablation C (paper §6): the Invalidation–Reissue latency swept 0–4
 * under *always* confidence — every prediction is speculated on, so
 * misspeculation is frequent and the reissue path is exposed. The
 * paper observed that with real confidence the 1-cycle reissue of the
 * great model is "underutilized" because misspeculation is rare, and
 * conjectured the gap would widen with more misspeculation; this
 * experiment realises that conjecture.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};
    const int lats[] = {0, 1, 2, 4};
    const ConfidenceKind confs[] = {ConfidenceKind::Always,
                                    ConfidenceKind::Real};

    bench::Sweep sweep(opt);
    std::vector<int> base_idx;
    for (const std::string &wname : bench::workloadNames(opt))
        base_idx.push_back(sweep.addBase(m, wname));
    // vp_idx[conf][lat][workload]
    std::vector<std::vector<std::vector<int>>> vp_idx(2);
    for (std::size_t c = 0; c < 2; ++c) {
        vp_idx[c].resize(4);
        for (std::size_t i = 0; i < 4; ++i) {
            for (const std::string &wname : bench::workloadNames(opt)) {
                SpecModel model = SpecModel::greatModel();
                model.invalidateToReissue = lats[i];
                vp_idx[c][i].push_back(sweep.add(
                    m, wname,
                    sim::vpConfig(m, model, confs[c],
                                  UpdateTiming::Immediate)));
            }
        }
    }
    sweep.run();

    for (std::size_t c = 0; c < 2; ++c) {
        std::printf("== Ablation: Invalidation-Reissue latency sweep "
                    "(8/48, %s confidence, immediate update) ==\n\n",
                    confs[c] == ConfidenceKind::Always ? "always"
                                                       : "real");
        TextTable table;
        table.setHeader({"workload", "lat=0", "lat=1", "lat=2",
                         "lat=4"});

        const auto wnames = bench::workloadNames(opt);
        std::vector<std::vector<double>> per_lat(4);
        for (std::size_t w = 0; w < wnames.size(); ++w) {
            std::vector<std::string> row = {wnames[w]};
            for (std::size_t i = 0; i < 4; ++i) {
                const double sp =
                    sweep.speedup(base_idx[w], vp_idx[c][i][w]);
                per_lat[i].push_back(sp);
                row.push_back(TextTable::fmt(sp, 3));
            }
            table.addRow(row);
        }
        std::vector<std::string> mean_row = {"(hmean)"};
        for (const auto &sp : per_lat)
            mean_row.push_back(TextTable::fmt(harmonicMean(sp), 3));
        table.addRow(mean_row);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
