/**
 * @file
 * Ablation C (paper §6): the Invalidation–Reissue latency swept 0–4
 * under *always* confidence — every prediction is speculated on, so
 * misspeculation is frequent and the reissue path is exposed. The
 * paper observed that with real confidence the 1-cycle reissue of the
 * great model is "underutilized" because misspeculation is rare, and
 * conjectured the gap would widen with more misspeculation; this
 * experiment realises that conjecture.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::BaseRuns base_runs(opt);
    const sim::MachineConfig m{8, 48};

    for (ConfidenceKind conf :
         {ConfidenceKind::Always, ConfidenceKind::Real}) {
        std::printf("== Ablation: Invalidation-Reissue latency sweep "
                    "(8/48, %s confidence, immediate update) ==\n\n",
                    conf == ConfidenceKind::Always ? "always" : "real");
        TextTable table;
        table.setHeader({"workload", "lat=0", "lat=1", "lat=2",
                         "lat=4"});
        const int lats[] = {0, 1, 2, 4};

        std::vector<std::vector<double>> per_lat(4);
        for (const std::string &wname : bench::workloadNames(opt)) {
            std::vector<std::string> row = {wname};
            for (std::size_t i = 0; i < 4; ++i) {
                SpecModel model = SpecModel::greatModel();
                model.invalidateToReissue = lats[i];
                const auto vp = sim::runWorkload(
                    wname, opt.scale,
                    sim::vpConfig(m, model, conf,
                                  UpdateTiming::Immediate));
                const double sp =
                    sim::speedup(base_runs.get(m, wname), vp);
                per_lat[i].push_back(sp);
                row.push_back(TextTable::fmt(sp, 3));
            }
            table.addRow(row);
        }
        std::vector<std::string> mean_row = {"(hmean)"};
        for (const auto &sp : per_lat)
            mean_row.push_back(TextTable::fmt(harmonicMean(sp), 3));
        table.addRow(mean_row);
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
