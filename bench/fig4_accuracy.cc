/**
 * @file
 * Reproduces **Figure 4** of the paper: average prediction-accuracy
 * breakdown for the great model under real confidence, per machine
 * size and update timing. Predictions of committed instructions are
 * classified as
 *   CH  correct,   high confidence
 *   CL  correct,   low  confidence
 *   IH  incorrect, high confidence
 *   IL  incorrect, low  confidence
 * and averaged arithmetically over the workloads (paper §5.1).
 *
 * Expected shape (paper §6): 63-71 % of predictions correct; IH below
 * 1 % (the resetting counters suppress misspeculation) at the cost of
 * a large CL set (20-25 %); accuracy drops with delayed updates and
 * larger windows.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);

    // Enqueue the whole grid, run it in one parallel sweep.
    bench::Sweep sweep(opt);
    std::vector<int> indices;
    for (const auto &m : bench::machines(opt))
        for (UpdateTiming timing :
             {UpdateTiming::Delayed, UpdateTiming::Immediate})
            for (const std::string &wname : bench::workloadNames(opt))
                indices.push_back(sweep.add(
                    m, wname,
                    sim::vpConfig(m, SpecModel::greatModel(),
                                  ConfidenceKind::Real, timing)));
    sweep.run();

    std::printf("== Figure 4: Average prediction accuracy (great "
                "model, real confidence) ==\n\n");

    TextTable table;
    table.setHeader({"config", "timing", "CH %", "CL %", "IH %", "IL %",
                     "correct %"});

    std::size_t next = 0;
    for (const auto &m : bench::machines(opt)) {
        for (UpdateTiming timing :
             {UpdateTiming::Delayed, UpdateTiming::Immediate}) {
            std::vector<double> ch, cl, ih, il;
            for (const std::string &wname : bench::workloadNames(opt)) {
                (void)wname;
                const auto &run = sweep.at(indices[next++]);
                ch.push_back(bench::pct(run.stats.vpCH,
                                        run.stats.vpEligible));
                cl.push_back(bench::pct(run.stats.vpCL,
                                        run.stats.vpEligible));
                ih.push_back(bench::pct(run.stats.vpIH,
                                        run.stats.vpEligible));
                il.push_back(bench::pct(run.stats.vpIL,
                                        run.stats.vpEligible));
            }
            const double mch = arithmeticMean(ch);
            const double mcl = arithmeticMean(cl);
            const double mih = arithmeticMean(ih);
            const double mil = arithmeticMean(il);
            table.addRow({m.label(),
                          timing == UpdateTiming::Delayed ? "D" : "I",
                          TextTable::fmt(mch, 1), TextTable::fmt(mcl, 1),
                          TextTable::fmt(mih, 2), TextTable::fmt(mil, 1),
                          TextTable::fmt(mch + mcl, 1)});
        }
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
