/**
 * @file
 * Reproduces **Table 1** of the paper: benchmark characteristics —
 * dynamic instruction count and the percentage of instructions that
 * are value-predicted (here: per committed instruction, the fraction
 * eligible for value prediction, i.e. register-writing non-control).
 *
 * The paper's SPECint95 rows (40–203 M instructions, 61.7–82.0 %
 * predicted) are replaced by the eight open substitutes at laptop
 * scale; see DESIGN.md §2 for the mapping.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vsim/arch/functional_core.hh"
#include "vsim/base/stats.hh"
#include "vsim/core/spec_model.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    const bench::Options opt = bench::parseOptions(argc, argv);

    // Prediction eligibility from value-speculative runs (great
    // model, delayed update, real confidence: the D/R baseline), all
    // executed in one parallel sweep.
    const sim::MachineConfig m{8, 48};
    bench::Sweep sweep(opt);
    std::vector<int> indices;
    for (const std::string &name : bench::workloadNames(opt))
        indices.push_back(sweep.add(
            m, name,
            sim::vpConfig(m, core::SpecModel::greatModel(),
                          core::ConfidenceKind::Real,
                          core::UpdateTiming::Delayed)));
    sweep.run();

    std::printf("== Table 1: Benchmark Characteristics ==\n");
    std::printf("(paper: SPECint95, 40-203M instr, 61.7%%-82.0%% "
                "predicted; ours: open substitutes)\n\n");

    TextTable table;
    table.setHeader({"Benchmark", "Stands for", "Dynamic Instr (K)",
                     "Instructions Predicted (%)"});

    std::vector<double> pred_rates;
    std::size_t next = 0;
    for (const std::string &name : bench::workloadNames(opt)) {
        const auto &w = workloads::byName(name);

        // Dynamic length from the functional reference run.
        const arch::ExecTrace trace =
            arch::preExecute(workloads::buildProgram(w, opt.scale));

        const sim::RunResult &run = sweep.at(indices[next++]);
        const double pct =
            bench::pct(run.stats.vpEligible, run.stats.retired);
        pred_rates.push_back(pct);

        table.addRow({name, w.specAnalog,
                      std::to_string(trace.entries.size() / 1000),
                      TextTable::fmt(pct, 1)});
    }
    table.addRow({"(mean)", "", "", TextTable::fmt(
                      arithmeticMean(pred_rates), 1)});
    std::printf("%s\n", table.render().c_str());
    return 0;
}
