/**
 * @file
 * Reproduces **Figure 3** of the paper: harmonic-mean speedup of the
 * good/great/super speculative execution models over the base
 * processor, for the three machine sizes (4/24, 8/48, 16/96), each
 * under the four confidence/update-timing combinations the paper
 * evaluates: D/R, I/R, D/O, I/O (D = delayed update, I = immediate,
 * R = real 3-bit resetting-counter confidence, O = oracle).
 *
 * Expected shape (paper §6): good << great ~ super, good can dip
 * below 1.0; the benefit grows with issue width/window; moving from
 * real to oracle confidence gains more than moving from delayed to
 * immediate updates.
 */

#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);

    const std::vector<SpecModel> models = {SpecModel::goodModel(),
                                           SpecModel::greatModel(),
                                           SpecModel::superModel()};
    const std::vector<std::pair<UpdateTiming, ConfidenceKind>> combos = {
        {UpdateTiming::Delayed, ConfidenceKind::Real},
        {UpdateTiming::Immediate, ConfidenceKind::Real},
        {UpdateTiming::Delayed, ConfidenceKind::Oracle},
        {UpdateTiming::Immediate, ConfidenceKind::Oracle},
    };

    // Enqueue the full (machine x model x combo x workload) grid plus
    // the base runs, then execute everything in one parallel sweep.
    bench::Sweep sweep(opt);
    std::map<std::string, int> base_idx, vp_idx;
    for (const auto &m : bench::machines(opt)) {
        for (const std::string &wname : bench::workloadNames(opt)) {
            base_idx[m.label() + ":" + wname] = sweep.addBase(m, wname);
            for (const SpecModel &model : models) {
                for (const auto &[timing, conf] : combos) {
                    const std::string key =
                        m.label() + ":" + model.name + ":"
                        + sim::timingConfLabel(timing, conf) + ":"
                        + wname;
                    vp_idx[key] = sweep.add(
                        m, wname, sim::vpConfig(m, model, conf, timing));
                }
            }
        }
    }
    sweep.run();

    std::printf("== Figure 3: Speculative execution models, average "
                "speedup ==\n");
    std::printf("(harmonic mean over %zu workloads; speedup = base "
                "cycles / VP cycles)\n\n",
                bench::workloadNames(opt).size());

    for (const auto &m : bench::machines(opt)) {
        std::printf("-- machine %s (issue width / window size) --\n",
                    m.label().c_str());
        TextTable table;
        table.setHeader({"model", "D/R", "I/R", "D/O", "I/O"});
        for (const SpecModel &model : models) {
            std::vector<std::string> row = {model.name};
            for (const auto &[timing, conf] : combos) {
                std::vector<double> speedups;
                for (const std::string &wname :
                     bench::workloadNames(opt)) {
                    const std::string key =
                        m.label() + ":" + model.name + ":"
                        + sim::timingConfLabel(timing, conf) + ":"
                        + wname;
                    speedups.push_back(sweep.speedup(
                        base_idx.at(m.label() + ":" + wname),
                        vp_idx.at(key)));
                }
                row.push_back(
                    TextTable::fmt(harmonicMean(speedups), 3));
            }
            table.addRow(row);
        }
        std::printf("%s\n", table.render().c_str());
    }
    return 0;
}
