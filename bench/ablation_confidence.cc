/**
 * @file
 * Ablation D (paper §3.6): confidence-estimation design — resetting
 * counters of 1–4 bits (confident only at saturation), a 3-bit counter
 * with a lowered threshold, always-confident, and the oracle — on the
 * 8/48 machine with the great model and delayed updates (the paper's
 * realistic configuration). Reports harmonic-mean speedup and the
 * CH/CL/IH breakdown driving it, quantifying §6's observation that
 * the 3-bit resetting counters buy IH < 1 % at the price of a large
 * CL set.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::CoreConfig;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    const sim::MachineConfig m{8, 48};

    struct Variant
    {
        const char *name;
        ConfidenceKind kind;
        int bits;
        int threshold; //!< -1 = saturated only
    };
    const std::vector<Variant> variants = {
        {"ctr-1bit", ConfidenceKind::Real, 1, -1},
        {"ctr-2bit", ConfidenceKind::Real, 2, -1},
        {"ctr-3bit (paper)", ConfidenceKind::Real, 3, -1},
        {"ctr-4bit", ConfidenceKind::Real, 4, -1},
        {"ctr-3bit thr=4", ConfidenceKind::Real, 3, 4},
        {"always", ConfidenceKind::Always, 3, -1},
        {"oracle", ConfidenceKind::Oracle, 3, -1},
    };

    bench::Sweep sweep(opt);
    std::vector<int> base_idx;
    std::vector<std::vector<int>> vp_idx(variants.size());
    for (const std::string &wname : bench::workloadNames(opt))
        base_idx.push_back(sweep.addBase(m, wname));
    for (std::size_t v = 0; v < variants.size(); ++v) {
        for (const std::string &wname : bench::workloadNames(opt)) {
            CoreConfig cfg =
                sim::vpConfig(m, SpecModel::greatModel(),
                              variants[v].kind, UpdateTiming::Delayed);
            cfg.confidenceBits = variants[v].bits;
            cfg.confidenceThreshold = variants[v].threshold;
            vp_idx[v].push_back(
                sweep.add(m, wname, cfg,
                          m.label() + " " + variants[v].name));
        }
    }
    sweep.run();

    std::printf("== Ablation: confidence estimation (8/48, great, "
                "delayed update) ==\n\n");
    TextTable table;
    table.setHeader({"confidence", "hmean speedup", "CH %", "CL %",
                     "IH %"});

    for (std::size_t v = 0; v < variants.size(); ++v) {
        std::vector<double> speedups, ch, cl, ih;
        for (std::size_t w = 0; w < base_idx.size(); ++w) {
            const auto &vp = sweep.at(vp_idx[v][w]);
            speedups.push_back(sweep.speedup(base_idx[w], vp_idx[v][w]));
            ch.push_back(bench::pct(vp.stats.vpCH, vp.stats.vpEligible));
            cl.push_back(bench::pct(vp.stats.vpCL, vp.stats.vpEligible));
            ih.push_back(bench::pct(vp.stats.vpIH, vp.stats.vpEligible));
        }
        table.addRow({variants[v].name,
                      TextTable::fmt(harmonicMean(speedups), 3),
                      TextTable::fmt(arithmeticMean(ch), 1),
                      TextTable::fmt(arithmeticMean(cl), 1),
                      TextTable::fmt(arithmeticMean(ih), 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
