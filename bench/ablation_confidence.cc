/**
 * @file
 * Ablation D (paper §3.6): confidence-estimation design — resetting
 * counters of 1–4 bits (confident only at saturation), a 3-bit counter
 * with a lowered threshold, always-confident, and the oracle — on the
 * 8/48 machine with the great model and delayed updates (the paper's
 * realistic configuration). Reports harmonic-mean speedup and the
 * CH/CL/IH breakdown driving it, quantifying §6's observation that
 * the 3-bit resetting counters buy IH < 1 % at the price of a large
 * CL set.
 */

#include <cstdio>

#include "bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace vsim;
    using core::ConfidenceKind;
    using core::CoreConfig;
    using core::SpecModel;
    using core::UpdateTiming;

    const bench::Options opt = bench::parseOptions(argc, argv);
    bench::BaseRuns base_runs(opt);
    const sim::MachineConfig m{8, 48};

    struct Variant
    {
        const char *name;
        ConfidenceKind kind;
        int bits;
        int threshold; //!< -1 = saturated only
    };
    const std::vector<Variant> variants = {
        {"ctr-1bit", ConfidenceKind::Real, 1, -1},
        {"ctr-2bit", ConfidenceKind::Real, 2, -1},
        {"ctr-3bit (paper)", ConfidenceKind::Real, 3, -1},
        {"ctr-4bit", ConfidenceKind::Real, 4, -1},
        {"ctr-3bit thr=4", ConfidenceKind::Real, 3, 4},
        {"always", ConfidenceKind::Always, 3, -1},
        {"oracle", ConfidenceKind::Oracle, 3, -1},
    };

    std::printf("== Ablation: confidence estimation (8/48, great, "
                "delayed update) ==\n\n");
    TextTable table;
    table.setHeader({"confidence", "hmean speedup", "CH %", "CL %",
                     "IH %"});

    for (const Variant &v : variants) {
        std::vector<double> speedups, ch, cl, ih;
        for (const std::string &wname : bench::workloadNames(opt)) {
            CoreConfig cfg =
                sim::vpConfig(m, SpecModel::greatModel(), v.kind,
                              UpdateTiming::Delayed);
            cfg.confidenceBits = v.bits;
            cfg.confidenceThreshold = v.threshold;
            const auto vp = sim::runWorkload(wname, opt.scale, cfg);
            speedups.push_back(
                sim::speedup(base_runs.get(m, wname), vp));
            const double total =
                static_cast<double>(vp.stats.vpEligible);
            ch.push_back(100.0 * vp.stats.vpCH / total);
            cl.push_back(100.0 * vp.stats.vpCL / total);
            ih.push_back(100.0 * vp.stats.vpIH / total);
        }
        table.addRow({v.name,
                      TextTable::fmt(harmonicMean(speedups), 3),
                      TextTable::fmt(arithmeticMean(ch), 1),
                      TextTable::fmt(arithmeticMean(cl), 1),
                      TextTable::fmt(arithmeticMean(ih), 2)});
    }
    std::printf("%s\n", table.render().c_str());
    return 0;
}
