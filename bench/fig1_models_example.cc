/**
 * @file
 * Reproduces **Figure 1** of the paper: cycle-by-cycle execution of a
 * three-instruction dependence chain (2 depends on 1, 3 depends on 2)
 * under the base processor and the super/great/good speculative
 * execution models, with correct and with incorrect predictions.
 *
 * The chain is held in the instruction window behind a long-latency
 * producer (matching the figure's initial condition), instructions 1
 * and 2 have predicted outputs, and the prediction-override harness
 * forces the predictions to be right or wrong. The pipeline diagrams
 * use the paper's annotations: EX execute, W write/verify, V verified,
 * EQ! equality failed (invalidation), I invalidated, RT retire.
 */

#include <cstdio>

#include "bench_util.hh"
#include "vsim/assembler/assembler.hh"
#include "vsim/core/ooo_core.hh"

namespace
{

using namespace vsim;
using core::CoreConfig;
using core::OooCore;
using core::SpecModel;

const char *kChainAsm = R"(
        li t0, 700
        li t1, 70
        div a0, t0, t1      # slow producer of the chain input
    c1: addi a1, a0, 1      # instruction 1 (predicted)
    c2: addi a2, a1, 1      # instruction 2 (predicted)
    c3: addi a3, a2, 1      # instruction 3
        halt a3
)";

std::uint64_t
runScenario(const char *title, const SpecModel *model, bool correct,
            bool show_diagram)
{
    const assembler::Program prog = assembler::assemble(kChainAsm);
    CoreConfig cfg;
    cfg.useValuePrediction = model != nullptr;
    if (model)
        cfg.model = *model;
    cfg.tracePipeline = true;

    OooCore core(prog, cfg);
    if (model) {
        core.setPredictionOverride(
            [&prog, correct](std::uint64_t pc, std::uint64_t actual)
                -> std::optional<std::uint64_t> {
                if (pc == prog.symbols.at("c1"))
                    return correct ? actual : actual + 88;
                if (pc == prog.symbols.at("c2"))
                    return correct ? actual : actual + 888;
                return std::nullopt;
            });
    }
    const core::SimOutcome out = core.run();

    std::printf("---- %s: %llu cycles ----\n", title,
                static_cast<unsigned long long>(out.stats.cycles));
    if (show_diagram) {
        // Show the window of cycles around the chain's execution.
        std::printf("%s\n", core.tracer().render(36, 70).c_str());
    }
    return out.stats.cycles;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::parseOptions(argc, argv); // accepts the standard flags

    std::printf("== Figure 1: Execution example under different "
                "speculative models ==\n\n");

    const SpecModel super = SpecModel::superModel();
    const SpecModel great = SpecModel::greatModel();
    const SpecModel good = SpecModel::goodModel();

    const std::uint64_t base =
        runScenario("base (no value prediction)", nullptr, true, true);

    std::printf("== correct prediction of instructions 1 and 2 ==\n");
    const std::uint64_t sc = runScenario("super / correct", &super,
                                         true, true);
    const std::uint64_t gc = runScenario("great / correct", &great,
                                         true, false);
    const std::uint64_t dc = runScenario("good / correct", &good,
                                         true, true);

    std::printf("== incorrect prediction of instructions 1 and 2 ==\n");
    const std::uint64_t sw = runScenario("super / mispredict", &super,
                                         false, true);
    const std::uint64_t gw = runScenario("great / mispredict", &great,
                                         false, false);
    const std::uint64_t dw = runScenario("good / mispredict", &good,
                                         false, true);

    std::printf("== summary (total cycles) ==\n");
    vsim::TextTable t;
    t.setHeader({"scenario", "base", "super", "great", "good"});
    t.addRow({"correct", std::to_string(base), std::to_string(sc),
              std::to_string(gc), std::to_string(dc)});
    t.addRow({"mispredict", std::to_string(base), std::to_string(sw),
              std::to_string(gw), std::to_string(dw)});
    std::printf("%s\n", t.render().c_str());

    std::printf(
        "Expected shape (paper Fig. 1): correct prediction packs the\n"
        "chain into fewer cycles (super/great < base); the good model\n"
        "pays one extra verification cycle per dependence level; under\n"
        "misprediction super matches base exactly while great/good add\n"
        "their reissue and equality latencies.\n");
    return 0;
}
