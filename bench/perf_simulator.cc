/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: functional
 * execution rate and cycle-level simulation rate (base and with value
 * speculation), so regressions in simulator performance are visible.
 */

#include <benchmark/benchmark.h>

#include "vsim/arch/functional_core.hh"
#include "vsim/core/ooo_core.hh"
#include "vsim/sim/simulator.hh"
#include "vsim/workloads/workloads.hh"

namespace
{

using namespace vsim;

void
BM_FunctionalExecution(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        arch::FunctionalCore core(prog);
        insts += core.run(100'000'000);
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalExecution)->Unit(benchmark::kMillisecond);

void
BM_OooBase(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("queens"), 1);
    std::uint64_t insts = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::baseConfig({8, 48});
        core::OooCore core(prog, cfg);
        insts += core.run().stats.retired;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_OooBase)->Unit(benchmark::kMillisecond);

/**
 * Window-scaling before/after of the sweep domain: identical runs
 * (bit-for-bit, see tests/test_sweepdiff.cc) through the legacy dense
 * O(window) scans vs. the sparse subscriber-list sweeps, under the
 * spec-heavy "good" model whose nonzero network latencies keep many
 * predictions unresolved at once. The dense scan's cost grows with the
 * window while the sparse sweeps track the actual consumer counts, so
 * the gap widens from 64 to 256 entries; scripts/check.sh gates the
 * 256-entry ratio.
 */
void
BM_OooValueSpeculation(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const int window = static_cast<int>(state.range(0));
    const auto kind = state.range(1) == 0 ? core::SweepKind::Dense
                                          : core::SweepKind::Sparse;
    std::uint64_t insts = 0, simcycles = 0;
    for (auto _ : state) {
        // Always-confident prediction keeps the maximum number of
        // unresolved predictions in flight, so the verification/
        // invalidation network carries its full load.
        core::CoreConfig cfg = sim::vpConfig(
            {8, window}, core::SpecModel::goodModel(),
            core::ConfidenceKind::Always, core::UpdateTiming::Delayed);
        cfg.sweepKind = kind;
        core::OooCore core(prog, cfg);
        const auto stats = core.run().stats;
        insts += stats.retired;
        simcycles += stats.cycles;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["simcycles/s"] = benchmark::Counter(
        static_cast<double>(simcycles), benchmark::Counter::kIsRate);
    state.SetLabel(
        "w" + std::to_string(window)
        + (kind == core::SweepKind::Dense ? "-dense" : "-sparse"));
}
BENCHMARK(BM_OooValueSpeculation)
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1})
    ->Args({256, 0})
    ->Args({256, 1})
    ->Unit(benchmark::kMillisecond);

/**
 * Same comparison under speculative memory resolution (§3.2,
 * memNeedsValidOps=false): loads carry LSQ dependences in
 * RsEntry::memDeps, so every verification/invalidation wave also
 * tests the memory masks — the sweep domain the subscriber lists
 * narrow is strictly larger here.
 */
void
BM_OooSpecMem(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const auto kind = state.range(0) == 0 ? core::SweepKind::Dense
                                          : core::SweepKind::Sparse;
    std::uint64_t insts = 0, simcycles = 0;
    for (auto _ : state) {
        core::SpecModel model = core::SpecModel::goodModel();
        model.memNeedsValidOps = false;
        core::CoreConfig cfg = sim::vpConfig(
            {8, 256}, model, core::ConfidenceKind::Real,
            core::UpdateTiming::Delayed);
        cfg.sweepKind = kind;
        core::OooCore core(prog, cfg);
        const auto stats = core.run().stats;
        insts += stats.retired;
        simcycles += stats.cycles;
    }
    state.counters["inst/s"] = benchmark::Counter(
        static_cast<double>(insts), benchmark::Counter::kIsRate);
    state.counters["simcycles/s"] = benchmark::Counter(
        static_cast<double>(simcycles), benchmark::Counter::kIsRate);
    state.SetLabel(kind == core::SweepKind::Dense ? "specmem-dense"
                                                  : "specmem-sparse");
}
BENCHMARK(BM_OooSpecMem)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

/**
 * Before/after of the event-driven wakeup path at a large window:
 * identical runs (bit-for-bit, see tests/test_scheduler.cc) through
 * the legacy O(window)-per-cycle scan vs. the ready-list scheduler.
 * The headline metric is simulated cycles per wall-clock second;
 * compress keeps the 256-entry window occupied, so the per-cycle
 * rescan cost the ready lists remove is fully visible.
 */
void
BM_OooWindow256(benchmark::State &state)
{
    const auto prog =
        workloads::buildProgram(workloads::byName("compress"), 1);
    const auto kind = state.range(0) == 0
                          ? core::SchedulerKind::Scan
                          : core::SchedulerKind::ReadyList;
    std::uint64_t simcycles = 0;
    for (auto _ : state) {
        core::CoreConfig cfg = sim::vpConfig(
            {8, 256}, core::SpecModel::greatModel(),
            core::ConfidenceKind::Real, core::UpdateTiming::Delayed);
        cfg.scheduler = kind;
        core::OooCore core(prog, cfg);
        simcycles += core.run().stats.cycles;
    }
    state.counters["simcycles/s"] = benchmark::Counter(
        static_cast<double>(simcycles), benchmark::Counter::kIsRate);
    state.SetLabel(kind == core::SchedulerKind::Scan ? "scan"
                                                     : "ready-list");
}
BENCHMARK(BM_OooWindow256)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
